// Package dataset defines the benchmark datasets of the paper's Table II
// (d1–d8), generates them by driving the benchmark harness over the full
// grid of algorithm configurations × nodes × ppn × message sizes, and
// persists them as CSV so the expensive benchmarking step runs once.
package dataset

import (
	"errors"
	"fmt"

	"mpicollpred/internal/bench"
	"mpicollpred/internal/machine"
	"mpicollpred/internal/mpilib"
	"mpicollpred/internal/obs"
	"mpicollpred/internal/sim"
)

// Sample is one measurement: the median benchmark time of one algorithm
// configuration on one problem instance.
type Sample struct {
	ConfigID int
	AlgID    int
	Nodes    int
	PPN      int
	Msize    int64
	Time     float64 // seconds
	Reps     int
	// Consumed is the simulated benchmarking time this sample cost
	// (sum over its repetitions).
	Consumed float64
	// Exhausted reports whether the ReproMPI time budget cut the
	// measurement short of its repetition cap.
	Exhausted bool
}

// Spec describes one dataset of Table II.
type Spec struct {
	Name    string // d1..d8
	Lib     string // "Open MPI" / "Intel MPI"
	Version string
	Coll    string // mpilib collective name
	Machine string
	Nodes   []int
	PPNs    []int
	Msizes  []int64
}

// NumInstances returns #nodes × #ppn × #msizes.
func (s Spec) NumInstances() int { return len(s.Nodes) * len(s.PPNs) * len(s.Msizes) }

// Dataset is a fully measured Spec.
type Dataset struct {
	Spec    Spec
	Samples []Sample
	// Consumed is the total simulated benchmarking time, the quantity the
	// paper bounds a priori via the ReproMPI budget.
	Consumed float64

	index map[instKey]float64
}

type instKey struct {
	cfg   int
	nodes int
	ppn   int
	msize int64
}

// Scale selects how much of the paper-sized grid is generated.
type Scale string

const (
	// ScaleFull reproduces the Table II grids exactly.
	ScaleFull Scale = "full"
	// ScaleMid keeps all node counts, message sizes and configurations but
	// thins the ppn grid — the default for regenerating the experiments on
	// a laptop-class machine.
	ScaleMid Scale = "mid"
	// ScaleSmoke is a minutes-scale grid for tests and CI.
	ScaleSmoke Scale = "smoke"
)

// Standard message-size grid for Bcast/Allreduce (paper §IV-C).
var fixedMsizes = []int64{1, 16, 256, 1024, 4096, 16384, 65536, 524288, 1048576, 4194304}

// Alltoall uses per-destination sizes; the grid is capped at 64 KiB
// (8 sizes) because per-pair volumes scale with p.
var alltoallMsizes = []int64{1, 16, 64, 256, 1024, 4096, 16384, 65536}

// SuperMUC-NG broadcast grid (8 sizes, as d8 reports).
var smucMsizes = []int64{1, 16, 256, 1024, 4096, 16384, 65536, 524288}

func hydraNodes() []int     { return []int{4, 7, 8, 13, 16, 19, 24, 27, 32, 35, 36} }
func jupiterNodes() []int   { return []int{4, 7, 8, 13, 16, 19, 24, 27, 32, 35} }
func smucNodes() []int      { return []int{20, 27, 32, 35, 48} }
func hydraPPNs() []int      { return []int{1, 4, 8, 10, 16, 17, 20, 24, 28, 32} }
func jupiterPPNs() []int    { return []int{1, 2, 4, 8, 10, 13, 16} }
func smucPPNs() []int       { return []int{1, 8, 16, 24, 48} }
func hydraPPNsMid() []int   { return []int{1, 8, 16, 32} }
func jupiterPPNsMid() []int { return []int{1, 4, 8, 16} }
func smucPPNsMid() []int    { return []int{1, 24, 48} }

// Specs returns the eight datasets of Table II at the requested scale.
func Specs(scale Scale) []Spec {
	hp, jp, sp := hydraPPNs(), jupiterPPNs(), smucPPNs()
	ap := hp // alltoall (d6) ppn grid
	hn, jn, sn := hydraNodes(), jupiterNodes(), smucNodes()
	mf, ma, ms := fixedMsizes, alltoallMsizes, smucMsizes
	switch scale {
	case ScaleMid:
		hp, jp, sp = hydraPPNsMid(), jupiterPPNsMid(), smucPPNsMid()
		// Alltoall cost scales with p^2 per configuration; d6 feeds only
		// Table IV (no figure), so its mid-scale grid stays below the
		// p ~ 10^3 cells.
		ap = []int{1, 8, 16}
	case ScaleSmoke:
		hn, jn, sn = []int{2, 3, 4, 5}, []int{2, 3, 4, 5}, []int{2, 3, 4, 5}
		hp, jp, sp = []int{1, 2}, []int{1, 2}, []int{1, 2}
		ap = hp
		mf = []int64{64, 4096, 65536}
		ma = []int64{64, 1024}
		ms = []int64{64, 4096, 65536}
	case ScaleFull:
		ap = hp
	}
	return []Spec{
		{Name: "d1", Lib: "Open MPI", Version: "4.0.2", Coll: mpilib.Bcast, Machine: "Hydra", Nodes: hn, PPNs: hp, Msizes: mf},
		{Name: "d2", Lib: "Open MPI", Version: "4.0.2", Coll: mpilib.Allreduce, Machine: "Hydra", Nodes: hn, PPNs: hp, Msizes: mf},
		{Name: "d3", Lib: "Open MPI", Version: "4.0.2", Coll: mpilib.Bcast, Machine: "Jupiter", Nodes: jn, PPNs: jp, Msizes: mf},
		{Name: "d4", Lib: "Open MPI", Version: "4.0.2", Coll: mpilib.Allreduce, Machine: "Jupiter", Nodes: jn, PPNs: jp, Msizes: mf},
		{Name: "d5", Lib: "Intel MPI", Version: "2019", Coll: mpilib.Allreduce, Machine: "Hydra", Nodes: hn, PPNs: hp, Msizes: mf},
		{Name: "d6", Lib: "Intel MPI", Version: "2019", Coll: mpilib.Alltoall, Machine: "Hydra", Nodes: hn, PPNs: ap, Msizes: ma},
		{Name: "d7", Lib: "Intel MPI", Version: "2019", Coll: mpilib.Bcast, Machine: "Hydra", Nodes: hn, PPNs: hp, Msizes: mf},
		{Name: "d8", Lib: "Open MPI", Version: "4.0.2", Coll: mpilib.Bcast, Machine: "SuperMUC-NG", Nodes: sn, PPNs: sp, Msizes: ms},
	}
}

// SpecByName returns the named dataset spec at the given scale.
func SpecByName(name string, scale Scale) (Spec, error) {
	for _, s := range Specs(scale) {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("dataset: unknown dataset %q", name)
}

// Resolve returns the spec's machine profile and collective set.
func (s Spec) Resolve() (machine.Machine, *mpilib.CollectiveSet, error) {
	mach, err := machine.ByName(s.Machine)
	if err != nil {
		return machine.Machine{}, nil, err
	}
	lib, err := mpilib.ByName(s.Lib)
	if err != nil {
		return machine.Machine{}, nil, err
	}
	set, err := lib.Collective(s.Coll)
	if err != nil {
		return machine.Machine{}, nil, err
	}
	return mach, set, nil
}

// Generate measures the full dataset. opts controls the per-configuration
// measurement loop; progress (optional) is called after each completed
// instance grid cell with (done, total) counts.
func Generate(spec Spec, opts bench.Options, progress func(done, total int)) (*Dataset, error) {
	return generate(spec, opts, progress, genControl{})
}

// genControl hooks the measurement loop for checkpoint/resume. The zero value
// is a plain uncontrolled run.
type genControl struct {
	// recorded holds samples measured by an earlier, interrupted run; the
	// loop replays them in grid order instead of re-measuring.
	recorded map[sampleKey]Sample
	// record, when non-nil, is called after every fresh measurement —
	// typically a journal append.
	record func(Sample) error
	// stop, when non-nil, is polled between measurements; returning true
	// aborts the run with ErrInterrupted.
	stop func() bool
	// reused, when non-nil, receives the count of replayed samples.
	reused *int
}

// sampleKey identifies one measurement in the grid.
type sampleKey struct {
	cfg, nodes, ppn int
	msize           int64
}

// generate is the measurement loop shared by Generate and GenerateResumable.
// Because every sample's noise seed depends only on (dataset, config,
// instance) — never on loop order — replayed and freshly measured samples
// compose into a dataset bit-identical to an uninterrupted run.
//
// The grid is enumerated in the canonical nodes → ppn → msize → config order
// into a flat cell list, then measured by bench.Sweep across
// opts.Workers workers. Sweep commits results in cell order from this
// goroutine, so samples, journal appends, metrics accounting and progress
// callbacks are byte-for-byte those of a serial loop at any worker count.
func generate(spec Spec, opts bench.Options, progress func(done, total int), ctl genControl) (*Dataset, error) {
	mach, set, err := spec.Resolve()
	if err != nil {
		return nil, err
	}
	if opts.Metrics == nil {
		opts.Metrics = bench.NewMetrics(obs.Default, obs.Labels{
			"dataset": spec.Name, "machine": spec.Machine,
			"lib": spec.Lib, "coll": spec.Coll,
		})
	}
	ds := &Dataset{Spec: spec}

	// One grid cell: either a fresh measurement (described by cells[i]) or a
	// sample replayed from an interrupted run (replays[i], with Skip set).
	type cellMeta struct {
		cfgID, algID, n, ppn int
		m                    int64
	}
	var (
		cells   []bench.Cell
		metas   []cellMeta
		replays []Sample
	)
	for _, n := range spec.Nodes {
		for _, ppn := range spec.PPNs {
			topo, err := mach.Topo(n, ppn)
			if err != nil {
				return nil, err
			}
			for _, m := range spec.Msizes {
				reps := adaptReps(opts.MaxReps, spec.Coll, topo.P(), m)
				for _, cfg := range set.Configs {
					metas = append(metas, cellMeta{cfg.ID, cfg.AlgID, n, ppn, m})
					if s, ok := ctl.recorded[sampleKey{cfg.ID, n, ppn, m}]; ok {
						cells = append(cells, bench.Cell{Skip: true})
						replays = append(replays, s)
						continue
					}
					seed := sim.Seed(nameSeed(spec.Name),
						uint64(cfg.ID), uint64(n), uint64(ppn), uint64(m))
					cells = append(cells, bench.Cell{
						Cfg: cfg, Net: mach.Net, Topo: topo,
						Msize: m, Seed: seed, MaxReps: reps,
					})
					replays = append(replays, Sample{})
				}
			}
		}
	}

	total := len(cells)
	done := 0
	var cbErr error
	commit := func(i int, meas bench.Measurement) error {
		var s Sample
		if cells[i].Skip {
			s = replays[i]
			if ctl.reused != nil {
				*ctl.reused++
			}
		} else {
			mm := metas[i]
			s = Sample{
				ConfigID: mm.cfgID, AlgID: mm.algID,
				Nodes: mm.n, PPN: mm.ppn, Msize: mm.m,
				Time: meas.Median(), Reps: meas.Reps(),
				Consumed: meas.Consumed, Exhausted: meas.Exhausted,
			}
			if ctl.record != nil {
				if err := ctl.record(s); err != nil {
					cbErr = fmt.Errorf("dataset %s: journal: %w", spec.Name, err)
					return cbErr
				}
			}
		}
		ds.Samples = append(ds.Samples, s)
		ds.Consumed += s.Consumed
		done++
		if progress != nil && done%len(set.Configs) == 0 {
			progress(done, total)
		}
		return nil
	}
	if err := bench.Sweep(cells, opts, ctl.stop, commit); err != nil {
		if errors.Is(err, bench.ErrSweepStopped) {
			return nil, ErrInterrupted
		}
		if err == cbErr {
			return nil, err
		}
		return nil, fmt.Errorf("dataset %s: %w", spec.Name, err)
	}
	ds.buildIndex()
	return ds, nil
}

func (d *Dataset) buildIndex() {
	d.index = make(map[instKey]float64, len(d.Samples))
	for _, s := range d.Samples {
		d.index[instKey{s.ConfigID, s.Nodes, s.PPN, s.Msize}] = s.Time
	}
}

// ExhaustedCount returns how many samples were cut short by the time budget.
func (d *Dataset) ExhaustedCount() int {
	n := 0
	for _, s := range d.Samples {
		if s.Exhausted {
			n++
		}
	}
	return n
}

// Lookup returns the measured time of a configuration on an instance.
func (d *Dataset) Lookup(cfgID, nodes, ppn int, msize int64) (float64, bool) {
	t, ok := d.index[instKey{cfgID, nodes, ppn, msize}]
	return t, ok
}

// Best returns the empirically fastest non-excluded configuration for an
// instance (the paper's "exhaustive search" reference) and its time.
func (d *Dataset) Best(set *mpilib.CollectiveSet, nodes, ppn int, msize int64) (int, float64, bool) {
	bestID, bestT := 0, 0.0
	for _, cfg := range set.Selectable() {
		t, ok := d.Lookup(cfg.ID, nodes, ppn, msize)
		if !ok {
			continue
		}
		if bestID == 0 || t < bestT {
			bestID, bestT = cfg.ID, t
		}
	}
	return bestID, bestT, bestID != 0
}

// Instances enumerates the distinct (nodes, ppn, msize) cells present.
func (d *Dataset) Instances() []Instance {
	seen := map[Instance]bool{}
	var out []Instance
	for _, s := range d.Samples {
		in := Instance{s.Nodes, s.PPN, s.Msize}
		if !seen[in] {
			seen[in] = true
			out = append(out, in)
		}
	}
	return out
}

// Instance identifies one communication problem (message size, allocation).
type Instance struct {
	Nodes int
	PPN   int
	Msize int64
}

// P returns the total process count of the instance.
func (i Instance) P() int { return i.Nodes * i.PPN }

// adaptReps lowers the repetition count for expensive instances (large
// messages, or alltoall on many processes) — the simulated analogue of the
// ReproMPI time budget kicking in, which on real hardware also yields few
// repetitions exactly for the instances that run long.
func adaptReps(maxReps int, coll string, p int, m int64) int {
	reps := maxReps
	switch {
	case m >= 1<<20:
		reps = 1
	case m >= 1<<18 && reps > 2:
		reps = 2
	}
	if coll == mpilib.Alltoall && p >= 512 {
		reps = 1
	}
	return reps
}

// nameSeed hashes a dataset name into a seed component (FNV-1a).
func nameSeed(name string) uint64 {
	h := uint64(0xcbf29ce484222325)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 0x100000001b3
	}
	return h
}
