package dataset

import (
	"bufio"
	"encoding/csv"
	"errors"
	"fmt"
	"os"
	"strings"

	"mpicollpred/internal/bench"
	"mpicollpred/internal/obs"
)

// ErrInterrupted is returned by GenerateResumable when the stop predicate
// fires mid-run. The journal on disk holds every completed measurement; a
// later run with resume=true picks up from there.
var ErrInterrupted = errors.New("dataset: generation interrupted")

// journalMagic is the first field of a journal's header line. Bump it when
// the row layout changes so stale journals are regenerated, not misparsed.
const journalMagic = "#journal-v1"

// journalIdentity fingerprints everything that determines the measured
// values: the spec identity, its grids, and every benchmark option that
// perturbs timings. A resumed run only reuses journal rows whose header
// carries the same fingerprint — resuming a clean run from a fault-injected
// journal (or vice versa) silently degenerates into a fresh run.
//
// Options.Workers is deliberately absent: the worker count shards the sweep
// but never changes a measured value (seeds are content-derived and commits
// are cell-ordered), so a journal written at one worker count must resume at
// any other. TestJournalIdentityIgnoresWorkers pins this down.
func journalIdentity(spec Spec, opts bench.Options) string {
	faults := ""
	if opts.Faults != nil {
		faults = opts.Faults.String()
	}
	return fmt.Sprintf("%s|%s|%s|%s|%s|nodes=%v|ppns=%v|msizes=%v|reps=%d|budget=%g|jitter=%g|retries=%d|k=%g|faults=%s",
		spec.Name, spec.Lib, spec.Version, spec.Coll, spec.Machine,
		spec.Nodes, spec.PPNs, spec.Msizes,
		opts.MaxReps, opts.MaxTime, opts.SyncJitter,
		opts.OutlierRetries, opts.OutlierK, faults)
}

// journal is an append-only progress log: one header line identifying the
// run, then one CSV row per completed measurement, flushed immediately so a
// crash or SIGINT between measurements loses at most the in-flight one.
type journal struct {
	f *os.File
	w *csv.Writer
}

func createJournal(path, identity string) (*journal, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	w := csv.NewWriter(f)
	if err := w.Write([]string{journalMagic, identity}); err != nil {
		_ = f.Close() // already failing with the write error
		return nil, err
	}
	w.Flush()
	if err := w.Error(); err != nil {
		_ = f.Close() // already failing with the flush error
		return nil, err
	}
	return &journal{f: f, w: w}, nil
}

func openJournalAppend(path string) (*journal, error) {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return &journal{f: f, w: csv.NewWriter(f)}, nil
}

// record appends one measured sample and flushes it to the OS, so the row
// survives a process kill.
func (j *journal) record(s Sample) error {
	if err := j.w.Write(s.appendFields(nil)); err != nil {
		return err
	}
	j.w.Flush()
	return j.w.Error()
}

func (j *journal) Close() error {
	j.w.Flush()
	if err := j.w.Error(); err != nil {
		_ = j.f.Close() // already failing with the flush error
		return err
	}
	return j.f.Close()
}

// readJournal loads a journal's identity header and completed samples. A
// torn final line (the process died mid-write) is tolerated and dropped;
// corruption anywhere else is an error. A missing file returns os.ErrNotExist.
func readJournal(path string) (identity string, samples map[sampleKey]Sample, err error) {
	f, err := os.Open(path)
	if err != nil {
		return "", nil, err
	}
	defer func() { _ = f.Close() }() // read-only file; scanner errors are checked

	var lines []string
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		lines = append(lines, sc.Text())
	}
	if err := sc.Err(); err != nil {
		return "", nil, fmt.Errorf("dataset: journal %s: %w", path, err)
	}
	if len(lines) == 0 {
		return "", nil, fmt.Errorf("dataset: journal %s: empty", path)
	}
	header, err := csv.NewReader(strings.NewReader(lines[0])).Read()
	if err != nil || len(header) != 2 || header[0] != journalMagic {
		return "", nil, fmt.Errorf("dataset: journal %s: malformed header %q", path, lines[0])
	}
	identity = header[1]
	samples = make(map[sampleKey]Sample, len(lines)-1)
	for i, ln := range lines[1:] {
		if ln == "" {
			continue
		}
		rec, err := csv.NewReader(strings.NewReader(ln)).Read()
		var s Sample
		if err == nil && len(rec) != len(csvHeader) {
			// Journals are always written in the v2 layout; a shorter row is
			// a torn write, not a legacy file.
			err = fmt.Errorf("%d columns, want %d", len(rec), len(csvHeader))
		}
		if err == nil {
			s, err = parseSample(rec)
		}
		if err != nil {
			if i == len(lines)-2 {
				// Torn last line from an interrupted write; everything
				// before it is intact.
				break
			}
			return "", nil, fmt.Errorf("dataset: journal %s: line %d: %v", path, i+2, err)
		}
		samples[sampleKey{s.ConfigID, s.Nodes, s.PPN, s.Msize}] = s
	}
	return identity, samples, nil
}

// JournalPath returns the progress-journal file paired with a dataset cache
// file.
func JournalPath(cachePath string) string { return cachePath + ".journal" }

// GenerateResumable is Generate with crash/interrupt recovery. Every
// completed measurement is appended to the journal at journalPath; when
// resume is true and the journal matches this exact run (same spec, grids,
// and benchmark options), already-measured configurations are replayed from
// it instead of re-measured. stop (optional) is polled between measurements —
// wire it to a SIGINT flag to checkpoint cleanly; the run then returns
// ErrInterrupted with the journal intact.
//
// Seeds depend only on (dataset, config, instance), so a resumed run
// produces a dataset bit-identical to an uninterrupted one. On success the
// caller should Save the dataset and may delete the journal.
func GenerateResumable(spec Spec, opts bench.Options, journalPath string, resume bool, stop func() bool, progress func(done, total int)) (ds *Dataset, err error) {
	identity := journalIdentity(spec, opts)
	var recorded map[sampleKey]Sample
	if resume {
		if id, samples, jerr := readJournal(journalPath); jerr == nil && id == identity {
			recorded = samples
		}
	}
	var j *journal
	if len(recorded) > 0 {
		j, err = openJournalAppend(journalPath)
	} else {
		recorded = nil
		j, err = createJournal(journalPath, identity)
	}
	if err != nil {
		return nil, err
	}
	// The journal is the crash-recovery record: a failed close means rows
	// may not have reached the OS, so it must surface as an error rather
	// than leave a silently unresumable journal behind.
	defer func() {
		if cerr := j.Close(); cerr != nil && err == nil {
			ds, err = nil, fmt.Errorf("dataset: closing journal %s: %w", journalPath, cerr)
		}
	}()

	reused := 0
	ds, err = generate(spec, opts, progress, genControl{
		recorded: recorded,
		record:   j.record,
		stop:     stop,
		reused:   &reused,
	})
	if reused > 0 {
		obs.Default.Counter("dataset_resumed_samples_total",
			obs.Labels{"dataset": spec.Name}).Add(int64(reused))
	}
	return ds, err
}
