package dataset

import (
	"bytes"
	"testing"
)

// FuzzReadCSV asserts ReadCSV never panics and never returns a half-parsed
// dataset: either it errors, or every sample it admits parses back through
// the writer.
func FuzzReadCSV(f *testing.F) {
	// Seed corpus: a valid v2 file, a legacy v1 file, and the malformed
	// shapes the parser must reject gracefully.
	f.Add([]byte("#meta,d1,Open MPI,4.0.2,bcast,Hydra,1.5\n" +
		"config_id,alg_id,nodes,ppn,msize,time_s,reps,consumed_s,exhausted\n" +
		"1,1,4,8,1024,0.002,5,0.01,false\n" +
		"2,2,4,8,1024,0.004,2,0.008,true\n"))
	f.Add([]byte("#meta,d3,Open MPI,4.0.2,bcast,Jupiter,0\n" +
		"config_id,alg_id,nodes,ppn,msize,time_s,reps\n" +
		"1,1,4,8,1024,0.002,5\n"))
	f.Add([]byte(""))
	f.Add([]byte("#meta,d1,Open MPI,4.0.2,bcast,Hydra,1.5\n"))
	f.Add([]byte("#meta,d1,Open MPI,4.0.2,bcast,Hydra,NaN\n" +
		"config_id,alg_id,nodes,ppn,msize,time_s,reps,consumed_s,exhausted\n"))
	f.Add([]byte("not,a,dataset\n1,2,3\n"))
	f.Add([]byte("#meta,d1,Open MPI,4.0.2,bcast,Hydra,1.5\n" +
		"config_id,alg_id,nodes,ppn,msize,time_s,reps,consumed_s,exhausted\n" +
		"1,1,4,8\n"))
	f.Add([]byte("#meta,d1,Open MPI,4.0.2,bcast,Hydra,1.5\n" +
		"config_id,alg_id,nodes,ppn,msize,time_s,reps,consumed_s,exhausted\n" +
		"one,1,4,8,1024,0.002,5,0.01,false\n"))
	f.Add([]byte("#meta,d1,Open MPI,4.0.2,bcast,Hydra,1.5\n" +
		"config_id,alg_id,nodes,ppn,msize,time_s,reps,consumed_s,exhausted\n" +
		"1,1,4,8,1024,not-a-float,5,0.01,false\n"))
	f.Add([]byte("\x00\xff\xfe"))

	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := ReadCSV(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Whatever parsed must survive a write/read round trip.
		var buf bytes.Buffer
		if err := d.WriteCSV(&buf); err != nil {
			t.Fatalf("accepted dataset failed to serialize: %v", err)
		}
		d2, err := ReadCSV(&buf)
		if err != nil {
			t.Fatalf("round trip of accepted dataset failed: %v", err)
		}
		if len(d2.Samples) != len(d.Samples) {
			t.Fatalf("round trip lost samples: %d vs %d", len(d2.Samples), len(d.Samples))
		}
		// Validation and quarantine must not panic on arbitrary admitted data.
		d.Quarantine()
	})
}
