package dataset

import (
	"errors"
	"math"
	"testing"
)

func upsertBase(t *testing.T) *Dataset {
	t.Helper()
	d := &Dataset{Spec: Spec{Name: "dt", Lib: "Open MPI", Version: "4.0.2",
		Coll: "bcast", Machine: "Hydra"}}
	d.Samples = []Sample{
		{ConfigID: 1, AlgID: 1, Nodes: 2, PPN: 1, Msize: 64, Time: 1e-5, Reps: 2, Consumed: 2e-5},
		{ConfigID: 2, AlgID: 2, Nodes: 2, PPN: 1, Msize: 64, Time: 2e-5, Reps: 2, Consumed: 4e-5},
	}
	d.buildIndex()
	return d
}

func TestUpsertReplacesCellInPlace(t *testing.T) {
	d := upsertBase(t)
	h0 := d.Hash()
	replaced, err := d.Upsert(Sample{ConfigID: 1, AlgID: 1, Nodes: 2, PPN: 1, Msize: 64,
		Time: 4e-5, Reps: 2, Consumed: 8e-5})
	if err != nil || !replaced {
		t.Fatalf("upsert existing cell: replaced=%v err=%v", replaced, err)
	}
	if len(d.Samples) != 2 {
		t.Fatalf("replacement grew the dataset to %d samples", len(d.Samples))
	}
	if got, _ := d.Lookup(1, 2, 1, 64); got != 4e-5 {
		t.Fatalf("index not updated: lookup = %v", got)
	}
	if d.Samples[0].Time != 4e-5 {
		t.Fatalf("sample not replaced in place: %+v", d.Samples[0])
	}
	if d.Hash() == h0 {
		t.Fatalf("hash unchanged after replacing a cell")
	}
	if rep := d.Validate(); !rep.Clean() && len(rep.Bad) > 0 {
		t.Fatalf("upsert produced invalid dataset: %s", rep)
	}
}

func TestUpsertAppendsNewCell(t *testing.T) {
	d := upsertBase(t)
	replaced, err := d.Upsert(Sample{ConfigID: 1, AlgID: 1, Nodes: 4, PPN: 1, Msize: 64,
		Time: 3e-5, Reps: 2, Consumed: 6e-5})
	if err != nil || replaced {
		t.Fatalf("upsert new cell: replaced=%v err=%v", replaced, err)
	}
	if len(d.Samples) != 3 {
		t.Fatalf("append kept %d samples", len(d.Samples))
	}
	if got, ok := d.Lookup(1, 4, 1, 64); !ok || got != 3e-5 {
		t.Fatalf("appended cell not indexed: %v %v", got, ok)
	}
}

func TestUpsertRejectsBadObservation(t *testing.T) {
	d := upsertBase(t)
	h0 := d.Hash()
	bad := []Sample{
		{ConfigID: 1, Nodes: 2, PPN: 1, Msize: 64, Time: math.NaN(), Reps: 2},
		{ConfigID: 1, Nodes: 2, PPN: 1, Msize: 64, Time: -1, Reps: 2},
		{ConfigID: 1, Nodes: 0, PPN: 1, Msize: 64, Time: 1e-5, Reps: 2},
	}
	for _, s := range bad {
		if _, err := d.Upsert(s); !errors.Is(err, ErrBadSample) {
			t.Errorf("bad sample %+v accepted (err=%v)", s, err)
		}
	}
	if d.Hash() != h0 {
		t.Fatalf("rejected observations still mutated the dataset")
	}
}
