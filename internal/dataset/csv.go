package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"

	"mpicollpred/internal/bench"
	"mpicollpred/internal/obs"
)

// csvHeader is the on-disk column layout (v2). v1 files lack the last two
// accounting columns and are still readable; see ReadCSV.
var csvHeader = []string{"config_id", "alg_id", "nodes", "ppn", "msize", "time_s", "reps", "consumed_s", "exhausted"}

// csvLegacyCols is the column count of the v1 layout.
const csvLegacyCols = 7

// WriteCSV serializes the dataset. The first record is a comment-like meta
// row carrying the spec identity and the consumed benchmark budget.
func (d *Dataset) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	meta := []string{"#meta", d.Spec.Name, d.Spec.Lib, d.Spec.Version, d.Spec.Coll,
		d.Spec.Machine, strconv.FormatFloat(d.Consumed, 'g', -1, 64)}
	if err := cw.Write(meta); err != nil {
		return err
	}
	if err := cw.Write(csvHeader); err != nil {
		return err
	}
	row := make([]string, len(csvHeader))
	for _, s := range d.Samples {
		if err := cw.Write(s.appendFields(row[:0])); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// appendFields renders the sample as its v2 column values.
func (s Sample) appendFields(row []string) []string {
	return append(row,
		strconv.Itoa(s.ConfigID),
		strconv.Itoa(s.AlgID),
		strconv.Itoa(s.Nodes),
		strconv.Itoa(s.PPN),
		strconv.FormatInt(s.Msize, 10),
		strconv.FormatFloat(s.Time, 'g', -1, 64),
		strconv.Itoa(s.Reps),
		strconv.FormatFloat(s.Consumed, 'g', -1, 64),
		strconv.FormatBool(s.Exhausted),
	)
}

// parseSample decodes one data row (v2 or legacy v1 layout) with descriptive
// per-column errors.
func parseSample(rec []string) (Sample, error) {
	if len(rec) != len(csvHeader) && len(rec) != csvLegacyCols {
		return Sample{}, fmt.Errorf("%d columns, want %d (or %d legacy)", len(rec), len(csvHeader), csvLegacyCols)
	}
	var s Sample
	var err error
	if s.ConfigID, err = strconv.Atoi(rec[0]); err != nil {
		return s, fmt.Errorf("bad config_id %q", rec[0])
	}
	if s.AlgID, err = strconv.Atoi(rec[1]); err != nil {
		return s, fmt.Errorf("bad alg_id %q", rec[1])
	}
	if s.Nodes, err = strconv.Atoi(rec[2]); err != nil {
		return s, fmt.Errorf("bad nodes %q", rec[2])
	}
	if s.PPN, err = strconv.Atoi(rec[3]); err != nil {
		return s, fmt.Errorf("bad ppn %q", rec[3])
	}
	if s.Msize, err = strconv.ParseInt(rec[4], 10, 64); err != nil {
		return s, fmt.Errorf("bad msize %q", rec[4])
	}
	if s.Time, err = strconv.ParseFloat(rec[5], 64); err != nil {
		return s, fmt.Errorf("bad time_s %q", rec[5])
	}
	if s.Reps, err = strconv.Atoi(rec[6]); err != nil {
		return s, fmt.Errorf("bad reps %q", rec[6])
	}
	if len(rec) >= len(csvHeader) {
		if s.Consumed, err = strconv.ParseFloat(rec[7], 64); err != nil {
			return s, fmt.Errorf("bad consumed_s %q", rec[7])
		}
		if s.Exhausted, err = strconv.ParseBool(rec[8]); err != nil {
			return s, fmt.Errorf("bad exhausted %q", rec[8])
		}
	} else {
		// v1 rows carry no per-sample accounting; the repetition sum
		// approximates what the measurement consumed.
		s.Consumed = s.Time * float64(s.Reps)
	}
	return s, nil
}

// ReadCSV deserializes a dataset written by WriteCSV. The spec grids
// (Nodes/PPNs/Msizes) are reconstructed from the samples. Malformed input —
// an empty file, wrong column counts, non-numeric fields — yields a
// descriptive error naming the offending line, never a panic or a silently
// empty dataset.
func ReadCSV(r io.Reader) (*Dataset, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	line := 1
	meta, err := cr.Read()
	if err == io.EOF {
		return nil, fmt.Errorf("dataset: empty file (no meta row)")
	}
	if err != nil {
		return nil, fmt.Errorf("dataset: line %d: reading meta row: %w", line, err)
	}
	if len(meta) < 7 || meta[0] != "#meta" {
		return nil, fmt.Errorf("dataset: line %d: malformed meta row %v", line, meta)
	}
	d := &Dataset{Spec: Spec{Name: meta[1], Lib: meta[2], Version: meta[3], Coll: meta[4], Machine: meta[5]}}
	if d.Consumed, err = strconv.ParseFloat(meta[6], 64); err != nil {
		return nil, fmt.Errorf("dataset: line %d: bad consumed field %q", line, meta[6])
	}
	if math.IsNaN(d.Consumed) || d.Consumed < 0 {
		return nil, fmt.Errorf("dataset: line %d: consumed budget %v out of range", line, d.Consumed)
	}
	line++
	header, err := cr.Read()
	if err == io.EOF {
		return nil, fmt.Errorf("dataset: truncated file (no header row)")
	}
	if err != nil {
		return nil, fmt.Errorf("dataset: line %d: reading header: %w", line, err)
	}
	if len(header) != len(csvHeader) && len(header) != csvLegacyCols {
		return nil, fmt.Errorf("dataset: line %d: unexpected header %v", line, header)
	}
	nodesSet := map[int]bool{}
	ppnSet := map[int]bool{}
	msizeSet := map[int64]bool{}
	for {
		line++
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("dataset: line %d: %w", line, err)
		}
		s, err := parseSample(rec)
		if err != nil {
			return nil, fmt.Errorf("dataset: line %d: %v", line, err)
		}
		d.Samples = append(d.Samples, s)
		nodesSet[s.Nodes] = true
		ppnSet[s.PPN] = true
		msizeSet[s.Msize] = true
	}
	d.Spec.Nodes = sortedInts(nodesSet)
	d.Spec.PPNs = sortedInts(ppnSet)
	d.Spec.Msizes = sortedInt64s(msizeSet)
	d.buildIndex()
	return d, nil
}

// WriteFile writes the dataset to path atomically: the CSV is serialized to
// path+".tmp" and renamed into place, so an interrupted or crashed run can
// never leave a torn file behind — the cache either holds the previous
// complete dataset or the new one.
func (d *Dataset) WriteFile(path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := d.WriteCSV(f); err != nil {
		_ = f.Close() // already failing with the write error
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		_ = f.Close() // already failing with the sync error
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// Save writes the dataset to dir/<name>-<scale>.csv (atomically; see
// WriteFile).
func (d *Dataset) Save(dir string, scale Scale) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	return d.WriteFile(cachePath(dir, d.Spec.Name, scale))
}

// LoadOrGenerate returns the cached dataset if dir holds one for (name,
// scale); otherwise it generates the dataset with the machine's default
// ReproMPI-style options and caches it. Cached files are validated on load:
// malformed rows are quarantined (dropped and counted in the
// dataset_quarantined_rows_total metric) rather than poisoning training.
func LoadOrGenerate(dir, name string, scale Scale, progress func(done, total int)) (*Dataset, error) {
	spec, err := SpecByName(name, scale)
	if err != nil {
		return nil, err
	}
	path := cachePath(dir, name, scale)
	if f, err := os.Open(path); err == nil {
		defer func() { _ = f.Close() }() // read-only file; the read itself is checked
		d, err := ReadCSV(f)
		if err != nil {
			return nil, fmt.Errorf("dataset: corrupt cache %s: %w", path, err)
		}
		if rep := d.Quarantine(); len(rep.Bad) > 0 {
			obs.Default.Counter("dataset_quarantined_rows_total",
				obs.Labels{"dataset": name}).Add(int64(len(rep.Bad)))
		}
		return d, nil
	}
	d, err := Generate(spec, DefaultGenOptions(spec, scale), progress)
	if err != nil {
		return nil, err
	}
	if err := d.Save(dir, scale); err != nil {
		return nil, err
	}
	return d, nil
}

// DefaultGenOptions returns the benchmark options LoadOrGenerate uses for a
// spec at a scale: the machine's ReproMPI budget with the scale-appropriate
// repetition cap. CLI front-ends start from this and layer on fault plans or
// outlier handling.
func DefaultGenOptions(spec Spec, scale Scale) bench.Options {
	opts := bench.DefaultOptions(spec.Machine)
	opts.MaxReps = repsForScale(scale)
	return opts
}

// repsForScale bounds the repetition count by scale: the paper's cap of 500
// is a real-hardware robustness measure; in simulation a handful of
// noise-perturbed repetitions yields the same median stability at a
// fraction of the cost.
func repsForScale(scale Scale) int {
	switch scale {
	case ScaleFull:
		return 5
	case ScaleMid:
		return 2
	default:
		return 2
	}
}

func cachePath(dir, name string, scale Scale) string {
	return filepath.Join(dir, fmt.Sprintf("%s-%s.csv", name, scale))
}

// CachePath returns the cache file a (name, scale) dataset is stored under
// in dir. tag distinguishes perturbed variants (e.g. fault-injected runs)
// so they never collide with the clean cache; an empty tag is the default
// cache file.
func CachePath(dir, name string, scale Scale, tag string) string {
	if tag == "" {
		return cachePath(dir, name, scale)
	}
	return filepath.Join(dir, fmt.Sprintf("%s-%s-%s.csv", name, scale, tag))
}

func sortedInts(set map[int]bool) []int {
	out := make([]int, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}

func sortedInt64s(set map[int64]bool) []int64 {
	out := make([]int64, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
