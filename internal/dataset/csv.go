package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"

	"mpicollpred/internal/bench"
)

// csvHeader is the on-disk column layout (v2). v1 files lack the last two
// accounting columns and are still readable; see ReadCSV.
var csvHeader = []string{"config_id", "alg_id", "nodes", "ppn", "msize", "time_s", "reps", "consumed_s", "exhausted"}

// csvLegacyCols is the column count of the v1 layout.
const csvLegacyCols = 7

// WriteCSV serializes the dataset. The first record is a comment-like meta
// row carrying the spec identity and the consumed benchmark budget.
func (d *Dataset) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	meta := []string{"#meta", d.Spec.Name, d.Spec.Lib, d.Spec.Version, d.Spec.Coll,
		d.Spec.Machine, strconv.FormatFloat(d.Consumed, 'g', -1, 64)}
	if err := cw.Write(meta); err != nil {
		return err
	}
	if err := cw.Write(csvHeader); err != nil {
		return err
	}
	row := make([]string, len(csvHeader))
	for _, s := range d.Samples {
		row[0] = strconv.Itoa(s.ConfigID)
		row[1] = strconv.Itoa(s.AlgID)
		row[2] = strconv.Itoa(s.Nodes)
		row[3] = strconv.Itoa(s.PPN)
		row[4] = strconv.FormatInt(s.Msize, 10)
		row[5] = strconv.FormatFloat(s.Time, 'g', -1, 64)
		row[6] = strconv.Itoa(s.Reps)
		row[7] = strconv.FormatFloat(s.Consumed, 'g', -1, 64)
		row[8] = strconv.FormatBool(s.Exhausted)
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV deserializes a dataset written by WriteCSV. The spec grids
// (Nodes/PPNs/Msizes) are reconstructed from the samples.
func ReadCSV(r io.Reader) (*Dataset, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	meta, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("dataset: reading meta row: %w", err)
	}
	if len(meta) < 7 || meta[0] != "#meta" {
		return nil, fmt.Errorf("dataset: malformed meta row %v", meta)
	}
	d := &Dataset{Spec: Spec{Name: meta[1], Lib: meta[2], Version: meta[3], Coll: meta[4], Machine: meta[5]}}
	if d.Consumed, err = strconv.ParseFloat(meta[6], 64); err != nil {
		return nil, fmt.Errorf("dataset: bad consumed field: %w", err)
	}
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("dataset: reading header: %w", err)
	}
	if len(header) != len(csvHeader) && len(header) != csvLegacyCols {
		return nil, fmt.Errorf("dataset: unexpected header %v", header)
	}
	nodesSet := map[int]bool{}
	ppnSet := map[int]bool{}
	msizeSet := map[int64]bool{}
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		var s Sample
		if s.ConfigID, err = strconv.Atoi(rec[0]); err != nil {
			return nil, fmt.Errorf("dataset: bad config_id %q: %w", rec[0], err)
		}
		if s.AlgID, err = strconv.Atoi(rec[1]); err != nil {
			return nil, err
		}
		if s.Nodes, err = strconv.Atoi(rec[2]); err != nil {
			return nil, err
		}
		if s.PPN, err = strconv.Atoi(rec[3]); err != nil {
			return nil, err
		}
		if s.Msize, err = strconv.ParseInt(rec[4], 10, 64); err != nil {
			return nil, err
		}
		if s.Time, err = strconv.ParseFloat(rec[5], 64); err != nil {
			return nil, err
		}
		if s.Reps, err = strconv.Atoi(rec[6]); err != nil {
			return nil, err
		}
		if len(rec) >= len(csvHeader) {
			if s.Consumed, err = strconv.ParseFloat(rec[7], 64); err != nil {
				return nil, err
			}
			if s.Exhausted, err = strconv.ParseBool(rec[8]); err != nil {
				return nil, err
			}
		} else {
			// v1 rows carry no per-sample accounting; the repetition sum
			// approximates what the measurement consumed.
			s.Consumed = s.Time * float64(s.Reps)
		}
		d.Samples = append(d.Samples, s)
		nodesSet[s.Nodes] = true
		ppnSet[s.PPN] = true
		msizeSet[s.Msize] = true
	}
	d.Spec.Nodes = sortedInts(nodesSet)
	d.Spec.PPNs = sortedInts(ppnSet)
	d.Spec.Msizes = sortedInt64s(msizeSet)
	d.buildIndex()
	return d, nil
}

// Save writes the dataset to dir/<name>-<scale>.csv.
func (d *Dataset) Save(dir string, scale Scale) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	path := cachePath(dir, d.Spec.Name, scale)
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := d.WriteCSV(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadOrGenerate returns the cached dataset if dir holds one for (name,
// scale); otherwise it generates the dataset with the machine's default
// ReproMPI-style options and caches it.
func LoadOrGenerate(dir, name string, scale Scale, progress func(done, total int)) (*Dataset, error) {
	spec, err := SpecByName(name, scale)
	if err != nil {
		return nil, err
	}
	path := cachePath(dir, name, scale)
	if f, err := os.Open(path); err == nil {
		defer f.Close()
		d, err := ReadCSV(f)
		if err != nil {
			return nil, fmt.Errorf("dataset: corrupt cache %s: %w", path, err)
		}
		return d, nil
	}
	opts := bench.DefaultOptions(spec.Machine)
	opts.MaxReps = repsForScale(scale)
	d, err := Generate(spec, opts, progress)
	if err != nil {
		return nil, err
	}
	if err := d.Save(dir, scale); err != nil {
		return nil, err
	}
	return d, nil
}

// repsForScale bounds the repetition count by scale: the paper's cap of 500
// is a real-hardware robustness measure; in simulation a handful of
// noise-perturbed repetitions yields the same median stability at a
// fraction of the cost.
func repsForScale(scale Scale) int {
	switch scale {
	case ScaleFull:
		return 5
	case ScaleMid:
		return 2
	default:
		return 2
	}
}

func cachePath(dir, name string, scale Scale) string {
	return filepath.Join(dir, fmt.Sprintf("%s-%s.csv", name, scale))
}

func sortedInts(set map[int]bool) []int {
	out := make([]int, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}

func sortedInt64s(set map[int64]bool) []int64 {
	out := make([]int64, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
