// Online observation ingestion: the retraining loop feeds re-measured
// samples back into a dataset through Upsert, which holds them to the same
// per-row validation as a loaded cache (a bad observation is rejected, never
// silently trained on) and replaces the existing grid cell in place — the
// machine changed, so the new measurement supersedes the old one rather
// than duplicating its key.

package dataset

import (
	"fmt"

	"mpicollpred/internal/obs"
)

// ErrBadSample marks an observation that failed row validation in Upsert.
var ErrBadSample = fmt.Errorf("dataset: observation failed validation")

// Upsert validates one observed sample and merges it into the dataset:
// an existing (config, nodes, ppn, msize) cell is replaced in place
// (preserving sample order, so the dataset hash stays a pure function of
// the cell contents), a new cell is appended. The boolean reports whether
// an existing cell was replaced. A sample that fails the per-row checks is
// rejected with ErrBadSample and counted in the
// dataset_upsert_rejected_total metric — the same quarantine-on-ingest
// stance the CSV cache loader takes.
func (d *Dataset) Upsert(s Sample) (bool, error) {
	if reason := checkSample(s); reason != "" {
		obs.Default.Counter("dataset_upsert_rejected_total",
			obs.Labels{"dataset": d.Spec.Name}).Inc()
		return false, fmt.Errorf("%w: %s", ErrBadSample, reason)
	}
	if d.index == nil {
		d.buildIndex()
	}
	key := instKey{s.ConfigID, s.Nodes, s.PPN, s.Msize}
	if _, ok := d.index[key]; ok {
		for i := range d.Samples {
			old := &d.Samples[i]
			if old.ConfigID == s.ConfigID && old.Nodes == s.Nodes &&
				old.PPN == s.PPN && old.Msize == s.Msize {
				d.Consumed += s.Consumed - old.Consumed
				*old = s
				break
			}
		}
		d.index[key] = s.Time
		return true, nil
	}
	d.Samples = append(d.Samples, s)
	d.Consumed += s.Consumed
	d.index[key] = s.Time
	return false, nil
}
