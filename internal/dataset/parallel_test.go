package dataset

import (
	"bytes"
	"errors"
	"path/filepath"
	"testing"

	"mpicollpred/internal/bench"
	"mpicollpred/internal/obs"
)

// TestGenerateParallelByteIdentical is the tentpole guarantee: the worker
// count shards the measurement grid but never changes a byte of the output —
// samples, CSV encoding, consumed-budget accumulation order and metrics all
// follow commit order, which is grid order at any worker count.
func TestGenerateParallelByteIdentical(t *testing.T) {
	spec := tinySpec(t, "d2")
	mkOpts := func(workers int) (bench.Options, *bench.Metrics) {
		met := bench.NewMetrics(obs.NewRegistry(), obs.Labels{"dataset": "par-test"})
		return bench.Options{MaxReps: 2, SyncJitter: 1e-7, Workers: workers, Metrics: met}, met
	}
	serialOpts, serialMet := mkOpts(1)
	want, err := Generate(spec, serialOpts, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 4, 8} {
		opts, met := mkOpts(w)
		got, err := Generate(spec, opts, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(csvBytes(t, got), csvBytes(t, want)) {
			t.Errorf("workers=%d: CSV differs from serial generation", w)
		}
		if got.Consumed != want.Consumed {
			t.Errorf("workers=%d: consumed %v != serial %v", w, got.Consumed, want.Consumed)
		}
		if met.Measurements.Value() != serialMet.Measurements.Value() ||
			met.Reps.Value() != serialMet.Reps.Value() ||
			met.Consumed.Value() != serialMet.Consumed.Value() ||
			met.RepSeconds.Sum() != serialMet.RepSeconds.Sum() {
			t.Errorf("workers=%d: metrics diverge from serial", w)
		}
	}
}

// TestGenerateParallelProgressMatchesSerial pins the progress callback to
// instance boundaries in grid order, independent of worker count.
func TestGenerateParallelProgressMatchesSerial(t *testing.T) {
	spec := tinySpec(t, "d1")
	run := func(workers int) [][2]int {
		var calls [][2]int
		_, err := Generate(spec, bench.Options{MaxReps: 1, Workers: workers},
			func(done, total int) { calls = append(calls, [2]int{done, total}) })
		if err != nil {
			t.Fatal(err)
		}
		return calls
	}
	want := run(1)
	if len(want) != spec.NumInstances() {
		t.Fatalf("progress called %d times, want once per instance (%d)", len(want), spec.NumInstances())
	}
	got := run(4)
	if len(got) != len(want) {
		t.Fatalf("workers=4: %d progress calls, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("progress call %d: %v != %v", i, got[i], want[i])
		}
	}
}

// TestJournalIdentityIgnoresWorkers guards the resume contract: a journal
// written at one worker count must resume at any other, so Workers must not
// leak into the identity fingerprint — while every option that perturbs
// timings must.
func TestJournalIdentityIgnoresWorkers(t *testing.T) {
	spec := tinySpec(t, "d1")
	base := bench.Options{MaxReps: 2, SyncJitter: 1e-7}
	id := journalIdentity(spec, base)
	for _, w := range []int{0, 1, 4, 64} {
		opts := base
		opts.Workers = w
		if got := journalIdentity(spec, opts); got != id {
			t.Errorf("workers=%d changed the journal identity:\n%s\nvs\n%s", w, got, id)
		}
	}
	changed := base
	changed.MaxReps = 3
	if journalIdentity(spec, changed) == id {
		t.Error("MaxReps must change the journal identity")
	}
}

// TestParallelInterruptResumeByteIdentical interrupts a 4-worker sweep
// mid-run, checks the journal holds a usable (strict, non-empty) subset, and
// resumes — at a different worker count — into a dataset byte-identical to
// an uninterrupted serial run.
func TestParallelInterruptResumeByteIdentical(t *testing.T) {
	spec := tinySpec(t, "d3")
	opts := bench.Options{MaxReps: 2, SyncJitter: 1e-7, Workers: 1}
	want, err := Generate(spec, opts, nil)
	if err != nil {
		t.Fatal(err)
	}

	for _, resumeWorkers := range []int{1, 4} {
		journalPath := filepath.Join(t.TempDir(), "d3.journal")
		par := opts
		par.Workers = 4
		polls := 0
		_, err = GenerateResumable(spec, par, journalPath, false, func() bool {
			polls++
			return polls > 5
		}, nil)
		if !errors.Is(err, ErrInterrupted) {
			t.Fatalf("want ErrInterrupted, got %v", err)
		}
		_, recorded, err := readJournal(journalPath)
		if err != nil {
			t.Fatal(err)
		}
		if len(recorded) == 0 || len(recorded) >= len(want.Samples) {
			t.Fatalf("parallel interrupt journaled %d of %d samples, want a strict non-empty subset",
				len(recorded), len(want.Samples))
		}

		res := opts
		res.Workers = resumeWorkers
		got, err := GenerateResumable(spec, res, journalPath, true, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(csvBytes(t, got), csvBytes(t, want)) {
			t.Errorf("resume at %d workers: dataset not byte-identical to uninterrupted run", resumeWorkers)
		}
		if got.Consumed != want.Consumed {
			t.Errorf("resume at %d workers: consumed drifted: %v vs %v", resumeWorkers, got.Consumed, want.Consumed)
		}
	}
}

// TestParallelJournalIsContiguousPrefix checks the stronger property the
// ordered commit provides: an interrupted parallel run journals exactly the
// first K cells of the grid — never a cell whose predecessor is missing — so
// readers can trust the journal as a prefix checkpoint.
func TestParallelJournalIsContiguousPrefix(t *testing.T) {
	spec := tinySpec(t, "d2")
	opts := bench.Options{MaxReps: 2, SyncJitter: 1e-7, Workers: 4}
	journalPath := filepath.Join(t.TempDir(), "d2.journal")
	polls := 0
	_, err := GenerateResumable(spec, opts, journalPath, false, func() bool {
		polls++
		return polls > 4
	}, nil)
	if !errors.Is(err, ErrInterrupted) {
		t.Fatalf("want ErrInterrupted, got %v", err)
	}
	_, recorded, err := readJournal(journalPath)
	if err != nil {
		t.Fatal(err)
	}
	// Re-enumerate the grid in generation order and demand the journal be a
	// prefix of it.
	full, err := Generate(spec, bench.Options{MaxReps: 2, SyncJitter: 1e-7, Workers: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	seenEnd := false
	prefix := 0
	for _, s := range full.Samples {
		_, ok := recorded[sampleKey{s.ConfigID, s.Nodes, s.PPN, s.Msize}]
		if ok {
			if seenEnd {
				t.Fatalf("journal has a hole before cell %+v", s)
			}
			prefix++
		} else {
			seenEnd = true
		}
	}
	if prefix != len(recorded) {
		t.Errorf("journal rows off-grid: %d matched of %d", prefix, len(recorded))
	}
	if prefix == 0 || prefix >= len(full.Samples) {
		t.Errorf("prefix %d of %d not a strict non-empty prefix", prefix, len(full.Samples))
	}
}
