package dataset

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// RowIssue describes one sample that failed validation.
type RowIssue struct {
	// Index is the sample's position in Dataset.Samples.
	Index  int
	Sample Sample
	Reason string
}

// Report is the outcome of Validate: which rows are unusable and why, plus
// grid cells the dataset should cover but doesn't.
type Report struct {
	// Bad lists rows that must not reach training: non-finite or
	// non-positive times, impossible topology fields, duplicate keys.
	Bad []RowIssue
	// MissingCells counts (config, nodes, ppn, msize) grid cells with no
	// sample at all — coverage holes a partial or truncated cache leaves
	// behind.
	MissingCells int
	// Total is the number of samples inspected.
	Total int
}

// Clean reports whether the dataset passed every check.
func (r Report) Clean() bool { return len(r.Bad) == 0 && r.MissingCells == 0 }

// String summarizes the report for logs and quarantine files.
func (r Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d samples, %d bad, %d missing grid cells", r.Total, len(r.Bad), r.MissingCells)
	for _, is := range r.Bad {
		s := is.Sample
		fmt.Fprintf(&b, "\n  row %d (cfg=%d n=%d ppn=%d m=%d): %s",
			is.Index, s.ConfigID, s.Nodes, s.PPN, s.Msize, is.Reason)
	}
	return b.String()
}

// MaxPlausibleProcs bounds nodes × ppn for an instance to be considered a
// real allocation rather than garbage input: an order of magnitude above
// the largest machines the paper benchmarks, and far below anything that
// overflows downstream arithmetic.
const MaxPlausibleProcs = 1 << 22

// CheckInstance validates the (nodes, ppn, msize) triple of a problem
// instance — the plausibility subset of the per-sample checks, shared with
// the serving layer's request validation so a tuning request is vetted by
// exactly the rules that keep benchmark rows out of training.
func CheckInstance(nodes, ppn int, msize int64) error {
	switch {
	case nodes < 1 || ppn < 1:
		return fmt.Errorf("impossible allocation %dx%d", nodes, ppn)
	case msize < 1:
		return fmt.Errorf("message size %d < 1", msize)
	case nodes > MaxPlausibleProcs || ppn > MaxPlausibleProcs ||
		nodes*ppn > MaxPlausibleProcs:
		return fmt.Errorf("implausible allocation %dx%d (max %d processes)", nodes, ppn, MaxPlausibleProcs)
	}
	return nil
}

// checkSample returns the reason a sample is unusable, or "".
func checkSample(s Sample) string {
	if err := CheckInstance(s.Nodes, s.PPN, s.Msize); err != nil {
		return err.Error()
	}
	switch {
	case math.IsNaN(s.Time) || math.IsInf(s.Time, 0):
		return fmt.Sprintf("non-finite time %v", s.Time)
	case s.Time <= 0:
		return fmt.Sprintf("non-positive time %v", s.Time)
	case s.Reps < 1:
		return fmt.Sprintf("reps %d < 1", s.Reps)
	case s.ConfigID < 1:
		return fmt.Sprintf("config id %d < 1", s.ConfigID)
	case math.IsNaN(s.Consumed) || s.Consumed < 0:
		return fmt.Sprintf("negative consumed budget %v", s.Consumed)
	}
	return ""
}

// Validate checks every sample for values that would poison training — NaN,
// infinite, zero or negative times, impossible topology fields, duplicate
// (config, instance) keys — and measures grid coverage against the spec's
// full configuration × instance grid.
func (d *Dataset) Validate() Report {
	rep := Report{Total: len(d.Samples)}
	seen := make(map[sampleKey]bool, len(d.Samples))
	cfgSet := map[int]bool{}
	for i, s := range d.Samples {
		if reason := checkSample(s); reason != "" {
			rep.Bad = append(rep.Bad, RowIssue{Index: i, Sample: s, Reason: reason})
			continue
		}
		key := sampleKey{s.ConfigID, s.Nodes, s.PPN, s.Msize}
		if seen[key] {
			rep.Bad = append(rep.Bad, RowIssue{Index: i, Sample: s, Reason: "duplicate (config, instance) key"})
			continue
		}
		seen[key] = true
		cfgSet[s.ConfigID] = true
	}
	// Coverage: every known configuration should have a sample in every grid
	// cell of the spec.
	cfgs := make([]int, 0, len(cfgSet))
	for id := range cfgSet {
		cfgs = append(cfgs, id)
	}
	sort.Ints(cfgs)
	for _, id := range cfgs {
		for _, n := range d.Spec.Nodes {
			for _, ppn := range d.Spec.PPNs {
				for _, m := range d.Spec.Msizes {
					if !seen[sampleKey{id, n, ppn, m}] {
						rep.MissingCells++
					}
				}
			}
		}
	}
	return rep
}

// Quarantine drops every sample Validate flags as bad, rebuilds the lookup
// index, and returns the report describing what was removed. Coverage holes
// are reported but cannot be repaired here — regenerate the dataset (or
// resume its journal) to fill them.
func (d *Dataset) Quarantine() Report {
	rep := d.Validate()
	if len(rep.Bad) == 0 {
		return rep
	}
	drop := make(map[int]bool, len(rep.Bad))
	for _, is := range rep.Bad {
		drop[is.Index] = true
	}
	kept := d.Samples[:0]
	for i, s := range d.Samples {
		if !drop[i] {
			kept = append(kept, s)
		}
	}
	d.Samples = kept
	d.buildIndex()
	return rep
}
