package dataset

import (
	"encoding/binary"
	"hash/fnv"
	"math"
)

// Hash fingerprints the dataset's measured content: the spec identity and
// every sample's key fields and time, in sample order. Two datasets hash
// equal iff training on them is indistinguishable, which is what model
// snapshots record — a snapshot trained on one cache can be told apart from
// one trained on a regenerated or fault-injected variant.
func (d *Dataset) Hash() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	writeU64 := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		_, _ = h.Write(buf[:]) // hash.Hash never fails
	}
	_, _ = h.Write([]byte(d.Spec.Name + "|" + d.Spec.Lib + "|" + d.Spec.Version + "|" +
		d.Spec.Coll + "|" + d.Spec.Machine))
	writeU64(uint64(len(d.Samples)))
	for _, s := range d.Samples {
		writeU64(uint64(s.ConfigID))
		writeU64(uint64(s.Nodes))
		writeU64(uint64(s.PPN))
		writeU64(uint64(s.Msize))
		writeU64(math.Float64bits(s.Time))
	}
	return h.Sum64()
}
