package dataset

import (
	"bytes"
	"math"
	"path/filepath"
	"testing"

	"mpicollpred/internal/bench"
	"mpicollpred/internal/mpilib"
)

func TestSpecsMatchTableII(t *testing.T) {
	specs := Specs(ScaleFull)
	if len(specs) != 8 {
		t.Fatalf("expected 8 datasets, got %d", len(specs))
	}
	// Table II identity columns.
	want := []struct {
		name, lib, coll, mach string
		nNodes, nPPN, nMsizes int
	}{
		{"d1", "Open MPI", mpilib.Bcast, "Hydra", 11, 10, 10},
		{"d2", "Open MPI", mpilib.Allreduce, "Hydra", 11, 10, 10},
		{"d3", "Open MPI", mpilib.Bcast, "Jupiter", 10, 7, 10},
		{"d4", "Open MPI", mpilib.Allreduce, "Jupiter", 10, 7, 10},
		{"d5", "Intel MPI", mpilib.Allreduce, "Hydra", 11, 10, 10},
		{"d6", "Intel MPI", mpilib.Alltoall, "Hydra", 11, 10, 8},
		{"d7", "Intel MPI", mpilib.Bcast, "Hydra", 11, 10, 10},
		{"d8", "Open MPI", mpilib.Bcast, "SuperMUC-NG", 5, 5, 8},
	}
	for i, w := range want {
		s := specs[i]
		if s.Name != w.name || s.Lib != w.lib || s.Coll != w.coll || s.Machine != w.mach {
			t.Errorf("%s: identity mismatch: %+v", w.name, s)
		}
		if len(s.Nodes) != w.nNodes || len(s.PPNs) != w.nPPN || len(s.Msizes) != w.nMsizes {
			t.Errorf("%s: grid sizes %d/%d/%d, want %d/%d/%d", w.name,
				len(s.Nodes), len(s.PPNs), len(s.Msizes), w.nNodes, w.nPPN, w.nMsizes)
		}
		if _, _, err := s.Resolve(); err != nil {
			t.Errorf("%s: %v", w.name, err)
		}
	}
}

func TestSpecGridsWithinMachineLimits(t *testing.T) {
	for _, scale := range []Scale{ScaleFull, ScaleMid, ScaleSmoke} {
		for _, s := range Specs(scale) {
			mach, _, err := s.Resolve()
			if err != nil {
				t.Fatal(err)
			}
			for _, n := range s.Nodes {
				for _, ppn := range s.PPNs {
					if _, err := mach.Topo(n, ppn); err != nil {
						t.Errorf("%s (%s): invalid cell %dx%d: %v", s.Name, scale, n, ppn, err)
					}
				}
			}
		}
	}
}

func TestMidScaleKeepsFigureCells(t *testing.T) {
	// The figures need specific test cells: Fig 4/5/6 use ppn {1,16,32} on
	// Hydra, Fig 7 ppn {1,8,16} on Jupiter, Fig 8 ppn {1,24,48}.
	has := func(xs []int, v int) bool {
		for _, x := range xs {
			if x == v {
				return true
			}
		}
		return false
	}
	for _, s := range Specs(ScaleMid) {
		switch s.Machine {
		case "Hydra":
			if s.Name == "d6" {
				// d6 (alltoall) feeds no figure; its mid grid is thinner.
				continue
			}
			for _, v := range []int{1, 16, 32} {
				if !has(s.PPNs, v) {
					t.Errorf("%s: mid scale missing Hydra ppn %d", s.Name, v)
				}
			}
		case "Jupiter":
			for _, v := range []int{1, 8, 16} {
				if !has(s.PPNs, v) {
					t.Errorf("%s: mid scale missing Jupiter ppn %d", s.Name, v)
				}
			}
		case "SuperMUC-NG":
			for _, v := range []int{1, 24, 48} {
				if !has(s.PPNs, v) {
					t.Errorf("%s: mid scale missing SuperMUC ppn %d", s.Name, v)
				}
			}
		}
		for _, n := range []int{27, 35} {
			if !has(s.Nodes, n) {
				t.Errorf("%s: mid scale missing test node count %d", s.Name, n)
			}
		}
	}
}

func smokeDataset(t *testing.T, name string) *Dataset {
	t.Helper()
	spec, err := SpecByName(name, ScaleSmoke)
	if err != nil {
		t.Fatal(err)
	}
	// Narrow further for test speed: two nodes values, one ppn.
	spec.Nodes = []int{2, 3}
	spec.PPNs = []int{2}
	d, err := Generate(spec, bench.Options{MaxReps: 2, SyncJitter: 1e-7}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestGenerateSmoke(t *testing.T) {
	d := smokeDataset(t, "d2")
	_, set, _ := d.Spec.Resolve()
	wantSamples := len(set.Configs) * d.Spec.NumInstances()
	if len(d.Samples) != wantSamples {
		t.Fatalf("samples = %d, want %d", len(d.Samples), wantSamples)
	}
	for _, s := range d.Samples {
		if s.Time <= 0 {
			t.Fatalf("non-positive time in sample %+v", s)
		}
	}
	if d.Consumed <= 0 {
		t.Error("consumed budget must be positive")
	}
	// Lookup and Best agree with the raw samples.
	in := d.Instances()[0]
	id, best, ok := d.Best(set, in.Nodes, in.PPN, in.Msize)
	if !ok {
		t.Fatal("Best found nothing")
	}
	for _, cfg := range set.Selectable() {
		tt, ok := d.Lookup(cfg.ID, in.Nodes, in.PPN, in.Msize)
		if !ok {
			t.Fatalf("missing lookup for config %d", cfg.ID)
		}
		if tt < best {
			t.Errorf("Best returned %d (%v) but config %d is faster (%v)", id, best, cfg.ID, tt)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := smokeDataset(t, "d1")
	b := smokeDataset(t, "d1")
	if len(a.Samples) != len(b.Samples) {
		t.Fatal("sample count differs")
	}
	for i := range a.Samples {
		if a.Samples[i] != b.Samples[i] {
			t.Fatalf("sample %d differs: %+v vs %+v", i, a.Samples[i], b.Samples[i])
		}
	}
}

func TestCSVRoundTrip(t *testing.T) {
	d := smokeDataset(t, "d6")
	var buf bytes.Buffer
	if err := d.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	d2, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if d2.Spec.Name != d.Spec.Name || d2.Spec.Lib != d.Spec.Lib || d2.Spec.Coll != d.Spec.Coll {
		t.Fatalf("spec identity lost: %+v", d2.Spec)
	}
	if d2.Consumed != d.Consumed {
		t.Error("consumed budget lost")
	}
	if len(d2.Samples) != len(d.Samples) {
		t.Fatalf("sample count %d vs %d", len(d2.Samples), len(d.Samples))
	}
	for i := range d.Samples {
		if d.Samples[i] != d2.Samples[i] {
			t.Fatalf("sample %d mismatch", i)
		}
	}
	// Reconstructed grids must match the generated ones.
	if len(d2.Spec.Nodes) != len(d.Spec.Nodes) || len(d2.Spec.Msizes) != len(d.Spec.Msizes) {
		t.Error("grid reconstruction broken")
	}
}

func TestReadCSVLegacyFormat(t *testing.T) {
	// v1 cache files (7 columns, no per-sample accounting) must still load:
	// Consumed is estimated from time × reps and Exhausted defaults off.
	legacy := "#meta,d1,Open MPI,4.0.2,bcast,Hydra,12.5\n" +
		"config_id,alg_id,nodes,ppn,msize,time_s,reps\n" +
		"1,1,4,8,1024,0.002,5\n" +
		"2,2,4,8,1024,0.004,2\n"
	d, err := ReadCSV(bytes.NewBufferString(legacy))
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Samples) != 2 {
		t.Fatalf("samples = %d", len(d.Samples))
	}
	if d.Consumed != 12.5 {
		t.Errorf("meta consumed = %v", d.Consumed)
	}
	s := d.Samples[0]
	if math.Abs(s.Consumed-0.002*5) > 1e-12 || s.Exhausted {
		t.Errorf("legacy accounting defaults wrong: %+v", s)
	}
	if _, ok := d.Lookup(2, 4, 8, 1024); !ok {
		t.Error("legacy rows must index normally")
	}
}

func TestCSVAccountingRoundTrip(t *testing.T) {
	d := smokeDataset(t, "d1")
	// Force a mix of values through the exhausted/consumed columns.
	d.Samples[0].Exhausted = true
	d.Samples[0].Consumed = 0.123
	var buf bytes.Buffer
	if err := d.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	d2, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !d2.Samples[0].Exhausted || d2.Samples[0].Consumed != 0.123 {
		t.Errorf("accounting columns lost: %+v", d2.Samples[0])
	}
	if d2.ExhaustedCount() != d.ExhaustedCount() {
		t.Errorf("exhausted count %d vs %d", d2.ExhaustedCount(), d.ExhaustedCount())
	}
}

func TestReadCSVRejectsGarbage(t *testing.T) {
	if _, err := ReadCSV(bytes.NewBufferString("not,a,dataset\n")); err == nil {
		t.Error("expected error for malformed meta")
	}
	if _, err := ReadCSV(bytes.NewBufferString("")); err == nil {
		t.Error("expected error for empty input")
	}
}

func TestLoadOrGenerateCaches(t *testing.T) {
	dir := t.TempDir()
	spec, _ := SpecByName("d4", ScaleSmoke)
	// Shrink via a custom generate+save to keep the test fast, then hit
	// the cache path of LoadOrGenerate.
	spec.Nodes = []int{2}
	spec.PPNs = []int{2}
	d, err := Generate(spec, bench.Options{MaxReps: 1, SyncJitter: 1e-7}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Save(dir, ScaleSmoke); err != nil {
		t.Fatal(err)
	}
	got, err := LoadOrGenerate(dir, "d4", ScaleSmoke, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Samples) != len(d.Samples) {
		t.Errorf("cache returned %d samples, want %d", len(got.Samples), len(d.Samples))
	}
	if _, err := filepath.Glob(filepath.Join(dir, "*.csv")); err != nil {
		t.Fatal(err)
	}
}

func TestProgressCallback(t *testing.T) {
	spec, _ := SpecByName("d2", ScaleSmoke)
	spec.Nodes = []int{2}
	spec.PPNs = []int{1}
	calls := 0
	lastDone := 0
	_, err := Generate(spec, bench.Options{MaxReps: 1}, func(done, total int) {
		calls++
		if done <= lastDone {
			t.Error("progress not monotone")
		}
		lastDone = done
		if total != spec.NumInstances()*11 { // 11 Open MPI allreduce configs
			t.Errorf("total = %d", total)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != spec.NumInstances() {
		t.Errorf("progress called %d times, want %d", calls, spec.NumInstances())
	}
}
