package dataset

import (
	"bytes"
	"errors"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mpicollpred/internal/bench"
	"mpicollpred/internal/fault"
)

func tinySpec(t *testing.T, name string) Spec {
	t.Helper()
	spec, err := SpecByName(name, ScaleSmoke)
	if err != nil {
		t.Fatal(err)
	}
	spec.Nodes = []int{2, 3}
	spec.PPNs = []int{2}
	spec.Msizes = []int64{64, 4096}
	return spec
}

func csvBytes(t *testing.T, d *Dataset) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := d.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestSaveIsAtomic(t *testing.T) {
	dir := t.TempDir()
	d, err := Generate(tinySpec(t, "d1"), bench.Options{MaxReps: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Save(dir, ScaleSmoke); err != nil {
		t.Fatal(err)
	}
	tmps, _ := filepath.Glob(filepath.Join(dir, "*.tmp"))
	if len(tmps) != 0 {
		t.Errorf("temp files left behind: %v", tmps)
	}
	f, err := os.Open(cachePath(dir, "d1", ScaleSmoke))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := ReadCSV(f); err != nil {
		t.Errorf("saved cache unreadable: %v", err)
	}
}

func TestGenerateResumableMatchesUninterruptedRun(t *testing.T) {
	spec := tinySpec(t, "d2")
	opts := bench.Options{MaxReps: 2, SyncJitter: 1e-7}
	want, err := Generate(spec, opts, nil)
	if err != nil {
		t.Fatal(err)
	}

	journalPath := filepath.Join(t.TempDir(), "d2.journal")
	// First run: interrupt before the 6th measurement (stop is polled once
	// per fresh measurement).
	polls := 0
	_, err = GenerateResumable(spec, opts, journalPath, false, func() bool {
		polls++
		return polls > 5
	}, nil)
	if !errors.Is(err, ErrInterrupted) {
		t.Fatalf("want ErrInterrupted, got %v", err)
	}
	_, recorded, err := readJournal(journalPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(recorded) == 0 {
		t.Fatal("interrupted run journaled nothing")
	}
	if len(recorded) >= len(want.Samples) {
		t.Fatalf("interrupted run journaled everything (%d samples)", len(recorded))
	}

	// Second run resumes and completes.
	got, err := GenerateResumable(spec, opts, journalPath, true, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(csvBytes(t, got), csvBytes(t, want)) {
		t.Error("resumed dataset is not byte-identical to an uninterrupted run")
	}
	if got.Consumed != want.Consumed {
		t.Errorf("consumed budget drifted: %v vs %v", got.Consumed, want.Consumed)
	}
}

func TestGenerateResumableStopBeforeAnything(t *testing.T) {
	spec := tinySpec(t, "d1")
	journalPath := filepath.Join(t.TempDir(), "d1.journal")
	_, err := GenerateResumable(spec, bench.Options{MaxReps: 1}, journalPath, false,
		func() bool { return true }, nil)
	if !errors.Is(err, ErrInterrupted) {
		t.Fatalf("want ErrInterrupted, got %v", err)
	}
	// Resume from the (header-only) journal still completes.
	got, err := GenerateResumable(spec, bench.Options{MaxReps: 1}, journalPath, true, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := Generate(spec, bench.Options{MaxReps: 1}, nil)
	if !bytes.Equal(csvBytes(t, got), csvBytes(t, want)) {
		t.Error("resume-from-empty diverged from a fresh run")
	}
}

func TestResumeRejectsMismatchedJournal(t *testing.T) {
	spec := tinySpec(t, "d1")
	clean := bench.Options{MaxReps: 2, SyncJitter: 1e-7}
	plan, err := fault.Parse("straggler:node=0,factor=8")
	if err != nil {
		t.Fatal(err)
	}
	faulty := clean
	faulty.Faults = plan

	journalPath := filepath.Join(t.TempDir(), "d1.journal")
	// Complete a faulty run so the journal is full of perturbed samples.
	if _, err := GenerateResumable(spec, faulty, journalPath, false, nil, nil); err != nil {
		t.Fatal(err)
	}
	// Resuming a CLEAN run from that journal must ignore it entirely.
	got, err := GenerateResumable(spec, clean, journalPath, true, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := Generate(spec, clean, nil)
	if !bytes.Equal(csvBytes(t, got), csvBytes(t, want)) {
		t.Error("clean run reused fault-perturbed journal rows")
	}
}

func TestJournalToleratesTornLastLine(t *testing.T) {
	spec := tinySpec(t, "d1")
	opts := bench.Options{MaxReps: 1}
	journalPath := filepath.Join(t.TempDir(), "d1.journal")
	if _, err := GenerateResumable(spec, opts, journalPath, false, nil, nil); err != nil {
		t.Fatal(err)
	}
	_, full, err := readJournal(journalPath)
	if err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-append: a truncated trailing row.
	f, err := os.OpenFile(journalPath, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("3,1,2,2,40"); err != nil {
		t.Fatal(err)
	}
	f.Close()
	_, torn, err := readJournal(journalPath)
	if err != nil {
		t.Fatalf("torn journal must still load: %v", err)
	}
	if len(torn) != len(full) {
		t.Errorf("torn journal lost intact rows: %d vs %d", len(torn), len(full))
	}
	// And a resumed run from the torn journal still completes correctly.
	got, err := GenerateResumable(spec, opts, journalPath, true, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := Generate(spec, opts, nil)
	if !bytes.Equal(csvBytes(t, got), csvBytes(t, want)) {
		t.Error("resume from torn journal diverged")
	}
}

func TestValidateCleanDataset(t *testing.T) {
	d, err := Generate(tinySpec(t, "d1"), bench.Options{MaxReps: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	rep := d.Validate()
	if !rep.Clean() {
		t.Errorf("freshly generated dataset failed validation: %s", rep)
	}
}

func TestValidateFlagsBadRows(t *testing.T) {
	d, err := Generate(tinySpec(t, "d1"), bench.Options{MaxReps: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	nGood := len(d.Samples)
	d.Samples[0].Time = math.NaN()
	d.Samples[1].Time = -1
	d.Samples[2].Time = 0
	d.Samples[3].Reps = 0
	dup := d.Samples[5]
	d.Samples = append(d.Samples, dup)

	rep := d.Validate()
	if len(rep.Bad) != 5 {
		t.Fatalf("bad rows = %d, want 5: %s", len(rep.Bad), rep)
	}
	reasons := rep.String()
	for _, want := range []string{"non-finite", "non-positive", "reps 0 < 1", "duplicate"} {
		if !strings.Contains(reasons, want) {
			t.Errorf("report missing reason %q:\n%s", want, reasons)
		}
	}
	// The 4 corrupted rows leave coverage holes (the duplicate does not).
	if rep.MissingCells != 4 {
		t.Errorf("missing cells = %d, want 4", rep.MissingCells)
	}

	qrep := d.Quarantine()
	if len(qrep.Bad) != 5 {
		t.Errorf("quarantine dropped %d rows, want 5", len(qrep.Bad))
	}
	if len(d.Samples) != nGood-4 {
		t.Errorf("samples after quarantine = %d, want %d", len(d.Samples), nGood-4)
	}
	if d.Validate().MissingCells != 4 {
		t.Error("quarantined dataset should still report its coverage holes")
	}
	// The corrupted rows must be gone from the index.
	bad := qrep.Bad[0].Sample
	if got, ok := d.Lookup(bad.ConfigID, bad.Nodes, bad.PPN, bad.Msize); ok && (math.IsNaN(got) || got <= 0) {
		t.Errorf("quarantined value still served by Lookup: %v", got)
	}
}

func TestLoadOrGenerateQuarantinesCorruptRows(t *testing.T) {
	dir := t.TempDir()
	spec, _ := SpecByName("d4", ScaleSmoke)
	spec.Nodes = []int{2}
	spec.PPNs = []int{2}
	d, err := Generate(spec, bench.Options{MaxReps: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	n := len(d.Samples)
	d.Samples[0].Time = math.NaN()
	if err := d.Save(dir, ScaleSmoke); err != nil {
		t.Fatal(err)
	}
	got, err := LoadOrGenerate(dir, "d4", ScaleSmoke, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Samples) != n-1 {
		t.Errorf("loaded %d samples, want %d (NaN row quarantined)", len(got.Samples), n-1)
	}
}

func TestGenerateWithFaultsDiverges(t *testing.T) {
	spec := tinySpec(t, "d1")
	clean, err := Generate(spec, bench.Options{MaxReps: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := fault.Parse("straggler:node=0,factor=4")
	if err != nil {
		t.Fatal(err)
	}
	faulty, err := Generate(spec, bench.Options{MaxReps: 1, Faults: plan}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(csvBytes(t, clean), csvBytes(t, faulty)) {
		t.Error("fault injection had no effect on the dataset")
	}
	// In aggregate a 4x straggler costs real time. (Individual samples may
	// jitter either way because noise draws land on different transfers.)
	if faulty.Consumed <= clean.Consumed {
		t.Errorf("faulty run consumed %v <= clean %v", faulty.Consumed, clean.Consumed)
	}
}
