package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// Package is one loaded, parsed, and type-checked package.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	TypesInfo  *types.Info
}

// listedPackage mirrors the fields of `go list -json` output the loader
// consumes.
type listedPackage struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
	Error      *struct {
		Err string
	}
}

// Load resolves patterns (e.g. "./...") relative to dir with the go tool,
// then parses and type-checks every matched package from source. Only
// non-test Go files are analyzed — the analyzers' invariants target
// production code, and the floateq rule explicitly exempts tests.
//
// Dependencies (including the standard library) are resolved from compiler
// export data produced by `go list -export`, so the loader needs no
// GOPATH-era package layout and no dependency beyond the go toolchain
// itself.
func Load(dir string, patterns []string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{
		"list", "-e", "-export", "-deps",
		"-json=ImportPath,Dir,Export,GoFiles,Standard,DepOnly,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("lint: go list %v: %v\n%s", patterns, err, stderr.String())
	}

	exports := map[string]string{}
	var targets []listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: parsing go list output: %v", err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if p.DepOnly || p.Standard {
			continue
		}
		if p.Error != nil {
			return nil, fmt.Errorf("lint: %s: %s", p.ImportPath, p.Error.Err)
		}
		targets = append(targets, p)
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		exp, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(exp)
	})
	conf := types.Config{Importer: imp}

	var pkgs []*Package
	for _, t := range targets {
		if len(t.GoFiles) == 0 {
			continue
		}
		files := make([]*ast.File, 0, len(t.GoFiles))
		for _, name := range t.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(t.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("lint: %v", err)
			}
			files = append(files, f)
		}
		info := &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Uses:       map[*ast.Ident]types.Object{},
			Defs:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
		}
		tpkg, err := conf.Check(t.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("lint: type-checking %s: %v", t.ImportPath, err)
		}
		pkgs = append(pkgs, &Package{
			ImportPath: t.ImportPath,
			Dir:        t.Dir,
			Fset:       fset,
			Files:      files,
			Types:      tpkg,
			TypesInfo:  info,
		})
	}
	return pkgs, nil
}
