package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
)

// Package is one loaded, parsed, and type-checked package.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	TypesInfo  *types.Info
}

// listedPackage mirrors the fields of `go list -json` output the loader
// consumes.
type listedPackage struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
	Error      *struct {
		Err string
	}
}

// listing is the result of the single `go list` invocation a load starts
// with: the analysis targets plus export-data locations for every
// dependency. It can be loaded more than once (the runtime benchmark loads
// serially and in parallel from the same listing).
type listing struct {
	exports map[string]string
	targets []listedPackage
}

// list resolves patterns (e.g. "./...") relative to dir with the go tool.
func list(dir string, patterns []string) (*listing, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{
		"list", "-e", "-export", "-deps",
		"-json=ImportPath,Dir,Export,GoFiles,Standard,DepOnly,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("lint: go list %v: %v\n%s", patterns, err, stderr.String())
	}

	l := &listing{exports: map[string]string{}}
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: parsing go list output: %v", err)
		}
		if p.Export != "" {
			l.exports[p.ImportPath] = p.Export
		}
		if p.DepOnly || p.Standard {
			continue
		}
		if p.Error != nil {
			return nil, fmt.Errorf("lint: %s: %s", p.ImportPath, p.Error.Err)
		}
		if len(p.GoFiles) == 0 {
			continue
		}
		l.targets = append(l.targets, p)
	}
	return l, nil
}

// load parses and type-checks every listed target from source, with up to
// workers packages in flight at once. The token.FileSet is shared (it locks
// internally); each worker owns its importer and types.Config, because the
// gc importer's cache is not safe for concurrent use. Resulting *types*
// object identities therefore differ between worker universes for the same
// dependency — which is why the call graph (callgraph.go) keys functions on
// FullName strings rather than object pointers. Package order and any error
// reported are independent of scheduling: results commit into load-order
// slots and the first error by index wins.
func (l *listing) load(workers int) ([]*Package, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	fset := token.NewFileSet()
	lookup := func(path string) (io.ReadCloser, error) {
		exp, ok := l.exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(exp)
	}
	pkgs := make([]*Package, len(l.targets))
	errs := make([]error, len(l.targets))
	jobs := make(chan int)
	done := make(chan struct{})
	nworkers := workers
	if nworkers > len(l.targets) {
		nworkers = len(l.targets)
	}
	if nworkers < 1 {
		nworkers = 1
	}
	for w := 0; w < nworkers; w++ {
		go func() {
			defer func() { done <- struct{}{} }()
			conf := types.Config{Importer: importer.ForCompiler(fset, "gc", lookup)}
			for i := range jobs {
				pkgs[i], errs[i] = loadOne(fset, &conf, l.targets[i])
			}
		}()
	}
	for i := range l.targets {
		jobs <- i
	}
	close(jobs)
	for w := 0; w < nworkers; w++ {
		<-done
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return pkgs, nil
}

// loadOne parses and type-checks a single package.
func loadOne(fset *token.FileSet, conf *types.Config, t listedPackage) (*Package, error) {
	files := make([]*ast.File, 0, len(t.GoFiles))
	for _, name := range t.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(t.Dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: %v", err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Uses:       map[*ast.Ident]types.Object{},
		Defs:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	tpkg, err := conf.Check(t.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %v", t.ImportPath, err)
	}
	return &Package{
		ImportPath: t.ImportPath,
		Dir:        t.Dir,
		Fset:       fset,
		Files:      files,
		Types:      tpkg,
		TypesInfo:  info,
	}, nil
}

// Load resolves patterns with the go tool, then parses and type-checks every
// matched package from source on GOMAXPROCS workers. Only non-test Go files
// are analyzed — the analyzers' invariants target production code, and the
// floateq rule explicitly exempts tests.
//
// Dependencies (including the standard library) are resolved from compiler
// export data produced by `go list -export`, so the loader needs no
// GOPATH-era package layout and no dependency beyond the go toolchain
// itself.
func Load(dir string, patterns []string) ([]*Package, error) {
	return LoadWorkers(dir, patterns, 0)
}

// LoadWorkers is Load with an explicit parallelism bound; workers <= 0 means
// GOMAXPROCS.
func LoadWorkers(dir string, patterns []string, workers int) ([]*Package, error) {
	l, err := list(dir, patterns)
	if err != nil {
		return nil, err
	}
	return l.load(workers)
}
