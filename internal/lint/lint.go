// Package lint is mpicollvet's analysis framework: a small, stdlib-only
// reimplementation of the parts of golang.org/x/tools/go/analysis this
// project needs. It loads packages with go/parser + go/types (export data
// supplied by `go list -export`), runs a suite of domain-specific analyzers
// over them, and reports findings.
//
// The analyzers encode the pipeline's determinism, numeric-safety, and
// metrics-hygiene invariants (DESIGN §8): artifacts must be byte-identical
// across runs, floating-point comparisons must be epsilon-aware, randomness
// must be explicitly seeded, simulated packages must not read the wall
// clock, writer errors must not be silently dropped, and panics are only
// allowed where a guardrail recovers them.
//
// A finding can be suppressed in source with a directive comment on the
// same line or the line directly above:
//
//	//mpicollvet:ignore <analyzer> <reason>
//
// The reason is mandatory; a directive without one is itself reported.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
	"sync"
)

// An Analyzer is one named check. Run inspects a single package via the
// Pass and reports findings through it.
type Analyzer struct {
	// Name identifies the analyzer in reports and ignore directives.
	Name string
	// Doc is a one-line description of the invariant the analyzer protects.
	Doc string
	// Run performs the check on one package.
	Run func(*Pass)
}

// A Pass carries one analyzed package to an Analyzer's Run function.
type Pass struct {
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Graph is the whole-run call graph with propagated effects, shared
	// read-only by every pass. Nil when an analyzer is driven outside the
	// Runner; graph-based analyzers must tolerate that.
	Graph *Graph

	analyzer *Analyzer
	findings *[]Finding
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.findings = append(*p.findings, Finding{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// A Finding is one reported violation.
type Finding struct {
	Pos      token.Position `json:"-"`
	File     string         `json:"file"`
	Line     int            `json:"line"`
	Col      int            `json:"col"`
	Analyzer string         `json:"analyzer"`
	Message  string         `json:"message"`
}

// fill populates the flattened JSON fields from Pos.
func (f *Finding) fill() {
	f.File, f.Line, f.Col = f.Pos.Filename, f.Pos.Line, f.Pos.Column
}

// String renders the finding in the canonical file:line:col: [analyzer] form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.File, f.Line, f.Col, f.Analyzer, f.Message)
}

// ignoreDirective is the prefix of a suppression comment.
const ignoreDirective = "//mpicollvet:ignore"

// suppression is one parsed ignore directive.
type suppression struct {
	analyzer string
	line     int
	file     string
}

// suppressionKey locates a directive for lookup.
type suppressionKey struct {
	file     string
	line     int
	analyzer string
}

// collectSuppressions parses every ignore directive in the package. A
// malformed directive (missing analyzer name or reason) is reported as a
// finding of the pseudo-analyzer "ignore" so that typos cannot silently
// disable a check.
func collectSuppressions(fset *token.FileSet, files []*ast.File, known map[string]bool) (map[suppressionKey]bool, []Finding) {
	sups := map[suppressionKey]bool{}
	var bad []Finding
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, ignoreDirective) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, ignoreDirective)
				fields := strings.Fields(rest)
				pos := fset.Position(c.Pos())
				if len(fields) < 2 {
					bad = append(bad, Finding{
						Pos:      pos,
						Analyzer: "ignore",
						Message:  "malformed directive: want //mpicollvet:ignore <analyzer> <reason>",
					})
					continue
				}
				name := fields[0]
				if !known[name] {
					bad = append(bad, Finding{
						Pos:      pos,
						Analyzer: "ignore",
						Message:  fmt.Sprintf("directive names unknown analyzer %q", name),
					})
					continue
				}
				sups[suppressionKey{pos.Filename, pos.Line, name}] = true
			}
		}
	}
	return sups, bad
}

// Runner applies a fixed suite of analyzers to loaded packages.
type Runner struct {
	Analyzers []*Analyzer
	// Workers is the number of packages analyzed concurrently; values <= 1
	// run serially. Output is byte-identical at any worker count: findings
	// commit into a per-package slot indexed by load order and are then
	// canonically sorted and deduplicated.
	Workers int
}

// Run builds the call graph over all packages, analyzes every package, and
// returns the surviving findings in canonical order: sorted by (file, line,
// column, analyzer, message) with exact duplicates collapsed. Findings on a
// line carrying (or directly below) a matching ignore directive are dropped.
func (r *Runner) Run(pkgs []*Package) []Finding {
	known := map[string]bool{}
	for _, a := range r.Analyzers {
		known[a.Name] = true
	}
	graph := BuildGraphWorkers(pkgs, r.Workers)
	results := make([][]Finding, len(pkgs))
	runPkg := func(i int) {
		pkg := pkgs[i]
		sups, bad := collectSuppressions(pkg.Fset, pkg.Files, known)
		kept := bad
		var raw []Finding
		for _, a := range r.Analyzers {
			pass := &Pass{
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
				Graph:     graph,
				analyzer:  a,
				findings:  &raw,
			}
			a.Run(pass)
		}
		for _, f := range raw {
			if sups[suppressionKey{f.Pos.Filename, f.Pos.Line, f.Analyzer}] ||
				sups[suppressionKey{f.Pos.Filename, f.Pos.Line - 1, f.Analyzer}] {
				continue
			}
			kept = append(kept, f)
		}
		results[i] = kept
	}
	forEachIndex(len(pkgs), r.Workers, runPkg)
	var out []Finding
	for _, fs := range results {
		out = append(out, fs...)
	}
	for i := range out {
		out[i].fill()
	}
	sortFindings(out)
	return dedupFindings(out)
}

// forEachIndex runs fn(0..n-1) on a bounded worker pool (the PR-5 fit-pool
// pattern); workers <= 1 runs inline.
func forEachIndex(n, workers int, fn func(int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
}

// sortFindings orders findings canonically. The message is the final
// tiebreak so that analyzers iterating unordered containers (type-info maps)
// still produce byte-identical reports under any scheduling.
func sortFindings(out []Finding) {
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}

// dedupFindings collapses exact duplicates in a sorted slice. Interprocedural
// checks can legitimately reach the same defect from two spawn sites; one
// report is enough.
func dedupFindings(out []Finding) []Finding {
	kept := out[:0]
	for i, f := range out {
		if i > 0 {
			p := out[i-1]
			if p.File == f.File && p.Line == f.Line && p.Col == f.Col &&
				p.Analyzer == f.Analyzer && p.Message == f.Message {
				continue
			}
		}
		kept = append(kept, f)
	}
	return kept
}

// pathMatches reports whether an import path matches pattern: exactly, as a
// path suffix, as a prefix, or as an interior segment sequence. Patterns are
// slash-separated import-path fragments like "internal/sim".
func pathMatches(path, pattern string) bool {
	return path == pattern ||
		strings.HasSuffix(path, "/"+pattern) ||
		strings.HasPrefix(path, pattern+"/") ||
		strings.Contains(path, "/"+pattern+"/")
}

// anyPathMatches reports whether path matches any of the patterns.
func anyPathMatches(path string, patterns []string) bool {
	for _, p := range patterns {
		if pathMatches(path, p) {
			return true
		}
	}
	return false
}

// isErrorType reports whether t is the built-in error interface.
func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}
