package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// mutexMethods maps the sync locking entry points to their releasing
// counterparts. TryLock deliberately does not open a region: the repo's
// single-flight pattern (fleet rollout) holds a TryLock'd mutex across an
// entire rollout by design, and a failed TryLock holds nothing.
var mutexLockPairs = map[string]string{
	"(*sync.Mutex).Lock":    "(*sync.Mutex).Unlock",
	"(*sync.RWMutex).Lock":  "(*sync.RWMutex).Unlock",
	"(*sync.RWMutex).RLock": "(*sync.RWMutex).RUnlock",
}

// lockRegion is a source range during which a mutex is held: from a
// Lock/RLock call to the matching Unlock on the same receiver expression
// (source order), or to the end of the function when the unlock is deferred
// or absent.
type lockRegion struct {
	recv       string    // rendered receiver expression, e.g. "b.mu"
	start, end token.Pos // exclusive of the lock call itself
	body       *ast.BlockStmt
}

// mutexRegions computes every lock region in the package. The scan is a
// deliberate under-approximation: regions follow source order within one
// function body (a branch that unlocks early simply ends the region at that
// unlock), and deferred statements inside a region are not attributed to it
// even though LIFO ordering can run them under the lock.
func mutexRegions(pass *Pass) []lockRegion {
	var regions []lockRegion
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			default:
				return true
			}
			if body == nil {
				return true
			}
			regions = append(regions, regionsInBody(pass, body)...)
			return true // nested closures scanned by their own visit
		})
	}
	return regions
}

// regionsInBody finds lock regions whose Lock call appears directly in this
// function body (closures excluded — they have their own bodies).
func regionsInBody(pass *Pass, body *ast.BlockStmt) []lockRegion {
	type lockCall struct {
		call   *ast.CallExpr
		recv   string
		unlock string
	}
	var locks []lockCall
	unlocks := map[string][]token.Pos{} // "recv\x00method" -> call positions
	deferred := map[string]bool{}       // same key, appears in a defer
	var nodes []ast.Node                // body nodes excluding closure subtrees
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		nodes = append(nodes, n)
		return true
	})
	var deferRanges [][2]token.Pos
	for _, n := range nodes {
		if d, ok := n.(*ast.DeferStmt); ok {
			deferRanges = append(deferRanges, [2]token.Pos{d.Pos(), d.End()})
		}
	}
	isDefer := func(pos token.Pos) bool {
		for _, r := range deferRanges {
			if pos >= r[0] && pos < r[1] {
				return true
			}
		}
		return false
	}
	for _, n := range nodes {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			continue
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			continue
		}
		name := mutexMethodName(pass, sel)
		if name == "" {
			continue
		}
		recv := types.ExprString(sel.X)
		if unlock, isLock := mutexLockPairs[name]; isLock && !isDefer(call.Pos()) {
			locks = append(locks, lockCall{call: call, recv: recv, unlock: unlock})
			continue
		}
		key := recv + "\x00" + name
		if isDefer(call.Pos()) {
			deferred[key] = true
		} else {
			unlocks[key] = append(unlocks[key], call.Pos())
		}
	}
	var regions []lockRegion
	for _, lc := range locks {
		r := lockRegion{recv: lc.recv, start: lc.call.End(), end: body.End(), body: body}
		key := lc.recv + "\x00" + lc.unlock
		if !deferred[key] {
			for _, pos := range unlocks[key] {
				if pos > lc.call.End() && pos < r.end {
					r.end = pos
				}
			}
		}
		regions = append(regions, r)
	}
	return regions
}

// mutexMethodName returns the sync mutex method FullName a selector resolves
// to ("(*sync.Mutex).Lock", ...), or "" if it is not one. Embedded mutexes
// resolve through the selection's method object, so `s.Lock()` on a struct
// embedding sync.Mutex is recognized.
func mutexMethodName(pass *Pass, sel *ast.SelectorExpr) string {
	s, ok := pass.TypesInfo.Selections[sel]
	if !ok {
		return ""
	}
	f, ok := s.Obj().(*types.Func)
	if !ok {
		return ""
	}
	name := funcName(f)
	if _, isLock := mutexLockPairs[name]; isLock {
		return name
	}
	for _, unlock := range mutexLockPairs {
		if name == unlock {
			return name
		}
	}
	return ""
}

// regionNodes visits every node executed synchronously inside the region:
// closure bodies and go statements are skipped (a closure's effects surface
// at its call site; a spawn does not block), as are deferred calls (they run
// at return, outside the source region model).
func (r lockRegion) nodes(visit func(ast.Node)) {
	ast.Inspect(r.body, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		switch n.(type) {
		case *ast.FuncLit, *ast.GoStmt, *ast.DeferStmt:
			return false
		}
		if n.Pos() >= r.start && n.Pos() < r.end {
			visit(n)
		}
		return true
	})
}

// NewLockScope returns the lockscope analyzer: no sync.Mutex/RWMutex may be
// held across a transitively-blocking call (file/network IO, channel
// operations, sleeps) or a direct channel operation. Blocking under a lock
// turns an intended microsecond critical section into one bounded by disk
// or peer latency, and is how the serving tier's tail latencies are born.
func NewLockScope() *Analyzer {
	return &Analyzer{
		Name: "lockscope",
		Doc:  "mutex held across a transitively-blocking call or channel operation",
		Run:  runLockScope,
	}
}

func runLockScope(pass *Pass) {
	if pass.Graph == nil {
		return
	}
	for _, r := range mutexRegions(pass) {
		seen := map[string]bool{} // one report per callee per region
		r.nodes(func(n ast.Node) {
			switch n := n.(type) {
			case *ast.SendStmt:
				pass.Reportf(n.Pos(), "channel send while %s is held", r.recv)
			case *ast.UnaryExpr:
				if n.Op == token.ARROW {
					pass.Reportf(n.Pos(), "channel receive while %s is held", r.recv)
				}
			case *ast.SelectStmt:
				blocking := true
				for _, c := range n.Body.List {
					if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
						blocking = false
					}
				}
				if blocking {
					pass.Reportf(n.Pos(), "blocking select while %s is held", r.recv)
				}
			case *ast.RangeStmt:
				if tv, ok := pass.TypesInfo.Types[n.X]; ok && tv.Type != nil {
					if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
						pass.Reportf(n.Pos(), "range over channel while %s is held", r.recv)
					}
				}
			case *ast.CallExpr:
				eff, name := pass.Graph.CallEffects(n)
				if eff&EffBlocking == 0 || name == "" {
					return
				}
				// WaitGroup.Wait under a lock is the waitgroup analyzer's
				// finding; don't double-report it here.
				if name == "(*sync.WaitGroup).Wait" || seen[name] {
					return
				}
				seen[name] = true
				pass.Reportf(n.Pos(), "call to %s (effects: %s) while %s is held",
					name, eff&EffBlocking, r.recv)
			}
		})
	}
}
