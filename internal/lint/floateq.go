package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// NewFloatEq returns the floateq analyzer: it flags == and != between
// floating-point operands. Benchmark summaries, model predictions, and cost
// estimates are all floats that accumulate rounding error; exact equality
// silently turns into "never equal" (or worse, "sometimes equal"). Compare
// with an epsilon, or use math.IsNaN / math.IsInf for the special values.
//
// Exempt: comparisons where both operands are compile-time constants
// (resolved exactly by the compiler), the x != x NaN idiom, and
// comparisons against math.Inf(...) (infinity compares exactly).
func NewFloatEq() *Analyzer {
	a := &Analyzer{
		Name: "floateq",
		Doc:  "floating-point ==/!= outside tests; use epsilon comparison or math.IsNaN/IsInf",
	}
	a.Run = func(pass *Pass) {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				be, ok := n.(*ast.BinaryExpr)
				if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
					return true
				}
				xt, xok := pass.TypesInfo.Types[be.X]
				yt, yok := pass.TypesInfo.Types[be.Y]
				if !xok || !yok || (!isFloat(xt.Type) && !isFloat(yt.Type)) {
					return true
				}
				if xt.Value != nil && yt.Value != nil {
					return true // constant-folded by the compiler
				}
				if types.ExprString(be.X) == types.ExprString(be.Y) {
					return true // x != x NaN idiom
				}
				if isInfCall(pass, be.X) || isInfCall(pass, be.Y) {
					return true // comparison against an exact infinity
				}
				pass.Reportf(be.OpPos,
					"floating-point %s comparison; use an epsilon (math.Abs(a-b) <= eps) or math.IsNaN/IsInf",
					be.Op)
				return true
			})
		}
	}
	return a
}

// isFloat reports whether t's underlying type is a floating-point type.
func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// isInfCall reports whether e is a call to math.Inf.
func isInfCall(pass *Pass, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	return ok && fn.Pkg() != nil && fn.Pkg().Path() == "math" && fn.Name() == "Inf"
}
