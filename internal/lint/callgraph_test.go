package lint

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files from current output")

// TestCallGraphGolden pins the graph layer's externally observable behavior
// — node set, edges, dynamic resolution, and propagated effect labels — to a
// golden dump. Analyzer precision rests on this layer; run with -update to
// regenerate after a deliberate change.
func TestCallGraphGolden(t *testing.T) {
	pkgs, err := Load(".", []string{"./testdata/src/callgraph"})
	if err != nil {
		t.Fatalf("loading callgraph fixture: %v", err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("got %d packages, want 1", len(pkgs))
	}
	g := BuildGraph(pkgs)
	var buf bytes.Buffer
	g.Dump(&buf, pkgs[0].ImportPath)

	goldenPath := filepath.Join("testdata", "callgraph.golden")
	if *updateGolden {
		if err := os.WriteFile(goldenPath, buf.Bytes(), 0o644); err != nil {
			t.Fatalf("writing golden: %v", err)
		}
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("reading golden (run with -update to create): %v", err)
	}
	if got := buf.String(); got != string(want) {
		t.Errorf("call-graph dump diverged from golden.\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestCallGraphEffects spot-checks the propagated labels the golden encodes,
// with readable failures when a single label regresses.
func TestCallGraphEffects(t *testing.T) {
	pkgs, err := Load(".", []string{"./testdata/src/callgraph"})
	if err != nil {
		t.Fatalf("loading callgraph fixture: %v", err)
	}
	g := BuildGraph(pkgs)
	path := pkgs[0].ImportPath
	cases := []struct {
		fn   string
		want Effects
	}{
		{path + ".Chain", EffBlocksIO},                  // two-hop static chain
		{path + ".Deliver", EffBlocksIO},                // CHA: FileSink.Put blocks
		{"(*" + path + ".MemSink).Put", 0},              // memory-only impl
		{path + ".TakeValue", EffBlocksIO},              // method value ref edge
		{path + ".Clock", EffWallClock},                 // clock root
		{path + ".Spawn", EffSpawnsGoroutine},           // spawn bit, no chan leak
		{path + ".Closures", EffBlocksChan},             // IIFE + nested closure
		{path + ".CopyStream", EffBlocksIO},             // io.Copy root
		{path + ".worker", EffBlocksChan | EffBlocksIO}, // range over chan + Deliver
	}
	for _, tc := range cases {
		n, ok := g.Func(tc.fn)
		if !ok {
			t.Errorf("function %s missing from graph", tc.fn)
			continue
		}
		if n.Effects() != tc.want {
			t.Errorf("%s effects = %s, want %s", tc.fn, n.Effects(), tc.want)
		}
	}
}

// TestGraphDumpDeterministic builds the graph twice — serial and parallel —
// and requires byte-identical dumps: the graph is the substrate every
// analyzer's determinism rests on.
func TestGraphDumpDeterministic(t *testing.T) {
	pkgs, err := Load(".", []string{"./testdata/src/callgraph"})
	if err != nil {
		t.Fatalf("loading callgraph fixture: %v", err)
	}
	var a, b bytes.Buffer
	BuildGraphWorkers(pkgs, 1).Dump(&a, pkgs[0].ImportPath)
	BuildGraphWorkers(pkgs, 4).Dump(&b, pkgs[0].ImportPath)
	if a.String() != b.String() {
		t.Errorf("serial and parallel graph dumps differ:\n--- serial ---\n%s\n--- parallel ---\n%s", a.String(), b.String())
	}
	if !strings.Contains(a.String(), "dyn:") {
		t.Errorf("dump lacks dynamic-dispatch records; fixture coverage lost:\n%s", a.String())
	}
}
