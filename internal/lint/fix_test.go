package lint

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// fixerTempPkg copies the fixer fixture into a fresh directory under
// testdata so the fixer can rewrite it without dirtying the checked-in
// fixture. The copy must live inside the module tree for go list to resolve
// the mpicollpred/internal imports the rewrite introduces.
func fixerTempPkg(t *testing.T) string {
	t.Helper()
	dir, err := os.MkdirTemp("testdata", "fixtmp")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { os.RemoveAll(dir) })
	src, err := os.ReadFile(filepath.Join("testdata", "src", "fixer", "fixer.go"))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "fixer.go"), src, 0o644); err != nil {
		t.Fatal(err)
	}
	return dir
}

func loadFixerPkg(t *testing.T, dir string) []*Package {
	t.Helper()
	pkgs, err := Load(".", []string{"./" + dir})
	if err != nil {
		t.Fatalf("load %s: %v", dir, err)
	}
	return pkgs
}

func TestFixDryRunPrintsDiffWithoutWriting(t *testing.T) {
	dir := fixerTempPkg(t)
	path := filepath.Join(dir, "fixer.go")
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	var diff bytes.Buffer
	changed, err := ApplyFixes(loadFixerPkg(t, dir), false, &diff)
	if err != nil {
		t.Fatalf("ApplyFixes dry run: %v", err)
	}
	if changed != 1 {
		t.Fatalf("dry run changed = %d, want 1", changed)
	}
	for _, want := range []string{
		"--- " + path,
		"+++ " + path + " (fixed)",
		"floats.Eq(prev, cur)",
		"!floats.Eq(cur, prev+1)",
		"sim.StubRNG().Float64()",
		"sim.StubRNG().Intn(8)",
		"sim.StubRNG().Norm()",
	} {
		if !strings.Contains(diff.String(), want) {
			t.Errorf("diff missing %q:\n%s", want, diff.String())
		}
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, after) {
		t.Error("dry run modified the file on disk")
	}
}

func TestFixApplyAndIdempotency(t *testing.T) {
	dir := fixerTempPkg(t)
	path := filepath.Join(dir, "fixer.go")

	changed, err := ApplyFixes(loadFixerPkg(t, dir), true, io.Discard)
	if err != nil {
		t.Fatalf("ApplyFixes: %v", err)
	}
	if changed != 1 {
		t.Fatalf("changed = %d, want 1", changed)
	}

	fixed, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	src := string(fixed)
	for _, want := range []string{
		`"mpicollpred/internal/floats"`,
		`"mpicollpred/internal/sim"`,
		"floats.Eq(prev, cur)",
		"sim.StubRNG().Norm()",
		"a == b //mpicollvet:ignore floateq", // suppressed site untouched
	} {
		if !strings.Contains(src, want) {
			t.Errorf("fixed source missing %q:\n%s", want, src)
		}
	}
	if strings.Contains(src, `"math/rand"`) {
		t.Errorf("math/rand import not removed:\n%s", src)
	}

	// The rewritten package must type-check and be vet-clean (the one
	// remaining bitwise comparison is suppressed by its directive).
	pkgs := loadFixerPkg(t, dir)
	runner := &Runner{Analyzers: DefaultAnalyzers()}
	if findings := runner.Run(pkgs); len(findings) != 0 {
		t.Errorf("fixed package still has findings: %v", findings)
	}

	// Idempotency: a second pass finds nothing to do.
	changed, err = ApplyFixes(pkgs, true, io.Discard)
	if err != nil {
		t.Fatalf("second ApplyFixes: %v", err)
	}
	if changed != 0 {
		t.Errorf("second pass changed = %d files, want 0 (fixer not idempotent)", changed)
	}
}

func TestFixCLIDiffFlag(t *testing.T) {
	dir := fixerTempPkg(t)
	code, out, errb := runCLI("-diff", "./"+dir)
	if code != ExitClean {
		t.Fatalf("exit = %d, want %d\nstderr:\n%s", code, ExitClean, errb)
	}
	if !strings.Contains(out, "floats.Eq(") {
		t.Errorf("-diff stdout missing rewrite:\n%s", out)
	}
	if !strings.Contains(errb, "would change 1 file(s)") {
		t.Errorf("-diff stderr missing summary:\n%s", errb)
	}
}
