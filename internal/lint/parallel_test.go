package lint

import "testing"

// TestParallelOutputByteIdentical is the ordering contract with teeth: the
// concurrent runner must produce output indistinguishable from the serial
// one, byte for byte, across every testdata package at once. The dev
// container may have a single core — this asserts identity, not speedup;
// the ≥2× speedup gate runs in CI via `mpicollvet -benchout -min-speedup`.
func TestParallelOutputByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping multi-package analysis in -short mode")
	}
	run := func(workers string) (int, string) {
		code, out, errb := runCLI("-json", "-workers", workers,
			"./testdata/src/driver/...",
			"./testdata/src/lockscope/...",
			"./testdata/src/goleak/...",
			"./testdata/src/waitgroup/...",
			"./testdata/src/atomicmix/...",
			"./testdata/src/ctxflow/...",
			"./testdata/src/floateq/...",
			"./testdata/src/seededrand/...",
		)
		if code != ExitFindings {
			t.Fatalf("workers=%s exit = %d, want %d\nstderr:\n%s", workers, code, ExitFindings, errb)
		}
		return code, out
	}
	_, serial := run("1")
	_, parallel := run("4")
	if serial == "" {
		t.Fatal("no output from serial run")
	}
	if serial != parallel {
		t.Errorf("parallel output differs from serial\n--- workers=1 ---\n%s\n--- workers=4 ---\n%s",
			serial, parallel)
	}
}

// TestBenchMode exercises the -benchout harness end to end (gate disabled:
// speedup on a possibly single-core machine is not asserted locally).
func TestBenchMode(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping bench harness in -short mode")
	}
	path := t.TempDir() + "/bench.json"
	code, _, errb := runCLI("-workers", "2", "-benchout", path, "./testdata/src/driver/...")
	if code != ExitClean {
		t.Fatalf("bench exit = %d, want %d\nstderr:\n%s", code, ExitClean, errb)
	}
	res, err := ReadBenchFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !res.OutputsIdentical {
		t.Error("bench legs produced different output")
	}
	if res.Workers != 2 || res.Targets == 0 || res.SerialSeconds <= 0 || res.ParallelSeconds <= 0 {
		t.Errorf("implausible bench result: %+v", res)
	}
}
