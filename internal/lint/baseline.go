package lint

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// Baseline mode: a recorded set of known findings that CI tolerates while
// they are being burned down. Entries are keyed on (file, analyzer, message)
// with an occurrence count — deliberately NOT on line numbers, so unrelated
// edits that shift a known finding up or down do not break the build; only
// genuinely new findings (or more occurrences of a known one) fail.

// BaselineEntry is one known finding class.
type BaselineEntry struct {
	File     string `json:"file"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
	Count    int    `json:"count"`
}

// Baseline is the on-disk format.
type Baseline struct {
	Version  int             `json:"version"`
	Findings []BaselineEntry `json:"findings"`
}

type baselineKey struct {
	file, analyzer, message string
}

// NewBaseline summarizes findings into a baseline, canonically sorted.
func NewBaseline(findings []Finding) *Baseline {
	counts := map[baselineKey]int{}
	for _, f := range findings {
		counts[baselineKey{f.File, f.Analyzer, f.Message}]++
	}
	b := &Baseline{Version: 1}
	for k, n := range counts {
		b.Findings = append(b.Findings, BaselineEntry{
			File: k.file, Analyzer: k.analyzer, Message: k.message, Count: n,
		})
	}
	sort.Slice(b.Findings, func(i, j int) bool {
		a, c := b.Findings[i], b.Findings[j]
		if a.File != c.File {
			return a.File < c.File
		}
		if a.Analyzer != c.Analyzer {
			return a.Analyzer < c.Analyzer
		}
		return a.Message < c.Message
	})
	return b
}

// WriteBaselineFile writes the baseline as indented JSON.
func WriteBaselineFile(path string, b *Baseline) error {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadBaselineFile loads and validates a baseline file.
func ReadBaselineFile(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("baseline %s: %v", path, err)
	}
	if b.Version != 1 {
		return nil, fmt.Errorf("baseline %s: unsupported version %d", path, b.Version)
	}
	return &b, nil
}

// Filter splits findings into new (not covered by the baseline) and known.
// Each baseline entry absorbs up to Count occurrences of its key; the
// occurrence past Count is new — a regression, not a known debt.
func (b *Baseline) Filter(findings []Finding) (fresh, known []Finding) {
	budget := map[baselineKey]int{}
	for _, e := range b.Findings {
		budget[baselineKey{e.File, e.Analyzer, e.Message}] += e.Count
	}
	for _, f := range findings {
		k := baselineKey{f.File, f.Analyzer, f.Message}
		if budget[k] > 0 {
			budget[k]--
			known = append(known, f)
		} else {
			fresh = append(fresh, f)
		}
	}
	return fresh, known
}
