package lint

import (
	"go/ast"
	"go/types"
)

// NewWaitGroup returns the waitgroup analyzer, which catches the two
// sync.WaitGroup misuses that produce intermittent rather than
// deterministic failures:
//
//  1. wg.Add called inside the spawned goroutine itself. Add must
//     happen-before Wait; when the goroutine does its own Add, Wait can
//     observe a zero counter and return before the work even starts. A
//     WaitGroup declared inside the goroutine (a local fan-out) is exempt.
//  2. wg.Wait called while a mutex is held: every worker that needs the
//     lock to finish now deadlocks against the waiter.
func NewWaitGroup() *Analyzer {
	return &Analyzer{
		Name: "waitgroup",
		Doc:  "wg.Add inside the spawned goroutine, or wg.Wait under a held lock",
		Run:  runWaitGroup,
	}
}

func runWaitGroup(pass *Pass) {
	if pass.Graph == nil {
		return
	}
	// Rule 1: Add inside the goroutine it accounts for.
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			target, ok := pass.Graph.SpawnTarget(gs)
			if !ok || target.Pkg != pass.Pkg.Path() {
				// A cross-package spawn target's AST belongs to another
				// pass's type info; its own package is responsible for it.
				return true
			}
			body := target.Body
			ast.Inspect(body, func(m ast.Node) bool {
				call, ok := m.(*ast.CallExpr)
				if !ok {
					return true
				}
				id, ok := pass.Graph.StaticCallee(call)
				if !ok || id != "(*sync.WaitGroup).Add" {
					return true
				}
				sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
				if !ok {
					return true
				}
				if obj := rootObject(pass, sel.X); obj != nil &&
					obj.Pos() >= body.Pos() && obj.Pos() < body.End() {
					return true // WaitGroup owned by this goroutine
				}
				pass.Reportf(call.Pos(),
					"wg.Add inside the spawned goroutine; Add must happen-before Wait — move it next to the go statement")
				return true
			})
			return true
		})
	}
	// Rule 2: Wait under a held lock.
	for _, r := range mutexRegions(pass) {
		r.nodes(func(n ast.Node) {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return
			}
			if id, ok := pass.Graph.StaticCallee(call); ok && id == "(*sync.WaitGroup).Wait" {
				pass.Reportf(call.Pos(),
					"wg.Wait while %s is held; workers that need the lock will deadlock", r.recv)
			}
		})
	}
}

// rootObject resolves the leftmost identifier of a selector/index chain to
// its object, e.g. `s.wg` -> the object for `s`, `wg` -> `wg`.
func rootObject(pass *Pass, e ast.Expr) types.Object {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return pass.TypesInfo.Uses[x]
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.UnaryExpr:
			e = x.X
		default:
			return nil
		}
	}
}
