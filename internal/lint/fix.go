package lint

import (
	"fmt"
	"go/ast"
	"go/format"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// -fix: the two mechanically-safe rewrites. Both preserve compilation and
// semantics-by-intent; neither invents policy:
//
//   - float ==/!= between non-constant operands becomes floats.Eq(a, b)
//     (resp. !floats.Eq(a, b)), the repo's blessed epsilon comparison.
//   - global math/rand draws with a direct sim.RNG equivalent become
//     sim.StubRNG().<Method>(...) — deterministic immediately, and the stub
//     constructor's doc tells the author to thread a properly derived seed.
//
// Sites carrying an //mpicollvet:ignore directive for the corresponding
// analyzer are left untouched: a reviewed suppression outranks the fixer.

// fixableRand maps math/rand global functions to the sim.RNG method with
// identical shape. Draws without an equivalent (Perm, Shuffle, ...) stay
// findings for a human.
var fixableRand = map[string]string{
	"Float64":     "Float64",
	"Intn":        "Intn",
	"Uint64":      "Uint64",
	"NormFloat64": "Norm",
}

const (
	floatsImportPath = "mpicollpred/internal/floats"
	simImportPath    = "mpicollpred/internal/sim"
)

// fixEdit is one byte-range replacement in a file.
type fixEdit struct {
	off, end int
	text     string
}

// fileFixes accumulates the edits and import adjustments for one file.
type fileFixes struct {
	path       string
	file       *ast.File
	fset       *token.FileSet
	edits      []fixEdit
	needFloats bool
	needSim    bool
	randFixed  map[string]int // rand pkg path -> rewritten call sites
}

// CollectFixes scans the packages and returns the per-file edit sets,
// keyed by absolute file path. Suppressed sites are skipped.
func CollectFixes(pkgs []*Package) map[string]*fileFixes {
	out := map[string]*fileFixes{}
	known := map[string]bool{"floateq": true, "seededrand": true}
	for _, pkg := range pkgs {
		sups, _ := collectSuppressions(pkg.Fset, pkg.Files, known)
		suppressed := func(pos token.Pos, analyzer string) bool {
			p := pkg.Fset.Position(pos)
			return sups[suppressionKey{p.Filename, p.Line, analyzer}] ||
				sups[suppressionKey{p.Filename, p.Line - 1, analyzer}]
		}
		for _, file := range pkg.Files {
			path := pkg.Fset.Position(file.Pos()).Filename
			ff := &fileFixes{path: path, file: file, fset: pkg.Fset, randFixed: map[string]int{}}
			collectFloatEqFixes(pkg, file, ff, suppressed)
			collectRandFixes(pkg, file, ff, suppressed)
			if len(ff.edits) > 0 {
				ff.planImports(pkg)
				out[path] = ff
			}
		}
	}
	return out
}

// collectFloatEqFixes mirrors the floateq analyzer's detection (including
// its exemptions) and rewrites each hit to floats.Eq.
func collectFloatEqFixes(pkg *Package, file *ast.File, ff *fileFixes, suppressed func(token.Pos, string) bool) {
	pass := &Pass{Fset: pkg.Fset, Files: pkg.Files, Pkg: pkg.Types, TypesInfo: pkg.TypesInfo}
	ast.Inspect(file, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
			return true
		}
		xt, xok := pass.TypesInfo.Types[be.X]
		yt, yok := pass.TypesInfo.Types[be.Y]
		if !xok || !yok || (!isFloat(xt.Type) && !isFloat(yt.Type)) {
			return true
		}
		if xt.Value != nil && yt.Value != nil {
			return true
		}
		if types.ExprString(be.X) == types.ExprString(be.Y) {
			return true
		}
		if isInfCall(pass, be.X) || isInfCall(pass, be.Y) {
			return true
		}
		if suppressed(be.OpPos, "floateq") {
			return true
		}
		neg := ""
		if be.Op == token.NEQ {
			neg = "!"
		}
		ff.edits = append(ff.edits, fixEdit{
			off: ff.offset(be.Pos()),
			end: ff.offset(be.End()),
			text: fmt.Sprintf("%sfloats.Eq(%s, %s)",
				neg, ff.sourceRange(be.X), ff.sourceRange(be.Y)),
		})
		ff.needFloats = true
		return true
	})
}

// collectRandFixes rewrites rand.F(args) into sim.StubRNG().M(args) for the
// four draws with an exact sim.RNG equivalent.
func collectRandFixes(pkg *Package, file *ast.File, ff *fileFixes, suppressed func(token.Pos, string) bool) {
	ast.Inspect(file, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkgIdent, ok := ast.Unparen(sel.X).(*ast.Ident)
		if !ok {
			return true
		}
		pn, ok := pkg.TypesInfo.Uses[pkgIdent].(*types.PkgName)
		if !ok {
			return true
		}
		randPath := pn.Imported().Path()
		if randPath != "math/rand" && randPath != "math/rand/v2" {
			return true
		}
		method, ok := fixableRand[sel.Sel.Name]
		if !ok || suppressed(sel.Sel.Pos(), "seededrand") {
			return true
		}
		ff.edits = append(ff.edits, fixEdit{
			off:  ff.offset(sel.Pos()),
			end:  ff.offset(sel.End()),
			text: "sim.StubRNG()." + method,
		})
		ff.needSim = true
		ff.randFixed[randPath]++
		return true
	})
}

func (ff *fileFixes) offset(pos token.Pos) int { return ff.fset.Position(pos).Offset }

// sourceRange returns the original source text of a node.
func (ff *fileFixes) sourceRange(n ast.Node) string {
	src, err := os.ReadFile(ff.path)
	if err != nil {
		return types.ExprString(n.(ast.Expr))
	}
	return string(src[ff.offset(n.Pos()):ff.offset(n.End())])
}

// planImports adds edits that keep the file's import set consistent with
// the rewrites: floats/sim are added unless already imported, and a
// math/rand import whose every use was rewritten is removed.
func (ff *fileFixes) planImports(pkg *Package) {
	imported := map[string]bool{}
	for _, spec := range ff.file.Imports {
		imported[strings.Trim(spec.Path.Value, `"`)] = true
	}
	var add []string
	if ff.needFloats && !imported[floatsImportPath] {
		add = append(add, floatsImportPath)
	}
	if ff.needSim && !imported[simImportPath] {
		add = append(add, simImportPath)
	}
	if len(add) > 0 {
		ff.edits = append(ff.edits, ff.importInsertion(add))
	}
	// Remove math/rand if every selector use of it was rewritten.
	for randPath, fixed := range ff.randFixed {
		uses := 0
		ast.Inspect(ff.file, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			if pn, ok := pkg.TypesInfo.Uses[id].(*types.PkgName); ok &&
				pn.Imported().Path() == randPath {
				uses++
			}
			return true
		})
		if uses > 0 && fixed == uses {
			for _, spec := range ff.file.Imports {
				if strings.Trim(spec.Path.Value, `"`) == randPath {
					ff.edits = append(ff.edits, ff.lineDeletion(spec))
				}
			}
		}
	}
}

// importInsertion builds the edit adding paths to the file's imports:
// inside an existing parenthesized block when there is one, as a fresh
// import declaration after the package clause otherwise. go/format cleans
// up afterward.
func (ff *fileFixes) importInsertion(paths []string) fixEdit {
	sort.Strings(paths)
	for _, decl := range ff.file.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.IMPORT || !gd.Rparen.IsValid() {
			continue
		}
		var b strings.Builder
		for _, p := range paths {
			fmt.Fprintf(&b, "\t%q\n", p)
		}
		off := ff.offset(gd.Rparen)
		return fixEdit{off: off, end: off, text: b.String()}
	}
	var b strings.Builder
	for _, p := range paths {
		fmt.Fprintf(&b, "\nimport %q", p)
	}
	off := ff.offset(ff.file.Name.End())
	return fixEdit{off: off, end: off, text: b.String()}
}

// lineDeletion deletes the import spec's whole line.
func (ff *fileFixes) lineDeletion(spec *ast.ImportSpec) fixEdit {
	src, err := os.ReadFile(ff.path)
	if err != nil {
		return fixEdit{off: ff.offset(spec.Pos()), end: ff.offset(spec.End())}
	}
	start := ff.offset(spec.Pos())
	for start > 0 && src[start-1] != '\n' {
		start--
	}
	end := ff.offset(spec.End())
	for end < len(src) && src[end] != '\n' {
		end++
	}
	if end < len(src) {
		end++ // include the newline
	}
	return fixEdit{off: start, end: end}
}

// apply returns the file content with all edits applied (descending offset
// order, so earlier offsets stay valid) and gofmt'd.
func (ff *fileFixes) apply() ([]byte, error) {
	src, err := os.ReadFile(ff.path)
	if err != nil {
		return nil, err
	}
	edits := append([]fixEdit(nil), ff.edits...)
	sort.Slice(edits, func(i, j int) bool { return edits[i].off > edits[j].off })
	for i, e := range edits {
		if i > 0 && e.end > edits[i-1].off {
			return nil, fmt.Errorf("%s: overlapping fixes; re-run after applying the first batch", ff.path)
		}
		src = append(src[:e.off], append([]byte(e.text), src[e.end:]...)...)
	}
	out, err := format.Source(src)
	if err != nil {
		return nil, fmt.Errorf("%s: fixed source does not format: %v", ff.path, err)
	}
	return out, nil
}

// ApplyFixes runs the fixer over pkgs. With write=true files are rewritten
// in place; otherwise a unified-style diff of every change is printed to w
// (the dry-run mode). Returns the number of files that would change.
func ApplyFixes(pkgs []*Package, write bool, w io.Writer) (int, error) {
	fixes := CollectFixes(pkgs)
	paths := make([]string, 0, len(fixes))
	for p := range fixes {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	changed := 0
	for _, path := range paths {
		ff := fixes[path]
		fixed, err := ff.apply()
		if err != nil {
			return changed, err
		}
		orig, err := os.ReadFile(path)
		if err != nil {
			return changed, err
		}
		if string(fixed) == string(orig) {
			continue
		}
		changed++
		if write {
			if err := os.WriteFile(path, fixed, 0o644); err != nil {
				return changed, err
			}
			continue
		}
		printDiff(w, displayPath(path), string(orig), string(fixed))
	}
	return changed, nil
}

// displayPath relativizes a path to the working directory when shorter.
func displayPath(path string) string {
	wd, err := os.Getwd()
	if err != nil {
		return path
	}
	if rel, err := filepath.Rel(wd, path); err == nil && len(rel) < len(path) {
		return rel
	}
	return path
}

// printDiff emits a minimal line diff: the common prefix and suffix are
// trimmed and the differing middle is shown as -/+ blocks with 1-based line
// anchors. Enough to review a dry run; not a patch format.
func printDiff(w io.Writer, path, oldSrc, newSrc string) {
	oldLines := strings.Split(oldSrc, "\n")
	newLines := strings.Split(newSrc, "\n")
	pre := 0
	for pre < len(oldLines) && pre < len(newLines) && oldLines[pre] == newLines[pre] {
		pre++
	}
	suf := 0
	for suf < len(oldLines)-pre && suf < len(newLines)-pre &&
		oldLines[len(oldLines)-1-suf] == newLines[len(newLines)-1-suf] {
		suf++
	}
	fmt.Fprintf(w, "--- %s\n+++ %s (fixed)\n@@ line %d @@\n", path, path, pre+1)
	for _, l := range oldLines[pre : len(oldLines)-suf] {
		fmt.Fprintf(w, "-%s\n", l)
	}
	for _, l := range newLines[pre : len(newLines)-suf] {
		fmt.Fprintf(w, "+%s\n", l)
	}
}
