package lint

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// runCLI invokes the driver and returns (exit code, stdout, stderr).
func runCLI(args ...string) (int, string, string) {
	var out, errb bytes.Buffer
	code := CLIMain(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestCLIFindingsText(t *testing.T) {
	code, out, errb := runCLI("./testdata/src/driver/flagged")
	if code != ExitFindings {
		t.Fatalf("exit = %d, want %d (findings)\nstdout:\n%s\nstderr:\n%s", code, ExitFindings, out, errb)
	}
	for _, want := range []string{"[floateq]", "[seededrand]", "flagged.go"} {
		if !strings.Contains(out, want) {
			t.Errorf("stdout missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(errb, "finding(s)") {
		t.Errorf("stderr missing findings count:\n%s", errb)
	}
}

func TestCLIJSON(t *testing.T) {
	code, out, errb := runCLI("-json", "./testdata/src/driver/flagged")
	if code != ExitFindings {
		t.Fatalf("exit = %d, want %d\nstderr:\n%s", code, ExitFindings, errb)
	}
	var findings []Finding
	if err := json.Unmarshal([]byte(out), &findings); err != nil {
		t.Fatalf("stdout is not a JSON finding array: %v\n%s", err, out)
	}
	if len(findings) != 2 {
		t.Fatalf("got %d findings, want 2: %+v", len(findings), findings)
	}
	seen := map[string]bool{}
	for _, f := range findings {
		seen[f.Analyzer] = true
		if f.Line <= 0 || f.Col <= 0 {
			t.Errorf("finding has no position: %+v", f)
		}
		if !strings.Contains(f.File, "flagged.go") {
			t.Errorf("finding file = %q, want flagged.go", f.File)
		}
		if f.Message == "" {
			t.Errorf("finding has empty message: %+v", f)
		}
	}
	if !seen["floateq"] || !seen["seededrand"] {
		t.Errorf("analyzers seen = %v, want floateq and seededrand", seen)
	}
}

func TestCLIJSONCleanIsEmptyArray(t *testing.T) {
	code, out, _ := runCLI("-json", "./testdata/src/driver/clean")
	if code != ExitClean {
		t.Fatalf("exit = %d, want %d", code, ExitClean)
	}
	var findings []Finding
	if err := json.Unmarshal([]byte(out), &findings); err != nil {
		t.Fatalf("stdout is not a JSON array: %v\n%s", err, out)
	}
	if len(findings) != 0 {
		t.Errorf("got %d findings on clean package: %+v", len(findings), findings)
	}
}

func TestCLISuppressed(t *testing.T) {
	code, out, errb := runCLI("./testdata/src/driver/suppressed")
	if code != ExitClean {
		t.Fatalf("exit = %d, want %d (suppression directives must silence the findings)\nstdout:\n%s\nstderr:\n%s",
			code, ExitClean, out, errb)
	}
	if out != "" {
		t.Errorf("stdout not empty:\n%s", out)
	}
}

func TestCLIClean(t *testing.T) {
	code, out, _ := runCLI("./testdata/src/driver/clean")
	if code != ExitClean {
		t.Fatalf("exit = %d, want %d", code, ExitClean)
	}
	if out != "" {
		t.Errorf("stdout not empty:\n%s", out)
	}
}

func TestCLIBadIgnore(t *testing.T) {
	code, out, _ := runCLI("./testdata/src/driver/badignore")
	if code != ExitFindings {
		t.Fatalf("exit = %d, want %d (malformed directives are findings)\nstdout:\n%s", code, ExitFindings, out)
	}
	for _, want := range []string{"[ignore]", "malformed directive", "unknown analyzer"} {
		if !strings.Contains(out, want) {
			t.Errorf("stdout missing %q:\n%s", want, out)
		}
	}
}

func TestCLIList(t *testing.T) {
	code, out, _ := runCLI("-list")
	if code != ExitClean {
		t.Fatalf("exit = %d, want %d", code, ExitClean)
	}
	for _, a := range DefaultAnalyzers() {
		if !strings.Contains(out, a.Name) {
			t.Errorf("-list output missing analyzer %s:\n%s", a.Name, out)
		}
	}
}

func TestCLIBadPattern(t *testing.T) {
	code, _, errb := runCLI("./does/not/exist")
	if code != ExitError {
		t.Fatalf("exit = %d, want %d (load failure)\nstderr:\n%s", code, ExitError, errb)
	}
	if errb == "" {
		t.Error("load failure produced no stderr diagnostic")
	}
}

// TestRepoIsVetClean is the acceptance criterion with teeth: the whole
// repository must pass its own analyzers. If this fails, run
// `go run ./cmd/mpicollvet ./...` at the repo root and fix (or justify with
// an //mpicollvet:ignore directive) every finding.
func TestRepoIsVetClean(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping whole-repo analysis in -short mode")
	}
	code, out, errb := runCLI("-C", "../..", "./...")
	if code != ExitClean {
		t.Fatalf("mpicollvet on the repository exited %d, want %d\nstdout:\n%s\nstderr:\n%s",
			code, ExitClean, out, errb)
	}
}
