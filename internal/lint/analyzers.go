package lint

// DeterministicPackages are the import-path fragments of the packages that
// must never read the wall clock: they advance simulated time only, and
// their outputs must be bit-identical run to run (DESIGN §5). internal/audit
// is on the list so its one timestamp seam (audit.realClock) stays an
// explicitly audited ignore directive rather than an unreviewed time.Now —
// everything else in the package runs on the Logger's injectable clock.
// internal/retrain joined with PR 9: the retraining loop's candidates must
// be byte-identical for a given audit log, so its only wall-clock read is
// the audited status-log timestamp seam (retrain.realClock).
var DeterministicPackages = []string{
	"internal/sim", "internal/netmodel", "internal/fault", "internal/coll",
	"internal/audit", "internal/retrain",
}

// PanicAllowedPackages are the import-path fragments whose panics a
// guardrail recovers: core.safeFit/safePredict convert learner panics into
// quarantined models (DESIGN §7), so the learners under internal/ml may
// panic on programmer error.
var PanicAllowedPackages = []string{
	"internal/ml",
}

// DefaultAnalyzers returns the full mpicollvet suite with this repository's
// configuration: the six PR-3 local AST checks plus the five interprocedural
// concurrency-contract analyzers built on the call graph (DESIGN §8).
func DefaultAnalyzers() []*Analyzer {
	return []*Analyzer{
		NewMapOrder(),
		NewFloatEq(),
		NewSeededRand(),
		NewWallClock(DeterministicPackages),
		NewDroppedErr(),
		NewPanicGuard(PanicAllowedPackages),
		NewLockScope(),
		NewGoLeak(GoroutineOwnedPackages),
		NewWaitGroup(),
		NewAtomicMix(),
		NewCtxFlow(CtxPropagationPackages),
	}
}
