package lint

import (
	"go/ast"
	"go/token"
)

// GoroutineOwnedPackages are the long-running serving packages whose
// goroutines must have a shutdown path: the serve/fleet processes stay up
// for days, so a goroutine with no escape is a leak, not a detail.
var GoroutineOwnedPackages = []string{
	"internal/serve", "internal/fleet", "internal/core", "internal/retrain",
}

// NewGoLeak returns the goleak analyzer: inside the restricted (long-lived
// serving) packages, a spawned goroutine whose body contains an unbounded
// `for` loop must have an escape on some path — a return or break, usually
// driven by a ctx.Done/stop-channel select. The check resolves the spawned
// body through the call graph, so `go p.loop()` is inspected the same as a
// closure.
//
// The check is an under-approximation by design: loops with conditions,
// range loops (closable channels), and escapes hidden behind calls are all
// assumed fine. What it flags — `for { ... }` with no return and no break —
// has no way to stop short of process exit.
func NewGoLeak(restricted []string) *Analyzer {
	a := &Analyzer{
		Name: "goleak",
		Doc:  "goroutine in a long-lived serving package with no shutdown escape",
	}
	a.Run = func(pass *Pass) {
		if pass.Graph == nil || !anyPathMatches(pass.Pkg.Path(), restricted) {
			return
		}
		for _, file := range pass.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				gs, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				body, ok := pass.Graph.SpawnedBody(gs)
				if !ok {
					return true
				}
				if loop := unboundedLoopNoEscape(body); loop != nil {
					pass.Reportf(gs.Pos(),
						"goroutine body has an unbounded for loop with no return or break; give it a ctx/done/Stop escape")
				}
				return true
			})
		}
	}
	return a
}

// unboundedLoopNoEscape returns the first `for {}`-style loop in body (not
// nested inside another function literal) containing neither a return nor a
// break statement anywhere inside it.
func unboundedLoopNoEscape(body *ast.BlockStmt) *ast.ForStmt {
	var found *ast.ForStmt
	ast.Inspect(body, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ForStmt:
			if n.Cond != nil {
				return true
			}
			escapes := false
			ast.Inspect(n.Body, func(m ast.Node) bool {
				switch m := m.(type) {
				case *ast.ReturnStmt:
					escapes = true
				case *ast.BranchStmt:
					// A break anywhere inside counts, even from a nested
					// loop: distinguishing targets soundly is not worth the
					// false positives.
					if m.Tok == token.BREAK {
						escapes = true
					}
				case *ast.FuncLit:
					return false
				}
				return !escapes
			})
			if !escapes {
				found = n
			}
		}
		return true
	})
	return found
}
