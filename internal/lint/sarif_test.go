package lint

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestSARIFStdout(t *testing.T) {
	code, out, errb := runCLI("-sarif", "-", "./testdata/src/driver/flagged")
	if code != ExitFindings {
		t.Fatalf("exit = %d, want %d\nstderr:\n%s", code, ExitFindings, errb)
	}
	var log struct {
		Schema  string `json:"$schema"`
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID    string `json:"ruleId"`
				Level     string `json:"level"`
				Message   struct{ Text string }
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine int `json:"startLine"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal([]byte(out), &log); err != nil {
		t.Fatalf("stdout is not valid SARIF JSON: %v\n%s", err, out)
	}
	if log.Version != "2.1.0" || !strings.Contains(log.Schema, "sarif-2.1.0") {
		t.Errorf("version = %q, schema = %q; want SARIF 2.1.0", log.Version, log.Schema)
	}
	if len(log.Runs) != 1 {
		t.Fatalf("got %d runs, want 1", len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "mpicollvet" {
		t.Errorf("driver name = %q, want mpicollvet", run.Tool.Driver.Name)
	}
	ruleIDs := map[string]bool{}
	for _, r := range run.Tool.Driver.Rules {
		ruleIDs[r.ID] = true
	}
	for _, a := range DefaultAnalyzers() {
		if !ruleIDs[a.Name] {
			t.Errorf("rules missing analyzer %s", a.Name)
		}
	}
	if !ruleIDs["ignore"] {
		t.Error("rules missing the ignore pseudo-rule")
	}
	if len(run.Results) == 0 {
		t.Fatal("no results for a flagged package")
	}
	for _, r := range run.Results {
		if r.Level != "warning" || r.RuleID == "" || r.Message.Text == "" {
			t.Errorf("malformed result: %+v", r)
		}
		if len(r.Locations) != 1 ||
			!strings.Contains(r.Locations[0].PhysicalLocation.ArtifactLocation.URI, "flagged.go") ||
			r.Locations[0].PhysicalLocation.Region.StartLine <= 0 {
			t.Errorf("malformed location: %+v", r.Locations)
		}
	}
}

func TestSARIFFileAndDeterminism(t *testing.T) {
	read := func() string {
		path := filepath.Join(t.TempDir(), "out.sarif")
		code, _, errb := runCLI("-sarif", path, "./testdata/src/driver/flagged")
		if code != ExitFindings {
			t.Fatalf("exit = %d, want %d\nstderr:\n%s", code, ExitFindings, errb)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		return string(data)
	}
	a, b := read(), read()
	if a != b {
		t.Error("two SARIF runs over the same input differ byte-for-byte")
	}
	if !strings.Contains(a, `"ruleId": "floateq"`) {
		t.Errorf("SARIF file missing expected result:\n%s", a)
	}
}
