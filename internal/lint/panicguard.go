package lint

import (
	"go/ast"
	"go/types"
)

// NewPanicGuard returns the panicguard analyzer: panic(...) is only allowed
// in packages whose panics a guardrail demonstrably recovers (allowed,
// matched as import-path fragments). PR 2's selector guardrails recover
// learner panics via safeFit/safePredict, so internal/ml learners may
// panic on programmer error; anywhere else a panic takes down a tuned
// installation and must be a returned error instead. A deliberate
// invariant panic elsewhere needs an //mpicollvet:ignore directive with a
// justification.
func NewPanicGuard(allowed []string) *Analyzer {
	a := &Analyzer{
		Name: "panicguard",
		Doc:  "panic outside guardrail-recovered packages; return an error instead",
	}
	a.Run = func(pass *Pass) {
		if anyPathMatches(pass.Pkg.Path(), allowed) {
			return
		}
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				id, ok := call.Fun.(*ast.Ident)
				if !ok {
					return true
				}
				if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); !ok || b.Name() != "panic" {
					return true
				}
				pass.Reportf(call.Pos(),
					"panic in %s is not recovered by any guardrail; return an error (only internal/ml learner panics are recovered)",
					pass.Pkg.Path())
				return true
			})
		}
	}
	return a
}
