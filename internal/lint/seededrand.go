package lint

import (
	"go/types"
)

// randConstructors are math/rand package-level functions that do NOT draw
// from the implicitly seeded global source and are therefore allowed.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	// math/rand/v2 constructors.
	"NewPCG": true, "NewChaCha8": true,
}

// NewSeededRand returns the seededrand analyzer: it flags uses of the
// global math/rand (and math/rand/v2) top-level functions — rand.Intn,
// rand.Float64, rand.Shuffle, ... — which draw from a process-global,
// implicitly seeded source. Fault plans, noise models, and simulator RNG
// streams must be reproducible from an explicit seed, so all randomness
// goes through an explicitly constructed *rand.Rand
// (rand.New(rand.NewSource(seed))).
func NewSeededRand() *Analyzer {
	a := &Analyzer{
		Name: "seededrand",
		Doc:  "global math/rand functions break seeded reproducibility; use an explicit *rand.Rand",
	}
	a.Run = func(pass *Pass) {
		for id, obj := range pass.TypesInfo.Uses {
			fn, ok := obj.(*types.Func)
			if !ok || fn.Pkg() == nil {
				continue
			}
			path := fn.Pkg().Path()
			if path != "math/rand" && path != "math/rand/v2" {
				continue
			}
			sig, _ := fn.Type().(*types.Signature)
			if sig == nil || sig.Recv() != nil || randConstructors[fn.Name()] {
				continue
			}
			pass.Reportf(id.Pos(),
				"%s.%s draws from the implicitly seeded global source; use an explicitly seeded *rand.Rand",
				path, fn.Name())
		}
	}
	return a
}
