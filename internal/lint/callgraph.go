package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"io"
	"sort"
	"strings"
)

// Function identity. The parallel loader type-checks packages in separate
// worker-local type universes, so *types.Func pointers for the same function
// differ between packages that both reference it. The graph therefore keys
// every node on the stable FullName string ("pkg/path.Fn",
// "(*pkg/path.T).Method"); closures get synthetic IDs derived from their
// lexical parent and position ("parent$line:col").
func funcName(f *types.Func) string {
	if o := f.Origin(); o != nil {
		f = o
	}
	return f.FullName()
}

// dynKey identifies an interface method for CHA resolution: method name plus
// the receiver-less signature rendered with full package paths, so the key
// matches across type-check universes.
func dynKey(name string, sig *types.Signature) string {
	if sig == nil {
		return name + "|?"
	}
	return name + "|" + types.TypeString(sig, func(p *types.Package) string { return p.Path() })
}

// FuncNode is one function in the call graph: a declared function or method,
// a closure, or a package's pseudo-node for file-level initializers.
type FuncNode struct {
	ID     string
	Pkg    string         // import path of the declaring package
	Body   *ast.BlockStmt // nil for bodyless declarations
	Direct Effects        // effects of this body's own statements
	Trans  Effects        // Direct plus transitive callee effects

	calls  map[string]bool // static callees + taken function values (IDs or external full names)
	spawns map[string]bool // go-statement targets: effects do not propagate
	dyn    map[string]bool // interface-dispatched callee keys
}

// Effects returns the function's transitive effect mask.
func (n *FuncNode) Effects() Effects { return n.Trans }

const (
	siteNone = iota
	siteStatic
	siteDynamic
	siteUnknown
)

// callSite is the resolved target of one call expression.
type callSite struct {
	kind   int
	target string // siteStatic: func ID; siteDynamic: dynKey
	name   string // display name for diagnostics
}

// Graph is the package-level call graph with propagated effects. It is
// immutable (and therefore safe for concurrent analyzer use) once built.
type Graph struct {
	funcs        map[string]*FuncNode
	methodsBySig map[string][]string // dynKey -> analyzed implementations
	dynFallback  map[string]Effects  // dynKey -> conservative stdlib-shape effects
	sites        map[*ast.CallExpr]callSite
	goTargets    map[*ast.GoStmt]string
}

func newGraph() *Graph {
	return &Graph{
		funcs:        map[string]*FuncNode{},
		methodsBySig: map[string][]string{},
		dynFallback:  map[string]Effects{},
		sites:        map[*ast.CallExpr]callSite{},
		goTargets:    map[*ast.GoStmt]string{},
	}
}

// BuildGraph constructs and finalizes the call graph over pkgs. Per-package
// construction is independent; the merge and the effect fixed point are
// deterministic regardless of build order.
func BuildGraph(pkgs []*Package) *Graph { return BuildGraphWorkers(pkgs, 1) }

// BuildGraphWorkers builds per-package subgraphs on a bounded worker pool,
// then merges them in package order (deterministic) and runs the effect
// fixed point.
func BuildGraphWorkers(pkgs []*Package, workers int) *Graph {
	partial := make([]*Graph, len(pkgs))
	forEachIndex(len(pkgs), workers, func(i int) {
		partial[i] = buildPkgGraph(pkgs[i])
	})
	g := newGraph()
	for _, pg := range partial {
		g.merge(pg)
	}
	g.propagate()
	return g
}

// merge folds a per-package graph into g. Function IDs are globally unique
// (import paths disambiguate), so collisions only arise from re-analyzing a
// package; first writer wins.
func (g *Graph) merge(pg *Graph) {
	for id, n := range pg.funcs {
		if _, ok := g.funcs[id]; !ok {
			g.funcs[id] = n
		}
	}
	for k, impls := range pg.methodsBySig {
		g.methodsBySig[k] = append(g.methodsBySig[k], impls...)
	}
	for k, e := range pg.dynFallback {
		g.dynFallback[k] |= e
	}
	for c, s := range pg.sites {
		g.sites[c] = s
	}
	for gs, t := range pg.goTargets {
		g.goTargets[gs] = t
	}
}

// effectsOf resolves a callee ID: an analyzed node's transitive effects, or
// the curated stdlib root table for externals.
func (g *Graph) effectsOf(id string) Effects {
	if n, ok := g.funcs[id]; ok {
		return n.Trans
	}
	return externalEffects(id)
}

// propagate runs the effect fixed point: Trans(f) = Direct(f) joined with
// the effects of every static callee, taken function value, and possible
// dynamic implementation. Spawn edges are excluded — starting a goroutine
// does not block the spawner.
func (g *Graph) propagate() {
	ids := make([]string, 0, len(g.funcs))
	for id, n := range g.funcs {
		n.Trans = n.Direct
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for changed := true; changed; {
		changed = false
		for _, id := range ids {
			n := g.funcs[id]
			eff := n.Trans
			for c := range n.calls {
				eff |= g.effectsOf(c)
			}
			for d := range n.dyn {
				eff |= g.dynFallback[d]
				for _, impl := range g.methodsBySig[d] {
					if m, ok := g.funcs[impl]; ok {
						eff |= m.Trans
					}
				}
			}
			if eff != n.Trans {
				n.Trans = eff
				changed = true
			}
		}
	}
}

// Func returns the node with the given ID, if analyzed.
func (g *Graph) Func(id string) (*FuncNode, bool) {
	n, ok := g.funcs[id]
	return n, ok
}

// CallEffects returns the transitive effects of a call expression's resolved
// target(s) and a display name for diagnostics. Unresolvable calls (values
// of function type) conservatively report no effects — the framework favors
// precision so that every finding is actionable.
func (g *Graph) CallEffects(call *ast.CallExpr) (Effects, string) {
	s, ok := g.sites[call]
	if !ok {
		return 0, ""
	}
	switch s.kind {
	case siteStatic:
		return g.effectsOf(s.target), s.name
	case siteDynamic:
		eff := g.dynFallback[s.target]
		for _, impl := range g.methodsBySig[s.target] {
			if m, ok := g.funcs[impl]; ok {
				eff |= m.Trans
			}
		}
		return eff, s.name
	}
	return 0, s.name
}

// StaticCallee returns the resolved static target ID of a call, if any.
func (g *Graph) StaticCallee(call *ast.CallExpr) (string, bool) {
	s, ok := g.sites[call]
	if !ok || s.kind != siteStatic {
		return "", false
	}
	return s.target, true
}

// SpawnTarget returns the node of the function a go statement launches, when
// the target is a closure or a statically resolved function with source.
func (g *Graph) SpawnTarget(gs *ast.GoStmt) (*FuncNode, bool) {
	id, ok := g.goTargets[gs]
	if !ok {
		return nil, false
	}
	n, ok := g.funcs[id]
	if !ok || n.Body == nil {
		return nil, false
	}
	return n, true
}

// SpawnedBody returns the body of the function a go statement launches.
func (g *Graph) SpawnedBody(gs *ast.GoStmt) (*ast.BlockStmt, bool) {
	n, ok := g.SpawnTarget(gs)
	if !ok {
		return nil, false
	}
	return n.Body, true
}

// Dump writes a deterministic text rendering of the subgraph declared in
// pkgPath — the golden-test surface for the graph layer. Occurrences of the
// package path are shortened to "pkg" for readable, location-independent
// goldens.
func (g *Graph) Dump(w io.Writer, pkgPath string) {
	short := func(s string) string { return strings.ReplaceAll(s, pkgPath, "pkg") }
	ids := make([]string, 0, len(g.funcs))
	for id, n := range g.funcs {
		if n.Pkg == pkgPath {
			ids = append(ids, id)
		}
	}
	sort.Strings(ids)
	for _, id := range ids {
		n := g.funcs[id]
		fmt.Fprintf(w, "%s\n  direct: %s\n  effects: %s\n", short(id), n.Direct, n.Trans)
		if len(n.calls) > 0 {
			fmt.Fprintf(w, "  calls: %s\n", short(joinSorted(n.calls)))
		}
		if len(n.spawns) > 0 {
			fmt.Fprintf(w, "  spawns: %s\n", short(joinSorted(n.spawns)))
		}
		if len(n.dyn) > 0 {
			keys := make([]string, 0, len(n.dyn))
			for k := range n.dyn {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				impls := append([]string(nil), g.methodsBySig[k]...)
				sort.Strings(impls)
				fmt.Fprintf(w, "  dyn: %s -> [%s] ~%s\n",
					short(k), short(strings.Join(impls, ", ")), g.dynFallback[k])
			}
		}
	}
}

func joinSorted(set map[string]bool) string {
	keys := make([]string, 0, len(set))
	for k := range set {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return strings.Join(keys, ", ")
}

// --- per-package construction ---

type gwalker struct {
	pkg     *Package
	pg      *Graph
	cur     *FuncNode
	callPos map[*ast.Ident]bool // identifiers in callee position: not ref edges
}

// buildPkgGraph walks one package's files, creating nodes for every declared
// function, method, and closure, and recording call/ref/spawn edges plus
// direct effects (channel ops, go statements).
func buildPkgGraph(pkg *Package) *Graph {
	w := &gwalker{pkg: pkg, pg: newGraph(), callPos: map[*ast.Ident]bool{}}
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				obj, ok := pkg.TypesInfo.Defs[d.Name].(*types.Func)
				if !ok {
					continue
				}
				id := funcName(obj)
				node := w.newFunc(id, d.Body)
				if rt := recvType(obj); rt != nil && !types.IsInterface(rt) {
					if sig, ok := obj.Type().(*types.Signature); ok {
						w.pg.methodsBySig[dynKey(obj.Name(), sig)] =
							append(w.pg.methodsBySig[dynKey(obj.Name(), sig)], id)
					}
				}
				if d.Body != nil {
					w.cur = node
					w.walk(d.Body)
					w.cur = nil
				}
			case *ast.GenDecl:
				// Package-level initializers run during package init; hang
				// their edges (e.g. a closure assigned to a var) off a
				// pseudo-node so they are not lost.
				for _, spec := range d.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					for _, v := range vs.Values {
						w.cur = w.newFunc(pkg.ImportPath+".init#vars", nil)
						w.walk(v)
						w.cur = nil
					}
				}
			}
		}
	}
	return w.pg
}

// recvType returns the receiver's type for a method object.
func recvType(f *types.Func) types.Type {
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	return sig.Recv().Type()
}

func (w *gwalker) newFunc(id string, body *ast.BlockStmt) *FuncNode {
	if n, ok := w.pg.funcs[id]; ok {
		return n
	}
	n := &FuncNode{
		ID: id, Pkg: w.pkg.ImportPath, Body: body,
		calls: map[string]bool{}, spawns: map[string]bool{}, dyn: map[string]bool{},
	}
	w.pg.funcs[id] = n
	return n
}

// litID derives the deterministic ID of a closure from its lexical parent
// and source position.
func (w *gwalker) litID(lit *ast.FuncLit) string {
	pos := w.pkg.Fset.Position(lit.Pos())
	return fmt.Sprintf("%s$%d:%d", w.cur.ID, pos.Line, pos.Column)
}

func (w *gwalker) walk(n ast.Node) {
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			id := w.litID(n)
			node := w.newFunc(id, n.Body)
			// Reaching here means the literal's value is taken (stored in a
			// variable, passed as an argument) or it is an IIFE — spawned
			// literals are intercepted by handleGo. Either way, record a
			// conservative may-call edge: whoever holds the value can invoke
			// it downstream of this function.
			w.cur.calls[id] = true
			prev := w.cur
			w.cur = node
			w.walk(n.Body)
			w.cur = prev
			return false
		case *ast.GoStmt:
			w.cur.Direct |= EffSpawnsGoroutine
			w.handleGo(n)
			return false
		case *ast.CallExpr:
			w.handleCall(n)
		case *ast.Ident:
			w.refEdge(n)
		case *ast.SendStmt:
			w.cur.Direct |= EffBlocksChan
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				w.cur.Direct |= EffBlocksChan
			}
		case *ast.SelectStmt:
			blocking := true
			for _, c := range n.Body.List {
				if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
					blocking = false // has a default clause
				}
			}
			if blocking {
				w.cur.Direct |= EffBlocksChan
			}
		case *ast.RangeStmt:
			if tv, ok := w.pkg.TypesInfo.Types[n.X]; ok && tv.Type != nil {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					w.cur.Direct |= EffBlocksChan
				}
			}
		}
		return true
	})
}

// handleGo records a spawn edge (effects do not flow back) and walks the
// call's arguments and any closure body, which execute in this package.
func (w *gwalker) handleGo(g *ast.GoStmt) {
	call := g.Call
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		id := w.litID(lit)
		w.pg.goTargets[g] = id
		w.cur.spawns[id] = true
		node := w.newFunc(id, lit.Body)
		prev := w.cur
		w.cur = node
		w.walk(lit.Body)
		w.cur = prev
	} else if s := w.resolveTarget(call); s.kind == siteStatic {
		w.pg.goTargets[g] = s.target
		w.cur.spawns[s.target] = true
	}
	for _, a := range call.Args {
		w.walk(a)
	}
}

func (w *gwalker) handleCall(call *ast.CallExpr) {
	s := w.resolveTarget(call)
	if s.kind == siteNone {
		return
	}
	w.pg.sites[call] = s
	switch s.kind {
	case siteStatic:
		w.cur.calls[s.target] = true
	case siteDynamic:
		w.cur.dyn[s.target] = true
	}
}

// resolveTarget classifies a call: static (named function, method on a
// concrete type, closure literal), dynamic (interface method — resolved CHA
// style against every analyzed implementation plus a conservative stdlib
// fallback), or unknown (value of function type). Type conversions and
// builtins resolve to siteNone.
func (w *gwalker) resolveTarget(call *ast.CallExpr) callSite {
	info := w.pkg.TypesInfo
	fun := ast.Unparen(call.Fun)
	if tv, ok := info.Types[fun]; ok && tv.IsType() {
		return callSite{kind: siteNone}
	}
	switch fn := fun.(type) {
	case *ast.Ident:
		w.callPos[fn] = true
		switch o := info.Uses[fn].(type) {
		case *types.Func:
			return callSite{kind: siteStatic, target: funcName(o), name: funcName(o)}
		case *types.Builtin:
			return callSite{kind: siteNone}
		}
		return callSite{kind: siteUnknown, name: fn.Name}
	case *ast.SelectorExpr:
		w.callPos[fn.Sel] = true
		if sel, ok := info.Selections[fn]; ok {
			f, ok := sel.Obj().(*types.Func)
			if !ok {
				return callSite{kind: siteUnknown, name: fn.Sel.Name} // func-typed field
			}
			sig, _ := f.Type().(*types.Signature)
			if types.IsInterface(sel.Recv()) {
				key := dynKey(f.Name(), sig)
				w.pg.dynFallback[key] |= dynFallbackEffects(f.Name(), sig)
				return callSite{kind: siteDynamic, target: key, name: "interface method " + f.Name()}
			}
			return callSite{kind: siteStatic, target: funcName(f), name: funcName(f)}
		}
		if f, ok := info.Uses[fn.Sel].(*types.Func); ok { // qualified pkg.Fn
			return callSite{kind: siteStatic, target: funcName(f), name: funcName(f)}
		}
		return callSite{kind: siteUnknown, name: fn.Sel.Name}
	case *ast.FuncLit:
		id := w.litID(fn)
		return callSite{kind: siteStatic, target: id, name: "closure " + id}
	}
	return callSite{kind: siteUnknown}
}

// refEdge records a conservative "may call" edge when a function's value is
// taken outside call position (stored, passed as argument, bound as a method
// value): whoever ends up invoking it, its effects can occur downstream of
// this function.
func (w *gwalker) refEdge(id *ast.Ident) {
	if w.callPos[id] || w.cur == nil {
		return
	}
	if f, ok := w.pkg.TypesInfo.Uses[id].(*types.Func); ok {
		w.cur.calls[funcName(f)] = true
	}
}
