package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// NewAtomicMix returns the atomicmix analyzer: a variable or field whose
// address is passed to sync/atomic in one place must never be read or
// written plainly elsewhere in the package — mixed access is a data race
// that -race only catches when the interleaving happens to occur in a test.
// The typed atomics (atomic.Int64 and friends) make the mix impossible and
// are the repo's preferred form; this check covers the legacy pointer API.
func NewAtomicMix() *Analyzer {
	return &Analyzer{
		Name: "atomicmix",
		Doc:  "variable accessed via sync/atomic in one place and plainly elsewhere",
		Run:  runAtomicMix,
	}
}

func runAtomicMix(pass *Pass) {
	tracked := map[types.Object]bool{}  // objects used with sync/atomic
	sanctioned := map[*ast.Ident]bool{} // identifiers inside &x atomic args
	// Pass 1: collect the atomically-accessed objects.
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isAtomicPointerCall(pass, call) || len(call.Args) == 0 {
				return true
			}
			addr, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr)
			if !ok {
				return true
			}
			id := rightmostIdent(addr.X)
			if id == nil {
				return true
			}
			if obj := pass.TypesInfo.Uses[id]; obj != nil {
				tracked[obj] = true
				sanctioned[id] = true
			}
			return true
		})
	}
	if len(tracked) == 0 {
		return
	}
	// Pass 2: flag every plain use of a tracked object.
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok || sanctioned[id] {
				return true
			}
			if obj := pass.TypesInfo.Uses[id]; obj != nil && tracked[obj] {
				pass.Reportf(id.Pos(),
					"plain access to %s, which is accessed via sync/atomic elsewhere; use atomic ops everywhere or a typed atomic", id.Name)
			}
			return true
		})
	}
}

// isAtomicPointerCall reports whether call is a sync/atomic package function
// taking an address as its first argument (AddT, LoadT, StoreT, SwapT,
// CompareAndSwapT).
func isAtomicPointerCall(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	f, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || f.Pkg() == nil || f.Pkg().Path() != "sync/atomic" {
		return false
	}
	for _, prefix := range []string{"Add", "Load", "Store", "Swap", "CompareAndSwap"} {
		if strings.HasPrefix(f.Name(), prefix) {
			return true
		}
	}
	return false
}

// rightmostIdent returns the identifier naming the accessed variable or
// field: `x` -> x, `s.counter` -> counter.
func rightmostIdent(e ast.Expr) *ast.Ident {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return x
	case *ast.SelectorExpr:
		return x.Sel
	}
	return nil
}
