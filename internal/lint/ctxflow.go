package lint

import (
	"go/ast"
	"go/types"
)

// CtxPropagationPackages are the request-path packages where outbound HTTP
// must carry the inbound request's context: dropping it detaches proxy and
// probe IO from client cancellation, which is exactly how the PR-7 fleet
// failover guarantees break under load.
var CtxPropagationPackages = []string{
	"internal/serve", "internal/fleet", "internal/retrain",
}

// NewCtxFlow returns the ctxflow analyzer. Two rules:
//
//  1. A function that receives a context (a context.Context parameter or an
//     *http.Request) must not mint a fresh context.Background()/TODO() —
//     the caller's deadline and cancellation would be silently discarded.
//     Closures inherit availability from their enclosing functions.
//  2. In the restricted request-path packages, outbound requests must be
//     built with http.NewRequestWithContext, never plain http.NewRequest.
//
// Background goroutines that own their own lifecycle (probers, sweepers)
// have no context parameter and are untouched by rule 1.
func NewCtxFlow(restricted []string) *Analyzer {
	a := &Analyzer{
		Name: "ctxflow",
		Doc:  "fresh context minted where a caller context exists, or context-less outbound request",
	}
	a.Run = func(pass *Pass) {
		restrictedPkg := anyPathMatches(pass.Pkg.Path(), restricted)
		for _, file := range pass.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				checkCtxFlow(pass, fd.Body, ctxParamName(pass, fd.Type), restrictedPkg)
			}
		}
	}
	return a
}

// checkCtxFlow walks one function body. ctxName is the name of the context
// source in scope ("" when none); closures are recursed into with their own
// parameters adding to the inherited availability.
func checkCtxFlow(pass *Pass, body *ast.BlockStmt, ctxName string, restrictedPkg bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			inner := ctxName
			if name := ctxParamName(pass, n.Type); name != "" {
				inner = name
			}
			checkCtxFlow(pass, n.Body, inner, restrictedPkg)
			return false
		case *ast.CallExpr:
			name := staticCalleeName(pass, n)
			switch name {
			case "context.Background", "context.TODO":
				if ctxName != "" {
					pass.Reportf(n.Pos(),
						"%s discards the caller's context; propagate %s instead", name, ctxName)
				}
			case "net/http.NewRequest":
				if ctxName != "" || restrictedPkg {
					pass.Reportf(n.Pos(),
						"http.NewRequest builds a context-less request; use http.NewRequestWithContext")
				}
			}
		}
		return true
	})
}

// ctxParamName returns the expression naming the context available to a
// function with the given signature: a context.Context parameter ("ctx") or
// an *http.Request parameter ("r.Context()"). Empty when neither exists.
func ctxParamName(pass *Pass, ft *ast.FuncType) string {
	if ft.Params == nil {
		return ""
	}
	for _, field := range ft.Params.List {
		tv, ok := pass.TypesInfo.Types[field.Type]
		if !ok || tv.Type == nil {
			continue
		}
		kind := ""
		if isNamedType(tv.Type, "context", "Context") {
			kind = "ctx"
		} else if ptr, ok := tv.Type.(*types.Pointer); ok &&
			isNamedType(ptr.Elem(), "net/http", "Request") {
			kind = "req"
		}
		if kind == "" {
			continue
		}
		name := ""
		if len(field.Names) > 0 {
			name = field.Names[0].Name
		}
		if name == "" || name == "_" {
			continue // declared but explicitly unused
		}
		if kind == "req" {
			return name + ".Context()"
		}
		return name
	}
	return ""
}

// staticCalleeName resolves a call to its target's FullName, or "".
func staticCalleeName(pass *Pass, call *ast.CallExpr) string {
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := pass.TypesInfo.Uses[fn].(*types.Func); ok {
			return funcName(f)
		}
	case *ast.SelectorExpr:
		if f, ok := pass.TypesInfo.Uses[fn.Sel].(*types.Func); ok {
			return funcName(f)
		}
	}
	return ""
}

// isNamedType reports whether t is the named type path.name.
func isNamedType(t types.Type, path, name string) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == path && obj.Name() == name
}
