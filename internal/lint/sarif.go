package lint

import (
	"encoding/json"
	"io"
)

// SARIF 2.1.0 output, minimal but schema-valid, for GitHub code scanning.
// Only the fields code scanning consumes are emitted; ordering follows the
// canonical finding sort, so SARIF output is byte-stable like every other
// mpicollvet artifact.

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// WriteSARIF renders findings as a SARIF 2.1.0 log. The rule table lists
// every analyzer in the suite (plus the "ignore" pseudo-rule for malformed
// directives), whether or not it fired, so code-scanning UIs can show rule
// docs for clean runs too.
func WriteSARIF(w io.Writer, analyzers []*Analyzer, findings []Finding) error {
	rules := make([]sarifRule, 0, len(analyzers)+1)
	for _, a := range analyzers {
		rules = append(rules, sarifRule{ID: a.Name, ShortDescription: sarifMessage{Text: a.Doc}})
	}
	rules = append(rules, sarifRule{
		ID:               "ignore",
		ShortDescription: sarifMessage{Text: "malformed or unknown //mpicollvet:ignore directive"},
	})
	results := make([]sarifResult, 0, len(findings))
	for _, f := range findings {
		results = append(results, sarifResult{
			RuleID:  f.Analyzer,
			Level:   "warning",
			Message: sarifMessage{Text: f.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysical{
					ArtifactLocation: sarifArtifact{URI: f.File},
					Region:           sarifRegion{StartLine: f.Line, StartColumn: f.Col},
				},
			}},
		})
	}
	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "mpicollvet", Rules: rules}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}
