package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// writerMethods are method names whose returned error signals lost or
// unflushed output; dropping it silently corrupts caches and journals.
var writerMethods = map[string]bool{
	"Close": true, "Flush": true, "Sync": true,
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"WriteAll": true,
}

// neverFailPkgs are packages whose writer methods are documented to always
// return a nil error (strings.Builder, bytes.Buffer, hash.Hash); checking
// those errors is pure noise, so they are exempt.
var neverFailPkgs = map[string]bool{
	"strings": true, "bytes": true, "hash": true,
}

// NewDroppedErr returns the droppederr analyzer: it flags statements (plain
// and deferred) that discard the error result of writer-shaped method calls
// — Close/Flush/Sync/Write* on files, buffered writers, CSV writers, and
// friends. PR 2's atomic cache writes and crash-safe journals only hold if
// every write error is observed. An explicit `_ = f.Close()` assignment is
// the sanctioned way to document a deliberate discard (e.g. cleanup on an
// error path that already returns a better error). In-memory sinks that
// cannot fail (strings.Builder, bytes.Buffer, hash.Hash) are exempt.
func NewDroppedErr() *Analyzer {
	a := &Analyzer{
		Name: "droppederr",
		Doc:  "discarded error from writer Close/Flush/Sync/Write calls; check it or assign to _",
	}
	a.Run = func(pass *Pass) {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				var call *ast.CallExpr
				deferred := false
				switch st := n.(type) {
				case *ast.ExprStmt:
					call, _ = st.X.(*ast.CallExpr)
				case *ast.DeferStmt:
					call, deferred = st.Call, true
				case *ast.GoStmt:
					call = st.Call
				}
				if call == nil {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok || !writerMethods[sel.Sel.Name] {
					return true
				}
				selection := pass.TypesInfo.Selections[sel]
				if selection == nil {
					return true // package function, not a method
				}
				if isNeverFailWriter(selection.Recv()) {
					return true
				}
				sig, ok := pass.TypesInfo.Types[call.Fun].Type.(*types.Signature)
				if !ok || sig.Results().Len() == 0 {
					return true
				}
				if !isErrorType(sig.Results().At(sig.Results().Len() - 1).Type()) {
					return true
				}
				how := "discards"
				if deferred {
					how = "defers and discards"
				}
				pass.Reportf(call.Pos(),
					"%s the error from %s; check it or assign to _ to document the discard",
					how, emitCallName(call))
				return true
			})
		}
	}
	return a
}

// isNeverFailWriter reports whether the receiver type lives in a package
// whose writer methods are documented never to fail.
func isNeverFailWriter(recv types.Type) bool {
	if p, ok := recv.(*types.Pointer); ok {
		recv = p.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	path := named.Obj().Pkg().Path()
	return neverFailPkgs[path] || strings.HasPrefix(path, "hash/")
}
