package lint

import (
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// wantRe extracts the expectation substring from a `// want "..."` comment.
var wantRe = regexp.MustCompile(`// want "([^"]*)"`)

// expectation is one `// want` comment: a message substring pinned to a
// file base name and line.
type expectation struct {
	file   string
	line   int
	substr string
	met    bool
}

// collectWants walks every .go file under dir and parses its `// want`
// comments.
func collectWants(t *testing.T, dir string) []*expectation {
	t.Helper()
	var wants []*expectation
	err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for i, line := range strings.Split(string(data), "\n") {
			if m := wantRe.FindStringSubmatch(line); m != nil {
				wants = append(wants, &expectation{
					file:   filepath.Base(path),
					line:   i + 1,
					substr: m[1],
				})
			}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("collecting want comments in %s: %v", dir, err)
	}
	return wants
}

// TestAnalyzerGoldens loads each analyzer's testdata packages (a flagged
// package full of violations and a clean twin) and checks the findings
// against the `// want "substr"` comments: every want must be matched by a
// finding on its line, and every finding must be claimed by a want.
func TestAnalyzerGoldens(t *testing.T) {
	cases := []struct {
		analyzer *Analyzer
		dir      string
	}{
		{NewMapOrder(), "maporder"},
		{NewFloatEq(), "floateq"},
		{NewSeededRand(), "seededrand"},
		{NewWallClock([]string{"testdata/src/wallclock"}), "wallclock"},
		{NewDroppedErr(), "droppederr"},
		{NewPanicGuard([]string{"testdata/src/panicguard/clean"}), "panicguard"},
		{NewLockScope(), "lockscope"},
		{NewGoLeak([]string{"testdata/src/goleak"}), "goleak"},
		{NewWaitGroup(), "waitgroup"},
		{NewAtomicMix(), "atomicmix"},
		{NewCtxFlow([]string{"testdata/src/ctxflow"}), "ctxflow"},
	}
	for _, tc := range cases {
		t.Run(tc.analyzer.Name, func(t *testing.T) {
			pkgs, err := Load(".", []string{"./testdata/src/" + tc.dir + "/..."})
			if err != nil {
				t.Fatalf("loading testdata: %v", err)
			}
			if len(pkgs) != 2 {
				t.Fatalf("got %d packages, want flagged + clean", len(pkgs))
			}
			wants := collectWants(t, filepath.Join("testdata", "src", tc.dir))
			if len(wants) == 0 {
				t.Fatalf("no // want comments under testdata/src/%s; golden is vacuous", tc.dir)
			}
			runner := &Runner{Analyzers: []*Analyzer{tc.analyzer}}
			for _, f := range runner.Run(pkgs) {
				if matchWant(wants, f) {
					continue
				}
				t.Errorf("unexpected finding: %s", f)
			}
			for _, w := range wants {
				if !w.met {
					t.Errorf("missing finding at %s:%d matching %q", w.file, w.line, w.substr)
				}
			}
			// The clean package must contribute no wants and no findings.
			for _, w := range wants {
				if strings.Contains(w.file, "clean") {
					t.Errorf("want comment in clean package %s:%d; clean twins must be silent", w.file, w.line)
				}
			}
		})
	}
}

// matchWant marks and reports the first unmet expectation that f satisfies.
func matchWant(wants []*expectation, f Finding) bool {
	for _, w := range wants {
		if !w.met && w.file == filepath.Base(f.File) && w.line == f.Line &&
			strings.Contains(f.Message, w.substr) {
			w.met = true
			return true
		}
	}
	return false
}

func TestPathMatches(t *testing.T) {
	cases := []struct {
		path, pattern string
		want          bool
	}{
		{"example.com/repo/internal/sim", "internal/sim", true},
		{"internal/sim", "internal/sim", true},
		{"internal/sim/engine", "internal/sim", true},
		{"example.com/repo/internal/sim/engine", "internal/sim", true},
		{"example.com/repo/internal/simulator", "internal/sim", false},
		{"example.com/repo/internal/ml", "internal/sim", false},
	}
	for _, tc := range cases {
		if got := pathMatches(tc.path, tc.pattern); got != tc.want {
			t.Errorf("pathMatches(%q, %q) = %v, want %v", tc.path, tc.pattern, got, tc.want)
		}
	}
}

func TestFindingString(t *testing.T) {
	f := Finding{File: "a/b.go", Line: 3, Col: 7, Analyzer: "floateq", Message: "boom"}
	if got, want := f.String(), "a/b.go:3:7: [floateq] boom"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestDefaultAnalyzersComplete(t *testing.T) {
	want := []string{
		"maporder", "floateq", "seededrand", "wallclock", "droppederr", "panicguard",
		"lockscope", "goleak", "waitgroup", "atomicmix", "ctxflow",
	}
	got := map[string]bool{}
	for _, a := range DefaultAnalyzers() {
		if a.Doc == "" {
			t.Errorf("analyzer %s has no Doc", a.Name)
		}
		got[a.Name] = true
	}
	for _, name := range want {
		if !got[name] {
			t.Errorf("DefaultAnalyzers missing %s", name)
		}
	}
	if len(got) != len(want) {
		t.Errorf("DefaultAnalyzers has %d analyzers, want %d", len(got), len(want))
	}
}
