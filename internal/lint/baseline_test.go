package lint

import (
	"path/filepath"
	"strings"
	"testing"
)

func TestBaselineRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "baseline.json")
	code, _, errb := runCLI("-write-baseline", path, "./testdata/src/driver/flagged")
	if code != ExitClean {
		t.Fatalf("-write-baseline exit = %d, want %d\nstderr:\n%s", code, ExitClean, errb)
	}
	if !strings.Contains(errb, "wrote baseline") {
		t.Errorf("stderr missing write confirmation:\n%s", errb)
	}

	// The same findings filtered through their own baseline: clean run.
	code, out, errb := runCLI("-baseline", path, "./testdata/src/driver/flagged")
	if code != ExitClean {
		t.Fatalf("-baseline exit = %d, want %d (all findings are known)\nstdout:\n%s\nstderr:\n%s",
			code, ExitClean, out, errb)
	}
	if out != "" {
		t.Errorf("known findings still printed:\n%s", out)
	}
	if !strings.Contains(errb, "known finding(s) suppressed by baseline") {
		t.Errorf("stderr missing suppression note:\n%s", errb)
	}
}

func TestBaselineCatchesNewFindings(t *testing.T) {
	// A baseline recorded against a clean package tolerates nothing.
	path := filepath.Join(t.TempDir(), "baseline.json")
	if code, _, errb := runCLI("-write-baseline", path, "./testdata/src/driver/clean"); code != ExitClean {
		t.Fatalf("-write-baseline exit = %d\nstderr:\n%s", code, errb)
	}
	code, out, _ := runCLI("-baseline", path, "./testdata/src/driver/flagged")
	if code != ExitFindings {
		t.Fatalf("exit = %d, want %d (new findings must fail)\nstdout:\n%s", code, ExitFindings, out)
	}
	if !strings.Contains(out, "[floateq]") {
		t.Errorf("new findings not reported:\n%s", out)
	}
}

func TestBaselineCountBudget(t *testing.T) {
	f := func(msg string) Finding {
		return Finding{File: "a.go", Line: 1, Col: 1, Analyzer: "floateq", Message: msg}
	}
	// Baseline recorded one occurrence; the code now has two of the same
	// key. The second occurrence is a regression, not known debt.
	base := NewBaseline([]Finding{f("x == y")})
	fresh, known := base.Filter([]Finding{f("x == y"), f("x == y")})
	if len(known) != 1 || len(fresh) != 1 {
		t.Errorf("fresh = %d, known = %d; want 1 and 1", len(fresh), len(known))
	}

	// Line numbers deliberately do not participate in the key: the same
	// finding shifted by an edit stays known.
	moved := f("x == y")
	moved.Line = 99
	fresh, known = base.Filter([]Finding{moved})
	if len(fresh) != 0 || len(known) != 1 {
		t.Errorf("moved finding: fresh = %d, known = %d; want 0 and 1", len(fresh), len(known))
	}
}

func TestBaselineBadVersion(t *testing.T) {
	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := WriteBaselineFile(path, &Baseline{Version: 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadBaselineFile(path); err == nil {
		t.Error("unsupported baseline version accepted")
	}
	code, _, errb := runCLI("-baseline", path, "./testdata/src/driver/clean")
	if code != ExitError {
		t.Errorf("exit = %d, want %d for bad baseline\nstderr:\n%s", code, ExitError, errb)
	}
}
