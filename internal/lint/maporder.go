package lint

import (
	"go/ast"
	"go/types"
)

// emitFuncs are fmt package-level functions whose output order is
// user-visible.
var emitFuncs = map[string]bool{
	"Fprint": true, "Fprintf": true, "Fprintln": true,
	"Print": true, "Printf": true, "Println": true,
}

// emitMethods are method names that serialize data to an output stream. A
// map iteration that reaches one of these produces artifacts in Go's
// randomized map order — the exact failure mode that breaks byte-identical
// caches, traces, and tables.
var emitMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"WriteAll": true, "Encode": true, "WriteRow": true, "Printf": true,
	"Fprintf": true,
}

// NewMapOrder returns the maporder analyzer: it flags `range` statements
// over a map whose body emits output (fmt printing, Write*/Encode method
// calls). Deterministic exporters must collect keys, sort them, and iterate
// the sorted slice instead.
func NewMapOrder() *Analyzer {
	a := &Analyzer{
		Name: "maporder",
		Doc:  "map iteration feeding CSV/table/trace/metrics output must sort keys first",
	}
	a.Run = func(pass *Pass) {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				rs, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				tv, ok := pass.TypesInfo.Types[rs.X]
				if !ok {
					return true
				}
				if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
					return true
				}
				if call := findEmitCall(pass, rs.Body); call != nil {
					pass.Reportf(rs.Pos(),
						"iteration over map %s emits output (%s) in nondeterministic order; collect and sort the keys first",
						types.ExprString(rs.X), emitCallName(call))
				}
				return true
			})
		}
	}
	return a
}

// findEmitCall returns the first output-producing call inside body, or nil.
func findEmitCall(pass *Pass, body *ast.BlockStmt) *ast.CallExpr {
	var found *ast.CallExpr
	ast.Inspect(body, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		// Method call on some receiver: Write/Encode family.
		if pass.TypesInfo.Selections[sel] != nil {
			if emitMethods[sel.Sel.Name] {
				found = call
				return false
			}
			return true
		}
		// Qualified package function: fmt.Fprintf and friends.
		if id, ok := sel.X.(*ast.Ident); ok {
			if pn, ok := pass.TypesInfo.Uses[id].(*types.PkgName); ok &&
				pn.Imported().Path() == "fmt" && emitFuncs[sel.Sel.Name] {
				found = call
				return false
			}
		}
		return true
	})
	return found
}

// emitCallName renders the flagged call for the report message.
func emitCallName(call *ast.CallExpr) string {
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		return types.ExprString(sel.X) + "." + sel.Sel.Name
	}
	return types.ExprString(call.Fun)
}
