package lint

import (
	"go/types"
	"strings"
)

// Effects is a bitmask of behavioral effects a function may have. Effects
// are seeded at curated standard-library roots (effectRoots) and propagated
// transitively callee-to-caller over the call graph, so an analyzer asking
// "can this call block?" sees through arbitrarily deep helper chains.
type Effects uint8

const (
	// EffBlocksIO: the function may block on file, network, or process IO
	// (os.File reads/writes, HTTP round trips, exec waits, ...).
	EffBlocksIO Effects = 1 << iota
	// EffBlocksChan: the function may block on a channel operation, a
	// WaitGroup/Cond wait, or a sleep.
	EffBlocksChan
	// EffWallClock: the function reads the wall clock (time.Now and kin).
	EffWallClock
	// EffGlobalRand: the function draws from math/rand's global source.
	EffGlobalRand
	// EffSpawnsGoroutine: the function starts a goroutine. Effects of the
	// spawned body do NOT propagate through this bit — a spawn is
	// asynchronous, so the spawner itself does not block.
	EffSpawnsGoroutine
)

// EffBlocking are the effects that make a call unsafe under a held mutex.
const EffBlocking = EffBlocksIO | EffBlocksChan

// String renders the mask in a fixed order, e.g. "io|chan|spawn", or "none".
func (e Effects) String() string {
	if e == 0 {
		return "none"
	}
	var parts []string
	for _, b := range []struct {
		bit  Effects
		name string
	}{
		{EffBlocksIO, "io"},
		{EffBlocksChan, "chan"},
		{EffWallClock, "clock"},
		{EffGlobalRand, "rand"},
		{EffSpawnsGoroutine, "spawn"},
	} {
		if e&b.bit != 0 {
			parts = append(parts, b.name)
		}
	}
	return strings.Join(parts, "|")
}

// effectRoots maps standard-library functions (keyed by types.Func.FullName,
// e.g. "os.Open" or "(*os.File).Write") to their effects. The table is
// curated rather than package-wide — net/http also contains pure helpers
// like Header.Set that must not poison every caller with EffBlocksIO.
var effectRoots = map[string]Effects{
	// --- file and process IO ---
	"os.Open": EffBlocksIO, "os.OpenFile": EffBlocksIO, "os.Create": EffBlocksIO,
	"os.CreateTemp": EffBlocksIO, "os.MkdirTemp": EffBlocksIO,
	"os.ReadFile": EffBlocksIO, "os.WriteFile": EffBlocksIO, "os.ReadDir": EffBlocksIO,
	"os.Remove": EffBlocksIO, "os.RemoveAll": EffBlocksIO, "os.Rename": EffBlocksIO,
	"os.Mkdir": EffBlocksIO, "os.MkdirAll": EffBlocksIO, "os.Stat": EffBlocksIO,
	"os.Truncate":       EffBlocksIO,
	"(*os.File).Read":   EffBlocksIO,
	"(*os.File).ReadAt": EffBlocksIO, "(*os.File).Write": EffBlocksIO,
	"(*os.File).WriteAt": EffBlocksIO, "(*os.File).WriteString": EffBlocksIO,
	"(*os.File).Close": EffBlocksIO, "(*os.File).Sync": EffBlocksIO,
	"(*os.File).Seek": EffBlocksIO, "(*os.File).Stat": EffBlocksIO,
	"(*os.File).Truncate": EffBlocksIO,
	"(*exec.Cmd).Run":     EffBlocksIO, "(*exec.Cmd).Output": EffBlocksIO,
	"(*exec.Cmd).CombinedOutput": EffBlocksIO, "(*exec.Cmd).Wait": EffBlocksIO,
	"(*exec.Cmd).Start": EffBlocksIO,

	// --- generic stream IO: these block on whatever reader/writer they are
	// handed, so callers are conservatively marked ---
	"io.Copy": EffBlocksIO, "io.CopyN": EffBlocksIO, "io.CopyBuffer": EffBlocksIO,
	"io.ReadAll": EffBlocksIO, "io.ReadFull": EffBlocksIO, "io.WriteString": EffBlocksIO,
	"(*bufio.Writer).Flush": EffBlocksIO, "(*bufio.Writer).Write": EffBlocksIO,
	"(*bufio.Writer).WriteString": EffBlocksIO, "(*bufio.Writer).WriteByte": EffBlocksIO,
	"(*bufio.Writer).WriteRune": EffBlocksIO,
	"(*bufio.Reader).Read":      EffBlocksIO, "(*bufio.Reader).ReadString": EffBlocksIO,
	"(*bufio.Reader).ReadBytes": EffBlocksIO, "(*bufio.Reader).ReadLine": EffBlocksIO,
	"(*bufio.Scanner).Scan": EffBlocksIO,
	"fmt.Print":             EffBlocksIO, "fmt.Printf": EffBlocksIO, "fmt.Println": EffBlocksIO,
	"fmt.Fprint": EffBlocksIO, "fmt.Fprintf": EffBlocksIO, "fmt.Fprintln": EffBlocksIO,
	"fmt.Scan": EffBlocksIO, "fmt.Scanf": EffBlocksIO, "fmt.Scanln": EffBlocksIO,
	"(*encoding/json.Encoder).Encode": EffBlocksIO,
	"(*encoding/json.Decoder).Decode": EffBlocksIO,
	"crypto/rand.Read":                EffBlocksIO,

	// --- network IO ---
	"net.Dial": EffBlocksIO, "net.DialTimeout": EffBlocksIO, "net.Listen": EffBlocksIO,
	"(*net.Dialer).Dial": EffBlocksIO, "(*net.Dialer).DialContext": EffBlocksIO,
	"net/http.Get": EffBlocksIO, "net/http.Post": EffBlocksIO,
	"net/http.PostForm": EffBlocksIO, "net/http.Head": EffBlocksIO,
	"(*net/http.Client).Do":  EffBlocksIO,
	"(*net/http.Client).Get": EffBlocksIO, "(*net/http.Client).Post": EffBlocksIO,
	"(*net/http.Client).PostForm": EffBlocksIO, "(*net/http.Client).Head": EffBlocksIO,
	"(*net/http.Transport).RoundTrip": EffBlocksIO,
	"net/http.ListenAndServe":         EffBlocksIO, "net/http.Serve": EffBlocksIO,
	"(*net/http.Server).ListenAndServe": EffBlocksIO, "(*net/http.Server).Serve": EffBlocksIO,
	"(*net/http.Server).Shutdown": EffBlocksIO, "(*net/http.Server).Close": EffBlocksIO,
	"net/http.Error": EffBlocksIO,

	// --- channel-shaped blocking ---
	"(*sync.WaitGroup).Wait": EffBlocksChan,
	"(*sync.Cond).Wait":      EffBlocksChan,
	"time.Sleep":             EffBlocksChan | EffWallClock,

	// --- wall clock (mirrors the wallclock analyzer's table) ---
	"time.Now": EffWallClock, "time.Since": EffWallClock, "time.Until": EffWallClock,
	"time.After": EffWallClock, "time.AfterFunc": EffWallClock, "time.Tick": EffWallClock,
	"time.NewTicker": EffWallClock, "time.NewTimer": EffWallClock,

	// --- math/rand global source (package functions, not *rand.Rand) ---
	"math/rand.Int": EffGlobalRand, "math/rand.Intn": EffGlobalRand,
	"math/rand.Int31": EffGlobalRand, "math/rand.Int31n": EffGlobalRand,
	"math/rand.Int63": EffGlobalRand, "math/rand.Int63n": EffGlobalRand,
	"math/rand.Uint32": EffGlobalRand, "math/rand.Uint64": EffGlobalRand,
	"math/rand.Float32": EffGlobalRand, "math/rand.Float64": EffGlobalRand,
	"math/rand.NormFloat64": EffGlobalRand, "math/rand.ExpFloat64": EffGlobalRand,
	"math/rand.Perm": EffGlobalRand, "math/rand.Shuffle": EffGlobalRand,
	"math/rand.Seed": EffGlobalRand,
}

// externalEffects returns the effects of a function outside the analyzed
// package set. Unlisted externals are assumed effect-free — the table errs
// toward precision over recall so lockscope findings stay actionable.
func externalEffects(fullName string) Effects {
	return effectRoots[fullName]
}

// dynFallbackEffects returns the conservative effects assumed for a dynamic
// (interface-dispatched) call in addition to any analyzed implementations:
// the canonical stream-interface method shapes (io.Reader.Read,
// io.Writer.Write, http.Handler.ServeHTTP, ...) may always be backed by a
// file or socket the analyzer cannot see.
func dynFallbackEffects(name string, sig *types.Signature) Effects {
	switch name {
	case "ServeHTTP":
		return EffBlocksIO
	case "Read", "Write", "Close", "Flush", "Sync", "Accept",
		"RoundTrip", "Seek", "ReadFrom", "WriteTo", "ReadByte", "WriteByte":
		if sig == nil {
			return 0
		}
		res := sig.Results()
		if res.Len() > 0 && isErrorType(res.At(res.Len()-1).Type()) {
			return EffBlocksIO
		}
	}
	return 0
}
