// Package fixer is the -fix engine fixture: every rewrite class in one
// file, plus one suppressed site the fixer must leave alone.
package fixer

import (
	"math/rand"
)

// Jitter draws three global math/rand deviates; each has an exact sim.RNG
// equivalent, so -fix rewrites all of them and drops the import.
func Jitter() float64 {
	base := rand.Float64()
	steps := rand.Intn(8)
	noise := rand.NormFloat64()
	return base + float64(steps) + noise
}

// Converged compares floats with ==/!=; -fix rewrites both to floats.Eq.
func Converged(prev, cur float64) bool {
	if prev == cur {
		return true
	}
	return cur != prev+1
}

// Exact keeps its reviewed bitwise comparison: the directive outranks -fix.
func Exact(a, b float64) bool {
	return a == b //mpicollvet:ignore floateq exact bitwise equality is intended here
}
