// Package clean is the reproducible twin of seededrand/flagged: every draw
// flows from an explicitly seeded source.
package clean

import "math/rand"

// Jitter derives all randomness from the caller's seed.
func Jitter(seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	return rng.Float64()
}

// Shuffle reorders xs deterministically for a given seed.
func Shuffle(seed int64, xs []int) {
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
}
