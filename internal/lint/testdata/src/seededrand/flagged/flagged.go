// Package flagged violates the seededrand invariant by drawing from the
// implicitly seeded global math/rand source.
package flagged

import "math/rand"

// Jitter is irreproducible: no seed controls the draw.
func Jitter() float64 {
	return rand.Float64() // want "implicitly seeded global source"
}

// Shuffle randomizes order from the global source.
func Shuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want "implicitly seeded global source"
}

// Pick draws an index from the global source.
func Pick(n int) int {
	return rand.Intn(n) // want "implicitly seeded global source"
}
