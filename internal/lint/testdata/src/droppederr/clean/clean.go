// Package clean is the careful twin of droppederr/flagged: every writer
// error is checked, and the one deliberate discard is an explicit `_ =`
// assignment.
package clean

import (
	"bufio"
	"fmt"
	"os"
	"strings"
)

// Dump checks every error on the write path.
func Dump(path string, lines []string) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	w := bufio.NewWriter(f)
	for _, ln := range lines {
		if _, err := w.WriteString(ln); err != nil {
			return err
		}
	}
	return w.Flush()
}

// ReadHeader documents its discard: the file was only read, and the read
// error (if any) has already been returned.
func ReadHeader(path string) (string, error) {
	f, err := os.Open(path)
	if err != nil {
		return "", err
	}
	r := bufio.NewReader(f)
	line, err := r.ReadString('\n')
	_ = f.Close()
	return line, err
}

// Render uses strings.Builder, whose writes are documented never to fail —
// the analyzer must not demand error checks here.
func Render(rows []string) string {
	var b strings.Builder
	for _, r := range rows {
		b.WriteString(r)
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "total=%d\n", len(rows))
	return b.String()
}
