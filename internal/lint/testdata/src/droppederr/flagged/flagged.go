// Package flagged violates the droppederr invariant: writer errors vanish
// silently, so truncated artifacts look like successes.
package flagged

import (
	"bufio"
	"os"
)

// Dump loses every error a writer can produce.
func Dump(path string, lines []string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close() // want "defers and discards the error from f.Close"
	w := bufio.NewWriter(f)
	for _, ln := range lines {
		w.WriteString(ln) // want "discards the error from w.WriteString"
	}
	w.Flush() // want "discards the error from w.Flush"
	return nil
}
