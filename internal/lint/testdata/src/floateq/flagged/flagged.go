// Package flagged violates the floateq invariant with raw floating-point
// equality comparisons.
package flagged

// Same compares measured times exactly — rounding noise makes this wrong.
func Same(a, b float64) bool {
	return a == b // want "floating-point == comparison"
}

// Changed inverts the same mistake.
func Changed(prev, cur float32) bool {
	return prev != cur // want "floating-point != comparison"
}

// MixedZero compares a computed float against a literal.
func MixedZero(scale float64) bool {
	return scale == 0 // want "floating-point == comparison"
}
