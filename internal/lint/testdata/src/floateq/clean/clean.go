// Package clean is the numerically safe twin of floateq/flagged.
package clean

import "math"

const eps = 1e-9

// Same compares within an epsilon.
func Same(a, b float64) bool { return math.Abs(a-b) <= eps }

// IsNaN uses the x != x idiom, which the analyzer must accept.
func IsNaN(x float64) bool { return x != x }

// Unbounded compares against an exact infinity, which is well-defined.
func Unbounded(x float64) bool { return x == math.Inf(1) }

// SameID compares integers; only floats are the analyzer's business.
func SameID(a, b int) bool { return a == b }

// constant comparisons are folded by the compiler and exempt.
const widened = 1.5 == 1.25+0.25
