// Package clean is the deterministic twin of maporder/flagged: keys are
// collected, sorted, and only then emitted.
package clean

import (
	"fmt"
	"io"
	"sort"
)

// DumpText emits series in sorted key order; the collection loop over the
// map is pure accumulation, which the analyzer must accept.
func DumpText(w io.Writer, series map[string]float64) error {
	keys := make([]string, 0, len(series))
	for k := range series {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if _, err := fmt.Fprintf(w, "%s %g\n", k, series[k]); err != nil {
			return err
		}
	}
	return nil
}

// Tally ranges over a map without emitting anything at all.
func Tally(counts map[string]int) int {
	total := 0
	for _, n := range counts {
		total += n
	}
	return total
}
