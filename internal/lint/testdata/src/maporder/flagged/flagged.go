// Package flagged violates the maporder invariant: it emits artifacts while
// ranging over maps, so output order changes run to run.
package flagged

import (
	"encoding/csv"
	"fmt"
	"io"
)

// DumpText prints series directly from map iteration.
func DumpText(w io.Writer, series map[string]float64) {
	for name, v := range series { // want "iteration over map series emits output"
		fmt.Fprintf(w, "%s %g\n", name, v)
	}
}

// DumpCSV writes rows straight out of a map.
func DumpCSV(w *csv.Writer, rows map[string][]string) {
	for key, row := range rows { // want "iteration over map rows emits output"
		w.Write(append([]string{key}, row...))
	}
}
