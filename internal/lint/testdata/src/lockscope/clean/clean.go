// Package clean exercises the lock patterns the lockscope analyzer must
// accept: memory-only critical sections, early unlock before blocking, copy
// under lock then operate, TryLock single-flight, and spawning (not
// blocking) under a lock.
package clean

import (
	"os"
	"sync"
)

// Counter is a memory-only critical section.
type Counter struct {
	mu sync.Mutex
	n  int
}

// Inc touches memory only.
func (c *Counter) Inc() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
}

// Snapshot copies under the lock and does IO after releasing it.
type Snapshot struct {
	mu   sync.Mutex
	data []byte
	path string
}

// Save releases before blocking.
func (s *Snapshot) Save() error {
	s.mu.Lock()
	buf := make([]byte, len(s.data))
	copy(buf, s.data)
	s.mu.Unlock()
	return os.WriteFile(s.path, buf, 0o644)
}

// SingleFlight holds a TryLock'd mutex across IO by design (the fleet
// rollout pattern): a failed TryLock holds nothing, and the single flight
// owns the lock for its whole run.
type SingleFlight struct {
	run  sync.Mutex
	path string
}

// Run is the single flight.
func (s *SingleFlight) Run() error {
	if !s.run.TryLock() {
		return nil
	}
	defer s.run.Unlock()
	return os.WriteFile(s.path, nil, 0o644)
}

// Spawner starts a goroutine under the lock; the spawn itself does not
// block, and the goroutine's IO happens after Lock is no longer relevant
// to it.
type Spawner struct {
	mu   sync.Mutex
	path string
	done chan error
}

// Kick spawns but does not block under mu.
func (s *Spawner) Kick() {
	s.mu.Lock()
	defer s.mu.Unlock()
	go func() {
		s.done <- os.WriteFile(s.path, nil, 0o644)
	}()
}
