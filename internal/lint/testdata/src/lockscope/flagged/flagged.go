// Package flagged violates the lockscope invariant: mutexes held across
// blocking calls, both directly and through helper chains the analyzer must
// see through interprocedurally.
package flagged

import (
	"net/http"
	"os"
	"sync"
)

// Store holds a mutex across file IO.
type Store struct {
	mu   sync.Mutex
	path string
	ch   chan int
}

// SaveDirect blocks on IO with the lock held via defer.
func (s *Store) SaveDirect(data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return os.WriteFile(s.path, data, 0o644) // want "call to os.WriteFile"
}

// persist is a helper two hops from the syscall.
func (s *Store) persist(data []byte) error {
	return s.write(data)
}

func (s *Store) write(data []byte) error {
	return os.WriteFile(s.path, data, 0o644)
}

// SaveIndirect blocks on IO through a helper chain.
func (s *Store) SaveIndirect(data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.persist(data) // want "while s.mu is held"
}

// Notify performs a channel send under the lock.
func (s *Store) Notify(v int) {
	s.mu.Lock()
	s.ch <- v // want "channel send while s.mu is held"
	s.mu.Unlock()
}

// Fetch holds an RWMutex read lock across an HTTP round trip.
type Fetch struct {
	mu  sync.RWMutex
	url string
}

// Get blocks on the network with the read lock held.
func (f *Fetch) Get(c *http.Client) error {
	f.mu.RLock()
	defer f.mu.RUnlock()
	resp, err := c.Get(f.url) // want "while f.mu is held"
	if err != nil {
		return err
	}
	return resp.Body.Close() // want "interface method Close"
}

// Embedded holds an embedded mutex across a blocking receive.
type Embedded struct {
	sync.Mutex
	done chan struct{}
}

// WaitDone receives under the embedded lock.
func (e *Embedded) WaitDone() {
	e.Lock()
	<-e.done // want "channel receive while e is held"
	e.Unlock()
}
