// Package flagged violates the ctxflow contract: fresh contexts minted
// where a caller context exists, and context-less outbound requests in a
// restricted request-path package.
package flagged

import (
	"context"
	"net/http"
)

// Proxy discards the handler's request context.
func Proxy(w http.ResponseWriter, r *http.Request) {
	ctx, cancel := context.WithTimeout(context.Background(), 0) // want "discards the caller's context; propagate r.Context()"
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, "http://backend/x", nil)
	if err != nil {
		return
	}
	_, _ = http.DefaultClient.Do(req)
}

// Forward builds a context-less request despite having a ctx parameter.
func Forward(ctx context.Context, url string) (*http.Request, error) {
	return http.NewRequest(http.MethodGet, url, nil) // want "use http.NewRequestWithContext"
}

// probe has no ctx parameter, but this package is restricted: outbound
// requests must still carry a context.
func probe(url string) (*http.Request, error) {
	return http.NewRequest(http.MethodGet, url, nil) // want "use http.NewRequestWithContext"
}

// Handler mints a Background inside a closure whose enclosing function has
// the request.
func Handler(w http.ResponseWriter, r *http.Request) {
	run := func() context.Context {
		return context.TODO() // want "discards the caller's context"
	}
	_ = run()
}
