// Package clean exercises the context flows ctxflow must accept: handlers
// propagating r.Context(), ctx parameters threaded through, and lifecycle-
// owning background goroutines minting their own root context.
package clean

import (
	"context"
	"net/http"
	"time"
)

// Proxy threads the inbound request context into the outbound request.
func Proxy(w http.ResponseWriter, r *http.Request) {
	req, err := http.NewRequestWithContext(r.Context(), http.MethodGet, "http://backend/x", nil)
	if err != nil {
		return
	}
	_, _ = http.DefaultClient.Do(req)
}

// Forward derives from the caller's ctx.
func Forward(ctx context.Context, url string) (*http.Request, error) {
	ctx, cancel := context.WithTimeout(ctx, time.Second)
	defer cancel()
	return http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
}

// prober owns its lifecycle: no caller context exists, so a fresh root is
// the correct choice (rule 1 does not apply without a ctx in scope, and the
// request carries it).
func prober(url string) (*http.Request, error) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	return http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
}
