// Package clean exercises the shapes atomicmix must accept: consistently
// atomic access through the pointer API, typed atomics, and plain variables
// never touched by sync/atomic.
package clean

import "sync/atomic"

// Consistent uses atomic ops for every access.
type Consistent struct {
	n int64
}

// Inc and Total both go through sync/atomic.
func (c *Consistent) Inc() {
	atomic.AddInt64(&c.n, 1)
}

// Total loads atomically.
func (c *Consistent) Total() int64 {
	return atomic.LoadInt64(&c.n)
}

// Typed uses the repo-preferred typed atomics, where mixing is impossible.
type Typed struct {
	n atomic.Int64
}

// Inc and Total use the typed API.
func (t *Typed) Inc() {
	t.n.Add(1)
}

// Total loads via the typed API.
func (t *Typed) Total() int64 {
	return t.n.Load()
}

// plain is never atomic, so plain access is fine.
var plain int

// Bump increments a mutex-free, goroutine-free counter.
func Bump() {
	plain++
}
