// Package flagged violates the atomicmix invariant: the same word is
// accessed through sync/atomic in one place and plainly in another.
package flagged

import "sync/atomic"

// Hits mixes atomic increments with plain reads.
type Hits struct {
	n int64
}

// Inc is the atomic side.
func (h *Hits) Inc() {
	atomic.AddInt64(&h.n, 1)
}

// Total is the racy plain read.
func (h *Hits) Total() int64 {
	return h.n // want "plain access to n"
}

// Reset is a racy plain write.
func (h *Hits) Reset() {
	h.n = 0 // want "plain access to n"
}

// package-level counter with the same mix.
var ops uint64

// Bump is atomic.
func Bump() {
	atomic.AddUint64(&ops, 1)
}

// Ops reads plainly.
func Ops() uint64 {
	return ops // want "plain access to ops"
}
