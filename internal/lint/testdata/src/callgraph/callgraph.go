// Package callgraph is the golden-test fixture for the graph layer: it
// exercises static calls, helper chains, interface dispatch, method values,
// closures (including an IIFE), spawns, channel ops, and every effect root
// class, so a graph regression fails this fixture loudly.
package callgraph

import (
	"io"
	"os"
	"time"
)

// Sink is dispatched dynamically; both implementations are in-package.
type Sink interface {
	Put(b []byte) error
}

// FileSink blocks on IO.
type FileSink struct{ f *os.File }

// Put writes to the file.
func (s *FileSink) Put(b []byte) error {
	_, err := s.f.Write(b)
	return err
}

// MemSink is effect-free.
type MemSink struct{ buf []byte }

// Put appends in memory.
func (s *MemSink) Put(b []byte) error {
	s.buf = append(s.buf, b...)
	return nil
}

// Deliver calls through the interface: CHA unions both implementations.
func Deliver(s Sink, b []byte) error {
	return s.Put(b)
}

// Chain reaches IO two hops down.
func Chain(path string, b []byte) error {
	return hop1(path, b)
}

func hop1(path string, b []byte) error { return hop2(path, b) }

func hop2(path string, b []byte) error { return os.WriteFile(path, b, 0o644) }

// TakeValue stores a method value: a conservative may-call edge.
func TakeValue(s *FileSink) func([]byte) error {
	return s.Put
}

// Clock reads wall-clock time.
func Clock() time.Duration {
	start := time.Now()
	return time.Since(start)
}

// Spawn starts a worker; the worker's channel blocking must not leak into
// Spawn's own effects, but the spawn bit must.
func Spawn(jobs chan []byte, s Sink) {
	go worker(jobs, s)
}

func worker(jobs chan []byte, s Sink) {
	for b := range jobs {
		_ = Deliver(s, b)
	}
}

// Closures nests two closures; the inner one blocks on a channel, the IIFE
// runs synchronously so its effects surface in Closures itself.
func Closures(ch chan int) int {
	inner := func() int {
		return <-ch
	}
	total := func() int { // IIFE: called immediately below
		return inner() + inner()
	}()
	return total
}

// CopyStream blocks through the generic io helper.
func CopyStream(dst io.Writer, src io.Reader) error {
	_, err := io.Copy(dst, src)
	return err
}
