// Package flagged violates the wallclock invariant: it reads the real clock
// inside what the test configures as a deterministic package.
package flagged

import "time"

// Stamp reads the wall clock.
func Stamp() time.Time {
	return time.Now() // want "reads the wall clock inside deterministic package"
}

// Elapsed measures real elapsed time.
func Elapsed(start time.Time) time.Duration {
	return time.Since(start) // want "reads the wall clock inside deterministic package"
}

// Wait blocks on the host scheduler.
func Wait() {
	time.Sleep(time.Millisecond) // want "reads the wall clock inside deterministic package"
}
