// Package clean advances simulated time only: time.Time/Duration values are
// data, never read from the host clock.
package clean

import "time"

// Clock is a simulated clock advanced explicitly by the engine.
type Clock struct {
	now time.Duration
}

// Advance moves simulated time forward.
func (c *Clock) Advance(d time.Duration) { c.now += d }

// Now returns the current simulated time offset.
func (c *Clock) Now() time.Duration { return c.now }

// Deadline computes a simulated deadline; time.Duration arithmetic is fine.
func Deadline(start, timeout time.Duration) time.Duration {
	return start + timeout
}
