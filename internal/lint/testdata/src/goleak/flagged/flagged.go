// Package flagged violates the goleak invariant: goroutines in a long-lived
// package whose loops have no escape path.
package flagged

import "time"

// Poller loops forever with no way out.
type Poller struct {
	tick *time.Ticker
}

// Start leaks: the loop has neither return nor break.
func (p *Poller) Start() {
	go func() { // want "unbounded for loop with no return or break"
		for {
			<-p.tick.C
			p.sweep()
		}
	}()
}

func (p *Poller) sweep() {}

// loop is a named spawn target resolved through the call graph.
func (p *Poller) loop() {
	for {
		<-p.tick.C
		p.sweep()
	}
}

// StartNamed leaks through a named method.
func (p *Poller) StartNamed() {
	go p.loop() // want "unbounded for loop with no return or break"
}
