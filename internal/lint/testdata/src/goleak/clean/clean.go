// Package clean exercises the goroutine shapes goleak must accept: a
// stop-channel select with return, a range over a closable channel, a
// bounded loop, and a one-shot goroutine.
package clean

import "time"

// Prober is the repo's prober pattern: select on stop, return.
type Prober struct {
	stop chan struct{}
	tick *time.Ticker
}

// Start has a shutdown path.
func (p *Prober) Start() {
	go func() {
		for {
			select {
			case <-p.stop:
				return
			case <-p.tick.C:
				p.sweep()
			}
		}
	}()
}

func (p *Prober) sweep() {}

// Drain ranges over a channel; closing it ends the goroutine.
func Drain(jobs chan func()) {
	go func() {
		for f := range jobs {
			f()
		}
	}()
}

// Burst runs a bounded loop.
func Burst(n int, f func()) {
	go func() {
		for i := 0; i < n; i++ {
			f()
		}
	}()
}

// OneShot has no loop at all.
func OneShot(done chan<- struct{}) {
	go func() {
		done <- struct{}{}
	}()
}
