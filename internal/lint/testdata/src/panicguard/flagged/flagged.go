// Package flagged violates the panicguard invariant: it panics in a package
// no guardrail recovers.
package flagged

import "fmt"

// MustPositive crashes the process instead of returning an error.
func MustPositive(n int) int {
	if n <= 0 {
		panic(fmt.Sprintf("n must be positive, got %d", n)) // want "not recovered by any guardrail"
	}
	return n
}
