// Package clean stands in for a guardrail-recovered learner package: the
// test passes this package's path in the analyzer's allowed list, so its
// panics are accepted.
package clean

// Fit panics on programmer error; the (simulated) guardrail recovers it.
func Fit(xs []float64) float64 {
	if len(xs) == 0 {
		panic("Fit: empty training set")
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}
