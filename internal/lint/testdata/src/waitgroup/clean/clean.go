// Package clean exercises the WaitGroup shapes the analyzer must accept:
// Add before spawn, a goroutine-local WaitGroup fan-out, and Wait with no
// lock held.
package clean

import "sync"

// FanOut adds before each spawn — the happens-before edge Wait needs.
func FanOut(work []func()) {
	var wg sync.WaitGroup
	for _, f := range work {
		f := f
		wg.Add(1)
		go func() {
			defer wg.Done()
			f()
		}()
	}
	wg.Wait()
}

// Nested owns a WaitGroup inside the goroutine: its Add/Wait pair is local,
// so the outer Wait races nothing.
func Nested(stages [][]func()) {
	var outer sync.WaitGroup
	for _, stage := range stages {
		stage := stage
		outer.Add(1)
		go func() {
			defer outer.Done()
			var inner sync.WaitGroup
			for _, f := range stage {
				f := f
				inner.Add(1)
				go func() {
					defer inner.Done()
					f()
				}()
			}
			inner.Wait()
		}()
	}
	outer.Wait()
}

// Sweep copies under the lock, releases, then waits.
type Sweep struct {
	mu   sync.Mutex
	done sync.WaitGroup
	work []func()
}

// Run waits with no lock held.
func (s *Sweep) Run() {
	s.mu.Lock()
	jobs := append([]func(){}, s.work...)
	s.mu.Unlock()
	for _, f := range jobs {
		f := f
		s.done.Add(1)
		go func() {
			defer s.done.Done()
			f()
		}()
	}
	s.done.Wait()
}
