// Package flagged violates the waitgroup contracts: Add racing Wait from
// inside the spawned goroutine, and Wait under a held lock.
package flagged

import "sync"

// FanOut adds from inside the goroutine: Wait can observe zero and return
// before the work registers.
func FanOut(work []func()) {
	var wg sync.WaitGroup
	for _, f := range work {
		f := f
		go func() {
			wg.Add(1) // want "wg.Add inside the spawned goroutine"
			defer wg.Done()
			f()
		}()
	}
	wg.Wait()
}

// Pool waits while holding its own lock; workers needing the lock deadlock.
type Pool struct {
	mu      sync.Mutex
	pending sync.WaitGroup
}

// Flush deadlocks against workers that need mu.
func (p *Pool) Flush() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.pending.Wait() // want "wg.Wait while p.mu is held"
}

// FieldAdd spawns a method that adds to a shared field WaitGroup.
type FieldAdd struct {
	wg sync.WaitGroup
}

func (f *FieldAdd) work() {
	f.wg.Add(1) // want "wg.Add inside the spawned goroutine"
	defer f.wg.Done()
}

// Go spawns work, whose Add races this Wait.
func (f *FieldAdd) Go() {
	go f.work()
	f.wg.Wait()
}
