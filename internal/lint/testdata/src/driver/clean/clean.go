// Package clean has nothing to report; the driver must exit 0 with no
// output.
package clean

// Add is as boring as code gets.
func Add(a, b int) int { return a + b }
