// Package badignore carries malformed suppression directives: one with no
// reason, one naming an unknown analyzer. The driver must report both from
// the "ignore" pseudo-analyzer.
package badignore

// Scale is fine on its own; only the directives are broken.
func Scale(x float64) float64 {
	//mpicollvet:ignore floateq
	y := x * 2
	//mpicollvet:ignore nosuchanalyzer this analyzer does not exist
	return y
}
