// Package flagged carries one floateq and one seededrand violation for
// driver-level tests (text output, -json, exit codes).
package flagged

import "math/rand"

// Equalish compares floats exactly.
func Equalish(a, b float64) bool {
	return a == b
}

// Noise draws from the global source.
func Noise() float64 {
	return rand.Float64()
}
