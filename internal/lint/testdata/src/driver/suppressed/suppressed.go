// Package suppressed carries the same violations as driver/flagged, each
// silenced by a well-formed //mpicollvet:ignore directive — one trailing,
// one on the line above. The driver must exit clean here.
package suppressed

import "math/rand"

// Equalish documents why exact equality is intended at this site.
func Equalish(a, b float64) bool {
	return a == b //mpicollvet:ignore floateq golden fixture exercising a trailing suppression directive
}

// Noise documents why the global source is acceptable at this site.
func Noise() float64 {
	//mpicollvet:ignore seededrand golden fixture exercising a line-above suppression directive
	return rand.Float64()
}
