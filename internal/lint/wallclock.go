package lint

import (
	"go/types"
)

// wallClockFuncs are time-package functions that read or depend on the
// machine's real clock.
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "After": true,
	"AfterFunc": true, "Tick": true, "NewTicker": true, "NewTimer": true,
	"Sleep": true,
}

// NewWallClock returns the wallclock analyzer: inside the deterministic
// packages (restricted, matched as import-path fragments) any use of the
// real clock is a bug — the simulator, network model, fault injector, and
// collective schedules advance simulated time only, and a wall-clock read
// makes results depend on host load. Observability and benchmarking
// packages legitimately measure wall time and are simply not listed.
func NewWallClock(restricted []string) *Analyzer {
	a := &Analyzer{
		Name: "wallclock",
		Doc:  "wall-clock reads in deterministic packages (sim/netmodel/fault/coll); use simulated time",
	}
	a.Run = func(pass *Pass) {
		if !anyPathMatches(pass.Pkg.Path(), restricted) {
			return
		}
		for id, obj := range pass.TypesInfo.Uses {
			fn, ok := obj.(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "time" {
				continue
			}
			sig, _ := fn.Type().(*types.Signature)
			if sig == nil || sig.Recv() != nil || !wallClockFuncs[fn.Name()] {
				continue
			}
			pass.Reportf(id.Pos(),
				"time.%s reads the wall clock inside deterministic package %s; use the engine's simulated clock",
				fn.Name(), pass.Pkg.Path())
		}
	}
	return a
}
