package lint

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"time"
)

// Exit codes of the mpicollvet driver.
const (
	ExitClean    = 0 // no findings
	ExitFindings = 1 // at least one finding
	ExitError    = 2 // usage, load, or type-check failure; failed bench gate
)

// CLIMain is the mpicollvet driver, factored out of cmd/mpicollvet so the
// tests can exercise flag handling, output formats, and exit codes without
// spawning a process. args are the command-line arguments after the program
// name; the return value is the process exit code.
func CLIMain(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("mpicollvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array instead of text")
	list := fs.Bool("list", false, "list the analyzers and exit")
	dir := fs.String("C", ".", "directory to resolve package patterns in")
	workers := fs.Int("workers", 0, "concurrent package load/analysis (0 = GOMAXPROCS)")
	sarifOut := fs.String("sarif", "", "also write findings as SARIF 2.1.0 to this file (- for stdout)")
	baselinePath := fs.String("baseline", "", "suppress findings recorded in this baseline file; fail only on new ones")
	writeBaseline := fs.String("write-baseline", "", "write current findings to this baseline file and exit clean")
	fix := fs.Bool("fix", false, "apply the mechanically-safe rewrites (floats.Eq, sim.StubRNG) in place")
	diff := fs.Bool("diff", false, "with -fix semantics: print the rewrite diffs without writing files")
	benchout := fs.String("benchout", "", "benchmark serial vs parallel runner, write JSON to this file, and exit")
	minSpeedup := fs.Float64("min-speedup", 0, "with -benchout: fail (exit 2) if parallel/serial speedup is below this")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: mpicollvet [flags] [packages]\n\n"+
			"Runs the repository's domain-specific static analyzers over the\n"+
			"named package patterns (default ./...). Findings are reported as\n"+
			"file:line:col: [analyzer] message; suppress one with a\n"+
			"//mpicollvet:ignore <analyzer> <reason> comment on the same line\n"+
			"or the line above. Exit status: %d clean, %d findings, %d error.\n\nFlags:\n",
			ExitClean, ExitFindings, ExitError)
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return ExitError
	}

	analyzers := DefaultAnalyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return ExitClean
	}

	if *benchout != "" {
		return runBench(*dir, fs.Args(), analyzers, *benchout, *minSpeedup, *workers, stderr)
	}

	pkgs, err := LoadWorkers(*dir, fs.Args(), *workers)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return ExitError
	}

	if *fix || *diff {
		write := *fix && !*diff
		changed, err := ApplyFixes(pkgs, write, stdout)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return ExitError
		}
		verb := "would change"
		if write {
			verb = "rewrote"
		}
		fmt.Fprintf(stderr, "mpicollvet -fix: %s %d file(s)\n", verb, changed)
		return ExitClean
	}

	runner := &Runner{Analyzers: analyzers, Workers: *workers}
	findings := runner.Run(pkgs)
	relativize(findings)

	if *writeBaseline != "" {
		if err := WriteBaselineFile(*writeBaseline, NewBaseline(findings)); err != nil {
			fmt.Fprintln(stderr, err)
			return ExitError
		}
		fmt.Fprintf(stderr, "mpicollvet: wrote baseline with %d finding(s) to %s\n",
			len(findings), *writeBaseline)
		return ExitClean
	}

	if *baselinePath != "" {
		base, err := ReadBaselineFile(*baselinePath)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return ExitError
		}
		fresh, known := base.Filter(findings)
		if len(known) > 0 {
			fmt.Fprintf(stderr, "mpicollvet: %d known finding(s) suppressed by baseline %s\n",
				len(known), *baselinePath)
		}
		findings = fresh
	}

	if *sarifOut != "" {
		w := stdout
		var f *os.File
		if *sarifOut != "-" {
			var err error
			if f, err = os.Create(*sarifOut); err != nil {
				fmt.Fprintln(stderr, err)
				return ExitError
			}
			w = f
		}
		err := WriteSARIF(w, analyzers, findings)
		if f != nil {
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintln(stderr, err)
			return ExitError
		}
	}

	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if findings == nil {
			findings = []Finding{}
		}
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintln(stderr, err)
			return ExitError
		}
	} else if *sarifOut != "-" {
		for _, f := range findings {
			fmt.Fprintln(stdout, f)
		}
		if len(findings) > 0 {
			fmt.Fprintf(stderr, "mpicollvet: %d finding(s)\n", len(findings))
		}
	}
	if len(findings) > 0 {
		return ExitFindings
	}
	return ExitClean
}

// BenchResult is the BENCH_lint.json schema: the PR-5 convention of a small
// machine-readable perf artifact with an explicit gate.
type BenchResult struct {
	Targets          int     `json:"targets"`
	Workers          int     `json:"workers"`
	SerialSeconds    float64 `json:"serial_seconds"`
	ParallelSeconds  float64 `json:"parallel_seconds"`
	Speedup          float64 `json:"speedup"`
	Findings         int     `json:"findings"`
	OutputsIdentical bool    `json:"outputs_identical"`
	MinSpeedup       float64 `json:"min_speedup"`
}

// runBench times the full load+analyze pipeline serially and at the
// requested worker count from one shared `go list` invocation, verifies the
// outputs are byte-identical, and writes the JSON artifact. The serial leg
// runs first so its page-cache warmup benefits the parallel leg — the bias
// works against the speedup gate, not for it.
func runBench(dir string, patterns []string, analyzers []*Analyzer, outPath string, minSpeedup float64, workers int, stderr io.Writer) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	l, err := list(dir, patterns)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return ExitError
	}
	leg := func(w int) (string, int, time.Duration, error) {
		start := time.Now()
		pkgs, err := l.load(w)
		if err != nil {
			return "", 0, 0, err
		}
		runner := &Runner{Analyzers: analyzers, Workers: w}
		findings := runner.Run(pkgs)
		elapsed := time.Since(start)
		text := ""
		for _, f := range findings {
			text += f.String() + "\n"
		}
		return text, len(findings), elapsed, nil
	}
	serialOut, nFindings, serialDur, err := leg(1)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return ExitError
	}
	parallelOut, _, parallelDur, err := leg(workers)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return ExitError
	}
	res := BenchResult{
		Targets:          len(l.targets),
		Workers:          workers,
		SerialSeconds:    serialDur.Seconds(),
		ParallelSeconds:  parallelDur.Seconds(),
		Speedup:          serialDur.Seconds() / parallelDur.Seconds(),
		Findings:         nFindings,
		OutputsIdentical: serialOut == parallelOut,
		MinSpeedup:       minSpeedup,
	}
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		fmt.Fprintln(stderr, err)
		return ExitError
	}
	if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintln(stderr, err)
		return ExitError
	}
	fmt.Fprintf(stderr, "mpicollvet bench: %d pkgs, serial %.2fs, parallel(%d) %.2fs, speedup %.2fx, identical=%v\n",
		res.Targets, res.SerialSeconds, res.Workers, res.ParallelSeconds, res.Speedup, res.OutputsIdentical)
	if !res.OutputsIdentical {
		fmt.Fprintln(stderr, "mpicollvet bench: FAIL — parallel output differs from serial")
		return ExitError
	}
	if minSpeedup > 0 && res.Speedup < minSpeedup {
		fmt.Fprintf(stderr, "mpicollvet bench: FAIL — speedup %.2fx below gate %.2fx\n", res.Speedup, minSpeedup)
		return ExitError
	}
	return ExitClean
}

// relativize rewrites absolute finding paths relative to the working
// directory for readable, machine-independent reports.
func relativize(findings []Finding) {
	wd, err := os.Getwd()
	if err != nil {
		return
	}
	for i, f := range findings {
		if rel, err := filepath.Rel(wd, f.File); err == nil && len(rel) < len(f.File) {
			findings[i].File = rel
		}
	}
}

// ReadBenchFile loads a -benchout artifact (BENCH_lint.json).
func ReadBenchFile(path string) (*BenchResult, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r BenchResult
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("bench file %s: %v", path, err)
	}
	return &r, nil
}
