package lint

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// Exit codes of the mpicollvet driver.
const (
	ExitClean    = 0 // no findings
	ExitFindings = 1 // at least one finding
	ExitError    = 2 // usage, load, or type-check failure
)

// CLIMain is the mpicollvet driver, factored out of cmd/mpicollvet so the
// tests can exercise flag handling, output formats, and exit codes without
// spawning a process. args are the command-line arguments after the program
// name; the return value is the process exit code.
func CLIMain(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("mpicollvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array instead of text")
	list := fs.Bool("list", false, "list the analyzers and exit")
	dir := fs.String("C", ".", "directory to resolve package patterns in")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: mpicollvet [flags] [packages]\n\n"+
			"Runs the repository's domain-specific static analyzers over the\n"+
			"named package patterns (default ./...). Findings are reported as\n"+
			"file:line:col: [analyzer] message; suppress one with a\n"+
			"//mpicollvet:ignore <analyzer> <reason> comment on the same line\n"+
			"or the line above. Exit status: %d clean, %d findings, %d error.\n\nFlags:\n",
			ExitClean, ExitFindings, ExitError)
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return ExitError
	}

	analyzers := DefaultAnalyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return ExitClean
	}

	pkgs, err := Load(*dir, fs.Args())
	if err != nil {
		fmt.Fprintln(stderr, err)
		return ExitError
	}
	runner := &Runner{Analyzers: analyzers}
	findings := runner.Run(pkgs)
	relativize(findings)

	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if findings == nil {
			findings = []Finding{}
		}
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintln(stderr, err)
			return ExitError
		}
	} else {
		for _, f := range findings {
			fmt.Fprintln(stdout, f)
		}
		if len(findings) > 0 {
			fmt.Fprintf(stderr, "mpicollvet: %d finding(s)\n", len(findings))
		}
	}
	if len(findings) > 0 {
		return ExitFindings
	}
	return ExitClean
}

// relativize rewrites absolute finding paths relative to the working
// directory for readable, machine-independent reports.
func relativize(findings []Finding) {
	wd, err := os.Getwd()
	if err != nil {
		return
	}
	for i, f := range findings {
		if rel, err := filepath.Rel(wd, f.File); err == nil && len(rel) < len(f.File) {
			findings[i].File = rel
		}
	}
}
