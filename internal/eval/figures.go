package eval

import (
	"fmt"
	"sort"

	"mpicollpred/internal/core"
	"mpicollpred/internal/dataset"
	"mpicollpred/internal/machine"
	"mpicollpred/internal/mpilib"
)

// NormalizedSeries is the data behind one panel of the paper's Figs. 4/6/7/8:
// for a fixed (nodes, ppn), the measured running times of the three
// strategies over the message sizes, normalized to the exhaustive best
// (best = 1.0 everywhere).
type NormalizedSeries struct {
	Nodes   int
	PPN     int
	Msizes  []int64
	Best    []float64 // all 1.0, kept for symmetric rendering
	Default []float64
	Pred    []float64
}

// NormalizedRuntime builds the panel series for one allocation using a
// trained selector.
func NormalizedRuntime(ds *dataset.Dataset, mach machine.Machine, set *mpilib.CollectiveSet,
	sel *core.Selector, nodes, ppn int) (NormalizedSeries, error) {

	out := NormalizedSeries{Nodes: nodes, PPN: ppn}
	msizes := append([]int64(nil), ds.Spec.Msizes...)
	sort.Slice(msizes, func(i, j int) bool { return msizes[i] < msizes[j] })
	for _, m := range msizes {
		in := dataset.Instance{Nodes: nodes, PPN: ppn, Msize: m}
		res, err := evaluateInstance(ds, mach, set, sel, in)
		if err != nil {
			return out, err
		}
		out.Msizes = append(out.Msizes, m)
		out.Best = append(out.Best, 1.0)
		out.Default = append(out.Default, res.DefaultT/res.BestT)
		out.Pred = append(out.Pred, res.PredT/res.BestT)
	}
	return out, nil
}

// AlgChoice is one cell of the paper's Fig. 5: the algorithm id chosen by a
// learner for one (nodes × ppn, msize) cell.
type AlgChoice struct {
	Learner string
	Nodes   int
	PPN     int
	Msize   int64
	AlgID   int
}

// AlgorithmMap reproduces Fig. 5: for each learner, the predicted algorithm
// id over the (config × msize) grid of the given test node counts.
func AlgorithmMap(ds *dataset.Dataset, set *mpilib.CollectiveSet, learners []string,
	trainNodes, testNodes []int) ([]AlgChoice, error) {

	var out []AlgChoice
	msizes := append([]int64(nil), ds.Spec.Msizes...)
	sort.Slice(msizes, func(i, j int) bool { return msizes[i] < msizes[j] })
	for _, learner := range learners {
		sel, err := core.Train(ds, set, learner, trainNodes)
		if err != nil {
			return nil, err
		}
		for _, n := range testNodes {
			for _, ppn := range ds.Spec.PPNs {
				for _, m := range msizes {
					p := sel.Select(n, ppn, m)
					out = append(out, AlgChoice{Learner: learner, Nodes: n, PPN: ppn, Msize: m, AlgID: p.AlgID})
				}
			}
		}
	}
	return out, nil
}

// ChainSpeedupRow is one point of the paper's Fig. 2: the measured speedup
// of a chain-broadcast configuration over the linear broadcast.
type ChainSpeedupRow struct {
	Seg     int64
	Chains  int
	Msize   int64
	Speedup float64
}

// ChainSpeedup reproduces Fig. 2 from a measured broadcast dataset: for the
// given allocation, the speedup of every chain configuration (algorithm 2)
// with respect to the basic linear broadcast (algorithm 1), across message
// sizes.
func ChainSpeedup(ds *dataset.Dataset, set *mpilib.CollectiveSet, nodes, ppn int) ([]ChainSpeedupRow, error) {
	if ds.Spec.Coll != mpilib.Bcast {
		return nil, fmt.Errorf("eval: ChainSpeedup needs a bcast dataset, got %s", ds.Spec.Coll)
	}
	var linearID int
	for _, c := range set.Configs {
		if c.AlgID == 1 {
			linearID = c.ID
			break
		}
	}
	if linearID == 0 {
		return nil, fmt.Errorf("eval: no linear broadcast in the portfolio")
	}
	var out []ChainSpeedupRow
	msizes := append([]int64(nil), ds.Spec.Msizes...)
	sort.Slice(msizes, func(i, j int) bool { return msizes[i] < msizes[j] })
	for _, c := range set.Configs {
		if c.AlgID != 2 {
			continue
		}
		for _, m := range msizes {
			lin, ok1 := ds.Lookup(linearID, nodes, ppn, m)
			ch, ok2 := ds.Lookup(c.ID, nodes, ppn, m)
			if !ok1 || !ok2 {
				return nil, fmt.Errorf("eval: missing measurement for %dx%d m=%d", nodes, ppn, m)
			}
			out = append(out, ChainSpeedupRow{
				Seg: c.Params.Seg, Chains: c.Params.Fanout, Msize: m, Speedup: lin / ch,
			})
		}
	}
	return out, nil
}
