package eval

import (
	"fmt"
	"math"
	"sort"
	"time"

	"mpicollpred/internal/core"
	"mpicollpred/internal/dataset"
	"mpicollpred/internal/machine"
	"mpicollpred/internal/mpilib"
	"mpicollpred/internal/obs"
)

// InstanceResult compares the three strategies on one test instance. All
// times are measured values from the dataset (the paper measured the entire
// grid beforehand, so the runtime of any chosen configuration is known).
type InstanceResult struct {
	dataset.Instance
	BestID    int
	BestT     float64
	DefaultID int
	DefaultT  float64
	PredID    int
	PredAlgID int
	PredT     float64
	// ModelT is the model's *predicted* time for the chosen configuration
	// (PredT is its measured time).
	ModelT float64
}

// Speedup is the paper's headline metric: measured default time over
// measured predicted-configuration time (> 1 means the prediction wins).
func (r InstanceResult) Speedup() float64 { return r.DefaultT / r.PredT }

// Evaluation holds the per-instance comparison of one (dataset, learner,
// training split) combination.
type Evaluation struct {
	Dataset    string
	Learner    string
	TrainNodes []int
	TestNodes  []int
	Results    []InstanceResult
	Selector   *core.Selector
	// TrainWall and EvalWall are the wall-clock seconds spent training the
	// selector and evaluating the test instances, respectively.
	TrainWall float64
	EvalWall  float64
}

// Evaluate trains a selector on trainNodes and evaluates it on every
// dataset instance whose node count is in testNodes. mach and set must be
// the resolved machine/collective pair of the dataset (pass the same set
// across calls to reuse the memoized default-decision table).
func Evaluate(ds *dataset.Dataset, mach machine.Machine, set *mpilib.CollectiveSet,
	learner string, trainNodes, testNodes []int) (*Evaluation, error) {

	tTrain := time.Now()
	sel, err := core.Train(ds, set, learner, trainNodes)
	if err != nil {
		return nil, err
	}
	ev := &Evaluation{
		Dataset:    ds.Spec.Name,
		Learner:    learner,
		TrainNodes: append([]int(nil), trainNodes...),
		TestNodes:  append([]int(nil), testNodes...),
		Selector:   sel,
		TrainWall:  time.Since(tTrain).Seconds(),
	}
	inTest := map[int]bool{}
	for _, n := range testNodes {
		inTest[n] = true
	}

	instances := ds.Instances()
	sort.Slice(instances, func(i, j int) bool {
		a, b := instances[i], instances[j]
		if a.Nodes != b.Nodes {
			return a.Nodes < b.Nodes
		}
		if a.PPN != b.PPN {
			return a.PPN < b.PPN
		}
		return a.Msize < b.Msize
	})

	tEval := time.Now()
	for _, in := range instances {
		if !inTest[in.Nodes] {
			continue
		}
		res, err := evaluateInstance(ds, mach, set, sel, in)
		if err != nil {
			return nil, err
		}
		ev.Results = append(ev.Results, res)
	}
	ev.EvalWall = time.Since(tEval).Seconds()
	if len(ev.Results) == 0 {
		return nil, fmt.Errorf("eval: no test instances for nodes %v in %s", testNodes, ds.Spec.Name)
	}
	obs.Default.Counter("eval_instances_total",
		obs.Labels{"dataset": ev.Dataset, "learner": learner}).Add(int64(len(ev.Results)))
	return ev, nil
}

func evaluateInstance(ds *dataset.Dataset, mach machine.Machine, set *mpilib.CollectiveSet,
	sel *core.Selector, in dataset.Instance) (InstanceResult, error) {

	res := InstanceResult{Instance: in}
	var ok bool
	res.BestID, res.BestT, ok = ds.Best(set, in.Nodes, in.PPN, in.Msize)
	if !ok {
		return res, fmt.Errorf("eval: no measurements for instance %+v", in)
	}

	topo, err := mach.Topo(in.Nodes, in.PPN)
	if err != nil {
		return res, err
	}
	res.DefaultID = set.Decide(mach, topo, in.Msize)
	res.DefaultT, ok = ds.Lookup(res.DefaultID, in.Nodes, in.PPN, in.Msize)
	if !ok {
		return res, fmt.Errorf("eval: default config %d unmeasured for %+v", res.DefaultID, in)
	}

	pred := sel.Select(in.Nodes, in.PPN, in.Msize)
	res.PredID = pred.ConfigID
	res.PredAlgID = pred.AlgID
	res.ModelT = pred.Predicted
	res.PredT, ok = ds.Lookup(pred.ConfigID, in.Nodes, in.PPN, in.Msize)
	if !ok {
		return res, fmt.Errorf("eval: predicted config %d unmeasured for %+v", pred.ConfigID, in)
	}
	return res, nil
}

// MeanSpeedup is the arithmetic mean of the per-instance speedups over the
// default strategy — the quantity of the paper's Table IV.
func (e *Evaluation) MeanSpeedup() float64 {
	s := 0.0
	for _, r := range e.Results {
		s += r.Speedup()
	}
	return s / float64(len(e.Results))
}

// GeoMeanSpeedup is the geometric-mean variant (robust to outliers).
func (e *Evaluation) GeoMeanSpeedup() float64 {
	s := 0.0
	for _, r := range e.Results {
		s += math.Log(r.Speedup())
	}
	return math.Exp(s / float64(len(e.Results)))
}

// MeanVsBest is the mean normalized runtime of the predicted configuration
// relative to the exhaustive best (1.0 = always optimal).
func (e *Evaluation) MeanVsBest() float64 {
	s := 0.0
	for _, r := range e.Results {
		s += r.PredT / r.BestT
	}
	return s / float64(len(e.Results))
}

// MeanDefaultVsBest is the same normalization for the default strategy.
func (e *Evaluation) MeanDefaultVsBest() float64 {
	s := 0.0
	for _, r := range e.Results {
		s += r.DefaultT / r.BestT
	}
	return s / float64(len(e.Results))
}
