package eval

import (
	"fmt"
	"math"
	"sort"

	"mpicollpred/internal/core"
	"mpicollpred/internal/dataset"
	"mpicollpred/internal/mpilib"
	"mpicollpred/internal/sim"
)

// ModelErrors are classical regression-quality metrics of the per-config
// models on held-out instances. The paper mentions monitoring these during
// model building ("the prediction error of regression models would be
// analyzed by metrics like the MAE or the RMSE"), even though the HPC-level
// metric (speedup) is what ultimately matters.
type ModelErrors struct {
	MAE  float64 // mean absolute error, seconds
	RMSE float64 // root mean squared error, seconds
	MAPE float64 // mean absolute percentage error (0..inf, 0 is perfect)
	N    int
}

// ModelError computes prediction-error metrics of a trained selector's
// models over every (config, test instance) pair with a measurement.
func ModelError(ds *dataset.Dataset, set *mpilib.CollectiveSet, sel *core.Selector, testNodes []int) (ModelErrors, error) {
	inTest := map[int]bool{}
	for _, n := range testNodes {
		inTest[n] = true
	}
	var me ModelErrors
	var sqSum float64
	for _, in := range ds.Instances() {
		if !inTest[in.Nodes] {
			continue
		}
		for _, pr := range sel.PredictAll(in.Nodes, in.PPN, in.Msize) {
			meas, ok := ds.Lookup(pr.ConfigID, in.Nodes, in.PPN, in.Msize)
			if !ok {
				continue
			}
			diff := pr.Predicted - meas
			me.MAE += math.Abs(diff)
			sqSum += diff * diff
			me.MAPE += math.Abs(diff) / meas
			me.N++
		}
	}
	if me.N == 0 {
		return me, fmt.Errorf("eval: no test measurements for nodes %v", testNodes)
	}
	me.MAE /= float64(me.N)
	me.RMSE = math.Sqrt(sqSum / float64(me.N))
	me.MAPE /= float64(me.N)
	return me, nil
}

// FeatureImportance reports permutation importance of one input feature for
// the regression models: how much the mean absolute percentage error of the
// per-configuration runtime predictions increases when the feature is
// scrambled across the test instances. The paper observes that "the message
// size turned out to be the most important factor in many cases".
type FeatureImportance struct {
	Feature string
	// Degradation is the MAPE increase under permutation; larger means the
	// models rely on the feature more.
	Degradation float64
}

// FeatureNames labels core.Features' vector entries.
func FeatureNames() []string { return []string{"log2(msize)", "nodes", "ppn", "log2(p)"} }

// PermutationImportance evaluates the models with each feature permuted by a
// seeded shuffle across the test instances.
func PermutationImportance(ds *dataset.Dataset, set *mpilib.CollectiveSet, sel *core.Selector, testNodes []int) ([]FeatureImportance, error) {
	inTest := map[int]bool{}
	for _, n := range testNodes {
		inTest[n] = true
	}
	var insts []dataset.Instance
	for _, in := range ds.Instances() {
		if inTest[in.Nodes] {
			insts = append(insts, in)
		}
	}
	if len(insts) < 2 {
		return nil, fmt.Errorf("eval: not enough test instances")
	}
	sort.Slice(insts, func(i, j int) bool {
		a, b := insts[i], insts[j]
		if a.Nodes != b.Nodes {
			return a.Nodes < b.Nodes
		}
		if a.PPN != b.PPN {
			return a.PPN < b.PPN
		}
		return a.Msize < b.Msize
	})

	// quality computes the MAPE of every configuration model over the test
	// instances, with the feature vector optionally tampered before
	// prediction.
	quality := func(tamper func(i int, f []float64)) (float64, error) {
		sum, n := 0.0, 0
		for i, in := range insts {
			f := core.Features(in.Nodes, in.PPN, in.Msize)
			if tamper != nil {
				tamper(i, f)
			}
			for _, pr := range sel.PredictAllFeatures(f) {
				meas, ok := ds.Lookup(pr.ConfigID, in.Nodes, in.PPN, in.Msize)
				if !ok {
					continue
				}
				sum += math.Abs(pr.Predicted-meas) / meas
				n++
			}
		}
		if n == 0 {
			return 0, fmt.Errorf("eval: no measured predictions")
		}
		return sum / float64(n), nil
	}

	base, err := quality(nil)
	if err != nil {
		return nil, err
	}
	// A seeded Fisher-Yates shuffle; a structured rotation could align with
	// the sorted instance grid and leave some feature effectively
	// unpermuted.
	perm := make([]int, len(insts))
	for i := range perm {
		perm[i] = i
	}
	rng := sim.NewRNG(42)
	for i := len(perm) - 1; i > 0; i-- {
		j := rng.Intn(i + 1)
		perm[i], perm[j] = perm[j], perm[i]
	}

	names := FeatureNames()
	out := make([]FeatureImportance, len(names))
	for j := range names {
		j := j
		q, err := quality(func(i int, f []float64) {
			other := insts[perm[i]]
			f[j] = core.Features(other.Nodes, other.PPN, other.Msize)[j]
		})
		if err != nil {
			return nil, err
		}
		out[j] = FeatureImportance{Feature: names[j], Degradation: q - base}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Degradation > out[b].Degradation })
	return out, nil
}
