package eval

import (
	"testing"

	"mpicollpred/internal/bench"
	"mpicollpred/internal/core"
	"mpicollpred/internal/dataset"
	"mpicollpred/internal/machine"
	"mpicollpred/internal/mpilib"
)

func evalDataset(t *testing.T, name string) (*dataset.Dataset, machine.Machine, *mpilib.CollectiveSet) {
	t.Helper()
	spec, err := dataset.SpecByName(name, dataset.ScaleSmoke)
	if err != nil {
		t.Fatal(err)
	}
	spec.Nodes = []int{2, 3, 4, 5, 6}
	spec.PPNs = []int{1, 4}
	spec.Msizes = []int64{16, 4096, 65536, 1048576}
	ds, err := dataset.Generate(spec, bench.Options{MaxReps: 2, SyncJitter: 1e-7}, nil)
	if err != nil {
		t.Fatal(err)
	}
	mach, set, err := spec.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	return ds, mach, set
}

func TestSplitsTableIII(t *testing.T) {
	if len(Splits()) != 3 {
		t.Fatal("expected 3 machines in Table III")
	}
	h, err := SplitFor("Hydra")
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Full) != 7 || len(h.Small) != 3 || len(h.Test) != 5 {
		t.Errorf("Hydra split sizes wrong: %+v", h)
	}
	// Train and test sets must be disjoint.
	for _, s := range Splits() {
		test := map[int]bool{}
		for _, n := range s.Test {
			test[n] = true
		}
		for _, n := range append(append([]int{}, s.Full...), s.Small...) {
			if test[n] {
				t.Errorf("%s: node %d in both train and test", s.Machine, n)
			}
		}
	}
	if _, err := SplitFor("nope"); err == nil {
		t.Error("expected error for unknown machine")
	}
	if _, err := h.TrainNodes("tiny"); err == nil {
		t.Error("expected error for unknown variant")
	}
}

func TestEvaluateOpenMPIBeatsDefaultOnAverage(t *testing.T) {
	// The paper's central claim, scaled down: on Open MPI datasets the
	// prediction should not lose to the fixed decision logic.
	ds, mach, set := evalDataset(t, "d1")
	ev, err := Evaluate(ds, mach, set, "gam", []int{2, 4, 6}, []int{3, 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(ev.Results) != 2*2*4 {
		t.Fatalf("expected 16 test instances, got %d", len(ev.Results))
	}
	if sp := ev.MeanSpeedup(); sp < 0.95 {
		t.Errorf("mean speedup %v; prediction should at least match the default", sp)
	}
	if vb := ev.MeanVsBest(); vb < 1.0 {
		t.Errorf("normalized-vs-best %v < 1 is impossible", vb)
	}
	for _, r := range ev.Results {
		if r.BestT > r.PredT || r.BestT > r.DefaultT {
			t.Fatalf("best must lower-bound all strategies: %+v", r)
		}
		if r.Speedup() <= 0 {
			t.Fatalf("bad speedup: %+v", r)
		}
	}
}

func TestEvaluateGeoVsArithmetic(t *testing.T) {
	ds, mach, set := evalDataset(t, "d2")
	ev, err := Evaluate(ds, mach, set, "knn", []int{2, 4, 6}, []int{3, 5})
	if err != nil {
		t.Fatal(err)
	}
	if ev.GeoMeanSpeedup() > ev.MeanSpeedup()*1.0001 {
		t.Errorf("geometric mean (%v) cannot exceed arithmetic mean (%v)",
			ev.GeoMeanSpeedup(), ev.MeanSpeedup())
	}
}

func TestEvaluateErrors(t *testing.T) {
	ds, mach, set := evalDataset(t, "d2")
	if _, err := Evaluate(ds, mach, set, "gam", []int{2, 4}, []int{77}); err == nil {
		t.Error("expected error for test nodes absent from the dataset")
	}
}

func TestNormalizedRuntimeSeries(t *testing.T) {
	ds, mach, set := evalDataset(t, "d1")
	sel, err := core.Train(ds, set, "xgboost", []int{2, 4, 6})
	if err != nil {
		t.Fatal(err)
	}
	s, err := NormalizedRuntime(ds, mach, set, sel, 5, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Msizes) != 4 {
		t.Fatalf("series length %d", len(s.Msizes))
	}
	for i := range s.Msizes {
		if s.Best[i] != 1.0 {
			t.Error("best series must be 1.0")
		}
		if s.Default[i] < 1.0 || s.Pred[i] < 1.0 {
			t.Errorf("normalized values below 1: %+v", s)
		}
		if i > 0 && s.Msizes[i] <= s.Msizes[i-1] {
			t.Error("msizes not ascending")
		}
	}
}

func TestAlgorithmMap(t *testing.T) {
	ds, _, set := evalDataset(t, "d1")
	choices, err := AlgorithmMap(ds, set, []string{"knn", "gam"}, []int{2, 4, 6}, []int{3, 5})
	if err != nil {
		t.Fatal(err)
	}
	// 2 learners x 2 test nodes x 2 ppn x 4 msizes.
	if len(choices) != 2*2*2*4 {
		t.Fatalf("got %d choices", len(choices))
	}
	for _, c := range choices {
		if c.AlgID < 1 || c.AlgID > 9 {
			t.Fatalf("invalid alg id %d", c.AlgID)
		}
		if c.AlgID == 8 {
			t.Fatalf("excluded algorithm 8 must never be selected (paper: buggy)")
		}
	}
}

func TestChainSpeedup(t *testing.T) {
	ds, _, set := evalDataset(t, "d1")
	rows, err := ChainSpeedup(ds, set, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	// 20 chain configs x 4 message sizes.
	if len(rows) != 80 {
		t.Fatalf("got %d rows", len(rows))
	}
	anyFast := false
	for _, r := range rows {
		if r.Speedup <= 0 {
			t.Fatalf("bad speedup %+v", r)
		}
		if r.Msize == 1048576 && r.Speedup > 1 {
			anyFast = true
		}
	}
	if !anyFast {
		t.Error("at large messages some chain configuration should beat linear (Fig 2 shape)")
	}
	// Alltoall dataset must be rejected.
	dsA, _, setA := evalDataset(t, "d6")
	if _, err := ChainSpeedup(dsA, setA, 4, 4); err == nil {
		t.Error("expected error for non-bcast dataset")
	}
}
