package eval

import (
	"testing"

	"mpicollpred/internal/core"
)

func TestModelErrorMetrics(t *testing.T) {
	ds, _, set := evalDataset(t, "d1")
	sel, err := core.Train(ds, set, "gam", []int{2, 4, 6})
	if err != nil {
		t.Fatal(err)
	}
	me, err := ModelError(ds, set, sel, []int{3, 5})
	if err != nil {
		t.Fatal(err)
	}
	if me.N == 0 || me.MAE <= 0 || me.RMSE <= 0 || me.MAPE <= 0 {
		t.Fatalf("degenerate metrics: %+v", me)
	}
	if me.RMSE < me.MAE {
		t.Errorf("RMSE (%v) cannot be below MAE (%v)", me.RMSE, me.MAE)
	}
	// Out-of-the-box learners on this smooth simulated surface should land
	// within a sane relative error band.
	if me.MAPE > 1.0 {
		t.Errorf("MAPE %.2f implausibly high", me.MAPE)
	}
	if _, err := ModelError(ds, set, sel, []int{99}); err == nil {
		t.Error("expected error for empty test set")
	}
}

func TestPermutationImportanceRanksMsizeHigh(t *testing.T) {
	ds, _, set := evalDataset(t, "d1")
	sel, err := core.Train(ds, set, "xgboost", []int{2, 4, 6})
	if err != nil {
		t.Fatal(err)
	}
	imp, err := PermutationImportance(ds, set, sel, []int{3, 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(imp) != len(FeatureNames()) {
		t.Fatalf("got %d importances", len(imp))
	}
	// The paper: "the message size turned out to be the most important
	// factor in many cases". Under the MAPE-degradation metric, scrambling
	// the message size must hurt the runtime predictions the most.
	if imp[0].Feature != "log2(msize)" {
		t.Errorf("log2(msize) should rank first: %+v", imp)
	}
	// Scrambling a feature can only make prediction accuracy worse or
	// equal up to noise; strong negative degradation indicates a bug.
	for _, f := range imp {
		if f.Degradation < -0.05 {
			t.Errorf("feature %s improved accuracy by %.3f when scrambled", f.Feature, -f.Degradation)
		}
	}
}
