package eval

import "testing"

func TestCrossValidate(t *testing.T) {
	ds, _, _ := evalDataset(t, "d2")
	folds, err := CrossValidate(ds, "gam", 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(folds) != 3 {
		t.Fatalf("got %d folds", len(folds))
	}
	heldSeen := map[int]bool{}
	for _, f := range folds {
		if f.MAPE <= 0 || f.NumPreds == 0 {
			t.Fatalf("degenerate fold %+v", f)
		}
		for _, n := range f.HeldOut {
			if heldSeen[n] {
				t.Errorf("node %d held out in two folds", n)
			}
			heldSeen[n] = true
		}
	}
	// All node counts covered exactly once.
	if len(heldSeen) != len(ds.Spec.Nodes) {
		t.Errorf("folds covered %d of %d node counts", len(heldSeen), len(ds.Spec.Nodes))
	}
	if m := MeanMAPE(folds); m <= 0 || m > 2 {
		t.Errorf("implausible mean MAPE %v", m)
	}
}

func TestCrossValidateClampsK(t *testing.T) {
	ds, _, _ := evalDataset(t, "d2")
	// k larger than the number of node counts must clamp, not fail.
	folds, err := CrossValidate(ds, "knn", 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(folds) == 0 || len(folds) > len(ds.Spec.Nodes) {
		t.Errorf("unexpected fold count %d", len(folds))
	}
	if _, err := CrossValidate(ds, "nope", 3); err == nil {
		t.Error("unknown learner must fail")
	}
}
