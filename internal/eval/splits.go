// Package eval implements the paper's evaluation methodology: train the
// selector on the Table III training node counts, apply it to the held-out
// test node counts, and compare the *measured* running time of the
// predicted configuration against the exhaustive-search best and the
// library's default decision logic.
package eval

import "fmt"

// Split is one row of the paper's Table III: which node counts are used
// for training (full and small variants) and which are held out for
// testing, per machine.
type Split struct {
	Machine string
	Full    []int
	Small   []int
	Test    []int
}

// Splits returns Table III.
func Splits() []Split {
	return []Split{
		{Machine: "Hydra", Full: []int{4, 8, 16, 20, 24, 32, 36},
			Small: []int{4, 16, 36}, Test: []int{7, 13, 19, 27, 35}},
		{Machine: "Jupiter", Full: []int{4, 8, 16, 20, 24, 32},
			Small: []int{4, 16, 32}, Test: []int{7, 13, 19, 27}},
		{Machine: "SuperMUC-NG", Full: []int{20, 32, 48},
			Small: []int{20, 32, 48}, Test: []int{27, 35}},
	}
}

// SplitFor returns the split of the named machine.
func SplitFor(machine string) (Split, error) {
	for _, s := range Splits() {
		if s.Machine == machine {
			return s, nil
		}
	}
	return Split{}, fmt.Errorf("eval: no split for machine %q", machine)
}

// TrainNodes returns the training node counts of the split variant
// ("full" or "small").
func (s Split) TrainNodes(variant string) ([]int, error) {
	switch variant {
	case "full":
		return s.Full, nil
	case "small":
		return s.Small, nil
	}
	return nil, fmt.Errorf("eval: unknown split variant %q (want full or small)", variant)
}
