package eval

import (
	"fmt"
	"math"
	"sort"

	"mpicollpred/internal/core"
	"mpicollpred/internal/dataset"
	"mpicollpred/internal/ml"
)

// FoldResult is one fold of a cross-validation: the prediction error of
// per-configuration models trained on the remaining folds.
type FoldResult struct {
	Fold     int
	HeldOut  []int // node counts held out in this fold
	MAPE     float64
	NumPreds int
}

// CrossValidate performs k-fold cross-validation by node count, the
// grouping that matches the paper's deployment (models are always applied
// to unseen node counts, so random sample-level folds would leak). The
// paper notes that "while generating our regression models ... we have
// continuously monitored our errors on the training and test datasets to
// avoid overfitting"; this is the programmatic version of that check.
func CrossValidate(ds *dataset.Dataset, learner string, k int) ([]FoldResult, error) {
	if _, err := ml.New(learner); err != nil {
		return nil, err
	}
	nodes := append([]int(nil), ds.Spec.Nodes...)
	sort.Ints(nodes)
	if k < 2 {
		k = 2
	}
	if k > len(nodes) {
		k = len(nodes)
	}
	_, set, err := ds.Spec.Resolve()
	if err != nil {
		return nil, err
	}

	var out []FoldResult
	for fold := 0; fold < k; fold++ {
		var train, held []int
		for i, n := range nodes {
			if i%k == fold {
				held = append(held, n)
			} else {
				train = append(train, n)
			}
		}
		if len(held) == 0 || len(train) == 0 {
			continue
		}
		sel, err := core.Train(ds, set, learner, train)
		if err != nil {
			return nil, fmt.Errorf("eval: fold %d: %w", fold, err)
		}
		heldSet := map[int]bool{}
		for _, n := range held {
			heldSet[n] = true
		}
		sum, cnt := 0.0, 0
		for _, in := range ds.Instances() {
			if !heldSet[in.Nodes] {
				continue
			}
			for _, pr := range sel.PredictAll(in.Nodes, in.PPN, in.Msize) {
				meas, ok := ds.Lookup(pr.ConfigID, in.Nodes, in.PPN, in.Msize)
				if !ok {
					continue
				}
				sum += math.Abs(pr.Predicted-meas) / meas
				cnt++
			}
		}
		if cnt == 0 {
			return nil, fmt.Errorf("eval: fold %d has no measurable predictions", fold)
		}
		out = append(out, FoldResult{Fold: fold, HeldOut: held, MAPE: sum / float64(cnt), NumPreds: cnt})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("eval: cross-validation produced no folds")
	}
	return out, nil
}

// MeanMAPE aggregates fold errors.
func MeanMAPE(folds []FoldResult) float64 {
	s := 0.0
	for _, f := range folds {
		s += f.MAPE
	}
	return s / float64(len(folds))
}
