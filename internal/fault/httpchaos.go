// HTTP chaos: the serving-tier counterpart of the simulator fault plans.
// A ChaosPlan wraps an http.Handler with deterministic, seeded request
// perturbations — injected delays, 5xx bursts, and dropped connections —
// so fleet resilience (retries, hedging, circuit breakers) is tested the
// same reproducible way the simulator is. Every stochastic decision is
// drawn from an RNG keyed by (plan seed, request sequence number), so a
// plan replays the identical fault schedule run after run regardless of
// request timing or concurrency.

package fault

import (
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"mpicollpred/internal/sim"
)

// HTTPKind enumerates the chaos fault types.
type HTTPKind string

const (
	// ChaosDelay holds a request for Delay before handling it, modelling a
	// straggling replica (the hedging target).
	ChaosDelay HTTPKind = "delay"
	// ChaosErr answers with an error status instead of handling the
	// request; Burst > 1 makes each trigger fail the next Burst requests
	// too, modelling a replica briefly serving 5xx (the retry target).
	ChaosErr HTTPKind = "err"
	// ChaosDrop severs the client connection without writing a response,
	// modelling a crashed or partitioned replica mid-request.
	ChaosDrop HTTPKind = "drop"
)

// HTTPFault is one perturbation of a ChaosPlan.
type HTTPFault struct {
	Kind HTTPKind
	// Prob is the per-request trigger probability in [0, 1].
	Prob float64
	// Delay is the injected hold (ChaosDelay).
	Delay time.Duration
	// Code is the injected status (ChaosErr, default 503).
	Code int
	// Burst extends a triggered ChaosErr over this many consecutive
	// requests (default 1).
	Burst int
}

// ChaosPlan is a reproducible set of HTTP faults. The zero Seed is valid;
// sim.Seed mixes it with each request's sequence number.
type ChaosPlan struct {
	Seed   uint64
	Faults []HTTPFault
}

// ParseChaos builds a ChaosPlan from a spec string: semicolon-separated
// clauses of the form kind:key=value,key=value. An empty spec yields a nil
// plan (no chaos).
//
//	delay:prob=0.2,ms=40
//	err:prob=0.1,code=503,burst=3
//	drop:prob=0.05
func ParseChaos(spec string, seed uint64) (*ChaosPlan, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	p := &ChaosPlan{Seed: seed}
	for _, clause := range strings.Split(spec, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		kind, argstr, _ := strings.Cut(clause, ":")
		args, err := parseArgs(argstr)
		if err != nil {
			return nil, fmt.Errorf("fault: chaos clause %q: %w", clause, err)
		}
		f, err := buildHTTPFault(HTTPKind(strings.TrimSpace(kind)), args)
		if err != nil {
			return nil, fmt.Errorf("fault: chaos clause %q: %w", clause, err)
		}
		p.Faults = append(p.Faults, f)
	}
	if len(p.Faults) == 0 {
		return nil, nil
	}
	return p, nil
}

func buildHTTPFault(kind HTTPKind, args map[string]float64) (HTTPFault, error) {
	get := func(key string, def float64) float64 {
		if v, ok := args[key]; ok {
			delete(args, key)
			return v
		}
		return def
	}
	f := HTTPFault{Kind: kind, Prob: get("prob", 1)}
	switch kind {
	case ChaosDelay:
		f.Delay = time.Duration(get("ms", 10) * float64(time.Millisecond))
		if f.Delay <= 0 {
			return f, fmt.Errorf("delay ms must be > 0")
		}
	case ChaosErr:
		f.Code = int(get("code", float64(http.StatusServiceUnavailable)))
		f.Burst = int(get("burst", 1))
		if f.Code < 400 || f.Code > 599 {
			return f, fmt.Errorf("err code %d is not a 4xx/5xx status", f.Code)
		}
		if f.Burst < 1 {
			return f, fmt.Errorf("err burst %d < 1", f.Burst)
		}
	case ChaosDrop:
	default:
		return f, fmt.Errorf("unknown chaos kind %q (want delay, err, drop)", kind)
	}
	if f.Prob < 0 || f.Prob > 1 {
		return f, fmt.Errorf("prob %g outside [0,1]", f.Prob)
	}
	if len(args) > 0 {
		keys := make([]string, 0, len(args))
		for k := range args {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		return f, fmt.Errorf("unknown arguments %v for kind %q", keys, kind)
	}
	return f, nil
}

// ChaosStats counts what a middleware instance has injected.
type ChaosStats struct {
	Requests int64 `json:"requests"`
	Delays   int64 `json:"delays"`
	Errors   int64 `json:"errors"`
	Drops    int64 `json:"drops"`
}

// Chaos is a running middleware instance: the plan plus its burst state and
// injection counters.
type Chaos struct {
	plan *ChaosPlan
	next http.Handler
	seq  atomic.Uint64

	mu        sync.Mutex
	burstLeft int // remaining requests of an open ChaosErr burst
	burstCode int

	requests atomic.Int64
	delays   atomic.Int64
	errors   atomic.Int64
	drops    atomic.Int64
}

// chaosSleep is the middleware's one real-time seam: injected delays hold a
// live HTTP request, which is wall time by definition. Decisions about who
// gets delayed stay fully seeded and deterministic; tests stub this out.
var chaosSleep = time.Sleep //mpicollvet:ignore wallclock injected HTTP delays hold real requests by design; all fault decisions are seeded, and tests stub the sleep

// Middleware wraps next with the plan's fault schedule. A nil plan returns
// next unchanged, so the no-chaos path costs nothing.
func (p *ChaosPlan) Middleware(next http.Handler) http.Handler {
	c := p.Wrap(next)
	if c == nil {
		return next
	}
	return c
}

// Wrap is Middleware with access to the injection counters (nil when the
// plan is nil or empty).
func (p *ChaosPlan) Wrap(next http.Handler) *Chaos {
	if p == nil || len(p.Faults) == 0 {
		return nil
	}
	return &Chaos{plan: p, next: next}
}

// Stats snapshots the injection counters.
func (c *Chaos) Stats() ChaosStats {
	return ChaosStats{
		Requests: c.requests.Load(),
		Delays:   c.delays.Load(),
		Errors:   c.errors.Load(),
		Drops:    c.drops.Load(),
	}
}

// ServeHTTP draws this request's fate. Fault clauses are consulted in plan
// order with one RNG draw each, so the schedule depends only on (seed, seq),
// never on timing: request k of a run always meets the same faults.
func (c *Chaos) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	seq := c.seq.Add(1)
	c.requests.Add(1)
	rng := sim.NewRNG(sim.Seed(c.plan.Seed, seq))

	// An open 5xx burst swallows the request before any new draws.
	c.mu.Lock()
	if c.burstLeft > 0 {
		c.burstLeft--
		code := c.burstCode
		c.mu.Unlock()
		c.errors.Add(1)
		http.Error(w, "chaos: injected burst error", code)
		return
	}
	c.mu.Unlock()

	var delay time.Duration
	for _, f := range c.plan.Faults {
		hit := rng.Float64() < f.Prob
		if !hit {
			continue
		}
		switch f.Kind {
		case ChaosDelay:
			if f.Delay > delay {
				delay = f.Delay
			}
		case ChaosErr:
			if f.Burst > 1 {
				c.mu.Lock()
				c.burstLeft = f.Burst - 1
				c.burstCode = f.Code
				c.mu.Unlock()
			}
			c.errors.Add(1)
			http.Error(w, "chaos: injected error", f.Code)
			return
		case ChaosDrop:
			c.drops.Add(1)
			if hj, ok := w.(http.Hijacker); ok {
				if conn, _, err := hj.Hijack(); err == nil {
					_ = conn.Close()
					return
				}
			}
			// No hijack support (e.g. httptest.ResponseRecorder): the
			// closest observable effect is an empty 502.
			w.WriteHeader(http.StatusBadGateway)
			return
		}
	}
	if delay > 0 {
		c.delays.Add(1)
		chaosSleep(delay)
	}
	c.next.ServeHTTP(w, r)
}
