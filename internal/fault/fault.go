// Package fault provides deterministic, seeded fault plans for the simulated
// fabric: the perturbations a production cluster inflicts on a tuning run.
// A Plan is a declarative list of faults (straggler nodes, degraded or
// flapping NICs, noise bursts, clock-synchronization outliers) parsed from a
// compact spec string (the CLIs' -faults flag). A Plan is compiled into an
// Injector, the cheap per-run view that internal/netmodel and internal/bench
// query on their hot paths behind nil-by-default seams — with no plan
// installed, neither package pays more than a nil check and simulated results
// are bit-identical to a fault-free build.
//
// All faults are deterministic: the same plan, seed, and workload reproduce
// the same perturbed timings, which is what makes robustness experiments and
// their regression tests possible.
package fault

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"mpicollpred/internal/floats"
	"mpicollpred/internal/sim"
)

// Kind enumerates the fault types of a plan.
type Kind string

const (
	// Straggler multiplies the cost of every message entering or leaving
	// one node (or all nodes), modelling an overloaded/thermally-throttled
	// host whose communication progress is slow.
	Straggler Kind = "straggler"
	// DegradedNIC multiplies the NIC serialization cost (injection/ejection
	// bandwidth) of one node. With a flap period it alternates between
	// degraded and healthy phases, modelling a link renegotiating its rate.
	DegradedNIC Kind = "nic"
	// NoiseBurst raises the multiplicative per-message noise sigma, either
	// for the whole run or inside a simulated-time window.
	NoiseBurst Kind = "noise"
	// ClockOutlier makes the per-rank start-time synchronization residual
	// occasionally blow up: with probability Prob a rank's start offset in a
	// benchmark repetition is inflated to Scale seconds, modelling the
	// clock-sync outliers ReproMPI guards against on real clusters.
	ClockOutlier Kind = "clock"
)

// Fault is one perturbation of a Plan. Which fields are meaningful depends
// on Kind; zero values select the documented defaults.
type Fault struct {
	Kind Kind

	// Node targets one node id (Straggler, DegradedNIC); -1 targets all.
	Node int
	// Factor is the multiplicative slowdown (Straggler, DegradedNIC); must
	// be >= 1.
	Factor float64
	// Period (seconds of simulated time) makes a DegradedNIC flap: the NIC
	// is degraded for Duty*Period of every Period, healthy otherwise.
	// 0 means constantly degraded.
	Period float64
	// Duty is the degraded fraction of a flap period (default 0.5).
	Duty float64

	// Sigma is the extra noise added to the model sigma (NoiseBurst).
	Sigma float64
	// Start/Duration bound a NoiseBurst in simulated time; Duration <= 0
	// means the burst covers the whole run.
	Start, Duration float64

	// Prob is the per-(repetition, rank) outlier probability (ClockOutlier).
	Prob float64
	// Scale is the outlier start-offset magnitude in seconds (ClockOutlier).
	Scale float64
}

// Plan is a reproducible set of faults. Seed keys every stochastic decision
// the plan makes (currently only clock-outlier draws); deterministic faults
// ignore it.
type Plan struct {
	Seed   uint64
	Faults []Fault
}

// String renders the plan in the spec grammar accepted by Parse.
func (p *Plan) String() string {
	if p == nil || len(p.Faults) == 0 {
		return ""
	}
	parts := make([]string, 0, len(p.Faults))
	for _, f := range p.Faults {
		switch f.Kind {
		case Straggler:
			parts = append(parts, fmt.Sprintf("straggler:node=%d,factor=%g", f.Node, f.Factor))
		case DegradedNIC:
			s := fmt.Sprintf("nic:node=%d,factor=%g", f.Node, f.Factor)
			if f.Period > 0 {
				s += fmt.Sprintf(",period=%g,duty=%g", f.Period, f.Duty)
			}
			parts = append(parts, s)
		case NoiseBurst:
			s := fmt.Sprintf("noise:sigma=%g", f.Sigma)
			if f.Duration > 0 {
				s += fmt.Sprintf(",start=%g,dur=%g", f.Start, f.Duration)
			}
			parts = append(parts, s)
		case ClockOutlier:
			parts = append(parts, fmt.Sprintf("clock:prob=%g,scale=%g", f.Prob, f.Scale))
		}
	}
	return strings.Join(parts, ";")
}

// Parse builds a Plan from a spec string: semicolon-separated clauses of the
// form kind:key=value,key=value. An empty spec yields a nil plan (no faults).
//
//	straggler:node=0,factor=4
//	nic:node=1,factor=8,period=2e-3,duty=0.5
//	noise:sigma=0.3,start=0,dur=1e-3
//	clock:prob=0.05,scale=5e-5
func Parse(spec string) (*Plan, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	p := &Plan{}
	for _, clause := range strings.Split(spec, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		kind, argstr, _ := strings.Cut(clause, ":")
		args, err := parseArgs(argstr)
		if err != nil {
			return nil, fmt.Errorf("fault: clause %q: %w", clause, err)
		}
		f, err := buildFault(Kind(strings.TrimSpace(kind)), args)
		if err != nil {
			return nil, fmt.Errorf("fault: clause %q: %w", clause, err)
		}
		p.Faults = append(p.Faults, f)
	}
	if len(p.Faults) == 0 {
		return nil, nil
	}
	return p, nil
}

func parseArgs(s string) (map[string]float64, error) {
	out := map[string]float64{}
	s = strings.TrimSpace(s)
	if s == "" {
		return out, nil
	}
	for _, kv := range strings.Split(s, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(kv), "=")
		if !ok {
			return nil, fmt.Errorf("argument %q is not key=value", kv)
		}
		x, err := strconv.ParseFloat(strings.TrimSpace(v), 64)
		if err != nil {
			return nil, fmt.Errorf("argument %q: %v", kv, err)
		}
		out[strings.TrimSpace(k)] = x
	}
	return out, nil
}

func buildFault(kind Kind, args map[string]float64) (Fault, error) {
	get := func(key string, def float64) float64 {
		if v, ok := args[key]; ok {
			delete(args, key)
			return v
		}
		return def
	}
	f := Fault{Kind: kind}
	switch kind {
	case Straggler:
		f.Node = int(get("node", -1))
		f.Factor = get("factor", 2)
		if f.Factor < 1 {
			return f, fmt.Errorf("straggler factor %g < 1", f.Factor)
		}
	case DegradedNIC:
		f.Node = int(get("node", -1))
		f.Factor = get("factor", 4)
		f.Period = get("period", 0)
		f.Duty = get("duty", 0.5)
		if f.Factor < 1 {
			return f, fmt.Errorf("nic factor %g < 1", f.Factor)
		}
		if f.Duty <= 0 || f.Duty > 1 {
			return f, fmt.Errorf("nic duty %g outside (0,1]", f.Duty)
		}
	case NoiseBurst:
		f.Sigma = get("sigma", 0.2)
		f.Start = get("start", 0)
		f.Duration = get("dur", 0)
		if f.Sigma < 0 {
			return f, fmt.Errorf("noise sigma %g < 0", f.Sigma)
		}
	case ClockOutlier:
		f.Prob = get("prob", 0.05)
		f.Scale = get("scale", 5e-5)
		if f.Prob < 0 || f.Prob > 1 {
			return f, fmt.Errorf("clock prob %g outside [0,1]", f.Prob)
		}
	default:
		return f, fmt.Errorf("unknown fault kind %q (want straggler, nic, noise, clock)", kind)
	}
	if len(args) > 0 {
		keys := make([]string, 0, len(args))
		for k := range args {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		return f, fmt.Errorf("unknown arguments %v for kind %q", keys, kind)
	}
	return f, nil
}

// Injector is the compiled, per-topology view of a Plan that the network
// model and benchmark harness query per message / per repetition. It is
// immutable after compilation and safe for concurrent readers.
type Injector struct {
	seed uint64

	// Per-node multiplicative slowdowns, indexed by node id; nodes beyond
	// the compiled range are healthy. allNodeFactor/allNicFactor apply the
	// node=-1 ("every node") faults.
	nodeFactor    []float64
	nicFactor     []float64
	nicPeriod     []float64
	nicDuty       []float64
	allNodeFactor float64
	allNicFactor  float64
	allNicPeriod  float64
	allNicDuty    float64

	extraSigma           float64
	burstStart, burstEnd float64 // burstEnd = +Inf for unbounded bursts

	clockProb, clockScale float64
}

// Injector compiles the plan for a run on at most nodes nodes. A nil plan
// (or one with no faults) compiles to a nil Injector, the disabled seam.
func (p *Plan) Injector(nodes int) *Injector {
	if p == nil || len(p.Faults) == 0 {
		return nil
	}
	inj := &Injector{
		seed:          p.Seed,
		allNodeFactor: 1,
		allNicFactor:  1,
		burstEnd:      math.Inf(1),
	}
	grow := func() {
		if inj.nodeFactor == nil {
			inj.nodeFactor = fill(nodes, 1)
			inj.nicFactor = fill(nodes, 1)
			inj.nicPeriod = fill(nodes, 0)
			inj.nicDuty = fill(nodes, 0)
		}
	}
	for _, f := range p.Faults {
		switch f.Kind {
		case Straggler:
			if f.Node < 0 {
				inj.allNodeFactor *= f.Factor
				continue
			}
			grow()
			if f.Node < len(inj.nodeFactor) {
				inj.nodeFactor[f.Node] *= f.Factor
			}
		case DegradedNIC:
			if f.Node < 0 {
				inj.allNicFactor *= f.Factor
				inj.allNicPeriod = f.Period
				inj.allNicDuty = f.Duty
				continue
			}
			grow()
			if f.Node < len(inj.nicFactor) {
				inj.nicFactor[f.Node] *= f.Factor
				inj.nicPeriod[f.Node] = f.Period
				inj.nicDuty[f.Node] = f.Duty
			}
		case NoiseBurst:
			inj.extraSigma += f.Sigma
			inj.burstStart = f.Start
			if f.Duration > 0 {
				inj.burstEnd = f.Start + f.Duration
			} else {
				inj.burstEnd = math.Inf(1)
			}
		case ClockOutlier:
			inj.clockProb = f.Prob
			inj.clockScale = f.Scale
		}
	}
	return inj
}

func fill(n int, v float64) []float64 {
	s := make([]float64, n)
	for i := range s {
		s[i] = v
	}
	return s
}

// NodeFactor returns the straggler slowdown of a node (1 = healthy). The
// network model multiplies the cost of every message entering or leaving the
// node by this factor.
func (inj *Injector) NodeFactor(node int32) float64 {
	f := inj.allNodeFactor
	if inj.nodeFactor != nil && int(node) < len(inj.nodeFactor) && node >= 0 {
		f *= inj.nodeFactor[node]
	}
	return f
}

// NICFactor returns the NIC serialization slowdown of a node at simulated
// time t (1 = healthy). Flapping NICs alternate between their degraded
// factor and 1 with the configured period and duty cycle.
func (inj *Injector) NICFactor(node int32, t float64) float64 {
	f := flap(inj.allNicFactor, inj.allNicPeriod, inj.allNicDuty, t)
	if inj.nicFactor != nil && int(node) < len(inj.nicFactor) && node >= 0 {
		f *= flap(inj.nicFactor[node], inj.nicPeriod[node], inj.nicDuty[node], t)
	}
	return f
}

func flap(factor, period, duty float64, t float64) float64 {
	if floats.Exact(factor, 1) { // 1 is the assigned "no fault" sentinel
		return 1
	}
	if period <= 0 {
		return factor
	}
	if math.Mod(t, period) < duty*period {
		return factor
	}
	return 1
}

// SigmaBoost returns the extra noise sigma in effect at simulated time t.
func (inj *Injector) SigmaBoost(t float64) float64 {
	if floats.Exact(inj.extraSigma, 0) || t < inj.burstStart || t >= inj.burstEnd {
		return 0
	}
	return inj.extraSigma
}

// StartOutlier returns the extra start-time offset (seconds) of rank in
// benchmark repetition rep — usually 0, occasionally the configured outlier
// magnitude. The draw is a pure function of (plan seed, rep, rank), so a
// resumed benchmark reproduces the exact offsets of an uninterrupted one.
func (inj *Injector) StartOutlier(rep int, rank int) float64 {
	if inj.clockProb <= 0 {
		return 0
	}
	rng := sim.NewRNG(sim.Seed(inj.seed, 0xC10C, uint64(rep), uint64(rank)))
	if rng.Float64() >= inj.clockProb {
		return 0
	}
	o := rng.Norm() * inj.clockScale
	return math.Abs(o) + inj.clockScale
}

// Active reports whether the injector perturbs network transfers at all
// (clock outliers act in the benchmark harness, not the network model).
func (inj *Injector) Active() bool {
	if inj == nil {
		return false
	}
	return !floats.Exact(inj.allNodeFactor, 1) || !floats.Exact(inj.allNicFactor, 1) ||
		inj.nodeFactor != nil || !floats.Exact(inj.extraSigma, 0)
}
