package fault

import (
	"math"
	"testing"
)

func TestParseRoundTrip(t *testing.T) {
	spec := "straggler:node=0,factor=4;nic:node=1,factor=8,period=0.002,duty=0.5;noise:sigma=0.3,start=0,dur=0.001;clock:prob=0.05,scale=5e-05"
	p, err := Parse(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Faults) != 4 {
		t.Fatalf("got %d faults, want 4", len(p.Faults))
	}
	p2, err := Parse(p.String())
	if err != nil {
		t.Fatalf("re-parsing %q: %v", p.String(), err)
	}
	if len(p2.Faults) != len(p.Faults) {
		t.Fatalf("round trip lost faults: %q", p.String())
	}
	for i := range p.Faults {
		if p.Faults[i] != p2.Faults[i] {
			t.Errorf("fault %d changed in round trip: %+v vs %+v", i, p.Faults[i], p2.Faults[i])
		}
	}
}

func TestParseEmptyAndErrors(t *testing.T) {
	for _, spec := range []string{"", "   ", ";;"} {
		p, err := Parse(spec)
		if err != nil || p != nil {
			t.Errorf("Parse(%q) = %v, %v; want nil, nil", spec, p, err)
		}
	}
	for _, spec := range []string{
		"wat:node=1",               // unknown kind
		"straggler:node",           // not key=value
		"straggler:node=x",         // non-numeric
		"straggler:factor=0.5",     // factor < 1
		"nic:duty=1.5",             // duty out of range
		"noise:sigma=-1",           // negative sigma
		"clock:prob=2",             // probability out of range
		"straggler:node=0,bogus=1", // unknown argument
	} {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q) succeeded; want error", spec)
		}
	}
}

func TestInjectorNilForEmptyPlan(t *testing.T) {
	var p *Plan
	if inj := p.Injector(8); inj != nil {
		t.Error("nil plan compiled to non-nil injector")
	}
	if inj := (&Plan{}).Injector(8); inj != nil {
		t.Error("empty plan compiled to non-nil injector")
	}
	var nilInj *Injector
	if nilInj.Active() {
		t.Error("nil injector reports active")
	}
}

func TestStragglerFactors(t *testing.T) {
	p, err := Parse("straggler:node=2,factor=3")
	if err != nil {
		t.Fatal(err)
	}
	inj := p.Injector(4)
	if f := inj.NodeFactor(2); f != 3 {
		t.Errorf("straggler node factor = %v, want 3", f)
	}
	for _, n := range []int32{0, 1, 3, 100} {
		if f := inj.NodeFactor(n); f != 1 {
			t.Errorf("healthy node %d factor = %v, want 1", n, f)
		}
	}
	if !inj.Active() {
		t.Error("straggler injector not active")
	}
}

func TestAllNodesStraggler(t *testing.T) {
	p, err := Parse("straggler:factor=2")
	if err != nil {
		t.Fatal(err)
	}
	inj := p.Injector(4)
	for _, n := range []int32{0, 3} {
		if f := inj.NodeFactor(n); f != 2 {
			t.Errorf("node %d factor = %v, want 2", n, f)
		}
	}
}

func TestNICFlapping(t *testing.T) {
	p, err := Parse("nic:node=0,factor=8,period=0.01,duty=0.5")
	if err != nil {
		t.Fatal(err)
	}
	inj := p.Injector(2)
	if f := inj.NICFactor(0, 0.001); f != 8 {
		t.Errorf("degraded phase factor = %v, want 8", f)
	}
	if f := inj.NICFactor(0, 0.006); f != 1 {
		t.Errorf("healthy phase factor = %v, want 1", f)
	}
	if f := inj.NICFactor(1, 0.001); f != 1 {
		t.Errorf("other node factor = %v, want 1", f)
	}
	// Constant degradation without a period.
	p2, _ := Parse("nic:node=0,factor=4")
	inj2 := p2.Injector(2)
	for _, tm := range []float64{0, 0.5, 123} {
		if f := inj2.NICFactor(0, tm); f != 4 {
			t.Errorf("constant degradation factor at t=%v is %v, want 4", tm, f)
		}
	}
}

func TestNoiseBurstWindow(t *testing.T) {
	p, err := Parse("noise:sigma=0.25,start=0.001,dur=0.002")
	if err != nil {
		t.Fatal(err)
	}
	inj := p.Injector(1)
	if b := inj.SigmaBoost(0.002); b != 0.25 {
		t.Errorf("in-window boost = %v, want 0.25", b)
	}
	if b := inj.SigmaBoost(0.0005); b != 0 {
		t.Errorf("pre-window boost = %v, want 0", b)
	}
	if b := inj.SigmaBoost(0.004); b != 0 {
		t.Errorf("post-window boost = %v, want 0", b)
	}
	// Unbounded burst.
	p2, _ := Parse("noise:sigma=0.1")
	inj2 := p2.Injector(1)
	if b := inj2.SigmaBoost(1e9); b != 0.1 {
		t.Errorf("unbounded boost = %v, want 0.1", b)
	}
}

func TestClockOutliersDeterministicAndRare(t *testing.T) {
	p, err := Parse("clock:prob=0.1,scale=1e-5")
	if err != nil {
		t.Fatal(err)
	}
	p.Seed = 42
	inj := p.Injector(1)
	hits := 0
	const reps, ranks = 100, 16
	for rep := 0; rep < reps; rep++ {
		for rank := 0; rank < ranks; rank++ {
			o := inj.StartOutlier(rep, rank)
			if o != inj.StartOutlier(rep, rank) {
				t.Fatal("StartOutlier not deterministic")
			}
			if o < 0 {
				t.Fatalf("negative outlier %v", o)
			}
			if o > 0 {
				hits++
				if o < 1e-5 {
					t.Errorf("outlier %v below scale", o)
				}
			}
		}
	}
	frac := float64(hits) / (reps * ranks)
	if math.Abs(frac-0.1) > 0.05 {
		t.Errorf("outlier fraction %v far from prob 0.1", frac)
	}
	// Different seeds draw different outliers.
	p2 := &Plan{Seed: 43, Faults: p.Faults}
	inj2 := p2.Injector(1)
	same := true
	for rep := 0; rep < 50 && same; rep++ {
		if inj.StartOutlier(rep, 0) != inj2.StartOutlier(rep, 0) {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical outlier streams")
	}
}
