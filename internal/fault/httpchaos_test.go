package fault

import (
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

func okHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = io.WriteString(w, "ok")
	})
}

func TestParseChaos(t *testing.T) {
	p, err := ParseChaos("delay:prob=0.5,ms=40; err:prob=0.2,code=502,burst=3; drop:prob=0.05", 7)
	if err != nil {
		t.Fatal(err)
	}
	if p.Seed != 7 || len(p.Faults) != 3 {
		t.Fatalf("plan %+v", p)
	}
	if p.Faults[0].Kind != ChaosDelay || p.Faults[0].Delay != 40*time.Millisecond {
		t.Errorf("delay fault %+v", p.Faults[0])
	}
	if p.Faults[1].Code != 502 || p.Faults[1].Burst != 3 {
		t.Errorf("err fault %+v", p.Faults[1])
	}
	if p.Faults[2].Prob != 0.05 {
		t.Errorf("drop fault %+v", p.Faults[2])
	}
	if p, err := ParseChaos("", 1); p != nil || err != nil {
		t.Errorf("empty spec: %v, %v", p, err)
	}
	for _, bad := range []string{
		"warp:prob=1", "delay:ms=0", "err:code=200", "err:burst=0",
		"drop:prob=2", "delay:ms=10,bogus=1",
	} {
		if _, err := ParseChaos(bad, 1); err == nil {
			t.Errorf("spec %q parsed without error", bad)
		}
	}
}

// TestChaosDeterministic proves the fault schedule depends only on
// (seed, request sequence): two runs over the same request count inject the
// identical per-request outcomes.
func TestChaosDeterministic(t *testing.T) {
	restore := chaosSleep
	chaosSleep = func(time.Duration) {}
	defer func() { chaosSleep = restore }()

	run := func() []int {
		plan, err := ParseChaos("err:prob=0.3,code=503;delay:prob=0.4,ms=5", 42)
		if err != nil {
			t.Fatal(err)
		}
		c := plan.Wrap(okHandler())
		codes := make([]int, 200)
		for i := range codes {
			rec := httptest.NewRecorder()
			c.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/select", nil))
			codes[i] = rec.Code
		}
		st := c.Stats()
		if st.Errors == 0 || st.Delays == 0 {
			t.Fatalf("chaos never fired: %+v", st)
		}
		if st.Errors+st.Requests == 0 {
			t.Fatalf("stats %+v", st)
		}
		return codes
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("request %d: run A code %d, run B code %d", i, a[i], b[i])
		}
	}
}

func TestChaosErrBurst(t *testing.T) {
	// prob=1 with burst=3: every window of 3 requests fails with 503.
	plan, err := ParseChaos("err:prob=1,burst=3", 1)
	if err != nil {
		t.Fatal(err)
	}
	c := plan.Wrap(okHandler())
	for i := 0; i < 9; i++ {
		rec := httptest.NewRecorder()
		c.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/", nil))
		if rec.Code != http.StatusServiceUnavailable {
			t.Fatalf("request %d: code %d", i, rec.Code)
		}
	}
	if st := c.Stats(); st.Errors != 9 {
		t.Fatalf("stats %+v", st)
	}
}

func TestChaosNilPlanPassesThrough(t *testing.T) {
	var p *ChaosPlan
	h := p.Middleware(okHandler())
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/", nil))
	if rec.Code != http.StatusOK || rec.Body.String() != "ok" {
		t.Fatalf("nil plan perturbed the request: %d %q", rec.Code, rec.Body)
	}
}

// TestChaosDropSeversConnection runs against a real server so the hijack
// path is exercised: the client must see a transport error, not a response.
func TestChaosDropSeversConnection(t *testing.T) {
	plan, err := ParseChaos("drop:prob=1", 1)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(plan.Middleware(okHandler()))
	defer srv.Close()
	resp, err := http.Get(srv.URL)
	if err == nil {
		resp.Body.Close()
		t.Fatalf("dropped request answered with status %d", resp.StatusCode)
	}
}
