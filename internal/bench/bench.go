// Package bench is the simulated counterpart of the ReproMPI benchmark used
// by the paper for the benchmarking step. Its two defining features are
// reproduced: (1) a configuration is measured for at most MaxReps
// repetitions OR until a time budget is exhausted, whichever comes first —
// giving the tuning run a predictable upper bound on its duration; and
// (2) repetitions start from a synchronized time window, with residual
// clock-synchronization jitter applied to the per-rank start times.
package bench

import (
	"fmt"
	"math"
	"sort"

	"mpicollpred/internal/machine"
	"mpicollpred/internal/mpilib"
	"mpicollpred/internal/netmodel"
	"mpicollpred/internal/sim"
)

// Options controls the measurement loop.
type Options struct {
	// MaxReps caps the repetitions per configuration (paper: 500).
	MaxReps int
	// MaxTime is the simulated-seconds budget per configuration (paper:
	// 0.5 s on SuperMUC-NG, 1 s on Hydra and Jupiter). <= 0 disables it.
	MaxTime float64
	// SyncJitter is the standard deviation of the per-rank start-time
	// offset left over after clock synchronization (ReproMPI's
	// window-based scheme achieves microsecond-level residuals).
	SyncJitter float64
	// Metrics, when non-nil, receives per-measurement accounting
	// (repetitions, consumed budget, exhaustion events).
	Metrics *Metrics
}

// DefaultOptions mirrors the paper's ReproMPI configuration for the given
// machine. The budget is looked up from the machine registry (Table I
// profiles carry their §V benchmark budget); unknown machine names fall back
// to the 1 s budget used on most systems.
func DefaultOptions(machineName string) Options {
	o := Options{MaxReps: 500, MaxTime: 1.0, SyncJitter: 0.3e-6}
	if m, err := machine.ByName(machineName); err == nil && m.BenchBudget > 0 {
		o.MaxTime = m.BenchBudget
	}
	return o
}

// Measurement is the result of benchmarking one configuration on one
// instance.
type Measurement struct {
	Times    []float64 // per-repetition makespans, in seconds
	Consumed float64   // total simulated time spent, including all reps
	// Exhausted reports whether the time budget stopped the loop before
	// MaxReps repetitions completed.
	Exhausted bool

	// sorted caches an ascending copy of Times, populated once by the
	// Runner so repeated quantile queries do not re-sort. Zero-value
	// Measurements fall back to sorting on demand.
	sorted []float64
}

// Reps returns the number of repetitions that were run.
func (m Measurement) Reps() int { return len(m.Times) }

// sortedTimes returns the repetition times in ascending order, using the
// Runner-populated cache when present.
func (m Measurement) sortedTimes() []float64 {
	if len(m.sorted) == len(m.Times) {
		return m.sorted
	}
	s := append([]float64(nil), m.Times...)
	sort.Float64s(s)
	return s
}

// finalize populates the sorted cache; the Runner calls it once per
// measurement.
func (m *Measurement) finalize() {
	m.sorted = append([]float64(nil), m.Times...)
	sort.Float64s(m.sorted)
}

// Quantile returns the q-quantile (0 <= q <= 1) of the repetition times with
// linear interpolation between order statistics, so Quantile(0.5) equals the
// textbook median for both odd and even repetition counts.
func (m Measurement) Quantile(q float64) float64 {
	s := m.sortedTimes()
	if len(s) == 0 {
		return 0
	}
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	rank := q * float64(len(s)-1)
	lo := int(math.Floor(rank))
	frac := rank - float64(lo)
	if frac == 0 || lo+1 >= len(s) {
		return s[lo]
	}
	return s[lo]*(1-frac) + s[lo+1]*frac
}

// Median returns the median repetition time, the paper's summary statistic.
func (m Measurement) Median() float64 { return m.Quantile(0.5) }

// P10 returns the 10th-percentile repetition time.
func (m Measurement) P10() float64 { return m.Quantile(0.10) }

// P90 returns the 90th-percentile repetition time.
func (m Measurement) P90() float64 { return m.Quantile(0.90) }

// Mean returns the arithmetic mean repetition time.
func (m Measurement) Mean() float64 {
	if len(m.Times) == 0 {
		return 0
	}
	sum := 0.0
	for _, t := range m.Times {
		sum += t
	}
	return sum / float64(len(m.Times))
}

// Min returns the fastest repetition.
func (m Measurement) Min() float64 {
	if len(m.Times) == 0 {
		return 0
	}
	min := m.Times[0]
	for _, t := range m.Times[1:] {
		if t < min {
			min = t
		}
	}
	return min
}

// Runner executes measurements. It is not safe for concurrent use; create
// one Runner per goroutine.
type Runner struct {
	eng   *sim.Engine
	opts  Options
	start []float64
}

// NewRunner returns a Runner with the given options.
func NewRunner(opts Options) *Runner {
	if opts.MaxReps < 1 {
		opts.MaxReps = 1
	}
	return &Runner{eng: sim.NewEngine(), opts: opts}
}

// Measure benchmarks configuration cfg for the instance (topo, m) on the
// network prm. seed keys all noise deterministically; distinct repetitions
// derive distinct noise streams from it.
func (r *Runner) Measure(cfg mpilib.Config, prm netmodel.Params, topo netmodel.Topology, m int64, seed uint64) (Measurement, error) {
	return r.MeasureCapped(cfg, prm, topo, m, seed, r.opts.MaxReps)
}

// MeasureCapped is Measure with the repetition count further capped at
// maxReps (used by the dataset generator, which spends fewer repetitions on
// expensive large-message instances, exactly what the ReproMPI time budget
// achieves on real hardware).
func (r *Runner) MeasureCapped(cfg mpilib.Config, prm netmodel.Params, topo netmodel.Topology, m int64, seed uint64, maxReps int) (Measurement, error) {
	if maxReps > r.opts.MaxReps {
		maxReps = r.opts.MaxReps
	}
	if maxReps < 1 {
		maxReps = 1
	}
	prog := mpilib.BuildProgram(cfg, topo, m, false)
	p := topo.P()
	if cap(r.start) < p {
		r.start = make([]float64, p)
	}
	r.start = r.start[:p]

	var meas Measurement
	model := netmodel.New(prm, topo, seed, true)
	for rep := 0; rep < maxReps; rep++ {
		repSeed := sim.Seed(seed, uint64(rep)+1)
		model.Reset(repSeed)
		jrng := sim.NewRNG(sim.Seed(repSeed, 0xA11CE))
		for i := range r.start {
			j := jrng.Norm() * r.opts.SyncJitter
			if j < 0 {
				j = -j
			}
			r.start[i] = j
		}
		res, err := r.eng.Run(prog, model, r.start, nil)
		if err != nil {
			return Measurement{}, fmt.Errorf("bench %s topo=%dx%d m=%d: %w", cfg.Label(), topo.Nodes, topo.PPN, m, err)
		}
		meas.Times = append(meas.Times, res.Time)
		meas.Consumed += res.Time
		if r.opts.MaxTime > 0 && meas.Consumed >= r.opts.MaxTime {
			meas.Exhausted = len(meas.Times) < maxReps
			break
		}
	}
	meas.finalize()
	r.opts.Metrics.record(meas)
	return meas, nil
}

// Budget returns the worst-case simulated duration of measuring n
// configurations under these options — the "upper bound on the duration of
// the experiments" the paper highlights as essential on shared machines.
func (o Options) Budget(nConfigs int) float64 {
	if o.MaxTime <= 0 {
		return 0
	}
	return float64(nConfigs) * o.MaxTime
}
