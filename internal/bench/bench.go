// Package bench is the simulated counterpart of the ReproMPI benchmark used
// by the paper for the benchmarking step. Its two defining features are
// reproduced: (1) a configuration is measured for at most MaxReps
// repetitions OR until a time budget is exhausted, whichever comes first —
// giving the tuning run a predictable upper bound on its duration; and
// (2) repetitions start from a synchronized time window, with residual
// clock-synchronization jitter applied to the per-rank start times.
package bench

import (
	"fmt"
	"math"
	"sort"

	"mpicollpred/internal/fault"
	"mpicollpred/internal/machine"
	"mpicollpred/internal/mpilib"
	"mpicollpred/internal/netmodel"
	"mpicollpred/internal/sim"
)

// Options controls the measurement loop.
type Options struct {
	// MaxReps caps the repetitions per configuration (paper: 500).
	MaxReps int
	// MaxTime is the simulated-seconds budget per configuration (paper:
	// 0.5 s on SuperMUC-NG, 1 s on Hydra and Jupiter). <= 0 disables it.
	MaxTime float64
	// SyncJitter is the standard deviation of the per-rank start-time
	// offset left over after clock synchronization (ReproMPI's
	// window-based scheme achieves microsecond-level residuals).
	SyncJitter float64
	// Metrics, when non-nil, receives per-measurement accounting
	// (repetitions, consumed budget, exhaustion events).
	Metrics *Metrics
	// Faults, when non-nil, perturbs measurements: network faults are
	// installed into the simulated fabric and clock-outlier faults inflate
	// individual per-rank start offsets. Nil (the default) reproduces the
	// fault-free timings bit-for-bit.
	Faults *fault.Plan
	// OutlierRetries is the re-measurement budget per configuration for
	// repetitions flagged as outliers (deviating from the median by more
	// than OutlierK normalized MADs). 0 (the default) disables outlier
	// handling entirely, keeping measurements bit-identical to the
	// pre-robustness harness.
	OutlierRetries int
	// OutlierK is the MAD multiple beyond which a repetition counts as an
	// outlier; <= 0 selects DefaultOutlierK.
	OutlierK float64
	// Workers caps the number of concurrent measurement workers a Sweep may
	// use; <= 0 selects runtime.GOMAXPROCS(0). Every cell's noise stream is
	// derived from content, results are committed in cell order, and metrics
	// are recorded at commit time, so the worker count never changes any
	// output — it is deliberately excluded from the resume-journal identity.
	Workers int
}

// DefaultOutlierK is the outlier threshold in normalized-MAD units used when
// Options.OutlierK is unset. 5 flags only gross perturbations (stragglers,
// clock outliers), not the regular lognormal noise tail.
const DefaultOutlierK = 5

// DefaultOptions mirrors the paper's ReproMPI configuration for the given
// machine. The budget is looked up from the machine registry (Table I
// profiles carry their §V benchmark budget); unknown machine names fall back
// to the 1 s budget used on most systems.
func DefaultOptions(machineName string) Options {
	o := Options{MaxReps: 500, MaxTime: 1.0, SyncJitter: 0.3e-6}
	if m, err := machine.ByName(machineName); err == nil && m.BenchBudget > 0 {
		o.MaxTime = m.BenchBudget
	}
	return o
}

// Measurement is the result of benchmarking one configuration on one
// instance.
type Measurement struct {
	// Times holds the per-repetition makespans, in seconds. It must not be
	// mutated in place once the Measurement has been produced: quantile
	// queries are served from a sorted cache, and an in-place write would
	// leave that cache stale. In-package code replaces repetitions through
	// replaceTime, which invalidates the cache.
	Times    []float64
	Consumed float64 // total simulated time spent, including all reps
	// Exhausted reports whether the time budget stopped the loop before
	// MaxReps repetitions completed.
	Exhausted bool
	// Retried counts repetitions that were flagged as outliers and
	// re-measured (see Options.OutlierRetries).
	Retried int

	// sorted caches an ascending copy of Times, populated once by the
	// Runner so repeated quantile queries do not re-sort. Zero-value
	// Measurements fall back to sorting on demand.
	sorted []float64
}

// Reps returns the number of repetitions that were run.
func (m Measurement) Reps() int { return len(m.Times) }

// sortedTimes returns the repetition times in ascending order, using the
// Runner-populated cache when present.
func (m Measurement) sortedTimes() []float64 {
	if len(m.sorted) == len(m.Times) {
		return m.sorted
	}
	s := append([]float64(nil), m.Times...)
	sort.Float64s(s)
	return s
}

// finalize populates the sorted cache; the Runner calls it once per
// measurement.
func (m *Measurement) finalize() {
	m.sorted = append([]float64(nil), m.Times...)
	sort.Float64s(m.sorted)
}

// replaceTime substitutes the time of repetition i and invalidates the
// sorted cache. sortedTimes validates its cache by length alone, so a bare
// in-place write after finalize would keep serving the pre-replacement order
// statistics (quantiles, winsorized means, MAD); all in-package mutation
// goes through here.
func (m *Measurement) replaceTime(i int, t float64) {
	m.Times[i] = t
	m.sorted = nil
}

// Quantile returns the q-quantile (0 <= q <= 1) of the repetition times with
// linear interpolation between order statistics, so Quantile(0.5) equals the
// textbook median for both odd and even repetition counts. A measurement
// with zero repetitions has no quantiles: the result is NaN (as for every
// other summary statistic of an empty Measurement), never a fake 0 that a
// selector could mistake for an infinitely fast configuration.
func (m Measurement) Quantile(q float64) float64 {
	s := m.sortedTimes()
	if len(s) == 0 {
		return math.NaN()
	}
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	rank := q * float64(len(s)-1)
	lo := int(math.Floor(rank))
	frac := rank - float64(lo)
	if lo+1 >= len(s) {
		return s[lo]
	}
	// frac == 0 degenerates to s[lo] exactly, so no special case is needed.
	return s[lo]*(1-frac) + s[lo+1]*frac
}

// Median returns the median repetition time, the paper's summary statistic.
func (m Measurement) Median() float64 { return m.Quantile(0.5) }

// P10 returns the 10th-percentile repetition time.
func (m Measurement) P10() float64 { return m.Quantile(0.10) }

// P90 returns the 90th-percentile repetition time.
func (m Measurement) P90() float64 { return m.Quantile(0.90) }

// Mean returns the arithmetic mean repetition time (NaN for zero reps).
func (m Measurement) Mean() float64 {
	if len(m.Times) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, t := range m.Times {
		sum += t
	}
	return sum / float64(len(m.Times))
}

// Min returns the fastest repetition (NaN for zero reps).
func (m Measurement) Min() float64 {
	if len(m.Times) == 0 {
		return math.NaN()
	}
	min := m.Times[0]
	for _, t := range m.Times[1:] {
		if t < min {
			min = t
		}
	}
	return min
}

// WinsorizedMean returns the mean after clamping the repetition times into
// [Quantile(frac), Quantile(1-frac)] — an outlier-robust location estimate
// that, unlike a trimmed mean, keeps the sample count. frac outside [0, 0.5)
// is clamped; zero reps yield NaN.
func (m Measurement) WinsorizedMean(frac float64) float64 {
	s := m.sortedTimes()
	if len(s) == 0 {
		return math.NaN()
	}
	if frac < 0 {
		frac = 0
	}
	if frac >= 0.5 {
		frac = 0.5 - 1e-9
	}
	lo, hi := m.Quantile(frac), m.Quantile(1-frac)
	sum := 0.0
	for _, t := range s {
		if t < lo {
			t = lo
		} else if t > hi {
			t = hi
		}
		sum += t
	}
	return sum / float64(len(s))
}

// MAD returns the median absolute deviation from the median — the robust
// spread estimate behind outlier flagging. Multiply by 1.4826 to estimate a
// Gaussian standard deviation. Zero reps yield NaN.
func (m Measurement) MAD() float64 {
	s := m.sortedTimes()
	if len(s) == 0 {
		return math.NaN()
	}
	med := m.Median()
	dev := make([]float64, len(s))
	for i, t := range s {
		dev[i] = math.Abs(t - med)
	}
	sort.Float64s(dev)
	d := Measurement{Times: dev, sorted: dev}
	return d.Median()
}

// madNormal is the consistency constant relating MAD to the standard
// deviation of a normal distribution.
const madNormal = 1.4826

// outlierIndices returns the repetition indices whose time deviates from the
// median by more than k normalized MADs. A zero MAD (all reps identical)
// flags nothing.
func (m Measurement) outlierIndices(k float64) []int {
	if len(m.Times) < 3 {
		return nil
	}
	med := m.Median()
	mad := m.MAD()
	if !(mad > 0) {
		return nil
	}
	thresh := k * madNormal * mad
	var out []int
	for i, t := range m.Times {
		if math.Abs(t-med) > thresh {
			out = append(out, i)
		}
	}
	return out
}

// Outliers returns how many repetitions deviate from the median by more than
// k normalized MADs (k <= 0 selects DefaultOutlierK).
func (m Measurement) Outliers(k float64) int {
	if k <= 0 {
		k = DefaultOutlierK
	}
	return len(m.outlierIndices(k))
}

// Runner executes measurements. It is not safe for concurrent use; create
// one Runner per goroutine.
type Runner struct {
	eng   *sim.Engine
	opts  Options
	start []float64
	// prog is the recycled schedule storage: successive measurements rebuild
	// their op lists into the same backing arrays, so a sweep of thousands
	// of cells does not churn the GC with per-cell op-slice allocations.
	prog *sim.Program
}

// NewRunner returns a Runner with the given options.
func NewRunner(opts Options) *Runner {
	if opts.MaxReps < 1 {
		opts.MaxReps = 1
	}
	return &Runner{eng: sim.NewEngine(), opts: opts}
}

// Measure benchmarks configuration cfg for the instance (topo, m) on the
// network prm. seed keys all noise deterministically; distinct repetitions
// derive distinct noise streams from it.
func (r *Runner) Measure(cfg mpilib.Config, prm netmodel.Params, topo netmodel.Topology, m int64, seed uint64) (Measurement, error) {
	return r.MeasureCapped(cfg, prm, topo, m, seed, r.opts.MaxReps)
}

// MeasureCapped is Measure with the repetition count further capped at
// maxReps (used by the dataset generator, which spends fewer repetitions on
// expensive large-message instances, exactly what the ReproMPI time budget
// achieves on real hardware).
func (r *Runner) MeasureCapped(cfg mpilib.Config, prm netmodel.Params, topo netmodel.Topology, m int64, seed uint64, maxReps int) (Measurement, error) {
	if maxReps > r.opts.MaxReps {
		maxReps = r.opts.MaxReps
	}
	if maxReps < 1 {
		maxReps = 1
	}
	r.prog = mpilib.BuildProgramInto(r.prog, cfg, topo, m, false)
	prog := r.prog
	p := topo.P()
	if cap(r.start) < p {
		r.start = make([]float64, p)
	}
	r.start = r.start[:p]

	var meas Measurement
	inj := r.opts.Faults.Injector(topo.Nodes)
	model := netmodel.New(prm, topo, seed, true)
	model.SetFaults(inj)
	for rep := 0; rep < maxReps; rep++ {
		repSeed := sim.Seed(seed, uint64(rep)+1)
		t, err := r.runRep(prog, model, repSeed, rep, inj)
		if err != nil {
			return Measurement{}, fmt.Errorf("bench %s topo=%dx%d m=%d: %w", cfg.Label(), topo.Nodes, topo.PPN, m, err)
		}
		meas.Times = append(meas.Times, t)
		meas.Consumed += t
		if r.opts.MaxTime > 0 && meas.Consumed >= r.opts.MaxTime {
			meas.Exhausted = len(meas.Times) < maxReps
			break
		}
	}
	meas.finalize()
	if r.opts.OutlierRetries > 0 {
		if err := r.retryOutliers(&meas, prog, model, seed, inj); err != nil {
			return Measurement{}, fmt.Errorf("bench %s topo=%dx%d m=%d: %w", cfg.Label(), topo.Nodes, topo.PPN, m, err)
		}
	}
	r.opts.Metrics.record(meas)
	return meas, nil
}

// runRep executes one benchmark repetition: reset the model's noise stream
// and resource state, draw the per-rank start offsets (clock-sync jitter
// plus any injected clock outliers), and run the schedule.
func (r *Runner) runRep(prog *sim.Program, model *netmodel.Model, repSeed uint64, rep int, inj *fault.Injector) (float64, error) {
	model.Reset(repSeed)
	jrng := sim.NewRNG(sim.Seed(repSeed, 0xA11CE))
	for i := range r.start {
		j := jrng.Norm() * r.opts.SyncJitter
		if j < 0 {
			j = -j
		}
		if inj != nil {
			j += inj.StartOutlier(rep, i)
		}
		r.start[i] = j
	}
	res, err := r.eng.Run(prog, model, r.start, nil)
	if err != nil {
		return 0, err
	}
	return res.Time, nil
}

// retryOutliers re-measures repetitions flagged as outliers, spending at
// most the Options.OutlierRetries budget. A flagged repetition is re-run
// once under a fresh seed and its time replaced with the re-measurement —
// the simulated analogue of ReproMPI discarding and repeating perturbed
// runs. The extra simulated time is charged to Consumed so the budget
// accounting stays honest.
func (r *Runner) retryOutliers(meas *Measurement, prog *sim.Program, model *netmodel.Model, seed uint64, inj *fault.Injector) error {
	k := r.opts.OutlierK
	if k <= 0 {
		k = DefaultOutlierK
	}
	budget := r.opts.OutlierRetries
	for _, idx := range meas.outlierIndices(k) {
		if budget == 0 {
			break
		}
		budget--
		retrySeed := sim.Seed(seed, 0x5E7F, uint64(idx)+1)
		t, err := r.runRep(prog, model, retrySeed, idx, inj)
		if err != nil {
			return err
		}
		meas.replaceTime(idx, t)
		meas.Consumed += t
		meas.Retried++
	}
	if meas.Retried > 0 {
		meas.finalize()
	}
	return nil
}

// Budget returns the worst-case simulated duration of measuring n
// configurations under these options — the "upper bound on the duration of
// the experiments" the paper highlights as essential on shared machines.
func (o Options) Budget(nConfigs int) float64 {
	if o.MaxTime <= 0 {
		return 0
	}
	return float64(nConfigs) * o.MaxTime
}
