package bench

import (
	"errors"
	"runtime"
	"sync"
	"sync/atomic"

	"mpicollpred/internal/mpilib"
	"mpicollpred/internal/netmodel"
)

// Cell is one independent measurement of a sweep grid: a configuration on an
// instance, with the noise seed and repetition cap already resolved. Cells
// are identified by their index in the slice passed to Sweep; that index is
// the commit order, so callers enumerate cells in the exact order a serial
// loop would measure them.
type Cell struct {
	Cfg     mpilib.Config
	Net     netmodel.Params
	Topo    netmodel.Topology
	Msize   int64
	Seed    uint64
	MaxReps int
	// Skip marks a cell whose result the caller already holds (typically
	// replayed from a resume journal): it is neither measured nor charged a
	// stop poll, and commit receives a zero Measurement for it.
	Skip bool
}

// ErrSweepStopped reports that the stop hook ended a Sweep early. All cells
// before the stop point were committed in order; nothing at or after it was.
var ErrSweepStopped = errors.New("bench: sweep stopped")

// workerCount resolves Options.Workers (<= 0 means GOMAXPROCS, matching the
// fit-pool convention).
func (o Options) workerCount() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// Sweep measures every cell and invokes commit exactly once per cell, in
// cell order, from the calling goroutine. Measurement is sharded across
// Options.Workers workers (one Runner + Engine each, since Runners are
// single-goroutine), but because each cell's noise stream is derived from
// its content-addressed Seed and all observable effects — commit calls,
// Options.Metrics accounting, stop polls — happen in cell order, the output
// is byte-identical to a serial run at any worker count.
//
// stop, when non-nil, is polled once per non-Skip cell, in cell order,
// before that cell is handed to a worker; returning true abandons the cell
// and everything after it, and Sweep returns ErrSweepStopped once the
// preceding cells have been committed. Because commits are in-order, the
// committed set is always a contiguous prefix — the property the resume
// journal relies on.
//
// A measurement error or a commit error aborts the sweep after the cells
// before it have been committed; the first error in cell order is returned,
// exactly as a serial loop would fail.
func Sweep(cells []Cell, opts Options, stop func() bool, commit func(i int, meas Measurement) error) error {
	metrics := opts.Metrics
	wopts := opts
	// Workers never see the metrics sink: accounting happens at commit
	// time, in cell order, so counter and histogram contents cannot depend
	// on measurement completion order.
	wopts.Metrics = nil

	fresh := 0
	for _, c := range cells {
		if !c.Skip {
			fresh++
		}
	}
	w := opts.workerCount()
	if w > fresh {
		w = fresh
	}
	if w < 2 {
		return sweepSerial(cells, wopts, metrics, stop, commit)
	}
	return sweepParallel(cells, wopts, metrics, w, stop, commit)
}

// sweepSerial is the reference implementation: poll, measure, record, commit
// — one cell at a time, in order. The parallel path is tested byte-identical
// against it.
func sweepSerial(cells []Cell, wopts Options, metrics *Metrics, stop func() bool, commit func(i int, meas Measurement) error) error {
	r := NewRunner(wopts)
	for i, c := range cells {
		if c.Skip {
			if err := commit(i, Measurement{}); err != nil {
				return err
			}
			continue
		}
		if stop != nil && stop() {
			return ErrSweepStopped
		}
		meas, err := r.MeasureCapped(c.Cfg, c.Net, c.Topo, c.Msize, c.Seed, c.MaxReps)
		if err != nil {
			return err
		}
		metrics.record(meas)
		if err := commit(i, meas); err != nil {
			return err
		}
	}
	return nil
}

// sweepResult is one worker's output for a cell, published under the sweep
// mutex.
type sweepResult struct {
	meas Measurement
	err  error
	done bool
}

func sweepParallel(cells []Cell, wopts Options, metrics *Metrics, workers int, stop func() bool, commit func(i int, meas Measurement) error) error {
	var (
		mu      sync.Mutex
		cond    = sync.NewCond(&mu)
		results = make([]sweepResult, len(cells))
		// stopIdx is the index of the first cell the stop hook abandoned;
		// len(cells) while no stop has fired. Guarded by mu.
		stopIdx = len(cells)
		// aborted tells workers and the dispatcher to wind down without
		// measuring further; set on any error and when Sweep returns.
		aborted atomic.Bool
	)

	// The job channel carries cell indices. Its small buffer bounds how far
	// dispatch runs ahead of measurement, so a stop request takes effect
	// within ~2×workers cells.
	jobs := make(chan int, workers)
	var wg sync.WaitGroup
	wg.Add(workers)
	for k := 0; k < workers; k++ {
		go func() {
			defer wg.Done()
			r := NewRunner(wopts)
			for i := range jobs {
				var res sweepResult
				if !aborted.Load() {
					c := cells[i]
					res.meas, res.err = r.MeasureCapped(c.Cfg, c.Net, c.Topo, c.Msize, c.Seed, c.MaxReps)
				}
				res.done = true
				mu.Lock()
				results[i] = res
				cond.Broadcast()
				mu.Unlock()
			}
		}()
	}

	// Dispatcher: walks the cells in order, polling stop once per fresh
	// cell — the same poll sequence as the serial path — and marking Skip
	// cells complete without a worker round-trip.
	go func() {
		defer close(jobs)
		for i, c := range cells {
			if aborted.Load() {
				return
			}
			if c.Skip {
				mu.Lock()
				results[i].done = true
				cond.Broadcast()
				mu.Unlock()
				continue
			}
			if stop != nil && stop() {
				mu.Lock()
				if i < stopIdx {
					stopIdx = i
				}
				cond.Broadcast()
				mu.Unlock()
				return
			}
			jobs <- i
		}
	}()

	defer func() {
		// Drain on every exit path: workers skip measuring once aborted is
		// set, so this returns promptly even when cells remain undispatched.
		aborted.Store(true)
		wg.Wait()
	}()

	for i := range cells {
		mu.Lock()
		for !results[i].done && stopIdx > i {
			//mpicollvet:ignore lockscope sync.Cond.Wait atomically releases mu while parked and reacquires before returning; holding it here is the condition-variable contract
			cond.Wait()
		}
		stopped := !results[i].done
		res := results[i]
		results[i] = sweepResult{} // drop the Times slice once committed
		mu.Unlock()
		if stopped {
			return ErrSweepStopped
		}
		if res.err != nil {
			return res.err
		}
		if !cells[i].Skip {
			metrics.record(res.meas)
		}
		if err := commit(i, res.meas); err != nil {
			return err
		}
	}
	return nil
}
