package bench

import (
	"errors"
	"fmt"
	"testing"

	"mpicollpred/internal/machine"
	"mpicollpred/internal/mpilib"
	"mpicollpred/internal/netmodel"
	"mpicollpred/internal/obs"
	"mpicollpred/internal/sim"
)

// sweepGrid builds a small but diverse cell grid: every broadcast
// configuration across two topologies and two message sizes, with
// content-derived seeds exactly as the dataset generator produces them.
func sweepGrid(t *testing.T) []Cell {
	t.Helper()
	mach := machine.Hydra()
	s, err := mpilib.OpenMPI().Collective(mpilib.Bcast)
	if err != nil {
		t.Fatal(err)
	}
	var cells []Cell
	for _, topo := range []netmodel.Topology{{Nodes: 2, PPN: 2}, {Nodes: 3, PPN: 2}} {
		for _, m := range []int64{64, 4096} {
			for _, cfg := range s.Configs {
				seed := sim.Seed(uint64(cfg.ID), uint64(topo.Nodes), uint64(topo.PPN), uint64(m))
				cells = append(cells, Cell{
					Cfg: cfg, Net: mach.Net, Topo: topo,
					Msize: m, Seed: seed, MaxReps: 3,
				})
			}
		}
	}
	if len(cells) < 8 {
		t.Fatalf("grid too small: %d cells", len(cells))
	}
	return cells
}

// runSweep collects every committed measurement in order.
func runSweep(t *testing.T, cells []Cell, opts Options) ([]Measurement, *Metrics) {
	t.Helper()
	reg := obs.NewRegistry()
	met := NewMetrics(reg, obs.Labels{"dataset": "sweep-test"})
	opts.Metrics = met
	out := make([]Measurement, 0, len(cells))
	err := Sweep(cells, opts, nil, func(i int, meas Measurement) error {
		if i != len(out) {
			t.Errorf("commit out of order: got cell %d, want %d", i, len(out))
		}
		out = append(out, meas)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return out, met
}

func TestSweepParallelMatchesSerial(t *testing.T) {
	cells := sweepGrid(t)
	base := Options{MaxReps: 3, MaxTime: 100, SyncJitter: 1e-7}

	serialOpts := base
	serialOpts.Workers = 1
	want, wantMet := runSweep(t, cells, serialOpts)

	for _, w := range []int{2, 4, 7} {
		opts := base
		opts.Workers = w
		got, gotMet := runSweep(t, cells, opts)
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d commits, want %d", w, len(got), len(want))
		}
		for i := range want {
			if len(got[i].Times) != len(want[i].Times) {
				t.Fatalf("workers=%d cell %d: %d reps, want %d", w, i, len(got[i].Times), len(want[i].Times))
			}
			for r := range want[i].Times {
				if got[i].Times[r] != want[i].Times[r] {
					t.Fatalf("workers=%d cell %d rep %d: %g != %g", w, i, r, got[i].Times[r], want[i].Times[r])
				}
			}
			if got[i].Consumed != want[i].Consumed || got[i].Exhausted != want[i].Exhausted {
				t.Fatalf("workers=%d cell %d accounting differs", w, i)
			}
		}
		// Metrics are recorded at commit time, so the registry contents are
		// bit-identical too — including the order-sensitive float gauge.
		if gotMet.Measurements.Value() != wantMet.Measurements.Value() ||
			gotMet.Reps.Value() != wantMet.Reps.Value() ||
			gotMet.Consumed.Value() != wantMet.Consumed.Value() ||
			gotMet.Exhausted.Value() != wantMet.Exhausted.Value() ||
			gotMet.RepSeconds.Count() != wantMet.RepSeconds.Count() ||
			gotMet.RepSeconds.Sum() != wantMet.RepSeconds.Sum() {
			t.Errorf("workers=%d: metrics diverge from serial", w)
		}
	}
}

// TestSweepMatchesFreshEngineRuns shards a grid across pooled workers and
// checks every cell against a brand-new Runner + Engine — any pair-map,
// program-scratch or cache state leaking between a worker's consecutive
// cells would show up as a mismatch. Run under -race it also exercises the
// publish/commit synchronization.
func TestSweepMatchesFreshEngineRuns(t *testing.T) {
	cells := sweepGrid(t)
	opts := Options{MaxReps: 3, MaxTime: 100, SyncJitter: 1e-7, Workers: 4}
	got, _ := runSweep(t, cells, opts)
	for i, c := range cells {
		fresh, err := NewRunner(Options{MaxReps: 3, MaxTime: 100, SyncJitter: 1e-7}).
			MeasureCapped(c.Cfg, c.Net, c.Topo, c.Msize, c.Seed, c.MaxReps)
		if err != nil {
			t.Fatal(err)
		}
		if len(got[i].Times) != len(fresh.Times) {
			t.Fatalf("cell %d: %d reps vs fresh %d", i, len(got[i].Times), len(fresh.Times))
		}
		for r := range fresh.Times {
			if got[i].Times[r] != fresh.Times[r] {
				t.Fatalf("cell %d rep %d: pooled %v != fresh %v (leaked engine state?)",
					i, r, got[i].Times[r], fresh.Times[r])
			}
		}
	}
}

func TestSweepStopCommitsContiguousPrefix(t *testing.T) {
	cells := sweepGrid(t)
	for _, w := range []int{1, 4} {
		polls := 0
		stop := func() bool {
			polls++
			return polls > 3
		}
		var committed []int
		err := Sweep(cells, Options{MaxReps: 3, MaxTime: 100, SyncJitter: 1e-7, Workers: w},
			stop, func(i int, meas Measurement) error {
				committed = append(committed, i)
				return nil
			})
		if !errors.Is(err, ErrSweepStopped) {
			t.Fatalf("workers=%d: err = %v, want ErrSweepStopped", w, err)
		}
		// The stop hook fired on the 4th poll, so exactly cells 0..2 were
		// committed — in order, regardless of worker count.
		if len(committed) != 3 {
			t.Fatalf("workers=%d: committed %v, want exactly [0 1 2]", w, committed)
		}
		for i, id := range committed {
			if id != i {
				t.Fatalf("workers=%d: committed %v not a contiguous prefix", w, committed)
			}
		}
	}
}

func TestSweepSkipCellsNotMeasuredNotPolled(t *testing.T) {
	cells := sweepGrid(t)
	// Mark every other cell as already known (the resume-replay case).
	for i := range cells {
		if i%2 == 1 {
			cells[i] = Cell{Skip: true}
		}
	}
	freshCount := len(cells) / 2
	if len(cells)%2 == 1 {
		freshCount++
	}
	for _, w := range []int{1, 4} {
		polls := 0
		stop := func() bool { polls++; return false }
		var commits int
		err := Sweep(cells, Options{MaxReps: 3, MaxTime: 100, SyncJitter: 1e-7, Workers: w},
			stop, func(i int, meas Measurement) error {
				commits++
				if cells[i].Skip && meas.Reps() != 0 {
					t.Errorf("workers=%d: skip cell %d was measured", w, i)
				}
				if !cells[i].Skip && meas.Reps() == 0 {
					t.Errorf("workers=%d: fresh cell %d has no reps", w, i)
				}
				return nil
			})
		if err != nil {
			t.Fatal(err)
		}
		if commits != len(cells) {
			t.Errorf("workers=%d: %d commits, want %d", w, commits, len(cells))
		}
		if polls != freshCount {
			t.Errorf("workers=%d: stop polled %d times, want once per fresh cell (%d)", w, polls, freshCount)
		}
	}
}

func TestSweepCommitErrorAborts(t *testing.T) {
	cells := sweepGrid(t)
	boom := fmt.Errorf("journal full")
	for _, w := range []int{1, 4} {
		var commits int
		err := Sweep(cells, Options{MaxReps: 3, MaxTime: 100, SyncJitter: 1e-7, Workers: w},
			nil, func(i int, meas Measurement) error {
				if i == 2 {
					return boom
				}
				commits++
				return nil
			})
		if !errors.Is(err, boom) {
			t.Fatalf("workers=%d: err = %v, want the commit error", w, err)
		}
		if commits != 2 {
			t.Errorf("workers=%d: %d successful commits before the error, want 2", w, commits)
		}
	}
}

func TestReplaceTimeInvalidatesSortedCache(t *testing.T) {
	// Regression for the length-only cache check: after finalize, replacing
	// a repetition in place must invalidate the sorted cache — the stale
	// cache has the same length, so sortedTimes would otherwise keep
	// serving pre-replacement order statistics.
	m := Measurement{Times: []float64{1, 2, 3, 4, 5}}
	m.finalize()
	if m.Median() != 3 {
		t.Fatalf("median = %v, want 3", m.Median())
	}
	staleMAD := m.MAD()
	m.replaceTime(2, 100) // Times: {1, 2, 100, 4, 5}
	if got := m.Median(); got != 4 {
		t.Errorf("median after replacement = %v, want 4 (stale cache would say 3)", got)
	}
	if got := m.Quantile(1); got != 100 {
		t.Errorf("max after replacement = %v, want 100", got)
	}
	if m.MAD() == staleMAD {
		t.Error("MAD must be recomputed after an in-place replacement")
	}
	if wm := m.WinsorizedMean(0); wm != (1+2+100+4+5)/5.0 {
		t.Errorf("winsorized mean = %v, want the post-replacement mean", wm)
	}
}
