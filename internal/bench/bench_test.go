package bench

import (
	"math"
	"testing"

	"mpicollpred/internal/fault"
	"mpicollpred/internal/machine"
	"mpicollpred/internal/mpilib"
	"mpicollpred/internal/netmodel"
	"mpicollpred/internal/obs"
)

func testSetup(t *testing.T) (mpilib.Config, netmodel.Params, netmodel.Topology) {
	t.Helper()
	mach := machine.Hydra()
	s, err := mpilib.OpenMPI().Collective(mpilib.Bcast)
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := s.Config(1) // basic_linear
	if err != nil {
		t.Fatal(err)
	}
	return cfg, mach.Net, netmodel.Topology{Nodes: 3, PPN: 4}
}

func TestMeasureRepCap(t *testing.T) {
	cfg, net, topo := testSetup(t)
	r := NewRunner(Options{MaxReps: 7, MaxTime: 100, SyncJitter: 1e-7})
	m, err := r.Measure(cfg, net, topo, 1024, 42)
	if err != nil {
		t.Fatal(err)
	}
	if m.Reps() != 7 {
		t.Errorf("reps = %d, want 7", m.Reps())
	}
	if m.Median() <= 0 || m.Min() <= 0 || m.Mean() <= 0 {
		t.Error("non-positive statistics")
	}
	if m.Min() > m.Median() || m.Median() > m.Mean()*3 {
		t.Errorf("implausible stats: min=%v median=%v mean=%v", m.Min(), m.Median(), m.Mean())
	}
}

func TestMeasureTimeBudgetStopsEarly(t *testing.T) {
	cfg, net, topo := testSetup(t)
	// First find the typical single-rep time, then set a budget of ~3 reps.
	r := NewRunner(Options{MaxReps: 1, MaxTime: 0, SyncJitter: 1e-7})
	one, err := r.Measure(cfg, net, topo, 1<<20, 42)
	if err != nil {
		t.Fatal(err)
	}
	budget := 3 * one.Times[0]
	r = NewRunner(Options{MaxReps: 500, MaxTime: budget, SyncJitter: 1e-7})
	m, err := r.Measure(cfg, net, topo, 1<<20, 42)
	if err != nil {
		t.Fatal(err)
	}
	if m.Reps() >= 10 {
		t.Errorf("budget did not stop the loop: %d reps", m.Reps())
	}
	if m.Reps() < 1 {
		t.Error("at least one rep must run")
	}
	if m.Consumed < budget && m.Reps() == 500 {
		t.Error("inconsistent budget accounting")
	}
}

func TestMeasureDeterministic(t *testing.T) {
	cfg, net, topo := testSetup(t)
	r1 := NewRunner(Options{MaxReps: 5, SyncJitter: 1e-7})
	r2 := NewRunner(Options{MaxReps: 5, SyncJitter: 1e-7})
	a, err := r1.Measure(cfg, net, topo, 4096, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := r2.Measure(cfg, net, topo, 4096, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Times {
		if a.Times[i] != b.Times[i] {
			t.Fatalf("rep %d differs: %v vs %v", i, a.Times[i], b.Times[i])
		}
	}
	c, err := r1.Measure(cfg, net, topo, 4096, 8)
	if err != nil {
		t.Fatal(err)
	}
	if c.Times[0] == a.Times[0] {
		t.Error("different seeds should give different noise")
	}
}

func TestRepsVaryUnderNoise(t *testing.T) {
	cfg, net, topo := testSetup(t)
	r := NewRunner(Options{MaxReps: 8, SyncJitter: 1e-7})
	m, err := r.Measure(cfg, net, topo, 65536, 13)
	if err != nil {
		t.Fatal(err)
	}
	allEqual := true
	for _, tt := range m.Times[1:] {
		if tt != m.Times[0] {
			allEqual = false
		}
	}
	if allEqual {
		t.Error("repetitions under noise should not be identical")
	}
	// But they should be within a plausible noise band.
	if m.Times[0] <= 0 {
		t.Fatal("bad time")
	}
	spread := (m.Mean() - m.Min()) / m.Mean()
	if spread < 0 || spread > 0.8 {
		t.Errorf("noise spread %.2f implausible", spread)
	}
}

func TestDefaultOptionsPerMachine(t *testing.T) {
	if DefaultOptions("SuperMUC-NG").MaxTime != 0.5 {
		t.Error("SuperMUC-NG budget must be 0.5s")
	}
	if DefaultOptions("Hydra").MaxTime != 1.0 {
		t.Error("Hydra budget must be 1s")
	}
	if DefaultOptions("Hydra").MaxReps != 500 {
		t.Error("rep cap must be 500")
	}
	// The budget comes from the machine registry, not a name comparison:
	// every registered machine must resolve to its profile's budget.
	for _, m := range machine.All() {
		if got := DefaultOptions(m.Name).MaxTime; got != m.BenchBudget {
			t.Errorf("%s: MaxTime = %v, want BenchBudget %v", m.Name, got, m.BenchBudget)
		}
	}
	// Unknown machines fall back to the common 1 s budget instead of
	// silently matching a hard-coded string.
	if got := DefaultOptions("no-such-machine").MaxTime; got != 1.0 {
		t.Errorf("unknown machine MaxTime = %v, want 1.0 fallback", got)
	}
}

func TestBudgetUpperBound(t *testing.T) {
	o := Options{MaxTime: 0.5}
	// The paper's SuperMUC-NG bound: 23184 measurements * 0.5s ~ 3.2h.
	if got := o.Budget(23184); math.Abs(got-11592) > 1e-9 {
		t.Errorf("Budget = %v", got)
	}
}

func TestMedianEvenOdd(t *testing.T) {
	m := Measurement{Times: []float64{3, 1, 2}}
	if m.Median() != 2 {
		t.Errorf("odd median = %v", m.Median())
	}
	m = Measurement{Times: []float64{4, 1, 3, 2}}
	if m.Median() != 2.5 {
		t.Errorf("even median = %v", m.Median())
	}
}

func TestZeroRepStatsAreNaN(t *testing.T) {
	// A zero-repetition measurement has no statistics: every summary must
	// be NaN, never a fake 0 that downstream code could read as "free".
	var m Measurement
	for name, v := range map[string]float64{
		"Median":         m.Median(),
		"Mean":           m.Mean(),
		"Min":            m.Min(),
		"Quantile(0.5)":  m.Quantile(0.5),
		"P10":            m.P10(),
		"P90":            m.P90(),
		"WinsorizedMean": m.WinsorizedMean(0.1),
		"MAD":            m.MAD(),
	} {
		if !math.IsNaN(v) {
			t.Errorf("empty Measurement.%s = %v, want NaN", name, v)
		}
	}
}

func TestTinyBudgetStillRunsOneRep(t *testing.T) {
	// Regression: a MaxTime so small that not even one repetition fits must
	// still produce one measured repetition (marked exhausted), never a
	// zero-rep measurement whose statistics are NaN.
	cfg, net, topo := testSetup(t)
	r := NewRunner(Options{MaxReps: 500, MaxTime: 1e-12, SyncJitter: 1e-7})
	m, err := r.Measure(cfg, net, topo, 1<<20, 42)
	if err != nil {
		t.Fatal(err)
	}
	if m.Reps() != 1 {
		t.Fatalf("reps = %d, want exactly 1 under a sub-rep budget", m.Reps())
	}
	if !m.Exhausted {
		t.Error("sub-rep budget must mark the measurement exhausted")
	}
	if math.IsNaN(m.Median()) || m.Median() <= 0 {
		t.Errorf("median = %v, want a positive measured time", m.Median())
	}
}

func TestQuantilesCachedAndUncached(t *testing.T) {
	times := []float64{10, 1, 9, 2, 8, 3, 7, 4, 6, 5}
	uncached := Measurement{Times: times}
	cached := Measurement{Times: times}
	cached.finalize()
	for _, q := range []float64{0, 0.1, 0.25, 0.5, 0.9, 1} {
		if a, b := uncached.Quantile(q), cached.Quantile(q); a != b {
			t.Errorf("q=%v: uncached %v != cached %v", q, a, b)
		}
	}
	if cached.P10() != 1.9 || cached.P90() != 9.1 {
		t.Errorf("interpolated percentiles: p10=%v p90=%v", cached.P10(), cached.P90())
	}
	if cached.Quantile(0) != 1 || cached.Quantile(1) != 10 {
		t.Errorf("extremes: %v, %v", cached.Quantile(0), cached.Quantile(1))
	}
	// The cache must not have reordered the raw repetition times.
	if uncached.Times[0] != 10 || cached.Times[0] != 10 {
		t.Error("Times must keep measurement order")
	}
}

func TestMeasureMarksExhausted(t *testing.T) {
	cfg, net, topo := testSetup(t)
	// A one-rep budget: find the single-rep cost, then undercut it.
	r := NewRunner(Options{MaxReps: 1, MaxTime: 0, SyncJitter: 1e-7})
	one, err := r.Measure(cfg, net, topo, 1<<20, 42)
	if err != nil {
		t.Fatal(err)
	}
	if one.Exhausted {
		t.Error("rep-capped measurement must not count as budget-exhausted")
	}
	r = NewRunner(Options{MaxReps: 500, MaxTime: one.Times[0] / 2, SyncJitter: 1e-7})
	m, err := r.Measure(cfg, net, topo, 1<<20, 42)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Exhausted {
		t.Errorf("budget-stopped measurement must be marked exhausted: %+v reps", m.Reps())
	}
}

func TestMetricsRecorded(t *testing.T) {
	cfg, net, topo := testSetup(t)
	reg := obs.NewRegistry()
	met := NewMetrics(reg, obs.Labels{"dataset": "test"})
	r := NewRunner(Options{MaxReps: 4, MaxTime: 100, SyncJitter: 1e-7, Metrics: met})
	m1, err := r.Measure(cfg, net, topo, 1024, 1)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := r.Measure(cfg, net, topo, 4096, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got := met.Measurements.Value(); got != 2 {
		t.Errorf("measurements counter = %d, want 2", got)
	}
	if got, want := met.Reps.Value(), int64(m1.Reps()+m2.Reps()); got != want {
		t.Errorf("reps counter = %d, want %d", got, want)
	}
	if got, want := met.Consumed.Value(), m1.Consumed+m2.Consumed; math.Abs(got-want) > 1e-12 {
		t.Errorf("consumed gauge = %v, want %v", got, want)
	}
	if met.Exhausted.Value() != 0 {
		t.Error("nothing should be exhausted under a 100s budget")
	}
	if got, want := met.RepSeconds.Count(), uint64(m1.Reps()+m2.Reps()); got != want {
		t.Errorf("rep histogram count = %d, want %d", got, want)
	}
	// A nil Metrics field must be a no-op, not a panic.
	r2 := NewRunner(Options{MaxReps: 2, SyncJitter: 1e-7})
	if _, err := r2.Measure(cfg, net, topo, 1024, 3); err != nil {
		t.Fatal(err)
	}
}

func TestWinsorizedMeanAndMAD(t *testing.T) {
	// One gross outlier among nine well-behaved reps.
	m := Measurement{Times: []float64{1, 1.1, 0.9, 1.05, 0.95, 1, 1.02, 0.98, 100}}
	if mean := m.Mean(); mean < 10 {
		t.Fatalf("plain mean %v should be dominated by the outlier", mean)
	}
	wm := m.WinsorizedMean(0.2)
	if wm < 0.8 || wm > 1.3 {
		t.Errorf("winsorized mean %v should shrug off the outlier", wm)
	}
	if mad := m.MAD(); mad <= 0 || mad > 0.2 {
		t.Errorf("MAD = %v, want a small positive spread", mad)
	}
	if n := m.Outliers(5); n != 1 {
		t.Errorf("Outliers = %d, want 1", n)
	}
	// Identical reps: MAD 0, nothing flagged.
	flat := Measurement{Times: []float64{2, 2, 2, 2}}
	if n := flat.Outliers(5); n != 0 {
		t.Errorf("flat measurement flagged %d outliers", n)
	}
	// Winsorizing fractions are clamped, not errors.
	if v := m.WinsorizedMean(-1); math.IsNaN(v) {
		t.Error("negative frac should clamp to 0")
	}
	if v := m.WinsorizedMean(0.9); math.IsNaN(v) {
		t.Error("frac >= 0.5 should clamp below 0.5")
	}
}

func TestFaultsPerturbDeterministically(t *testing.T) {
	cfg, net, topo := testSetup(t)
	plan, err := fault.Parse("straggler:node=0,factor=4")
	if err != nil {
		t.Fatal(err)
	}
	clean := NewRunner(Options{MaxReps: 3, SyncJitter: 1e-7})
	faulty1 := NewRunner(Options{MaxReps: 3, SyncJitter: 1e-7, Faults: plan})
	faulty2 := NewRunner(Options{MaxReps: 3, SyncJitter: 1e-7, Faults: plan})
	c, err := clean.Measure(cfg, net, topo, 65536, 42)
	if err != nil {
		t.Fatal(err)
	}
	f1, err := faulty1.Measure(cfg, net, topo, 65536, 42)
	if err != nil {
		t.Fatal(err)
	}
	f2, err := faulty2.Measure(cfg, net, topo, 65536, 42)
	if err != nil {
		t.Fatal(err)
	}
	if f1.Median() <= c.Median() {
		t.Errorf("straggler should slow the collective: clean %v, faulty %v", c.Median(), f1.Median())
	}
	for i := range f1.Times {
		if f1.Times[i] != f2.Times[i] {
			t.Fatalf("fault injection is not deterministic: rep %d %v vs %v", i, f1.Times[i], f2.Times[i])
		}
	}
	// A nil plan must reproduce the fault-free measurement bit for bit.
	nilPlan := NewRunner(Options{MaxReps: 3, SyncJitter: 1e-7, Faults: nil})
	n, err := nilPlan.Measure(cfg, net, topo, 65536, 42)
	if err != nil {
		t.Fatal(err)
	}
	for i := range c.Times {
		if c.Times[i] != n.Times[i] {
			t.Fatalf("nil fault plan changed rep %d: %v vs %v", i, c.Times[i], n.Times[i])
		}
	}
}

func TestClockOutlierFaultInflatesStart(t *testing.T) {
	cfg, net, topo := testSetup(t)
	// prob=1 makes every rank an outlier with a large offset: the makespan
	// must absorb it.
	plan, err := fault.Parse("clock:prob=1,scale=0.001")
	if err != nil {
		t.Fatal(err)
	}
	clean := NewRunner(Options{MaxReps: 2, SyncJitter: 1e-7})
	faulty := NewRunner(Options{MaxReps: 2, SyncJitter: 1e-7, Faults: plan})
	c, err := clean.Measure(cfg, net, topo, 1024, 7)
	if err != nil {
		t.Fatal(err)
	}
	f, err := faulty.Measure(cfg, net, topo, 1024, 7)
	if err != nil {
		t.Fatal(err)
	}
	if f.Median() < c.Median() {
		t.Errorf("clock outliers should not speed things up: clean %v, faulty %v", c.Median(), f.Median())
	}
}

func TestOutlierRetryRepairsMeasurement(t *testing.T) {
	cfg, net, topo := testSetup(t)
	// Rare huge clock outliers + retry budget: the retried measurement's
	// median must not exceed the unrepaired one, and retries are counted.
	plan, err := fault.Parse("clock:prob=0.1,scale=0.05")
	if err != nil {
		t.Fatal(err)
	}
	raw := NewRunner(Options{MaxReps: 12, SyncJitter: 1e-7, Faults: plan})
	m1, err := raw.Measure(cfg, net, topo, 1024, 99)
	if err != nil {
		t.Fatal(err)
	}
	if m1.Outliers(DefaultOutlierK) == 0 {
		t.Skip("no outlier drawn for this seed; adjust test plan")
	}
	reg := obs.NewRegistry()
	met := NewMetrics(reg, obs.Labels{"dataset": "retry-test"})
	repaired := NewRunner(Options{MaxReps: 12, SyncJitter: 1e-7, Faults: plan,
		OutlierRetries: 4, Metrics: met})
	m2, err := repaired.Measure(cfg, net, topo, 1024, 99)
	if err != nil {
		t.Fatal(err)
	}
	if m2.Retried == 0 {
		t.Fatal("expected at least one retried repetition")
	}
	if met.Retried.Value() != int64(m2.Retried) {
		t.Errorf("metrics retried = %d, want %d", met.Retried.Value(), m2.Retried)
	}
	if m2.Quantile(0.9) > m1.Quantile(0.9) {
		t.Errorf("retry made the tail worse: %v > %v", m2.Quantile(0.9), m1.Quantile(0.9))
	}
	// Without retries the measurement must be byte-identical to m1.
	again := NewRunner(Options{MaxReps: 12, SyncJitter: 1e-7, Faults: plan})
	m3, err := again.Measure(cfg, net, topo, 1024, 99)
	if err != nil {
		t.Fatal(err)
	}
	for i := range m1.Times {
		if m1.Times[i] != m3.Times[i] {
			t.Fatal("retry-free measurements must be reproducible")
		}
	}
}
