package bench

import (
	"math"
	"testing"

	"mpicollpred/internal/machine"
	"mpicollpred/internal/mpilib"
	"mpicollpred/internal/netmodel"
	"mpicollpred/internal/obs"
)

func testSetup(t *testing.T) (mpilib.Config, netmodel.Params, netmodel.Topology) {
	t.Helper()
	mach := machine.Hydra()
	s, err := mpilib.OpenMPI().Collective(mpilib.Bcast)
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := s.Config(1) // basic_linear
	if err != nil {
		t.Fatal(err)
	}
	return cfg, mach.Net, netmodel.Topology{Nodes: 3, PPN: 4}
}

func TestMeasureRepCap(t *testing.T) {
	cfg, net, topo := testSetup(t)
	r := NewRunner(Options{MaxReps: 7, MaxTime: 100, SyncJitter: 1e-7})
	m, err := r.Measure(cfg, net, topo, 1024, 42)
	if err != nil {
		t.Fatal(err)
	}
	if m.Reps() != 7 {
		t.Errorf("reps = %d, want 7", m.Reps())
	}
	if m.Median() <= 0 || m.Min() <= 0 || m.Mean() <= 0 {
		t.Error("non-positive statistics")
	}
	if m.Min() > m.Median() || m.Median() > m.Mean()*3 {
		t.Errorf("implausible stats: min=%v median=%v mean=%v", m.Min(), m.Median(), m.Mean())
	}
}

func TestMeasureTimeBudgetStopsEarly(t *testing.T) {
	cfg, net, topo := testSetup(t)
	// First find the typical single-rep time, then set a budget of ~3 reps.
	r := NewRunner(Options{MaxReps: 1, MaxTime: 0, SyncJitter: 1e-7})
	one, err := r.Measure(cfg, net, topo, 1<<20, 42)
	if err != nil {
		t.Fatal(err)
	}
	budget := 3 * one.Times[0]
	r = NewRunner(Options{MaxReps: 500, MaxTime: budget, SyncJitter: 1e-7})
	m, err := r.Measure(cfg, net, topo, 1<<20, 42)
	if err != nil {
		t.Fatal(err)
	}
	if m.Reps() >= 10 {
		t.Errorf("budget did not stop the loop: %d reps", m.Reps())
	}
	if m.Reps() < 1 {
		t.Error("at least one rep must run")
	}
	if m.Consumed < budget && m.Reps() == 500 {
		t.Error("inconsistent budget accounting")
	}
}

func TestMeasureDeterministic(t *testing.T) {
	cfg, net, topo := testSetup(t)
	r1 := NewRunner(Options{MaxReps: 5, SyncJitter: 1e-7})
	r2 := NewRunner(Options{MaxReps: 5, SyncJitter: 1e-7})
	a, err := r1.Measure(cfg, net, topo, 4096, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := r2.Measure(cfg, net, topo, 4096, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Times {
		if a.Times[i] != b.Times[i] {
			t.Fatalf("rep %d differs: %v vs %v", i, a.Times[i], b.Times[i])
		}
	}
	c, err := r1.Measure(cfg, net, topo, 4096, 8)
	if err != nil {
		t.Fatal(err)
	}
	if c.Times[0] == a.Times[0] {
		t.Error("different seeds should give different noise")
	}
}

func TestRepsVaryUnderNoise(t *testing.T) {
	cfg, net, topo := testSetup(t)
	r := NewRunner(Options{MaxReps: 8, SyncJitter: 1e-7})
	m, err := r.Measure(cfg, net, topo, 65536, 13)
	if err != nil {
		t.Fatal(err)
	}
	allEqual := true
	for _, tt := range m.Times[1:] {
		if tt != m.Times[0] {
			allEqual = false
		}
	}
	if allEqual {
		t.Error("repetitions under noise should not be identical")
	}
	// But they should be within a plausible noise band.
	if m.Times[0] <= 0 {
		t.Fatal("bad time")
	}
	spread := (m.Mean() - m.Min()) / m.Mean()
	if spread < 0 || spread > 0.8 {
		t.Errorf("noise spread %.2f implausible", spread)
	}
}

func TestDefaultOptionsPerMachine(t *testing.T) {
	if DefaultOptions("SuperMUC-NG").MaxTime != 0.5 {
		t.Error("SuperMUC-NG budget must be 0.5s")
	}
	if DefaultOptions("Hydra").MaxTime != 1.0 {
		t.Error("Hydra budget must be 1s")
	}
	if DefaultOptions("Hydra").MaxReps != 500 {
		t.Error("rep cap must be 500")
	}
	// The budget comes from the machine registry, not a name comparison:
	// every registered machine must resolve to its profile's budget.
	for _, m := range machine.All() {
		if got := DefaultOptions(m.Name).MaxTime; got != m.BenchBudget {
			t.Errorf("%s: MaxTime = %v, want BenchBudget %v", m.Name, got, m.BenchBudget)
		}
	}
	// Unknown machines fall back to the common 1 s budget instead of
	// silently matching a hard-coded string.
	if got := DefaultOptions("no-such-machine").MaxTime; got != 1.0 {
		t.Errorf("unknown machine MaxTime = %v, want 1.0 fallback", got)
	}
}

func TestBudgetUpperBound(t *testing.T) {
	o := Options{MaxTime: 0.5}
	// The paper's SuperMUC-NG bound: 23184 measurements * 0.5s ~ 3.2h.
	if got := o.Budget(23184); math.Abs(got-11592) > 1e-9 {
		t.Errorf("Budget = %v", got)
	}
}

func TestMedianEvenOdd(t *testing.T) {
	m := Measurement{Times: []float64{3, 1, 2}}
	if m.Median() != 2 {
		t.Errorf("odd median = %v", m.Median())
	}
	m = Measurement{Times: []float64{4, 1, 3, 2}}
	if m.Median() != 2.5 {
		t.Errorf("even median = %v", m.Median())
	}
	if (Measurement{}).Median() != 0 || (Measurement{}).Mean() != 0 || (Measurement{}).Min() != 0 {
		t.Error("empty measurement stats must be 0")
	}
}

func TestQuantilesCachedAndUncached(t *testing.T) {
	times := []float64{10, 1, 9, 2, 8, 3, 7, 4, 6, 5}
	uncached := Measurement{Times: times}
	cached := Measurement{Times: times}
	cached.finalize()
	for _, q := range []float64{0, 0.1, 0.25, 0.5, 0.9, 1} {
		if a, b := uncached.Quantile(q), cached.Quantile(q); a != b {
			t.Errorf("q=%v: uncached %v != cached %v", q, a, b)
		}
	}
	if cached.P10() != 1.9 || cached.P90() != 9.1 {
		t.Errorf("interpolated percentiles: p10=%v p90=%v", cached.P10(), cached.P90())
	}
	if cached.Quantile(0) != 1 || cached.Quantile(1) != 10 {
		t.Errorf("extremes: %v, %v", cached.Quantile(0), cached.Quantile(1))
	}
	// The cache must not have reordered the raw repetition times.
	if uncached.Times[0] != 10 || cached.Times[0] != 10 {
		t.Error("Times must keep measurement order")
	}
}

func TestMeasureMarksExhausted(t *testing.T) {
	cfg, net, topo := testSetup(t)
	// A one-rep budget: find the single-rep cost, then undercut it.
	r := NewRunner(Options{MaxReps: 1, MaxTime: 0, SyncJitter: 1e-7})
	one, err := r.Measure(cfg, net, topo, 1<<20, 42)
	if err != nil {
		t.Fatal(err)
	}
	if one.Exhausted {
		t.Error("rep-capped measurement must not count as budget-exhausted")
	}
	r = NewRunner(Options{MaxReps: 500, MaxTime: one.Times[0] / 2, SyncJitter: 1e-7})
	m, err := r.Measure(cfg, net, topo, 1<<20, 42)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Exhausted {
		t.Errorf("budget-stopped measurement must be marked exhausted: %+v reps", m.Reps())
	}
}

func TestMetricsRecorded(t *testing.T) {
	cfg, net, topo := testSetup(t)
	reg := obs.NewRegistry()
	met := NewMetrics(reg, obs.Labels{"dataset": "test"})
	r := NewRunner(Options{MaxReps: 4, MaxTime: 100, SyncJitter: 1e-7, Metrics: met})
	m1, err := r.Measure(cfg, net, topo, 1024, 1)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := r.Measure(cfg, net, topo, 4096, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got := met.Measurements.Value(); got != 2 {
		t.Errorf("measurements counter = %d, want 2", got)
	}
	if got, want := met.Reps.Value(), int64(m1.Reps()+m2.Reps()); got != want {
		t.Errorf("reps counter = %d, want %d", got, want)
	}
	if got, want := met.Consumed.Value(), m1.Consumed+m2.Consumed; math.Abs(got-want) > 1e-12 {
		t.Errorf("consumed gauge = %v, want %v", got, want)
	}
	if met.Exhausted.Value() != 0 {
		t.Error("nothing should be exhausted under a 100s budget")
	}
	if got, want := met.RepSeconds.Count(), uint64(m1.Reps()+m2.Reps()); got != want {
		t.Errorf("rep histogram count = %d, want %d", got, want)
	}
	// A nil Metrics field must be a no-op, not a panic.
	r2 := NewRunner(Options{MaxReps: 2, SyncJitter: 1e-7})
	if _, err := r2.Measure(cfg, net, topo, 1024, 3); err != nil {
		t.Fatal(err)
	}
}
