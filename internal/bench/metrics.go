package bench

import "mpicollpred/internal/obs"

// Metrics aggregates measurement accounting into an obs registry. One
// Metrics instance typically covers one dataset generation run; the shared
// label set (dataset, machine, lib, coll) distinguishes runs in a snapshot.
type Metrics struct {
	// Measurements counts completed Measure/MeasureCapped calls.
	Measurements *obs.Counter
	// Reps counts individual benchmark repetitions across all measurements.
	Reps *obs.Counter
	// Consumed accumulates the simulated seconds spent benchmarking — the
	// quantity the paper's §V budget bounds a priori.
	Consumed *obs.Gauge
	// Exhausted counts measurements stopped early by the time budget.
	Exhausted *obs.Counter
	// RepSeconds is the distribution of single-repetition makespans.
	RepSeconds *obs.Histogram
	// Retried counts outlier repetitions that were re-measured (see
	// Options.OutlierRetries).
	Retried *obs.Counter
}

// NewMetrics registers the benchmark metric series under the given labels.
// A nil registry means obs.Default.
func NewMetrics(r *obs.Registry, labels obs.Labels) *Metrics {
	if r == nil {
		r = obs.Default
	}
	return &Metrics{
		Measurements: r.Counter("bench_measurements_total", labels),
		Reps:         r.Counter("bench_reps_total", labels),
		Consumed:     r.Gauge("bench_consumed_seconds", labels),
		Exhausted:    r.Counter("bench_budget_exhausted_total", labels),
		RepSeconds:   r.Histogram("bench_rep_seconds", labels),
		Retried:      r.Counter("bench_outlier_retries_total", labels),
	}
}

// record books one finished measurement. Nil-safe: a Runner without metrics
// pays only the nil check.
func (m *Metrics) record(meas Measurement) {
	if m == nil {
		return
	}
	m.Measurements.Inc()
	m.Reps.Add(int64(meas.Reps()))
	m.Consumed.Add(meas.Consumed)
	if meas.Exhausted {
		m.Exhausted.Inc()
	}
	if meas.Retried > 0 {
		m.Retried.Add(int64(meas.Retried))
	}
	for _, t := range meas.Times {
		m.RepSeconds.Observe(t)
	}
}
