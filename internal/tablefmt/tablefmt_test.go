package tablefmt

import (
	"strings"
	"testing"
)

func TestTableAlignment(t *testing.T) {
	tb := &Table{Title: "T", Headers: []string{"a", "bbbb"}}
	tb.AddRow("xx", "y")
	tb.AddRow("z", "wwwww")
	s := tb.String()
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("got %d lines:\n%s", len(lines), s)
	}
	if lines[0] != "T" {
		t.Errorf("title line %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "a ") || !strings.Contains(lines[1], "bbbb") {
		t.Errorf("header %q", lines[1])
	}
	// Column 2 must start at the same offset in all data rows.
	off := strings.Index(lines[3], "y")
	if strings.Index(lines[4], "wwwww") != off {
		t.Errorf("misaligned columns:\n%s", s)
	}
}

func TestTableNoHeaders(t *testing.T) {
	tb := &Table{}
	tb.AddRow("only", "row")
	s := tb.String()
	if strings.Contains(s, "---") {
		t.Errorf("separator without headers:\n%s", s)
	}
}

func TestBytes(t *testing.T) {
	cases := map[int64]string{
		1:       "1",
		999:     "999",
		1024:    "1K",
		16384:   "16K",
		524288:  "512K",
		1048576: "1M",
		4194304: "4M",
		1100:    "1100",
	}
	for v, want := range cases {
		if got := Bytes(v); got != want {
			t.Errorf("Bytes(%d) = %q, want %q", v, got, want)
		}
	}
}

func TestNumberHelpers(t *testing.T) {
	if F(1.2345, 2) != "1.23" || I(7) != "7" || I64(9) != "9" {
		t.Error("format helpers broken")
	}
	if G(0.000123456) != "0.000123" {
		t.Errorf("G = %q", G(0.000123456))
	}
}
