// Package tablefmt renders aligned ASCII tables for the experiment outputs
// (every table and figure of the paper is regenerated as a text artifact).
package tablefmt

import (
	"fmt"
	"strings"
)

// Table is a titled grid of string cells.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// AddRow appends a row of cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders the table with aligned columns.
func (t *Table) String() string {
	cols := len(t.Headers)
	for _, r := range t.Rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	width := make([]int, cols)
	measure := func(cells []string) {
		for i, c := range cells {
			if len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	measure(t.Headers)
	for _, r := range t.Rows {
		measure(r)
	}

	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i := 0; i < cols; i++ {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", width[i], c)
		}
		// Trim trailing padding.
		s := b.String()
		trimmed := strings.TrimRight(s, " ")
		b.Reset()
		b.WriteString(trimmed)
		b.WriteByte('\n')
	}
	if len(t.Headers) > 0 {
		writeRow(t.Headers)
		total := 0
		for _, w := range width {
			total += w + 2
		}
		b.WriteString(strings.Repeat("-", total-2))
		b.WriteByte('\n')
	}
	for _, r := range t.Rows {
		writeRow(r)
	}
	return b.String()
}

// F formats a float with the given precision.
func F(v float64, prec int) string { return fmt.Sprintf("%.*f", prec, v) }

// G formats a float compactly (3 significant digits).
func G(v float64) string { return fmt.Sprintf("%.3g", v) }

// I formats an int.
func I(v int) string { return fmt.Sprintf("%d", v) }

// I64 formats an int64.
func I64(v int64) string { return fmt.Sprintf("%d", v) }

// Bytes renders a byte count like the paper's axis labels (1K, 64K, 4M).
func Bytes(v int64) string {
	switch {
	case v >= 1<<20 && v%(1<<20) == 0:
		return fmt.Sprintf("%dM", v>>20)
	case v >= 1<<10 && v%(1<<10) == 0:
		return fmt.Sprintf("%dK", v>>10)
	default:
		return fmt.Sprintf("%d", v)
	}
}
