// Package obs is the observability layer of the framework: a dependency-free
// metrics registry (counters, gauges, quantile histograms), a leveled logger,
// a progress/ETA reporter, and a Chrome trace-event exporter for simulator
// timelines.
//
// Every pipeline stage (bench → dataset → train → select) reports into a
// Registry — by convention the package-level Default — and the CLIs dump a
// snapshot with their -metrics flag. The registry is safe for concurrent use:
// counters and gauges are lock-free atomics, histograms take a short mutex
// per observation.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Labels attach dimensions (collective, machine, library, learner, ...) to a
// metric. The same name with different labels is a distinct time series.
type Labels map[string]string

// labelKey renders labels in sorted order; it is the identity of a series.
func labelKey(l Labels) string {
	if len(l) == 0 {
		return ""
	}
	keys := make([]string, 0, len(l))
	for k := range l {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", k, l[k])
	}
	return b.String()
}

// Counter is a monotonically increasing int64, safe for concurrent use.
type Counter struct{ v atomic.Int64 }

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be >= 0 for the counter to stay monotonic).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a float64 that may move in either direction; Add makes it usable
// as a float accumulator (e.g. consumed simulated seconds).
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add atomically adds d.
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// histGrowth is the geometric bucket growth factor: 2^(1/16). A value is
// reported as the geometric midpoint of its bucket, so quantile estimates
// carry at most ~2.2% relative error — documented and asserted by the tests.
var (
	histGrowth   = math.Pow(2, 1.0/16)
	invLogGrowth = 1 / math.Log(histGrowth)
	histHalfStep = math.Sqrt(histGrowth)
)

// Histogram aggregates non-negative observations (typically seconds) into
// exponential buckets and serves quantile snapshots. Observations <= 0 land
// in a dedicated zero bucket.
type Histogram struct {
	mu      sync.Mutex
	buckets map[int32]uint64
	zero    uint64
	count   uint64
	sum     float64
	min     float64
	max     float64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	if v <= 0 || math.IsNaN(v) {
		h.zero++
	} else {
		b := int32(math.Floor(math.Log(v) * invLogGrowth))
		if h.buckets == nil {
			h.buckets = make(map[int32]uint64, 32)
		}
		h.buckets[b]++
	}
	h.mu.Unlock()
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Quantile returns the q-quantile (0 <= q <= 1) with the bucket-resolution
// error documented on histGrowth. It returns 0 for an empty histogram.
func (h *Histogram) Quantile(q float64) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.quantileLocked(q)
}

func (h *Histogram) quantileLocked(q float64) float64 {
	if h.count == 0 {
		return 0
	}
	if q <= 0 {
		return h.min
	}
	if q >= 1 {
		return h.max
	}
	rank := q * float64(h.count-1)
	cum := float64(h.zero)
	if cum > rank {
		return 0
	}
	keys := make([]int32, 0, len(h.buckets))
	for k := range h.buckets {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, k := range keys {
		cum += float64(h.buckets[k])
		if cum > rank {
			// Geometric midpoint of bucket [g^k, g^(k+1)).
			v := math.Exp(float64(k)/invLogGrowth) * histHalfStep
			if v < h.min {
				v = h.min
			}
			if v > h.max {
				v = h.max
			}
			return v
		}
	}
	return h.max
}

// snapshotLocked assumes h.mu is held.
func (h *Histogram) snapshot() HistogramSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := HistogramSnapshot{Count: h.count, Sum: h.sum, Min: h.min, Max: h.max}
	s.P10 = h.quantileLocked(0.10)
	s.P50 = h.quantileLocked(0.50)
	s.P90 = h.quantileLocked(0.90)
	s.P99 = h.quantileLocked(0.99)
	s.Quantiles = []QuantileValue{
		{Q: "p10", V: s.P10}, {Q: "p50", V: s.P50}, {Q: "p90", V: s.P90}, {Q: "p99", V: s.P99},
	}
	return s
}

// Registry holds named metrics. The zero value is not usable; call
// NewRegistry (or use Default).
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*counterEntry
	gauges   map[string]*gaugeEntry
	hists    map[string]*histEntry
}

type counterEntry struct {
	name   string
	labels Labels
	c      Counter
}
type gaugeEntry struct {
	name   string
	labels Labels
	g      Gauge
}
type histEntry struct {
	name   string
	labels Labels
	h      Histogram
}

// Default is the process-wide registry the pipeline stages report into.
var Default = NewRegistry()

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*counterEntry{},
		gauges:   map[string]*gaugeEntry{},
		hists:    map[string]*histEntry{},
	}
}

func seriesKey(name string, labels Labels) string { return name + "{" + labelKey(labels) + "}" }

func copyLabels(l Labels) Labels {
	if len(l) == 0 {
		return nil
	}
	out := make(Labels, len(l))
	for k, v := range l {
		out[k] = v
	}
	return out
}

// Counter returns (creating on first use) the counter series (name, labels).
func (r *Registry) Counter(name string, labels Labels) *Counter {
	key := seriesKey(name, labels)
	r.mu.RLock()
	e, ok := r.counters[key]
	r.mu.RUnlock()
	if ok {
		return &e.c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok = r.counters[key]; !ok {
		e = &counterEntry{name: name, labels: copyLabels(labels)}
		r.counters[key] = e
	}
	return &e.c
}

// Gauge returns (creating on first use) the gauge series (name, labels).
func (r *Registry) Gauge(name string, labels Labels) *Gauge {
	key := seriesKey(name, labels)
	r.mu.RLock()
	e, ok := r.gauges[key]
	r.mu.RUnlock()
	if ok {
		return &e.g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok = r.gauges[key]; !ok {
		e = &gaugeEntry{name: name, labels: copyLabels(labels)}
		r.gauges[key] = e
	}
	return &e.g
}

// Histogram returns (creating on first use) the histogram series.
func (r *Registry) Histogram(name string, labels Labels) *Histogram {
	key := seriesKey(name, labels)
	r.mu.RLock()
	e, ok := r.hists[key]
	r.mu.RUnlock()
	if ok {
		return &e.h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok = r.hists[key]; !ok {
		e = &histEntry{name: name, labels: copyLabels(labels)}
		r.hists[key] = e
	}
	return &e.h
}

// CounterSnapshot is one counter series in a Snapshot.
type CounterSnapshot struct {
	Name   string `json:"name"`
	Labels Labels `json:"labels,omitempty"`
	Value  int64  `json:"value"`
}

// GaugeSnapshot is one gauge series in a Snapshot.
type GaugeSnapshot struct {
	Name   string  `json:"name"`
	Labels Labels  `json:"labels,omitempty"`
	Value  float64 `json:"value"`
}

// QuantileValue is one labeled quantile of a histogram snapshot: Q is the
// label ("p10", "p50", ...), V the estimate. Exported as an ordered array —
// never a map — so the JSON schema is stable byte for byte.
type QuantileValue struct {
	Q string  `json:"q"`
	V float64 `json:"v"`
}

// HistogramSnapshot summarizes one histogram series. The flat P10..P99
// fields remain for existing readers; Quantiles carries the same estimates
// with explicit labels, ascending, for schema-driven consumers.
type HistogramSnapshot struct {
	Name      string          `json:"name,omitempty"`
	Labels    Labels          `json:"labels,omitempty"`
	Count     uint64          `json:"count"`
	Sum       float64         `json:"sum"`
	Min       float64         `json:"min"`
	Max       float64         `json:"max"`
	P10       float64         `json:"p10"`
	P50       float64         `json:"p50"`
	P90       float64         `json:"p90"`
	P99       float64         `json:"p99"`
	Quantiles []QuantileValue `json:"quantiles,omitempty"`
}

// Snapshot is a point-in-time copy of every series, ordered deterministically
// by (name, labels).
type Snapshot struct {
	Counters   []CounterSnapshot   `json:"counters"`
	Gauges     []GaugeSnapshot     `json:"gauges"`
	Histograms []HistogramSnapshot `json:"histograms"`
}

// Snapshot captures the registry's current state.
func (r *Registry) Snapshot() Snapshot {
	r.mu.RLock()
	counters := make([]*counterEntry, 0, len(r.counters))
	for _, e := range r.counters {
		counters = append(counters, e)
	}
	gauges := make([]*gaugeEntry, 0, len(r.gauges))
	for _, e := range r.gauges {
		gauges = append(gauges, e)
	}
	hists := make([]*histEntry, 0, len(r.hists))
	for _, e := range r.hists {
		hists = append(hists, e)
	}
	r.mu.RUnlock()

	var s Snapshot
	for _, e := range counters {
		s.Counters = append(s.Counters, CounterSnapshot{Name: e.name, Labels: e.labels, Value: e.c.Value()})
	}
	for _, e := range gauges {
		s.Gauges = append(s.Gauges, GaugeSnapshot{Name: e.name, Labels: e.labels, Value: e.g.Value()})
	}
	for _, e := range hists {
		hs := e.h.snapshot()
		hs.Name, hs.Labels = e.name, e.labels
		s.Histograms = append(s.Histograms, hs)
	}
	sort.Slice(s.Counters, func(i, j int) bool {
		return seriesKey(s.Counters[i].Name, s.Counters[i].Labels) < seriesKey(s.Counters[j].Name, s.Counters[j].Labels)
	})
	sort.Slice(s.Gauges, func(i, j int) bool {
		return seriesKey(s.Gauges[i].Name, s.Gauges[i].Labels) < seriesKey(s.Gauges[j].Name, s.Gauges[j].Labels)
	})
	sort.Slice(s.Histograms, func(i, j int) bool {
		return seriesKey(s.Histograms[i].Name, s.Histograms[i].Labels) < seriesKey(s.Histograms[j].Name, s.Histograms[j].Labels)
	})
	return s
}

// WriteJSON writes the registry snapshot as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// ReadSnapshot parses a snapshot previously written by WriteJSON.
func ReadSnapshot(rd io.Reader) (Snapshot, error) {
	var s Snapshot
	if err := json.NewDecoder(rd).Decode(&s); err != nil {
		return Snapshot{}, fmt.Errorf("obs: parsing snapshot: %w", err)
	}
	return s, nil
}

// WriteText writes the snapshot in a prometheus-like one-line-per-series
// text format.
func (r *Registry) WriteText(w io.Writer) error {
	s := r.Snapshot()
	for _, c := range s.Counters {
		if _, err := fmt.Fprintf(w, "%s{%s} %d\n", c.Name, labelKey(c.Labels), c.Value); err != nil {
			return err
		}
	}
	for _, g := range s.Gauges {
		if _, err := fmt.Fprintf(w, "%s{%s} %g\n", g.Name, labelKey(g.Labels), g.Value); err != nil {
			return err
		}
	}
	for _, h := range s.Histograms {
		if _, err := fmt.Fprintf(w, "%s{%s} count=%d sum=%g min=%g p10=%g p50=%g p90=%g p99=%g max=%g\n",
			h.Name, labelKey(h.Labels), h.Count, h.Sum, h.Min, h.P10, h.P50, h.P90, h.P99, h.Max); err != nil {
			return err
		}
	}
	return nil
}

// DumpFile writes the snapshot to path: JSON when the extension is .json,
// text otherwise.
func (r *Registry) DumpFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if filepath.Ext(path) == ".json" {
		err = r.WriteJSON(f)
	} else {
		err = r.WriteText(f)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}
