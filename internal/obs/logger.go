package obs

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// Level selects logger verbosity.
type Level int32

const (
	// LevelQuiet suppresses everything except errors.
	LevelQuiet Level = iota
	// LevelInfo is the default: progress and stage summaries.
	LevelInfo
	// LevelDebug adds per-step detail.
	LevelDebug
)

// FlagLevel maps the conventional -v / -quiet CLI flag pair to a Level
// (-quiet wins when both are set).
func FlagLevel(verbose, quiet bool) Level {
	switch {
	case quiet:
		return LevelQuiet
	case verbose:
		return LevelDebug
	default:
		return LevelInfo
	}
}

// Logger is a minimal leveled logger stamping each line with the elapsed
// wall time since construction. A nil *Logger is valid and silent, so
// library code can log unconditionally.
type Logger struct {
	mu    sync.Mutex
	w     io.Writer
	level Level
	start time.Time
}

// NewLogger returns a Logger writing lines at or below level to w.
func NewLogger(w io.Writer, level Level) *Logger {
	return &Logger{w: w, level: level, start: time.Now()}
}

// Enabled reports whether lines at level would be written.
func (l *Logger) Enabled(level Level) bool {
	return l != nil && l.level >= level
}

func (l *Logger) printf(tag, format string, args ...any) {
	l.mu.Lock()
	defer l.mu.Unlock()
	// The three writes below form one log line; the lock exists precisely to
	// keep concurrent lines from interleaving on the shared writer.
	//mpicollvet:ignore lockscope serialized multi-write log line, see above
	fmt.Fprintf(l.w, "[%8.3fs] %-5s ", time.Since(l.start).Seconds(), tag)
	fmt.Fprintf(l.w, format, args...)
	//mpicollvet:ignore lockscope serialized multi-write log line, see above
	fmt.Fprintln(l.w)
}

// Infof logs at LevelInfo.
func (l *Logger) Infof(format string, args ...any) {
	if l.Enabled(LevelInfo) {
		l.printf("INFO", format, args...)
	}
}

// Debugf logs at LevelDebug.
func (l *Logger) Debugf(format string, args ...any) {
	if l.Enabled(LevelDebug) {
		l.printf("DEBUG", format, args...)
	}
}

// Errorf always logs (even in quiet mode): errors must not be silenced.
func (l *Logger) Errorf(format string, args ...any) {
	if l == nil {
		return
	}
	l.printf("ERROR", format, args...)
}
