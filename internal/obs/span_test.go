package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

// fakeClock advances a fixed step per read, making span timings exact.
type fakeClock struct {
	mu   sync.Mutex
	t    time.Time
	step time.Duration
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(c.step)
	return c.t
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.UnixMicro(1_000_000), step: 10 * time.Microsecond}
}

func TestSpanTreeAndRing(t *testing.T) {
	r := NewSpanRing(4)
	r.SetClock(newFakeClock().now)

	root := r.StartRequest("req-1", "select")
	child := root.StartChild("cache")
	child.SetTag("cache", "miss")
	child.End()
	grand := root.StartChild("argmin")
	grand.End()
	root.End()

	traces := r.Snapshot()
	if len(traces) != 1 {
		t.Fatalf("got %d traces, want 1", len(traces))
	}
	rt := traces[0]
	if rt.RequestID != "req-1" || rt.Endpoint != "select" {
		t.Errorf("trace identity = %q/%q", rt.RequestID, rt.Endpoint)
	}
	if len(rt.Spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(rt.Spans))
	}
	if rt.Spans[0].Parent != -1 || rt.Spans[1].Parent != 0 || rt.Spans[2].Parent != 0 {
		t.Errorf("parent links = %d,%d,%d", rt.Spans[0].Parent, rt.Spans[1].Parent, rt.Spans[2].Parent)
	}
	if rt.Spans[1].Name != "cache" || len(rt.Spans[1].Tags) != 1 || rt.Spans[1].Tags[0].V != "miss" {
		t.Errorf("child span = %+v", rt.Spans[1])
	}
	if rt.DurationUs <= 0 || rt.Spans[0].DurUs != rt.DurationUs {
		t.Errorf("root duration %d vs trace %d", rt.Spans[0].DurUs, rt.DurationUs)
	}
	for i, sp := range rt.Spans {
		if sp.DurUs < 0 {
			t.Errorf("span %d left open: %+v", i, sp)
		}
	}
}

func TestSpanRingEviction(t *testing.T) {
	r := NewSpanRing(2)
	r.SetClock(newFakeClock().now)
	for _, id := range []string{"a", "b", "c"} {
		r.StartRequest(id, "select").End()
	}
	stored, total := r.Stats()
	if stored != 2 || total != 3 {
		t.Fatalf("stored=%d total=%d, want 2/3", stored, total)
	}
	traces := r.Snapshot()
	if traces[0].RequestID != "b" || traces[1].RequestID != "c" {
		t.Errorf("ring kept %q,%q; want oldest-first b,c", traces[0].RequestID, traces[1].RequestID)
	}
}

func TestSpanUnfinishedChildClosedAtRootEnd(t *testing.T) {
	r := NewSpanRing(1)
	r.SetClock(newFakeClock().now)
	root := r.StartRequest("req", "select")
	root.StartChild("leaked") // never ended
	root.End()
	rt := r.Snapshot()[0]
	if len(rt.Spans) != 2 {
		t.Fatalf("got %d spans", len(rt.Spans))
	}
	leaked := rt.Spans[1]
	if leaked.DurUs < 0 || leaked.StartUs+leaked.DurUs > rt.DurationUs {
		t.Errorf("leaked child not clamped to root: %+v (root %dus)", leaked, rt.DurationUs)
	}
}

func TestSpanNilSafety(t *testing.T) {
	var r *SpanRing
	sp := r.StartRequest("x", "y")
	if sp != nil {
		t.Fatal("nil ring returned a live span")
	}
	sp.SetTag("k", "v")
	c := sp.StartChild("child")
	c.End()
	sp.StartSpan("stage")()
	sp.End()
	if got := r.Snapshot(); got != nil {
		t.Errorf("nil ring snapshot = %v", got)
	}
	if NewSpanRing(0) != nil {
		t.Error("NewSpanRing(0) should disable tracing")
	}
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"capacity": 0`) {
		t.Errorf("disabled ring JSON: %s", buf.String())
	}
}

// TestSpanExportsStable pins the JSON and Chrome exports under an injected
// clock: byte-stable artifacts are the repo-wide contract (DESIGN §5).
func TestSpanExportsStable(t *testing.T) {
	build := func() *SpanRing {
		r := NewSpanRing(2)
		r.SetClock(newFakeClock().now)
		root := r.StartRequest("req-7", "select")
		ch := root.StartChild("cache")
		ch.SetTag("cache", "hit")
		ch.End()
		root.End()
		return r
	}
	var a, b, ca, cb bytes.Buffer
	ra, rb := build(), build()
	if err := ra.WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := rb.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Errorf("JSON export unstable:\n%s\nvs\n%s", a.String(), b.String())
	}
	if err := ra.WriteChrome(&ca); err != nil {
		t.Fatal(err)
	}
	if err := rb.WriteChrome(&cb); err != nil {
		t.Fatal(err)
	}
	if ca.String() != cb.String() {
		t.Errorf("Chrome export unstable:\n%s\nvs\n%s", ca.String(), cb.String())
	}
	var chrome struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(ca.Bytes(), &chrome); err != nil {
		t.Fatalf("chrome export not JSON: %v", err)
	}
	if len(chrome.TraceEvents) != 4 { // process meta + thread meta + 2 spans
		t.Errorf("chrome export has %d events, want 4", len(chrome.TraceEvents))
	}
}

func TestSpanConcurrentReadersAndWriters(t *testing.T) {
	r := NewSpanRing(8)
	stop := make(chan struct{})
	readerDone := make(chan struct{})
	go func() {
		defer close(readerDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			_ = r.Snapshot()
			var buf bytes.Buffer
			_ = r.WriteChrome(&buf)
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				root := r.StartRequest("req", "select")
				c := root.StartChild("cache")
				c.SetTag("w", "x")
				c.End()
				root.End()
			}
		}()
	}
	wg.Wait()
	close(stop)
	<-readerDone
	if _, total := r.Stats(); total != 800 {
		t.Errorf("recorded %d traces, want 800", total)
	}
}
