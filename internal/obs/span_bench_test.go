package obs

import "testing"

// The tracing-off contract: a disabled ring (nil *SpanRing) must cost the
// serving hot path nothing. The benchmark twin measures both states; the
// allocation test pins the off path to literally zero allocations, so a
// regression fails rather than just drifting.

func runSpanPath(r *SpanRing) {
	root := r.StartRequest("req", "select")
	c := root.StartChild("cache")
	c.SetTag("cache", "hit")
	c.End()
	end := root.StartSpan("argmin")
	end()
	root.End()
}

func BenchmarkSpanPathOff(b *testing.B) {
	var r *SpanRing
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		runSpanPath(r)
	}
}

func BenchmarkSpanPathOn(b *testing.B) {
	r := NewSpanRing(64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		runSpanPath(r)
	}
}

func TestSpanPathOffZeroAlloc(t *testing.T) {
	var r *SpanRing
	if allocs := testing.AllocsPerRun(1000, func() { runSpanPath(r) }); allocs != 0 {
		t.Errorf("disabled tracing path allocates %.1f objects per request, want 0", allocs)
	}
}
