package obs

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"mpicollpred/internal/coll"
	"mpicollpred/internal/netmodel"
	"mpicollpred/internal/sim"
)

var update = flag.Bool("update", false, "rewrite golden files")

// buildBinomialTrace runs a noise-free segmented binomial bcast on 8 ranks
// (2 nodes x 4 ppn) with both tracers installed and returns the trace.
// Everything is deterministic, so the output is golden-file stable.
func buildBinomialTrace(t *testing.T) *Trace {
	t.Helper()
	topo := netmodel.Topology{Nodes: 2, PPN: 4}
	b := sim.NewBuilder(topo.P(), false)
	coll.BcastBinomial(b, topo, 4096, coll.Params{Seg: 2048})
	prog := b.Build()

	prm := netmodel.Params{
		LInter: 1e-6, GInter: 1e-10, GNic: 1.2e-10,
		LIntra: 3e-7, GIntra: 1.2e-10, GMem: 0.4e-10,
		OSend: 3e-7, ORecv: 3.5e-7, OByte: 0.5e-10, Gamma: 1.6e-10,
		Eager: 4096, RendezvousL: 2e-6, Sigma: 0,
	}
	model := netmodel.New(prm, topo, 1, false)
	tr := NewTrace()
	model.SetTracer(tr)

	eng := sim.NewEngine()
	eng.SetTracer(tr)
	eng.CollectStats(true)
	res, err := eng.Run(prog, model, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats == nil || res.Stats.MessagesMatched == 0 {
		t.Fatalf("expected stats from traced run, got %+v", res.Stats)
	}
	return tr
}

func TestTraceGolden(t *testing.T) {
	tr := buildBinomialTrace(t)
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "bcast_binomial_2x4.trace.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("trace differs from golden file %s (run with -update to regenerate)", golden)
	}
}

func TestTraceWellFormed(t *testing.T) {
	tr := buildBinomialTrace(t)
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	// The file must parse as the standard trace-event container and every
	// span must carry non-negative timestamps and durations.
	var parsed struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
			Pid  int     `json:"pid"`
			Tid  int32   `json:"tid"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(parsed.TraceEvents) == 0 {
		t.Fatal("empty trace")
	}
	spans, meta := 0, 0
	for _, ev := range parsed.TraceEvents {
		switch ev.Ph {
		case "X":
			spans++
			if ev.Ts < 0 || ev.Dur < 0 {
				t.Errorf("negative span time: %+v", ev)
			}
		case "M":
			meta++
		default:
			t.Errorf("unexpected phase %q", ev.Ph)
		}
	}
	if spans == 0 || meta == 0 {
		t.Errorf("want both spans and metadata, got %d spans, %d meta", spans, meta)
	}
	if spans != tr.Len() {
		t.Errorf("span count %d != recorded %d", spans, tr.Len())
	}
	// 7 binomial-tree messages over 2 segments: every non-root rank has a
	// recv span, and the NIC must show up for the inter-node hops.
	if tr.Len() < 14 {
		t.Errorf("suspiciously few spans for a segmented binomial bcast: %d", tr.Len())
	}
}
