package obs

import "time"

// Progress is a throttled progress/ETA reporter for long generation loops.
// It matches the dataset generator's callback shape via Func, logging at
// most once per interval with the current rate and the estimated time to
// completion.
type Progress struct {
	l        *Logger
	label    string
	interval time.Duration
	start    time.Time
	last     time.Time
	done     int
	total    int
}

// NewProgress returns a reporter logging through l (nil-safe) under label.
func NewProgress(l *Logger, label string) *Progress {
	return &Progress{l: l, label: label, interval: time.Second, start: time.Now()}
}

// Update records that done of total work items are complete and logs a
// rate/ETA line if the throttle interval has elapsed.
func (p *Progress) Update(done, total int) {
	p.done, p.total = done, total
	if !p.l.Enabled(LevelInfo) {
		return
	}
	now := time.Now()
	if now.Sub(p.last) < p.interval && done < total {
		return
	}
	p.last = now
	elapsed := now.Sub(p.start).Seconds()
	if elapsed <= 0 || done <= 0 {
		return
	}
	rate := float64(done) / elapsed
	eta := time.Duration(float64(total-done) / rate * float64(time.Second))
	p.l.Infof("%s: %d/%d (%.0f%%) %.0f/s, ETA %v",
		p.label, done, total, 100*float64(done)/float64(total), rate, eta.Round(time.Second))
}

// Func adapts the reporter to the func(done, total int) callback shape used
// by dataset.Generate.
func (p *Progress) Func() func(done, total int) { return p.Update }

// Finish logs the completion summary (count and wall time).
func (p *Progress) Finish() {
	p.l.Infof("%s: %d items in %v", p.label, p.done, time.Since(p.start).Round(time.Millisecond))
}
