package obs

import (
	"bytes"
	"math"
	"math/rand"
	"reflect"
	"strings"
	"sync"
	"testing"
)

func TestCounterConcurrent(t *testing.T) {
	r := NewRegistry()
	const goroutines, perG = 16, 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Mix get-or-create with increments to exercise the registry
			// fast path under the race detector.
			for i := 0; i < perG; i++ {
				r.Counter("test_total", Labels{"k": "v"}).Inc()
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("test_total", Labels{"k": "v"}).Value(); got != goroutines*perG {
		t.Errorf("counter = %d, want %d", got, goroutines*perG)
	}
}

func TestGaugeConcurrentAdd(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("consumed_seconds", nil)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				g.Add(0.5)
			}
		}()
	}
	wg.Wait()
	if got, want := g.Value(), 8*1000*0.5; math.Abs(got-want) > 1e-9 {
		t.Errorf("gauge = %v, want %v", got, want)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := &Histogram{}
	// Uniform values 1..10000: quantiles are known exactly; the bucketed
	// estimate must stay within the documented ~2.2% relative error.
	rng := rand.New(rand.NewSource(1))
	vals := rng.Perm(10000)
	for _, v := range vals {
		h.Observe(float64(v + 1))
	}
	for _, tc := range []struct{ q, want float64 }{
		{0.10, 1000}, {0.50, 5000}, {0.90, 9000}, {0.99, 9900},
	} {
		got := h.Quantile(tc.q)
		if rel := math.Abs(got-tc.want) / tc.want; rel > 0.05 {
			t.Errorf("q%.2f = %v, want %v +- 5%% (rel err %.3f)", tc.q, got, tc.want, rel)
		}
	}
	if h.Quantile(0) != 1 || h.Quantile(1) != 10000 {
		t.Errorf("extreme quantiles must be exact min/max: %v, %v", h.Quantile(0), h.Quantile(1))
	}
	if h.Count() != 10000 {
		t.Errorf("count = %d", h.Count())
	}
	if math.Abs(h.Sum()-10000*10001/2) > 1e-6 {
		t.Errorf("sum = %v", h.Sum())
	}
}

func TestHistogramZeroAndEmpty(t *testing.T) {
	h := &Histogram{}
	if h.Quantile(0.5) != 0 {
		t.Error("empty histogram quantile must be 0")
	}
	h.Observe(0)
	h.Observe(0)
	h.Observe(4)
	if got := h.Quantile(0.25); got != 0 {
		t.Errorf("zero bucket quantile = %v, want 0", got)
	}
	if got := h.Quantile(1); got != 4 {
		t.Errorf("max = %v, want 4", got)
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("bench_reps_total", Labels{"dataset": "d1", "machine": "Hydra"}).Add(500)
	r.Counter("bench_reps_total", Labels{"dataset": "d8", "machine": "SuperMUC-NG"}).Add(42)
	r.Gauge("bench_consumed_seconds", Labels{"dataset": "d1"}).Add(34.5)
	hist := r.Histogram("core_select_seconds", Labels{"learner": "gam"})
	for i := 1; i <= 100; i++ {
		hist.Observe(float64(i) * 1e-6)
	}

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := r.Snapshot()
	if !reflect.DeepEqual(got, want) {
		t.Errorf("round trip mismatch:\ngot  %+v\nwant %+v", got, want)
	}
	if len(got.Counters) != 2 || len(got.Gauges) != 1 || len(got.Histograms) != 1 {
		t.Errorf("unexpected series counts: %+v", got)
	}
	// Deterministic ordering by (name, labels).
	if got.Counters[0].Labels["dataset"] != "d1" || got.Counters[1].Labels["dataset"] != "d8" {
		t.Errorf("counters not sorted: %+v", got.Counters)
	}
}

func TestWriteText(t *testing.T) {
	r := NewRegistry()
	r.Counter("sim_events_total", Labels{"coll": "bcast"}).Add(7)
	r.Histogram("rep_seconds", nil).Observe(2)
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, `sim_events_total{coll="bcast"} 7`) {
		t.Errorf("text output missing counter line:\n%s", out)
	}
	if !strings.Contains(out, "rep_seconds{} count=1") {
		t.Errorf("text output missing histogram line:\n%s", out)
	}
}

func TestFlagLevel(t *testing.T) {
	if FlagLevel(false, false) != LevelInfo || FlagLevel(true, false) != LevelDebug ||
		FlagLevel(false, true) != LevelQuiet || FlagLevel(true, true) != LevelQuiet {
		t.Error("FlagLevel mapping wrong")
	}
}

func TestNilLoggerSafe(t *testing.T) {
	var l *Logger
	l.Infof("should not panic")
	l.Debugf("should not panic")
	l.Errorf("nil logger drops errors silently")
	p := NewProgress(l, "x")
	p.Update(1, 2)
	p.Finish()
}
