package obs

import (
	"math"
	"sort"
	"sync"
)

// Drift and SLO monitors for the serving path. All three primitives are
// event-driven — state advances only when Observe is called, never on a
// wall-clock tick — so a seeded request sequence produces bit-identical
// monitor state run after run (the golden-testability contract of DESIGN
// §5 extended to telemetry).

// MonitorLevel is a monitor's threshold state.
type MonitorLevel int

// Monitor threshold states, ordered by severity.
const (
	LevelOk MonitorLevel = iota
	LevelWarn
	LevelBreach
)

// String renders the level for /v1/telemetry and reports.
func (l MonitorLevel) String() string {
	switch l {
	case LevelWarn:
		return "warn"
	case LevelBreach:
		return "breach"
	default:
		return "ok"
	}
}

// QuantileWindow keeps the last capacity observations in a ring and answers
// exact quantiles over that window — the streaming sketch watching served
// predictions per model for drift. Unlike the exponential-bucket Histogram
// it forgets: a distribution shift shows up within one window.
type QuantileWindow struct {
	mu    sync.Mutex
	buf   []float64
	next  int
	n     int
	total uint64
}

// NewQuantileWindow returns a window over the last capacity observations
// (minimum 1).
func NewQuantileWindow(capacity int) *QuantileWindow {
	if capacity < 1 {
		capacity = 1
	}
	return &QuantileWindow{buf: make([]float64, capacity)}
}

// Observe records one value; NaNs are dropped (a fallback decision has no
// predicted time and must not poison the window).
func (w *QuantileWindow) Observe(v float64) {
	if math.IsNaN(v) {
		return
	}
	w.mu.Lock()
	w.buf[w.next] = v
	w.next = (w.next + 1) % len(w.buf)
	if w.n < len(w.buf) {
		w.n++
	}
	w.total++
	w.mu.Unlock()
}

// Count returns how many observations were ever recorded.
func (w *QuantileWindow) Count() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.total
}

// Len returns how many observations the window currently holds.
func (w *QuantileWindow) Len() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.n
}

// Quantile returns the q-quantile of the current window with linear
// interpolation between order statistics, NaN when the window is empty.
func (w *QuantileWindow) Quantile(q float64) float64 {
	w.mu.Lock()
	s := append([]float64(nil), w.buf[:w.n]...)
	w.mu.Unlock()
	if len(s) == 0 {
		return math.NaN()
	}
	sort.Float64s(s)
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	rank := q * float64(len(s)-1)
	lo := int(math.Floor(rank))
	frac := rank - float64(lo)
	if lo+1 >= len(s) {
		return s[lo]
	}
	return s[lo] + frac*(s[lo+1]-s[lo])
}

// RateMonitor tracks the rate of a boolean event stream (fallbacks,
// envelope violations) as an exponentially weighted moving average with
// ok/warn/breach thresholds. Warm-up protection: until MinEvents
// observations arrive the level stays ok, so a single early event cannot
// page anyone.
type RateMonitor struct {
	mu sync.Mutex
	// Alpha is the EWMA weight of a new observation (0 < alpha <= 1).
	alpha  float64
	warn   float64
	breach float64
	// minEvents is the warm-up threshold before levels apply.
	minEvents uint64

	ewma        float64
	n           uint64
	events      uint64
	transitions uint64
	level       MonitorLevel
}

// DefaultMonitorMinEvents is the warm-up observation count before a
// RateMonitor reports warn/breach.
const DefaultMonitorMinEvents = 16

// NewRateMonitor returns an EWMA rate monitor. alpha <= 0 defaults to 0.05
// (a ~20-event memory); warn/breach are rate thresholds in [0,1], breach
// clamped to at least warn.
func NewRateMonitor(alpha, warn, breach float64) *RateMonitor {
	if alpha <= 0 || alpha > 1 {
		alpha = 0.05
	}
	if breach < warn {
		breach = warn
	}
	return &RateMonitor{alpha: alpha, warn: warn, breach: breach, minEvents: DefaultMonitorMinEvents}
}

// SetMinEvents overrides the warm-up observation count (0 disables warm-up).
func (m *RateMonitor) SetMinEvents(n uint64) {
	m.mu.Lock()
	m.minEvents = n
	m.levelLocked()
	m.mu.Unlock()
}

// Observe records one event outcome and updates the threshold state.
func (m *RateMonitor) Observe(event bool) {
	m.mu.Lock()
	x := 0.0
	if event {
		x = 1.0
		m.events++
	}
	if m.n == 0 {
		m.ewma = x
	} else {
		m.ewma = m.alpha*x + (1-m.alpha)*m.ewma
	}
	m.n++
	m.levelLocked()
	m.mu.Unlock()
}

func (m *RateMonitor) levelLocked() {
	next := LevelOk
	switch {
	case m.n < m.minEvents:
		next = LevelOk
	case m.ewma >= m.breach:
		next = LevelBreach
	case m.ewma >= m.warn:
		next = LevelWarn
	}
	if next != m.level {
		m.transitions++
		m.level = next
	}
}

// Rate returns the current EWMA event rate.
func (m *RateMonitor) Rate() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.ewma
}

// Level returns the current threshold state.
func (m *RateMonitor) Level() MonitorLevel {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.level
}

// Stats returns (observations, events, level transitions).
func (m *RateMonitor) Stats() (n, events, transitions uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.n, m.events, m.transitions
}

// Thresholds returns the configured warn/breach rates.
func (m *RateMonitor) Thresholds() (warn, breach float64) { return m.warn, m.breach }

// BurnRate tracks an SLO over a count-based rolling window: the burn rate
// is the window's bad fraction divided by the SLO's error budget (1 -
// objective). Burn 1.0 means the budget is being spent exactly as fast as
// allowed; above ~1 sustained, the SLO will be missed. Count-based windows
// (not wall-clock buckets) keep the monitor deterministic under seeded
// load.
type BurnRate struct {
	mu        sync.Mutex
	objective float64
	window    []bool // true = bad
	next      int
	n         int
	bad       int
	totalOK   uint64
	totalBad  uint64
}

// NewBurnRate returns an SLO burn monitor with the given objective (e.g.
// 0.999 availability) over the last windowSize requests (minimum 16).
func NewBurnRate(objective float64, windowSize int) *BurnRate {
	if objective <= 0 || objective >= 1 {
		objective = 0.999
	}
	if windowSize < 16 {
		windowSize = 16
	}
	return &BurnRate{objective: objective, window: make([]bool, windowSize)}
}

// Observe records one request outcome.
func (b *BurnRate) Observe(good bool) {
	b.mu.Lock()
	if b.n == len(b.window) {
		if b.window[b.next] {
			b.bad--
		}
	} else {
		b.n++
	}
	b.window[b.next] = !good
	if !good {
		b.bad++
		b.totalBad++
	} else {
		b.totalOK++
	}
	b.next = (b.next + 1) % len(b.window)
	b.mu.Unlock()
}

// Burn returns the current burn rate (0 when the window is empty).
func (b *BurnRate) Burn() float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.n == 0 {
		return 0
	}
	badFrac := float64(b.bad) / float64(b.n)
	return badFrac / (1 - b.objective)
}

// Level maps the burn rate onto ok/warn/breach: warn at burn >= 1 (budget
// spending exactly at the limit), breach at >= 10 (fast burn, the standard
// page-now multiple).
func (b *BurnRate) Level() MonitorLevel {
	burn := b.Burn()
	switch {
	case burn >= 10:
		return LevelBreach
	case burn >= 1:
		return LevelWarn
	default:
		return LevelOk
	}
}

// Objective returns the SLO target fraction.
func (b *BurnRate) Objective() float64 { return b.objective }

// Totals returns the all-time (good, bad) outcome counts.
func (b *BurnRate) Totals() (good, bad uint64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.totalOK, b.totalBad
}
