package obs

import (
	"bytes"
	"testing"
)

// TestRegistryExportOrderStable proves the artifact-stability contract for
// metrics: two registries fed the same series in different insertion orders
// must export byte-identical JSON and text snapshots. Go map iteration would
// break this if Snapshot did not sort by series key.
func TestRegistryExportOrderStable(t *testing.T) {
	type series struct {
		kind   string
		name   string
		labels Labels
		value  float64
	}
	all := []series{
		{"counter", "bench_runs_total", Labels{"collective": "bcast", "machine": "clusterA"}, 12},
		{"counter", "bench_runs_total", Labels{"collective": "allreduce", "machine": "clusterA"}, 7},
		{"counter", "train_rows_total", nil, 4096},
		{"gauge", "sim_seconds", Labels{"stage": "bench"}, 1.25},
		{"gauge", "sim_seconds", Labels{"stage": "select"}, 0.5},
		{"hist", "predict_latency_seconds", Labels{"learner": "knn"}, 3e-4},
		{"hist", "predict_latency_seconds", Labels{"learner": "gam"}, 5e-4},
	}
	feed := func(r *Registry, order []int) {
		for _, i := range order {
			s := all[i]
			switch s.kind {
			case "counter":
				r.Counter(s.name, s.labels).Add(int64(s.value))
			case "gauge":
				r.Gauge(s.name, s.labels).Set(s.value)
			case "hist":
				r.Histogram(s.name, s.labels).Observe(s.value)
			}
		}
	}
	export := func(r *Registry) (string, string) {
		var j, x bytes.Buffer
		if err := r.WriteJSON(&j); err != nil {
			t.Fatal(err)
		}
		if err := r.WriteText(&x); err != nil {
			t.Fatal(err)
		}
		return j.String(), x.String()
	}

	fwd := NewRegistry()
	feed(fwd, []int{0, 1, 2, 3, 4, 5, 6})
	rev := NewRegistry()
	feed(rev, []int{6, 5, 4, 3, 2, 1, 0})

	fj, ft := export(fwd)
	rj, rt := export(rev)
	if fj != rj {
		t.Errorf("JSON export depends on registration order:\nforward:\n%s\nreverse:\n%s", fj, rj)
	}
	if ft != rt {
		t.Errorf("text export depends on registration order:\nforward:\n%s\nreverse:\n%s", ft, rt)
	}
}

// TestTraceExportOrderStable proves the artifact-stability contract for
// traces: recording the same spans in a different order must produce
// byte-identical trace JSON, because WriteJSON sorts spans by
// (Ts, Pid, Tid, Name).
func TestTraceExportOrderStable(t *testing.T) {
	type span struct {
		resource   string
		node       int32
		start, end float64
	}
	spans := []span{
		{"nic", 0, 0, 1e-6},
		{"nic", 1, 0, 1e-6},
		{"membus", 0, 2e-6, 3e-6},
		{"nic", 0, 5e-6, 6e-6},
	}
	render := func(order []int) string {
		tr := NewTrace()
		for _, i := range order {
			s := spans[i]
			tr.ResourceSpan(s.resource, s.node, s.start, s.end)
		}
		var buf bytes.Buffer
		if err := tr.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	fwd := render([]int{0, 1, 2, 3})
	rev := render([]int{3, 2, 1, 0})
	if fwd != rev {
		t.Errorf("trace export depends on recording order:\nforward:\n%s\nreverse:\n%s", fwd, rev)
	}
}

// TestTraceWriteJSONDoesNotReorderRecording checks WriteJSON sorts a copy:
// rendering twice must give identical bytes and leave the recorded span
// count untouched.
func TestTraceWriteJSONDoesNotReorderRecording(t *testing.T) {
	tr := NewTrace()
	tr.ResourceSpan("nic", 1, 5e-6, 6e-6)
	tr.ResourceSpan("nic", 0, 0, 1e-6)
	var a, b bytes.Buffer
	if err := tr.WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := tr.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("rendering the same trace twice gave different bytes")
	}
	if tr.Len() != 2 {
		t.Errorf("Len() = %d after rendering, want 2", tr.Len())
	}
}

// TestHistogramQuantileLabelsStable pins the /metrics JSON schema for
// quantiles: an ordered array of labeled values (never a map), ascending,
// identical across snapshots of equal state.
func TestHistogramQuantileLabelsStable(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("serve_request_seconds", Labels{"endpoint": "select"})
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i) * 1e-4)
	}
	s := r.Snapshot()
	if len(s.Histograms) != 1 {
		t.Fatalf("got %d histograms", len(s.Histograms))
	}
	qs := s.Histograms[0].Quantiles
	want := []string{"p10", "p50", "p90", "p99"}
	if len(qs) != len(want) {
		t.Fatalf("got %d quantile labels, want %d", len(qs), len(want))
	}
	for i, q := range qs {
		if q.Q != want[i] {
			t.Errorf("quantile %d labeled %q, want %q", i, q.Q, want[i])
		}
		if i > 0 && qs[i].V < qs[i-1].V {
			t.Errorf("quantiles not ascending: %v", qs)
		}
	}
	if qs[1].V != s.Histograms[0].P50 {
		t.Errorf("labeled p50 %g disagrees with flat field %g", qs[1].V, s.Histograms[0].P50)
	}

	var a, b bytes.Buffer
	if err := r.WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("snapshot JSON with quantile labels is not byte-stable")
	}
}
