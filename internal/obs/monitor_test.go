package obs

import (
	"math"
	"sync"
	"testing"
)

func TestQuantileWindowExactAndRolling(t *testing.T) {
	w := NewQuantileWindow(4)
	if !math.IsNaN(w.Quantile(0.5)) {
		t.Error("empty window should answer NaN")
	}
	for _, v := range []float64{4, 1, 3, 2} {
		w.Observe(v)
	}
	if got := w.Quantile(0); got != 1 {
		t.Errorf("min = %g", got)
	}
	if got := w.Quantile(1); got != 4 {
		t.Errorf("max = %g", got)
	}
	if got := w.Quantile(0.5); got != 2.5 {
		t.Errorf("median = %g, want 2.5", got)
	}
	// Rolling: pushing 10,10 evicts 4,1 → window {3,2,10,10}.
	w.Observe(10)
	w.Observe(10)
	if got := w.Quantile(0.5); got != 6.5 {
		t.Errorf("rolled median = %g, want 6.5", got)
	}
	if w.Len() != 4 || w.Count() != 6 {
		t.Errorf("len=%d count=%d", w.Len(), w.Count())
	}
	w.Observe(math.NaN())
	if w.Count() != 6 {
		t.Error("NaN observation must be dropped")
	}
}

func TestRateMonitorLevelsAndWarmup(t *testing.T) {
	m := NewRateMonitor(0.5, 0.2, 0.6)
	// One early event: rate spikes but warm-up keeps the level ok.
	m.Observe(true)
	if m.Level() != LevelOk {
		t.Errorf("level during warm-up = %v", m.Level())
	}
	m.SetMinEvents(0)
	if m.Level() != LevelBreach {
		t.Errorf("level after warm-up override = %v (rate %g)", m.Level(), m.Rate())
	}
	// A run of quiet events decays the EWMA back through warn to ok.
	seen := map[MonitorLevel]bool{m.Level(): true}
	for i := 0; i < 20; i++ {
		m.Observe(false)
		seen[m.Level()] = true
	}
	if m.Level() != LevelOk {
		t.Errorf("level after decay = %v (rate %g)", m.Level(), m.Rate())
	}
	if !seen[LevelWarn] {
		t.Error("decay never passed through warn")
	}
	n, events, transitions := m.Stats()
	if n != 21 || events != 1 || transitions < 2 {
		t.Errorf("stats = %d/%d/%d", n, events, transitions)
	}
}

// TestRateMonitorDeterministic proves the golden-testability contract: the
// same observation sequence yields bit-identical monitor state.
func TestRateMonitorDeterministic(t *testing.T) {
	run := func() (float64, MonitorLevel) {
		m := NewRateMonitor(0.05, 0.1, 0.3)
		for i := 0; i < 500; i++ {
			m.Observe(i%7 == 0)
		}
		return m.Rate(), m.Level()
	}
	r1, l1 := run()
	r2, l2 := run()
	if math.Float64bits(r1) != math.Float64bits(r2) || l1 != l2 {
		t.Errorf("monitor not deterministic: %v/%v vs %v/%v", r1, l1, r2, l2)
	}
}

func TestBurnRateWindow(t *testing.T) {
	b := NewBurnRate(0.9, 20) // 10% error budget over 20 requests
	if b.Burn() != 0 || b.Level() != LevelOk {
		t.Error("fresh monitor should be ok at burn 0")
	}
	for i := 0; i < 20; i++ {
		b.Observe(true)
	}
	if b.Burn() != 0 {
		t.Errorf("all-good burn = %g", b.Burn())
	}
	// Two bad of twenty = 10% bad = exactly the budget → burn 1.0 → warn.
	b.Observe(false)
	b.Observe(false)
	if got := b.Burn(); math.Abs(got-1.0) > 1e-12 {
		t.Errorf("burn = %g, want 1.0", got)
	}
	if b.Level() != LevelWarn {
		t.Errorf("level = %v, want warn", b.Level())
	}
	// All-bad window: burn 10x the budget → breach.
	for i := 0; i < 20; i++ {
		b.Observe(false)
	}
	if b.Level() != LevelBreach {
		t.Errorf("level = %v (burn %g), want breach", b.Level(), b.Burn())
	}
	good, bad := b.Totals()
	if good != 20 || bad != 22 {
		t.Errorf("totals = %d/%d", good, bad)
	}
	// Rolling: a full window of good requests clears the breach.
	for i := 0; i < 20; i++ {
		b.Observe(true)
	}
	if b.Level() != LevelOk {
		t.Errorf("level after recovery = %v", b.Level())
	}
}

func TestMonitorLevelString(t *testing.T) {
	if LevelOk.String() != "ok" || LevelWarn.String() != "warn" || LevelBreach.String() != "breach" {
		t.Error("level strings drifted; /v1/telemetry and CI grep on these")
	}
}

func TestMonitorsConcurrent(t *testing.T) {
	w := NewQuantileWindow(64)
	m := NewRateMonitor(0.05, 0.1, 0.3)
	b := NewBurnRate(0.99, 64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				w.Observe(float64(i))
				m.Observe(i%9 == 0)
				b.Observe(i%11 != 0)
				_ = w.Quantile(0.9)
				_ = m.Level()
				_ = b.Burn()
			}
		}(g)
	}
	wg.Wait()
	if w.Count() != 4000 {
		t.Errorf("window count = %d", w.Count())
	}
	if n, _, _ := m.Stats(); n != 4000 {
		t.Errorf("monitor count = %d", n)
	}
}
