package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// Request-scoped tracing for the serving path. A SpanRing holds the last N
// completed request traces; each trace is a tree of spans (parse → resolve →
// cache → argmin/fallback) started from one root per request. Tracing is
// off-by-default and nil-safe end to end: every method on a nil *SpanRing or
// nil *Span is a no-op that allocates nothing, so the hot path pays zero
// cost when the ring is disabled (span_bench_test.go proves it).
//
// Completed traces are served at /debug/traces as JSON and are exportable in
// the same Chrome trace-event format as the simulator timelines (trace.go),
// so one viewer covers both worlds.

// Tag is one key/value annotation on a span.
type Tag struct {
	K string `json:"k"`
	V string `json:"v"`
}

// SpanRecord is one completed span inside a RequestTrace. Parent is the
// index of the parent span within the trace's Spans slice (-1 for the root);
// times are microsecond offsets from the trace start.
type SpanRecord struct {
	Name    string `json:"name"`
	Parent  int    `json:"parent"`
	StartUs int64  `json:"start_us"`
	DurUs   int64  `json:"dur_us"`
	Tags    []Tag  `json:"tags,omitempty"`
}

// RequestTrace is one request's completed span tree.
type RequestTrace struct {
	RequestID   string       `json:"request_id"`
	Endpoint    string       `json:"endpoint"`
	StartUnixUs int64        `json:"start_unix_us"`
	DurationUs  int64        `json:"duration_us"`
	Spans       []SpanRecord `json:"spans"`
}

// SpanRing buffers the most recent completed request traces. It is safe for
// concurrent use: requests publish finished traces while /debug/traces
// readers snapshot them.
type SpanRing struct {
	mu     sync.Mutex
	traces []RequestTrace
	next   int
	stored int
	total  uint64
	clock  func() time.Time
}

// NewSpanRing returns a ring keeping the last capacity traces. A capacity
// <= 0 returns nil — the disabled ring every method treats as "tracing off".
func NewSpanRing(capacity int) *SpanRing {
	if capacity <= 0 {
		return nil
	}
	return &SpanRing{traces: make([]RequestTrace, capacity), clock: time.Now}
}

// SetClock injects the time source (tests pin it for golden traces).
func (r *SpanRing) SetClock(fn func() time.Time) {
	if r == nil || fn == nil {
		return
	}
	r.mu.Lock()
	r.clock = fn
	r.mu.Unlock()
}

func (r *SpanRing) now() time.Time {
	r.mu.Lock()
	fn := r.clock
	r.mu.Unlock()
	return fn()
}

// activeTrace is a trace under construction; the root span's End publishes
// it into the ring.
type activeTrace struct {
	ring  *SpanRing
	mu    sync.Mutex
	start time.Time
	rt    RequestTrace
}

// Span is a handle on one span of an active trace. The zero of usefulness —
// a nil *Span — is a valid no-op handle.
type Span struct {
	t   *activeTrace
	idx int
}

// StartRequest opens a root span for a request. End on the returned span
// completes the trace and publishes it into the ring.
func (r *SpanRing) StartRequest(requestID, endpoint string) *Span {
	if r == nil {
		return nil
	}
	start := r.now()
	t := &activeTrace{
		ring:  r,
		start: start,
		rt: RequestTrace{
			RequestID:   requestID,
			Endpoint:    endpoint,
			StartUnixUs: start.UnixMicro(),
			Spans:       []SpanRecord{{Name: endpoint, Parent: -1, DurUs: -1}},
		},
	}
	return &Span{t: t, idx: 0}
}

// StartChild opens a child span under s.
func (s *Span) StartChild(name string) *Span {
	if s == nil {
		return nil
	}
	t := s.t
	now := t.ring.now()
	t.mu.Lock()
	idx := len(t.rt.Spans)
	t.rt.Spans = append(t.rt.Spans, SpanRecord{
		Name:    name,
		Parent:  s.idx,
		StartUs: now.Sub(t.start).Microseconds(),
		DurUs:   -1, // open; End (or the root's End) closes it
	})
	t.mu.Unlock()
	return &Span{t: t, idx: idx}
}

// SetTag annotates the span.
func (s *Span) SetTag(k, v string) {
	if s == nil {
		return
	}
	s.t.mu.Lock()
	s.t.rt.Spans[s.idx].Tags = append(s.t.rt.Spans[s.idx].Tags, Tag{K: k, V: v})
	s.t.mu.Unlock()
}

// End closes the span; ending the root publishes the trace into the ring.
// Children still open when the root ends are closed at the root's end time.
func (s *Span) End() {
	if s == nil {
		return
	}
	t := s.t
	now := t.ring.now()
	t.mu.Lock()
	rec := &t.rt.Spans[s.idx]
	if rec.DurUs < 0 {
		if rec.DurUs = now.Sub(t.start).Microseconds() - rec.StartUs; rec.DurUs < 0 {
			rec.DurUs = 0
		}
	}
	if s.idx != 0 {
		t.mu.Unlock()
		return
	}
	t.rt.DurationUs = rec.DurUs
	for i := range t.rt.Spans {
		if c := &t.rt.Spans[i]; c.DurUs < 0 {
			if c.DurUs = t.rt.DurationUs - c.StartUs; c.DurUs < 0 {
				c.DurUs = 0
			}
		}
	}
	// Publish a copy: a misbehaving child ending after the root must not
	// mutate what the ring (and its readers) now own.
	done := t.rt
	done.Spans = append([]SpanRecord(nil), t.rt.Spans...)
	t.mu.Unlock()
	t.ring.publish(done)
}

// noopEnd is the shared do-nothing closer handed out when tracing is off,
// keeping the disabled path allocation-free.
var noopEnd = func() {}

// StartSpan adapts a span to the core.Tracer stage seam: it opens a child
// and returns its End.
func (s *Span) StartSpan(name string) func() {
	if s == nil {
		return noopEnd
	}
	c := s.StartChild(name)
	return func() { c.End() }
}

// publish stores one completed trace, evicting the oldest when full.
func (r *SpanRing) publish(rt RequestTrace) {
	r.mu.Lock()
	r.traces[r.next] = rt
	r.next = (r.next + 1) % len(r.traces)
	if r.stored < len(r.traces) {
		r.stored++
	}
	r.total++
	r.mu.Unlock()
}

// Stats reports how many traces are stored and how many were ever recorded.
func (r *SpanRing) Stats() (stored int, total uint64) {
	if r == nil {
		return 0, 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stored, r.total
}

// Capacity returns the ring size (0 for a disabled ring).
func (r *SpanRing) Capacity() int {
	if r == nil {
		return 0
	}
	return len(r.traces)
}

// Snapshot copies the stored traces, oldest first.
func (r *SpanRing) Snapshot() []RequestTrace {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]RequestTrace, 0, r.stored)
	first := r.next - r.stored
	for i := 0; i < r.stored; i++ {
		idx := (first + i + len(r.traces)) % len(r.traces)
		rt := r.traces[idx]
		rt.Spans = append([]SpanRecord(nil), rt.Spans...)
		out = append(out, rt)
	}
	return out
}

// spanRingFile is the /debug/traces JSON payload.
type spanRingFile struct {
	Capacity int            `json:"capacity"`
	Stored   int            `json:"stored"`
	Total    uint64         `json:"total"`
	Traces   []RequestTrace `json:"traces"`
}

// WriteJSON renders the ring's traces (oldest first) as indented JSON.
func (r *SpanRing) WriteJSON(w io.Writer) error {
	stored, total := r.Stats()
	f := spanRingFile{Capacity: r.Capacity(), Stored: stored, Total: total, Traces: r.Snapshot()}
	if f.Traces == nil {
		f.Traces = []RequestTrace{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(f)
}

// WriteChrome renders the ring in the Chrome trace-event format used for
// simulator timelines: each trace becomes one thread of a "requests"
// process, with request wall time on the trace axis.
func (r *SpanRing) WriteChrome(w io.Writer) error {
	const pidRequests = 3
	traces := r.Snapshot()
	events := []traceEvent{
		{Name: "process_name", Ph: "M", Pid: pidRequests, Args: map[string]any{"name": "requests"}},
	}
	for i, rt := range traces {
		tid := int32(i + 1)
		events = append(events, traceEvent{Name: "thread_name", Ph: "M", Pid: pidRequests, Tid: tid,
			Args: map[string]any{"name": fmt.Sprintf("%s %s", rt.Endpoint, rt.RequestID)}})
		for _, sp := range rt.Spans {
			args := map[string]any{"request_id": rt.RequestID}
			for _, tag := range sp.Tags {
				args[tag.K] = tag.V
			}
			events = append(events, traceEvent{
				Name: sp.Name, Cat: "request", Ph: "X",
				Ts:  float64(rt.StartUnixUs + sp.StartUs),
				Dur: float64(sp.DurUs),
				Pid: pidRequests, Tid: tid, Args: args,
			})
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(traceFile{TraceEvents: events, DisplayTimeUnit: "ms"})
}
