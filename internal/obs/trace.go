package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"mpicollpred/internal/floats"
	"mpicollpred/internal/sim"
)

// Trace accumulates simulator timeline spans and renders them in the Chrome
// trace-event (catapult) JSON format, viewable in chrome://tracing or
// Perfetto. Rank timelines appear as threads of the "ranks" process; NIC and
// memory-bus occupancy as threads of the "nodes" process. Simulated seconds
// map to trace microseconds.
//
// Trace implements sim.Tracer and sim.ResourceTracer: install it on both
// the Engine and the cost model to get a complete picture. It is not safe
// for concurrent use (the Engine is single-threaded).
type Trace struct {
	events []traceEvent
	ranks  map[int32]bool
	nodes  map[int32]bool
}

// Pids of the two trace processes.
const (
	tracePidRanks = 1
	tracePidNodes = 2
)

// traceEvent is one Chrome trace-event entry. Ph "X" is a complete span; the
// metadata events (ph "M") name the processes and threads.
type traceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int32          `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// NewTrace returns an empty trace builder.
func NewTrace() *Trace {
	return &Trace{ranks: map[int32]bool{}, nodes: map[int32]bool{}}
}

// secUS converts simulated seconds to trace microseconds.
func secUS(s float64) float64 { return s * 1e6 }

// OpSpan implements sim.Tracer.
func (t *Trace) OpSpan(rank int32, kind sim.OpKind, peer int32, bytes uint32, start, end float64, rendezvous bool) {
	name := kind.String()
	args := map[string]any{"bytes": bytes}
	switch kind {
	case sim.OpSend, sim.OpSendNB:
		name = fmt.Sprintf("%s to %d", kind, peer)
		args["peer"] = peer
		args["protocol"] = protoName(rendezvous)
	case sim.OpRecv:
		name = fmt.Sprintf("recv from %d", peer)
		args["peer"] = peer
		args["protocol"] = protoName(rendezvous)
	}
	t.ranks[rank] = true
	t.events = append(t.events, traceEvent{
		Name: name, Cat: kind.String(), Ph: "X",
		Ts: secUS(start), Dur: secUS(end - start),
		Pid: tracePidRanks, Tid: rank, Args: args,
	})
}

func protoName(rendezvous bool) string {
	if rendezvous {
		return "rendezvous"
	}
	return "eager"
}

// ResourceSpan implements sim.ResourceTracer.
func (t *Trace) ResourceSpan(resource string, node int32, start, end float64) {
	t.nodes[node] = true
	t.events = append(t.events, traceEvent{
		Name: resource, Cat: "resource", Ph: "X",
		Ts: secUS(start), Dur: secUS(end - start),
		Pid: tracePidNodes, Tid: node,
	})
}

// Len returns the number of recorded spans.
func (t *Trace) Len() int { return len(t.events) }

// traceFile is the top-level JSON object ("JSON Object Format" of the trace
// event spec — the most portable container).
type traceFile struct {
	TraceEvents     []traceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// WriteJSON renders the trace. Metadata events naming every process and
// thread are emitted first, then the spans sorted by (Ts, Pid, Tid, Name) —
// a stable sort, so spans identical in all four keys keep recording order.
// The output is therefore byte-identical for equivalent simulations even if
// the engine's internal event interleaving changes (EXPERIMENTS.md relies on
// this for artifact diffing).
func (t *Trace) WriteJSON(w io.Writer) error {
	meta := []traceEvent{
		{Name: "process_name", Ph: "M", Pid: tracePidRanks, Args: map[string]any{"name": "ranks"}},
		{Name: "process_name", Ph: "M", Pid: tracePidNodes, Args: map[string]any{"name": "nodes"}},
	}
	for _, r := range sortedKeys(t.ranks) {
		meta = append(meta, traceEvent{Name: "thread_name", Ph: "M", Pid: tracePidRanks, Tid: r,
			Args: map[string]any{"name": fmt.Sprintf("rank %d", r)}})
	}
	for _, n := range sortedKeys(t.nodes) {
		meta = append(meta, traceEvent{Name: "thread_name", Ph: "M", Pid: tracePidNodes, Tid: n,
			Args: map[string]any{"name": fmt.Sprintf("node %d", n)}})
	}
	spans := make([]traceEvent, len(t.events))
	copy(spans, t.events)
	sort.SliceStable(spans, func(i, j int) bool {
		a, b := spans[i], spans[j]
		if !floats.Exact(a.Ts, b.Ts) {
			return a.Ts < b.Ts
		}
		if a.Pid != b.Pid {
			return a.Pid < b.Pid
		}
		if a.Tid != b.Tid {
			return a.Tid < b.Tid
		}
		return a.Name < b.Name
	})
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(traceFile{TraceEvents: append(meta, spans...), DisplayTimeUnit: "ms"})
}

func sortedKeys(set map[int32]bool) []int32 {
	out := make([]int32, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
