// Package machine defines the three parallel machines of the paper's
// Table I as parameter sets for the network model. The constants are chosen
// to echo the published hardware characteristics (interconnect generation,
// per-node bandwidth, core counts), not to match any measured microsecond
// values: what matters for reproducing the paper is that the machines induce
// different cost surfaces and therefore different best algorithms.
package machine

import (
	"fmt"
	"sort"

	"mpicollpred/internal/netmodel"
)

// Machine bundles a machine profile: its size limits and network parameters.
type Machine struct {
	Name   string
	MaxN   int // compute nodes available to us
	MaxPPN int // cores (= max processes) per node
	// BenchBudget is the per-configuration ReproMPI time budget in seconds
	// used on this machine (paper §V: 0.5 s on SuperMUC-NG, 1 s elsewhere).
	BenchBudget float64
	Net         netmodel.Params
	// RefNet is the slightly different "reference system" on which the
	// simulated vendor (Intel-style) decision tables were tuned. It stands
	// in for the vendor's internal tuning cluster.
	RefNet netmodel.Params
}

// Hydra models the dual-rail Intel OmniPath cluster (36 nodes, 2x16-core
// Xeon Gold 6130): low latency, very high per-node injection bandwidth.
func Hydra() Machine {
	p := netmodel.Params{
		LInter: 1.10e-6, GInter: 1.0 / 11.0e9, GNic: 1.0 / 21.0e9,
		LIntra: 0.35e-6, GIntra: 1.0 / 9.0e9, GMem: 1.0 / 30.0e9,
		OSend: 0.35e-6, ORecv: 0.40e-6, OByte: 0.05e-9, Gamma: 1.0 / 6.0e9,
		Eager: 16384, RendezvousL: 2.2e-6, Sigma: 0.06,
	}
	return Machine{Name: "Hydra", MaxN: 36, MaxPPN: 32, BenchBudget: 1.0, Net: p, RefNet: p.Perturb(0.92, 1.07)}
}

// Jupiter models the older AMD Opteron 6134 cluster with single-rail QDR
// InfiniBand (35 nodes, 16 cores/node): higher latency, ~1/6 the bandwidth
// of Hydra, slower cores.
func Jupiter() Machine {
	p := netmodel.Params{
		LInter: 1.60e-6, GInter: 1.0 / 3.2e9, GNic: 1.0 / 3.4e9,
		LIntra: 0.50e-6, GIntra: 1.0 / 5.0e9, GMem: 1.0 / 12.0e9,
		OSend: 0.60e-6, ORecv: 0.70e-6, OByte: 0.09e-9, Gamma: 1.0 / 3.0e9,
		Eager: 12288, RendezvousL: 3.4e-6, Sigma: 0.08,
	}
	return Machine{Name: "Jupiter", MaxN: 35, MaxPPN: 16, BenchBudget: 1.0, Net: p, RefNet: p.Perturb(0.90, 1.10)}
}

// SuperMUCNG models the SuperMUC-NG islands (Skylake Platinum 8174, 48
// cores/node, single-rail OmniPath). We model allocations of up to 48 nodes,
// the sizes used in the paper's dataset d8.
func SuperMUCNG() Machine {
	p := netmodel.Params{
		LInter: 1.05e-6, GInter: 1.0 / 11.0e9, GNic: 1.0 / 11.5e9,
		LIntra: 0.30e-6, GIntra: 1.0 / 10.0e9, GMem: 1.0 / 40.0e9,
		OSend: 0.30e-6, ORecv: 0.35e-6, OByte: 0.04e-9, Gamma: 1.0 / 7.0e9,
		Eager: 16384, RendezvousL: 2.1e-6, Sigma: 0.05,
	}
	return Machine{Name: "SuperMUC-NG", MaxN: 48, MaxPPN: 48, BenchBudget: 0.5, Net: p, RefNet: p.Perturb(0.95, 1.05)}
}

// ByName returns the named machine profile.
func ByName(name string) (Machine, error) {
	for _, m := range All() {
		if m.Name == name {
			return m, nil
		}
	}
	return Machine{}, fmt.Errorf("machine: unknown machine %q", name)
}

// All returns every machine profile, ordered as in the paper's Table I.
func All() []Machine {
	return []Machine{Hydra(), Jupiter(), SuperMUCNG()}
}

// Names returns the sorted machine names.
func Names() []string {
	ms := All()
	out := make([]string, len(ms))
	for i, m := range ms {
		out[i] = m.Name
	}
	sort.Strings(out)
	return out
}

// Topo returns a Topology for nodes × ppn on this machine, validating the
// allocation against the machine limits.
func (m Machine) Topo(nodes, ppn int) (netmodel.Topology, error) {
	if nodes < 1 || nodes > m.MaxN {
		return netmodel.Topology{}, fmt.Errorf("machine %s: node count %d out of range [1,%d]", m.Name, nodes, m.MaxN)
	}
	if ppn < 1 || ppn > m.MaxPPN {
		return netmodel.Topology{}, fmt.Errorf("machine %s: ppn %d out of range [1,%d]", m.Name, ppn, m.MaxPPN)
	}
	return netmodel.Topology{Nodes: nodes, PPN: ppn}, nil
}
