package machine

import "testing"

func TestAllMachinesDistinct(t *testing.T) {
	ms := All()
	if len(ms) != 3 {
		t.Fatalf("expected 3 machines, got %d", len(ms))
	}
	seen := map[string]bool{}
	for _, m := range ms {
		if seen[m.Name] {
			t.Fatalf("duplicate machine %s", m.Name)
		}
		seen[m.Name] = true
		if m.MaxN <= 0 || m.MaxPPN <= 0 {
			t.Errorf("%s: bad limits", m.Name)
		}
		if m.Net.LInter <= 0 || m.Net.GInter <= 0 || m.Net.Gamma <= 0 {
			t.Errorf("%s: non-positive parameters", m.Name)
		}
		if m.RefNet == m.Net {
			t.Errorf("%s: reference system must differ from the machine", m.Name)
		}
	}
}

func TestTableIShape(t *testing.T) {
	h, j, s := Hydra(), Jupiter(), SuperMUCNG()
	// Hydra (dual-rail OmniPath) has more node bandwidth than Jupiter (QDR).
	if !(h.Net.GNic < j.Net.GNic) {
		t.Error("Hydra should have lower per-byte NIC gap than Jupiter")
	}
	// Core counts per node: 16 (Jupiter) < 32 (Hydra) < 48 (SuperMUC-NG).
	if !(j.MaxPPN < h.MaxPPN && h.MaxPPN < s.MaxPPN) {
		t.Error("ppn ordering per Table I broken")
	}
	if j.MaxPPN != 16 || h.MaxPPN != 32 || s.MaxPPN != 48 {
		t.Errorf("ppn values: got %d %d %d", j.MaxPPN, h.MaxPPN, s.MaxPPN)
	}
}

func TestByName(t *testing.T) {
	if _, err := ByName("Hydra"); err != nil {
		t.Fatal(err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("expected error for unknown machine")
	}
}

func TestTopoValidation(t *testing.T) {
	h := Hydra()
	if _, err := h.Topo(36, 32); err != nil {
		t.Errorf("max allocation must be valid: %v", err)
	}
	if _, err := h.Topo(37, 32); err == nil {
		t.Error("expected node range error")
	}
	if _, err := h.Topo(4, 33); err == nil {
		t.Error("expected ppn range error")
	}
	if _, err := h.Topo(0, 1); err == nil {
		t.Error("expected error for zero nodes")
	}
}
