package retrain

import "testing"

// TestDetectorSingleOutlierIsNotDrift: one wildly wrong observation in an
// otherwise healthy stream must never declare drift — the hysteresis and
// the EWMA both have to agree.
func TestDetectorSingleOutlierIsNotDrift(t *testing.T) {
	d := newDetector(DetectorOptions{})
	for i := 0; i < 100; i++ {
		relErr := 0.05
		if i == 50 {
			relErr = 25.0 // a single 25x outlier mid-stream
		}
		if d.observe("m", relErr) {
			t.Fatalf("drift declared at observation %d from a single outlier", i)
		}
	}
	if st := d.models["m"]; st.drifts != 0 || st.errorEvents != 1 {
		t.Fatalf("outlier accounting wrong: drifts=%d events=%d", st.drifts, st.errorEvents)
	}
}

// TestDetectorSustainedBreachIsDrift: a stream that goes permanently wrong
// declares drift exactly once (until reset), after warm-up plus hysteresis.
func TestDetectorSustainedBreachIsDrift(t *testing.T) {
	d := newDetector(DetectorOptions{MinEvents: 8, Hysteresis: 4})
	for i := 0; i < 20; i++ {
		if d.observe("m", 0.02) {
			t.Fatalf("drift declared on healthy stream at %d", i)
		}
	}
	declaredAt := -1
	for i := 0; i < 60; i++ {
		if d.observe("m", -0.8) {
			if declaredAt >= 0 {
				t.Fatalf("drift declared twice (at %d and %d) without a reset", declaredAt, i)
			}
			declaredAt = i
		}
	}
	if declaredAt < 0 {
		t.Fatalf("sustained breach never declared drift")
	}
	if st := d.models["m"]; st.drifts != 1 {
		t.Fatalf("drifts=%d after one sustained episode", st.drifts)
	}
}

// TestDetectorBreachMustBeConsecutive: a stream that oscillates in and out
// of breach never satisfies the hysteresis.
func TestDetectorBreachMustBeConsecutive(t *testing.T) {
	d := newDetector(DetectorOptions{MinEvents: 4, Hysteresis: 6, Alpha: 0.5})
	for i := 0; i < 200; i++ {
		// Alternate hard error and clean observation: the high alpha pulls
		// the EWMA across the breach line and back every step, so the
		// breach streak can never reach 6.
		relErr := 0.0
		if i%2 == 0 {
			relErr = 2.0
		}
		if d.observe("m", relErr) {
			t.Fatalf("oscillating stream declared drift at %d", i)
		}
	}
}

// TestDetectorResetRearms: after reset, the warm-up applies again and a new
// sustained breach declares a second drift.
func TestDetectorResetRearms(t *testing.T) {
	d := newDetector(DetectorOptions{MinEvents: 8, Hysteresis: 4})
	first := -1
	for i := 0; i < 40 && first < 0; i++ {
		if d.observe("m", -0.8) {
			first = i
		}
	}
	if first < 0 {
		t.Fatalf("first drift never declared")
	}
	d.reset("m", 7)
	if st := d.models["m"]; st.minGen != 7 || st.breachStreak != 0 {
		t.Fatalf("reset state wrong: minGen=%d streak=%d", st.minGen, st.breachStreak)
	}
	// Immediately after reset the monitor is in warm-up: the first few
	// breach-grade observations must not declare.
	for i := 0; i < 4; i++ {
		if d.observe("m", -0.8) {
			t.Fatalf("drift declared during post-reset warm-up")
		}
	}
	second := false
	for i := 0; i < 40 && !second; i++ {
		second = d.observe("m", -0.8)
	}
	if !second {
		t.Fatalf("second sustained breach never declared drift after reset")
	}
	// reset never lowers the generation floor.
	d.reset("m", 3)
	if st := d.models["m"]; st.minGen != 7 {
		t.Fatalf("reset lowered minGen to %d", st.minGen)
	}
}
