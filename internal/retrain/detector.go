// Drift detection: the loop turns each observed-vs-predicted comparison
// into a boolean error event (|relative error| above tolerance) and feeds a
// per-model EWMA rate monitor — the same primitive the serving telemetry
// uses — plus a hysteresis counter on top: drift is declared only after the
// monitor has sat at breach for several consecutive observations, so a
// single outlier measurement can never trigger a retraining cycle.

package retrain

import (
	"sort"

	"mpicollpred/internal/obs"
)

// DetectorOptions tunes the per-model drift detector.
type DetectorOptions struct {
	// Tolerance is the |relative error| above which one observation counts
	// as an error event (default 0.5: observed more than ~2x/0.5x off).
	Tolerance float64
	// Alpha is the EWMA weight of a new event (default 0.2 — the retrain
	// loop sees far fewer events than the request path, so it forgets
	// faster than the serving monitors).
	Alpha float64
	// Warn and Breach are EWMA error-rate thresholds (defaults 0.3, 0.5).
	Warn, Breach float64
	// MinEvents is the monitor warm-up: below it the level stays ok
	// (default 8).
	MinEvents uint64
	// Hysteresis is how many consecutive observations must sit at breach
	// before drift is declared (default 4).
	Hysteresis int
}

func (o *DetectorOptions) defaults() {
	if o.Tolerance <= 0 {
		o.Tolerance = 0.5
	}
	if o.Alpha <= 0 {
		o.Alpha = 0.2
	}
	if o.Warn <= 0 {
		o.Warn = 0.3
	}
	if o.Breach <= 0 {
		o.Breach = 0.5
	}
	if o.MinEvents == 0 {
		o.MinEvents = 8
	}
	if o.Hysteresis <= 0 {
		o.Hysteresis = 4
	}
}

// modelState is one served model's detector state. It is guarded by the
// loop's mutex, not its own.
type modelState struct {
	monitor      *obs.RateMonitor
	breachStreak int
	observations uint64
	errorEvents  uint64
	drifts       uint64
	// minGen ignores audit records from generations before the last
	// deploy: they were decided by the replaced model and would re-trigger
	// drift against the new one.
	minGen     uint64
	lastRelErr float64
}

// detector owns the per-model drift state.
type detector struct {
	opts   DetectorOptions
	models map[string]*modelState
}

func newDetector(opts DetectorOptions) *detector {
	opts.defaults()
	return &detector{opts: opts, models: map[string]*modelState{}}
}

func (d *detector) state(model string) *modelState {
	st := d.models[model]
	if st == nil {
		st = &modelState{monitor: obs.NewRateMonitor(d.opts.Alpha, d.opts.Warn, d.opts.Breach)}
		st.monitor.SetMinEvents(d.opts.MinEvents)
		d.models[model] = st
	}
	return st
}

// observe feeds one comparison and reports whether drift is declared by it:
// the monitor must be at breach for Hysteresis consecutive observations.
// Returns false for every observation after the declaring one until reset —
// a cycle is already running or just failed; re-declaring immediately would
// hot-loop the retrainer.
func (d *detector) observe(model string, relErr float64) bool {
	st := d.state(model)
	st.observations++
	st.lastRelErr = relErr
	event := abs(relErr) > d.opts.Tolerance
	if event {
		st.errorEvents++
	}
	st.monitor.Observe(event)
	if st.monitor.Level() == obs.LevelBreach {
		st.breachStreak++
	} else {
		st.breachStreak = 0
	}
	if st.breachStreak == d.opts.Hysteresis {
		st.drifts++
		return true
	}
	return false
}

// reset re-arms a model's detector after a deploy attempt: a fresh monitor
// (full warm-up again) and a generation floor below which audit records are
// ignored as stale.
func (d *detector) reset(model string, minGen uint64) {
	st := d.state(model)
	st.monitor = obs.NewRateMonitor(d.opts.Alpha, d.opts.Warn, d.opts.Breach)
	st.monitor.SetMinEvents(d.opts.MinEvents)
	st.breachStreak = 0
	if minGen > st.minGen {
		st.minGen = minGen
	}
}

// names returns the tracked model names, sorted.
func (d *detector) names() []string {
	out := make([]string, 0, len(d.models))
	for name := range d.models {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
