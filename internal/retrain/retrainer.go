// The incremental retrainer: when drift is declared for a model, every
// selectable configuration is re-measured on the drifted machine over the
// instance cells the loop actually observed, the fresh samples are upserted
// into the model's dataset (held to the same row validation as a loaded
// cache), and exactly the refreshed configurations are refit on the shared
// fit pool. Re-measuring ALL configurations — not just the served winners —
// matters for convergence: the post-deploy argmin ranges over the whole
// portfolio, and a stale loser with an optimistic model would win the next
// selection and re-trigger drift forever.

package retrain

import (
	"fmt"
	"sort"

	"mpicollpred/internal/bench"
	"mpicollpred/internal/core"
	"mpicollpred/internal/dataset"
	"mpicollpred/internal/fault"
	"mpicollpred/internal/sim"
)

// cell is one observed (nodes, ppn, msize) instance.
type cell struct {
	nodes, ppn int
	msize      int64
}

// Candidate describes one retrained snapshot ready to deploy.
type Candidate struct {
	// Model is the registry name the candidate replaces (e.g. "d1-gam").
	Model string `json:"model"`
	// Path is the candidate snapshot file.
	Path string `json:"path"`
	// ReplacesPath is the snapshot file the candidate was refit from.
	ReplacesPath string `json:"replaces_path"`
	// Cells is how many observed instance cells were re-measured.
	Cells int `json:"cells"`
	// RefitConfigs is how many configurations were refit.
	RefitConfigs int `json:"refit_configs"`
	// Samples is how many fresh samples entered the dataset (replaced or
	// appended).
	Samples int `json:"samples"`
	// DatasetHashMatched reports whether the regenerated dataset's content
	// hash matched the base snapshot's fingerprint before the upserts —
	// false means the base was trained on data this loop cannot reproduce,
	// and the candidate's lineage is a fresh fingerprint rather than an
	// increment of the old one.
	DatasetHashMatched bool `json:"dataset_hash_matched"`
	// ProbeNodes/ProbePPNs/ProbeMsizes are the distinct values of the
	// observed cells, sorted — the instance pool a canary rollout should
	// probe the candidate on. The cells are in the training envelope by
	// construction (the base model predicted on them without fallback), so
	// probing them gates on real behavior instead of tripping the canary's
	// fallback monitor with out-of-envelope instances.
	ProbeNodes  []int   `json:"probe_nodes"`
	ProbePPNs   []int   `json:"probe_ppns"`
	ProbeMsizes []int64 `json:"probe_msizes"`
}

// probePools extracts the sorted distinct node, ppn, and message-size
// values of the observed cells.
func probePools(cells []cell) ([]int, []int, []int64) {
	ns, ps := map[int]struct{}{}, map[int]struct{}{}
	ms := map[int64]struct{}{}
	for _, c := range cells {
		ns[c.nodes] = struct{}{}
		ps[c.ppn] = struct{}{}
		ms[c.msize] = struct{}{}
	}
	nodes := make([]int, 0, len(ns))
	for n := range ns {
		nodes = append(nodes, n)
	}
	sort.Ints(nodes)
	ppns := make([]int, 0, len(ps))
	for p := range ps {
		ppns = append(ppns, p)
	}
	sort.Ints(ppns)
	msizes := make([]int64, 0, len(ms))
	for m := range ms {
		msizes = append(msizes, m)
	}
	sort.Slice(msizes, func(i, j int) bool { return msizes[i] < msizes[j] })
	return nodes, ppns, msizes
}

// retrainer turns a drifted model plus its observed cells into a candidate
// snapshot.
type retrainer struct {
	cacheDir string
	outDir   string
	scale    dataset.Scale
	reps     int
	pool     *core.FitPool
	// datasets caches the working copy per dataset name; upserts accumulate
	// across cycles so later candidates keep earlier corrections.
	datasets map[string]*dataset.Dataset
	seq      map[string]int // candidate sequence per model name
}

func newRetrainer(cacheDir, outDir string, scale dataset.Scale, reps int, pool *core.FitPool) *retrainer {
	if scale == "" {
		scale = dataset.ScaleSmoke
	}
	if reps <= 0 {
		reps = 2
	}
	return &retrainer{cacheDir: cacheDir, outDir: outDir, scale: scale, reps: reps,
		pool: pool, datasets: map[string]*dataset.Dataset{}, seq: map[string]int{}}
}

// dataset returns the working dataset for a fingerprint, loading (or
// deterministically regenerating) it on first use.
func (rt *retrainer) dataset(name string) (*dataset.Dataset, error) {
	if ds := rt.datasets[name]; ds != nil {
		return ds, nil
	}
	ds, err := dataset.LoadOrGenerate(rt.cacheDir, name, rt.scale, nil)
	if err != nil {
		return nil, fmt.Errorf("retrain: dataset %s: %w", name, err)
	}
	rt.datasets[name] = ds
	return ds, nil
}

// cycle re-measures the observed cells under plan, updates the dataset, and
// refits the affected configurations of the snapshot at basePath. The
// candidate file lands in outDir as <model>.retrain<NNN>.snap.
func (rt *retrainer) cycle(model, basePath string, cells []cell, plan *fault.Plan) (*Candidate, error) {
	if len(cells) == 0 {
		return nil, fmt.Errorf("retrain: cycle for %s with no observed cells", model)
	}
	base, fp, err := core.LoadSnapshot(basePath)
	if err != nil {
		return nil, fmt.Errorf("retrain: loading base snapshot: %w", err)
	}
	ds, err := rt.dataset(fp.Dataset)
	if err != nil {
		return nil, err
	}
	spec, err := dataset.SpecByName(fp.Dataset, rt.scale)
	if err != nil {
		return nil, fmt.Errorf("retrain: %w", err)
	}
	mach, set, err := spec.Resolve()
	if err != nil {
		return nil, fmt.Errorf("retrain: resolving %s: %w", fp.Dataset, err)
	}

	cand := &Candidate{Model: model, ReplacesPath: basePath, Cells: len(cells),
		DatasetHashMatched: ds.Hash() == fp.DatasetHash}
	cand.ProbeNodes, cand.ProbePPNs, cand.ProbeMsizes = probePools(cells)

	// Measure the drifted machine: every selectable configuration over
	// every observed cell, deterministic per (config, cell) regardless of
	// the order drift was noticed in.
	sort.Slice(cells, func(i, j int) bool {
		a, b := cells[i], cells[j]
		if a.nodes != b.nodes {
			return a.nodes < b.nodes
		}
		if a.ppn != b.ppn {
			return a.ppn < b.ppn
		}
		return a.msize < b.msize
	})
	bo := bench.DefaultOptions(mach.Name)
	bo.MaxReps = rt.reps
	bo.Faults = plan
	runner := bench.NewRunner(bo)
	refit := map[int]bool{}
	for _, cfg := range set.Selectable() {
		for _, c := range cells {
			topo, err := mach.Topo(c.nodes, c.ppn)
			if err != nil {
				return nil, fmt.Errorf("retrain: topology %dx%d: %w", c.nodes, c.ppn, err)
			}
			seed := sim.DomainSeed(sim.DomainRetrain,
				uint64(cfg.ID), uint64(c.nodes), uint64(c.ppn), uint64(c.msize))
			meas, err := runner.MeasureCapped(cfg, mach.Net, topo, c.msize, seed, rt.reps)
			if err != nil {
				return nil, fmt.Errorf("retrain: measuring config %d on %dx%d m=%d: %w",
					cfg.ID, c.nodes, c.ppn, c.msize, err)
			}
			s := dataset.Sample{
				ConfigID: cfg.ID, AlgID: cfg.AlgID,
				Nodes: c.nodes, PPN: c.ppn, Msize: c.msize,
				Time: meas.Median(), Reps: meas.Reps(),
				Consumed: meas.Consumed, Exhausted: meas.Exhausted,
			}
			if _, err := ds.Upsert(s); err != nil {
				return nil, fmt.Errorf("retrain: %w", err)
			}
			cand.Samples++
			refit[cfg.ID] = true
		}
	}

	ids := make([]int, 0, len(refit))
	for id := range refit {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	cand.RefitConfigs = len(ids)
	next, err := core.Refit(base, ds, set, ids, rt.pool)
	if err != nil {
		return nil, err
	}

	rt.seq[model]++
	cand.Path = fmt.Sprintf("%s/%s.retrain%03d.snap", rt.outDir, model, rt.seq[model])
	nfp := core.FingerprintFor(ds, fp.Learner, base.TrainNodes)
	if err := next.SaveSnapshot(cand.Path, nfp); err != nil {
		return nil, fmt.Errorf("retrain: saving candidate: %w", err)
	}
	return cand, nil
}
