// The observation inlet: every audited decision is re-measured through the
// simulator playing the role of the real machine. Installing a fault plan
// into the measurement runner makes the "machine" drift away from what the
// served models were trained on — the knob the drift scenario and the CI
// smoke turn. Measurement seeds come from the retrain domain of the seed
// registry, so observation streams never collide with benchmarking or
// audit-replay streams for the same instance.

package retrain

import (
	"fmt"

	"mpicollpred/internal/audit"
	"mpicollpred/internal/bench"
	"mpicollpred/internal/fault"
	"mpicollpred/internal/machine"
	"mpicollpred/internal/mpilib"
	"mpicollpred/internal/sim"
)

// obsWorld is one resolved (machine, lib, collective) measurement context.
type obsWorld struct {
	mach   machine.Machine
	set    *mpilib.CollectiveSet
	runner *bench.Runner
}

// obsKey identifies one measurement; served predictions do not enter it —
// the observed runtime depends only on what ran where.
type obsKey struct {
	mach, lib, coll string
	nodes, ppn      int
	msize           int64
	configID        int
}

// observerMemoCap bounds the measurement memo. Real tuning traffic repeats
// a small instance pool, so the memo normally saturates far below the cap;
// when it does fill, it is cleared wholesale — deterministic given the
// record order, unlike any usage-based eviction.
const observerMemoCap = 4096

// observer measures audited decisions in the simulator.
type observer struct {
	reps   int
	plan   *fault.Plan // nil = faithful machine, non-nil = drifted machine
	worlds map[[3]string]*obsWorld
	memo   map[obsKey]float64
	resets uint64
}

func newObserver(reps int, plan *fault.Plan) *observer {
	if reps <= 0 {
		reps = 2
	}
	return &observer{reps: reps, plan: plan,
		worlds: map[[3]string]*obsWorld{}, memo: map[obsKey]float64{}}
}

// setPlan swaps the fault plan mid-run (the scenario's machine shift). The
// memo and resolved runners measure the old machine, so both are dropped.
func (o *observer) setPlan(plan *fault.Plan) {
	o.plan = plan
	o.worlds = map[[3]string]*obsWorld{}
	o.memo = map[obsKey]float64{}
}

func (o *observer) world(mach, lib, coll string) (*obsWorld, error) {
	wk := [3]string{mach, lib, coll}
	if w := o.worlds[wk]; w != nil {
		return w, nil
	}
	m, err := machine.ByName(mach)
	if err != nil {
		return nil, fmt.Errorf("retrain: observe machine: %w", err)
	}
	l, err := mpilib.ByName(lib)
	if err != nil {
		return nil, fmt.Errorf("retrain: observe library: %w", err)
	}
	set, err := l.Collective(coll)
	if err != nil {
		return nil, fmt.Errorf("retrain: observe collective: %w", err)
	}
	bo := bench.DefaultOptions(m.Name)
	bo.MaxReps = o.reps
	bo.Faults = o.plan
	w := &obsWorld{mach: m, set: set, runner: bench.NewRunner(bo)}
	o.worlds[wk] = w
	return w, nil
}

// observe re-measures one audited decision and returns the observed
// runtime in seconds.
func (o *observer) observe(rec audit.Record) (float64, error) {
	k := obsKey{mach: rec.Machine, lib: rec.Lib, coll: rec.Coll,
		nodes: rec.Nodes, ppn: rec.PPN, msize: rec.Msize, configID: rec.ConfigID}
	if t, ok := o.memo[k]; ok {
		return t, nil
	}
	w, err := o.world(rec.Machine, rec.Lib, rec.Coll)
	if err != nil {
		return 0, err
	}
	cfg, err := w.set.Config(rec.ConfigID)
	if err != nil {
		return 0, fmt.Errorf("retrain: observe config %d: %w", rec.ConfigID, err)
	}
	topo, err := w.mach.Topo(rec.Nodes, rec.PPN)
	if err != nil {
		return 0, fmt.Errorf("retrain: observe topology %dx%d: %w", rec.Nodes, rec.PPN, err)
	}
	seed := sim.DomainSeed(sim.DomainRetrain,
		uint64(rec.ConfigID), uint64(rec.Nodes), uint64(rec.PPN), uint64(rec.Msize))
	meas, err := w.runner.MeasureCapped(cfg, w.mach.Net, topo, rec.Msize, seed, o.reps)
	if err != nil {
		return 0, fmt.Errorf("retrain: observing %s %dx%d m=%d: %w",
			rec.Model, rec.Nodes, rec.PPN, rec.Msize, err)
	}
	t := meas.Median()
	if len(o.memo) >= observerMemoCap {
		o.memo = map[obsKey]float64{}
		o.resets++
	}
	o.memo[k] = t
	return t, nil
}
