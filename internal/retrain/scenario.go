// The drift-recovery scenario: a fully in-process, fully seeded run of the
// whole loop. Phase A serves and observes a faithful machine (errors small,
// detector ok). Phase B shifts the machine's constants via a fault plan —
// the detector must declare drift and the loop must retrain and deploy.
// Phase C keeps serving on the shifted machine with the retrained model —
// the detector must settle back to ok. The scenario runs once per fit-pool
// size and asserts the candidate snapshots are byte-identical, which is the
// experiment behind BENCH_retrain.json and results/drift_recovery.txt.

package retrain

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"mpicollpred/internal/audit"
	"mpicollpred/internal/core"
	"mpicollpred/internal/dataset"
	"mpicollpred/internal/fault"
	"mpicollpred/internal/sim"
	"mpicollpred/internal/tablefmt"
)

// ScenarioOptions configures a drift-recovery run.
type ScenarioOptions struct {
	// DatasetName / Learner pick the model (defaults "d1", "gam").
	DatasetName string
	Learner     string
	// Scale is the dataset scale (default smoke — the scenario is a CI
	// artifact, not a benchmark).
	Scale dataset.Scale
	// CacheDir is the dataset cache; WorkDir receives snapshots and
	// candidates. Both required.
	CacheDir string
	WorkDir  string
	// TrainNodes is the training split (default 2,3,4,5 — the smoke grid).
	TrainNodes []int
	// Drift is the machine-shift fault plan spec
	// (default "straggler:node=0,factor=4").
	Drift string
	// PhaseRecords is the record count of phases A and C; phase B feeds up
	// to 4x this many before giving up on detection (default 48).
	PhaseRecords int
	// Seed keys the served instance sequence.
	Seed uint64
	// FitWorkers are the pool sizes the scenario cross-checks for
	// byte-identical candidates (default 1 and 4).
	FitWorkers []int
	// Detector overrides the loop's drift thresholds (zero = loop
	// defaults).
	Detector DetectorOptions
}

func (o *ScenarioOptions) defaults() error {
	if o.DatasetName == "" {
		o.DatasetName = "d1"
	}
	if o.Learner == "" {
		o.Learner = "gam"
	}
	if o.Scale == "" {
		o.Scale = dataset.ScaleSmoke
	}
	if o.CacheDir == "" || o.WorkDir == "" {
		return fmt.Errorf("retrain: scenario needs CacheDir and WorkDir")
	}
	if len(o.TrainNodes) == 0 {
		o.TrainNodes = []int{2, 3, 4, 5}
	}
	if o.Drift == "" {
		o.Drift = "straggler:node=0,factor=4"
	}
	if o.PhaseRecords <= 0 {
		o.PhaseRecords = 48
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if len(o.FitWorkers) == 0 {
		o.FitWorkers = []int{1, 4}
	}
	return nil
}

// PhaseStats summarizes one scenario phase.
type PhaseStats struct {
	Phase        string  `json:"phase"`
	Records      int     `json:"records"`
	Observations uint64  `json:"observations"`
	ErrorEvents  uint64  `json:"error_events"`
	EndErrorRate float64 `json:"end_error_rate"`
	EndLevel     string  `json:"end_level"`
}

// ScenarioReport is the BENCH_retrain.json payload. It contains no
// timestamps or wall-clock durations — the same options always render the
// same bytes.
type ScenarioReport struct {
	Dataset       string       `json:"dataset"`
	Learner       string       `json:"learner"`
	Drift         string       `json:"drift"`
	TrainNodes    []int        `json:"train_nodes"`
	FitWorkers    []int        `json:"fit_workers"`
	Phases        []PhaseStats `json:"phases"` // from the first pass
	DriftDetected bool         `json:"drift_detected"`
	DetectedAfter uint64       `json:"detected_after_observations"`
	Cycles        uint64       `json:"cycles"`
	DeployOutcome string       `json:"deploy_outcome"`
	Candidate     *Candidate   `json:"candidate"`
	Recovered     bool         `json:"recovered"`
	Deterministic bool         `json:"deterministic"`
	CandidateSize int          `json:"candidate_size_bytes"`

	// candidateFile is the pass-local candidate path (excluded from the
	// JSON report, which must be byte-stable across working directories).
	candidateFile string
}

// scenarioReloader is the scenario's in-process serving stand-in: it tracks
// the deployed path set and generation, and re-resolves the live selector
// on reload exactly like a server would.
type scenarioReloader struct {
	paths []string
	gen   uint64
	sel   *core.Selector
}

func (r *scenarioReloader) SnapshotPaths() []string { return append([]string(nil), r.paths...) }

func (r *scenarioReloader) ReloadPaths(paths []string) error {
	if len(paths) != 1 {
		return fmt.Errorf("retrain: scenario serves exactly one snapshot, got %d", len(paths))
	}
	sel, _, err := core.LoadSnapshot(paths[0])
	if err != nil {
		return err
	}
	r.paths = append([]string(nil), paths...)
	r.sel = sel
	r.gen++
	return nil
}

// RunScenario executes the drift-recovery scenario once per fit-pool size
// and cross-checks the runs.
func RunScenario(opts ScenarioOptions) (*ScenarioReport, error) {
	if err := opts.defaults(); err != nil {
		return nil, err
	}
	plan, err := fault.Parse(opts.Drift)
	if err != nil {
		return nil, fmt.Errorf("retrain: scenario drift plan: %w", err)
	}

	var rep *ScenarioReport
	var candBytes [][]byte
	for _, workers := range opts.FitWorkers {
		passRep, cand, err := runScenarioPass(opts, plan, workers)
		if err != nil {
			return nil, fmt.Errorf("retrain: scenario with %d fit workers: %w", workers, err)
		}
		candBytes = append(candBytes, cand)
		if rep == nil {
			rep = passRep
		}
	}
	rep.FitWorkers = opts.FitWorkers
	rep.Deterministic = true
	for _, b := range candBytes[1:] {
		if !bytes.Equal(candBytes[0], b) {
			rep.Deterministic = false
		}
	}
	rep.CandidateSize = len(candBytes[0])
	return rep, nil
}

// runScenarioPass runs the three phases on one fit pool and returns the
// report plus the candidate snapshot's bytes.
func runScenarioPass(opts ScenarioOptions, plan *fault.Plan, workers int) (*ScenarioReport, []byte, error) {
	dir := filepath.Join(opts.WorkDir, fmt.Sprintf("w%d", workers))
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, err
	}
	ds, err := dataset.LoadOrGenerate(opts.CacheDir, opts.DatasetName, opts.Scale, nil)
	if err != nil {
		return nil, nil, err
	}
	spec, err := dataset.SpecByName(opts.DatasetName, opts.Scale)
	if err != nil {
		return nil, nil, err
	}
	mach, set, err := spec.Resolve()
	if err != nil {
		return nil, nil, err
	}
	pool := core.NewFitPool(workers)
	defer pool.Close()
	sel, err := core.TrainPool(ds, set, opts.Learner, opts.TrainNodes, pool)
	if err != nil {
		return nil, nil, err
	}
	sel.SetFallback(mach, set)
	basePath := filepath.Join(dir, "base.snap")
	if err := sel.SaveSnapshot(basePath, core.FingerprintFor(ds, opts.Learner, opts.TrainNodes)); err != nil {
		return nil, nil, err
	}

	rel := &scenarioReloader{paths: []string{basePath}, gen: 1, sel: sel}
	loop, err := New(Options{
		Reloader: rel,
		OutDir:   dir,
		CacheDir: opts.CacheDir,
		Scale:    opts.Scale,
		Pool:     pool,
		Detector: opts.Detector,
		// Loop behavior never reads the clock; pin it so even the unused
		// default seam stays out of the scenario.
		Clock: func() time.Time { return time.UnixMicro(1) },
	})
	if err != nil {
		return nil, nil, err
	}

	model := opts.DatasetName + "-" + opts.Learner
	rep := &ScenarioReport{Dataset: opts.DatasetName, Learner: opts.Learner,
		Drift: opts.Drift, TrainNodes: opts.TrainNodes}

	// serve produces one audit record: a selection by the live model on a
	// drawn instance.
	seq := 0
	serve := func(rng *sim.RNG) audit.Record {
		seq++
		n := spec.Nodes[rng.Intn(len(spec.Nodes))]
		ppn := spec.PPNs[rng.Intn(len(spec.PPNs))]
		m := spec.Msizes[rng.Intn(len(spec.Msizes))]
		pred := rel.sel.Select(n, ppn, m)
		rec := audit.Record{
			V: audit.SchemaVersion, TimeUnixUs: int64(seq), Endpoint: "select",
			RequestID: fmt.Sprintf("scen-%d", seq),
			Model:     model, Coll: spec.Coll, Lib: spec.Lib, Machine: spec.Machine,
			Dataset: opts.DatasetName, Generation: rel.gen,
			Nodes: n, PPN: ppn, Msize: m,
			ConfigID: pred.ConfigID, AlgID: pred.AlgID, Label: pred.Label,
			Fallback: pred.Fallback, FallbackReason: pred.FallbackReason,
		}
		if !pred.Fallback {
			p := pred.Predicted
			rec.PredictedSeconds = &p
		}
		return rec
	}
	modelStats := func() (obsN, errN uint64, rate float64, level string) {
		for _, ms := range loop.Status().Models {
			if ms.Model == model {
				return ms.Observations, ms.ErrorEvents, ms.ErrorRate, ms.Level
			}
		}
		return 0, 0, 0, "ok"
	}
	runPhase := func(name string, records int, stop func() bool) (PhaseStats, error) {
		rng := sim.NewRNG(sim.Seed(opts.Seed, uint64(len(rep.Phases))))
		o0, e0, _, _ := modelStats()
		fed := 0
		for i := 0; i < records; i++ {
			if stop != nil && stop() {
				break
			}
			if err := loop.ProcessRecord(context.Background(), serve(rng)); err != nil {
				return PhaseStats{}, fmt.Errorf("phase %s record %d: %w", name, i, err)
			}
			fed++
		}
		o1, e1, rate, level := modelStats()
		ps := PhaseStats{Phase: name, Records: fed, Observations: o1 - o0,
			ErrorEvents: e1 - e0, EndErrorRate: rate, EndLevel: level}
		rep.Phases = append(rep.Phases, ps)
		return ps, nil
	}

	// Phase A: faithful machine.
	if _, err := runPhase("A:baseline", opts.PhaseRecords, nil); err != nil {
		return nil, nil, err
	}
	// Phase B: the machine shifts; feed until the loop completes a cycle.
	loop.SetDrift(plan)
	obsBefore := loop.Status().Observations
	if _, err := runPhase("B:drift", 4*opts.PhaseRecords, func() bool {
		return loop.Status().Cycles > 0 && loop.state == StateObserving
	}); err != nil {
		return nil, nil, err
	}
	st := loop.Status()
	rep.Cycles = st.Cycles
	if st.LastCycle != nil {
		rep.DriftDetected = true
		rep.DetectedAfter = st.Observations - obsBefore
		rep.DeployOutcome = st.LastCycle.Outcome
		if st.LastCycle.Cand != nil {
			// Strip run-local directories so the JSON report is byte-stable
			// across working directories.
			c := *st.LastCycle.Cand
			candPath := c.Path
			c.Path = filepath.Base(c.Path)
			c.ReplacesPath = filepath.Base(c.ReplacesPath)
			rep.Candidate = &c
			rep.candidateFile = candPath
		}
	}
	if !rep.DriftDetected || rep.DeployOutcome != "reloaded" {
		return nil, nil, fmt.Errorf("drift never detected and deployed (cycles=%d, outcome=%q)",
			rep.Cycles, rep.DeployOutcome)
	}
	// Phase C: still-shifted machine, retrained model.
	psC, err := runPhase("C:recovered", opts.PhaseRecords, nil)
	if err != nil {
		return nil, nil, err
	}
	rep.Recovered = psC.EndLevel == "ok" && loop.Status().Cycles == rep.Cycles

	cand, err := os.ReadFile(rep.candidateFile)
	if err != nil {
		return nil, nil, err
	}
	return rep, cand, nil
}

// Render formats the report as byte-stable text for
// results/drift_recovery.txt.
func (r *ScenarioReport) Render() string {
	t := &tablefmt.Table{
		Title:   fmt.Sprintf("Drift recovery: %s-%s under %q", r.Dataset, r.Learner, r.Drift),
		Headers: []string{"phase", "records", "observations", "error events", "end rate", "end level"},
	}
	for _, p := range r.Phases {
		t.AddRow(p.Phase, tablefmt.I(p.Records), tablefmt.I(int(p.Observations)),
			tablefmt.I(int(p.ErrorEvents)), tablefmt.F(p.EndErrorRate, 3), p.EndLevel)
	}
	var b strings.Builder
	b.WriteString(t.String())
	fmt.Fprintf(&b, "\ndrift detected: %v (after %d observations of the shifted machine)\n",
		r.DriftDetected, r.DetectedAfter)
	if r.Candidate != nil {
		fmt.Fprintf(&b, "candidate: %d cells re-measured, %d samples upserted, %d configurations refit\n",
			r.Candidate.Cells, r.Candidate.Samples, r.Candidate.RefitConfigs)
	}
	fmt.Fprintf(&b, "deploy outcome: %s\n", r.DeployOutcome)
	fmt.Fprintf(&b, "recovered (detector ok on retrained model): %v\n", r.Recovered)
	fmt.Fprintf(&b, "byte-identical candidates across fit pools %v: %v (%d bytes)\n",
		r.FitWorkers, r.Deterministic, r.CandidateSize)
	return b.String()
}
