package retrain

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"mpicollpred/internal/audit"
	"mpicollpred/internal/core"
	"mpicollpred/internal/dataset"
	"mpicollpred/internal/fault"
)

// trainBase trains a smoke-scale d1 gam selector and saves it as a
// snapshot, returning the snapshot path and the shared dataset cache dir.
func trainBase(t *testing.T, cacheDir, dir string) (string, *core.Selector, dataset.Spec) {
	t.Helper()
	ds, err := dataset.LoadOrGenerate(cacheDir, "d1", dataset.ScaleSmoke, nil)
	if err != nil {
		t.Fatal(err)
	}
	spec, err := dataset.SpecByName("d1", dataset.ScaleSmoke)
	if err != nil {
		t.Fatal(err)
	}
	mach, set, err := spec.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	trainNodes := []int{2, 3, 4, 5}
	sel, err := core.Train(ds, set, "gam", trainNodes)
	if err != nil {
		t.Fatal(err)
	}
	sel.SetFallback(mach, set)
	path := filepath.Join(dir, "base.snap")
	if err := sel.SaveSnapshot(path, core.FingerprintFor(ds, "gam", trainNodes)); err != nil {
		t.Fatal(err)
	}
	return path, sel, spec
}

// writeAuditLog serves every grid instance through sel and logs the
// decisions, mimicking what a serving process would have audited.
func writeAuditLog(t *testing.T, path string, sel *core.Selector, spec dataset.Spec) {
	t.Helper()
	clock := func() time.Time { return time.UnixMicro(1) }
	lg, err := audit.NewLogger(path, audit.LoggerOptions{Clock: clock})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = lg.Close() }()
	seq := 0
	for _, n := range spec.Nodes {
		for _, ppn := range spec.PPNs {
			for _, m := range spec.Msizes {
				seq++
				pred := sel.Select(n, ppn, m)
				rec := audit.Record{
					V: audit.SchemaVersion, TimeUnixUs: int64(seq),
					RequestID: fmt.Sprintf("t-%d", seq), Endpoint: "select",
					Model: "d1-gam", Coll: spec.Coll, Lib: spec.Lib,
					Machine: spec.Machine, Dataset: "d1", Generation: 1,
					Nodes: n, PPN: ppn, Msize: m,
					ConfigID: pred.ConfigID, AlgID: pred.AlgID, Label: pred.Label,
					Fallback: pred.Fallback, FallbackReason: pred.FallbackReason,
				}
				if !pred.Fallback {
					p := pred.Predicted
					rec.PredictedSeconds = &p
				}
				if err := lg.Append(rec); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
}

// TestOnceDeterministicAcrossFitWorkers is the offline half of the
// determinism acceptance: the same audit log, base snapshot, and drift plan
// must produce byte-identical candidate snapshots at 1 and 4 fit workers.
func TestOnceDeterministicAcrossFitWorkers(t *testing.T) {
	cacheDir := t.TempDir()
	dir := t.TempDir()
	basePath, sel, spec := trainBase(t, cacheDir, dir)
	logPath := filepath.Join(dir, "audit.jsonl")
	writeAuditLog(t, logPath, sel, spec)
	plan, err := fault.Parse("straggler:node=0,factor=4")
	if err != nil {
		t.Fatal(err)
	}

	var candidates [][]byte
	for _, workers := range []int{1, 4} {
		outDir := filepath.Join(dir, fmt.Sprintf("out%d", workers))
		if err := os.MkdirAll(outDir, 0o755); err != nil {
			t.Fatal(err)
		}
		pool := core.NewFitPool(workers)
		rep, err := Once(OnceOptions{
			SnapshotPath: basePath, AuditPath: logPath, OutDir: outDir,
			CacheDir: cacheDir, Drift: plan, Pool: pool,
		})
		pool.Close()
		if err != nil {
			t.Fatalf("%d workers: %v", workers, err)
		}
		if rep.Candidate == nil || rep.Ingested == 0 {
			t.Fatalf("%d workers: empty report %+v", workers, rep)
		}
		b, err := os.ReadFile(rep.Candidate.Path)
		if err != nil {
			t.Fatal(err)
		}
		candidates = append(candidates, b)
	}
	if !bytes.Equal(candidates[0], candidates[1]) {
		t.Fatalf("candidates differ between 1 and 4 fit workers (%d vs %d bytes)",
			len(candidates[0]), len(candidates[1]))
	}
	base, err := os.ReadFile(basePath)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(candidates[0], base) {
		t.Fatalf("retraining under a 4x straggler produced a byte-identical model")
	}
	// Loaded candidate must predict (sanity that the refit produced a
	// servable snapshot, not just different bytes).
	cand, _, err := core.LoadSnapshot(filepath.Join(dir, "out1", "d1-gam.retrain001.snap"))
	if err != nil {
		t.Fatal(err)
	}
	if p := cand.Select(3, 1, 4096); p.ConfigID < 1 {
		t.Fatalf("candidate selects invalid config: %+v", p)
	}
}

// TestScenarioDriftRecovery runs the full closed loop in-process: baseline
// phase clean, drift detected after the machine shifts, candidate deployed,
// detector back to ok on the shifted machine — deterministically across fit
// pool sizes.
func TestScenarioDriftRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("full drift scenario in -short mode")
	}
	rep, err := RunScenario(ScenarioOptions{
		CacheDir: t.TempDir(),
		WorkDir:  t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Phases) != 3 {
		t.Fatalf("expected 3 phases, got %+v", rep.Phases)
	}
	if lvl := rep.Phases[0].EndLevel; lvl != "ok" {
		t.Errorf("baseline phase ends at level %q", lvl)
	}
	if !rep.DriftDetected {
		t.Fatalf("drift never detected: %+v", rep)
	}
	if rep.DeployOutcome != "reloaded" {
		t.Errorf("deploy outcome %q", rep.DeployOutcome)
	}
	if !rep.Recovered {
		t.Errorf("loop did not recover: phase C %+v", rep.Phases[2])
	}
	if !rep.Deterministic {
		t.Errorf("candidates differ across fit pools %v", rep.FitWorkers)
	}
	if rep.Cycles != 1 {
		t.Errorf("expected exactly one retrain cycle, got %d", rep.Cycles)
	}
	// The rendered report must be reproducible (it is committed to
	// results/drift_recovery.txt).
	if out := rep.Render(); out == "" || len(out) < 100 {
		t.Errorf("render too small:\n%s", out)
	}
}
