// Offline one-shot retraining: the CLI path (mpicolltune -retrain-from)
// and the determinism tests run the collect→refit pipeline over a finished
// audit log, without a serving process, detector, or deployer. It shares
// the daemon's cycle code and content-derived measurement seeds, so the
// candidate is byte-identical to the online loop's whenever both see the
// same instance cells — note the daemon's cycle only sees cells observed
// up to the record where drift was declared, while Once ingests the whole
// log (truncate the log at the drift point to reproduce a live candidate
// exactly).

package retrain

import (
	"fmt"

	"mpicollpred/internal/audit"
	"mpicollpred/internal/core"
	"mpicollpred/internal/dataset"
	"mpicollpred/internal/fault"
)

// OnceOptions configures an offline retraining pass.
type OnceOptions struct {
	// SnapshotPath is the base snapshot to retrain.
	SnapshotPath string
	// AuditPath is the finished audit log to ingest.
	AuditPath string
	// OutDir receives the candidate snapshot.
	OutDir string
	// CacheDir / Scale locate or regenerate the dataset (default smoke).
	CacheDir string
	Scale    dataset.Scale
	// Drift perturbs the re-measurements (nil = faithful machine).
	Drift *fault.Plan
	// Reps is the simulated repetitions per measurement (default 2).
	Reps int
	// Pool is the fit pool (nil uses core's default).
	Pool *core.FitPool
	// MaxCells bounds the swept instance cells (default 32).
	MaxCells int
}

// OnceReport summarizes an offline pass.
type OnceReport struct {
	Model     string     `json:"model"`
	Records   int        `json:"records"`
	Ingested  int        `json:"ingested"` // records for this model with a prediction
	Candidate *Candidate `json:"candidate"`
}

// Once reads the audit log, collects the instance cells served by the
// snapshot's model, re-measures them under the drift plan, and refits the
// affected configurations. The candidate lands in OutDir.
func Once(opts OnceOptions) (*OnceReport, error) {
	if opts.MaxCells <= 0 {
		opts.MaxCells = 32
	}
	_, fp, err := core.LoadSnapshot(opts.SnapshotPath)
	if err != nil {
		return nil, fmt.Errorf("retrain: loading snapshot: %w", err)
	}
	model := fp.Dataset + "-" + fp.Learner

	recs, err := audit.ReadLog(opts.AuditPath)
	if err != nil {
		return nil, err
	}
	rep := &OnceReport{Model: model, Records: len(recs)}
	seen := map[cell]struct{}{}
	var cells []cell
	for _, r := range recs {
		if r.Model != model || r.PredictedSeconds == nil {
			continue
		}
		rep.Ingested++
		c := cell{nodes: r.Nodes, ppn: r.PPN, msize: r.Msize}
		if _, ok := seen[c]; ok {
			continue
		}
		if len(cells) >= opts.MaxCells {
			continue
		}
		seen[c] = struct{}{}
		cells = append(cells, c)
	}
	if len(cells) == 0 {
		return nil, fmt.Errorf("retrain: audit log has no predicted decisions for model %q", model)
	}

	rt := newRetrainer(opts.CacheDir, opts.OutDir, opts.Scale, opts.Reps, opts.Pool)
	cand, err := rt.cycle(model, opts.SnapshotPath, cells, opts.Drift)
	if err != nil {
		return nil, err
	}
	rep.Candidate = cand
	return rep, nil
}
