// Package retrain closes the loop the roadmap's telemetry item left open:
// observe served decisions (audit log) → re-measure them on the live
// (possibly drifted) machine → detect sustained observed-vs-predicted error
// → re-measure the affected grid cells, refit the affected configurations
// on the shared fit pool → deploy the candidate through a hot reload or a
// canary rollout. The whole loop is event-driven and seeded: state advances
// only per processed record, measurement seeds are content-derived, and the
// only wall-clock read is the injectable status-log timestamp clock — so a
// given audit log always produces the same candidates, byte for byte,
// whatever the fit-pool size.
//
// State machine (DESIGN §13):
//
//	observing --drift declared--> retraining --candidate saved--> deploying
//	deploying --promoted/reloaded--> observing   (detector reset, new generation floor)
//	deploying --rollback/failure--> observing    (detector reset, candidate kept on disk)
package retrain

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"

	"mpicollpred/internal/audit"
	"mpicollpred/internal/core"
	"mpicollpred/internal/dataset"
	"mpicollpred/internal/fault"
	"mpicollpred/internal/obs"
)

// Loop states.
const (
	StateObserving  = "observing"
	StateRetraining = "retraining"
	StateDeploying  = "deploying"
)

// Options configures a retraining loop.
type Options struct {
	// AuditPath is the selection audit log Run tails.
	AuditPath string
	// Reloader exposes the serving process's snapshot paths (and, for the
	// default deployer, its hot reload).
	Reloader Reloader
	// Deployer pushes candidates into serving; nil defaults to
	// &ReloadDeployer{Target: Reloader}.
	Deployer Deployer
	// Drift perturbs the observation measurements — it stands in for the
	// real machine drifting away from the training data. nil observes the
	// faithful machine.
	Drift *fault.Plan
	// OutDir receives candidate snapshots.
	OutDir string
	// CacheDir is the dataset cache (datasets regenerate deterministically
	// when absent).
	CacheDir string
	// Scale is the dataset scale for regeneration (default smoke).
	Scale dataset.Scale
	// Reps is the simulated repetitions per observation (default 2).
	Reps int
	// Pool is the fit pool refits run on (nil uses core's default pool).
	Pool *core.FitPool
	// Detector tunes drift declaration.
	Detector DetectorOptions
	// MaxCells bounds the observed-cell set swept per model per cycle
	// (default 32; excess cells are counted, not measured).
	MaxCells int
	// Follow configures the audit tail (poll injection for tests).
	Follow audit.FollowOptions
	// StatusLog receives one JSON line per state transition; nil discards.
	StatusLog io.Writer
	// Clock timestamps status-log lines (default: wall clock). Loop
	// behavior never depends on it.
	Clock func() time.Time
}

// CycleInfo describes the last retraining cycle for the status endpoint.
type CycleInfo struct {
	Model    string     `json:"model"`
	Cells    int        `json:"cells"`
	Outcome  string     `json:"outcome"` // "reloaded", "promoted", or "failed"
	Error    string     `json:"error,omitempty"`
	Cand     *Candidate `json:"candidate,omitempty"`
	MinGen   uint64     `json:"min_generation"`
	Sequence uint64     `json:"sequence"` // 1-based cycle counter
}

// ModelStatus is one model's detector state for the status endpoint.
type ModelStatus struct {
	Model         string  `json:"model"`
	Observations  uint64  `json:"observations"`
	ErrorEvents   uint64  `json:"error_events"`
	ErrorRate     float64 `json:"error_rate"`
	Level         string  `json:"level"`
	BreachStreak  int     `json:"breach_streak"`
	Drifts        uint64  `json:"drifts"`
	MinGeneration uint64  `json:"min_generation"`
	LastRelErr    float64 `json:"last_rel_err"`
	PendingCells  int     `json:"pending_cells"`
}

// Status is the /v1/retrain/status payload.
type Status struct {
	State         string        `json:"state"`
	Observations  uint64        `json:"observations"`
	Skipped       uint64        `json:"skipped"` // fallback or stale-generation records
	Cycles        uint64        `json:"cycles"`
	DeploysOK     uint64        `json:"deploys_ok"`
	DeploysFailed uint64        `json:"deploys_failed"`
	Models        []ModelStatus `json:"models,omitempty"`
	LastCycle     *CycleInfo    `json:"last_cycle,omitempty"`
}

// Loop is the online retraining daemon. ProcessRecord is synchronous — a
// record that declares drift runs the full retrain+deploy cycle before
// returning — and Run is ProcessRecord fed by the streaming audit reader.
// The Loop starts no goroutines of its own.
type Loop struct {
	opts Options

	// Processing state is owned by the single caller of ProcessRecord
	// (Run's follow callback); no lock is held during observation,
	// retraining, or deployment.
	state   string
	status  Status
	det     *detector
	obsr    *observer
	rt      *retrainer
	cells   map[string]map[cell]struct{} // observed cells per model since last deploy
	dropped map[string]int               // cells beyond MaxCells
	maxGen  map[string]uint64            // highest generation seen per model

	// published is the status snapshot concurrent readers (the serving
	// process's /v1/retrain/status handler) see; it is replaced wholesale
	// after every record and every state transition.
	pubMu     sync.Mutex
	published Status
}

// realClock is the loop's one wall-clock read: status-log timestamps are
// run metadata, never loop state, and tests inject a pinned Clock instead.
func realClock() time.Time {
	return time.Now() //mpicollvet:ignore wallclock status-log timestamps are real-time run metadata; Options.Clock is injectable and tests pin it
}

// New builds a loop; it performs no I/O until records arrive.
func New(opts Options) (*Loop, error) {
	if opts.Reloader == nil {
		return nil, fmt.Errorf("retrain: no reloader configured")
	}
	if opts.OutDir == "" {
		return nil, fmt.Errorf("retrain: no candidate output directory configured")
	}
	if opts.Deployer == nil {
		opts.Deployer = &ReloadDeployer{Target: opts.Reloader}
	}
	if opts.MaxCells <= 0 {
		opts.MaxCells = 32
	}
	if opts.Clock == nil {
		opts.Clock = realClock
	}
	l := &Loop{
		opts:    opts,
		state:   StateObserving,
		det:     newDetector(opts.Detector),
		obsr:    newObserver(opts.Reps, opts.Drift),
		rt:      newRetrainer(opts.CacheDir, opts.OutDir, opts.Scale, opts.Reps, opts.Pool),
		cells:   map[string]map[cell]struct{}{},
		dropped: map[string]int{},
		maxGen:  map[string]uint64{},
	}
	l.logTransition(StateObserving, "", "loop started")
	l.publish()
	return l, nil
}

// SetDrift swaps the observation fault plan mid-run — the scenario's
// "machine constants shift" event. Detector state is kept: the shift is
// what the loop exists to notice. Like ProcessRecord, it must be called
// from the processing goroutine, never concurrently with it.
func (l *Loop) SetDrift(plan *fault.Plan) {
	l.obsr.setPlan(plan)
}

// Run tails the audit log until ctx is cancelled, feeding every record
// through ProcessRecord.
func (l *Loop) Run(ctx context.Context) error {
	fo := l.opts.Follow
	fo.WaitForFile = true
	return audit.Follow(ctx, l.opts.AuditPath, fo, func(rec audit.Record) error {
		return l.ProcessRecord(ctx, rec)
	})
}

// ProcessRecord observes one served decision; when it completes the drift
// hysteresis, the full retrain-and-deploy cycle runs inline before the call
// returns. A measurement or retraining error aborts the loop (the caller
// decides whether to restart); a deploy that does not take is recorded and
// observation continues — the fleet is still serving the old snapshots.
// ProcessRecord has exactly one caller at a time (Run's follow callback);
// concurrent Status readers see the snapshot published after each record.
func (l *Loop) ProcessRecord(ctx context.Context, rec audit.Record) error {
	err := l.processRecord(ctx, rec)
	l.publish()
	return err
}

func (l *Loop) processRecord(ctx context.Context, rec audit.Record) error {
	if rec.PredictedSeconds == nil {
		l.status.Skipped++
		return nil
	}
	if st := l.det.models[rec.Model]; st != nil && rec.Generation < st.minGen {
		// Decided by a replaced generation: comparing it against the new
		// model would re-declare the drift the deploy just fixed.
		l.status.Skipped++
		return nil
	}
	if g := l.maxGen[rec.Model]; rec.Generation > g {
		l.maxGen[rec.Model] = rec.Generation
	}

	observed, err := l.obsr.observe(rec)
	if err != nil {
		return err
	}
	relErr := (*rec.PredictedSeconds - observed) / observed
	l.status.Observations++
	obs.Default.Counter("retrain_observations_total", obs.Labels{"model": rec.Model}).Inc()

	cs := l.cells[rec.Model]
	if cs == nil {
		cs = map[cell]struct{}{}
		l.cells[rec.Model] = cs
	}
	c := cell{nodes: rec.Nodes, ppn: rec.PPN, msize: rec.Msize}
	if _, ok := cs[c]; !ok {
		if len(cs) < l.opts.MaxCells {
			cs[c] = struct{}{}
		} else {
			l.dropped[rec.Model]++
			obs.Default.Counter("retrain_cells_dropped_total", obs.Labels{"model": rec.Model}).Inc()
		}
	}

	if !l.det.observe(rec.Model, relErr) {
		return nil
	}
	obs.Default.Counter("retrain_drift_total", obs.Labels{"model": rec.Model}).Inc()
	return l.runCycle(ctx, rec.Model)
}

// runCycle executes retrain → deploy for one drifted model, on the
// processing goroutine; concurrent readers watch it through the published
// status snapshots emitted at every transition.
func (l *Loop) runCycle(ctx context.Context, model string) error {
	l.status.Cycles++
	info := &CycleInfo{Model: model, Sequence: l.status.Cycles}
	l.status.LastCycle = info
	l.setState(StateRetraining, model, "drift declared")
	obs.Default.Counter("retrain_cycles_total", nil).Inc()

	fail := func(outcome string, err error) {
		info.Outcome = "failed"
		info.Error = err.Error()
		l.status.DeploysFailed++
		obs.Default.Counter("retrain_deploys_total", obs.Labels{"outcome": outcome}).Inc()
		// Re-arm with the current generation floor: the old snapshots are
		// still serving, and the monitor's warm-up is the cooldown that
		// keeps a persistent failure from hot-looping the retrainer.
		l.det.reset(model, l.det.state(model).minGen)
		l.setState(StateObserving, model, "deploy failed: "+info.Error)
	}

	basePath, paths, err := l.snapshotPathFor(model)
	if err != nil {
		fail("resolve_failed", err)
		return nil
	}
	cells := make([]cell, 0, len(l.cells[model]))
	for c := range l.cells[model] {
		cells = append(cells, c)
	}
	info.Cells = len(cells)
	cand, err := l.rt.cycle(model, basePath, cells, l.obsr.plan)
	if err != nil {
		// Retraining errors (measurement or fit failures) are loop bugs or
		// resource problems, not drift: surface them to the caller.
		info.Outcome = "failed"
		info.Error = err.Error()
		l.setState(StateObserving, model, "retrain failed: "+info.Error)
		return err
	}
	info.Cand = cand

	l.setState(StateDeploying, model, "candidate "+cand.Path)
	next := make([]string, len(paths))
	for i, p := range paths {
		if p == basePath {
			next[i] = cand.Path
		} else {
			next[i] = p
		}
	}
	outcome, err := l.opts.Deployer.Deploy(ctx, cand, next)
	if err != nil {
		fail("deploy_failed", err)
		return nil
	}
	info.Outcome = outcome
	info.MinGen = l.maxGen[model] + 1
	l.status.DeploysOK++
	obs.Default.Counter("retrain_deploys_total", obs.Labels{"outcome": outcome}).Inc()
	// Fresh detector, generation floor past everything the old model
	// answered, and a clean cell slate for the next episode.
	l.det.reset(model, info.MinGen)
	delete(l.cells, model)
	delete(l.dropped, model)
	l.setState(StateObserving, model, "deployed: "+outcome)
	return nil
}

// snapshotPathFor maps a registry model name to its serving snapshot path
// by reading the reloader's current path set.
func (l *Loop) snapshotPathFor(model string) (string, []string, error) {
	paths := l.opts.Reloader.SnapshotPaths()
	for _, p := range paths {
		_, fp, err := core.LoadSnapshot(p)
		if err != nil {
			return "", nil, fmt.Errorf("retrain: reading serving snapshot %s: %w", p, err)
		}
		if fp.Dataset+"-"+fp.Learner == model {
			return p, paths, nil
		}
	}
	return "", nil, fmt.Errorf("retrain: no serving snapshot for model %q (paths %v)", model, paths)
}

// Status returns the last published status snapshot; safe for the serving
// process's status endpoint to call concurrently with the loop.
func (l *Loop) Status() Status {
	l.pubMu.Lock()
	defer l.pubMu.Unlock()
	return l.published
}

// publish rebuilds the status snapshot from the processing state and swaps
// it in for concurrent readers.
func (l *Loop) publish() {
	st := l.status
	st.State = l.state
	st.Models = nil
	for _, name := range l.det.names() {
		ms := l.det.models[name]
		st.Models = append(st.Models, ModelStatus{
			Model:         name,
			Observations:  ms.observations,
			ErrorEvents:   ms.errorEvents,
			ErrorRate:     ms.monitor.Rate(),
			Level:         ms.monitor.Level().String(),
			BreachStreak:  ms.breachStreak,
			Drifts:        ms.drifts,
			MinGeneration: ms.minGen,
			LastRelErr:    ms.lastRelErr,
			PendingCells:  len(l.cells[name]),
		})
	}
	if l.status.LastCycle != nil {
		cp := *l.status.LastCycle
		st.LastCycle = &cp
	}
	l.pubMu.Lock()
	l.published = st
	l.pubMu.Unlock()
}

// setState transitions the state machine, books the transition, and
// publishes the new state so readers see mid-cycle progress.
func (l *Loop) setState(state, model, detail string) {
	l.state = state
	obs.Default.Counter("retrain_transitions_total", obs.Labels{"state": state}).Inc()
	l.logTransition(state, model, detail)
	l.publish()
}

// logTransition writes one JSON line to the status log.
func (l *Loop) logTransition(state, model, detail string) {
	if l.opts.StatusLog == nil {
		return
	}
	line, err := json.Marshal(map[string]any{
		"ts_us": l.opts.Clock().UnixMicro(), "state": state,
		"model": model, "detail": detail,
	})
	if err != nil {
		return
	}
	if _, err := l.opts.StatusLog.Write(append(line, '\n')); err != nil {
		obs.Default.Counter("retrain_status_log_errors_total", nil).Inc()
	}
}
