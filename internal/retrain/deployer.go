// Deployment backends for retrained candidates. Single-replica installs
// reload the serving process in place through the Reloader seam (the old
// generation keeps serving if the candidate fails to load, and in-flight
// requests never see the swap). Fleet installs hand the candidate to the
// router's canary rollout, which probes it against a baseline replica and
// auto-rolls-back on divergence or monitor breach — the loop only counts a
// deploy successful when the state machine ends at "promoted".

package retrain

import (
	"context"
	"fmt"
	"net/http"

	"mpicollpred/internal/fleet"
)

// Reloader is the serving-side seam the loop deploys through in
// single-replica mode; *serve.Server satisfies it. Keeping it an interface
// here means retrain never imports the serving layer (the server reaches
// the loop only through its status callback, so the dependency stays
// one-directional).
type Reloader interface {
	ReloadPaths(paths []string) error
	SnapshotPaths() []string
}

// Deployer pushes a candidate into serving. current is the serving snapshot
// path set with the candidate already substituted for the model it
// replaces. Deploy returns a short outcome description ("reloaded",
// "promoted") or an error when the candidate did not take.
type Deployer interface {
	Deploy(ctx context.Context, cand *Candidate, current []string) (string, error)
}

// ReloadDeployer swaps the candidate into a single serving process.
type ReloadDeployer struct {
	Target Reloader
}

// Deploy atomically reloads the target onto the substituted path set.
func (d *ReloadDeployer) Deploy(_ context.Context, _ *Candidate, current []string) (string, error) {
	if err := d.Target.ReloadPaths(current); err != nil {
		return "", fmt.Errorf("retrain: reload deploy: %w", err)
	}
	return "reloaded", nil
}

// RolloutDeployer drives a fleet router's canary rollout.
type RolloutDeployer struct {
	// RouterURL is the router base URL (e.g. "http://127.0.0.1:18080").
	RouterURL string
	// Client is the HTTP client (nil uses http.DefaultClient).
	Client *http.Client
	// Probes forwards into the rollout request; zero takes the router's
	// default.
	Probes int
	// MaxDivergence is the canary-vs-baseline selection divergence gate.
	// Zero defaults to 1.0, not the router's 0.25: the candidate exists
	// because the baseline's model is wrong on the drifted machine, so
	// changed selections are the expected outcome — the gates that still
	// protect the fleet are probe errors and the canary's own monitors.
	MaxDivergence float64
	// Nodes/PPNs/Msizes override the probe pool; empty uses the
	// candidate's observed cells, which are in the training envelope by
	// construction (the router's out-of-envelope defaults would trip the
	// canary's fallback monitor and roll back every retrain deploy).
	Nodes  []int
	PPNs   []int
	Msizes []int64
}

// Deploy posts the substituted path set as a canary rollout and succeeds
// only when the rollout promotes; a rollback or failure is an error (the
// fleet keeps serving the previous snapshots either way).
func (d *RolloutDeployer) Deploy(ctx context.Context, cand *Candidate, current []string) (string, error) {
	req := fleet.RolloutRequest{
		Paths: current, Probes: d.Probes, MaxDivergence: d.MaxDivergence,
		Nodes: d.Nodes, PPNs: d.PPNs, Msizes: d.Msizes,
	}
	if req.MaxDivergence <= 0 {
		req.MaxDivergence = 1.0
	}
	if len(req.Nodes) == 0 {
		req.Nodes = cand.ProbeNodes
	}
	if len(req.PPNs) == 0 {
		req.PPNs = cand.ProbePPNs
	}
	if len(req.Msizes) == 0 {
		req.Msizes = cand.ProbeMsizes
	}
	st, err := fleet.RequestRollout(ctx, d.Client, d.RouterURL, req)
	if err != nil {
		return "", err
	}
	if st.State != fleet.RolloutPromoted {
		return "", fmt.Errorf("retrain: rollout ended %q: %s", st.State, st.Reason)
	}
	return fleet.RolloutPromoted, nil
}
