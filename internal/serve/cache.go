// The selection cache: tuning queries are extremely repetitive — a cluster
// scheduler asks about the same (model, nodes, ppn, msize) instances over
// and over — so answered selections are kept in a sharded LRU. Sharding
// bounds lock contention (each shard has its own mutex and list), the
// per-shard capacity bounds memory, and the registry generation in the key
// makes hot-reloaded models miss naturally instead of serving stale
// decisions.

package serve

import (
	"container/list"
	"sync"
	"sync/atomic"

	"mpicollpred/internal/core"
)

// CacheKey identifies one answered selection.
type CacheKey struct {
	// Gen is the model registry generation; a hot reload bumps it, so
	// entries from replaced models can never be returned again.
	Gen   uint64
	Model string
	Nodes int
	PPN   int
	Msize int64
}

// hash mixes the key fields FNV-1a style into a shard selector.
func (k CacheKey) hash() uint64 {
	const prime = 0x100000001b3
	h := uint64(0xcbf29ce484222325)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= (v >> (8 * i)) & 0xff
			h *= prime
		}
	}
	mix(k.Gen)
	for i := 0; i < len(k.Model); i++ {
		h ^= uint64(k.Model[i])
		h *= prime
	}
	mix(uint64(k.Nodes))
	mix(uint64(k.PPN))
	mix(uint64(k.Msize))
	return h
}

// SelectionCache is a sharded LRU over answered selections, safe for
// concurrent use.
type SelectionCache struct {
	shards []cacheShard
	mask   uint64

	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
}

type cacheShard struct {
	mu  sync.Mutex
	ll  *list.List // front = most recently used
	ent map[CacheKey]*list.Element
	cap int
}

type cacheEntry struct {
	key CacheKey
	val core.Prediction
}

// NewSelectionCache builds a cache of roughly `capacity` total entries
// spread over `shards` shards (rounded up to a power of two; minimum one
// shard, one entry per shard). A zero or negative capacity disables caching:
// Get always misses and Put is a no-op.
func NewSelectionCache(capacity, shards int) *SelectionCache {
	if capacity <= 0 {
		return &SelectionCache{}
	}
	if shards < 1 {
		shards = 1
	}
	n := 1
	for n < shards {
		n <<= 1
	}
	perShard := (capacity + n - 1) / n
	c := &SelectionCache{shards: make([]cacheShard, n), mask: uint64(n - 1)}
	for i := range c.shards {
		c.shards[i].ll = list.New()
		c.shards[i].ent = make(map[CacheKey]*list.Element, perShard)
		c.shards[i].cap = perShard
	}
	return c
}

// Get returns the cached selection for the key, if present, and books a hit
// or miss.
func (c *SelectionCache) Get(k CacheKey) (core.Prediction, bool) {
	if len(c.shards) == 0 {
		c.misses.Add(1)
		return core.Prediction{}, false
	}
	s := &c.shards[k.hash()&c.mask]
	s.mu.Lock()
	el, ok := s.ent[k]
	if ok {
		s.ll.MoveToFront(el)
		val := el.Value.(*cacheEntry).val
		s.mu.Unlock()
		c.hits.Add(1)
		return val, true
	}
	s.mu.Unlock()
	c.misses.Add(1)
	return core.Prediction{}, false
}

// Put stores a selection, evicting the shard's least recently used entry at
// capacity.
func (c *SelectionCache) Put(k CacheKey, v core.Prediction) {
	if len(c.shards) == 0 {
		return
	}
	s := &c.shards[k.hash()&c.mask]
	s.mu.Lock()
	if el, ok := s.ent[k]; ok {
		el.Value.(*cacheEntry).val = v
		s.ll.MoveToFront(el)
		s.mu.Unlock()
		return
	}
	evicted := false
	if s.ll.Len() >= s.cap {
		back := s.ll.Back()
		if back != nil {
			delete(s.ent, back.Value.(*cacheEntry).key)
			s.ll.Remove(back)
			evicted = true
		}
	}
	s.ent[k] = s.ll.PushFront(&cacheEntry{key: k, val: v})
	s.mu.Unlock()
	if evicted {
		c.evictions.Add(1)
	}
}

// Len returns the current number of cached entries across all shards.
func (c *SelectionCache) Len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += s.ll.Len()
		s.mu.Unlock()
	}
	return n
}

// Stats returns the lifetime hit/miss/eviction counters.
func (c *SelectionCache) Stats() (hits, misses, evictions int64) {
	return c.hits.Load(), c.misses.Load(), c.evictions.Load()
}

// Shards returns the shard count (0 for a disabled cache).
func (c *SelectionCache) Shards() int { return len(c.shards) }
