package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"

	"mpicollpred/internal/audit"
	"mpicollpred/internal/obs"
)

// telemetryServer builds a server with tracing + auditing on and its own
// metrics registry.
func telemetryServer(t *testing.T, auditPath string, models ...*Model) (*Server, *audit.Logger) {
	t.Helper()
	lg, err := audit.NewLogger(auditPath, audit.LoggerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Options{CacheSize: 1024, CacheShards: 4,
		Metrics: obs.NewRegistry(), Audit: lg, TraceRing: 64})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Registry().Install(models...); err != nil {
		t.Fatal(err)
	}
	return s, lg
}

func TestRequestIDPropagation(t *testing.T) {
	_, knn, _ := testModels(t)
	path := filepath.Join(t.TempDir(), "audit.jsonl")
	s, lg := telemetryServer(t, path, knn)

	// Caller-provided id echoes back and lands in the audit line.
	req := httptest.NewRequest(http.MethodGet, "/v1/select?nodes=2&ppn=4&msize=1024", nil)
	req.Header.Set("X-Request-Id", "caller-42")
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	if got := rec.Header().Get("X-Request-Id"); got != "caller-42" {
		t.Fatalf("echoed id %q, want caller-42", got)
	}

	// Absent id gets assigned — non-empty and still echoed.
	req = httptest.NewRequest(http.MethodGet, "/v1/select?nodes=2&ppn=4&msize=1024", nil)
	rec = httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	assigned := rec.Header().Get("X-Request-Id")
	if assigned == "" {
		t.Fatal("no request id assigned")
	}

	if err := lg.Close(); err != nil {
		t.Fatal(err)
	}
	recs, err := audit.ReadLog(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("got %d audit lines, want 2", len(recs))
	}
	if recs[0].RequestID != "caller-42" || recs[1].RequestID != assigned {
		t.Fatalf("audit ids %q/%q, want caller-42/%s", recs[0].RequestID, recs[1].RequestID, assigned)
	}
	if recs[0].Endpoint != "select" || recs[0].Model != knn.Name {
		t.Fatalf("audit record: %+v", recs[0])
	}
}

func TestTracesEndpointRecordsSpanTree(t *testing.T) {
	_, knn, _ := testModels(t)
	s, lg := telemetryServer(t, filepath.Join(t.TempDir(), "a.jsonl"), knn)
	defer func() { _ = lg.Close() }()

	// First select misses the cache (argmin runs), second hits.
	for i := 0; i < 2; i++ {
		req := httptest.NewRequest(http.MethodGet, "/v1/select?nodes=2&ppn=4&msize=1024", nil)
		req.Header.Set("X-Request-Id", fmt.Sprintf("t-%d", i))
		rec := httptest.NewRecorder()
		s.Handler().ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			t.Fatalf("status %d: %s", rec.Code, rec.Body)
		}
	}

	var ring struct {
		Capacity int                `json:"capacity"`
		Stored   int                `json:"stored"`
		Traces   []obs.RequestTrace `json:"traces"`
	}
	getJSON(t, s.Handler(), "/debug/traces", http.StatusOK, &ring)
	// The two selects are stored; the /debug/traces request itself completes
	// after its own snapshot, so it is not in its own answer.
	if ring.Capacity != 64 || ring.Stored != 2 {
		t.Fatalf("ring capacity=%d stored=%d, want 64/2", ring.Capacity, ring.Stored)
	}
	spanNames := func(rt obs.RequestTrace) map[string]bool {
		names := map[string]bool{}
		for _, sp := range rt.Spans {
			names[sp.Name] = true
		}
		return names
	}
	miss, hit := ring.Traces[0], ring.Traces[1]
	if miss.RequestID != "t-0" || hit.RequestID != "t-1" {
		t.Fatalf("trace order: %s, %s", miss.RequestID, hit.RequestID)
	}
	for _, want := range []string{"select", "parse", "resolve", "cache", "argmin"} {
		if !spanNames(miss)[want] {
			t.Errorf("miss trace lacks %q span: %+v", want, miss.Spans)
		}
	}
	if spanNames(hit)["argmin"] {
		t.Errorf("cache-hit trace ran the selector: %+v", hit.Spans)
	}
	// The root span is the endpoint, parent -1.
	if miss.Spans[0].Name != "select" || miss.Spans[0].Parent != -1 {
		t.Fatalf("root span: %+v", miss.Spans[0])
	}

	// Chrome export parses and carries the request events.
	req := httptest.NewRequest(http.MethodGet, "/debug/traces?format=chrome", nil)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	var chrome struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &chrome); err != nil {
		t.Fatalf("chrome export: %v", err)
	}
	if len(chrome.TraceEvents) == 0 {
		t.Fatal("empty chrome export")
	}
}

func TestTelemetryEndpointTracksFallbackMonitor(t *testing.T) {
	_, knn, _ := testModels(t)
	s, lg := telemetryServer(t, filepath.Join(t.TempDir(), "a.jsonl"), knn)
	defer func() { _ = lg.Close() }()

	// 24 in-envelope selects, then 24 far-out-of-envelope ones: the fallback
	// EWMA must climb past warm-up into warn or breach.
	for i := 0; i < 24; i++ {
		getJSON(t, s.Handler(), fmt.Sprintf("/v1/select?nodes=2&ppn=4&msize=%d", 1024+i), http.StatusOK, nil)
	}
	for i := 0; i < 24; i++ {
		getJSON(t, s.Handler(), fmt.Sprintf("/v1/select?nodes=2&ppn=4&msize=%d", int64(1)<<30+int64(i)), http.StatusOK, nil)
	}

	var snap TelemetrySnapshot
	getJSON(t, s.Handler(), "/v1/telemetry", http.StatusOK, &snap)
	if len(snap.Models) != 1 || snap.Models[0].Model != knn.Name {
		t.Fatalf("models: %+v", snap.Models)
	}
	m := snap.Models[0]
	if m.Requests != 48 {
		t.Fatalf("requests %d, want 48", m.Requests)
	}
	if m.FallbackLevel == "ok" {
		t.Fatalf("fallback level still ok at rate %.3f after %d fallbacks", m.FallbackRate, m.FallbackEvents)
	}
	if m.EnvelopeLevel == "ok" {
		t.Fatalf("envelope level still ok at rate %.3f", m.EnvelopeRate)
	}
	// Quantile labels are fixed and ordered.
	var labels []string
	for _, q := range m.PredQuantiles {
		labels = append(labels, q.Q)
	}
	if fmt.Sprint(labels) != "[p10 p50 p90 p99]" {
		t.Fatalf("quantile labels %v", labels)
	}
	if m.PredQuantiles[1].V == nil || *m.PredQuantiles[1].V <= 0 {
		t.Fatalf("p50 prediction: %+v", m.PredQuantiles[1])
	}
	// All requests were 200 and fast: both SLO monitors healthy.
	if snap.Availability.Level != "ok" || snap.Availability.Bad != 0 {
		t.Fatalf("availability: %+v", snap.Availability)
	}
	if snap.TracesStored == 0 || snap.TracesTotal == 0 {
		t.Fatalf("trace counters: %+v", snap)
	}

	// The same monitor states appear on /metrics (JSON form).
	req := httptest.NewRequest(http.MethodGet, "/metrics?format=json", nil)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	body := rec.Body.String()
	for _, want := range []string{"serve_model_fallback_level", "serve_model_pred_seconds",
		"serve_slo_availability_burn", "serve_traces_stored"} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %s", want)
		}
	}
}

// TestAuditHammer is the concurrency contract of the telemetry layer: 8
// clients select continuously while the registry reloads (both via the
// /v1/reload path and a relayed SIGHUP, as mpicollserve wires it) and other
// goroutines read the trace ring and telemetry. Afterwards every audit line
// must parse (no torn writes) and every served decision must appear (no
// lost writes). Run under -race in CI.
func TestAuditHammer(t *testing.T) {
	_, knn, lin := testModels(t)
	path := filepath.Join(t.TempDir(), "audit.jsonl")
	s, lg := telemetryServer(t, path, knn, lin)

	hup := make(chan os.Signal, 4)
	signal.Notify(hup, syscall.SIGHUP)
	defer signal.Stop(hup)
	reinstall := func() {
		if err := s.Registry().Install(knn, lin); err != nil {
			t.Errorf("reinstall: %v", err)
		}
	}
	stop := make(chan struct{})
	var relay sync.WaitGroup
	relay.Add(1)
	go func() {
		defer relay.Done()
		for {
			select {
			case <-hup:
				reinstall()
			case <-stop:
				return
			}
		}
	}()

	const clients, perClient = 8, 60
	var served int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			model := knn.Name
			if c%2 == 1 {
				model = lin.Name
			}
			for i := 0; i < perClient; i++ {
				url := fmt.Sprintf("/v1/select?model=%s&nodes=%d&ppn=4&msize=%d",
					model, 2+(i%3)*2, 64<<(i%6))
				req := httptest.NewRequest(http.MethodGet, url, nil)
				req.Header.Set("X-Request-Id", fmt.Sprintf("h%d-%d", c, i))
				rec := httptest.NewRecorder()
				s.Handler().ServeHTTP(rec, req)
				if rec.Code != http.StatusOK {
					t.Errorf("client %d: status %d: %s", c, rec.Code, rec.Body)
					return
				}
				mu.Lock()
				served++
				mu.Unlock()
				switch i % 20 {
				case 5:
					// Registry churn mid-flight.
					reinstall()
				case 10:
					// SIGHUP path, as the daemon receives it.
					if err := syscall.Kill(os.Getpid(), syscall.SIGHUP); err != nil {
						t.Errorf("kill: %v", err)
					}
				}
			}
		}(c)
	}
	// Concurrent observers of the ring and monitors.
	readDone := make(chan struct{})
	go func() {
		defer close(readDone)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			for _, url := range []string{"/debug/traces", "/v1/telemetry", "/metrics?format=json"} {
				req := httptest.NewRequest(http.MethodGet, url, nil)
				s.Handler().ServeHTTP(httptest.NewRecorder(), req)
			}
		}
	}()
	wg.Wait()
	close(stop)
	relay.Wait()
	<-readDone

	if err := lg.Close(); err != nil {
		t.Fatal(err)
	}
	recs, err := audit.ReadLog(path) // strict scan: one torn line fails here
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(recs)) != served {
		t.Fatalf("audit lines %d != served decisions %d (lost writes)", len(recs), served)
	}
	ids := map[string]bool{}
	for _, r := range recs {
		ids[r.RequestID] = true
	}
	if int64(len(ids)) != served {
		t.Fatalf("unique ids %d != served %d", len(ids), served)
	}
	st := lg.Stats()
	if st.Errors != 0 {
		t.Fatalf("logger errors: %d", st.Errors)
	}
}
