// The model registry: named trained selectors loaded from snapshot files,
// swapped atomically on reload. Request handlers grab the current model set
// with a single atomic pointer load and keep using it for the whole
// request, so a concurrent reload never changes a request's world
// mid-flight and zero in-flight requests fail during a swap.

package serve

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"mpicollpred/internal/core"
	"mpicollpred/internal/obs"
)

// Model is one servable selector.
type Model struct {
	// Name is the registry key, <dataset>-<learner> for snapshot-loaded
	// models (e.g. "d1-gam").
	Name string
	Sel  *core.Selector
	Fp   core.Fingerprint
	// Path is the snapshot file the model came from ("" when installed
	// in-process).
	Path string
}

// modelSet is one immutable generation of loaded models.
type modelSet struct {
	gen    uint64
	byName map[string]*Model
	names  []string // sorted
}

// Registry holds the servable models behind an atomic pointer.
type Registry struct {
	cur atomic.Pointer[modelSet]
	// reloadMu serializes writers (Load/Install); readers never take it.
	reloadMu sync.Mutex
}

// NewRegistry returns an empty registry at generation zero.
func NewRegistry() *Registry {
	r := &Registry{}
	r.cur.Store(&modelSet{byName: map[string]*Model{}})
	return r
}

// ModelName is the registry key snapshots are served under.
func ModelName(fp core.Fingerprint) string { return fp.Dataset + "-" + fp.Learner }

// Load reads every snapshot path, builds the next model set, and swaps it
// in atomically. On any error the registry is left untouched — a serving
// process keeps answering from the previous generation, which is exactly
// what a production hot reload must do.
func (r *Registry) Load(paths []string) error {
	models := make([]*Model, 0, len(paths))
	for _, p := range paths {
		sel, fp, err := core.LoadSnapshot(p)
		if err != nil {
			return err
		}
		models = append(models, &Model{Name: ModelName(fp), Sel: sel, Fp: fp, Path: p})
	}
	return r.Install(models...)
}

// Install swaps in a new generation holding exactly the given models.
// Duplicate names are an error.
func (r *Registry) Install(models ...*Model) error {
	byName := make(map[string]*Model, len(models))
	names := make([]string, 0, len(models))
	for _, m := range models {
		if m.Name == "" {
			return fmt.Errorf("serve: model with empty name (snapshot %q)", m.Path)
		}
		if _, dup := byName[m.Name]; dup {
			return fmt.Errorf("serve: duplicate model name %q", m.Name)
		}
		byName[m.Name] = m
		names = append(names, m.Name)
	}
	sort.Strings(names)

	r.reloadMu.Lock()
	next := &modelSet{gen: r.cur.Load().gen + 1, byName: byName, names: names}
	r.cur.Store(next)
	r.reloadMu.Unlock()

	obs.Default.Counter("serve_reload_total", nil).Inc()
	obs.Default.Gauge("serve_models_loaded", nil).Set(float64(len(models)))
	return nil
}

// view captures the current generation for one request.
func (r *Registry) view() *modelSet { return r.cur.Load() }

// Gen returns the current registry generation (bumped on every swap).
func (r *Registry) Gen() uint64 { return r.view().gen }

// Names lists the servable model names, sorted.
func (r *Registry) Names() []string {
	return append([]string(nil), r.view().names...)
}

// Get resolves a model by name within a captured set. An empty name picks
// the only loaded model, which keeps single-model deployments (the common
// case) free of client-side configuration.
func (s *modelSet) get(name string) (*Model, error) {
	if name == "" {
		if len(s.names) == 1 {
			return s.byName[s.names[0]], nil
		}
		return nil, fmt.Errorf("serve: %d models loaded %v; the request must name one", len(s.names), s.names)
	}
	m, ok := s.byName[name]
	if !ok {
		return nil, fmt.Errorf("serve: unknown model %q (have %v)", name, s.names)
	}
	return m, nil
}
