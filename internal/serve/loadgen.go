// The load generator: a client-side benchmark for a running mpicollserve
// instance. Workers replay a bounded pool of instances (so the server's
// selection cache gets realistic re-use), and the run is summarized as
// QPS + latency quantiles in a JSON report (BENCH_serve.json in CI).

package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"mpicollpred/internal/sim"
)

// LoadgenOptions configures a load-generation run.
type LoadgenOptions struct {
	// URL is the server base URL (e.g. "http://127.0.0.1:8080").
	URL string
	// URLs is the multi-target mode: workers are spread round-robin over
	// these base URLs, driving a whole fleet (replicas directly, or several
	// routers). When set it overrides URL.
	URLs []string
	// Model names the model to query ("" works for single-model servers).
	Model string
	// Duration is how long to generate load (default 5s).
	Duration time.Duration
	// Workers is the number of concurrent client goroutines (default 8).
	Workers int
	// Seed keys the deterministic instance sequence.
	Seed uint64
	// Batch switches the workers from /v1/select to /v1/batch, posting this
	// many instances per request (0 keeps the single-select mode).
	Batch int
	// Retries is how many times a transient failure (dial error, connection
	// reset, 5xx from a gateway) is retried with jittered exponential
	// backoff before it counts as a hard error (default 3; negative
	// disables retries).
	Retries int
	// RetryBase is the backoff unit: attempt k sleeps RetryBase<<k plus up
	// to one RetryBase of jitter (default 5ms).
	RetryBase time.Duration
	// Nodes/PPNs/Msizes form the instance pool workers draw from. The pool
	// is deliberately small: real tuning traffic repeats the same instances,
	// which is what the selection cache exists for.
	Nodes  []int
	PPNs   []int
	Msizes []int64
	// ShiftAt, when > 0, switches workers to the Shift* instance pool once
	// the run's global request counter passes it — a mid-run change in the
	// traffic distribution, used by drift experiments to move load onto
	// grid cells whose models have gone stale. A Shift* field left empty
	// falls back to the corresponding base pool, and shifted instances must
	// stay inside the served models' training envelope or the shift
	// measures guardrail fallbacks, not model drift.
	ShiftAt     int64
	ShiftNodes  []int
	ShiftPPNs   []int
	ShiftMsizes []int64
}

// targets returns the base URLs the workers drive.
func (o *LoadgenOptions) targets() []string {
	if len(o.URLs) > 0 {
		return o.URLs
	}
	return []string{o.URL}
}

// LoadgenReport summarizes a run; it is what BENCH_serve.json holds. In
// batch mode (BatchSize > 0) Requests counts round trips, Instances counts
// tuning decisions, and latencies are per round trip.
type LoadgenReport struct {
	URL             string   `json:"url"`
	Targets         []string `json:"targets,omitempty"`
	Model           string   `json:"model"`
	Workers         int      `json:"workers"`
	BatchSize       int      `json:"batch_size,omitempty"`
	DurationSeconds float64  `json:"duration_seconds"`
	Requests        int64    `json:"requests"`
	Instances       int64    `json:"instances"`
	Errors          int64    `json:"errors"`
	Retries         int64    `json:"retries"`
	CachedHits      int64    `json:"cached_hits"`
	CacheHitRatio   float64  `json:"cache_hit_ratio"`
	Fallbacks       int64    `json:"fallbacks"`
	QPS             float64  `json:"qps"`
	InstancesPerSec float64  `json:"instances_per_sec"`
	LatencyP50Us    float64  `json:"latency_p50_us"`
	LatencyP90Us    float64  `json:"latency_p90_us"`
	LatencyP99Us    float64  `json:"latency_p99_us"`
	LatencyMaxUs    float64  `json:"latency_max_us"`
	// ShiftAt / ShiftedRequests record a mid-run pool shift: the request
	// count the shift was armed at and how many requests drew from the
	// shifted pool.
	ShiftAt         int64 `json:"shift_at,omitempty"`
	ShiftedRequests int64 `json:"shifted_requests,omitempty"`
	// Fleet embeds the router's /fleet/status (retry/hedge/breaker counters
	// and per-replica state) when the first target serves one — the
	// aggregate BENCH_serve.json then carries the fleet's own accounting
	// next to the client-side numbers.
	Fleet json.RawMessage `json:"fleet,omitempty"`
}

func (o *LoadgenOptions) defaults() {
	if o.Duration <= 0 {
		o.Duration = 5 * time.Second
	}
	if o.Workers <= 0 {
		o.Workers = 8
	}
	if o.Retries == 0 {
		o.Retries = 3
	}
	if o.Retries < 0 {
		o.Retries = 0
	}
	if o.RetryBase <= 0 {
		o.RetryBase = 5 * time.Millisecond
	}
	if len(o.Nodes) == 0 {
		o.Nodes = []int{2, 4, 8, 16}
	}
	if len(o.PPNs) == 0 {
		o.PPNs = []int{4, 8}
	}
	if len(o.Msizes) == 0 {
		o.Msizes = []int64{64, 1024, 16384, 262144}
	}
	if o.ShiftAt > 0 {
		if len(o.ShiftNodes) == 0 {
			o.ShiftNodes = o.Nodes
		}
		if len(o.ShiftPPNs) == 0 {
			o.ShiftPPNs = o.PPNs
		}
		if len(o.ShiftMsizes) == 0 {
			o.ShiftMsizes = o.Msizes
		}
	}
}

// loadgenWorker is one client goroutine's tally.
type loadgenWorker struct {
	requests  int64
	instances int64
	errors    int64
	retries   int64
	cached    int64
	fallbacks int64
	shifted   int64
	latencies []float64 // seconds
}

// transientErr marks a failure worth retrying: the request may never have
// reached a healthy replica (dial refused, connection reset mid-response,
// or a gateway 5xx), so trying again is meaningful — unlike a 4xx, which
// would fail identically every time.
type transientErr struct{ err error }

func (e transientErr) Error() string { return e.err.Error() }
func (e transientErr) Unwrap() error { return e.err }

// transientStatus reports whether an HTTP status signals a retryable
// server/gateway condition rather than a caller mistake.
func transientStatus(code int) bool {
	switch code {
	case http.StatusInternalServerError, http.StatusBadGateway,
		http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		return true
	}
	return false
}

// Loadgen runs the load generator against a live server and returns the
// aggregated report. Transport or non-200 responses count as errors; the
// first of them is also returned as a sample so smoke tests fail loudly
// rather than reporting a run that was 100% errors. ctx cancellation stops
// the workers at their next request boundary and is threaded into every
// outbound request, so an aborted run leaves nothing in flight.
func Loadgen(ctx context.Context, opts LoadgenOptions) (LoadgenReport, error) {
	opts.defaults()
	client := &http.Client{
		Transport: &http.Transport{
			MaxIdleConns:        opts.Workers * 2,
			MaxIdleConnsPerHost: opts.Workers * 2,
		},
		Timeout: 10 * time.Second,
	}
	defer client.CloseIdleConnections()

	deadline := time.Now().Add(opts.Duration)
	targets := opts.targets()
	workers := make([]loadgenWorker, opts.Workers)
	var reqCount atomic.Int64 // global request counter driving the pool shift
	var firstErr atomic.Pointer[error]
	var wg sync.WaitGroup
	for wi := 0; wi < opts.Workers; wi++ {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			w := &workers[wi]
			base := targets[wi%len(targets)]
			rng := sim.NewRNG(sim.Seed(opts.Seed, uint64(wi)))
			nodes, ppns, msizes := opts.Nodes, opts.PPNs, opts.Msizes
			draw := func() InstanceRequest {
				return InstanceRequest{
					Nodes: nodes[rng.Intn(len(nodes))],
					PPN:   ppns[rng.Intn(len(ppns))],
					Msize: msizes[rng.Intn(len(msizes))],
				}
			}
			for seq := 0; ctx.Err() == nil && time.Now().Before(deadline); seq++ {
				if opts.ShiftAt > 0 && reqCount.Add(1) > opts.ShiftAt {
					nodes, ppns, msizes = opts.ShiftNodes, opts.ShiftPPNs, opts.ShiftMsizes
					w.shifted++
				}
				// Propagate a worker-scoped request id so every audit line
				// and trace of this run points back at its generator.
				reqID := fmt.Sprintf("lg%d-w%d-%d", opts.Seed, wi, seq)
				var cached, fallbacks, instances int64
				var op func() error
				if opts.Batch > 0 {
					// One batch draws its instances once; retries repost the
					// identical batch, keeping the replayed traffic stable.
					instances = int64(opts.Batch)
					breq := BatchRequest{Model: opts.Model, Instances: make([]InstanceRequest, opts.Batch)}
					for i := range breq.Instances {
						breq.Instances[i] = draw()
					}
					op = func() error {
						var err error
						cached, fallbacks, err = doBatch(ctx, client, base, reqID, breq)
						return err
					}
				} else {
					instances = 1
					in := draw()
					url := fmt.Sprintf("%s/v1/select?model=%s&nodes=%d&ppn=%d&msize=%d",
						base, opts.Model, in.Nodes, in.PPN, in.Msize)
					op = func() error {
						hit, fb, err := doSelect(ctx, client, url, reqID)
						cached, fallbacks = 0, 0
						if hit {
							cached = 1
						}
						if fb {
							fallbacks = 1
						}
						return err
					}
				}
				t0 := time.Now()
				err := op()
				// Transient failures (dial refused, reset, gateway 5xx) are
				// retried with jittered exponential backoff: under a fleet,
				// a replica dying mid-run must not surface to the client.
				for attempt := 0; err != nil && attempt < opts.Retries; attempt++ {
					var te transientErr
					if !errors.As(err, &te) {
						break
					}
					w.retries++
					backoff := opts.RetryBase << attempt
					backoff += time.Duration(rng.Float64() * float64(opts.RetryBase))
					time.Sleep(backoff)
					err = op()
				}
				w.latencies = append(w.latencies, time.Since(t0).Seconds())
				w.requests++
				w.instances += instances
				if err != nil {
					w.errors++
					e := err
					firstErr.CompareAndSwap(nil, &e)
					continue
				}
				w.cached += cached
				w.fallbacks += fallbacks
			}
		}(wi)
	}
	wg.Wait()

	rep := LoadgenReport{URL: targets[0], Model: opts.Model, Workers: opts.Workers,
		BatchSize: opts.Batch, DurationSeconds: opts.Duration.Seconds()}
	if len(targets) > 1 {
		rep.Targets = targets
	}
	var all []float64
	for i := range workers {
		rep.Requests += workers[i].requests
		rep.Instances += workers[i].instances
		rep.Errors += workers[i].errors
		rep.Retries += workers[i].retries
		rep.CachedHits += workers[i].cached
		rep.Fallbacks += workers[i].fallbacks
		rep.ShiftedRequests += workers[i].shifted
		all = append(all, workers[i].latencies...)
	}
	rep.ShiftAt = opts.ShiftAt
	if rep.Instances > 0 {
		rep.CacheHitRatio = float64(rep.CachedHits) / float64(rep.Instances)
	}
	if rep.DurationSeconds > 0 {
		rep.QPS = float64(rep.Requests) / rep.DurationSeconds
		rep.InstancesPerSec = float64(rep.Instances) / rep.DurationSeconds
	}
	sort.Float64s(all)
	rep.LatencyP50Us = quantileUs(all, 0.50)
	rep.LatencyP90Us = quantileUs(all, 0.90)
	rep.LatencyP99Us = quantileUs(all, 0.99)
	if len(all) > 0 {
		rep.LatencyMaxUs = all[len(all)-1] * 1e6
	}
	rep.Fleet = fetchFleetStatus(ctx, client, targets[0])
	if p := firstErr.Load(); p != nil {
		return rep, fmt.Errorf("serve: loadgen saw %d errors, first: %w", rep.Errors, *p)
	}
	return rep, nil
}

// fetchFleetStatus embeds the router's own accounting into the report when
// the first target is a fleet router; replicas (404 here) stay unadorned.
func fetchFleetStatus(ctx context.Context, client *http.Client, base string) json.RawMessage {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/fleet/status", nil)
	if err != nil {
		return nil
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		return nil
	}
	data, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil || !json.Valid(data) {
		return nil
	}
	return json.RawMessage(data)
}

// doSelect issues one /v1/select and reports whether the answer was cached
// and whether it was a fallback. Transport failures and retryable statuses
// come back wrapped as transientErr.
func doSelect(ctx context.Context, client *http.Client, url, reqID string) (cached, fallback bool, err error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return false, false, err
	}
	req.Header.Set("X-Request-Id", reqID)
	resp, err := client.Do(req)
	if err != nil {
		return false, false, transientErr{err}
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		err := fmt.Errorf("status %d: %s", resp.StatusCode, body)
		if transientStatus(resp.StatusCode) {
			return false, false, transientErr{err}
		}
		return false, false, err
	}
	if echo := resp.Header.Get("X-Request-Id"); echo != reqID {
		return false, false, fmt.Errorf("request id not propagated: sent %q, got %q", reqID, echo)
	}
	var sr SelectResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		return false, false, err
	}
	return sr.Cached, sr.Fallback, nil
}

// doBatch posts one /v1/batch and returns how many of its entries were
// answered from the cache and how many fell back. Any per-entry error
// counts as a request error: the pool only draws valid instances, so an
// entry-level failure means the server mishandled the batch. Transport
// failures and retryable statuses come back wrapped as transientErr.
func doBatch(ctx context.Context, client *http.Client, baseURL, reqID string, req BatchRequest) (cached, fallbacks int64, err error) {
	body, err := json.Marshal(req)
	if err != nil {
		return 0, 0, err
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, baseURL+"/v1/batch", bytes.NewReader(body))
	if err != nil {
		return 0, 0, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	hreq.Header.Set("X-Request-Id", reqID)
	resp, err := client.Do(hreq)
	if err != nil {
		return 0, 0, transientErr{err}
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		err := fmt.Errorf("status %d: %s", resp.StatusCode, msg)
		if transientStatus(resp.StatusCode) {
			return 0, 0, transientErr{err}
		}
		return 0, 0, err
	}
	var br BatchResponse
	if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
		return 0, 0, transientErr{err}
	}
	n := len(req.Instances)
	if len(br.Results) != n {
		return 0, 0, fmt.Errorf("batch of %d answered with %d results", n, len(br.Results))
	}
	for i, res := range br.Results {
		if res.Error != "" {
			return cached, fallbacks, fmt.Errorf("batch entry %d: %s", i, res.Error)
		}
		if res.InstanceRequest != req.Instances[i] {
			return cached, fallbacks, fmt.Errorf("batch entry %d echoes %+v, sent %+v", i, res.InstanceRequest, req.Instances[i])
		}
		if res.Cached {
			cached++
		}
		if res.Fallback {
			fallbacks++
		}
	}
	return cached, fallbacks, nil
}

// quantileUs returns the q-th quantile of sorted seconds, in microseconds.
func quantileUs(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i] * 1e6
}

// WriteFile writes the report as indented JSON, atomically.
func (r LoadgenReport) WriteFile(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}
