// The load generator: a client-side benchmark for a running mpicollserve
// instance. Workers replay a bounded pool of instances (so the server's
// selection cache gets realistic re-use), and the run is summarized as
// QPS + latency quantiles in a JSON report (BENCH_serve.json in CI).

package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"mpicollpred/internal/sim"
)

// LoadgenOptions configures a load-generation run.
type LoadgenOptions struct {
	// URL is the server base URL (e.g. "http://127.0.0.1:8080").
	URL string
	// Model names the model to query ("" works for single-model servers).
	Model string
	// Duration is how long to generate load (default 5s).
	Duration time.Duration
	// Workers is the number of concurrent client goroutines (default 8).
	Workers int
	// Seed keys the deterministic instance sequence.
	Seed uint64
	// Batch switches the workers from /v1/select to /v1/batch, posting this
	// many instances per request (0 keeps the single-select mode).
	Batch int
	// Nodes/PPNs/Msizes form the instance pool workers draw from. The pool
	// is deliberately small: real tuning traffic repeats the same instances,
	// which is what the selection cache exists for.
	Nodes  []int
	PPNs   []int
	Msizes []int64
}

// LoadgenReport summarizes a run; it is what BENCH_serve.json holds. In
// batch mode (BatchSize > 0) Requests counts round trips, Instances counts
// tuning decisions, and latencies are per round trip.
type LoadgenReport struct {
	URL             string  `json:"url"`
	Model           string  `json:"model"`
	Workers         int     `json:"workers"`
	BatchSize       int     `json:"batch_size,omitempty"`
	DurationSeconds float64 `json:"duration_seconds"`
	Requests        int64   `json:"requests"`
	Instances       int64   `json:"instances"`
	Errors          int64   `json:"errors"`
	CachedHits      int64   `json:"cached_hits"`
	CacheHitRatio   float64 `json:"cache_hit_ratio"`
	Fallbacks       int64   `json:"fallbacks"`
	QPS             float64 `json:"qps"`
	InstancesPerSec float64 `json:"instances_per_sec"`
	LatencyP50Us    float64 `json:"latency_p50_us"`
	LatencyP90Us    float64 `json:"latency_p90_us"`
	LatencyP99Us    float64 `json:"latency_p99_us"`
	LatencyMaxUs    float64 `json:"latency_max_us"`
}

func (o *LoadgenOptions) defaults() {
	if o.Duration <= 0 {
		o.Duration = 5 * time.Second
	}
	if o.Workers <= 0 {
		o.Workers = 8
	}
	if len(o.Nodes) == 0 {
		o.Nodes = []int{2, 4, 8, 16}
	}
	if len(o.PPNs) == 0 {
		o.PPNs = []int{4, 8}
	}
	if len(o.Msizes) == 0 {
		o.Msizes = []int64{64, 1024, 16384, 262144}
	}
}

// loadgenWorker is one client goroutine's tally.
type loadgenWorker struct {
	requests  int64
	instances int64
	errors    int64
	cached    int64
	fallbacks int64
	latencies []float64 // seconds
}

// Loadgen runs the load generator against a live server and returns the
// aggregated report. Transport or non-200 responses count as errors; the
// first of them is also returned as a sample so smoke tests fail loudly
// rather than reporting a run that was 100% errors.
func Loadgen(opts LoadgenOptions) (LoadgenReport, error) {
	opts.defaults()
	client := &http.Client{
		Transport: &http.Transport{
			MaxIdleConns:        opts.Workers * 2,
			MaxIdleConnsPerHost: opts.Workers * 2,
		},
		Timeout: 10 * time.Second,
	}
	defer client.CloseIdleConnections()

	deadline := time.Now().Add(opts.Duration)
	workers := make([]loadgenWorker, opts.Workers)
	var firstErr atomic.Pointer[error]
	var wg sync.WaitGroup
	for wi := 0; wi < opts.Workers; wi++ {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			w := &workers[wi]
			rng := sim.NewRNG(sim.Seed(opts.Seed, uint64(wi)))
			draw := func() InstanceRequest {
				return InstanceRequest{
					Nodes: opts.Nodes[rng.Intn(len(opts.Nodes))],
					PPN:   opts.PPNs[rng.Intn(len(opts.PPNs))],
					Msize: opts.Msizes[rng.Intn(len(opts.Msizes))],
				}
			}
			for seq := 0; time.Now().Before(deadline); seq++ {
				// Propagate a worker-scoped request id so every audit line
				// and trace of this run points back at its generator.
				reqID := fmt.Sprintf("lg%d-w%d-%d", opts.Seed, wi, seq)
				var cached, fallbacks, instances int64
				var err error
				t0 := time.Now()
				if opts.Batch > 0 {
					instances = int64(opts.Batch)
					cached, fallbacks, err = doBatch(client, opts.URL, opts.Model, reqID, draw, opts.Batch)
				} else {
					instances = 1
					in := draw()
					url := fmt.Sprintf("%s/v1/select?model=%s&nodes=%d&ppn=%d&msize=%d",
						opts.URL, opts.Model, in.Nodes, in.PPN, in.Msize)
					var hit, fb bool
					hit, fb, err = doSelect(client, url, reqID)
					if hit {
						cached = 1
					}
					if fb {
						fallbacks = 1
					}
				}
				w.latencies = append(w.latencies, time.Since(t0).Seconds())
				w.requests++
				w.instances += instances
				if err != nil {
					w.errors++
					e := err
					firstErr.CompareAndSwap(nil, &e)
					continue
				}
				w.cached += cached
				w.fallbacks += fallbacks
			}
		}(wi)
	}
	wg.Wait()

	rep := LoadgenReport{URL: opts.URL, Model: opts.Model, Workers: opts.Workers,
		BatchSize: opts.Batch, DurationSeconds: opts.Duration.Seconds()}
	var all []float64
	for i := range workers {
		rep.Requests += workers[i].requests
		rep.Instances += workers[i].instances
		rep.Errors += workers[i].errors
		rep.CachedHits += workers[i].cached
		rep.Fallbacks += workers[i].fallbacks
		all = append(all, workers[i].latencies...)
	}
	if rep.Instances > 0 {
		rep.CacheHitRatio = float64(rep.CachedHits) / float64(rep.Instances)
	}
	if rep.DurationSeconds > 0 {
		rep.QPS = float64(rep.Requests) / rep.DurationSeconds
		rep.InstancesPerSec = float64(rep.Instances) / rep.DurationSeconds
	}
	sort.Float64s(all)
	rep.LatencyP50Us = quantileUs(all, 0.50)
	rep.LatencyP90Us = quantileUs(all, 0.90)
	rep.LatencyP99Us = quantileUs(all, 0.99)
	if len(all) > 0 {
		rep.LatencyMaxUs = all[len(all)-1] * 1e6
	}
	if p := firstErr.Load(); p != nil {
		return rep, fmt.Errorf("serve: loadgen saw %d errors, first: %w", rep.Errors, *p)
	}
	return rep, nil
}

// doSelect issues one /v1/select and reports whether the answer was cached
// and whether it was a fallback.
func doSelect(client *http.Client, url, reqID string) (cached, fallback bool, err error) {
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		return false, false, err
	}
	req.Header.Set("X-Request-Id", reqID)
	resp, err := client.Do(req)
	if err != nil {
		return false, false, err
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return false, false, fmt.Errorf("status %d: %s", resp.StatusCode, body)
	}
	if echo := resp.Header.Get("X-Request-Id"); echo != reqID {
		return false, false, fmt.Errorf("request id not propagated: sent %q, got %q", reqID, echo)
	}
	var sr SelectResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		return false, false, err
	}
	return sr.Cached, sr.Fallback, nil
}

// doBatch posts one /v1/batch of n drawn instances and returns how many of
// its entries were answered from the cache and how many fell back. Any
// per-entry error counts as a request error: the pool only draws valid
// instances, so an entry-level failure means the server mishandled the batch.
func doBatch(client *http.Client, baseURL, model, reqID string, draw func() InstanceRequest, n int) (cached, fallbacks int64, err error) {
	req := BatchRequest{Model: model, Instances: make([]InstanceRequest, n)}
	for i := range req.Instances {
		req.Instances[i] = draw()
	}
	body, err := json.Marshal(req)
	if err != nil {
		return 0, 0, err
	}
	hreq, err := http.NewRequest(http.MethodPost, baseURL+"/v1/batch", bytes.NewReader(body))
	if err != nil {
		return 0, 0, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	hreq.Header.Set("X-Request-Id", reqID)
	resp, err := client.Do(hreq)
	if err != nil {
		return 0, 0, err
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return 0, 0, fmt.Errorf("status %d: %s", resp.StatusCode, msg)
	}
	var br BatchResponse
	if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
		return 0, 0, err
	}
	if len(br.Results) != n {
		return 0, 0, fmt.Errorf("batch of %d answered with %d results", n, len(br.Results))
	}
	for i, res := range br.Results {
		if res.Error != "" {
			return cached, fallbacks, fmt.Errorf("batch entry %d: %s", i, res.Error)
		}
		if res.InstanceRequest != req.Instances[i] {
			return cached, fallbacks, fmt.Errorf("batch entry %d echoes %+v, sent %+v", i, res.InstanceRequest, req.Instances[i])
		}
		if res.Cached {
			cached++
		}
		if res.Fallback {
			fallbacks++
		}
	}
	return cached, fallbacks, nil
}

// quantileUs returns the q-th quantile of sorted seconds, in microseconds.
func quantileUs(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i] * 1e6
}

// WriteFile writes the report as indented JSON, atomically.
func (r LoadgenReport) WriteFile(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}
