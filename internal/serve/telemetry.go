package serve

import (
	"math"
	"sort"
	"sync"
	"time"

	"mpicollpred/internal/audit"
	"mpicollpred/internal/obs"
)

// Telemetry thresholds and window sizes. The fallback/envelope monitors use
// the same warn/breach rates as mpicollaudit's offline drift report, so the
// live server and the log replay agree on what "drifting" means.
const (
	// telemetryPredWindow is the per-model rolling window of served
	// predictions the streaming quantiles cover.
	telemetryPredWindow = 512
	// telemetrySLOWindow is the request window of the SLO burn monitors.
	telemetrySLOWindow = 512
	// DefaultLatencySLO is the per-request latency objective when
	// Options.LatencySLO is unset.
	DefaultLatencySLO = 100 * time.Millisecond
	// sloAvailabilityObjective is the availability SLO (non-5xx fraction).
	sloAvailabilityObjective = 0.999
	// sloLatencyObjective is the latency SLO (fraction under LatencySLO).
	sloLatencyObjective = 0.99
)

// modelTelemetry is one model's live monitors.
type modelTelemetry struct {
	pred     *obs.QuantileWindow
	fallback *obs.RateMonitor
	envelope *obs.RateMonitor
	requests uint64
	cached   uint64
}

// Telemetry watches served decisions for drift and requests for SLO burn.
// All monitors are event-driven (obs/monitor.go), so a seeded load produces
// bit-identical telemetry run after run.
type Telemetry struct {
	mu           sync.Mutex
	models       map[string]*modelTelemetry
	availability *obs.BurnRate
	latency      *obs.BurnRate
	latencySLO   time.Duration
}

func newTelemetry(latencySLO time.Duration) *Telemetry {
	if latencySLO <= 0 {
		latencySLO = DefaultLatencySLO
	}
	return &Telemetry{
		models:       map[string]*modelTelemetry{},
		availability: obs.NewBurnRate(sloAvailabilityObjective, telemetrySLOWindow),
		latency:      obs.NewBurnRate(sloLatencyObjective, telemetrySLOWindow),
		latencySLO:   latencySLO,
	}
}

func (t *Telemetry) model(name string) *modelTelemetry {
	t.mu.Lock()
	defer t.mu.Unlock()
	mt := t.models[name]
	if mt == nil {
		mt = &modelTelemetry{
			pred:     obs.NewQuantileWindow(telemetryPredWindow),
			fallback: obs.NewRateMonitor(0.05, audit.DriftFallbackWarn, audit.DriftFallbackBreach),
			envelope: obs.NewRateMonitor(0.05, audit.DriftFallbackWarn, audit.DriftFallbackBreach),
		}
		t.models[name] = mt
	}
	return mt
}

// ObserveDecision folds one served decision into the model's monitors.
func (t *Telemetry) ObserveDecision(model string, d Decision) {
	mt := t.model(model)
	t.mu.Lock()
	mt.requests++
	if d.Cached {
		mt.cached++
	}
	t.mu.Unlock()
	mt.fallback.Observe(d.Fallback)
	mt.envelope.Observe(d.Fallback && d.FallbackReason == "extrapolation")
	if d.PredictedSeconds != nil {
		mt.pred.Observe(*d.PredictedSeconds)
	}
}

// ObserveRequest folds one HTTP outcome into the SLO burn monitors.
func (t *Telemetry) ObserveRequest(code int, elapsed time.Duration) {
	t.availability.Observe(code < 500)
	t.latency.Observe(elapsed <= t.latencySLO)
}

// jsonFloat boxes v for JSON, nil when NaN (encoding/json rejects NaN).
func jsonFloat(v float64) *float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return nil
	}
	return &v
}

// TelemetryQuantile is one labelled quantile of a model's prediction window.
type TelemetryQuantile struct {
	Q string   `json:"q"`
	V *float64 `json:"v"`
}

// ModelTelemetrySnapshot is one model's entry in /v1/telemetry.
type ModelTelemetrySnapshot struct {
	Model          string              `json:"model"`
	Requests       uint64              `json:"requests"`
	Cached         uint64              `json:"cached"`
	WindowLen      int                 `json:"pred_window_len"`
	PredQuantiles  []TelemetryQuantile `json:"pred_quantiles"`
	FallbackRate   float64             `json:"fallback_rate"`
	FallbackLevel  string              `json:"fallback_level"`
	EnvelopeRate   float64             `json:"envelope_rate"`
	EnvelopeLevel  string              `json:"envelope_level"`
	FallbackEvents uint64              `json:"fallback_events"`
	EnvelopeEvents uint64              `json:"envelope_events"`
}

// BurnSnapshot is one SLO burn monitor's state.
type BurnSnapshot struct {
	Objective float64 `json:"objective"`
	Burn      float64 `json:"burn"`
	Level     string  `json:"level"`
	Good      uint64  `json:"good"`
	Bad       uint64  `json:"bad"`
}

// TelemetrySnapshot is the /v1/telemetry payload: models sorted by name,
// quantiles in fixed label order — one stable schema.
type TelemetrySnapshot struct {
	Models            []ModelTelemetrySnapshot `json:"models"`
	Availability      BurnSnapshot             `json:"availability"`
	Latency           BurnSnapshot             `json:"latency"`
	LatencySLOSeconds float64                  `json:"latency_slo_seconds"`
	TracesStored      int                      `json:"traces_stored"`
	TracesTotal       uint64                   `json:"traces_total"`
}

func burnSnapshot(b *obs.BurnRate) BurnSnapshot {
	good, bad := b.Totals()
	return BurnSnapshot{Objective: b.Objective(), Burn: b.Burn(),
		Level: b.Level().String(), Good: good, Bad: bad}
}

// Snapshot captures the current telemetry state.
func (t *Telemetry) Snapshot(ring *obs.SpanRing) TelemetrySnapshot {
	t.mu.Lock()
	names := make([]string, 0, len(t.models))
	for name := range t.models {
		names = append(names, name)
	}
	sort.Strings(names)
	mts := make([]*modelTelemetry, len(names))
	counts := make([][2]uint64, len(names))
	for i, name := range names {
		mts[i] = t.models[name]
		counts[i] = [2]uint64{t.models[name].requests, t.models[name].cached}
	}
	t.mu.Unlock()

	snap := TelemetrySnapshot{
		Models:            []ModelTelemetrySnapshot{},
		Availability:      burnSnapshot(t.availability),
		Latency:           burnSnapshot(t.latency),
		LatencySLOSeconds: t.latencySLO.Seconds(),
	}
	snap.TracesStored, snap.TracesTotal = ring.Stats()
	for i, name := range names {
		mt := mts[i]
		_, fbEvents, _ := mt.fallback.Stats()
		_, envEvents, _ := mt.envelope.Stats()
		ms := ModelTelemetrySnapshot{
			Model: name, Requests: counts[i][0], Cached: counts[i][1],
			WindowLen:      mt.pred.Len(),
			FallbackRate:   mt.fallback.Rate(),
			FallbackLevel:  mt.fallback.Level().String(),
			EnvelopeRate:   mt.envelope.Rate(),
			EnvelopeLevel:  mt.envelope.Level().String(),
			FallbackEvents: fbEvents,
			EnvelopeEvents: envEvents,
		}
		for _, q := range []struct {
			label string
			q     float64
		}{{"p10", 0.10}, {"p50", 0.50}, {"p90", 0.90}, {"p99", 0.99}} {
			ms.PredQuantiles = append(ms.PredQuantiles,
				TelemetryQuantile{Q: q.label, V: jsonFloat(mt.pred.Quantile(q.q))})
		}
		snap.Models = append(snap.Models, ms)
	}
	return snap
}

// mirror publishes the monitor states into the metrics registry so one
// /metrics scrape carries drift and SLO health alongside the HTTP counters.
// Levels are exported numerically (ok=0 warn=1 breach=2).
func (t *Telemetry) mirror(metrics *obs.Registry, ring *obs.SpanRing) {
	snap := t.Snapshot(ring)
	for _, m := range snap.Models {
		labels := obs.Labels{"model": m.Model}
		metrics.Gauge("serve_model_fallback_rate", labels).Set(m.FallbackRate)
		metrics.Gauge("serve_model_fallback_level", labels).Set(levelValue(m.FallbackLevel))
		metrics.Gauge("serve_model_envelope_rate", labels).Set(m.EnvelopeRate)
		metrics.Gauge("serve_model_envelope_level", labels).Set(levelValue(m.EnvelopeLevel))
		for _, q := range m.PredQuantiles {
			if q.V != nil {
				metrics.Gauge("serve_model_pred_seconds", obs.Labels{"model": m.Model, "q": q.Q}).Set(*q.V)
			}
		}
	}
	metrics.Gauge("serve_slo_availability_burn", nil).Set(snap.Availability.Burn)
	metrics.Gauge("serve_slo_availability_level", nil).Set(levelValue(snap.Availability.Level))
	metrics.Gauge("serve_slo_latency_burn", nil).Set(snap.Latency.Burn)
	metrics.Gauge("serve_slo_latency_level", nil).Set(levelValue(snap.Latency.Level))
	metrics.Gauge("serve_traces_stored", nil).Set(float64(snap.TracesStored))
	metrics.Gauge("serve_traces_total", nil).Set(float64(snap.TracesTotal))
}

func levelValue(level string) float64 {
	switch level {
	case "warn":
		return 1
	case "breach":
		return 2
	default:
		return 0
	}
}
