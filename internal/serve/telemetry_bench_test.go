package serve

import (
	"testing"

	"mpicollpred/internal/obs"
)

// Benchmark twins for the acceptance bound that tracing must cost the
// /v1/select path ≤10% at p99 when on, and nothing when off:
//
//	go test ./internal/serve/ -bench BenchmarkSelectPath -benchmem
//
// The off twin must show identical allocs/op to the pre-telemetry selector
// path (TestUntracedSelectAddsNoAllocations pins the stronger claim).
func benchmarkSelectPath(b *testing.B, traceRing int) {
	_, knn, _ := testModels(b)
	// Cache disabled: every iteration takes the full selector path, the
	// worst case for tracing overhead.
	s, err := New(Options{CacheSize: -1, Metrics: obs.NewRegistry(), TraceRing: traceRing})
	if err != nil {
		b.Fatal(err)
	}
	if err := s.Registry().Install(knn); err != nil {
		b.Fatal(err)
	}
	set := s.reg.view()
	m, err := set.get("")
	if err != nil {
		b.Fatal(err)
	}
	in := InstanceRequest{Nodes: 2, PPN: 4, Msize: 1024}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var sp *obs.Span
		if s.ring != nil {
			sp = s.ring.StartRequest("bench", "select")
		}
		s.selectCached(set, m, in, sp)
		sp.End()
	}
}

func BenchmarkSelectPathTracingOff(b *testing.B) { benchmarkSelectPath(b, 0) }
func BenchmarkSelectPathTracingOn(b *testing.B)  { benchmarkSelectPath(b, 64) }

// TestUntracedSelectAddsNoAllocations proves the off-by-default path is
// free: Select and SelectTraced-with-nil-tracer allocate identically.
func TestUntracedSelectAddsNoAllocations(t *testing.T) {
	_, knn, _ := testModels(t)
	plain := testing.AllocsPerRun(200, func() {
		knn.Sel.Select(2, 4, 1024)
	})
	traced := testing.AllocsPerRun(200, func() {
		knn.Sel.SelectTraced(2, 4, 1024, nil)
	})
	if traced != plain {
		t.Fatalf("SelectTraced(nil) allocates %.1f/op, Select %.1f/op — tracing off is not free", traced, plain)
	}
}
