package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"mpicollpred/internal/audit"
)

func TestReadyzLifecycle(t *testing.T) {
	_, knn, _ := testModels(t)
	s, err := New(Options{CacheSize: 64})
	if err != nil {
		t.Fatal(err)
	}

	// No models loaded yet: alive but not ready.
	var hr HealthResponse
	getJSON(t, s.Handler(), "/healthz", http.StatusOK, &hr)
	if hr.Ready {
		t.Fatal("/healthz reports ready before any snapshot generation")
	}
	var rr ReadyResponse
	getJSON(t, s.Handler(), "/readyz", http.StatusServiceUnavailable, &rr)
	if rr.Reason != "no models loaded" {
		t.Fatalf("readyz reason %q, want %q", rr.Reason, "no models loaded")
	}

	if err := s.Registry().Install(knn); err != nil {
		t.Fatal(err)
	}
	getJSON(t, s.Handler(), "/readyz", http.StatusOK, &rr)
	if rr.Status != "ready" || rr.Generation == 0 {
		t.Fatalf("readyz %+v after install, want ready with a generation", rr)
	}

	// Draining flips readiness but not liveness.
	s.BeginDrain()
	getJSON(t, s.Handler(), "/readyz", http.StatusServiceUnavailable, &rr)
	if rr.Reason != "draining" {
		t.Fatalf("readyz reason %q while draining, want %q", rr.Reason, "draining")
	}
	getJSON(t, s.Handler(), "/healthz", http.StatusOK, &hr)
	if hr.Status != "ok" {
		t.Fatalf("healthz status %q while draining, want ok (liveness is separate)", hr.Status)
	}
}

func TestBodyLimit413(t *testing.T) {
	_, knn, _ := testModels(t)
	s := testServer(t, knn)

	// A syntactically valid request padded past the 1 MiB body cap.
	pad := strings.Repeat("x", maxBodyBytes+1024)
	body := []byte(`{"model":"` + pad + `","instances":[{"nodes":4,"ppn":4,"msize":1024}]}`)
	req := httptest.NewRequest(http.MethodPost, "/v1/batch", bytes.NewReader(body))
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized batch got %d, want 413: %s", rec.Code, rec.Body)
	}

	// The overflow is visible on /metrics.
	req = httptest.NewRequest(http.MethodGet, "/metrics", nil)
	rec = httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if !strings.Contains(rec.Body.String(), "serve_body_overflow_total") {
		t.Fatal("/metrics does not report serve_body_overflow_total after a 413")
	}

	// A same-sized select body is rejected too, and normal requests still work.
	req = httptest.NewRequest(http.MethodPost, "/v1/select", bytes.NewReader(body))
	rec = httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized select got %d, want 413", rec.Code)
	}
	var sr SelectResponse
	getJSON(t, s.Handler(), "/v1/select?nodes=4&ppn=4&msize=1024", http.StatusOK, &sr)
	if sr.Label == "" {
		t.Fatal("select broken after body-limit rejections")
	}
}

// TestGracefulDrain is the acceptance test for the drain satellite: a
// SIGTERM-style drain (BeginDrain + Shutdown) while a /v1/batch request is
// in flight must flip /readyz immediately, let the batch finish with a full
// 200 response, and lose zero audit lines.
func TestGracefulDrain(t *testing.T) {
	_, knn, _ := testModels(t)
	dir := t.TempDir()
	auditPath := filepath.Join(dir, "audit.jsonl")
	alog, err := audit.NewLogger(auditPath, audit.LoggerOptions{})
	if err != nil {
		t.Fatal(err)
	}

	// The middleware holds the batch at the door until the test has begun
	// the drain, so "drain with a request in flight" is a certainty, not a
	// race the test hopes to win.
	started := make(chan struct{})
	release := make(chan struct{})
	mw := func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Path == "/v1/batch" {
				close(started)
				<-release
			}
			next.ServeHTTP(w, r)
		})
	}
	s, err := New(Options{CacheSize: -1, Audit: alog, Middleware: mw})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Registry().Install(knn); err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- s.Serve(l) }()
	base := "http://" + l.Addr().String()

	const instances = 200
	var breq BatchRequest
	for i := 0; i < instances; i++ {
		breq.Instances = append(breq.Instances,
			InstanceRequest{Nodes: 2 + i%5, PPN: 1 + 3*(i%2), Msize: 1024})
	}
	body, err := json.Marshal(breq)
	if err != nil {
		t.Fatal(err)
	}
	type result struct {
		resp *http.Response
		err  error
	}
	resCh := make(chan result, 1)
	go func() {
		resp, err := http.Post(base+"/v1/batch", "application/json", bytes.NewReader(body))
		resCh <- result{resp, err}
	}()

	<-started // the batch is now in flight
	s.BeginDrain()

	// Readiness flips at once (the listener is still up until Shutdown).
	resp, err := http.Get(base + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	var rr ReadyResponse
	if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || rr.Reason != "draining" {
		t.Fatalf("readyz during drain: %d %+v, want 503/draining", resp.StatusCode, rr)
	}

	shutDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shutDone <- s.Shutdown(ctx)
	}()
	close(release)

	res := <-resCh
	if res.err != nil {
		t.Fatalf("in-flight batch failed during drain: %v", res.err)
	}
	data, err := io.ReadAll(res.resp.Body)
	_ = res.resp.Body.Close()
	if err != nil {
		t.Fatalf("reading drained batch response: %v", err)
	}
	if res.resp.StatusCode != http.StatusOK {
		t.Fatalf("in-flight batch got %d during drain, want 200: %s", res.resp.StatusCode, data)
	}
	var bresp BatchResponse
	if err := json.Unmarshal(data, &bresp); err != nil {
		t.Fatalf("drained batch response is not valid JSON: %v", err)
	}
	if len(bresp.Results) != instances {
		t.Fatalf("drained batch returned %d results, want %d", len(bresp.Results), instances)
	}
	for i, r := range bresp.Results {
		if r.Error != "" || r.Label == "" {
			t.Fatalf("result %d incomplete after drain: %+v", i, r)
		}
	}
	if err := <-shutDone; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := <-serveDone; err != nil {
		t.Fatalf("serve: %v", err)
	}

	// Every decision of the in-flight batch must be on disk: zero lost
	// audit lines.
	if err := alog.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(auditPath)
	if err != nil {
		t.Fatal(err)
	}
	lines := 0
	for _, line := range strings.Split(string(raw), "\n") {
		if strings.TrimSpace(line) == "" {
			continue
		}
		var rec audit.Record
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("corrupt audit line %q: %v", line, err)
		}
		lines++
	}
	if lines != instances {
		t.Fatalf("audit log holds %d lines after drain, want %d (lost %d)",
			lines, instances, instances-lines)
	}
}

func TestLoadgenRetriesTransient(t *testing.T) {
	_, knn, _ := testModels(t)
	s := testServer(t, knn)

	// The first few requests fail with 503; retries must absorb them.
	var n atomic.Int64
	flaky := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if n.Add(1) <= 2 {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		s.Handler().ServeHTTP(w, r)
	}))
	defer flaky.Close()

	rep, err := Loadgen(context.Background(), LoadgenOptions{
		URL:       flaky.URL,
		Duration:  200 * time.Millisecond,
		Workers:   2,
		Seed:      7,
		Retries:   3,
		RetryBase: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests == 0 {
		t.Fatal("loadgen issued no requests")
	}
	if rep.Errors != 0 {
		t.Fatalf("%d errors despite retries, want 0", rep.Errors)
	}
	if rep.Retries == 0 {
		t.Fatal("transient 503s produced no retries")
	}
}
