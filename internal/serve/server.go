// Package serve is the tuning service of the framework: the paper's
// deployment story (§V) — "which algorithm for (coll, n, ppn, m)?" at
// allocation time — run as a long-lived process. Trained selectors are
// loaded from model snapshots into a hot-reloadable registry, answered
// selections are memoized in a sharded LRU cache, and every endpoint
// reports latency and traffic into the observability registry.
//
// Endpoints:
//
//	GET/POST /v1/select    one tuning decision for an instance
//	GET/POST /v1/predict   every configuration's predicted time, ranked
//	POST     /v1/batch     many decisions in one round trip
//	POST     /v1/reload    reload snapshots from disk (also SIGHUP); an
//	                       optional {"paths": [...]} body switches the
//	                       snapshot set (the fleet canary-rollout seam)
//	GET      /v1/telemetry drift + SLO monitor states
//	GET      /healthz      liveness + loaded-model inventory
//	GET      /readyz       readiness: 503 until the first snapshot
//	                       generation loads and during shutdown drain
//	GET      /metrics      obs registry snapshot (text, ?format=json)
//	GET      /debug/traces recent request traces (JSON, ?format=chrome)
//
// Every request carries an X-Request-Id (caller-provided or assigned) that
// threads through the span tree, the response header, and the audit log —
// one id connects a loadgen worker, its trace, and its audit lines.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"mpicollpred/internal/audit"
	"mpicollpred/internal/core"
	"mpicollpred/internal/dataset"
	"mpicollpred/internal/obs"
)

// Options configures a Server.
type Options struct {
	// SnapshotPaths are the model snapshots served; Reload re-reads them.
	SnapshotPaths []string
	// CacheSize is the selection-cache capacity in entries (default 65536;
	// negative disables caching).
	CacheSize int
	// CacheShards is the shard count (default 16).
	CacheShards int
	// BatchWorkers caps the per-request concurrency of /v1/batch (default
	// GOMAXPROCS; 1 answers batches serially). One batch never spawns more
	// goroutines than this, however many instances it carries.
	BatchWorkers int
	// Log receives request-path errors; nil discards them.
	Log *obs.Logger
	// Metrics is the registry the server reports into (default obs.Default).
	Metrics *obs.Registry
	// Audit is the selection audit log; nil disables auditing.
	Audit *audit.Logger
	// TraceRing is how many recent request traces /debug/traces keeps;
	// 0 (the default) disables tracing entirely — the request path then
	// takes the zero-allocation no-op spans.
	TraceRing int
	// LatencySLO is the per-request latency objective of the latency burn
	// monitor (default DefaultLatencySLO).
	LatencySLO time.Duration
	// Middleware, when set, wraps the whole handler chain in Serve —
	// the seam the chaos injector (fault.ChaosPlan) plugs into.
	Middleware func(http.Handler) http.Handler
}

// Server answers tuning queries from a registry of loaded models.
type Server struct {
	reg          *Registry
	cache        *SelectionCache
	pathsMu      sync.Mutex
	paths        []string
	log          *obs.Logger
	metrics      *obs.Registry
	auditLog     *audit.Logger
	ring         *obs.SpanRing // nil when tracing is off
	tel          *Telemetry
	reqSeq       atomic.Uint64
	mux          *http.ServeMux
	httpSrv      *http.Server
	middleware   func(http.Handler) http.Handler
	batchWorkers int
	draining     atomic.Bool
	retrainMu    sync.Mutex
	retrainFn    func() any
}

// maxBodyBytes bounds request bodies; the largest legitimate payload is a
// batch of a few thousand instances.
const maxBodyBytes = 1 << 20

// New builds a server and performs the initial snapshot load (skipped when
// no paths are configured — models can be Installed in-process instead).
func New(opts Options) (*Server, error) {
	if opts.CacheSize == 0 {
		opts.CacheSize = 65536
	}
	if opts.CacheShards == 0 {
		opts.CacheShards = 16
	}
	if opts.Metrics == nil {
		opts.Metrics = obs.Default
	}
	if opts.BatchWorkers == 0 {
		opts.BatchWorkers = runtime.GOMAXPROCS(0)
	}
	if opts.BatchWorkers < 1 {
		opts.BatchWorkers = 1
	}
	s := &Server{
		reg:          NewRegistry(),
		cache:        NewSelectionCache(opts.CacheSize, opts.CacheShards),
		paths:        append([]string(nil), opts.SnapshotPaths...),
		log:          opts.Log,
		metrics:      opts.Metrics,
		auditLog:     opts.Audit,
		ring:         obs.NewSpanRing(opts.TraceRing),
		tel:          newTelemetry(opts.LatencySLO),
		middleware:   opts.Middleware,
		batchWorkers: opts.BatchWorkers,
	}
	if len(s.paths) > 0 {
		if err := s.reg.Load(s.paths); err != nil {
			return nil, err
		}
	}
	s.mux = http.NewServeMux()
	s.mux.Handle("/v1/select", s.instrument("select", s.handleSelect))
	s.mux.Handle("/v1/predict", s.instrument("predict", s.handlePredict))
	s.mux.Handle("/v1/batch", s.instrument("batch", s.handleBatch))
	s.mux.Handle("/v1/reload", s.instrument("reload", s.handleReload))
	s.mux.Handle("/v1/telemetry", s.instrument("telemetry", s.handleTelemetry))
	s.mux.Handle("/healthz", s.instrument("healthz", s.handleHealthz))
	s.mux.Handle("/readyz", s.instrument("readyz", s.handleReadyz))
	s.mux.Handle("/metrics", s.instrument("metrics", s.handleMetrics))
	s.mux.Handle("/debug/traces", s.instrument("traces", s.handleTraces))
	s.mux.Handle("/v1/retrain/status", s.instrument("retrain_status", s.handleRetrainStatus))
	return s, nil
}

// SetRetrainStatus installs the status provider behind /v1/retrain/status.
// The serving layer knows nothing about the retraining loop beyond this
// callback — the loop lives in internal/retrain and reaches back into the
// server only through ReloadPaths, keeping the dependency one-directional.
func (s *Server) SetRetrainStatus(fn func() any) {
	s.retrainMu.Lock()
	s.retrainFn = fn
	s.retrainMu.Unlock()
}

func (s *Server) handleRetrainStatus(w http.ResponseWriter, r *http.Request) int {
	if r.Method != http.MethodGet {
		return s.writeError(w, http.StatusMethodNotAllowed, "GET the retrain status")
	}
	s.retrainMu.Lock()
	fn := s.retrainFn
	s.retrainMu.Unlock()
	if fn == nil {
		return s.writeError(w, http.StatusNotFound, "retraining loop not enabled (-retrain)")
	}
	return s.writeJSON(w, http.StatusOK, fn())
}

// Registry exposes the model registry (for in-process installs and tests).
func (s *Server) Registry() *Registry { return s.reg }

// Cache exposes the selection cache.
func (s *Server) Cache() *SelectionCache { return s.cache }

// Telemetry exposes the drift/SLO monitors.
func (s *Server) Telemetry() *Telemetry { return s.tel }

// TraceRing exposes the recent-trace ring (nil when tracing is off).
func (s *Server) TraceRing() *obs.SpanRing { return s.ring }

// Handler returns the root handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Serve answers requests on l until Shutdown. The full timeout set guards
// the fleet's replicas against slow-loris clients and wedged writes: a
// stuck peer times out instead of pinning a connection forever.
func (s *Server) Serve(l net.Listener) error {
	h := http.Handler(s.mux)
	if s.middleware != nil {
		h = s.middleware(h)
	}
	s.httpSrv = &http.Server{
		Handler:           h,
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      60 * time.Second,
		IdleTimeout:       120 * time.Second,
	}
	err := s.httpSrv.Serve(l)
	if errors.Is(err, http.ErrServerClosed) {
		return nil
	}
	return err
}

// BeginDrain flips /readyz to not-ready so the fleet router stops routing
// here, without refusing the requests already in flight. Call it on SIGTERM
// before Shutdown; the gap between the two is the router's chance to notice.
func (s *Server) BeginDrain() { s.draining.Store(true) }

// Draining reports whether BeginDrain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// Ready reports whether the server should receive routed traffic, and if
// not, why: a server is ready once the first snapshot generation is loaded
// and until it starts draining.
func (s *Server) Ready() (bool, string) {
	if s.draining.Load() {
		return false, "draining"
	}
	if s.reg.Gen() == 0 {
		return false, "no models loaded"
	}
	return true, ""
}

// Shutdown drains in-flight requests and stops the listener.
func (s *Server) Shutdown(ctx context.Context) error {
	s.BeginDrain()
	if s.httpSrv == nil {
		return nil
	}
	return s.httpSrv.Shutdown(ctx)
}

// Reload re-reads the configured snapshot paths and atomically swaps the
// model set; on error the previous generation keeps serving.
func (s *Server) Reload() error {
	s.pathsMu.Lock()
	paths := append([]string(nil), s.paths...)
	s.pathsMu.Unlock()
	if len(paths) == 0 {
		return fmt.Errorf("serve: no snapshot paths configured to reload")
	}
	return s.reg.Load(paths)
}

// ReloadPaths swaps the served snapshot set to the given paths — the canary
// seam: a rollout points one replica at candidate snapshots, and rollback
// points it at the previous ones. On load error the configured paths and
// the serving generation are both left untouched.
func (s *Server) ReloadPaths(paths []string) error {
	if len(paths) == 0 {
		return fmt.Errorf("serve: reload with no snapshot paths")
	}
	if err := s.reg.Load(paths); err != nil {
		return err
	}
	s.pathsMu.Lock()
	s.paths = append([]string(nil), paths...)
	s.pathsMu.Unlock()
	return nil
}

// SnapshotPaths returns the currently configured snapshot paths.
func (s *Server) SnapshotPaths() []string {
	s.pathsMu.Lock()
	defer s.pathsMu.Unlock()
	return append([]string(nil), s.paths...)
}

// ctxKey keys the per-request info in the request context.
type ctxKey int

const reqCtxKey ctxKey = 0

// reqInfo is what the middleware threads to the handlers: the request id
// (header-provided or assigned) and the root span (nil when tracing is off).
type reqInfo struct {
	id   string
	span *obs.Span
}

// reqFrom recovers the request info; handlers invoked directly (tests) get
// an anonymous id and no span.
func reqFrom(r *http.Request) reqInfo {
	if ri, ok := r.Context().Value(reqCtxKey).(reqInfo); ok {
		return ri
	}
	return reqInfo{id: "untracked"}
}

// instrument wraps a handler with the per-endpoint latency histogram,
// request counter, SLO burn accounting, request-id propagation and the
// request's root span.
func (s *Server) instrument(name string, h func(http.ResponseWriter, *http.Request) int) http.Handler {
	hist := s.metrics.Histogram("serve_request_seconds", obs.Labels{"endpoint": name})
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get("X-Request-Id")
		if id == "" {
			id = fmt.Sprintf("req-%08d", s.reqSeq.Add(1))
		}
		w.Header().Set("X-Request-Id", id)
		sp := s.ring.StartRequest(id, name) // nil-safe: nil ring → nil span
		r = r.WithContext(context.WithValue(r.Context(), reqCtxKey, reqInfo{id: id, span: sp}))
		t0 := time.Now()
		code := h(w, r)
		elapsed := time.Since(t0)
		sp.SetTag("code", strconv.Itoa(code))
		sp.End()
		s.tel.ObserveRequest(code, elapsed)
		hist.Observe(elapsed.Seconds())
		s.metrics.Counter("serve_requests_total",
			obs.Labels{"endpoint": name, "code": strconv.Itoa(code)}).Inc()
	})
}

// errorResponse is the JSON error envelope.
type errorResponse struct {
	Error string `json:"error"`
}

func (s *Server) writeJSON(w http.ResponseWriter, code int, v any) int {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	if err := enc.Encode(v); err != nil && s.log != nil {
		s.log.Debugf("serve: writing response: %v", err)
	}
	return code
}

func (s *Server) writeError(w http.ResponseWriter, code int, format string, args ...any) int {
	return s.writeJSON(w, code, errorResponse{Error: fmt.Sprintf(format, args...)})
}

// InstanceRequest is the (nodes, ppn, msize) triple of a tuning query.
type InstanceRequest struct {
	Nodes int   `json:"nodes"`
	PPN   int   `json:"ppn"`
	Msize int64 `json:"msize"`
}

// SelectRequest asks for one tuning decision.
type SelectRequest struct {
	Model string `json:"model,omitempty"`
	InstanceRequest
}

// Decision is the JSON form of a core.Prediction. PredictedSeconds is null
// when the guardrails fell back (their prediction is NaN by design) or the
// configuration is quarantined.
type Decision struct {
	ConfigID         int      `json:"config_id"`
	AlgID            int      `json:"alg_id"`
	Label            string   `json:"label"`
	PredictedSeconds *float64 `json:"predicted_seconds"`
	Fallback         bool     `json:"fallback,omitempty"`
	FallbackReason   string   `json:"fallback_reason,omitempty"`
	Cached           bool     `json:"cached,omitempty"`
}

func toDecision(p core.Prediction, cached bool) Decision {
	d := Decision{ConfigID: p.ConfigID, AlgID: p.AlgID, Label: p.Label,
		Fallback: p.Fallback, FallbackReason: p.FallbackReason, Cached: cached}
	if !math.IsNaN(p.Predicted) && !math.IsInf(p.Predicted, 0) {
		v := p.Predicted
		d.PredictedSeconds = &v
	}
	return d
}

// SelectResponse echoes the instance and carries the decision.
type SelectResponse struct {
	Model string `json:"model"`
	Coll  string `json:"coll"`
	InstanceRequest
	Decision
}

// decodeJSON decodes a body-capped POST payload. Overflowing maxBodyBytes
// is a client fault with its own status and counter: the 413 tells the
// caller to split the batch, and the counter makes an abusive client
// visible in one /metrics scrape.
func (s *Server) decodeJSON(w http.ResponseWriter, r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			s.metrics.Counter("serve_body_overflow_total", nil).Inc()
			return errBodyTooLarge
		}
		return fmt.Errorf("bad request body: %v", err)
	}
	return nil
}

// writeRequestError maps a parse/decode failure to its status code.
func (s *Server) writeRequestError(w http.ResponseWriter, err error) int {
	switch {
	case errors.Is(err, errMethod):
		return s.writeError(w, http.StatusMethodNotAllowed, "%v", err)
	case errors.Is(err, errBodyTooLarge):
		return s.writeError(w, http.StatusRequestEntityTooLarge,
			"request body exceeds %d bytes", maxBodyBytes)
	default:
		return s.writeError(w, http.StatusBadRequest, "%v", err)
	}
}

// parseSelectRequest accepts both GET query parameters (curl-friendly) and
// a POST JSON body.
func (s *Server) parseSelectRequest(w http.ResponseWriter, r *http.Request) (SelectRequest, error) {
	var req SelectRequest
	switch r.Method {
	case http.MethodGet:
		q := r.URL.Query()
		req.Model = q.Get("model")
		var err error
		if req.Nodes, err = strconv.Atoi(q.Get("nodes")); err != nil {
			return req, fmt.Errorf("bad nodes %q", q.Get("nodes"))
		}
		if req.PPN, err = strconv.Atoi(q.Get("ppn")); err != nil {
			return req, fmt.Errorf("bad ppn %q", q.Get("ppn"))
		}
		if req.Msize, err = strconv.ParseInt(q.Get("msize"), 10, 64); err != nil {
			return req, fmt.Errorf("bad msize %q", q.Get("msize"))
		}
	case http.MethodPost:
		if err := s.decodeJSON(w, r, &req); err != nil {
			return req, err
		}
	default:
		return req, errMethod
	}
	return req, nil
}

var (
	errMethod       = errors.New("method not allowed; use GET or POST")
	errBodyTooLarge = errors.New("request body too large")
)

// resolve validates the instance and resolves the model against one
// captured registry generation.
func (s *Server) resolve(w http.ResponseWriter, req SelectRequest) (*modelSet, *Model, int) {
	if err := dataset.CheckInstance(req.Nodes, req.PPN, req.Msize); err != nil {
		return nil, nil, s.writeError(w, http.StatusBadRequest, "invalid instance: %v", err)
	}
	set := s.reg.view()
	m, err := set.get(req.Model)
	if err != nil {
		return nil, nil, s.writeError(w, http.StatusNotFound, "%v", err)
	}
	return set, m, 0
}

func (s *Server) handleSelect(w http.ResponseWriter, r *http.Request) int {
	ri := reqFrom(r)
	endParse := ri.span.StartSpan("parse")
	req, err := s.parseSelectRequest(w, r)
	endParse()
	if err != nil {
		return s.writeRequestError(w, err)
	}
	endResolve := ri.span.StartSpan("resolve")
	set, m, code := s.resolve(w, req)
	endResolve()
	if m == nil {
		return code
	}
	t0 := time.Now()
	p, cached := s.selectCached(set, m, req.InstanceRequest, ri.span)
	d := toDecision(p, cached)
	s.observeDecision(ri, "select", set, m, req.InstanceRequest, d, time.Since(t0))
	return s.writeJSON(w, http.StatusOK, SelectResponse{
		Model: m.Name, Coll: m.Sel.Coll,
		InstanceRequest: req.InstanceRequest,
		Decision:        d,
	})
}

// selectCached answers one instance through the cache; sp (nil when tracing
// is off) gets "cache" and selector-stage child spans.
func (s *Server) selectCached(set *modelSet, m *Model, in InstanceRequest, sp *obs.Span) (core.Prediction, bool) {
	key := CacheKey{Gen: set.gen, Model: m.Name, Nodes: in.Nodes, PPN: in.PPN, Msize: in.Msize}
	c := sp.StartChild("cache")
	if p, ok := s.cache.Get(key); ok {
		c.SetTag("result", "hit")
		c.End()
		return p, true
	}
	c.SetTag("result", "miss")
	c.End()
	var tr core.Tracer
	if sp != nil {
		tr = sp
	}
	p := m.Sel.SelectTraced(in.Nodes, in.PPN, in.Msize, tr)
	s.cache.Put(key, p)
	return p, false
}

// observeDecision is the telemetry seam every served decision passes
// through: the drift monitors see it, and (when auditing is on) it becomes
// one JSONL line keyed by the request id.
func (s *Server) observeDecision(ri reqInfo, endpoint string, set *modelSet, m *Model,
	in InstanceRequest, d Decision, latency time.Duration) {
	s.tel.ObserveDecision(m.Name, d)
	if s.auditLog == nil {
		return
	}
	err := s.auditLog.Append(audit.Record{
		RequestID: ri.id, Endpoint: endpoint,
		Model: m.Name, Coll: m.Sel.Coll,
		Lib: m.Fp.Lib, Machine: m.Fp.Machine, Dataset: m.Fp.Dataset,
		Generation: set.gen,
		Nodes:      in.Nodes, PPN: in.PPN, Msize: in.Msize,
		ConfigID: d.ConfigID, AlgID: d.AlgID, Label: d.Label,
		PredictedSeconds: d.PredictedSeconds, Cached: d.Cached,
		Fallback: d.Fallback, FallbackReason: d.FallbackReason,
		LatencyUs: latency.Microseconds(),
	})
	if err != nil && s.log != nil {
		s.log.Debugf("serve: audit append: %v", err)
	}
}

// PredictResponse ranks every configuration for the instance.
type PredictResponse struct {
	Model string `json:"model"`
	Coll  string `json:"coll"`
	InstanceRequest
	Predictions []Decision `json:"predictions"`
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) int {
	req, err := s.parseSelectRequest(w, r)
	if err != nil {
		return s.writeRequestError(w, err)
	}
	_, m, code := s.resolve(w, req)
	if m == nil {
		return code
	}
	preds := m.Sel.PredictAll(req.Nodes, req.PPN, req.Msize)
	resp := PredictResponse{Model: m.Name, Coll: m.Sel.Coll, InstanceRequest: req.InstanceRequest}
	for _, p := range preds {
		resp.Predictions = append(resp.Predictions, toDecision(p, false))
	}
	return s.writeJSON(w, http.StatusOK, resp)
}

// BatchRequest asks for decisions on many instances at once.
type BatchRequest struct {
	Model     string            `json:"model,omitempty"`
	Instances []InstanceRequest `json:"instances"`
}

// BatchResult is one instance's outcome; Error is set instead of the
// decision when the instance failed validation.
type BatchResult struct {
	InstanceRequest
	Decision
	Error string `json:"error,omitempty"`
}

// BatchResponse carries per-instance results in request order.
type BatchResponse struct {
	Model   string        `json:"model"`
	Coll    string        `json:"coll"`
	Results []BatchResult `json:"results"`
}

// maxBatchInstances bounds one batch request.
const maxBatchInstances = 10000

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) int {
	if r.Method != http.MethodPost {
		return s.writeError(w, http.StatusMethodNotAllowed, "POST a BatchRequest")
	}
	var req BatchRequest
	if err := s.decodeJSON(w, r, &req); err != nil {
		return s.writeRequestError(w, err)
	}
	if len(req.Instances) == 0 {
		return s.writeError(w, http.StatusBadRequest, "empty batch")
	}
	if len(req.Instances) > maxBatchInstances {
		return s.writeError(w, http.StatusBadRequest, "batch of %d instances exceeds the %d limit",
			len(req.Instances), maxBatchInstances)
	}
	set := s.reg.view()
	m, err := set.get(req.Model)
	if err != nil {
		return s.writeError(w, http.StatusNotFound, "%v", err)
	}
	ri := reqFrom(r)
	ri.span.SetTag("instances", strconv.Itoa(len(req.Instances)))
	resp := BatchResponse{Model: m.Name, Coll: m.Sel.Coll, Results: make([]BatchResult, len(req.Instances))}
	s.metrics.Counter("serve_batch_instances_total", nil).Add(int64(len(req.Instances)))

	// Fan the instances across a bounded worker set. Ordering is preserved
	// by construction: worker k only ever writes Results[i] for the
	// instances i it claimed off the shared counter, so Results[i] always
	// answers Instances[i] regardless of which worker got there.
	workers := s.batchWorkers
	if workers > len(req.Instances) {
		workers = len(req.Instances)
	}
	if workers <= 1 {
		for i, in := range req.Instances {
			s.batchOne(ri, set, m, in, &resp.Results[i])
		}
		return s.writeJSON(w, http.StatusOK, resp)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for k := 0; k < workers; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(req.Instances) {
					return
				}
				s.batchOne(ri, set, m, req.Instances[i], &resp.Results[i])
			}
		}()
	}
	wg.Wait()
	return s.writeJSON(w, http.StatusOK, resp)
}

// batchOne answers one batch entry in place; an invalid instance gets a
// per-entry error without failing the rest of the batch. Valid entries are
// audited individually under the batch's request id (batch entries don't get
// per-entry spans — a 10000-instance batch would drown the trace ring).
func (s *Server) batchOne(ri reqInfo, set *modelSet, m *Model, in InstanceRequest, out *BatchResult) {
	out.InstanceRequest = in
	if err := dataset.CheckInstance(in.Nodes, in.PPN, in.Msize); err != nil {
		out.Error = err.Error()
		return
	}
	t0 := time.Now()
	p, cached := s.selectCached(set, m, in, nil)
	out.Decision = toDecision(p, cached)
	s.observeDecision(ri, "batch", set, m, in, out.Decision, time.Since(t0))
}

// ReloadRequest is the optional /v1/reload body: naming Paths switches the
// served snapshot set (rollout/rollback); an empty body re-reads the
// current one.
type ReloadRequest struct {
	Paths []string `json:"paths"`
}

func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) int {
	if r.Method != http.MethodPost {
		return s.writeError(w, http.StatusMethodNotAllowed, "POST to reload")
	}
	var req ReloadRequest
	if r.Body != nil && r.ContentLength != 0 {
		if err := s.decodeJSON(w, r, &req); err != nil {
			return s.writeRequestError(w, err)
		}
	}
	var err error
	if len(req.Paths) > 0 {
		err = s.ReloadPaths(req.Paths)
	} else {
		err = s.Reload()
	}
	if err != nil {
		return s.writeError(w, http.StatusInternalServerError, "reload failed (previous models still serving): %v", err)
	}
	return s.writeJSON(w, http.StatusOK, map[string]any{
		"status": "reloaded", "generation": s.reg.Gen(), "models": s.reg.Names(),
		"paths": s.SnapshotPaths(),
	})
}

// ReadyResponse is the /readyz payload.
type ReadyResponse struct {
	Status     string `json:"status"`
	Reason     string `json:"reason,omitempty"`
	Generation uint64 `json:"generation"`
}

// handleReadyz is the router's probe target: liveness (/healthz) says the
// process is up, readiness says it should receive routed traffic — which
// is false before the first snapshot generation and during drain.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) int {
	ready, reason := s.Ready()
	resp := ReadyResponse{Status: "ready", Generation: s.reg.Gen()}
	if !ready {
		resp.Status = "not_ready"
		resp.Reason = reason
		return s.writeJSON(w, http.StatusServiceUnavailable, resp)
	}
	return s.writeJSON(w, http.StatusOK, resp)
}

// ModelInfo describes one loaded model in /healthz.
type ModelInfo struct {
	Name        string `json:"name"`
	Coll        string `json:"coll"`
	Learner     string `json:"learner"`
	Dataset     string `json:"dataset"`
	Lib         string `json:"lib"`
	Machine     string `json:"machine"`
	DatasetHash string `json:"dataset_hash"`
	TrainNodes  []int  `json:"train_nodes"`
	Configs     int    `json:"configs"`
	Quarantined int    `json:"quarantined"`
	Fallbacks   int    `json:"fallbacks"`
}

// HealthResponse is the /healthz payload.
type HealthResponse struct {
	Status        string      `json:"status"`
	Ready         bool        `json:"ready"`
	Generation    uint64      `json:"generation"`
	SnapshotPaths []string    `json:"snapshot_paths,omitempty"`
	Models        []ModelInfo `json:"models"`
	CacheSize     int         `json:"cache_size"`
	CacheHits     int64       `json:"cache_hits"`
	CacheMiss     int64       `json:"cache_misses"`
	CacheEvict    int64       `json:"cache_evictions"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) int {
	set := s.reg.view()
	ready, _ := s.Ready()
	resp := HealthResponse{Status: "ok", Ready: ready, Generation: set.gen,
		SnapshotPaths: s.SnapshotPaths()}
	for _, name := range set.names { // sorted at install time
		m := set.byName[name]
		resp.Models = append(resp.Models, ModelInfo{
			Name: m.Name, Coll: m.Sel.Coll, Learner: m.Sel.Learner,
			Dataset: m.Fp.Dataset, Lib: m.Fp.Lib, Machine: m.Fp.Machine,
			DatasetHash: fmt.Sprintf("%016x", m.Fp.DatasetHash),
			TrainNodes:  m.Sel.TrainNodes,
			Configs:     len(m.Sel.Configs()),
			Quarantined: len(m.Sel.Quarantined()),
			Fallbacks:   m.Sel.Fallbacks(),
		})
	}
	resp.CacheSize = s.cache.Len()
	resp.CacheHits, resp.CacheMiss, resp.CacheEvict = s.cache.Stats()
	return s.writeJSON(w, http.StatusOK, resp)
}

// handleTelemetry serves the drift and SLO monitor states.
func (s *Server) handleTelemetry(w http.ResponseWriter, r *http.Request) int {
	if r.Method != http.MethodGet {
		return s.writeError(w, http.StatusMethodNotAllowed, "GET the telemetry snapshot")
	}
	return s.writeJSON(w, http.StatusOK, s.tel.Snapshot(s.ring))
}

// handleTraces serves the recent-trace ring, as JSON or (?format=chrome) in
// the Chrome trace-event format shared with the simulator timelines.
func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) int {
	if r.Method != http.MethodGet {
		return s.writeError(w, http.StatusMethodNotAllowed, "GET the trace ring")
	}
	var err error
	if strings.EqualFold(r.URL.Query().Get("format"), "chrome") {
		w.Header().Set("Content-Type", "application/json")
		err = s.ring.WriteChrome(w)
	} else {
		w.Header().Set("Content-Type", "application/json")
		err = s.ring.WriteJSON(w)
	}
	if err != nil && s.log != nil {
		s.log.Debugf("serve: writing traces: %v", err)
	}
	return http.StatusOK
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) int {
	// Mirror the cache counters and monitor states into the registry so one
	// scrape has HTTP, cache, drift and SLO health together.
	hits, misses, evict := s.cache.Stats()
	s.metrics.Gauge("serve_cache_hits_total", nil).Set(float64(hits))
	s.metrics.Gauge("serve_cache_misses_total", nil).Set(float64(misses))
	s.metrics.Gauge("serve_cache_evictions_total", nil).Set(float64(evict))
	s.metrics.Gauge("serve_cache_entries", nil).Set(float64(s.cache.Len()))
	s.tel.mirror(s.metrics, s.ring)

	var err error
	if strings.EqualFold(r.URL.Query().Get("format"), "json") {
		w.Header().Set("Content-Type", "application/json")
		err = s.metrics.WriteJSON(w)
	} else {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		err = s.metrics.WriteText(w)
	}
	if err != nil && s.log != nil {
		s.log.Debugf("serve: writing metrics: %v", err)
	}
	return http.StatusOK
}
