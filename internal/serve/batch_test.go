package serve

import (
	"context"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// batchServer builds a server with an explicit batch worker count.
func batchServer(t *testing.T, workers int, models ...*Model) *Server {
	t.Helper()
	s, err := New(Options{CacheSize: 4096, CacheShards: 4, BatchWorkers: workers})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Registry().Install(models...); err != nil {
		t.Fatal(err)
	}
	return s
}

// TestBatchOrderingUnderConcurrency sends a large mixed batch through the
// parallel path and requires the response to line up with the request
// element for element: result i echoes instance i, valid entries carry a
// decision, invalid ones carry only their per-entry error.
func TestBatchOrderingUnderConcurrency(t *testing.T) {
	_, knn, _ := testModels(t)
	for _, workers := range []int{1, 4, 16} {
		s := batchServer(t, workers, knn)
		req := BatchRequest{Instances: make([]InstanceRequest, 400)}
		for i := range req.Instances {
			if i%7 == 3 {
				// Every 7th entry is invalid and must fail alone.
				req.Instances[i] = InstanceRequest{Nodes: 0, PPN: 4, Msize: int64(i)}
				continue
			}
			req.Instances[i] = InstanceRequest{
				Nodes: 2 + i%4, PPN: 1 + i%2, Msize: int64(16 << (i % 5)),
			}
		}
		var resp BatchResponse
		postJSON(t, s.Handler(), "/v1/batch", req, http.StatusOK, &resp)
		if len(resp.Results) != len(req.Instances) {
			t.Fatalf("workers=%d: %d results for %d instances", workers, len(resp.Results), len(req.Instances))
		}
		for i, res := range resp.Results {
			if res.InstanceRequest != req.Instances[i] {
				t.Fatalf("workers=%d: result %d echoes %+v, want %+v — ordering broken",
					workers, i, res.InstanceRequest, req.Instances[i])
			}
			if i%7 == 3 {
				if res.Error == "" || res.Label != "" {
					t.Fatalf("workers=%d: invalid entry %d not rejected per-entry: %+v", workers, i, res)
				}
			} else if res.Error != "" || res.Label == "" {
				t.Fatalf("workers=%d: valid entry %d failed: %+v", workers, i, res)
			}
		}
	}
}

// TestBatchMatchesSelect cross-checks the parallel batch path against
// one-at-a-time /v1/select decisions for the same instances.
func TestBatchMatchesSelect(t *testing.T) {
	_, knn, _ := testModels(t)
	s := batchServer(t, 8, knn)
	req := BatchRequest{Instances: make([]InstanceRequest, 48)}
	for i := range req.Instances {
		req.Instances[i] = InstanceRequest{Nodes: 2 + i%4, PPN: 1 + i%2, Msize: int64(16 << (i % 5))}
	}
	var resp BatchResponse
	postJSON(t, s.Handler(), "/v1/batch", req, http.StatusOK, &resp)
	for i, in := range req.Instances {
		var single SelectResponse
		postJSON(t, s.Handler(), "/v1/select", SelectRequest{InstanceRequest: in}, http.StatusOK, &single)
		if resp.Results[i].ConfigID != single.ConfigID || resp.Results[i].Label != single.Label {
			t.Fatalf("instance %d: batch decision %+v, select decision %+v", i, resp.Results[i].Decision, single.Decision)
		}
	}
}

// TestBatchHammer fires concurrent batches at one server — meaningful under
// -race: the per-request worker sets, the shared selection cache, and the
// metrics registry all interleave here.
func TestBatchHammer(t *testing.T) {
	_, knn, _ := testModels(t)
	s := batchServer(t, 4, knn)
	var wg sync.WaitGroup
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for round := 0; round < 20; round++ {
				req := BatchRequest{Instances: make([]InstanceRequest, 37)}
				for i := range req.Instances {
					req.Instances[i] = InstanceRequest{
						Nodes: 2 + (c+i)%4, PPN: 1 + (round+i)%2, Msize: int64(16 << ((c + round + i) % 5)),
					}
				}
				var resp BatchResponse
				postJSON(t, s.Handler(), "/v1/batch", req, http.StatusOK, &resp)
				for i, res := range resp.Results {
					if res.InstanceRequest != req.Instances[i] || res.Error != "" || res.Label == "" {
						t.Errorf("client %d round %d entry %d: %+v", c, round, i, res)
						return
					}
				}
			}
		}(c)
	}
	wg.Wait()
}

// TestLoadgenBatchMode drives the -batch loadgen path end to end against a
// live server.
func TestLoadgenBatchMode(t *testing.T) {
	_, knn, _ := testModels(t)
	s := batchServer(t, 4, knn)
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	rep, err := Loadgen(context.Background(), LoadgenOptions{
		URL:      srv.URL,
		Duration: 300 * time.Millisecond,
		Workers:  4,
		Seed:     7,
		Batch:    32,
		Nodes:    []int{2, 4, 6},
		PPNs:     []int{1, 4},
		Msizes:   []int64{16, 1024},
	})
	if err != nil {
		t.Fatalf("loadgen: %v (report %+v)", err, rep)
	}
	if rep.Requests == 0 || rep.Errors != 0 {
		t.Fatalf("report %+v", rep)
	}
	if rep.BatchSize != 32 || rep.Instances != rep.Requests*32 {
		t.Fatalf("instance accounting off: %+v", rep)
	}
	if rep.InstancesPerSec <= rep.QPS {
		t.Fatalf("batch mode moved fewer instances than round trips: %+v", rep)
	}
	if rep.CachedHits == 0 {
		t.Fatal("a 12-instance pool never hit the cache in batch mode")
	}
	out := filepath.Join(t.TempDir(), "BENCH_serve_batch.json")
	if err := rep.WriteFile(out); err != nil {
		t.Fatal(err)
	}
}
