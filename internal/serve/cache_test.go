package serve

import (
	"fmt"
	"sync"
	"testing"

	"mpicollpred/internal/core"
)

func ck(model string, n int) CacheKey {
	return CacheKey{Gen: 1, Model: model, Nodes: n, PPN: 4, Msize: 1024}
}

func TestCacheHitMiss(t *testing.T) {
	c := NewSelectionCache(8, 1)
	if _, ok := c.Get(ck("m", 2)); ok {
		t.Fatal("hit on empty cache")
	}
	want := core.Prediction{ConfigID: 7, Label: "ring"}
	c.Put(ck("m", 2), want)
	got, ok := c.Get(ck("m", 2))
	if !ok || got.ConfigID != 7 || got.Label != "ring" {
		t.Fatalf("got %+v, %v", got, ok)
	}
	// Different generation, model, or instance are all distinct keys.
	if _, ok := c.Get(CacheKey{Gen: 2, Model: "m", Nodes: 2, PPN: 4, Msize: 1024}); ok {
		t.Fatal("generation ignored in the key")
	}
	if _, ok := c.Get(ck("other", 2)); ok {
		t.Fatal("model ignored in the key")
	}
	hits, misses, _ := c.Stats()
	if hits != 1 || misses != 3 {
		t.Fatalf("stats: %d hits, %d misses", hits, misses)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := NewSelectionCache(3, 1) // single shard, capacity 3
	for n := 1; n <= 3; n++ {
		c.Put(ck("m", n), core.Prediction{ConfigID: n})
	}
	// Touch 1 so 2 becomes the least recently used.
	if _, ok := c.Get(ck("m", 1)); !ok {
		t.Fatal("1 missing")
	}
	c.Put(ck("m", 4), core.Prediction{ConfigID: 4})
	if _, ok := c.Get(ck("m", 2)); ok {
		t.Fatal("LRU entry 2 survived eviction")
	}
	for _, n := range []int{1, 3, 4} {
		if _, ok := c.Get(ck("m", n)); !ok {
			t.Fatalf("%d evicted, want it kept", n)
		}
	}
	if _, _, ev := c.Stats(); ev != 1 {
		t.Fatalf("%d evictions, want 1", ev)
	}
	if c.Len() != 3 {
		t.Fatalf("len %d", c.Len())
	}
	// Updating an existing key must not evict.
	c.Put(ck("m", 4), core.Prediction{ConfigID: 44})
	if got, _ := c.Get(ck("m", 4)); got.ConfigID != 44 {
		t.Fatalf("update lost: %+v", got)
	}
	if c.Len() != 3 {
		t.Fatalf("len %d after update", c.Len())
	}
}

func TestCacheSharding(t *testing.T) {
	c := NewSelectionCache(1000, 5)
	if c.Shards() != 8 {
		t.Fatalf("5 shards rounded to %d, want 8", c.Shards())
	}
	for n := 0; n < 500; n++ {
		c.Put(ck("m", n), core.Prediction{ConfigID: n})
	}
	present := 0
	for n := 0; n < 500; n++ {
		if p, ok := c.Get(ck("m", n)); ok {
			if p.ConfigID != n {
				t.Fatalf("key %d returned %d", n, p.ConfigID)
			}
			present++
		}
	}
	// 500 entries across 8 shards of 125: nothing should have been evicted.
	if present != 500 {
		t.Fatalf("only %d/500 present", present)
	}
}

func TestCacheDisabled(t *testing.T) {
	c := NewSelectionCache(0, 4)
	c.Put(ck("m", 2), core.Prediction{ConfigID: 1})
	if _, ok := c.Get(ck("m", 2)); ok {
		t.Fatal("disabled cache returned a value")
	}
	if c.Len() != 0 || c.Shards() != 0 {
		t.Fatal("disabled cache holds state")
	}
}

func TestCacheConcurrent(t *testing.T) {
	c := NewSelectionCache(256, 8)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				k := ck(fmt.Sprintf("m%d", w%2), i%64)
				if i%3 == 0 {
					c.Put(k, core.Prediction{ConfigID: i % 64})
				} else if p, ok := c.Get(k); ok && p.ConfigID != i%64 {
					t.Errorf("key %+v returned %d", k, p.ConfigID)
				}
			}
		}(w)
	}
	wg.Wait()
	hits, misses, _ := c.Stats()
	if hits+misses == 0 {
		t.Fatal("no traffic recorded")
	}
}
