package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mpicollpred/internal/bench"
	"mpicollpred/internal/core"
	"mpicollpred/internal/dataset"
)

// trainedModels holds two selectors trained once and shared by the tests in
// this package (training is the slow part; every test reads, none mutates).
var trainedModels struct {
	once sync.Once
	ds   *dataset.Dataset
	knn  *Model
	lin  *Model
	err  error
}

func testModels(t testing.TB) (*dataset.Dataset, *Model, *Model) {
	t.Helper()
	trainedModels.once.Do(func() {
		spec, err := dataset.SpecByName("d2", dataset.ScaleSmoke)
		if err != nil {
			trainedModels.err = err
			return
		}
		spec.Nodes = []int{2, 3, 4, 5, 6}
		spec.PPNs = []int{1, 4}
		spec.Msizes = []int64{16, 1024, 16384, 262144}
		ds, err := dataset.Generate(spec, bench.Options{MaxReps: 3, SyncJitter: 1e-7}, nil)
		if err != nil {
			trainedModels.err = err
			return
		}
		mach, set, err := spec.Resolve()
		if err != nil {
			trainedModels.err = err
			return
		}
		trainNodes := []int{2, 4, 6}
		for _, learner := range []string{"knn", "linear"} {
			sel, err := core.Train(ds, set, learner, trainNodes)
			if err != nil {
				trainedModels.err = err
				return
			}
			sel.SetFallback(mach, set)
			fp := core.FingerprintFor(ds, learner, trainNodes)
			m := &Model{Name: ModelName(fp), Sel: sel, Fp: fp}
			if learner == "knn" {
				trainedModels.knn = m
			} else {
				trainedModels.lin = m
			}
		}
		trainedModels.ds = ds
	})
	if trainedModels.err != nil {
		t.Fatal(trainedModels.err)
	}
	return trainedModels.ds, trainedModels.knn, trainedModels.lin
}

func testServer(t *testing.T, models ...*Model) *Server {
	t.Helper()
	s, err := New(Options{CacheSize: 1024, CacheShards: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Registry().Install(models...); err != nil {
		t.Fatal(err)
	}
	return s
}

func getJSON(t *testing.T, h http.Handler, url string, wantCode int, out any) {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, url, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != wantCode {
		t.Fatalf("GET %s: status %d (want %d): %s", url, rec.Code, wantCode, rec.Body)
	}
	if out != nil {
		if err := json.Unmarshal(rec.Body.Bytes(), out); err != nil {
			t.Fatalf("GET %s: bad JSON: %v\n%s", url, err, rec.Body)
		}
	}
}

func postJSON(t *testing.T, h http.Handler, url string, body any, wantCode int, out any) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodPost, url, bytes.NewReader(data))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != wantCode {
		t.Fatalf("POST %s: status %d (want %d): %s", url, rec.Code, wantCode, rec.Body)
	}
	if out != nil {
		if err := json.Unmarshal(rec.Body.Bytes(), out); err != nil {
			t.Fatalf("POST %s: bad JSON: %v\n%s", url, err, rec.Body)
		}
	}
}

func TestSelectEndpoint(t *testing.T) {
	_, knn, _ := testModels(t)
	s := testServer(t, knn)

	var resp SelectResponse
	getJSON(t, s.Handler(), "/v1/select?nodes=4&ppn=4&msize=1024", http.StatusOK, &resp)
	if resp.Model != knn.Name || resp.Coll == "" {
		t.Fatalf("bad identity in %+v", resp)
	}
	if resp.Label == "" {
		t.Fatalf("no decision label in %+v", resp)
	}
	if resp.Cached {
		t.Fatal("first query claims a cache hit")
	}

	// The identical query again must come from the cache with the same
	// decision.
	var again SelectResponse
	getJSON(t, s.Handler(), "/v1/select?nodes=4&ppn=4&msize=1024", http.StatusOK, &again)
	if !again.Cached {
		t.Fatal("repeat query missed the cache")
	}
	if again.ConfigID != resp.ConfigID || again.Label != resp.Label {
		t.Fatalf("cached decision %+v differs from fresh %+v", again, resp)
	}

	// POST body form of the same query.
	var posted SelectResponse
	postJSON(t, s.Handler(), "/v1/select",
		SelectRequest{InstanceRequest: InstanceRequest{Nodes: 4, PPN: 4, Msize: 1024}},
		http.StatusOK, &posted)
	if posted.ConfigID != resp.ConfigID {
		t.Fatalf("POST decision %d, GET decision %d", posted.ConfigID, resp.ConfigID)
	}
}

func TestSelectValidation(t *testing.T) {
	_, knn, lin := testModels(t)
	s := testServer(t, knn, lin)

	// Invalid instances → 400 with a JSON error.
	var e errorResponse
	getJSON(t, s.Handler(), "/v1/select?model="+knn.Name+"&nodes=0&ppn=4&msize=64", http.StatusBadRequest, &e)
	if e.Error == "" {
		t.Fatal("400 without an error message")
	}
	getJSON(t, s.Handler(), "/v1/select?model="+knn.Name+"&nodes=4&ppn=4&msize=-1", http.StatusBadRequest, &e)
	getJSON(t, s.Handler(), "/v1/select?model="+knn.Name+"&nodes=four&ppn=4&msize=64", http.StatusBadRequest, &e)

	// Unknown model → 404; ambiguous empty model with two loaded → 404.
	getJSON(t, s.Handler(), "/v1/select?model=nope&nodes=4&ppn=4&msize=64", http.StatusNotFound, &e)
	if !strings.Contains(e.Error, "nope") {
		t.Fatalf("unhelpful 404: %q", e.Error)
	}
	getJSON(t, s.Handler(), "/v1/select?nodes=4&ppn=4&msize=64", http.StatusNotFound, &e)

	// Unsupported method.
	req := httptest.NewRequest(http.MethodDelete, "/v1/select", nil)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("DELETE /v1/select: status %d", rec.Code)
	}
}

func TestPredictEndpoint(t *testing.T) {
	_, knn, _ := testModels(t)
	s := testServer(t, knn)

	var resp PredictResponse
	getJSON(t, s.Handler(), "/v1/predict?nodes=4&ppn=4&msize=1024", http.StatusOK, &resp)
	if len(resp.Predictions) != len(knn.Sel.Configs()) {
		t.Fatalf("%d predictions for %d configs", len(resp.Predictions), len(knn.Sel.Configs()))
	}
	for _, p := range resp.Predictions {
		if p.Label == "" {
			t.Fatalf("prediction without label: %+v", p)
		}
	}

	// An extrapolating instance falls back: the selection must still be
	// servable JSON with a null predicted time, not an encoding error.
	var fb SelectResponse
	getJSON(t, s.Handler(), "/v1/select?nodes=4000&ppn=4&msize=1024", http.StatusOK, &fb)
	if !fb.Fallback {
		t.Fatalf("nodes=4000 did not fall back: %+v", fb)
	}
	if fb.PredictedSeconds != nil {
		t.Fatalf("fallback carries a predicted time: %+v", fb)
	}
}

func TestBatchEndpoint(t *testing.T) {
	_, knn, _ := testModels(t)
	s := testServer(t, knn)

	req := BatchRequest{Instances: []InstanceRequest{
		{Nodes: 4, PPN: 4, Msize: 1024},
		{Nodes: 0, PPN: 4, Msize: 64}, // invalid, must not sink the batch
		{Nodes: 4, PPN: 4, Msize: 1024},
	}}
	var resp BatchResponse
	postJSON(t, s.Handler(), "/v1/batch", req, http.StatusOK, &resp)
	if len(resp.Results) != 3 {
		t.Fatalf("%d results", len(resp.Results))
	}
	if resp.Results[0].Error != "" || resp.Results[0].Label == "" {
		t.Fatalf("valid instance failed: %+v", resp.Results[0])
	}
	if resp.Results[1].Error == "" {
		t.Fatal("invalid instance slipped through")
	}
	if !resp.Results[2].Cached {
		t.Fatal("repeated instance in one batch missed the cache")
	}

	var e errorResponse
	postJSON(t, s.Handler(), "/v1/batch", BatchRequest{}, http.StatusBadRequest, &e)

	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/batch", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/batch: status %d", rec.Code)
	}
}

func TestHealthzAndMetrics(t *testing.T) {
	_, knn, lin := testModels(t)
	s := testServer(t, knn, lin)
	getJSON(t, s.Handler(), "/v1/select?model="+knn.Name+"&nodes=4&ppn=4&msize=1024", http.StatusOK, nil)

	var h HealthResponse
	getJSON(t, s.Handler(), "/healthz", http.StatusOK, &h)
	if h.Status != "ok" || len(h.Models) != 2 {
		t.Fatalf("healthz: %+v", h)
	}
	if h.Models[0].Name >= h.Models[1].Name {
		t.Fatalf("models not sorted: %q, %q", h.Models[0].Name, h.Models[1].Name)
	}
	if h.Models[0].Configs == 0 || h.Models[0].DatasetHash == "" {
		t.Fatalf("empty model info: %+v", h.Models[0])
	}

	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/metrics: status %d", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "serve_requests_total") {
		t.Fatalf("metrics text missing serve counters:\n%s", rec.Body)
	}

	var m map[string]any
	getJSON(t, s.Handler(), "/metrics?format=json", http.StatusOK, &m)
}

func TestReloadFromDisk(t *testing.T) {
	ds, knn, lin := testModels(t)
	_ = ds
	dir := t.TempDir()
	path := filepath.Join(dir, "model.snap")
	if err := knn.Sel.SaveSnapshot(path, knn.Fp); err != nil {
		t.Fatal(err)
	}

	s, err := New(Options{SnapshotPaths: []string{path}, CacheSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	var resp SelectResponse
	getJSON(t, s.Handler(), "/v1/select?nodes=4&ppn=4&msize=1024", http.StatusOK, &resp)
	if resp.Model != knn.Name {
		t.Fatalf("serving %q, want %q", resp.Model, knn.Name)
	}
	gen := s.Registry().Gen()

	// Swap the file for a different learner and reload over HTTP.
	if err := lin.Sel.SaveSnapshot(path, lin.Fp); err != nil {
		t.Fatal(err)
	}
	postJSON(t, s.Handler(), "/v1/reload", struct{}{}, http.StatusOK, nil)
	if s.Registry().Gen() != gen+1 {
		t.Fatalf("generation %d after reload, want %d", s.Registry().Gen(), gen+1)
	}
	getJSON(t, s.Handler(), "/v1/select?nodes=4&ppn=4&msize=1024", http.StatusOK, &resp)
	if resp.Model != lin.Name {
		t.Fatalf("serving %q after reload, want %q", resp.Model, lin.Name)
	}
	if resp.Cached {
		t.Fatal("cache entry survived a reload (generation key broken)")
	}
}

// TestHotReloadZeroFailures is the acceptance test for atomic hot reload:
// concurrent clients hammer /v1/select while the model set is swapped over
// and over; not a single request may fail.
func TestHotReloadZeroFailures(t *testing.T) {
	_, knn, lin := testModels(t)
	s := testServer(t, knn)

	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	var stop atomic.Bool
	var failures atomic.Int64
	var requests atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			client := srv.Client()
			for !stop.Load() {
				resp, err := client.Get(srv.URL + "/v1/select?nodes=4&ppn=4&msize=1024")
				requests.Add(1)
				if err != nil {
					failures.Add(1)
					continue
				}
				if resp.StatusCode != http.StatusOK {
					failures.Add(1)
				}
				var sr SelectResponse
				if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil || sr.Label == "" {
					failures.Add(1)
				}
				_ = resp.Body.Close()
			}
		}()
	}

	// Swap between single-model generations; the empty model name stays
	// resolvable throughout, so every request has a servable world.
	deadline := time.Now().Add(500 * time.Millisecond)
	sets := [][]*Model{{knn}, {lin}}
	for i := 0; time.Now().Before(deadline); i++ {
		if err := s.Registry().Install(sets[i%2]...); err != nil {
			t.Errorf("install: %v", err)
			break
		}
	}
	stop.Store(true)
	wg.Wait()

	if requests.Load() == 0 {
		t.Fatal("no requests issued")
	}
	if n := failures.Load(); n != 0 {
		t.Fatalf("%d of %d requests failed during hot reloads", n, requests.Load())
	}
	if s.Registry().Gen() < 3 {
		t.Fatalf("only %d generations installed; reload loop too slow to prove anything", s.Registry().Gen())
	}
}

func TestLoadgen(t *testing.T) {
	_, knn, _ := testModels(t)
	s := testServer(t, knn)
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	rep, err := Loadgen(context.Background(), LoadgenOptions{
		URL:      srv.URL,
		Duration: 300 * time.Millisecond,
		Workers:  4,
		Seed:     42,
		Nodes:    []int{2, 4, 6},
		PPNs:     []int{1, 4},
		Msizes:   []int64{16, 1024},
	})
	if err != nil {
		t.Fatalf("loadgen: %v (report %+v)", err, rep)
	}
	if rep.Requests == 0 || rep.Errors != 0 {
		t.Fatalf("report %+v", rep)
	}
	if rep.CachedHits == 0 {
		t.Fatal("a 12-instance pool never hit the cache")
	}
	if rep.QPS <= 0 || rep.LatencyP99Us <= 0 || rep.LatencyP50Us > rep.LatencyP99Us {
		t.Fatalf("implausible latency summary: %+v", rep)
	}

	out := filepath.Join(t.TempDir(), "BENCH_serve.json")
	if err := rep.WriteFile(out); err != nil {
		t.Fatal(err)
	}
	var back LoadgenReport
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
}

// TestLoadgenCancelledContext is the regression test for context threading:
// a cancelled context must stop the workers at the next request boundary (a
// pre-cancelled one issues no requests at all) instead of running out the
// full configured duration with orphaned in-flight requests.
func TestLoadgenCancelledContext(t *testing.T) {
	_, knn, _ := testModels(t)
	s := testServer(t, knn)
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	rep, err := Loadgen(ctx, LoadgenOptions{
		URL:      srv.URL,
		Duration: 30 * time.Second, // must NOT be waited out
		Workers:  4,
		Seed:     42,
		Nodes:    []int{2, 4, 6},
		PPNs:     []int{1, 4},
		Msizes:   []int64{16, 1024},
	})
	if err != nil {
		t.Fatalf("cancelled loadgen returned error: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancelled loadgen ran for %s; cancellation not honored", elapsed)
	}
	if rep.Requests != 0 {
		t.Fatalf("pre-cancelled run issued %d requests, want 0", rep.Requests)
	}
}
