// The fleet router: the HTTP front tier that makes N replicas look like one
// fast, fault-tolerant server. Routing is consistent-hash-by-instance
// (rendezvous hashing over the query key) so repeated queries land on the
// same replica and its selection cache stays hot; when the hashed owner is
// down, draining, or breaker-open, the request falls to the least-loaded
// healthy replica. Failures are absorbed by bounded retries with jittered
// exponential backoff, tail latency by hedged requests: if the primary has
// not answered within the hedge delay, a second replica races it and the
// first response wins.
//
// Endpoints:
//
//	GET/POST /v1/select    proxied (hashed + hedged)
//	GET/POST /v1/predict   proxied (hashed + hedged)
//	POST     /v1/batch     proxied (least-loaded)
//	GET      /healthz      router liveness + replica summary
//	GET      /readyz       503 unless >= 1 replica is ready
//	GET      /fleet/status replica states + retry/hedge/breaker counters
//	GET/POST /fleet/rollout canary rollout state machine (rollout.go)
//	GET      /metrics      obs registry snapshot
package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"net"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"mpicollpred/internal/obs"
	"mpicollpred/internal/sim"
)

// Options configures a Router.
type Options struct {
	// Replicas are the backend base URLs (at least one).
	Replicas []string
	// ProbeInterval is the health-probe period (default 250ms).
	ProbeInterval time.Duration
	// ProbeTimeout bounds one probe round trip (default 1s).
	ProbeTimeout time.Duration
	// Retries is how many additional replicas a failed request may try
	// (default 2).
	Retries int
	// RetryBase is the backoff unit between retry attempts: attempt k
	// sleeps RetryBase<<k plus up to one RetryBase of seeded jitter
	// (default 5ms).
	RetryBase time.Duration
	// HedgeAfter launches a hedge request to a second replica when the
	// primary has not answered /v1/select or /v1/predict within this delay
	// (default 25ms; negative disables hedging).
	HedgeAfter time.Duration
	// BreakerThreshold opens a replica's breaker after this many
	// consecutive failures (default 5).
	BreakerThreshold int
	// BreakerCooldown is the open -> half-open delay (default 2s).
	BreakerCooldown time.Duration
	// Timeout bounds one proxied attempt (default 10s).
	Timeout time.Duration
	// Seed keys the retry-jitter and rollout-probe RNG streams.
	Seed uint64
	// Log receives router events; nil discards them.
	Log *obs.Logger
	// Metrics is the registry the router reports into (default obs.Default).
	Metrics *obs.Registry
}

func (o *Options) defaults() error {
	if len(o.Replicas) == 0 {
		return errors.New("fleet: at least one replica URL is required")
	}
	if o.ProbeInterval <= 0 {
		o.ProbeInterval = 250 * time.Millisecond
	}
	if o.ProbeTimeout <= 0 {
		o.ProbeTimeout = time.Second
	}
	if o.Retries < 0 {
		o.Retries = 0
	} else if o.Retries == 0 {
		o.Retries = 2
	}
	if o.RetryBase <= 0 {
		o.RetryBase = 5 * time.Millisecond
	}
	if o.HedgeAfter == 0 {
		o.HedgeAfter = 25 * time.Millisecond
	}
	if o.BreakerThreshold <= 0 {
		o.BreakerThreshold = 5
	}
	if o.BreakerCooldown <= 0 {
		o.BreakerCooldown = 2 * time.Second
	}
	if o.Timeout <= 0 {
		o.Timeout = 10 * time.Second
	}
	if o.Metrics == nil {
		o.Metrics = obs.Default
	}
	return nil
}

// Router fronts the replica fleet.
type Router struct {
	opts     Options
	replicas []*Replica
	client   *http.Client
	prober   *prober
	mux      *http.ServeMux
	httpSrv  *http.Server
	log      *obs.Logger
	metrics  *obs.Registry

	reqSeq        atomic.Uint64
	proxied       atomic.Int64 // client requests answered (any status)
	clientErrors  atomic.Int64 // client-visible 5xx / no-replica failures
	retries       atomic.Int64 // extra attempts after a failure
	hedges        atomic.Int64 // hedge requests launched
	hedgeWins     atomic.Int64 // hedges that answered first
	avail         *obs.BurnRate
	rolloutRun    sync.Mutex // held for the duration of one rollout
	rolloutMu     sync.Mutex // guards rolloutStatus
	rolloutStatus RolloutStatus
}

// maxProxyBody caps buffered request bodies (they must be replayable for
// retries and hedges); matches the replicas' own limit.
const maxProxyBody = 1 << 20

// maxResponseBody caps buffered backend responses. It is far larger than
// the request cap — a legitimate /v1/batch answer (10k results with labels
// and predictions) runs to several MiB — and overflowing it fails the
// attempt instead of forwarding a truncated body under a 200.
const maxResponseBody = 32 << 20

// availabilityWindow sizes the router's client-visible availability burn
// monitor (same objective as the replicas' own monitor).
const availabilityWindow = 512

// New builds a router over the replica URLs. Call Start to begin probing.
func New(opts Options) (*Router, error) {
	if err := opts.defaults(); err != nil {
		return nil, err
	}
	rt := &Router{
		opts: opts,
		client: &http.Client{Transport: &http.Transport{
			MaxIdleConns:        64,
			MaxIdleConnsPerHost: 64,
		}},
		log:     opts.Log,
		metrics: opts.Metrics,
		avail:   obs.NewBurnRate(0.999, availabilityWindow),
	}
	rt.rolloutStatus = RolloutStatus{State: RolloutIdle}
	for i, u := range opts.Replicas {
		rt.replicas = append(rt.replicas, &Replica{
			URL:     u,
			idx:     i,
			breaker: NewBreaker(opts.BreakerThreshold, opts.BreakerCooldown),
		})
	}
	rt.prober = newProber(rt.replicas, rt.client, opts.ProbeInterval, opts.ProbeTimeout)
	rt.mux = http.NewServeMux()
	rt.mux.Handle("/v1/select", rt.proxyHandler("select"))
	rt.mux.Handle("/v1/predict", rt.proxyHandler("predict"))
	rt.mux.Handle("/v1/batch", rt.proxyHandler("batch"))
	rt.mux.HandleFunc("/healthz", rt.handleHealthz)
	rt.mux.HandleFunc("/readyz", rt.handleReadyz)
	rt.mux.HandleFunc("/fleet/status", rt.handleStatus)
	rt.mux.HandleFunc("/fleet/rollout", rt.handleRollout)
	rt.mux.HandleFunc("/metrics", rt.handleMetrics)
	return rt, nil
}

// Start probes every replica once and launches the background prober.
func (rt *Router) Start() { rt.prober.start() }

// Close stops the prober.
func (rt *Router) Close() {
	rt.prober.close()
	rt.client.CloseIdleConnections()
}

// Handler returns the router's root handler.
func (rt *Router) Handler() http.Handler { return rt.mux }

// Replicas returns the replica states (shared, live objects).
func (rt *Router) Replicas() []*Replica { return rt.replicas }

// Serve answers on l until Shutdown.
func (rt *Router) Serve(l net.Listener) error {
	rt.httpSrv = &http.Server{
		Handler:           rt.mux,
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      60 * time.Second,
		IdleTimeout:       120 * time.Second,
	}
	err := rt.httpSrv.Serve(l)
	if errors.Is(err, http.ErrServerClosed) {
		return nil
	}
	return err
}

// Shutdown drains in-flight requests, then stops the prober.
func (rt *Router) Shutdown(ctx context.Context) error {
	var err error
	if rt.httpSrv != nil {
		err = rt.httpSrv.Shutdown(ctx)
	}
	rt.Close()
	return err
}

// instanceKey derives the consistent-hash key for a request: the tuning
// instance (model, nodes, ppn, msize) from the query string or JSON body.
// 0 means "no stable key" (batches, unparseable bodies) — those route
// least-loaded instead.
func instanceKey(r *http.Request, body []byte) uint64 {
	h := fnv.New64a()
	q := r.URL.Query()
	if q.Get("nodes") != "" {
		_, _ = io.WriteString(h, q.Get("model")+"|"+q.Get("nodes")+"|"+q.Get("ppn")+"|"+q.Get("msize"))
		return h.Sum64()
	}
	if len(body) > 0 {
		var in struct {
			Model string `json:"model"`
			Nodes int    `json:"nodes"`
			PPN   int    `json:"ppn"`
			Msize int64  `json:"msize"`
		}
		if json.Unmarshal(body, &in) == nil && in.Nodes > 0 {
			fmt.Fprintf(h, "%s|%d|%d|%d", in.Model, in.Nodes, in.PPN, in.Msize)
			return h.Sum64()
		}
	}
	return 0
}

// rendezvousWeight scores replica r for key: the highest-random-weight
// member owns the key, so each instance has a stable home replica and
// reshuffling on membership change is minimal.
func rendezvousWeight(url string, key uint64) uint64 {
	h := fnv.New64a()
	_, _ = io.WriteString(h, url)
	var buf [8]byte
	for i := 0; i < 8; i++ {
		buf[i] = byte(key >> (8 * i))
	}
	_, _ = h.Write(buf[:])
	return h.Sum64()
}

// pick orders the routable replicas (ready, not excluded) and returns the
// first one whose breaker admits the request: the key's rendezvous owner
// first, then the rest by ascending load. A nil return means no replica
// can take the request right now. Hedge picks (hedge=true) only consider
// replicas with a closed breaker: a hedge is cancelled whenever the
// primary wins the race, so it must never carry a half-open probe.
func (rt *Router) pick(key uint64, exclude map[int]bool, now time.Time, hedge bool) *Replica {
	candidates := make([]*Replica, 0, len(rt.replicas))
	for _, r := range rt.replicas {
		if exclude[r.idx] || !r.ready.Load() {
			continue
		}
		candidates = append(candidates, r)
	}
	if len(candidates) == 0 {
		return nil
	}
	if key != 0 {
		sort.Slice(candidates, func(i, j int) bool {
			wi := rendezvousWeight(candidates[i].URL, key)
			wj := rendezvousWeight(candidates[j].URL, key)
			if wi != wj {
				return wi > wj
			}
			return candidates[i].idx < candidates[j].idx
		})
		// The owner leads; everyone after it is fallback, cheapest first.
		rest := candidates[1:]
		sort.Slice(rest, func(i, j int) bool {
			li, lj := rest[i].inflight.Load(), rest[j].inflight.Load()
			if li != lj {
				return li < lj
			}
			return rest[i].idx < rest[j].idx
		})
	} else {
		sort.Slice(candidates, func(i, j int) bool {
			li, lj := candidates[i].inflight.Load(), candidates[j].inflight.Load()
			if li != lj {
				return li < lj
			}
			return candidates[i].idx < candidates[j].idx
		})
	}
	for _, r := range candidates {
		if hedge && r.breaker.State() != BreakerClosed {
			continue
		}
		if r.breaker.Allow(now) {
			return r
		}
	}
	return nil
}

// attemptResult is one proxied attempt's outcome.
type attemptResult struct {
	rep    *Replica
	status int
	header http.Header
	body   []byte
	err    error
}

// ok reports whether the attempt produced a client-servable answer: any
// response below 500. A 4xx is the client's fault and retrying it on
// another replica would return the same answer.
func (a attemptResult) ok() bool { return a.err == nil && a.status < 500 }

// forward sends one attempt to rep and reports the outcome to its breaker.
func (rt *Router) forward(ctx context.Context, rep *Replica, r *http.Request, body []byte) attemptResult {
	res := attemptResult{rep: rep}
	url := rep.URL + r.URL.Path
	if r.URL.RawQuery != "" {
		url += "?" + r.URL.RawQuery
	}
	var rd io.Reader
	if len(body) > 0 {
		rd = bytes.NewReader(body)
	}
	ctx, cancel := context.WithTimeout(ctx, rt.opts.Timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, r.Method, url, rd)
	if err != nil {
		res.err = err
		return res
	}
	if ct := r.Header.Get("Content-Type"); ct != "" {
		req.Header.Set("Content-Type", ct)
	}
	if id := r.Header.Get("X-Request-Id"); id != "" {
		req.Header.Set("X-Request-Id", id)
	}
	rep.requests.Add(1)
	rep.inflight.Add(1)
	resp, err := rt.client.Do(req)
	rep.inflight.Add(-1)
	now := time.Now()
	if err != nil {
		res.err = err
		// A cancelled attempt (hedge lost the race, or the client went
		// away) says nothing about the replica's health: reporting it as
		// a failure would let routine hedging open every breaker. But if
		// this attempt held the half-open probe slot, it must be released
		// or the breaker wedges in half-open forever.
		if errors.Is(ctx.Err(), context.Canceled) {
			rep.breaker.AbortProbe()
		} else {
			rep.failures.Add(1)
			rep.breaker.Report(false, now)
		}
		return res
	}
	defer func() { _ = resp.Body.Close() }()
	res.status = resp.StatusCode
	res.header = resp.Header
	res.body, err = io.ReadAll(io.LimitReader(resp.Body, maxResponseBody+1))
	if err == nil && len(res.body) > maxResponseBody {
		err = fmt.Errorf("response exceeds %d bytes", maxResponseBody)
	}
	if err != nil {
		res.err = err
		res.body = nil
		if errors.Is(ctx.Err(), context.Canceled) {
			rep.breaker.AbortProbe()
		} else {
			rep.failures.Add(1)
			rep.breaker.Report(false, now)
		}
		return res
	}
	good := resp.StatusCode < 500
	if !good {
		rep.failures.Add(1)
	}
	rep.breaker.Report(good, now)
	return res
}

// attemptHedged runs one attempt against primary, racing a hedge replica if
// the primary is slower than the hedge delay. The first servable answer
// wins; the loser's context is cancelled on return.
func (rt *Router) attemptHedged(ctx context.Context, primary *Replica, r *http.Request,
	body []byte, key uint64, tried map[int]bool, hedge bool) attemptResult {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	ch := make(chan attemptResult, 2)
	go func() { ch <- rt.forward(ctx, primary, r, body) }()
	inFlight := 1

	var hedgeTimer *time.Timer
	var hedgeC <-chan time.Time
	if hedge && rt.opts.HedgeAfter > 0 {
		hedgeTimer = time.NewTimer(rt.opts.HedgeAfter)
		defer hedgeTimer.Stop()
		hedgeC = hedgeTimer.C
	}

	var last attemptResult
	for {
		select {
		case res := <-ch:
			inFlight--
			if res.ok() {
				if res.rep != primary {
					rt.hedgeWins.Add(1)
				}
				return res
			}
			last = res
			if inFlight == 0 {
				return last
			}
		case <-hedgeC:
			hedgeC = nil
			sec := rt.pick(key, tried, time.Now(), true)
			if sec == nil {
				continue
			}
			tried[sec.idx] = true
			sec.hedges.Add(1)
			rt.hedges.Add(1)
			inFlight++
			go func() { ch <- rt.forward(ctx, sec, r, body) }()
		}
	}
}

// proxyHandler answers one /v1/* endpoint through the fleet: pick (hash or
// least-loaded), hedge stragglers, retry failures on other replicas with
// jittered backoff, and surface an error only when every option is spent.
func (rt *Router) proxyHandler(endpoint string) http.Handler {
	hist := rt.metrics.Histogram("fleet_request_seconds", obs.Labels{"endpoint": endpoint})
	hedgeable := endpoint == "select" || endpoint == "predict"
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		t0 := time.Now()
		rt.proxied.Add(1)
		var body []byte
		if r.Body != nil {
			var err error
			body, err = io.ReadAll(http.MaxBytesReader(w, r.Body, maxProxyBody))
			if err != nil {
				// Only an actual over-limit read is a 413; aborted or
				// broken client reads are their own fault class.
				code, msg := http.StatusBadRequest, "reading request body: %v"
				var mbe *http.MaxBytesError
				if errors.As(err, &mbe) {
					code, msg = http.StatusRequestEntityTooLarge, "request body too large: %v"
				}
				rt.writeError(w, code, msg, err)
				rt.observe(endpoint, code, hist, t0)
				return
			}
		}
		key := instanceKey(r, body)
		rng := sim.NewRNG(sim.Seed(rt.opts.Seed, rt.reqSeq.Add(1)))
		tried := make(map[int]bool, len(rt.replicas))

		var last attemptResult
		for attempt := 0; attempt <= rt.opts.Retries; attempt++ {
			if attempt > 0 {
				rt.retries.Add(1)
				backoff := rt.opts.RetryBase << (attempt - 1)
				backoff += time.Duration(rng.Float64() * float64(rt.opts.RetryBase))
				time.Sleep(backoff)
			}
			rep := rt.pick(key, tried, time.Now(), false)
			if rep == nil {
				break
			}
			tried[rep.idx] = true
			last = rt.attemptHedged(r.Context(), rep, r, body, key, tried, hedgeable)
			if last.ok() {
				rt.writeAttempt(w, last)
				rt.observe(endpoint, last.status, hist, t0)
				return
			}
		}
		rt.clientErrors.Add(1)
		// The status written to the client and the one recorded in
		// metrics must be the same value.
		var code int
		switch {
		case last.rep == nil && last.err == nil:
			code = http.StatusServiceUnavailable
			rt.writeError(w, code, "no ready replica")
		case last.err != nil:
			code = http.StatusBadGateway
			rt.writeError(w, code, "all replicas failed, last: %v", last.err)
		default:
			code = last.status
			rt.writeAttempt(w, last) // forward the backend's 5xx verbatim
		}
		rt.observe(endpoint, code, hist, t0)
	})
}

// observe folds one answered request into the availability monitor and
// metrics registry.
func (rt *Router) observe(endpoint string, code int, hist *obs.Histogram, t0 time.Time) {
	rt.avail.Observe(code < 500)
	hist.Observe(time.Since(t0).Seconds())
	rt.metrics.Counter("fleet_requests_total",
		obs.Labels{"endpoint": endpoint, "code": strconv.Itoa(code)}).Inc()
}

func (rt *Router) writeAttempt(w http.ResponseWriter, res attemptResult) {
	if ct := res.header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	if id := res.header.Get("X-Request-Id"); id != "" {
		w.Header().Set("X-Request-Id", id)
	}
	w.Header().Set("X-Fleet-Replica", res.rep.URL)
	w.WriteHeader(res.status)
	if _, err := w.Write(res.body); err != nil && rt.log != nil {
		rt.log.Debugf("fleet: writing response: %v", err)
	}
}

func (rt *Router) writeError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

// FleetCounters aggregates the router's resilience machinery.
type FleetCounters struct {
	Proxied           int64   `json:"proxied_total"`
	ClientErrors      int64   `json:"client_errors_total"`
	Retries           int64   `json:"retries_total"`
	Hedges            int64   `json:"hedges_total"`
	HedgeWins         int64   `json:"hedge_wins_total"`
	BreakerOpens      uint64  `json:"breaker_opens_total"`
	BreakerRejections uint64  `json:"breaker_rejections_total"`
	AvailabilityBurn  float64 `json:"availability_burn"`
	AvailabilityLevel string  `json:"availability_level"`
}

// FleetStatus is the /fleet/status payload.
type FleetStatus struct {
	Replicas []ReplicaStatus `json:"replicas"`
	Counters FleetCounters   `json:"counters"`
	Rollout  RolloutStatus   `json:"rollout"`
}

// Status snapshots the fleet.
func (rt *Router) Status() FleetStatus {
	st := FleetStatus{Rollout: rt.RolloutStatus()}
	var opens, rejects uint64
	for _, r := range rt.replicas {
		st.Replicas = append(st.Replicas, r.status())
		o, rej := r.breaker.Stats()
		opens += o
		rejects += rej
	}
	st.Counters = FleetCounters{
		Proxied:           rt.proxied.Load(),
		ClientErrors:      rt.clientErrors.Load(),
		Retries:           rt.retries.Load(),
		Hedges:            rt.hedges.Load(),
		HedgeWins:         rt.hedgeWins.Load(),
		BreakerOpens:      opens,
		BreakerRejections: rejects,
		AvailabilityBurn:  rt.avail.Burn(),
		AvailabilityLevel: rt.avail.Level().String(),
	}
	return st
}

func (rt *Router) handleStatus(w http.ResponseWriter, r *http.Request) {
	rt.writeJSON(w, http.StatusOK, rt.Status())
}

func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	ready := 0
	for _, rep := range rt.replicas {
		if rep.ready.Load() {
			ready++
		}
	}
	rt.writeJSON(w, http.StatusOK, map[string]any{
		"status": "ok", "replicas": len(rt.replicas), "ready": ready,
	})
}

func (rt *Router) handleReadyz(w http.ResponseWriter, r *http.Request) {
	ready := 0
	for _, rep := range rt.replicas {
		if rep.ready.Load() {
			ready++
		}
	}
	if ready == 0 {
		rt.writeJSON(w, http.StatusServiceUnavailable,
			map[string]any{"status": "not_ready", "reason": "no ready replica"})
		return
	}
	rt.writeJSON(w, http.StatusOK, map[string]any{"status": "ready", "ready": ready})
}

func (rt *Router) handleMetrics(w http.ResponseWriter, r *http.Request) {
	st := rt.Status()
	rt.metrics.Gauge("fleet_retries_total", nil).Set(float64(st.Counters.Retries))
	rt.metrics.Gauge("fleet_hedges_total", nil).Set(float64(st.Counters.Hedges))
	rt.metrics.Gauge("fleet_hedge_wins_total", nil).Set(float64(st.Counters.HedgeWins))
	rt.metrics.Gauge("fleet_breaker_opens_total", nil).Set(float64(st.Counters.BreakerOpens))
	rt.metrics.Gauge("fleet_breaker_rejections_total", nil).Set(float64(st.Counters.BreakerRejections))
	rt.metrics.Gauge("fleet_client_errors_total", nil).Set(float64(st.Counters.ClientErrors))
	rt.metrics.Gauge("fleet_availability_burn", nil).Set(st.Counters.AvailabilityBurn)
	for _, rep := range st.Replicas {
		labels := obs.Labels{"replica": rep.URL}
		ready := 0.0
		if rep.Ready {
			ready = 1
		}
		rt.metrics.Gauge("fleet_replica_ready", labels).Set(ready)
		rt.metrics.Gauge("fleet_replica_requests_total", labels).Set(float64(rep.Requests))
		rt.metrics.Gauge("fleet_replica_failures_total", labels).Set(float64(rep.Failures))
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if err := rt.metrics.WriteText(w); err != nil && rt.log != nil {
		rt.log.Debugf("fleet: writing metrics: %v", err)
	}
}

func (rt *Router) writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	if err := json.NewEncoder(w).Encode(v); err != nil && rt.log != nil {
		rt.log.Debugf("fleet: writing response: %v", err)
	}
}
