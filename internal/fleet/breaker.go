// Package fleet is the front tier of the serving stack: a health-checked
// router that proxies tuning queries to N mpicollserve replicas with
// consistent-hash-by-instance routing, least-loaded fallback, per-replica
// circuit breakers, bounded retries with jittered exponential backoff,
// hedged requests for p99 stragglers, and a canary rollout state machine
// that distributes versioned snapshots one replica at a time with
// auto-rollback on breach. Everything runs as plain local processes — the
// fleet is an architecture, not an orchestrator dependency — and every
// stochastic routing decision (jitter, probe draws) comes from seeded RNG
// streams so fleet tests replay deterministically.
package fleet

import (
	"sync"
	"time"
)

// BreakerState is a circuit breaker's position.
type BreakerState int32

const (
	// BreakerClosed passes traffic and counts consecutive failures.
	BreakerClosed BreakerState = iota
	// BreakerOpen rejects traffic until the cooldown elapses.
	BreakerOpen
	// BreakerHalfOpen admits one probe request; its outcome decides
	// between reclosing and reopening.
	BreakerHalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half_open"
	default:
		return "closed"
	}
}

// Breaker is a per-replica circuit breaker. The clock is passed into Allow
// and Report rather than read inside, so tests drive the state machine with
// a synthetic timeline.
type Breaker struct {
	mu        sync.Mutex
	state     BreakerState
	failures  int       // consecutive failures while closed
	openedAt  time.Time // when the breaker last opened
	probing   bool      // a half-open probe is in flight
	threshold int
	cooldown  time.Duration

	opens      uint64 // lifetime closed/half-open -> open transitions
	rejections uint64 // requests refused while open
}

// NewBreaker returns a closed breaker that opens after threshold
// consecutive failures and tries a half-open probe after cooldown.
func NewBreaker(threshold int, cooldown time.Duration) *Breaker {
	if threshold < 1 {
		threshold = 1
	}
	if cooldown <= 0 {
		cooldown = 2 * time.Second
	}
	return &Breaker{threshold: threshold, cooldown: cooldown}
}

// Allow reports whether a request may pass at time now. While open it
// rejects until the cooldown has elapsed, then admits exactly one probe
// (half-open); concurrent callers during a probe are rejected.
func (b *Breaker) Allow(now time.Time) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if now.Sub(b.openedAt) >= b.cooldown {
			b.state = BreakerHalfOpen
			b.probing = true
			return true
		}
		b.rejections++
		return false
	default: // half-open
		if b.probing {
			b.rejections++
			return false
		}
		b.probing = true
		return true
	}
}

// AbortProbe releases the half-open probe slot without deciding an
// outcome. Called when a probe attempt was cancelled (hedge lost the race,
// client disconnect): the cancelled attempt says nothing about the
// replica's health, but silently dropping the report would leave probing
// set and wedge the breaker in half-open — rejecting everything — until
// process restart.
func (b *Breaker) AbortProbe() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == BreakerHalfOpen {
		b.probing = false
	}
}

// Report folds one request outcome into the breaker.
func (b *Breaker) Report(ok bool, now time.Time) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerHalfOpen:
		b.probing = false
		if ok {
			b.state = BreakerClosed
			b.failures = 0
		} else {
			b.state = BreakerOpen
			b.openedAt = now
			b.opens++
		}
	case BreakerClosed:
		if ok {
			b.failures = 0
			return
		}
		b.failures++
		if b.failures >= b.threshold {
			b.state = BreakerOpen
			b.openedAt = now
			b.opens++
		}
	}
}

// State returns the current position.
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Stats returns the lifetime open transitions and rejected requests.
func (b *Breaker) Stats() (opens, rejections uint64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.opens, b.rejections
}
