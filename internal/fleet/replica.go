// Replica state and the active health prober. The router routes only to
// replicas whose readiness probe (/readyz) passed recently and whose
// breaker admits traffic; liveness (/healthz) is tracked separately so
// /fleet/status can distinguish "process up but draining" from "gone".

package fleet

import (
	"context"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// Replica is one mpicollserve backend.
type Replica struct {
	// URL is the replica base URL (e.g. "http://127.0.0.1:18081").
	URL string

	idx      int
	alive    atomic.Bool // /healthz answered 200
	ready    atomic.Bool // /readyz answered 200
	inflight atomic.Int64
	breaker  *Breaker

	requests      atomic.Int64 // proxied attempts sent here
	failures      atomic.Int64 // transport errors + 5xx answers
	hedges        atomic.Int64 // hedge attempts sent here
	probeFailures atomic.Int64 // liveness/readiness probes failed
}

// ReplicaStatus is one replica's row in /fleet/status.
type ReplicaStatus struct {
	URL           string `json:"url"`
	Alive         bool   `json:"alive"`
	Ready         bool   `json:"ready"`
	Breaker       string `json:"breaker"`
	BreakerOpens  uint64 `json:"breaker_opens"`
	Inflight      int64  `json:"inflight"`
	Requests      int64  `json:"requests"`
	Failures      int64  `json:"failures"`
	Hedges        int64  `json:"hedges"`
	ProbeFailures int64  `json:"probe_failures"`
}

func (r *Replica) status() ReplicaStatus {
	opens, _ := r.breaker.Stats()
	return ReplicaStatus{
		URL:           r.URL,
		Alive:         r.alive.Load(),
		Ready:         r.ready.Load(),
		Breaker:       r.breaker.State().String(),
		BreakerOpens:  opens,
		Inflight:      r.inflight.Load(),
		Requests:      r.requests.Load(),
		Failures:      r.failures.Load(),
		Hedges:        r.hedges.Load(),
		ProbeFailures: r.probeFailures.Load(),
	}
}

// prober polls every replica's /healthz and /readyz on a fixed interval.
type prober struct {
	replicas []*Replica
	client   *http.Client
	interval time.Duration
	timeout  time.Duration
	stop     chan struct{}
	done     sync.WaitGroup
}

func newProber(replicas []*Replica, client *http.Client, interval, timeout time.Duration) *prober {
	return &prober{
		replicas: replicas,
		client:   client,
		interval: interval,
		timeout:  timeout,
		stop:     make(chan struct{}),
	}
}

// start probes every replica once synchronously (so the router is born with
// fresh state instead of routing blind until the first tick) and then keeps
// probing in the background.
func (p *prober) start() {
	p.sweep()
	p.done.Add(1)
	go func() {
		defer p.done.Done()
		t := time.NewTicker(p.interval)
		defer t.Stop()
		for {
			select {
			case <-p.stop:
				return
			case <-t.C:
				p.sweep()
			}
		}
	}()
}

func (p *prober) close() {
	close(p.stop)
	p.done.Wait()
}

// sweep probes all replicas concurrently; one wedged replica must not delay
// marking its siblings healthy.
func (p *prober) sweep() {
	var wg sync.WaitGroup
	for _, r := range p.replicas {
		wg.Add(1)
		go func(r *Replica) {
			defer wg.Done()
			p.probe(r)
		}(r)
	}
	wg.Wait()
}

func (p *prober) probe(r *Replica) {
	alive := p.get(r.URL + "/healthz")
	ready := alive && p.get(r.URL+"/readyz")
	if !alive || !ready {
		r.probeFailures.Add(1)
	}
	r.alive.Store(alive)
	r.ready.Store(ready)
}

// get reports whether url answers 200 within the probe timeout.
func (p *prober) get(url string) bool {
	ctx, cancel := context.WithTimeout(context.Background(), p.timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return false
	}
	resp, err := p.client.Do(req)
	if err != nil {
		return false
	}
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16))
	_ = resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}
