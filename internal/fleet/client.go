// Rollout client: the thin HTTP shim other subsystems (the online
// retraining loop's deployer, scripts) use to drive a router's canary
// rollout without reimplementing the wire shapes. It lives in fleet so the
// request/status types stay single-sourced with the handler.

package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
)

// RequestRollout POSTs a canary rollout to routerURL's /fleet/rollout and
// returns the terminal status the state machine reports (promoted,
// rolled_back, or failed). The call is synchronous — the router's handler
// runs the full probe/compare/promote sequence before answering. A nil
// client uses http.DefaultClient; cancel via ctx.
func RequestRollout(ctx context.Context, client *http.Client, routerURL string, req RolloutRequest) (RolloutStatus, error) {
	var st RolloutStatus
	if client == nil {
		client = http.DefaultClient
	}
	body, err := json.Marshal(req)
	if err != nil {
		return st, fmt.Errorf("fleet: encoding rollout request: %w", err)
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost,
		routerURL+"/fleet/rollout", bytes.NewReader(body))
	if err != nil {
		return st, fmt.Errorf("fleet: rollout request: %w", err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(hreq)
	if err != nil {
		return st, fmt.Errorf("fleet: rollout call: %w", err)
	}
	defer func() { _ = resp.Body.Close() }()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, maxProxyBody))
	if err != nil {
		return st, fmt.Errorf("fleet: reading rollout response: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		return st, fmt.Errorf("fleet: rollout returned %d: %s", resp.StatusCode, bytes.TrimSpace(raw))
	}
	if err := json.Unmarshal(raw, &st); err != nil {
		return st, fmt.Errorf("fleet: decoding rollout status: %w", err)
	}
	return st, nil
}
