// Canary rollout: coordinated snapshot distribution with staged promotion.
// A rollout pushes a new snapshot set to ONE replica (the canary), replays
// a seeded probe workload against both the canary and a baseline replica,
// and compares their selection distributions plus the canary's own drift
// and SLO monitors. Only if the canary agrees closely enough and no monitor
// breaches does the new set promote fleet-wide; otherwise the canary is
// rolled back to its previous snapshots automatically. The replica-side
// seam is /v1/reload with a {"paths": [...]} body (serve.ReloadPaths),
// which leaves the old generation serving on any load error — so no step
// of the state machine can take a replica offline.

package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"mpicollpred/internal/sim"
)

// Rollout states.
const (
	RolloutIdle       = "idle"
	RolloutPromoted   = "promoted"
	RolloutRolledBack = "rolled_back"
	RolloutFailed     = "failed"
)

// RolloutRequest is the POST /fleet/rollout body.
type RolloutRequest struct {
	// Paths are the candidate snapshot files, as seen by the replicas.
	Paths []string `json:"paths"`
	// Probes is how many instances the comparison replays (default 64).
	Probes int `json:"probes,omitempty"`
	// MaxDivergence is the tolerated fraction of probes on which the
	// canary's selection differs from the baseline's (default 0.25).
	MaxDivergence float64 `json:"max_divergence,omitempty"`
	// Nodes/PPNs/Msizes override the probe instance pool; defaults match
	// the loadgen pool. Probes must draw from the served models' training
	// envelope or divergence measures guardrail noise, not model change.
	Nodes  []int   `json:"nodes,omitempty"`
	PPNs   []int   `json:"ppns,omitempty"`
	Msizes []int64 `json:"msizes,omitempty"`
}

// RolloutStatus is the observable state of the rollout machine.
type RolloutStatus struct {
	State         string   `json:"state"`
	Paths         []string `json:"paths,omitempty"`
	PreviousPaths []string `json:"previous_paths,omitempty"`
	Canary        string   `json:"canary,omitempty"`
	Baseline      string   `json:"baseline,omitempty"`
	Probes        int      `json:"probes,omitempty"`
	Diverged      int      `json:"diverged,omitempty"`
	Divergence    float64  `json:"divergence"`
	MaxDivergence float64  `json:"max_divergence,omitempty"`
	CanaryErrors  int      `json:"canary_errors,omitempty"`
	Promoted      []string `json:"promoted,omitempty"`
	Failed        []string `json:"failed_replicas,omitempty"`
	Reason        string   `json:"reason,omitempty"`
	Steps         []string `json:"steps,omitempty"`
}

// RolloutStatus returns the last (or in-progress) rollout state.
func (rt *Router) RolloutStatus() RolloutStatus {
	rt.rolloutMu.Lock()
	defer rt.rolloutMu.Unlock()
	return rt.rolloutStatus
}

func (rt *Router) setRollout(st RolloutStatus) {
	rt.rolloutMu.Lock()
	rt.rolloutStatus = st
	rt.rolloutMu.Unlock()
}

// selectProbe is the slice of a /v1/select answer the comparison reads.
type selectProbe struct {
	ConfigID int    `json:"config_id"`
	Label    string `json:"label"`
	Fallback bool   `json:"fallback"`
}

// replicaHealth is the slice of a replica /healthz the rollout reads.
type replicaHealth struct {
	Generation    uint64   `json:"generation"`
	SnapshotPaths []string `json:"snapshot_paths"`
}

// canaryTelemetry is the slice of /v1/telemetry the breach check reads.
type canaryTelemetry struct {
	Models []struct {
		Model         string `json:"model"`
		FallbackLevel string `json:"fallback_level"`
	} `json:"models"`
	Availability struct {
		Level string `json:"level"`
	} `json:"availability"`
}

// Rollout runs the canary state machine synchronously and returns its final
// status. Only one rollout runs at a time; a concurrent call fails fast.
// ctx bounds the whole run: cancelling it (the operator hung up, the server
// is draining) aborts the in-flight replica call and fails the stage it was
// in — a replica that already loaded the candidate set keeps it, which is
// safe because loads are atomic and the status records how far we got.
func (rt *Router) Rollout(ctx context.Context, req RolloutRequest) RolloutStatus {
	if !rt.rolloutRun.TryLock() {
		return RolloutStatus{State: RolloutFailed, Reason: "a rollout is already in progress"}
	}
	defer rt.rolloutRun.Unlock()

	if req.Probes <= 0 {
		req.Probes = 64
	}
	if req.MaxDivergence <= 0 {
		req.MaxDivergence = 0.25
	}
	if len(req.Nodes) == 0 {
		req.Nodes = []int{2, 4, 8, 16}
	}
	if len(req.PPNs) == 0 {
		req.PPNs = []int{4, 8}
	}
	if len(req.Msizes) == 0 {
		req.Msizes = []int64{64, 1024, 16384, 262144}
	}

	st := RolloutStatus{State: RolloutIdle, Paths: req.Paths,
		Probes: req.Probes, MaxDivergence: req.MaxDivergence}
	step := func(format string, args ...any) {
		msg := fmt.Sprintf(format, args...)
		st.Steps = append(st.Steps, msg)
		if rt.log != nil {
			rt.log.Infof("rollout: %s", msg)
		}
		rt.setRollout(st)
	}
	fail := func(format string, args ...any) RolloutStatus {
		st.State = RolloutFailed
		st.Reason = fmt.Sprintf(format, args...)
		step("failed: %s", st.Reason)
		return st
	}

	if len(req.Paths) == 0 {
		return fail("no snapshot paths")
	}

	// Stage 0: pick canary and baseline from the ready replicas.
	var ready []*Replica
	for _, r := range rt.replicas {
		if r.ready.Load() {
			ready = append(ready, r)
		}
	}
	if len(ready) < 2 {
		return fail("need >= 2 ready replicas for a canary comparison, have %d", len(ready))
	}
	canary, baseline := ready[0], ready[1]
	st.Canary, st.Baseline = canary.URL, baseline.URL

	var hc replicaHealth
	if err := rt.getJSON(ctx, canary.URL+"/healthz", &hc); err != nil {
		return fail("canary healthz: %v", err)
	}
	if len(hc.SnapshotPaths) == 0 {
		return fail("canary %s reports no snapshot paths; cannot roll back, refusing to roll out", canary.URL)
	}
	st.PreviousPaths = hc.SnapshotPaths
	step("canary %s (baseline %s), previous snapshots %v", canary.URL, baseline.URL, hc.SnapshotPaths)

	// Stage 1: push the candidate snapshots to the canary only.
	if err := rt.postReload(ctx, canary.URL, req.Paths); err != nil {
		// The replica keeps serving its previous generation on a failed
		// load, so there is nothing to roll back — the rollout just dies.
		return fail("canary reload: %v", err)
	}
	step("canary loaded %v", req.Paths)

	rollback := func(reason string) RolloutStatus {
		st.Reason = reason
		if err := rt.postReload(ctx, canary.URL, st.PreviousPaths); err != nil {
			return fail("%s; AND rollback reload failed: %v", reason, err)
		}
		st.State = RolloutRolledBack
		step("rolled back canary to %v: %s", st.PreviousPaths, reason)
		return st
	}

	// Stage 2: replay a seeded probe workload against canary and baseline
	// and compare their selection distributions.
	rng := sim.NewRNG(sim.Seed(rt.opts.Seed, 0x9011, rt.reqSeq.Add(1)))
	for i := 0; i < req.Probes; i++ {
		nodes := req.Nodes[rng.Intn(len(req.Nodes))]
		ppn := req.PPNs[rng.Intn(len(req.PPNs))]
		msize := req.Msizes[rng.Intn(len(req.Msizes))]
		q := fmt.Sprintf("/v1/select?nodes=%d&ppn=%d&msize=%d", nodes, ppn, msize)
		var cp, bp selectProbe
		if err := rt.getJSON(ctx, canary.URL+q, &cp); err != nil {
			st.CanaryErrors++
			continue
		}
		if err := rt.getJSON(ctx, baseline.URL+q, &bp); err != nil {
			continue // baseline trouble is not the canary's fault
		}
		if cp.ConfigID != bp.ConfigID {
			st.Diverged++
		}
	}
	st.Divergence = float64(st.Diverged) / float64(req.Probes)
	step("probes: %d/%d diverged (%.1f%%), %d canary errors",
		st.Diverged, req.Probes, 100*st.Divergence, st.CanaryErrors)

	// Stage 3: gate on probe health, divergence, and the canary's own
	// drift/SLO monitors.
	if st.CanaryErrors*10 > req.Probes {
		return rollback(fmt.Sprintf("canary failed %d/%d probes", st.CanaryErrors, req.Probes))
	}
	if st.Divergence > req.MaxDivergence {
		return rollback(fmt.Sprintf("selection divergence %.1f%% exceeds %.1f%%",
			100*st.Divergence, 100*req.MaxDivergence))
	}
	var tel canaryTelemetry
	if err := rt.getJSON(ctx, canary.URL+"/v1/telemetry", &tel); err != nil {
		return rollback(fmt.Sprintf("canary telemetry unreadable: %v", err))
	}
	if tel.Availability.Level == "breach" {
		return rollback("canary availability monitor breached")
	}
	for _, m := range tel.Models {
		if m.FallbackLevel == "breach" {
			return rollback(fmt.Sprintf("canary fallback monitor breached for model %s", m.Model))
		}
	}
	step("canary healthy: promoting fleet-wide")

	// Stage 4: promote — push the candidate set to every other live
	// replica. A replica that fails to load keeps its old snapshots (its
	// reload is atomic), so a partial promotion degrades, never breaks.
	st.Promoted = append(st.Promoted, canary.URL)
	for _, r := range rt.replicas {
		if r == canary || !r.alive.Load() {
			continue
		}
		if err := rt.postReload(ctx, r.URL, req.Paths); err != nil {
			st.Failed = append(st.Failed, r.URL)
			step("promote %s failed (still on previous snapshots): %v", r.URL, err)
			continue
		}
		st.Promoted = append(st.Promoted, r.URL)
	}
	st.State = RolloutPromoted
	if len(st.Failed) > 0 {
		st.Reason = fmt.Sprintf("%d replicas failed to load the new snapshots", len(st.Failed))
	}
	step("promoted %d/%d replicas", len(st.Promoted), len(rt.replicas))
	return st
}

func (rt *Router) handleRollout(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		rt.writeJSON(w, http.StatusOK, rt.RolloutStatus())
	case http.MethodPost:
		var req RolloutRequest
		dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxProxyBody))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			rt.writeError(w, http.StatusBadRequest, "bad rollout request: %v", err)
			return
		}
		st := rt.Rollout(r.Context(), req)
		rt.setRollout(st)
		rt.writeJSON(w, http.StatusOK, st)
	default:
		rt.writeError(w, http.StatusMethodNotAllowed, "GET the status or POST a rollout")
	}
}

// getJSON fetches url into out with the router's probe timeout.
func (rt *Router) getJSON(ctx context.Context, url string, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	return rt.doJSON(req, out)
}

// postReload asks a replica to switch its snapshot set.
func (rt *Router) postReload(ctx context.Context, base string, paths []string) error {
	body, err := json.Marshal(map[string][]string{"paths": paths})
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/v1/reload", bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	return rt.doJSON(req, nil)
}

func (rt *Router) doJSON(req *http.Request, out any) error {
	client := &http.Client{Transport: rt.client.Transport, Timeout: rolloutTimeout}
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer func() { _ = resp.Body.Close() }()
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxProxyBody))
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("status %d: %s", resp.StatusCode, truncate(data, 256))
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(data, out)
}

// rolloutTimeout bounds one rollout HTTP call (snapshot loads included).
const rolloutTimeout = 15 * time.Second

func truncate(b []byte, n int) string {
	if len(b) > n {
		b = b[:n]
	}
	return string(b)
}
