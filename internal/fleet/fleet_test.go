package fleet

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"mpicollpred/internal/bench"
	"mpicollpred/internal/core"
	"mpicollpred/internal/dataset"
	"mpicollpred/internal/fault"
	"mpicollpred/internal/obs"
	"mpicollpred/internal/serve"
)

// fleetModels trains one knn and one linear selector once for the whole
// package (training is the slow part; every test only reads them).
var fleetModels struct {
	once sync.Once
	knn  *serve.Model
	lin  *serve.Model
	err  error
}

func testModels(t testing.TB) (*serve.Model, *serve.Model) {
	t.Helper()
	fleetModels.once.Do(func() {
		spec, err := dataset.SpecByName("d2", dataset.ScaleSmoke)
		if err != nil {
			fleetModels.err = err
			return
		}
		spec.Nodes = []int{2, 3, 4, 5, 6}
		spec.PPNs = []int{1, 4}
		spec.Msizes = []int64{16, 1024, 16384, 262144}
		ds, err := dataset.Generate(spec, bench.Options{MaxReps: 3, SyncJitter: 1e-7}, nil)
		if err != nil {
			fleetModels.err = err
			return
		}
		mach, set, err := spec.Resolve()
		if err != nil {
			fleetModels.err = err
			return
		}
		trainNodes := []int{2, 4, 6}
		for _, learner := range []string{"knn", "linear"} {
			sel, err := core.Train(ds, set, learner, trainNodes)
			if err != nil {
				fleetModels.err = err
				return
			}
			sel.SetFallback(mach, set)
			fp := core.FingerprintFor(ds, learner, trainNodes)
			m := &serve.Model{Name: serve.ModelName(fp), Sel: sel, Fp: fp}
			if learner == "knn" {
				fleetModels.knn = m
			} else {
				fleetModels.lin = m
			}
		}
	})
	if fleetModels.err != nil {
		t.Fatal(fleetModels.err)
	}
	return fleetModels.knn, fleetModels.lin
}

// newReplica starts one real mpicollserve replica on a loopback listener,
// optionally wrapped in middleware (the chaos seam), and returns both the
// serve.Server (for white-box assertions) and its HTTP front.
func newReplica(t *testing.T, opts serve.Options, mw func(http.Handler) http.Handler, models ...*serve.Model) (*serve.Server, *httptest.Server) {
	t.Helper()
	s, err := serve.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(models) > 0 {
		if err := s.Registry().Install(models...); err != nil {
			t.Fatal(err)
		}
	}
	h := s.Handler()
	if mw != nil {
		h = mw(h)
	}
	srv := httptest.NewServer(h)
	t.Cleanup(srv.Close)
	return s, srv
}

func newRouter(t *testing.T, urls []string, tweak func(*Options)) *Router {
	t.Helper()
	opts := Options{
		Replicas:         urls,
		ProbeInterval:    20 * time.Millisecond,
		ProbeTimeout:     500 * time.Millisecond,
		Retries:          3,
		BreakerThreshold: 3,
		BreakerCooldown:  100 * time.Millisecond,
		Seed:             42,
	}
	if tweak != nil {
		tweak(&opts)
	}
	rt, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	rt.Start()
	t.Cleanup(rt.Close)
	return rt
}

func TestBreakerStateMachine(t *testing.T) {
	b := NewBreaker(3, time.Second)
	now := time.Unix(0, 0)
	if !b.Allow(now) {
		t.Fatal("fresh breaker must be closed")
	}
	// Two failures and a success: consecutive count resets, stays closed.
	b.Report(false, now)
	b.Report(false, now)
	b.Report(true, now)
	b.Report(false, now)
	b.Report(false, now)
	if b.State() != BreakerClosed {
		t.Fatalf("state %v after non-consecutive failures, want closed", b.State())
	}
	// Third consecutive failure opens.
	b.Report(false, now)
	if b.State() != BreakerOpen {
		t.Fatalf("state %v after threshold failures, want open", b.State())
	}
	if b.Allow(now.Add(500 * time.Millisecond)) {
		t.Fatal("open breaker admitted a request before cooldown")
	}
	// After the cooldown exactly one probe passes.
	probeTime := now.Add(1100 * time.Millisecond)
	if !b.Allow(probeTime) {
		t.Fatal("cooled-down breaker refused the half-open probe")
	}
	if b.Allow(probeTime) {
		t.Fatal("half-open breaker admitted a second concurrent probe")
	}
	// Probe fails: reopen; cooldown restarts from the failure.
	b.Report(false, probeTime)
	if b.State() != BreakerOpen {
		t.Fatalf("state %v after failed probe, want open", b.State())
	}
	again := probeTime.Add(1100 * time.Millisecond)
	if !b.Allow(again) {
		t.Fatal("breaker refused second probe after renewed cooldown")
	}
	b.Report(true, again)
	if b.State() != BreakerClosed {
		t.Fatalf("state %v after successful probe, want closed", b.State())
	}
	opens, rejections := b.Stats()
	if opens != 2 || rejections != 2 {
		t.Fatalf("stats opens=%d rejections=%d, want 2 and 2", opens, rejections)
	}
}

// TestBreakerAbortProbe is the regression test for the half-open wedge: a
// cancelled probe attempt (hedge lost the race, client disconnect) must
// release the probe slot instead of leaving the breaker rejecting every
// request until process restart.
func TestBreakerAbortProbe(t *testing.T) {
	b := NewBreaker(1, time.Second)
	now := time.Unix(0, 0)
	b.Report(false, now) // open
	probeTime := now.Add(1100 * time.Millisecond)
	if !b.Allow(probeTime) {
		t.Fatal("cooled-down breaker refused the half-open probe")
	}
	if b.Allow(probeTime) {
		t.Fatal("half-open breaker admitted a second concurrent probe")
	}
	// The probe was cancelled: releasing its slot must let a new probe in.
	b.AbortProbe()
	if !b.Allow(probeTime) {
		t.Fatal("breaker stayed wedged after the cancelled probe was aborted")
	}
	b.Report(true, probeTime)
	if b.State() != BreakerClosed {
		t.Fatalf("state %v after successful re-probe, want closed", b.State())
	}
	// On a closed breaker AbortProbe is a no-op.
	b.AbortProbe()
	if b.State() != BreakerClosed || !b.Allow(probeTime) {
		t.Fatal("AbortProbe disturbed a closed breaker")
	}
}

// TestPickHedgeSkipsHalfOpen: a hedge attempt is cancelled whenever the
// primary wins the race, so hedge picks must never consume a half-open
// probe slot — only non-cancellable primaries carry probes.
func TestPickHedgeSkipsHalfOpen(t *testing.T) {
	rt, err := New(Options{Replicas: []string{"http://127.0.0.1:1", "http://127.0.0.1:2"}})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rt.replicas {
		r.ready.Store(true)
	}
	now := time.Unix(0, 0)
	target := rt.replicas[1]
	for i := 0; i < 5; i++ {
		target.breaker.Report(false, now)
	}
	after := now.Add(3 * time.Second) // past cooldown: probe-eligible
	excl := map[int]bool{0: true}     // the open-breaker replica is the only candidate
	if got := rt.pick(0, excl, after, true); got != nil {
		t.Fatalf("hedge pick returned %s whose breaker is not closed", got.URL)
	}
	if target.breaker.State() != BreakerOpen {
		t.Fatalf("hedge pick disturbed the breaker: state %v, want open", target.breaker.State())
	}
	// The same replica still takes the probe as a primary.
	if got := rt.pick(0, excl, after, false); got != target {
		t.Fatal("primary pick refused the half-open probe")
	}
}

// TestForwardOversizedResponse: a backend response over the proxy cap must
// fail the attempt rather than be truncated and forwarded under a 200.
func TestForwardOversizedResponse(t *testing.T) {
	big := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		buf := make([]byte, 1<<20)
		for written := 0; written <= maxResponseBody; written += len(buf) {
			if _, err := w.Write(buf); err != nil {
				return
			}
		}
	}))
	defer big.Close()
	rt, err := New(Options{Replicas: []string{big.URL}})
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodGet, "/v1/select", nil)
	res := rt.forward(context.Background(), rt.replicas[0], req, nil)
	if res.err == nil {
		t.Fatalf("oversized response forwarded as success (status %d, %d bytes)", res.status, len(res.body))
	}
}

// TestNoReadyReplicaStatusMetrics: the 503 written to the client on the
// no-ready-replica path must be the same status recorded in metrics.
func TestNoReadyReplicaStatusMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	rt, err := New(Options{Replicas: []string{"http://127.0.0.1:1"}, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	// The replica is never marked ready: pick finds nothing.
	rec := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodGet, "/v1/select?model=m&nodes=2&ppn=1&msize=16", nil)
	rt.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("code %d, want 503", rec.Code)
	}
	if n := reg.Counter("fleet_requests_total", obs.Labels{"endpoint": "select", "code": "503"}).Value(); n != 1 {
		t.Fatalf("fleet_requests_total{code=503} = %d, want 1", n)
	}
}

func TestPickRendezvousStable(t *testing.T) {
	rt, err := New(Options{Replicas: []string{
		"http://127.0.0.1:1", "http://127.0.0.1:2", "http://127.0.0.1:3",
	}})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rt.replicas {
		r.ready.Store(true)
	}
	now := time.Unix(0, 0)
	// The same key always lands on the same owner.
	owner := rt.pick(12345, nil, now, false)
	for i := 0; i < 10; i++ {
		if got := rt.pick(12345, nil, now, false); got != owner {
			t.Fatalf("pick moved from %s to %s for a stable key", owner.URL, got.URL)
		}
	}
	// With the owner excluded, pick falls to the least-loaded survivor.
	rt.replicas[0].inflight.Store(5)
	rt.replicas[1].inflight.Store(5)
	rt.replicas[2].inflight.Store(5)
	var light *Replica
	for _, r := range rt.replicas {
		if r != owner {
			r.inflight.Store(1)
			light = r
			break
		}
	}
	got := rt.pick(12345, map[int]bool{owner.idx: true}, now, false)
	if got != light {
		t.Fatalf("fallback picked %s, want least-loaded %s", got.URL, light.URL)
	}
	// Different keys spread across replicas (not all on one owner).
	seen := map[string]bool{}
	for key := uint64(1); key < 64; key++ {
		seen[rt.pick(key, nil, now, false).URL] = true
	}
	if len(seen) < 2 {
		t.Fatalf("64 keys all hashed to one replica; rendezvous weights broken")
	}
	// An open breaker diverts the owner's traffic instead of failing it.
	for i := 0; i < 5; i++ {
		owner.breaker.Report(false, now)
	}
	if got := rt.pick(12345, nil, now, false); got == owner {
		t.Fatal("pick routed to a replica with an open breaker")
	}
}

// TestFleetChaosZeroClientErrors is the acceptance test for the fault
// tolerance tentpole: three replicas behind the router, one killed mid-run
// and one under seeded delay/5xx chaos, while a multi-target loadgen drives
// the fleet. The client must see zero errors, and the router's retry and
// hedge machinery must show it actually absorbed the faults.
func TestFleetChaosZeroClientErrors(t *testing.T) {
	knn, _ := testModels(t)

	plan, err := fault.ParseChaos("delay:prob=0.2,ms=25;err:prob=0.15,code=503", 7)
	if err != nil {
		t.Fatal(err)
	}
	_, srvA := newReplica(t, serve.Options{CacheSize: 1024}, nil, knn)
	_, srvB := newReplica(t, serve.Options{CacheSize: 1024}, plan.Middleware, knn)
	_, srvC := newReplica(t, serve.Options{CacheSize: 1024}, nil, knn)

	rt := newRouter(t, []string{srvA.URL, srvB.URL, srvC.URL}, func(o *Options) {
		o.HedgeAfter = 10 * time.Millisecond
	})
	front := httptest.NewServer(rt.Handler())
	defer front.Close()

	// Kill one replica while the load is running.
	killer := time.AfterFunc(200*time.Millisecond, srvC.Close)
	defer killer.Stop()

	rep, err := serve.Loadgen(context.Background(), serve.LoadgenOptions{
		URLs:     []string{front.URL},
		Duration: 600 * time.Millisecond,
		Workers:  8,
		Seed:     42,
		Retries:  3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests == 0 {
		t.Fatal("loadgen issued no requests")
	}
	if rep.Errors != 0 {
		t.Fatalf("%d of %d client requests failed through the fleet (want 0)",
			rep.Errors, rep.Requests)
	}
	st := rt.Status()
	if st.Counters.ClientErrors != 0 {
		t.Fatalf("router surfaced %d client-visible errors (want 0)", st.Counters.ClientErrors)
	}
	if st.Counters.Retries == 0 {
		t.Fatal("no retries recorded; the chaos replica's 503s were never absorbed")
	}
	if len(rep.Fleet) == 0 {
		t.Fatal("loadgen report carries no fleet status from the router")
	}
	var embedded FleetStatus
	if err := json.Unmarshal(rep.Fleet, &embedded); err != nil {
		t.Fatalf("embedded fleet status is not valid JSON: %v", err)
	}
	if embedded.Counters.Proxied == 0 {
		t.Fatal("embedded fleet status shows zero proxied requests")
	}
}

// TestRolloutPromoteAndRollback drives the canary state machine end to end:
// a healthy candidate promotes fleet-wide, then a rollout whose probes push
// the canary's drift monitors into breach rolls back automatically.
func TestRolloutPromoteAndRollback(t *testing.T) {
	knn, lin := testModels(t)
	dir := t.TempDir()
	knnPath := filepath.Join(dir, "knn.snap")
	linPath := filepath.Join(dir, "lin.snap")
	if err := knn.Sel.SaveSnapshot(knnPath, knn.Fp); err != nil {
		t.Fatal(err)
	}
	if err := lin.Sel.SaveSnapshot(linPath, lin.Fp); err != nil {
		t.Fatal(err)
	}

	servers := make([]*serve.Server, 3)
	urls := make([]string, 3)
	for i := range servers {
		s, srv := newReplica(t, serve.Options{SnapshotPaths: []string{knnPath}, CacheSize: 64}, nil)
		servers[i], urls[i] = s, srv.URL
	}
	rt := newRouter(t, urls, nil)

	inEnvelope := RolloutRequest{
		Paths: []string{linPath}, Probes: 32, MaxDivergence: 1.0,
		Nodes: []int{2, 4, 6}, PPNs: []int{1, 4}, Msizes: []int64{16, 1024, 16384},
	}
	st := rt.Rollout(context.Background(), inEnvelope)
	if st.State != RolloutPromoted {
		t.Fatalf("promote leg ended in %q (reason %q, steps %v), want %q",
			st.State, st.Reason, st.Steps, RolloutPromoted)
	}
	if len(st.Failed) != 0 {
		t.Fatalf("promote leg failed on replicas %v", st.Failed)
	}
	for i, s := range servers {
		got := s.SnapshotPaths()
		if len(got) != 1 || got[0] != linPath {
			t.Fatalf("replica %d serves %v after promotion, want [%s]", i, got, linPath)
		}
	}
	if got := rt.RolloutStatus(); got.State != RolloutPromoted {
		t.Fatalf("RolloutStatus reports %q after promotion", got.State)
	}

	// Roll the fleet toward knn again, but probe far outside the training
	// envelope: every canary answer is a fallback, the canary's fallback
	// monitor breaches, and the machine must roll the canary back.
	outOfEnvelope := RolloutRequest{
		Paths: []string{knnPath}, Probes: 64, MaxDivergence: 1.0,
		Nodes: []int{64, 96}, PPNs: []int{16}, Msizes: []int64{1 << 22},
	}
	st = rt.Rollout(context.Background(), outOfEnvelope)
	if st.State != RolloutRolledBack {
		t.Fatalf("breach leg ended in %q (reason %q, steps %v), want %q",
			st.State, st.Reason, st.Steps, RolloutRolledBack)
	}
	for i, s := range servers {
		got := s.SnapshotPaths()
		if len(got) != 1 || got[0] != linPath {
			t.Fatalf("replica %d serves %v after rollback, want [%s]", i, got, linPath)
		}
	}

	// A candidate that cannot load dies on the canary without touching it.
	st = rt.Rollout(context.Background(), RolloutRequest{Paths: []string{filepath.Join(dir, "missing.snap")}})
	if st.State != RolloutFailed {
		t.Fatalf("missing-snapshot rollout ended in %q, want %q", st.State, RolloutFailed)
	}
	if got := servers[0].SnapshotPaths(); len(got) != 1 || got[0] != linPath {
		t.Fatalf("failed rollout changed the canary's snapshots to %v", got)
	}
}

func TestRouterReadyz(t *testing.T) {
	knn, _ := testModels(t)
	_, srv := newReplica(t, serve.Options{CacheSize: 64}, nil, knn)
	rt := newRouter(t, []string{srv.URL}, nil)
	front := httptest.NewServer(rt.Handler())
	defer front.Close()

	resp, err := http.Get(front.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/readyz %d with a ready replica, want 200", resp.StatusCode)
	}

	// Kill the only replica; the next probe sweep must flip the router.
	srv.Close()
	deadline := time.Now().Add(2 * time.Second)
	for {
		resp, err := http.Get(front.URL + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		_ = resp.Body.Close()
		if resp.StatusCode == http.StatusServiceUnavailable {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("/readyz never flipped to 503 after the only replica died")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestRolloutCancelledContext is the regression test for context threading
// through the rollout's outbound HTTP calls: a cancelled caller context must
// abort the state machine at its first replica call and leave every replica
// on its previous snapshots, not run the probe loop against dead air.
func TestRolloutCancelledContext(t *testing.T) {
	knn, lin := testModels(t)
	dir := t.TempDir()
	knnPath := filepath.Join(dir, "knn.snap")
	linPath := filepath.Join(dir, "lin.snap")
	if err := knn.Sel.SaveSnapshot(knnPath, knn.Fp); err != nil {
		t.Fatal(err)
	}
	if err := lin.Sel.SaveSnapshot(linPath, lin.Fp); err != nil {
		t.Fatal(err)
	}
	servers := make([]*serve.Server, 2)
	urls := make([]string, 2)
	for i := range servers {
		s, srv := newReplica(t, serve.Options{SnapshotPaths: []string{knnPath}, CacheSize: 64}, nil)
		servers[i], urls[i] = s, srv.URL
	}
	rt := newRouter(t, urls, nil)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	st := rt.Rollout(ctx, RolloutRequest{Paths: []string{linPath}})
	if st.State != RolloutFailed {
		t.Fatalf("cancelled rollout ended in %q (reason %q), want %q", st.State, st.Reason, RolloutFailed)
	}
	if !strings.Contains(st.Reason, "context canceled") {
		t.Fatalf("failure reason %q does not surface the cancellation", st.Reason)
	}
	for i, s := range servers {
		if got := s.SnapshotPaths(); len(got) != 1 || got[0] != knnPath {
			t.Fatalf("replica %d snapshots changed to %v under a cancelled rollout", i, got)
		}
	}
}
