// Learner codecs: one encode/decode pair per registered regressor. The
// codec works on the exported State of each learner package and tags every
// encoded learner with its registry name, so a snapshot is self-describing
// and a decoded model goes back through the same validation wrapper ml.New
// applies.
package snapshot

import (
	"fmt"

	"mpicollpred/internal/ml"
	"mpicollpred/internal/ml/gam"
	"mpicollpred/internal/ml/knn"
	"mpicollpred/internal/ml/linreg"
	"mpicollpred/internal/ml/rf"
	"mpicollpred/internal/ml/tree"
	"mpicollpred/internal/ml/xgb"
)

// EncodeLearner appends a fitted regressor (as returned by ml.New and
// trained via Fit) to the writer.
func EncodeLearner(w *Writer, r ml.Regressor) error {
	switch m := ml.Unwrap(r).(type) {
	case *knn.Regressor:
		w.String("knn")
		s := m.State()
		w.Int(s.K)
		w.F64s(s.Mean)
		w.F64s(s.Scale)
		w.F64Rows(s.X)
		w.F64s(s.Y)
	case *gam.Regressor:
		w.String("gam")
		s := m.State()
		w.Int(s.Opts.NumBasis)
		w.F64s(s.Opts.Lambdas)
		w.Int(s.Opts.MaxIter)
		w.F64s(s.Lo)
		w.F64s(s.Hi)
		w.Bools(s.Active)
		w.F64s(s.Beta)
		w.F64(s.Lambda)
		w.F64(s.EDF)
	case *xgb.Regressor:
		w.String("xgboost")
		s := m.State()
		w.Int(s.Opts.Rounds)
		w.F64(s.Opts.Eta)
		w.Int(s.Opts.MaxDepth)
		w.F64(s.Opts.Lambda)
		w.F64(s.Opts.MinChild)
		w.String(string(s.Opts.Objective))
		w.F64(s.Opts.TweedieRho)
		w.F64(s.Base)
		encodeTrees(w, s.Trees)
	case *rf.Regressor:
		w.String("rf")
		s := m.State()
		w.Int(s.Opts.NumTrees)
		w.Int(s.Opts.MaxDepth)
		w.Int(s.Opts.MinLeaf)
		w.Int(s.Opts.MTry)
		w.U64(s.Opts.Seed)
		encodeTrees(w, s.Trees)
	case *linreg.Regressor:
		w.String("linear")
		w.F64s(m.State().Beta)
	default:
		return fmt.Errorf("snapshot: no codec for learner type %T", m)
	}
	return nil
}

// DecodeLearner reads one regressor written by EncodeLearner and returns it
// wrapped in the registry's validation layer.
func DecodeLearner(r *Reader) (ml.Regressor, error) {
	kind := r.String()
	if err := r.Err(); err != nil {
		return nil, err
	}
	var (
		m   ml.Regressor
		err error
	)
	switch kind {
	case "knn":
		var s knn.State
		s.K = r.Int()
		s.Mean = r.F64s()
		s.Scale = r.F64s()
		s.X = r.F64Rows()
		s.Y = r.F64s()
		if err = r.Err(); err == nil {
			m, err = knn.FromState(s)
		}
	case "gam":
		var s gam.State
		s.Opts.NumBasis = r.Int()
		s.Opts.Lambdas = r.F64s()
		s.Opts.MaxIter = r.Int()
		s.Lo = r.F64s()
		s.Hi = r.F64s()
		s.Active = r.Bools()
		s.Beta = r.F64s()
		s.Lambda = r.F64()
		s.EDF = r.F64()
		if err = r.Err(); err == nil {
			m, err = gam.FromState(s)
		}
	case "xgboost":
		var s xgb.State
		s.Opts.Rounds = r.Int()
		s.Opts.Eta = r.F64()
		s.Opts.MaxDepth = r.Int()
		s.Opts.Lambda = r.F64()
		s.Opts.MinChild = r.F64()
		s.Opts.Objective = xgb.Objective(r.String())
		s.Opts.TweedieRho = r.F64()
		s.Base = r.F64()
		s.Trees = decodeTrees(r)
		if err = r.Err(); err == nil {
			m, err = xgb.FromState(s)
		}
	case "rf":
		var s rf.State
		s.Opts.NumTrees = r.Int()
		s.Opts.MaxDepth = r.Int()
		s.Opts.MinLeaf = r.Int()
		s.Opts.MTry = r.Int()
		s.Opts.Seed = r.U64()
		s.Trees = decodeTrees(r)
		if err = r.Err(); err == nil {
			m, err = rf.FromState(s)
		}
	case "linear":
		s := linreg.State{Beta: r.F64s()}
		if err = r.Err(); err == nil {
			m, err = linreg.FromState(s)
		}
	default:
		return nil, fmt.Errorf("snapshot: unknown learner kind %q", kind)
	}
	if err != nil {
		return nil, err
	}
	return ml.Validated(m), nil
}

func encodeTrees(w *Writer, trees [][]tree.Node) {
	w.U32(uint32(len(trees)))
	for _, nodes := range trees {
		w.U32(uint32(len(nodes)))
		for _, n := range nodes {
			w.U32(uint32(n.Feature))
			w.F64(n.Thresh)
			w.U32(uint32(n.Left))
			w.U32(uint32(n.Right))
			w.F64(n.Value)
		}
	}
}

func decodeTrees(r *Reader) [][]tree.Node {
	nt := int(r.U32())
	if !r.checkLen(nt*4, "tree list") {
		return nil
	}
	out := make([][]tree.Node, nt)
	for i := range out {
		nn := int(r.U32())
		if !r.checkLen(nn*28, "tree nodes") {
			return nil
		}
		nodes := make([]tree.Node, nn)
		for j := range nodes {
			nodes[j] = tree.Node{
				Feature: int32(r.U32()),
				Thresh:  r.F64(),
				Left:    int32(r.U32()),
				Right:   int32(r.U32()),
				Value:   r.F64(),
			}
		}
		out[i] = nodes
	}
	return out
}
