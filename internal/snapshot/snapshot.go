// Package snapshot is the persistence substrate of the tuning framework: a
// deterministic, versioned binary codec for trained model state. Floats are
// stored as their IEEE-754 bit patterns, so a round trip through a snapshot
// is bit-identical — a loaded model predicts exactly what the in-memory
// model predicted. The file framing carries a magic string, a format
// version, the payload length, and a CRC32, so truncated, corrupted, or
// incompatible snapshots are rejected with a descriptive error instead of
// being half-loaded into a serving process.
package snapshot

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
)

// Magic is the first eight bytes of every snapshot file.
const Magic = "MPCOLSNP"

// Version is the current payload-format version. Bump it whenever the
// payload layout changes; readers reject other versions.
const Version = 1

// Sentinel errors for the reject paths, so callers and tests can
// distinguish why a snapshot was refused.
var (
	ErrTruncated = errors.New("snapshot: truncated")
	ErrCorrupt   = errors.New("snapshot: checksum mismatch")
	ErrMagic     = errors.New("snapshot: not a snapshot file")
	ErrVersion   = errors.New("snapshot: unsupported format version")
)

// headerLen is magic + version(u32) + payload length(u64) + crc32(u32).
const headerLen = len(Magic) + 4 + 8 + 4

// Frame wraps an encoded payload in the snapshot file envelope.
func Frame(payload []byte) []byte {
	out := make([]byte, 0, headerLen+len(payload))
	out = append(out, Magic...)
	out = binary.LittleEndian.AppendUint32(out, Version)
	out = binary.LittleEndian.AppendUint64(out, uint64(len(payload)))
	out = binary.LittleEndian.AppendUint32(out, crc32.ChecksumIEEE(payload))
	return append(out, payload...)
}

// Unframe validates the envelope and returns the payload.
func Unframe(data []byte) ([]byte, error) {
	if len(data) < headerLen {
		return nil, fmt.Errorf("%w: %d bytes, header needs %d", ErrTruncated, len(data), headerLen)
	}
	if string(data[:len(Magic)]) != Magic {
		return nil, fmt.Errorf("%w: magic %q", ErrMagic, data[:len(Magic)])
	}
	off := len(Magic)
	version := binary.LittleEndian.Uint32(data[off:])
	if version != Version {
		return nil, fmt.Errorf("%w: file has v%d, this build reads v%d", ErrVersion, version, Version)
	}
	off += 4
	plen := binary.LittleEndian.Uint64(data[off:])
	off += 8
	sum := binary.LittleEndian.Uint32(data[off:])
	off += 4
	payload := data[off:]
	if uint64(len(payload)) != plen {
		return nil, fmt.Errorf("%w: payload is %d bytes, header promises %d", ErrTruncated, len(payload), plen)
	}
	if crc32.ChecksumIEEE(payload) != sum {
		return nil, ErrCorrupt
	}
	return payload, nil
}

// Writer appends primitive values to a byte buffer. All integers are
// little-endian fixed width; floats are raw IEEE-754 bits, which makes the
// encoding deterministic and the decode bit-exact.
type Writer struct {
	buf []byte
}

// Bytes returns the encoded buffer.
func (w *Writer) Bytes() []byte { return w.buf }

// U32 appends a uint32.
func (w *Writer) U32(v uint32) { w.buf = binary.LittleEndian.AppendUint32(w.buf, v) }

// U64 appends a uint64.
func (w *Writer) U64(v uint64) { w.buf = binary.LittleEndian.AppendUint64(w.buf, v) }

// I64 appends an int64.
func (w *Writer) I64(v int64) { w.U64(uint64(v)) }

// Int appends an int as an int64.
func (w *Writer) Int(v int) { w.I64(int64(v)) }

// F64 appends a float64 as its bit pattern.
func (w *Writer) F64(v float64) { w.U64(math.Float64bits(v)) }

// Bool appends a bool as one byte.
func (w *Writer) Bool(v bool) {
	b := byte(0)
	if v {
		b = 1
	}
	w.buf = append(w.buf, b)
}

// String appends a length-prefixed UTF-8 string.
func (w *Writer) String(s string) {
	w.U32(uint32(len(s)))
	w.buf = append(w.buf, s...)
}

// F64s appends a length-prefixed []float64.
func (w *Writer) F64s(v []float64) {
	w.U32(uint32(len(v)))
	for _, x := range v {
		w.F64(x)
	}
}

// Ints appends a length-prefixed []int.
func (w *Writer) Ints(v []int) {
	w.U32(uint32(len(v)))
	for _, x := range v {
		w.Int(x)
	}
}

// Bools appends a length-prefixed []bool.
func (w *Writer) Bools(v []bool) {
	w.U32(uint32(len(v)))
	for _, x := range v {
		w.Bool(x)
	}
}

// F64Rows appends a length-prefixed [][]float64.
func (w *Writer) F64Rows(v [][]float64) {
	w.U32(uint32(len(v)))
	for _, row := range v {
		w.F64s(row)
	}
}

// Reader consumes a payload written by Writer. Errors are sticky: the first
// failure is remembered, subsequent reads return zero values, and Err
// reports what went wrong — callers check once after decoding a section.
type Reader struct {
	buf []byte
	off int
	err error
}

// NewReader wraps a payload.
func NewReader(payload []byte) *Reader { return &Reader{buf: payload} }

// Err returns the first decoding error, if any.
func (r *Reader) Err() error { return r.err }

func (r *Reader) fail(what string) {
	if r.err == nil {
		r.err = fmt.Errorf("%w: reading %s at offset %d of %d", ErrTruncated, what, r.off, len(r.buf))
	}
}

func (r *Reader) take(n int, what string) []byte {
	if r.err != nil {
		return nil
	}
	if r.off+n > len(r.buf) {
		r.fail(what)
		return nil
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b
}

// U32 reads a uint32.
func (r *Reader) U32() uint32 {
	b := r.take(4, "uint32")
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// U64 reads a uint64.
func (r *Reader) U64() uint64 {
	b := r.take(8, "uint64")
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// I64 reads an int64.
func (r *Reader) I64() int64 { return int64(r.U64()) }

// Int reads an int stored as int64.
func (r *Reader) Int() int { return int(r.I64()) }

// F64 reads a float64 bit pattern.
func (r *Reader) F64() float64 { return math.Float64frombits(r.U64()) }

// Bool reads a bool byte.
func (r *Reader) Bool() bool {
	b := r.take(1, "bool")
	return b != nil && b[0] != 0
}

// String reads a length-prefixed string.
func (r *Reader) String() string {
	n := int(r.U32())
	if !r.checkLen(n, "string") {
		return ""
	}
	b := r.take(n, "string bytes")
	return string(b)
}

// checkLen guards against absurd length prefixes from corrupted input so a
// bad snapshot cannot trigger a giant allocation.
func (r *Reader) checkLen(n int, what string) bool {
	if r.err != nil {
		return false
	}
	if n < 0 || r.off+n > len(r.buf) {
		r.fail(fmt.Sprintf("%s of claimed length %d", what, n))
		return false
	}
	return true
}

// F64s reads a length-prefixed []float64.
func (r *Reader) F64s() []float64 {
	n := int(r.U32())
	if !r.checkLen(n*8, "float64 slice") {
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = r.F64()
	}
	return out
}

// Ints reads a length-prefixed []int.
func (r *Reader) Ints() []int {
	n := int(r.U32())
	if !r.checkLen(n*8, "int slice") {
		return nil
	}
	out := make([]int, n)
	for i := range out {
		out[i] = r.Int()
	}
	return out
}

// Bools reads a length-prefixed []bool.
func (r *Reader) Bools() []bool {
	n := int(r.U32())
	if !r.checkLen(n, "bool slice") {
		return nil
	}
	out := make([]bool, n)
	for i := range out {
		out[i] = r.Bool()
	}
	return out
}

// F64Rows reads a length-prefixed [][]float64.
func (r *Reader) F64Rows() [][]float64 {
	n := int(r.U32())
	if !r.checkLen(n*4, "row slice") { // every row costs at least a length prefix
		return nil
	}
	out := make([][]float64, n)
	for i := range out {
		out[i] = r.F64s()
	}
	return out
}
