package snapshot

import (
	"errors"
	"math"
	"testing"

	"mpicollpred/internal/floats"
	"mpicollpred/internal/ml"
)

func TestPrimitiveRoundTrip(t *testing.T) {
	var w Writer
	w.U32(7)
	w.U64(1 << 40)
	w.Int(-42)
	w.F64(math.Pi)
	w.F64(math.Inf(1))
	w.Bool(true)
	w.String("héllo")
	w.F64s([]float64{1.5, -2.25, 0})
	w.Ints([]int{3, -1})
	w.Bools([]bool{true, false, true})
	w.F64Rows([][]float64{{1, 2}, {}, {3}})

	r := NewReader(w.Bytes())
	if v := r.U32(); v != 7 {
		t.Errorf("u32 = %d", v)
	}
	if v := r.U64(); v != 1<<40 {
		t.Errorf("u64 = %d", v)
	}
	if v := r.Int(); v != -42 {
		t.Errorf("int = %d", v)
	}
	if v := r.F64(); !floats.Exact(v, math.Pi) {
		t.Errorf("f64 = %v", v)
	}
	if v := r.F64(); !math.IsInf(v, 1) {
		t.Errorf("inf = %v", v)
	}
	if !r.Bool() {
		t.Error("bool = false")
	}
	if s := r.String(); s != "héllo" {
		t.Errorf("string = %q", s)
	}
	fs := r.F64s()
	if len(fs) != 3 || !floats.Exact(fs[1], -2.25) {
		t.Errorf("f64s = %v", fs)
	}
	is := r.Ints()
	if len(is) != 2 || is[1] != -1 {
		t.Errorf("ints = %v", is)
	}
	bs := r.Bools()
	if len(bs) != 3 || bs[1] {
		t.Errorf("bools = %v", bs)
	}
	rows := r.F64Rows()
	if len(rows) != 3 || len(rows[0]) != 2 || len(rows[1]) != 0 || !floats.Exact(rows[2][0], 3) {
		t.Errorf("rows = %v", rows)
	}
	if err := r.Err(); err != nil {
		t.Fatalf("reader error: %v", err)
	}
	if r.off != len(w.Bytes()) {
		t.Errorf("reader consumed %d of %d bytes", r.off, len(w.Bytes()))
	}
}

func TestReaderTruncation(t *testing.T) {
	var w Writer
	w.F64s([]float64{1, 2, 3})
	full := w.Bytes()
	for cut := 0; cut < len(full); cut++ {
		r := NewReader(full[:cut])
		r.F64s()
		if r.Err() == nil {
			t.Fatalf("no error reading %d of %d bytes", cut, len(full))
		}
	}
}

func TestReaderRejectsAbsurdLength(t *testing.T) {
	var w Writer
	w.U32(1 << 30) // claims a gigabyte of rows that are not there
	r := NewReader(w.Bytes())
	if out := r.F64Rows(); out != nil || r.Err() == nil {
		t.Fatalf("absurd length accepted: %v, err %v", out, r.Err())
	}
}

func TestFrameUnframe(t *testing.T) {
	payload := []byte("deterministic payload")
	data := Frame(payload)
	got, err := Unframe(data)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(payload) {
		t.Fatalf("payload %q", got)
	}

	// Truncated file.
	if _, err := Unframe(data[:len(data)-1]); !errors.Is(err, ErrTruncated) {
		t.Errorf("truncated: %v", err)
	}
	if _, err := Unframe(data[:4]); !errors.Is(err, ErrTruncated) {
		t.Errorf("tiny file: %v", err)
	}
	// One flipped payload byte.
	bad := append([]byte(nil), data...)
	bad[len(bad)-1] ^= 0x40
	if _, err := Unframe(bad); !errors.Is(err, ErrCorrupt) {
		t.Errorf("corrupt: %v", err)
	}
	// Foreign file.
	alien := append([]byte("NOTASNAP"), data[8:]...)
	if _, err := Unframe(alien); !errors.Is(err, ErrMagic) {
		t.Errorf("magic: %v", err)
	}
	// Future version.
	future := append([]byte(nil), data...)
	future[8] = 99
	if _, err := Unframe(future); !errors.Is(err, ErrVersion) {
		t.Errorf("version: %v", err)
	}
}

// trainingSet is a small non-trivial regression problem every learner can
// fit: positive targets over a 3-feature grid.
func trainingSet() (x [][]float64, y []float64) {
	for i := 0; i < 6; i++ {
		for j := 0; j < 5; j++ {
			f := []float64{float64(i), float64(j * j), float64(i + j)}
			x = append(x, f)
			y = append(y, 1e-5*(1+float64(i)*2+float64(j)*3)+1e-7*float64(i*j))
		}
	}
	return x, y
}

func TestLearnerCodecRoundTripsAll(t *testing.T) {
	x, y := trainingSet()
	queries := [][]float64{
		{0, 0, 0}, {2.5, 7, 4.1}, {5, 16, 9}, {10, 40, 22}, // includes extrapolation
	}
	for _, name := range ml.Names() {
		m, err := ml.New(name)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Fit(x, y); err != nil {
			t.Fatalf("%s: fit: %v", name, err)
		}
		var w Writer
		if err := EncodeLearner(&w, m); err != nil {
			t.Fatalf("%s: encode: %v", name, err)
		}
		got, err := DecodeLearner(NewReader(w.Bytes()))
		if err != nil {
			t.Fatalf("%s: decode: %v", name, err)
		}
		for _, q := range queries {
			want, have := m.Predict(q), got.Predict(q)
			if !floats.Exact(want, have) {
				t.Errorf("%s: predict(%v) = %v after round trip, want %v", name, q, have, want)
			}
		}
	}
}

func TestDecodeLearnerRejectsUnknownKind(t *testing.T) {
	var w Writer
	w.String("perceptron")
	if _, err := DecodeLearner(NewReader(w.Bytes())); err == nil {
		t.Fatal("unknown learner kind accepted")
	}
}

func TestDecodeLearnerRejectsBrokenTree(t *testing.T) {
	// An xgboost payload whose single tree has a child pointing at itself
	// must be rejected — otherwise Predict would loop forever.
	var w Writer
	w.String("xgboost")
	w.Int(1)    // rounds
	w.F64(0.3)  // eta
	w.Int(6)    // max depth
	w.F64(1)    // lambda
	w.F64(1e-6) // min child
	w.String("tweedie")
	w.F64(1.5) // rho
	w.F64(-10) // base
	w.U32(1)   // one tree
	w.U32(1)   // one node
	w.U32(0)   // feature 0: internal node...
	w.F64(0.5)
	w.U32(0) // ...whose left child is itself
	w.U32(0)
	w.F64(0)
	if _, err := DecodeLearner(NewReader(w.Bytes())); err == nil {
		t.Fatal("self-referential tree accepted")
	}
}
