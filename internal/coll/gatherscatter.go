package coll

import (
	"mpicollpred/internal/netmodel"
	"mpicollpred/internal/sim"
)

// Gather/Scatter verification conventions: m is the per-rank block size.
// Scatter: block id = destination rank, root initially holds every block,
// rank r must end holding block r. Gather: block id = source rank, rank r
// initially holds block r, the root must end holding every block. These
// rooted collectives complete the library portfolios.

// ScatterLinear has the root send each rank its block directly.
func ScatterLinear(b *sim.Builder, topo netmodel.Topology, m int64, _ Params) {
	p := topo.P()
	if p <= 1 {
		return
	}
	for r := 1; r < p; r++ {
		b.Send(Root, r, m, pay1(b, int32(r), 1)...)
		b.Recv(r, Root, m)
	}
}

// ScatterBinomial scatters down a binomial tree: each parent forwards a
// child the blocks of the child's whole subtree.
func ScatterBinomial(b *sim.Builder, topo netmodel.Topology, m int64, _ Params) {
	p := topo.P()
	if p <= 1 {
		return
	}
	chunks := make([]int64, p)
	for i := range chunks {
		chunks[i] = m
	}
	scatterBinomial(b, p, chunks)
}

// GatherLinear has every rank send its block straight to the root.
func GatherLinear(b *sim.Builder, topo netmodel.Topology, m int64, _ Params) {
	p := topo.P()
	if p <= 1 {
		return
	}
	for r := 1; r < p; r++ {
		b.Send(r, Root, m, pay1(b, int32(r), 1)...)
		b.Recv(Root, r, m)
	}
}

// GatherBinomial gathers up a binomial tree: each rank collects its
// subtree's blocks from its children (deepest first) and forwards the
// aggregate to its parent.
func GatherBinomial(b *sim.Builder, topo netmodel.Topology, m int64, _ Params) {
	p := topo.P()
	if p <= 1 {
		return
	}
	t := knomialTree(p, 2)
	payRange := func(lo, span int) []sim.PayUnit {
		if !b.Verify() {
			return nil
		}
		pay := make([]sim.PayUnit, span)
		for i := 0; i < span; i++ {
			pay[i] = sim.PayUnit{Block: int32(lo + i), Mask: 1}
		}
		return pay
	}
	for r := p - 1; r >= 0; r-- {
		// Children hold contiguous subtree ranges [c, c+span).
		for i := len(t.children[r]) - 1; i >= 0; i-- {
			c := t.children[r][i]
			b.Recv(r, c, int64(t.span[c])*m)
		}
		if t.parent[r] >= 0 {
			b.Send(r, t.parent[r], int64(t.span[r])*m, payRange(r, t.span[r])...)
		}
	}
}
