package coll

import (
	"mpicollpred/internal/netmodel"
	"mpicollpred/internal/sim"
)

// Allreduce verification convention: the vector is split into logical
// blocks (block 0 = whole vector for unsegmented exchange algorithms,
// block i = reduce-scatter chunk i for chunked algorithms). Rank r initially
// holds mask 1<<r for every block it owns; at the end every rank must hold
// the full mask for every block. A rank may only send contribution sets it
// has already accumulated, so a schedule that drops or invents a
// contribution fails verification.

func maskOf(r int) uint64 { return 1 << uint(r&63) }

// AllreduceLinear is the basic linear allreduce: every rank sends its full
// vector to the root, which reduces them one by one and then broadcasts the
// result linearly. No parameters.
func AllreduceLinear(b *sim.Builder, topo netmodel.Topology, m int64, _ Params) {
	p := topo.P()
	if p <= 1 {
		return
	}
	full := sim.FullMask(p)
	for r := 1; r < p; r++ {
		b.Send(r, Root, m, pay1(b, 0, maskOf(r))...)
		b.Recv(Root, r, m)
		b.Compute(Root, m)
	}
	for r := 1; r < p; r++ {
		b.Send(Root, r, m, pay1(b, 0, full)...)
		b.Recv(r, Root, m)
	}
}

// AllreduceNonoverlapping is reduce + broadcast over binomial trees: leaves
// send up the tree with the parent reducing as contributions arrive, then
// the result is broadcast back down the same tree. No parameters.
func AllreduceNonoverlapping(b *sim.Builder, topo netmodel.Topology, m int64, _ Params) {
	p := topo.P()
	if p <= 1 {
		return
	}
	t := knomialTree(p, 2)
	reduceTree(b, t, m)
	full := sim.FullMask(p)
	for r := 0; r < p; r++ {
		if t.parent[r] >= 0 {
			b.Recv(r, t.parent[r], m)
		}
		for _, c := range t.children[r] {
			b.Send(r, c, m, pay1(b, 0, full)...)
		}
	}
}

// reduceTree emits a tree reduction to the root: each rank receives its
// children's partial results (deepest subtree first), reducing after each,
// then forwards its accumulated partial to its parent. The contribution
// masks accumulate subtree by subtree.
func reduceTree(b *sim.Builder, t tree, m int64) {
	p := len(t.parent)
	// Accumulated contribution mask per rank (verification only, but cheap
	// enough to always compute for p <= 64; irrelevant above).
	acc := make([]uint64, p)
	for r := range acc {
		acc[r] = maskOf(r)
	}
	// Post-order: children must have finished their subtree before they
	// send. Since children have larger ranks in knomial trees, iterating
	// ranks in descending order sequences the sends correctly.
	for r := p - 1; r >= 0; r-- {
		// Receive from children in reverse child order (smallest subtree
		// first: they finish soonest).
		for i := len(t.children[r]) - 1; i >= 0; i-- {
			c := t.children[r][i]
			b.Recv(r, c, m)
			b.Compute(r, m)
			acc[r] |= acc[c]
		}
		if t.parent[r] >= 0 {
			b.Send(r, t.parent[r], m, pay1(b, 0, acc[r])...)
		}
	}
}

// AllreduceRecursiveDoubling is the classic recursive-doubling allreduce
// with the standard non-power-of-two pre/post phase (the first 2*(p-p2)
// ranks pair up; even partners retire during the doubling and are refreshed
// at the end). No parameters.
func AllreduceRecursiveDoubling(b *sim.Builder, topo netmodel.Topology, m int64, _ Params) {
	p := topo.P()
	if p <= 1 {
		return
	}
	p2 := 1
	for p2*2 <= p {
		p2 *= 2
	}
	rem := p - p2
	full := sim.FullMask(p)

	acc := make([]uint64, p)
	for r := range acc {
		acc[r] = maskOf(r)
	}
	// vrank[r]: position in the doubling group, or -1 for retired ranks.
	vrank := make([]int, p)
	group := make([]int, p2) // group position -> rank
	for r := 0; r < p; r++ {
		switch {
		case r < 2*rem && r%2 == 0:
			vrank[r] = -1
		case r < 2*rem:
			vrank[r] = r / 2
		default:
			vrank[r] = r - rem
		}
		if vrank[r] >= 0 {
			group[vrank[r]] = r
		}
	}

	// Pre-phase: even ranks of the first 2*rem hand their vector to the
	// odd neighbour.
	for e := 0; e < 2*rem; e += 2 {
		b.Send(e, e+1, m, pay1(b, 0, acc[e])...)
		b.Recv(e+1, e, m)
		b.Compute(e+1, m)
		acc[e+1] |= acc[e]
	}

	// Doubling over the p2 group members.
	for dist := 1; dist < p2; dist *= 2 {
		snap := append([]uint64(nil), acc...)
		for v := 0; v < p2; v++ {
			r := group[v]
			partner := group[v^dist]
			b.SendRecv(r, partner, m, partner, m, pay1(b, 0, snap[r])...)
			b.Compute(r, m)
			acc[r] |= snap[partner]
		}
	}

	// Post-phase: odd partners return the final result.
	for e := 0; e < 2*rem; e += 2 {
		b.Send(e+1, e, m, pay1(b, 0, full)...)
		b.Recv(e, e+1, m)
	}
}

// AllreduceRing is the bandwidth-optimal ring allreduce: a p-1 step
// reduce-scatter ring followed by a p-1 step allgather ring, both moving
// chunks of ~m/p bytes. No parameters.
func AllreduceRing(b *sim.Builder, topo netmodel.Topology, m int64, _ Params) {
	allreduceRingSeg(b, topo, m, 0)
}

// AllreduceSegmentedRing is the ring allreduce with chunk transfers split
// into segments of Seg bytes (keeping transfers in the eager regime and
// pipelining the computation). Parameter: Seg.
func AllreduceSegmentedRing(b *sim.Builder, topo netmodel.Topology, m int64, prm Params) {
	allreduceRingSeg(b, topo, m, prm.Seg)
}

func allreduceRingSeg(b *sim.Builder, topo netmodel.Topology, m int64, seg int64) {
	p := topo.P()
	if p <= 1 {
		return
	}
	chunks := chunkSizes(m, p)
	// acc[c] tracking is per (rank, chunk): mask of contributions.
	var acc [][]uint64
	if b.Verify() {
		acc = make([][]uint64, p)
		for r := range acc {
			acc[r] = make([]uint64, p)
			for c := range acc[r] {
				acc[r][c] = maskOf(r)
			}
		}
	}
	// Pre-size the op lists: 2(p-1) steps, each with at most
	// ceil(maxChunk/seg) send/recv/compute triples per rank.
	maxChunk := chunks[0]
	segsPerChunk := 1
	if seg > 0 && seg < maxChunk {
		segsPerChunk = int((maxChunk + seg - 1) / seg)
	}
	b.Reserve(2 * (p - 1) * segsPerChunk * 3)

	// segAt returns segment i of n bytes split into count pieces of at most
	// s bytes; segCount the piece count (allocation-free segSizes).
	segAt := func(n, s int64, i, count int) int64 {
		if count == 1 {
			return n
		}
		if i < count-1 {
			return s
		}
		return n - s*int64(count-1)
	}
	segCount := func(n, s int64) int {
		if n <= 0 || s <= 0 || s >= n {
			return 1
		}
		return int((n + s - 1) / s)
	}
	xfer := func(r, chunk, recvChunk int, gather bool) {
		dst := (r + 1) % p
		src := (r - 1 + p) % p
		var mask uint64
		if b.Verify() {
			mask = acc[r][chunk]
		}
		// The received chunk can differ in size from the sent one (sizes
		// differ by up to one byte when p does not divide m), so segment
		// the two directions independently.
		ns := segCount(chunks[chunk], seg)
		nr := segCount(chunks[recvChunk], seg)
		steps := ns
		if nr > steps {
			steps = nr
		}
		for i := 0; i < steps; i++ {
			if i < ns {
				b.SendNB(r, dst, segAt(chunks[chunk], seg, i, ns), pay1(b, int32(chunk), mask)...)
			}
			if i < nr {
				sz := segAt(chunks[recvChunk], seg, i, nr)
				b.Recv(r, src, sz)
				if !gather {
					b.Compute(r, sz)
				}
			}
		}
	}
	// Reduce-scatter: at step s rank r sends chunk (r-s) and accumulates
	// into chunk (r-1-s).
	for s := 0; s < p-1; s++ {
		var snap [][]uint64
		if b.Verify() {
			snap = make([][]uint64, p)
			for r := range snap {
				snap[r] = append([]uint64(nil), acc[r]...)
			}
		}
		for r := 0; r < p; r++ {
			xfer(r, (((r-s)%p)+p)%p, (((r-1-s)%p)+p)%p, false)
		}
		if b.Verify() {
			for r := 0; r < p; r++ {
				c := (((r - 1 - s) % p) + p) % p
				src := (r - 1 + p) % p
				acc[r][c] |= snap[src][c]
			}
		}
	}
	// Allgather: rank r now owns the fully reduced chunk (r+1) mod p.
	for s := 0; s < p-1; s++ {
		var snap [][]uint64
		if b.Verify() {
			snap = make([][]uint64, p)
			for r := range snap {
				snap[r] = append([]uint64(nil), acc[r]...)
			}
		}
		for r := 0; r < p; r++ {
			xfer(r, (((r+1-s)%p)+p)%p, (((r-s)%p)+p)%p, true)
		}
		if b.Verify() {
			for r := 0; r < p; r++ {
				c := (((r - s) % p) + p) % p
				src := (r - 1 + p) % p
				acc[r][c] |= snap[src][c]
			}
		}
	}
}

// AllreduceRabenseifner is Rabenseifner's algorithm: recursive-halving
// reduce-scatter followed by recursive-doubling allgather, with the
// standard non-power-of-two pre/post phase. No parameters.
func AllreduceRabenseifner(b *sim.Builder, topo netmodel.Topology, m int64, _ Params) {
	p := topo.P()
	if p <= 1 {
		return
	}
	p2 := 1
	for p2*2 <= p {
		p2 *= 2
	}
	rem := p - p2
	full := sim.FullMask(p)

	// Pre-phase as in recursive doubling: fold the extras in.
	acc := make([]uint64, p) // per-rank mask covering its *entire* vector
	for r := range acc {
		acc[r] = maskOf(r)
	}
	vrank := make([]int, p)
	group := make([]int, p2)
	for r := 0; r < p; r++ {
		switch {
		case r < 2*rem && r%2 == 0:
			vrank[r] = -1
		case r < 2*rem:
			vrank[r] = r / 2
		default:
			vrank[r] = r - rem
		}
		if vrank[r] >= 0 {
			group[vrank[r]] = r
		}
	}
	for e := 0; e < 2*rem; e += 2 {
		// The pre-phase moves the full vector, i.e. every one of the p2
		// chunk blocks the later phases operate on.
		b.Send(e, e+1, m, payAll(b, p2, acc[e])...)
		b.Recv(e+1, e, m)
		b.Compute(e+1, m)
		acc[e+1] |= acc[e]
	}

	// Recursive halving reduce-scatter over p2 chunks. Chunk masks are
	// tracked per group member. lo/hi delimit each member's current range.
	chunks := chunkSizes(m, p2)
	type span struct{ lo, hi int }
	cur := make([]span, p2)
	for v := range cur {
		cur[v] = span{0, p2}
	}
	cmask := make([][]uint64, p2) // per group member, per chunk
	if b.Verify() {
		for v := range cmask {
			cmask[v] = make([]uint64, p2)
			for c := range cmask[v] {
				cmask[v][c] = acc[group[v]]
			}
		}
	}
	payRange := func(v, lo, hi int) []sim.PayUnit {
		if !b.Verify() {
			return nil
		}
		pay := make([]sim.PayUnit, 0, hi-lo)
		for c := lo; c < hi; c++ {
			pay = append(pay, sim.PayUnit{Block: int32(c), Mask: cmask[v][c]})
		}
		return pay
	}
	for dist := p2 / 2; dist >= 1; dist /= 2 {
		snap := cmask
		if b.Verify() {
			snap = make([][]uint64, p2)
			for v := range snap {
				snap[v] = append([]uint64(nil), cmask[v]...)
			}
		}
		newCur := make([]span, p2)
		for v := 0; v < p2; v++ {
			w := v ^ dist
			mid := (cur[v].lo + cur[v].hi) / 2
			var keep, give span
			if v < w {
				keep, give = span{cur[v].lo, mid}, span{mid, cur[v].hi}
			} else {
				keep, give = span{mid, cur[v].hi}, span{cur[v].lo, mid}
			}
			sendBytes := sumRange(chunks, give.lo, give.hi)
			recvBytes := sumRange(chunks, keep.lo, keep.hi)
			b.SendRecv(group[v], group[w], sendBytes, group[w], recvBytes, payRange(v, give.lo, give.hi)...)
			b.Compute(group[v], recvBytes)
			newCur[v] = keep
		}
		if b.Verify() {
			for v := 0; v < p2; v++ {
				w := v ^ dist
				for c := newCur[v].lo; c < newCur[v].hi; c++ {
					cmask[v][c] |= snap[w][c]
				}
			}
		}
		for v := range cur {
			cur[v] = newCur[v]
		}
	}

	// Recursive doubling allgather: ranges merge back.
	for dist := 1; dist < p2; dist *= 2 {
		snapCur := append([]span(nil), cur...)
		snap := cmask
		if b.Verify() {
			snap = make([][]uint64, p2)
			for v := range snap {
				snap[v] = append([]uint64(nil), cmask[v]...)
			}
		}
		for v := 0; v < p2; v++ {
			w := v ^ dist
			sendBytes := sumRange(chunks, snapCur[v].lo, snapCur[v].hi)
			recvBytes := sumRange(chunks, snapCur[w].lo, snapCur[w].hi)
			b.SendRecv(group[v], group[w], sendBytes, group[w], recvBytes, payRange(v, snapCur[v].lo, snapCur[v].hi)...)
			lo, hi := snapCur[v].lo, snapCur[v].hi
			if snapCur[w].lo < lo {
				lo = snapCur[w].lo
			}
			if snapCur[w].hi > hi {
				hi = snapCur[w].hi
			}
			cur[v] = span{lo, hi}
			if b.Verify() {
				for c := snapCur[w].lo; c < snapCur[w].hi; c++ {
					cmask[v][c] |= snap[w][c]
				}
			}
		}
	}

	// Post-phase: odd partners return the final vector to the extras.
	for e := 0; e < 2*rem; e += 2 {
		b.Send(e+1, e, m, payAll(b, p2, full)...)
		b.Recv(e, e+1, m)
	}
}

// AllreduceAllgatherReduce gathers every rank's vector to every rank via a
// ring allgather (p-1 steps of m bytes) and reduces locally: latency-poor
// and bandwidth-hungry, but embarrassingly simple — the kind of algorithm
// that wins only for tiny vectors on very few processes. No parameters.
func AllreduceAllgatherReduce(b *sim.Builder, topo netmodel.Topology, m int64, _ Params) {
	p := topo.P()
	if p <= 1 {
		return
	}
	b.Reserve(2*(p-1) + 3)
	// Step s: rank r forwards the vector that originated at (r-s) mod p.
	for s := 0; s < p-1; s++ {
		for r := 0; r < p; r++ {
			origin := (((r - s) % p) + p) % p
			b.SendRecv(r, (r+1)%p, m, (r-1+p)%p, m, pay1(b, 0, maskOf(origin))...)
		}
	}
	for r := 0; r < p; r++ {
		b.Compute(r, int64(p-1)*m)
	}
}

// AllreduceKnomial is reduce + broadcast over a k-nomial tree. Parameter:
// Fanout (radix).
func AllreduceKnomial(b *sim.Builder, topo netmodel.Topology, m int64, prm Params) {
	p := topo.P()
	if p <= 1 {
		return
	}
	radix := prm.Fanout
	if radix < 2 {
		radix = 2
	}
	t := knomialTree(p, radix)
	reduceTree(b, t, m)
	full := sim.FullMask(p)
	for r := 0; r < p; r++ {
		if t.parent[r] >= 0 {
			b.Recv(r, t.parent[r], m)
		}
		for _, c := range t.children[r] {
			b.Send(r, c, m, pay1(b, 0, full)...)
		}
	}
}

// AllreduceHierarchical is the topology-aware two-level allreduce: each node
// reduces to its leader (binomial within the node), the leaders run an
// inter-node allreduce (Fanout selects the flavour: 0/1 recursive doubling,
// 2 ring, 3 Rabenseifner), and the leaders broadcast the result within
// their nodes. It shines when ppn is large because only one process per
// node touches the network.
func AllreduceHierarchical(b *sim.Builder, topo netmodel.Topology, m int64, prm Params) {
	p := topo.P()
	if p <= 1 {
		return
	}
	full := sim.FullMask(p)
	ppn := topo.PPN

	// Intra-node reduce to leader over a binomial tree per node (member
	// lists keep the schedule correct under any rank placement).
	members := nodeMembers(topo)
	nt := knomialTree(ppn, 2)
	nodeAcc := make([]uint64, topo.Nodes)
	acc := make([]uint64, p)
	for r := range acc {
		acc[r] = maskOf(r)
	}
	for node := 0; node < topo.Nodes; node++ {
		ms := members[node]
		for lr := len(ms) - 1; lr >= 0; lr-- {
			r := ms[lr]
			for i := len(nt.children[lr]) - 1; i >= 0; i-- {
				c := ms[nt.children[lr][i]]
				b.Recv(r, c, m)
				b.Compute(r, m)
				acc[r] |= acc[c]
			}
			if nt.parent[lr] >= 0 {
				b.Send(r, ms[nt.parent[lr]], m, pay1(b, 0, acc[r])...)
			}
		}
		nodeAcc[node] = acc[ms[0]]
	}

	// Inter-node allreduce over the leaders.
	leaders, _ := leadersOf(topo)
	nl := len(leaders)
	if nl > 1 {
		switch prm.Fanout {
		case 2: // ring over leaders
			leaderRingAllreduce(b, leaders, m, nodeAcc)
		case 3: // recursive doubling with halving volumes (Rabenseifner-ish)
			leaderRecDoubling(b, leaders, m, nodeAcc, true)
		default:
			leaderRecDoubling(b, leaders, m, nodeAcc, false)
		}
	}

	// Intra-node broadcast from the leaders.
	for node := 0; node < topo.Nodes; node++ {
		ms := members[node]
		for lr := 0; lr < len(ms); lr++ {
			r := ms[lr]
			if nt.parent[lr] >= 0 {
				b.Recv(r, ms[nt.parent[lr]], m)
			}
			for _, c := range nt.children[lr] {
				b.Send(r, ms[c], m, pay1(b, 0, full)...)
			}
		}
	}
}

// leaderRecDoubling runs a recursive-doubling allreduce over the leader
// ranks (with the non-power-of-two pre/post phase). When halving is true,
// exchanged volumes follow the reduce-scatter/allgather pattern (half, then
// quarter, ...), modelling a Rabenseifner-style leader exchange; payload
// tracking still treats the vector as one block, which remains sound
// because contribution sets are identical across the vector.
func leaderRecDoubling(b *sim.Builder, leaders []int, m int64, nodeAcc []uint64, halving bool) {
	nl := len(leaders)
	p2 := 1
	for p2*2 <= nl {
		p2 *= 2
	}
	rem := nl - p2
	vleader := make([]int, 0, p2)
	acc := nodeAcc

	for e := 0; e < 2*rem; e += 2 {
		b.Send(leaders[e], leaders[e+1], m, pay1(b, 0, acc[e])...)
		b.Recv(leaders[e+1], leaders[e], m)
		b.Compute(leaders[e+1], m)
		acc[e+1] |= acc[e]
	}
	for i := 0; i < nl; i++ {
		if i < 2*rem && i%2 == 0 {
			continue
		}
		vleader = append(vleader, i)
	}

	vol := m
	for dist := 1; dist < p2; dist *= 2 {
		if halving {
			vol = m / int64(2*dist)
			if vol < 1 {
				vol = 1
			}
		}
		snap := append([]uint64(nil), acc...)
		for v := 0; v < p2; v++ {
			li := vleader[v]
			wi := vleader[v^dist]
			b.SendRecv(leaders[li], leaders[wi], vol, leaders[wi], vol, pay1(b, 0, snap[li])...)
			b.Compute(leaders[li], vol)
			acc[li] |= snap[wi]
		}
	}
	if halving {
		// Allgather the scattered pieces back (doubling volumes).
		for dist := p2 / 2; dist >= 1; dist /= 2 {
			vol = m / int64(2*dist)
			if vol < 1 {
				vol = 1
			}
			snap := append([]uint64(nil), acc...)
			for v := 0; v < p2; v++ {
				li := vleader[v]
				wi := vleader[v^dist]
				b.SendRecv(leaders[li], leaders[wi], vol, leaders[wi], vol, pay1(b, 0, snap[li])...)
				acc[li] |= snap[wi]
			}
		}
	}
	for e := 0; e < 2*rem; e += 2 {
		b.Send(leaders[e+1], leaders[e], m, pay1(b, 0, acc[e+1])...)
		b.Recv(leaders[e], leaders[e+1], m)
		acc[e] |= acc[e+1]
	}
}

// leaderRingAllreduce runs a ring allreduce over the leader ranks
// (reduce-scatter + allgather on chunks of m/#leaders).
func leaderRingAllreduce(b *sim.Builder, leaders []int, m int64, nodeAcc []uint64) {
	nl := len(leaders)
	chunks := chunkSizes(m, nl)
	acc := make([][]uint64, nl)
	for i := range acc {
		acc[i] = make([]uint64, nl)
		for c := range acc[i] {
			acc[i][c] = nodeAcc[i]
		}
	}
	for s := 0; s < nl-1; s++ {
		snap := make([][]uint64, nl)
		for i := range snap {
			snap[i] = append([]uint64(nil), acc[i]...)
		}
		for i := 0; i < nl; i++ {
			c := (((i - s) % nl) + nl) % nl
			b.SendRecv(leaders[i], leaders[(i+1)%nl], chunks[c],
				leaders[(i-1+nl)%nl], chunks[(((i-1-s)%nl)+nl)%nl],
				pay1(b, 0, snap[i][c])...)
			b.Compute(leaders[i], chunks[(((i-1-s)%nl)+nl)%nl])
		}
		for i := 0; i < nl; i++ {
			c := (((i - 1 - s) % nl) + nl) % nl
			acc[i][c] |= snap[(i-1+nl)%nl][c]
		}
	}
	for s := 0; s < nl-1; s++ {
		snap := make([][]uint64, nl)
		for i := range snap {
			snap[i] = append([]uint64(nil), acc[i]...)
		}
		for i := 0; i < nl; i++ {
			c := (((i + 1 - s) % nl) + nl) % nl
			b.SendRecv(leaders[i], leaders[(i+1)%nl], chunks[c],
				leaders[(i-1+nl)%nl], chunks[(((i-s)%nl)+nl)%nl],
				pay1(b, 0, snap[i][c])...)
		}
		for i := 0; i < nl; i++ {
			c := (((i - s) % nl) + nl) % nl
			acc[i][c] |= snap[(i-1+nl)%nl][c]
		}
	}
	// Fold the chunk masks into the callers' per-node masks: every leader
	// now holds the full contribution set.
	for i := range nodeAcc {
		m := ^uint64(0)
		for _, cm := range acc[i] {
			m &= cm
		}
		nodeAcc[i] = m
	}
}
