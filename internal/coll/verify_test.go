package coll

import (
	"fmt"
	"testing"

	"mpicollpred/internal/netmodel"
	"mpicollpred/internal/sim"
)

// The central correctness test of the substrate: every schedule generator is
// executed through the simulator with data-flow tracking, under both an
// all-eager and a rendezvous-heavy protocol regime, across topologies
// (including non-power-of-two and multi-node ones) and message sizes. The
// tracker proves that (a) no rank ever sends data it does not hold, (b) the
// schedule completes without deadlock, and (c) the collective's
// postcondition holds on every rank.

type genCase struct {
	name string
	coll string // "bcast" | "allreduce" | "alltoall"
	gen  Generator
	prm  Params
}

func allCases() []genCase {
	var cs []genCase
	add := func(name, coll string, g Generator, prm Params) {
		cs = append(cs, genCase{name, coll, g, prm})
	}

	add("bcast/linear", "bcast", BcastLinear, Params{})
	for _, seg := range []int64{0, 100, 1024} {
		for _, f := range []int{1, 2, 4} {
			add(fmt.Sprintf("bcast/chain seg=%d f=%d", seg, f), "bcast", BcastChain, Params{Seg: seg, Fanout: f})
		}
		add(fmt.Sprintf("bcast/pipeline seg=%d", seg), "bcast", BcastPipeline, Params{Seg: seg})
		add(fmt.Sprintf("bcast/binary seg=%d", seg), "bcast", BcastBinary, Params{Seg: seg})
		add(fmt.Sprintf("bcast/binomial seg=%d", seg), "bcast", BcastBinomial, Params{Seg: seg})
		add(fmt.Sprintf("bcast/splitbinary seg=%d", seg), "bcast", BcastSplitBinary, Params{Seg: seg})
		add(fmt.Sprintf("bcast/doubletree seg=%d", seg), "bcast", BcastDoubleTree, Params{Seg: seg})
		add(fmt.Sprintf("bcast/hier seg=%d", seg), "bcast", BcastHierarchical, Params{Seg: seg})
	}
	for _, radix := range []int{2, 3, 4, 8} {
		add(fmt.Sprintf("bcast/knomial r=%d", radix), "bcast", BcastKnomial, Params{Fanout: radix})
		add(fmt.Sprintf("bcast/hier r=%d", radix), "bcast", BcastHierarchical, Params{Fanout: radix})
	}
	add("bcast/scatter_allgather", "bcast", BcastScatterAllgather, Params{})
	add("bcast/scatter_ring_allgather", "bcast", BcastScatterRingAllgather, Params{})

	add("allreduce/linear", "allreduce", AllreduceLinear, Params{})
	add("allreduce/nonoverlapping", "allreduce", AllreduceNonoverlapping, Params{})
	add("allreduce/recdoubling", "allreduce", AllreduceRecursiveDoubling, Params{})
	add("allreduce/ring", "allreduce", AllreduceRing, Params{})
	for _, seg := range []int64{100, 1024} {
		add(fmt.Sprintf("allreduce/segring seg=%d", seg), "allreduce", AllreduceSegmentedRing, Params{Seg: seg})
	}
	add("allreduce/rabenseifner", "allreduce", AllreduceRabenseifner, Params{})
	add("allreduce/allgather_reduce", "allreduce", AllreduceAllgatherReduce, Params{})
	for _, radix := range []int{2, 4} {
		add(fmt.Sprintf("allreduce/knomial r=%d", radix), "allreduce", AllreduceKnomial, Params{Fanout: radix})
	}
	for _, f := range []int{0, 2, 3} {
		add(fmt.Sprintf("allreduce/hier f=%d", f), "allreduce", AllreduceHierarchical, Params{Fanout: f})
	}

	add("reduce/linear", "reduce", ReduceLinear, Params{})
	add("reduce/binomial", "reduce", ReduceBinomial, Params{})
	for _, radix := range []int{3, 4, 8} {
		add(fmt.Sprintf("reduce/knomial r=%d", radix), "reduce", ReduceKnomial, Params{Fanout: radix})
	}
	for _, seg := range []int64{0, 100, 1024} {
		add(fmt.Sprintf("reduce/pipelined seg=%d", seg), "reduce", ReducePipelined, Params{Seg: seg})
	}

	add("scatter/linear", "scatter", ScatterLinear, Params{})
	add("scatter/binomial", "scatter", ScatterBinomial, Params{})
	add("gather/linear", "gather", GatherLinear, Params{})
	add("gather/binomial", "gather", GatherBinomial, Params{})

	add("allgather/ring", "allgather", AllgatherRing, Params{})
	add("allgather/recdoubling", "allgather", AllgatherRecursiveDoubling, Params{})
	add("allgather/bruck", "allgather", AllgatherBruck, Params{})
	add("allgather/linear", "allgather", AllgatherLinear, Params{})
	add("allgather/neighbor", "allgather", AllgatherNeighborExchange, Params{})

	add("alltoall/linear", "alltoall", AlltoallLinear, Params{})
	add("alltoall/pairwise", "alltoall", AlltoallPairwise, Params{})
	add("alltoall/bruck", "alltoall", AlltoallBruck, Params{})
	for _, w := range []int{1, 2, 4} {
		add(fmt.Sprintf("alltoall/spread w=%d", w), "alltoall", AlltoallSpread, Params{Fanout: w})
	}
	add("alltoall/hier", "alltoall", AlltoallHierarchical, Params{})
	return cs
}

func verifyParams(eager uint32) netmodel.Params {
	return netmodel.Params{
		LInter: 1.5e-6, GInter: 1.0 / 10e9, GNic: 1.0 / 12e9,
		LIntra: 0.4e-6, GIntra: 1.0 / 8e9, GMem: 1.0 / 30e9,
		OSend: 0.3e-6, ORecv: 0.35e-6, OByte: 0.05e-9, Gamma: 1.0 / 6e9,
		Eager: eager, RendezvousL: 3e-6, Sigma: 0,
	}
}

// usedBlocks returns the distinct block ids appearing in the program's
// payload table.
func usedBlocks(prog *sim.Program) map[int32]bool {
	used := make(map[int32]bool)
	for _, u := range prog.Pay {
		used[u.Block] = true
	}
	return used
}

func runVerified(t *testing.T, tc genCase, topo netmodel.Topology, m int64, eager uint32) {
	t.Helper()
	p := topo.P()
	b := sim.NewBuilder(p, true)
	tc.gen(b, topo, m, tc.prm)
	prog := b.Build()
	if p == 1 {
		if prog.NumOps() != 0 {
			t.Errorf("%s p=1: expected empty program, got %d ops", tc.name, prog.NumOps())
		}
		return
	}

	tr := sim.NewTracker(p)
	used := usedBlocks(prog)
	full := sim.FullMask(p)
	switch tc.coll {
	case "bcast":
		if len(used) == 0 {
			t.Fatalf("%s: no payload blocks recorded", tc.name)
		}
		for blk := range used {
			tr.Init(Root, blk, 1)
		}
	case "allreduce":
		if len(used) == 0 {
			t.Fatalf("%s: no payload blocks recorded", tc.name)
		}
		for blk := range used {
			for r := 0; r < p; r++ {
				tr.Init(r, blk, 1<<uint(r))
			}
		}
	case "reduce":
		if len(used) == 0 {
			t.Fatalf("%s: no payload blocks recorded", tc.name)
		}
		for blk := range used {
			for r := 0; r < p; r++ {
				tr.Init(r, blk, 1<<uint(r))
			}
		}
	case "allgather":
		for r := 0; r < p; r++ {
			tr.Init(r, int32(r), 1)
		}
		if len(used) != p {
			t.Errorf("%s topo=%dx%d: %d distinct blocks moved, want %d",
				tc.name, topo.Nodes, topo.PPN, len(used), p)
		}
	case "scatter":
		for blk := 0; blk < p; blk++ {
			tr.Init(Root, int32(blk), 1)
		}
		if len(used) != p-1 { // the root's own block never moves
			t.Errorf("%s topo=%dx%d: %d distinct blocks moved, want %d",
				tc.name, topo.Nodes, topo.PPN, len(used), p-1)
		}
	case "gather":
		for r := 0; r < p; r++ {
			tr.Init(r, int32(r), 1)
		}
	case "alltoall":
		for r := 0; r < p; r++ {
			for d := 0; d < p; d++ {
				tr.Init(r, a2aBlock(p, r, d), 1)
			}
		}
		if want := p * (p - 1); len(used) != want {
			t.Errorf("%s topo=%dx%d: %d distinct blocks moved, want %d",
				tc.name, topo.Nodes, topo.PPN, len(used), want)
		}
	}

	model := netmodel.New(verifyParams(eager), topo, 7, false)
	res, err := sim.NewEngine().Run(prog, model, nil, tr)
	if err != nil {
		t.Fatalf("%s topo=%dx%d m=%d eager=%d: %v", tc.name, topo.Nodes, topo.PPN, m, eager, err)
	}
	if res.Time <= 0 {
		t.Fatalf("%s: non-positive makespan %v", tc.name, res.Time)
	}

	switch tc.coll {
	case "bcast":
		for blk := range used {
			for r := 0; r < p; r++ {
				if !tr.Holds(r, blk, 1) {
					t.Fatalf("%s topo=%dx%d m=%d: rank %d missing block %d",
						tc.name, topo.Nodes, topo.PPN, m, r, blk)
				}
			}
		}
	case "allreduce":
		for blk := range used {
			for r := 0; r < p; r++ {
				if !tr.Holds(r, blk, full) {
					t.Fatalf("%s topo=%dx%d m=%d: rank %d block %d mask %#x, want %#x",
						tc.name, topo.Nodes, topo.PPN, m, r, blk, tr.Mask(r, blk), full)
				}
			}
		}
	case "reduce":
		for blk := range used {
			if !tr.Holds(Root, blk, full) {
				t.Fatalf("%s topo=%dx%d m=%d: root block %d mask %#x, want %#x",
					tc.name, topo.Nodes, topo.PPN, m, blk, tr.Mask(Root, blk), full)
			}
		}
	case "allgather":
		for blk := 0; blk < p; blk++ {
			for r := 0; r < p; r++ {
				if !tr.Holds(r, int32(blk), 1) {
					t.Fatalf("%s topo=%dx%d m=%d: rank %d missing block %d",
						tc.name, topo.Nodes, topo.PPN, m, r, blk)
				}
			}
		}
	case "scatter":
		for r := 1; r < p; r++ {
			if !tr.Holds(r, int32(r), 1) {
				t.Fatalf("%s topo=%dx%d m=%d: rank %d missing its block", tc.name, topo.Nodes, topo.PPN, m, r)
			}
		}
	case "gather":
		for blk := 0; blk < p; blk++ {
			if !tr.Holds(Root, int32(blk), 1) {
				t.Fatalf("%s topo=%dx%d m=%d: root missing block %d", tc.name, topo.Nodes, topo.PPN, m, blk)
			}
		}
	case "alltoall":
		for s := 0; s < p; s++ {
			for r := 0; r < p; r++ {
				if s == r {
					continue
				}
				if !tr.Holds(r, a2aBlock(p, s, r), 1) {
					t.Fatalf("%s topo=%dx%d m=%d: rank %d missing block from %d",
						tc.name, topo.Nodes, topo.PPN, m, r, s)
				}
			}
		}
	}
}

var verifyTopos = []netmodel.Topology{
	{Nodes: 1, PPN: 1},
	{Nodes: 2, PPN: 1},
	{Nodes: 3, PPN: 1},
	{Nodes: 1, PPN: 4},
	{Nodes: 2, PPN: 2},
	{Nodes: 5, PPN: 1},
	{Nodes: 2, PPN: 3},
	{Nodes: 7, PPN: 1},
	{Nodes: 2, PPN: 4},
	{Nodes: 3, PPN: 4},
	{Nodes: 4, PPN: 4},
	{Nodes: 2, PPN: 8},
	// Cyclic (round-robin) placements: schedules must stay semantically
	// correct when node membership is no longer contiguous in rank order.
	{Nodes: 2, PPN: 3, Cyclic: true},
	{Nodes: 3, PPN: 4, Cyclic: true},
	{Nodes: 4, PPN: 2, Cyclic: true},
}

func TestAllGeneratorsVerifyEager(t *testing.T) {
	for _, tc := range allCases() {
		t.Run(tc.name, func(t *testing.T) {
			for _, topo := range verifyTopos {
				for _, m := range []int64{1, 7, 1000, 65536} {
					runVerified(t, tc, topo, m, 1<<30)
				}
			}
		})
	}
}

func TestAllGeneratorsVerifyRendezvous(t *testing.T) {
	// A tiny eager threshold forces nearly every transfer through the
	// rendezvous path, the regime where ordering bugs deadlock.
	for _, tc := range allCases() {
		t.Run(tc.name, func(t *testing.T) {
			for _, topo := range verifyTopos {
				for _, m := range []int64{1000, 65536} {
					runVerified(t, tc, topo, m, 64)
				}
			}
		})
	}
}

func TestLargeMessageSegmented(t *testing.T) {
	// 1 MiB with 1 KiB segments: thousands of ops per rank; exercises the
	// pipelining paths at realistic segment counts.
	topo := netmodel.Topology{Nodes: 4, PPN: 2}
	for _, tc := range allCases() {
		if tc.coll == "alltoall" {
			continue // alltoall m is per-pair; 1 MiB would be excessive
		}
		t.Run(tc.name, func(t *testing.T) {
			runVerified(t, tc, topo, 1<<20, 16384)
		})
	}
}
