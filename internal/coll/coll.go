// Package coll implements the collective communication algorithms of the
// simulated MPI libraries as schedule generators: each algorithm, given a
// process topology, a message size and its algorithmic parameters, emits a
// per-rank operation program for the discrete-event simulator.
//
// Every generator is a faithful implementation of the corresponding
// communication schedule (tree shapes, segmentation, pipelining, exchange
// patterns) — running times emerge from simulating the schedule, not from
// closed-form cost formulas. In verify mode the generators additionally
// annotate messages with data-flow payloads so tests can prove the schedule
// actually implements the collective's semantics.
package coll

import (
	"fmt"

	"mpicollpred/internal/netmodel"
	"mpicollpred/internal/sim"
)

// Params carries the algorithmic parameters of a configuration. The meaning
// depends on the algorithm: Seg is a segment size in bytes (0 = no
// segmentation); Fanout is the chain count for chain broadcasts, the radix
// for k-nomial trees, or the outstanding-request window for spread alltoall.
type Params struct {
	Seg    int64
	Fanout int
}

func (p Params) String() string {
	s := ""
	if p.Seg > 0 {
		s += fmt.Sprintf(" seg=%d", p.Seg)
	}
	if p.Fanout > 0 {
		s += fmt.Sprintf(" fanout=%d", p.Fanout)
	}
	return s
}

// Generator emits the schedule of one collective algorithm for the given
// topology, per-instance message size m (bytes) and parameters.
type Generator func(b *sim.Builder, topo netmodel.Topology, m int64, prm Params)

// Root is the root rank of all rooted collectives (the paper benchmarks a
// fixed root).
const Root = 0

// segSizes splits m into segments of at most seg bytes. seg <= 0 or
// seg >= m yields a single segment. m == 0 yields one empty segment so that
// schedules still carry the synchronization structure.
func segSizes(m, seg int64) []int64 {
	if m <= 0 {
		return []int64{0}
	}
	if seg <= 0 || seg >= m {
		return []int64{m}
	}
	n := (m + seg - 1) / seg
	out := make([]int64, n)
	for i := range out {
		out[i] = seg
	}
	out[n-1] = m - seg*(n-1)
	return out
}

// chunkSizes splits m into p nearly equal chunks (chunk i gets one extra
// byte while i < m mod p); used by scatter/reduce-scatter based algorithms.
func chunkSizes(m int64, p int) []int64 {
	out := make([]int64, p)
	base := m / int64(p)
	rem := m % int64(p)
	for i := range out {
		out[i] = base
		if int64(i) < rem {
			out[i]++
		}
	}
	return out
}

// sumRange sums sizes[lo:hi].
func sumRange(sizes []int64, lo, hi int) int64 {
	var s int64
	for i := lo; i < hi; i++ {
		s += sizes[i]
	}
	return s
}

// tree describes a rooted spanning tree over p ranks. For k-nomial trees,
// span[r] is the length of the contiguous rank interval [r, r+span[r])
// forming r's subtree (the property binomial scatter relies on); it is nil
// for tree shapes without contiguous subtrees.
type tree struct {
	parent   []int
	children [][]int
	span     []int
}

// knomialTree builds the k-nomial tree rooted at Root used by binomial
// (k=2) and k-nomial broadcasts/reductions. Children are ordered with the
// largest subtree first, matching the classic binomial broadcast order.
func knomialTree(p, k int) tree {
	if k < 2 {
		k = 2
	}
	t := tree{parent: make([]int, p), children: make([][]int, p), span: make([]int, p)}
	for r := 0; r < p; r++ {
		t.parent[r] = -1
		t.span[r] = p // root spans everything
		mask := 1
		for mask < p {
			digit := (r / mask) % k
			if digit != 0 {
				t.parent[r] = r - digit*mask
				t.span[r] = mask
				if r+t.span[r] > p {
					t.span[r] = p - r
				}
				break
			}
			mask *= k
		}
	}
	// Children in descending rank order approximates farthest-first
	// (largest remaining subtree first).
	for r := p - 1; r >= 1; r-- {
		pa := t.parent[r]
		t.children[pa] = append(t.children[pa], r)
	}
	return t
}

// binaryTree builds the in-order heap-shaped binary tree rooted at Root
// (children of r are 2r+1 and 2r+2).
func binaryTree(p int) tree {
	t := tree{parent: make([]int, p), children: make([][]int, p)}
	t.parent[0] = -1
	for r := 1; r < p; r++ {
		t.parent[r] = (r - 1) / 2
	}
	for r := 0; r < p; r++ {
		if l := 2*r + 1; l < p {
			t.children[r] = append(t.children[r], l)
		}
		if rr := 2*r + 2; rr < p {
			t.children[r] = append(t.children[r], rr)
		}
	}
	return t
}

// subtreeSize returns the number of ranks in each rank's subtree, computed
// by post-order accumulation from the root.
func (t tree) subtreeSize() []int {
	p := len(t.parent)
	size := make([]int, p)
	var visit func(r int)
	visit = func(r int) {
		size[r] = 1
		for _, c := range t.children[r] {
			visit(c)
			size[r] += size[c]
		}
	}
	visit(0)
	return size
}

// nodeMembers returns, per node, the sorted ranks it hosts — valid for any
// placement (block or cyclic).
func nodeMembers(topo netmodel.Topology) [][]int {
	members := make([][]int, topo.Nodes)
	for r := 0; r < topo.P(); r++ {
		n := topo.NodeOf(int32(r))
		members[n] = append(members[n], r)
	}
	return members
}

// leadersOf returns the node-leader ranks (lowest rank on each node) and
// each rank's leader, for hierarchical (two-level) algorithms.
func leadersOf(topo netmodel.Topology) (leaders []int, leaderOf []int) {
	members := nodeMembers(topo)
	leaders = make([]int, topo.Nodes)
	leaderOf = make([]int, topo.P())
	for n, ms := range members {
		leaders[n] = ms[0]
		for _, r := range ms {
			leaderOf[r] = ms[0]
		}
	}
	return leaders, leaderOf
}

// pay1 returns a single-unit payload slice when verifying, nil otherwise.
// Passing nil payloads in production keeps the builder hot path cheap.
func pay1(b *sim.Builder, block int32, mask uint64) []sim.PayUnit {
	if !b.Verify() {
		return nil
	}
	return []sim.PayUnit{{Block: block, Mask: mask}}
}

// payAll returns payload units granting mask on blocks [0, nblocks): the
// annotation of a message carrying the whole (chunk-structured) vector.
func payAll(b *sim.Builder, nblocks int, mask uint64) []sim.PayUnit {
	if !b.Verify() {
		return nil
	}
	pay := make([]sim.PayUnit, nblocks)
	for i := range pay {
		pay[i] = sim.PayUnit{Block: int32(i), Mask: mask}
	}
	return pay
}
