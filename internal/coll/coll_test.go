package coll

import (
	"testing"
	"testing/quick"

	"mpicollpred/internal/netmodel"
)

func topoOf(n, ppn int) netmodel.Topology { return netmodel.Topology{Nodes: n, PPN: ppn} }

func TestSegSizes(t *testing.T) {
	cases := []struct {
		m, seg int64
		want   []int64
	}{
		{0, 0, []int64{0}},
		{10, 0, []int64{10}},
		{10, 20, []int64{10}},
		{10, 10, []int64{10}},
		{10, 4, []int64{4, 4, 2}},
		{12, 4, []int64{4, 4, 4}},
		{1, 4, []int64{1}},
	}
	for _, c := range cases {
		got := segSizes(c.m, c.seg)
		if len(got) != len(c.want) {
			t.Errorf("segSizes(%d,%d) = %v, want %v", c.m, c.seg, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("segSizes(%d,%d) = %v, want %v", c.m, c.seg, got, c.want)
				break
			}
		}
	}
}

func TestSegSizesSumProperty(t *testing.T) {
	f := func(m16, seg16 uint16) bool {
		m, seg := int64(m16), int64(seg16)
		var sum int64
		for _, s := range segSizes(m, seg) {
			if s < 0 {
				return false
			}
			sum += s
		}
		if m <= 0 {
			return sum == 0
		}
		return sum == m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestChunkSizesSumProperty(t *testing.T) {
	f := func(m32 uint32, p8 uint8) bool {
		p := int(p8%32) + 1
		m := int64(m32 % (1 << 22))
		cs := chunkSizes(m, p)
		if len(cs) != p {
			return false
		}
		var sum int64
		for i, c := range cs {
			if c < 0 {
				return false
			}
			// Nearly equal: earlier chunks never smaller than later ones.
			if i > 0 && c > cs[i-1] {
				return false
			}
			sum += c
		}
		return sum == m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestKnomialTreeStructure(t *testing.T) {
	for _, p := range []int{1, 2, 3, 4, 5, 8, 9, 16, 27, 31, 64} {
		for _, k := range []int{2, 3, 4, 8} {
			tr := knomialTree(p, k)
			if tr.parent[0] != -1 {
				t.Fatalf("p=%d k=%d: root has parent %d", p, k, tr.parent[0])
			}
			// Every non-root reaches the root; depth bounded by log_k(p)+1.
			for r := 1; r < p; r++ {
				hops, cur := 0, r
				for cur != 0 {
					cur = tr.parent[cur]
					hops++
					if hops > p {
						t.Fatalf("p=%d k=%d: cycle at rank %d", p, k, r)
					}
					if cur < 0 {
						t.Fatalf("p=%d k=%d: rank %d detached", p, k, r)
					}
				}
			}
			// Children partition ranks 1..p-1.
			seen := make([]bool, p)
			for r := 0; r < p; r++ {
				for _, c := range tr.children[r] {
					if seen[c] {
						t.Fatalf("p=%d k=%d: rank %d has two parents", p, k, c)
					}
					seen[c] = true
					if tr.parent[c] != r {
						t.Fatalf("p=%d k=%d: parent/children mismatch at %d", p, k, c)
					}
				}
			}
			// Subtree spans are contiguous and consistent with sizes.
			sizes := tr.subtreeSize()
			if sizes[0] != p {
				t.Fatalf("p=%d k=%d: root subtree size %d", p, k, sizes[0])
			}
			for r := 0; r < p; r++ {
				if sizes[r] != tr.span[r] {
					t.Fatalf("p=%d k=%d rank=%d: size %d != span %d", p, k, r, sizes[r], tr.span[r])
				}
			}
		}
	}
}

func TestBinaryTreeStructure(t *testing.T) {
	for _, p := range []int{1, 2, 3, 7, 10, 31} {
		tr := binaryTree(p)
		for r := 1; r < p; r++ {
			if tr.parent[r] != (r-1)/2 {
				t.Fatalf("p=%d: parent of %d = %d", p, r, tr.parent[r])
			}
		}
		for r := 0; r < p; r++ {
			if len(tr.children[r]) > 2 {
				t.Fatalf("p=%d: rank %d has %d children", p, r, len(tr.children[r]))
			}
		}
		if tr.subtreeSize()[0] != p {
			t.Fatalf("p=%d: bad root subtree", p)
		}
	}
}

func TestLeaders(t *testing.T) {
	topo := struct{ Nodes, PPN int }{3, 4}
	leaders, leaderOf := leadersOf(topoOf(topo.Nodes, topo.PPN))
	want := []int{0, 4, 8}
	for i, l := range leaders {
		if l != want[i] {
			t.Fatalf("leaders = %v", leaders)
		}
	}
	if leaderOf[5] != 4 || leaderOf[0] != 0 || leaderOf[11] != 8 {
		t.Fatalf("leaderOf = %v", leaderOf)
	}
}

func TestParamsString(t *testing.T) {
	if s := (Params{Seg: 1024, Fanout: 4}).String(); s != " seg=1024 fanout=4" {
		t.Errorf("Params.String() = %q", s)
	}
	if s := (Params{}).String(); s != "" {
		t.Errorf("empty Params.String() = %q", s)
	}
}
