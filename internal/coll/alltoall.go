package coll

import (
	"mpicollpred/internal/netmodel"
	"mpicollpred/internal/sim"
)

// Alltoall verification convention: m is the per-destination message size
// (as in the OSU benchmarks); logical block src*p+dst is the data rank src
// sends to rank dst, with contribution mask 1. Rank r initially holds
// blocks r*p+*, and must end holding blocks **p+r.

func a2aBlock(p, src, dst int) int32 { return int32(src*p + dst) }

// AlltoallLinear is the basic linear alltoall: every rank posts
// non-blocking sends to all peers (starting at rank+1, wrapping) and then
// receives from all peers. No parameters.
func AlltoallLinear(b *sim.Builder, topo netmodel.Topology, m int64, _ Params) {
	p := topo.P()
	if p <= 1 {
		return
	}
	b.Reserve(2 * (p - 1))
	for r := 0; r < p; r++ {
		for i := 1; i < p; i++ {
			dst := (r + i) % p
			b.SendNB(r, dst, m, pay1(b, a2aBlock(p, r, dst), 1)...)
		}
		for i := 1; i < p; i++ {
			src := (r - i + p) % p
			b.Recv(r, src, m)
		}
	}
}

// AlltoallPairwise is the pairwise-exchange alltoall: p-1 synchronized
// steps; in step s every rank exchanges with (rank+s) / (rank-s). No
// parameters.
func AlltoallPairwise(b *sim.Builder, topo netmodel.Topology, m int64, _ Params) {
	p := topo.P()
	if p <= 1 {
		return
	}
	b.Reserve(2 * (p - 1))
	for s := 1; s < p; s++ {
		for r := 0; r < p; r++ {
			dst := (r + s) % p
			src := (r - s + p) % p
			b.SendRecv(r, dst, m, src, m, pay1(b, a2aBlock(p, r, dst), 1)...)
		}
	}
}

// AlltoallBruck is Bruck's log-round alltoall: after a virtual local
// rotation, round k ships all blocks whose slot index has bit k set to rank
// (r + 2^k), halving the number of rounds at the price of forwarding data
// through intermediates. Strong for small messages on many processes. No
// parameters.
func AlltoallBruck(b *sim.Builder, topo netmodel.Topology, m int64, _ Params) {
	p := topo.P()
	if p <= 1 {
		return
	}
	// slot[r][i] = origin of the block currently held by rank r in slot i
	// (slot i means "destined for rank (r+i) mod p"). After the virtual
	// rotation every rank holds its own blocks: origin r in every slot.
	// Tracked only for verification payloads.
	var slot [][]int32
	if b.Verify() {
		slot = make([][]int32, p)
		for r := range slot {
			slot[r] = make([]int32, p)
			for i := range slot[r] {
				slot[r][i] = int32(r)
			}
		}
	}
	// Local rotation cost: one pass over the p*m buffer.
	for r := 0; r < p; r++ {
		b.Compute(r, int64(p)*m)
	}
	for dist := 1; dist < p; dist *= 2 {
		// Collect the slots with the dist bit set.
		var idx []int
		for i := 0; i < p; i++ {
			if i&dist != 0 {
				idx = append(idx, i)
			}
		}
		bytes := int64(len(idx)) * m
		var snap [][]int32
		if b.Verify() {
			snap = make([][]int32, p)
			for r := range snap {
				snap[r] = append([]int32(nil), slot[r]...)
			}
		}
		for r := 0; r < p; r++ {
			dst := (r + dist) % p
			src := (r - dist + p) % p
			var pay []sim.PayUnit
			if b.Verify() {
				for _, i := range idx {
					// Offset class i of rank r currently holds the block
					// that originated at slot[r][i] and is destined for
					// (origin + i) mod p.
					o := int(slot[r][i])
					pay = append(pay, sim.PayUnit{
						Block: a2aBlock(p, o, (o+i)%p), Mask: 1})
				}
			}
			b.SendRecv(r, dst, bytes, src, bytes, pay...)
		}
		if b.Verify() {
			for r := 0; r < p; r++ {
				src := (r - dist + p) % p
				for _, i := range idx {
					// The receiver takes over offset class i from src.
					slot[r][i] = snap[src][i]
				}
			}
		}
	}
	// Final local inverse rotation.
	for r := 0; r < p; r++ {
		b.Compute(r, int64(p)*m)
	}
}

// AlltoallSpread is the windowed linear alltoall: like AlltoallLinear but
// with at most Fanout outstanding sends before draining the matching
// receives, bounding buffer pressure. Parameter: Fanout (window size).
func AlltoallSpread(b *sim.Builder, topo netmodel.Topology, m int64, prm Params) {
	p := topo.P()
	if p <= 1 {
		return
	}
	w := prm.Fanout
	if w < 1 {
		w = 4
	}
	b.Reserve(2 * (p - 1))
	for r := 0; r < p; r++ {
		for lo := 1; lo < p; lo += w {
			hi := lo + w
			if hi > p {
				hi = p
			}
			for i := lo; i < hi; i++ {
				dst := (r + i) % p
				b.SendNB(r, dst, m, pay1(b, a2aBlock(p, r, dst), 1)...)
			}
			for i := lo; i < hi; i++ {
				src := (r - i + p) % p
				b.Recv(r, src, m)
			}
		}
	}
}

// AlltoallHierarchical is the node-aware aggregating alltoall: every rank
// ships its off-node blocks to the node leader (one aggregated message per
// destination node), leaders exchange node-to-node aggregates pairwise, and
// leaders scatter the received aggregates to their local ranks. On-node
// blocks move directly. Wins for small m and large ppn (p*ppn fewer network
// messages); loses badly for large m (leader bottleneck). No parameters.
func AlltoallHierarchical(b *sim.Builder, topo netmodel.Topology, m int64, _ Params) {
	p := topo.P()
	if p <= 1 {
		return
	}
	ppn := topo.PPN
	nodes := topo.Nodes
	leaders, leaderOf := leadersOf(topo)
	if nodes == 1 {
		AlltoallPairwise(b, topo, m, Params{})
		return
	}

	payNodePair := func(members [][]int, srcNode, dstNode int) []sim.PayUnit {
		if !b.Verify() {
			return nil
		}
		var pay []sim.PayUnit
		for _, s := range members[srcNode] {
			for _, d := range members[dstNode] {
				pay = append(pay, sim.PayUnit{Block: a2aBlock(p, s, d), Mask: 1})
			}
		}
		return pay
	}

	// Phase 0: on-node exchange, pairwise within the node (member lists
	// keep this correct under any rank placement).
	members := nodeMembers(topo)
	local := make([]int, p) // rank -> index within its node
	for _, ms := range members {
		for i, r := range ms {
			local[r] = i
		}
	}
	for s := 1; s < ppn; s++ {
		for r := 0; r < p; r++ {
			ms := members[topo.NodeOf(int32(r))]
			dst := ms[(local[r]+s)%ppn]
			src := ms[(local[r]-s+ppn)%ppn]
			b.SendRecv(r, dst, m, src, m, pay1(b, a2aBlock(p, r, dst), 1)...)
		}
	}

	// Phase 1: gather to leader. Every non-leader rank sends, per remote
	// node, the ppn blocks destined to that node, as one message.
	for r := 0; r < p; r++ {
		lead := leaderOf[r]
		if r == lead {
			continue
		}
		for dn := 0; dn < nodes; dn++ {
			if dn == int(topo.NodeOf(int32(r))) {
				continue
			}
			var pay []sim.PayUnit
			if b.Verify() {
				for _, d := range members[dn] {
					pay = append(pay, sim.PayUnit{Block: a2aBlock(p, r, d), Mask: 1})
				}
			}
			b.SendNB(r, lead, int64(ppn)*m, pay...)
		}
		for dn := 0; dn < nodes-1; dn++ {
			b.Recv(lead, r, int64(ppn)*m)
		}
	}

	// Phase 2: leaders exchange node aggregates pairwise.
	agg := int64(ppn) * int64(ppn) * m
	for s := 1; s < nodes; s++ {
		for n := 0; n < nodes; n++ {
			dn := (n + s) % nodes
			sn := (n - s + nodes) % nodes
			b.SendRecv(leaders[n], leaders[dn], agg, leaders[sn], agg, payNodePair(members, n, dn)...)
		}
	}

	// Phase 3: leaders scatter to local ranks: per rank, the blocks from
	// all remote nodes destined to it.
	for n := 0; n < nodes; n++ {
		lead := leaders[n]
		for _, r := range members[n] {
			if r == lead {
				continue
			}
			var pay []sim.PayUnit
			if b.Verify() {
				for sn := 0; sn < nodes; sn++ {
					if sn == n {
						continue
					}
					for _, s := range members[sn] {
						pay = append(pay, sim.PayUnit{Block: a2aBlock(p, s, r), Mask: 1})
					}
				}
			}
			b.Send(lead, r, int64(nodes-1)*int64(ppn)*m, pay...)
			b.Recv(r, lead, int64(nodes-1)*int64(ppn)*m)
		}
	}
}
