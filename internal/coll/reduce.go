package coll

import (
	"mpicollpred/internal/netmodel"
	"mpicollpred/internal/sim"
)

// Reduce verification convention: block 0 is the whole vector; rank r
// contributes mask 1<<r; at the end the ROOT must hold the full mask (other
// ranks hold partials). Reduce is not part of the paper's datasets but the
// libraries provide it, and the selection framework is generic over
// collectives — these generators extend the portfolio accordingly.

// ReduceLinear is the basic linear reduce: every rank sends its vector to
// the root, which accumulates them in rank order. No parameters.
func ReduceLinear(b *sim.Builder, topo netmodel.Topology, m int64, _ Params) {
	p := topo.P()
	if p <= 1 {
		return
	}
	for r := 1; r < p; r++ {
		b.Send(r, Root, m, pay1(b, 0, maskOf(r))...)
		b.Recv(Root, r, m)
		b.Compute(Root, m)
	}
}

// ReduceBinomial reduces over a binomial tree. No parameters.
func ReduceBinomial(b *sim.Builder, topo netmodel.Topology, m int64, _ Params) {
	p := topo.P()
	if p <= 1 {
		return
	}
	reduceTree(b, knomialTree(p, 2), m)
}

// ReduceKnomial reduces over a k-nomial tree. Parameter: Fanout (radix).
func ReduceKnomial(b *sim.Builder, topo netmodel.Topology, m int64, prm Params) {
	p := topo.P()
	if p <= 1 {
		return
	}
	radix := prm.Fanout
	if radix < 2 {
		radix = 2
	}
	reduceTree(b, knomialTree(p, radix), m)
}

// ReducePipelined is the segmented binomial reduce: segments flow up the
// tree in a pipeline, with the partial reduction computed per segment —
// the large-message workhorse. Parameter: Seg.
func ReducePipelined(b *sim.Builder, topo netmodel.Topology, m int64, prm Params) {
	p := topo.P()
	if p <= 1 {
		return
	}
	t := knomialTree(p, 2)
	segs := segSizes(m, prm.Seg)
	b.Reserve(3 * len(segs))
	// Each segment independently accumulates the sender's whole subtree,
	// so every message of rank r carries r's subtree contribution mask.
	subtree := make([]uint64, p)
	for r := range subtree {
		subtree[r] = maskOf(r)
	}
	for r := p - 1; r >= 1; r-- {
		subtree[t.parent[r]] |= subtree[r]
	}
	for _, sz := range segs {
		for r := p - 1; r >= 0; r-- {
			for i := len(t.children[r]) - 1; i >= 0; i-- {
				b.Recv(r, t.children[r][i], sz)
				b.Compute(r, sz)
			}
			if t.parent[r] >= 0 {
				b.Send(r, t.parent[r], sz, pay1(b, 0, subtree[r])...)
			}
		}
	}
}
