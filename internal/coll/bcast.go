package coll

import (
	"mpicollpred/internal/netmodel"
	"mpicollpred/internal/sim"
)

// Broadcast verification convention: logical block s = segment (or chunk) s
// of the root's buffer, contribution mask 1 (only the root contributes).
// The root initially holds every block; afterwards every rank must.

// BcastLinear is the basic linear broadcast: the root sends the full
// message to every other rank, one after another. No parameters.
func BcastLinear(b *sim.Builder, topo netmodel.Topology, m int64, _ Params) {
	p := topo.P()
	for r := 1; r < p; r++ {
		b.Send(Root, r, m, pay1(b, 0, 1)...)
		b.Recv(r, Root, m)
	}
}

// BcastChain is the chain (multi-chain pipeline) broadcast: the non-root
// ranks are split into Fanout contiguous chains; segments flow down each
// chain, every rank forwarding each segment to its successor. Parameters:
// Seg (segment size) and Fanout (number of chains, >= 1).
func BcastChain(b *sim.Builder, topo netmodel.Topology, m int64, prm Params) {
	p := topo.P()
	if p <= 1 {
		return
	}
	nchains := prm.Fanout
	if nchains < 1 {
		nchains = 1
	}
	if nchains > p-1 {
		nchains = p - 1
	}
	segs := segSizes(m, prm.Seg)

	// Contiguous chain split of ranks 1..p-1 (block placement keeps chain
	// neighbours on the same node where possible).
	members := p - 1
	base := members / nchains
	rem := members % nchains
	start := 1
	heads := make([]int, nchains)
	next := make([]int, p) // successor in chain; -1 for tail
	prev := make([]int, p) // predecessor; Root for heads
	for i := range next {
		next[i] = -1
		prev[i] = -1
	}
	for c := 0; c < nchains; c++ {
		length := base
		if c < rem {
			length++
		}
		heads[c] = start
		prev[start] = Root
		for i := 0; i < length-1; i++ {
			next[start+i] = start + i + 1
			prev[start+i+1] = start + i
		}
		start += length
	}

	b.Reserve(2 * len(segs))
	for s, sz := range segs {
		blk := int32(s)
		// Root injects segment s into every chain.
		for _, h := range heads {
			b.Send(Root, h, sz, pay1(b, blk, 1)...)
		}
		// Chain members receive and forward.
		for r := 1; r < p; r++ {
			b.Recv(r, prev[r], sz)
			if next[r] >= 0 {
				b.Send(r, next[r], sz, pay1(b, blk, 1)...)
			}
		}
	}
}

// BcastPipeline is the single-chain pipelined broadcast. Parameter: Seg.
func BcastPipeline(b *sim.Builder, topo netmodel.Topology, m int64, prm Params) {
	BcastChain(b, topo, m, Params{Seg: prm.Seg, Fanout: 1})
}

// bcastTree emits a segmented pipelined broadcast down the given tree:
// for each segment, every rank receives it from its parent and forwards it
// to its children (largest subtree first).
func bcastTree(b *sim.Builder, t tree, m int64, seg int64) {
	p := len(t.parent)
	if p <= 1 {
		return
	}
	segs := segSizes(m, seg)
	b.Reserve(3 * len(segs))
	for s, sz := range segs {
		blk := int32(s)
		for r := 0; r < p; r++ {
			if t.parent[r] >= 0 {
				b.Recv(r, t.parent[r], sz)
			}
			for _, c := range t.children[r] {
				b.Send(r, c, sz, pay1(b, blk, 1)...)
			}
		}
	}
}

// BcastBinomial is the segmented binomial-tree broadcast. Parameter: Seg.
func BcastBinomial(b *sim.Builder, topo netmodel.Topology, m int64, prm Params) {
	bcastTree(b, knomialTree(topo.P(), 2), m, prm.Seg)
}

// BcastKnomial is the k-nomial-tree broadcast. Parameters: Fanout (radix,
// >= 2) and Seg.
func BcastKnomial(b *sim.Builder, topo netmodel.Topology, m int64, prm Params) {
	radix := prm.Fanout
	if radix < 2 {
		radix = 2
	}
	bcastTree(b, knomialTree(topo.P(), radix), m, prm.Seg)
}

// BcastBinary is the segmented binary-tree broadcast. Parameter: Seg.
func BcastBinary(b *sim.Builder, topo netmodel.Topology, m int64, prm Params) {
	bcastTree(b, binaryTree(topo.P()), m, prm.Seg)
}

// BcastSplitBinary is the split binary-tree broadcast: the message is split
// in two halves; the root pipelines the first half down its left subtree and
// the second half down its right subtree; afterwards ranks from the two
// subtrees pair up and exchange their halves. Parameter: Seg.
func BcastSplitBinary(b *sim.Builder, topo netmodel.Topology, m int64, prm Params) {
	p := topo.P()
	if p <= 1 {
		return
	}
	t := binaryTree(p)
	if p == 2 {
		// Degenerate: plain pipelined send.
		bcastTree(b, t, m, prm.Seg)
		return
	}
	mA := (m + 1) / 2
	mB := m - mA
	// Halves as verification blocks: block 0 = first half, 1 = second.
	segsA := segSizes(mA, prm.Seg)
	segsB := segSizes(mB, prm.Seg)

	// Subtree membership: ranks under child 1 get half A, under child 2
	// half B.
	side := make([]int, p) // 0 root, 1 = A, 2 = B
	var mark func(r, s int)
	mark = func(r, s int) {
		side[r] = s
		for _, c := range t.children[r] {
			mark(c, s)
		}
	}
	mark(1, 1)
	if p > 2 {
		mark(2, 2)
	}

	// Phase 1: pipeline half A down subtree 1 and half B down subtree 2.
	// Interleave the two pipelines segment by segment at the root.
	maxSegs := len(segsA)
	if len(segsB) > maxSegs {
		maxSegs = len(segsB)
	}
	for s := 0; s < maxSegs; s++ {
		if s < len(segsA) {
			b.Send(Root, 1, segsA[s], pay1(b, 0, 1)...)
		}
		if s < len(segsB) && p > 2 {
			b.Send(Root, 2, segsB[s], pay1(b, 1, 1)...)
		}
	}
	for r := 1; r < p; r++ {
		segs, blk := segsA, int32(0)
		if side[r] == 2 {
			segs, blk = segsB, int32(1)
		}
		for _, sz := range segs {
			b.Recv(r, t.parent[r], sz)
			for _, c := range t.children[r] {
				b.Send(r, c, sz, pay1(b, blk, 1)...)
			}
		}
	}

	// Phase 2: pair ranks across the two subtrees to exchange halves.
	var as, bs []int
	for r := 1; r < p; r++ {
		if side[r] == 1 {
			as = append(as, r)
		} else {
			bs = append(bs, r)
		}
	}
	n := len(as)
	if len(bs) < n {
		n = len(bs)
	}
	for i := 0; i < n; i++ {
		ra, rb := as[i], bs[i]
		// ra holds A, needs B; rb holds B, needs A. rb receives first,
		// then replies: deadlock-free with blocking sends.
		b.Send(ra, rb, mA, pay1(b, 0, 1)...)
		b.Recv(rb, ra, mA)
		b.Send(rb, ra, mB, pay1(b, 1, 1)...)
		b.Recv(ra, rb, mB)
	}
	// Unpaired leftovers get their missing half straight from the root.
	for i := n; i < len(as); i++ {
		b.Send(Root, as[i], mB, pay1(b, 1, 1)...)
		b.Recv(as[i], Root, mB)
	}
	for i := n; i < len(bs); i++ {
		b.Send(Root, bs[i], mA, pay1(b, 0, 1)...)
		b.Recv(bs[i], Root, mA)
	}
}

// scatterBinomial emits a binomial scatter of the p chunks (chunk r for
// rank r): each parent sends a child the contiguous chunk range of the
// child's subtree. Verification blocks are chunk indices.
func scatterBinomial(b *sim.Builder, p int, chunks []int64) {
	t := knomialTree(p, 2)
	for r := 0; r < p; r++ {
		if t.parent[r] >= 0 {
			b.Recv(r, t.parent[r], sumRange(chunks, r, r+t.span[r]))
		}
		for _, c := range t.children[r] {
			bytes := sumRange(chunks, c, c+t.span[c])
			var pay []sim.PayUnit
			if b.Verify() {
				for i := c; i < c+t.span[c]; i++ {
					pay = append(pay, sim.PayUnit{Block: int32(i), Mask: 1})
				}
			}
			b.Send(r, c, bytes, pay...)
		}
	}
}

// BcastScatterAllgather is the "scatter + recursive-doubling allgather"
// broadcast: a binomial scatter distributes chunk r to rank r, then a
// recursive-doubling allgather (with the standard non-power-of-two
// pre/post exchange) reassembles the full message everywhere. This is
// algorithm 8 of Open MPI 4.0.2's broadcast, the one the paper found buggy;
// our implementation is correct, and the library profile mirrors the
// paper by excluding it from the tuning search space.
func BcastScatterAllgather(b *sim.Builder, topo netmodel.Topology, m int64, _ Params) {
	p := topo.P()
	if p <= 1 {
		return
	}
	chunks := chunkSizes(m, p)
	scatterBinomial(b, p, chunks)

	// Non-power-of-two handling: the last p-p2 ranks ("extras") hand their
	// chunk to a partner in [0, p2), then receive the full result.
	p2 := 1
	for p2*2 <= p {
		p2 *= 2
	}
	extras := p - p2

	held := make([][]int, p) // chunk indices currently held per rank
	for r := 0; r < p; r++ {
		held[r] = []int{r}
	}
	payFor := func(r int) []sim.PayUnit {
		if !b.Verify() {
			return nil
		}
		pay := make([]sim.PayUnit, 0, len(held[r]))
		for _, c := range held[r] {
			pay = append(pay, sim.PayUnit{Block: int32(c), Mask: 1})
		}
		return pay
	}
	bytesOf := func(r int) int64 {
		var s int64
		for _, c := range held[r] {
			s += chunks[c]
		}
		return s
	}

	for e := 0; e < extras; e++ {
		src, dst := p2+e, e
		b.Send(src, dst, bytesOf(src), payFor(src)...)
		b.Recv(dst, src, bytesOf(src))
		held[dst] = append(held[dst], held[src]...)
	}

	// Recursive doubling over ranks [0, p2).
	for dist := 1; dist < p2; dist *= 2 {
		// Snapshot holdings: exchanges within a round are concurrent.
		sendBytes := make([]int64, p2)
		sendPay := make([][]sim.PayUnit, p2)
		for r := 0; r < p2; r++ {
			sendBytes[r] = bytesOf(r)
			sendPay[r] = payFor(r)
		}
		for r := 0; r < p2; r++ {
			partner := r ^ dist
			b.SendRecv(r, partner, sendBytes[r], partner, sendBytes[partner], sendPay[r]...)
		}
		newHeld := make([][]int, p2)
		for r := 0; r < p2; r++ {
			partner := r ^ dist
			newHeld[r] = append(append([]int{}, held[r]...), held[partner]...)
		}
		for r := 0; r < p2; r++ {
			held[r] = newHeld[r]
		}
	}

	// Extras receive the fully assembled message from their partner.
	if extras > 0 {
		fullPay := func() []sim.PayUnit {
			if !b.Verify() {
				return nil
			}
			pay := make([]sim.PayUnit, p)
			for i := range pay {
				pay[i] = sim.PayUnit{Block: int32(i), Mask: 1}
			}
			return pay
		}
		for e := 0; e < extras; e++ {
			src, dst := e, p2+e
			b.Send(src, dst, m, fullPay()...)
			b.Recv(dst, src, m)
		}
	}
}

// BcastScatterRingAllgather is the "scatter + ring allgather" broadcast:
// binomial scatter followed by a p-1 step ring allgather, the
// bandwidth-optimal broadcast for very large messages.
func BcastScatterRingAllgather(b *sim.Builder, topo netmodel.Topology, m int64, _ Params) {
	p := topo.P()
	if p <= 1 {
		return
	}
	chunks := chunkSizes(m, p)
	scatterBinomial(b, p, chunks)
	// Ring allgather: at step s, rank r sends chunk (r-s mod p) to r+1 and
	// receives chunk (r-1-s mod p) from r-1.
	for s := 0; s < p-1; s++ {
		for r := 0; r < p; r++ {
			sendChunk := ((r-s)%p + p) % p
			recvChunk := ((r-1-s)%p + p) % p
			b.SendRecv(r, (r+1)%p, chunks[sendChunk], (r-1+p)%p, chunks[recvChunk],
				pay1(b, int32(sendChunk), 1)...)
		}
	}
}

// BcastDoubleTree is the double binary tree broadcast: two binary trees — a
// primary rooted at rank 0 and a mirrored one rooted at rank p-1 — each
// pipeline one half of the message, so every link carries roughly half the
// total volume. The root first ships the second half to the mirror root.
// Parameter: Seg.
func BcastDoubleTree(b *sim.Builder, topo netmodel.Topology, m int64, prm Params) {
	p := topo.P()
	if p <= 2 {
		BcastBinomial(b, topo, m, prm)
		return
	}
	mA := (m + 1) / 2
	mB := m - mA
	t1 := binaryTree(p)
	// Mirror tree: rank r plays role p-1-r in a binary tree rooted at 0.
	mirror := func(r int) int { return p - 1 - r }

	// Hand half B to the mirror root.
	b.Send(Root, mirror(Root), mB, pay1(b, 1, 1)...)
	b.Recv(mirror(Root), Root, mB)

	segsA := segSizes(mA, prm.Seg)
	segsB := segSizes(mB, prm.Seg)
	steps := len(segsA)
	if len(segsB) > steps {
		steps = len(segsB)
	}
	for s := 0; s < steps; s++ {
		// Tree 1 moves segment s of half A; tree 2 moves segment s of
		// half B. Per rank, tree-1 ops precede tree-2 ops within a step,
		// giving a consistent order across ranks (both trees are DAGs).
		for r := 0; r < p; r++ {
			if s < len(segsA) {
				if t1.parent[r] >= 0 {
					b.Recv(r, t1.parent[r], segsA[s])
				}
				for _, c := range t1.children[r] {
					b.Send(r, c, segsA[s], pay1(b, 0, 1)...)
				}
			}
			if s < len(segsB) {
				role := mirror(r)
				if t1.parent[role] >= 0 {
					b.Recv(r, mirror(t1.parent[role]), segsB[s])
				}
				for _, c := range t1.children[role] {
					b.Send(r, mirror(c), segsB[s], pay1(b, 1, 1)...)
				}
			}
		}
	}
}

// BcastHierarchical is the topology-aware two-level broadcast: an inter-node
// broadcast over the node leaders (binomial, or k-nomial with the given
// Fanout) followed by an intra-node broadcast on every node (binomial over
// the node's ranks). Parameter: Seg segments both levels; Fanout sets the
// inter-node radix (0/2 = binomial).
func BcastHierarchical(b *sim.Builder, topo netmodel.Topology, m int64, prm Params) {
	p := topo.P()
	if p <= 1 {
		return
	}
	leaders, _ := leadersOf(topo)
	radix := prm.Fanout
	if radix < 2 {
		radix = 2
	}
	segs := segSizes(m, prm.Seg)

	// Inter-node phase over leader ranks (leader i = leaders[i]).
	lt := knomialTree(len(leaders), radix)
	for s, sz := range segs {
		blk := int32(s)
		for li, lr := range leaders {
			if lt.parent[li] >= 0 {
				b.Recv(lr, leaders[lt.parent[li]], sz)
			}
			for _, c := range lt.children[li] {
				b.Send(lr, leaders[c], sz, pay1(b, blk, 1)...)
			}
		}
	}

	// Intra-node phase: leader binomial-broadcasts within its node (the
	// member lists make this correct under any rank placement).
	members := nodeMembers(topo)
	nt := knomialTree(topo.PPN, 2)
	for s, sz := range segs {
		blk := int32(s)
		for node := 0; node < topo.Nodes; node++ {
			ms := members[node]
			for lr := 0; lr < len(ms); lr++ {
				r := ms[lr]
				if nt.parent[lr] >= 0 {
					b.Recv(r, ms[nt.parent[lr]], sz)
				}
				for _, c := range nt.children[lr] {
					b.Send(r, ms[c], sz, pay1(b, blk, 1)...)
				}
			}
		}
	}
}
