package coll

import (
	"testing"

	"mpicollpred/internal/machine"
	"mpicollpred/internal/netmodel"
	"mpicollpred/internal/sim"
)

// These tests pin down the qualitative performance landscape the paper's
// selection problem lives on: which algorithm family wins in which regime.
// If the simulated cost surfaces lost these crossovers, the selection
// problem would degenerate and the reproduction would be meaningless.

func simTime(t *testing.T, g Generator, prm Params, topo netmodel.Topology, m int64) float64 {
	t.Helper()
	b := sim.NewBuilder(topo.P(), false)
	g(b, topo, m, prm)
	model := netmodel.New(machine.Hydra().Net, topo, 1, false)
	res, err := sim.NewEngine().Run(b.Build(), model, nil, nil)
	if err != nil {
		t.Fatalf("%v", err)
	}
	return res.Time
}

func TestBinomialBeatsLinearForSmallMessagesManyRanks(t *testing.T) {
	topo := netmodel.Topology{Nodes: 16, PPN: 4}
	lin := simTime(t, BcastLinear, Params{}, topo, 64)
	bin := simTime(t, BcastBinomial, Params{}, topo, 64)
	// O(log p) rounds vs O(p) sequential sends; the sender-side overhead of
	// an eager send is small, so the advantage is ~2x at p=64, not p/log p.
	if bin >= lin*2/3 {
		t.Errorf("binomial (%.3g) should clearly beat linear (%.3g) for 64B on 64 ranks", bin, lin)
	}
}

func TestPipelineBeatsBinomialForHugeMessages(t *testing.T) {
	topo := netmodel.Topology{Nodes: 16, PPN: 1}
	bin := simTime(t, BcastBinomial, Params{}, topo, 4<<20)
	pipe := simTime(t, BcastPipeline, Params{Seg: 64 << 10}, topo, 4<<20)
	if pipe >= bin {
		t.Errorf("segmented pipeline (%.3g) should beat unsegmented binomial (%.3g) at 4MB", pipe, bin)
	}
}

func TestBinomialBeatsPipelineForSmallMessages(t *testing.T) {
	topo := netmodel.Topology{Nodes: 16, PPN: 1}
	bin := simTime(t, BcastBinomial, Params{}, topo, 64)
	pipe := simTime(t, BcastPipeline, Params{Seg: 64 << 10}, topo, 64)
	if bin >= pipe {
		t.Errorf("binomial (%.3g) should beat the chain pipeline (%.3g) at 64B", bin, pipe)
	}
}

func TestSegmentSizeTradeoffExists(t *testing.T) {
	// Tiny segments pay per-message latency; huge segments lose
	// pipelining: a middle segment size should beat both extremes for a
	// long chain, the effect behind the paper's Fig. 2.
	topo := netmodel.Topology{Nodes: 24, PPN: 1}
	const m = 4 << 20
	small := simTime(t, BcastPipeline, Params{Seg: 256}, topo, m)
	mid := simTime(t, BcastPipeline, Params{Seg: 16 << 10}, topo, m)
	large := simTime(t, BcastPipeline, Params{Seg: 0}, topo, m) // unsegmented
	if !(mid < small && mid < large) {
		t.Errorf("no interior optimum: seg256=%.3g seg16K=%.3g unseg=%.3g", small, mid, large)
	}
}

func TestRingBeatsRecursiveDoublingForLargeAllreduce(t *testing.T) {
	topo := netmodel.Topology{Nodes: 16, PPN: 1}
	rd := simTime(t, AllreduceRecursiveDoubling, Params{}, topo, 4<<20)
	ring := simTime(t, AllreduceRing, Params{}, topo, 4<<20)
	if ring >= rd {
		t.Errorf("ring (%.3g) should beat recursive doubling (%.3g) at 4MB", ring, rd)
	}
}

func TestRecursiveDoublingBeatsRingForSmallAllreduce(t *testing.T) {
	topo := netmodel.Topology{Nodes: 16, PPN: 1}
	rd := simTime(t, AllreduceRecursiveDoubling, Params{}, topo, 16)
	ring := simTime(t, AllreduceRing, Params{}, topo, 16)
	if rd >= ring {
		t.Errorf("recursive doubling (%.3g) should beat ring (%.3g) at 16B", rd, ring)
	}
}

func TestHierarchicalAllreduceWinsAtHighPPN(t *testing.T) {
	// With 32 processes per node, flat recursive doubling floods the NICs;
	// the two-level scheme sends one stream per node.
	topo := netmodel.Topology{Nodes: 8, PPN: 32}
	flat := simTime(t, AllreduceRecursiveDoubling, Params{}, topo, 64<<10)
	hier := simTime(t, AllreduceHierarchical, Params{}, topo, 64<<10)
	if hier >= flat {
		t.Errorf("hierarchical (%.3g) should beat flat recursive doubling (%.3g) at ppn=32", hier, flat)
	}
}

func TestBruckBeatsPairwiseForTinyAlltoall(t *testing.T) {
	topo := netmodel.Topology{Nodes: 16, PPN: 2}
	bruck := simTime(t, AlltoallBruck, Params{}, topo, 8)
	pw := simTime(t, AlltoallPairwise, Params{}, topo, 8)
	if bruck >= pw {
		t.Errorf("bruck (%.3g) should beat pairwise (%.3g) for 8B alltoall", bruck, pw)
	}
}

func TestPairwiseBeatsBruckForLargeAlltoall(t *testing.T) {
	topo := netmodel.Topology{Nodes: 16, PPN: 2}
	bruck := simTime(t, AlltoallBruck, Params{}, topo, 64<<10)
	pw := simTime(t, AlltoallPairwise, Params{}, topo, 64<<10)
	if pw >= bruck {
		t.Errorf("pairwise (%.3g) should beat bruck (%.3g) for 64KB alltoall", pw, bruck)
	}
}

func TestPlacementChangesChainCost(t *testing.T) {
	// With block placement a chain broadcast walks mostly on-node; cyclic
	// placement turns every hop into a network message. The paper lists
	// process placement among the factors that shape algorithm selection.
	block := netmodel.Topology{Nodes: 4, PPN: 8}
	cyclic := netmodel.Topology{Nodes: 4, PPN: 8, Cyclic: true}
	tBlock := simTime(t, BcastPipeline, Params{Seg: 16 << 10}, block, 1<<20)
	tCyclic := simTime(t, BcastPipeline, Params{Seg: 16 << 10}, cyclic, 1<<20)
	if tCyclic <= tBlock {
		t.Errorf("cyclic placement (%.3g) should slow the chain vs block placement (%.3g)", tCyclic, tBlock)
	}
}

func TestHierarchicalUnaffectedByPlacementSemantics(t *testing.T) {
	// The two-level allreduce adapts its member lists to the placement;
	// both placements must complete and give comparable (not wildly
	// different) times because only one stream per node hits the network.
	block := netmodel.Topology{Nodes: 4, PPN: 8}
	cyclic := netmodel.Topology{Nodes: 4, PPN: 8, Cyclic: true}
	tBlock := simTime(t, AllreduceHierarchical, Params{}, block, 1<<16)
	tCyclic := simTime(t, AllreduceHierarchical, Params{}, cyclic, 1<<16)
	ratio := tCyclic / tBlock
	if ratio < 0.5 || ratio > 2 {
		t.Errorf("hierarchical allreduce placement ratio %.2f out of band (%.3g vs %.3g)",
			ratio, tCyclic, tBlock)
	}
}

func TestMachinesRankAlgorithmsDifferently(t *testing.T) {
	// The whole premise of machine-specific tuning: the same two
	// configurations can rank differently on Hydra (fat network) and
	// Jupiter (thin network). Scan a few instances to find at least one
	// disagreement between the machines' winners.
	run := func(net netmodel.Params, g Generator, prm Params, topo netmodel.Topology, m int64) float64 {
		b := sim.NewBuilder(topo.P(), false)
		g(b, topo, m, prm)
		model := netmodel.New(net, topo, 1, false)
		res, err := sim.NewEngine().Run(b.Build(), model, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		return res.Time
	}
	type cand struct {
		g   Generator
		prm Params
	}
	cands := []cand{
		{BcastBinomial, Params{}},
		{BcastPipeline, Params{Seg: 16 << 10}},
		{BcastChain, Params{Seg: 64 << 10, Fanout: 4}},
		{BcastScatterRingAllgather, Params{}},
	}
	hydra, jupiter := machine.Hydra().Net, machine.Jupiter().Net
	disagreements := 0
	for _, m := range []int64{16 << 10, 256 << 10, 4 << 20} {
		for _, topo := range []netmodel.Topology{{Nodes: 8, PPN: 4}, {Nodes: 16, PPN: 8}} {
			bestH, bestJ := -1, -1
			var tH, tJ float64
			for i, cd := range cands {
				h := run(hydra, cd.g, cd.prm, topo, m)
				j := run(jupiter, cd.g, cd.prm, topo, m)
				if bestH < 0 || h < tH {
					bestH, tH = i, h
				}
				if bestJ < 0 || j < tJ {
					bestJ, tJ = i, j
				}
			}
			if bestH != bestJ {
				disagreements++
			}
		}
	}
	if disagreements == 0 {
		t.Error("Hydra and Jupiter agree on every winner; machine-specific tuning would be pointless")
	}
}
