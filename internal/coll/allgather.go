package coll

import (
	"mpicollpred/internal/netmodel"
	"mpicollpred/internal/sim"
)

// Allgather verification convention: m is each rank's contribution size;
// block id = source rank, mask 1. Rank r initially holds block r; at the
// end every rank must hold every block. Allgather is not one of the paper's
// benchmarked collectives but completes the library portfolios.

// AllgatherRing is the p-1 step ring allgather. No parameters.
func AllgatherRing(b *sim.Builder, topo netmodel.Topology, m int64, _ Params) {
	p := topo.P()
	if p <= 1 {
		return
	}
	b.Reserve(2 * (p - 1))
	for s := 0; s < p-1; s++ {
		for r := 0; r < p; r++ {
			blk := (((r - s) % p) + p) % p
			b.SendRecv(r, (r+1)%p, m, (r-1+p)%p, m, pay1(b, int32(blk), 1)...)
		}
	}
}

// AllgatherRecursiveDoubling doubles the gathered range each round; the
// non-power-of-two pre/post phase folds the extra ranks in and out. No
// parameters.
func AllgatherRecursiveDoubling(b *sim.Builder, topo netmodel.Topology, m int64, _ Params) {
	p := topo.P()
	if p <= 1 {
		return
	}
	p2 := 1
	for p2*2 <= p {
		p2 *= 2
	}
	extras := p - p2

	held := make([][]int, p)
	for r := 0; r < p; r++ {
		held[r] = []int{r}
	}
	payFor := func(r int) []sim.PayUnit {
		if !b.Verify() {
			return nil
		}
		pay := make([]sim.PayUnit, 0, len(held[r]))
		for _, c := range held[r] {
			pay = append(pay, sim.PayUnit{Block: int32(c), Mask: 1})
		}
		return pay
	}
	// Pre-phase: extras hand their block to their partner in [0, p2).
	for e := 0; e < extras; e++ {
		src, dst := p2+e, e
		b.Send(src, dst, m, payFor(src)...)
		b.Recv(dst, src, m)
		held[dst] = append(held[dst], src)
	}
	// Doubling over [0, p2).
	for dist := 1; dist < p2; dist *= 2 {
		bytes := make([]int64, p2)
		pays := make([][]sim.PayUnit, p2)
		for r := 0; r < p2; r++ {
			bytes[r] = int64(len(held[r])) * m
			pays[r] = payFor(r)
		}
		for r := 0; r < p2; r++ {
			partner := r ^ dist
			b.SendRecv(r, partner, bytes[r], partner, bytes[partner], pays[r]...)
		}
		newHeld := make([][]int, p2)
		for r := 0; r < p2; r++ {
			partner := r ^ dist
			newHeld[r] = append(append([]int{}, held[r]...), held[partner]...)
		}
		for r := 0; r < p2; r++ {
			held[r] = newHeld[r]
		}
	}
	// Post-phase: partners return the full result to the extras.
	if extras > 0 {
		var fullPay []sim.PayUnit
		if b.Verify() {
			fullPay = make([]sim.PayUnit, p)
			for i := range fullPay {
				fullPay[i] = sim.PayUnit{Block: int32(i), Mask: 1}
			}
		}
		for e := 0; e < extras; e++ {
			b.Send(e, p2+e, int64(p)*m, fullPay...)
			b.Recv(p2+e, e, int64(p)*m)
		}
	}
}

// AllgatherBruck gathers in ceil(log2 p) rounds by shifting accumulated
// block runs to rank-2^k neighbours; works for any p. No parameters.
func AllgatherBruck(b *sim.Builder, topo netmodel.Topology, m int64, _ Params) {
	p := topo.P()
	if p <= 1 {
		return
	}
	// After round k, rank r holds blocks (r, r+1, ..., r+cnt-1) mod p.
	cnt := 1
	for dist := 1; dist < p; dist *= 2 {
		send := cnt
		if send > p-cnt {
			send = p - cnt
		}
		for r := 0; r < p; r++ {
			dst := (r - dist + p) % p
			src := (r + dist) % p
			var pay []sim.PayUnit
			if b.Verify() {
				for i := 0; i < send; i++ {
					pay = append(pay, sim.PayUnit{Block: int32((r + i) % p), Mask: 1})
				}
			}
			b.SendRecv(r, dst, int64(send)*m, src, int64(send)*m, pay...)
		}
		cnt += send
	}
}

// AllgatherLinear has every rank send its block to every other rank
// directly (p*(p-1) messages). No parameters.
func AllgatherLinear(b *sim.Builder, topo netmodel.Topology, m int64, _ Params) {
	p := topo.P()
	if p <= 1 {
		return
	}
	b.Reserve(2 * (p - 1))
	for r := 0; r < p; r++ {
		for i := 1; i < p; i++ {
			b.SendNB(r, (r+i)%p, m, pay1(b, int32(r), 1)...)
		}
		for i := 1; i < p; i++ {
			b.Recv(r, (r-i+p)%p, m)
		}
	}
}

// AllgatherNeighborExchange is the neighbor-exchange allgather (even p
// only; falls back to ring otherwise): pairs exchange growing runs with
// alternating left/right neighbours in p/2 steps.
func AllgatherNeighborExchange(b *sim.Builder, topo netmodel.Topology, m int64, _ Params) {
	p := topo.P()
	if p <= 1 {
		return
	}
	if p%2 != 0 || p == 2 {
		AllgatherRing(b, topo, m, Params{})
		return
	}
	// Block bookkeeping per rank: the contiguous run (start, count) mod p
	// currently held. Implemented with explicit sets to stay obviously
	// correct (verification mode exercises it fully).
	held := make([][]int, p)
	for r := range held {
		held[r] = []int{r}
	}
	payOf := func(blocks []int) []sim.PayUnit {
		if !b.Verify() {
			return nil
		}
		pay := make([]sim.PayUnit, len(blocks))
		for i, blk := range blocks {
			pay[i] = sim.PayUnit{Block: int32(blk), Mask: 1}
		}
		return pay
	}
	// partner alternates between the two ring neighbours: even steps pair
	// (0,1)(2,3)... and odd steps pair (1,2)(3,4)...(p-1,0).
	partner := func(r, s int) int {
		if s%2 == 0 {
			return r ^ 1
		}
		if r%2 == 1 {
			return (r + 1) % p
		}
		return (r - 1 + p) % p
	}

	// Step 0: exchange own block with the first partner.
	snap := make([][]int, p)
	for r := 0; r < p; r++ {
		b.SendRecv(r, partner(r, 0), m, partner(r, 0), m, payOf(held[r])...)
	}
	for r := range held {
		snap[r] = append([]int(nil), held[r]...)
	}
	for r := 0; r < p; r++ {
		held[r] = append(held[r], snap[partner(r, 0)]...)
	}
	// Steps 1..p/2-1: forward the two blocks gained in the previous step
	// to the other neighbour.
	for s := 1; s < p/2; s++ {
		for r := range held {
			snap[r] = append(snap[r][:0], held[r]...)
		}
		for r := 0; r < p; r++ {
			gained := snap[r][len(snap[r])-2:]
			b.SendRecv(r, partner(r, s), 2*m, partner(r, s), 2*m, payOf(gained)...)
		}
		for r := 0; r < p; r++ {
			ps := snap[partner(r, s)]
			held[r] = append(held[r], ps[len(ps)-2:]...)
		}
	}
}
