package mpilib

import (
	"fmt"

	"mpicollpred/internal/coll"
	"mpicollpred/internal/machine"
	"mpicollpred/internal/netmodel"
	"mpicollpred/internal/sim"
)

// IntelMPI returns the Intel MPI 2019-like library profile. Its default
// decision logic consults a tuning table computed by exhaustively evaluating
// the portfolio on the machine's reference system (the simulated stand-in
// for Intel's factory mpitune tables) — which is why the paper finds the
// Intel defaults already near-optimal.
func IntelMPI() *Library {
	return &Library{
		Name:    "Intel MPI",
		Version: "2019",
		collectives: map[string]*CollectiveSet{
			Bcast:     intelBcast(),
			Allreduce: intelAllreduce(),
			Alltoall:  intelAlltoall(),
			Reduce:    intelReduce(),
			Allgather: intelAllgather(),
			Gather:    intelGather(),
			Scatter:   intelScatter(),
		},
	}
}

// tunedDecide returns a decision function that picks the configuration with
// the smallest noise-free simulated runtime on the machine's reference
// network (memoized by the caller via CollectiveSet.Decide).
func tunedDecide(s *CollectiveSet) func(machine.Machine, netmodel.Topology, int64) int {
	return func(mach machine.Machine, topo netmodel.Topology, m int64) int {
		eng := sim.NewEngine()
		bestID, bestT := 0, 0.0
		for _, c := range s.Selectable() {
			t, err := SimulateOnce(eng, c, mach.RefNet, topo, m, 1, false)
			if err != nil {
				continue // a failing schedule cannot be the default
			}
			if bestID == 0 || t < bestT {
				bestID, bestT = c.ID, t
			}
		}
		if bestID == 0 {
			bestID = 1
		}
		return bestID
	}
}

// intelBcast provides 12 broadcast algorithms (Intel MPI 2019 exposes its
// bcast portfolio through I_MPI_ADJUST_BCAST=1..14; we model 12 of them):
// 1 linear, 2 binomial, 3 knomial(4), 4 knomial(8), 5 pipeline, 6 chain,
// 7 split_binary, 8 binary, 9 double_tree, 10 scatter_allgather,
// 11 scatter_ring_allgather, 12 topology_aware (two-level).
func intelBcast() *CollectiveSet {
	s := &CollectiveSet{Coll: Bcast, NumAlgs: 12}
	add := func(algID int, name string, g coll.Generator, prm coll.Params) {
		s.Configs = append(s.Configs, Config{
			ID: len(s.Configs) + 1, AlgID: algID, Name: name, Params: prm, Gen: g,
		})
	}
	add(1, "linear", coll.BcastLinear, coll.Params{})
	add(2, "binomial", coll.BcastBinomial, coll.Params{})
	add(3, "knomial", coll.BcastKnomial, coll.Params{Fanout: 4})
	add(4, "knomial", coll.BcastKnomial, coll.Params{Fanout: 8})
	for _, seg := range []int64{4 << 10, 16 << 10, 64 << 10} {
		add(5, "pipeline", coll.BcastPipeline, coll.Params{Seg: seg})
	}
	for _, seg := range []int64{4 << 10, 16 << 10, 64 << 10} {
		add(6, "chain", coll.BcastChain, coll.Params{Seg: seg, Fanout: 4})
	}
	add(7, "split_binary", coll.BcastSplitBinary, coll.Params{Seg: 8 << 10})
	add(8, "binary", coll.BcastBinary, coll.Params{Seg: 8 << 10})
	add(9, "double_tree", coll.BcastDoubleTree, coll.Params{Seg: 16 << 10})
	add(10, "scatter_allgather", coll.BcastScatterAllgather, coll.Params{})
	add(11, "scatter_ring_allgather", coll.BcastScatterRingAllgather, coll.Params{})
	for _, radix := range []int{2, 4} {
		add(12, "topology_aware", coll.BcastHierarchical, coll.Params{Seg: 16 << 10, Fanout: radix})
	}
	s.decide = tunedDecide(s)
	return s
}

// intelAllreduce provides 16 allreduce algorithms (I_MPI_ADJUST_ALLREDUCE
// exposes a comparable portfolio): exchange-based, ring-based, tree-based
// and SHM/topology-aware two-level schemes.
func intelAllreduce() *CollectiveSet {
	s := &CollectiveSet{Coll: Allreduce, NumAlgs: 16}
	add := func(algID int, name string, g coll.Generator, prm coll.Params) {
		s.Configs = append(s.Configs, Config{
			ID: len(s.Configs) + 1, AlgID: algID, Name: name, Params: prm, Gen: g,
		})
	}
	add(1, "recursive_doubling", coll.AllreduceRecursiveDoubling, coll.Params{})
	add(2, "rabenseifner", coll.AllreduceRabenseifner, coll.Params{})
	add(3, "reduce_bcast", coll.AllreduceNonoverlapping, coll.Params{})
	add(4, "ring", coll.AllreduceRing, coll.Params{})
	add(5, "segmented_ring", coll.AllreduceSegmentedRing, coll.Params{Seg: 1 << 10})
	add(6, "segmented_ring", coll.AllreduceSegmentedRing, coll.Params{Seg: 4 << 10})
	add(7, "segmented_ring", coll.AllreduceSegmentedRing, coll.Params{Seg: 16 << 10})
	add(8, "segmented_ring", coll.AllreduceSegmentedRing, coll.Params{Seg: 64 << 10})
	add(9, "segmented_ring", coll.AllreduceSegmentedRing, coll.Params{Seg: 128 << 10})
	add(10, "knomial", coll.AllreduceKnomial, coll.Params{Fanout: 4})
	add(11, "knomial", coll.AllreduceKnomial, coll.Params{Fanout: 8})
	add(12, "allgather_reduce", coll.AllreduceAllgatherReduce, coll.Params{})
	add(13, "linear", coll.AllreduceLinear, coll.Params{})
	add(14, "shm_rdoubling", coll.AllreduceHierarchical, coll.Params{})
	add(15, "shm_ring", coll.AllreduceHierarchical, coll.Params{Fanout: 2})
	add(16, "shm_rabenseifner", coll.AllreduceHierarchical, coll.Params{Fanout: 3})
	s.decide = tunedDecide(s)
	return s
}

// intelAlltoall provides 5 alltoall algorithms: 1 bruck, 2 isend_irecv
// (linear), 3 pairwise, 4 plum (windowed spread), 5 topology-aware
// node aggregation.
func intelAlltoall() *CollectiveSet {
	s := &CollectiveSet{Coll: Alltoall, NumAlgs: 5}
	add := func(algID int, name string, g coll.Generator, prm coll.Params) {
		s.Configs = append(s.Configs, Config{
			ID: len(s.Configs) + 1, AlgID: algID, Name: name, Params: prm, Gen: g,
		})
	}
	add(1, "bruck", coll.AlltoallBruck, coll.Params{})
	add(2, "isend_irecv", coll.AlltoallLinear, coll.Params{})
	add(3, "pairwise", coll.AlltoallPairwise, coll.Params{})
	for _, w := range []int{4, 8, 16, 32} {
		add(4, "plum", coll.AlltoallSpread, coll.Params{Fanout: w})
	}
	add(5, "topology_aware", coll.AlltoallHierarchical, coll.Params{})
	s.decide = tunedDecide(s)
	return s
}

// intelReduce: 1 shumilin (linear), 2 binomial, 3 knomial(4), 4 knomial(8),
// 5 pipelined binomial.
func intelReduce() *CollectiveSet {
	s := &CollectiveSet{Coll: Reduce, NumAlgs: 5}
	add := func(algID int, name string, g coll.Generator, prm coll.Params) {
		s.Configs = append(s.Configs, Config{
			ID: len(s.Configs) + 1, AlgID: algID, Name: name, Params: prm, Gen: g,
		})
	}
	add(1, "shumilin", coll.ReduceLinear, coll.Params{})
	add(2, "binomial", coll.ReduceBinomial, coll.Params{})
	add(3, "knomial", coll.ReduceKnomial, coll.Params{Fanout: 4})
	add(4, "knomial", coll.ReduceKnomial, coll.Params{Fanout: 8})
	for _, seg := range []int64{16 << 10, 64 << 10} {
		add(5, "pipelined", coll.ReducePipelined, coll.Params{Seg: seg})
	}
	s.decide = tunedDecide(s)
	return s
}

// intelAllgather: 1 recursive_doubling, 2 bruck, 3 ring, 4 topology-neutral
// linear, 5 neighbor exchange.
func intelAllgather() *CollectiveSet {
	s := &CollectiveSet{Coll: Allgather, NumAlgs: 5}
	add := func(algID int, name string, g coll.Generator, prm coll.Params) {
		s.Configs = append(s.Configs, Config{
			ID: len(s.Configs) + 1, AlgID: algID, Name: name, Params: prm, Gen: g,
		})
	}
	add(1, "recursive_doubling", coll.AllgatherRecursiveDoubling, coll.Params{})
	add(2, "bruck", coll.AllgatherBruck, coll.Params{})
	add(3, "ring", coll.AllgatherRing, coll.Params{})
	add(4, "linear", coll.AllgatherLinear, coll.Params{})
	add(5, "neighbor", coll.AllgatherNeighborExchange, coll.Params{})
	s.decide = tunedDecide(s)
	return s
}

// intelGather: 1 linear, 2 binomial.
func intelGather() *CollectiveSet {
	s := &CollectiveSet{Coll: Gather, NumAlgs: 2}
	s.Configs = []Config{
		{ID: 1, AlgID: 1, Name: "linear", Gen: coll.GatherLinear},
		{ID: 2, AlgID: 2, Name: "binomial", Gen: coll.GatherBinomial},
	}
	s.decide = tunedDecide(s)
	return s
}

// intelScatter: 1 linear, 2 binomial.
func intelScatter() *CollectiveSet {
	s := &CollectiveSet{Coll: Scatter, NumAlgs: 2}
	s.Configs = []Config{
		{ID: 1, AlgID: 1, Name: "linear", Gen: coll.ScatterLinear},
		{ID: 2, AlgID: 2, Name: "binomial", Gen: coll.ScatterBinomial},
	}
	s.decide = tunedDecide(s)
	return s
}

// Libraries returns both library profiles.
func Libraries() []*Library { return []*Library{OpenMPI(), IntelMPI()} }

// ByName returns the named library profile ("Open MPI" or "Intel MPI").
func ByName(name string) (*Library, error) {
	for _, l := range Libraries() {
		if l.Name == name {
			return l, nil
		}
	}
	return nil, fmt.Errorf("mpilib: unknown library %q", name)
}
