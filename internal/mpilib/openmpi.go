package mpilib

import (
	"mpicollpred/internal/coll"
	"mpicollpred/internal/machine"
	"mpicollpred/internal/netmodel"
)

// Segment-size grid used throughout the Open MPI profile; the values match
// the paper ("we tested MPI_Bcast in d1 with the following segment sizes in
// KB: 1, 4, 16, 64, and 128").
var ompiSegs = []int64{1 << 10, 4 << 10, 16 << 10, 64 << 10, 128 << 10}

// OpenMPI returns the Open MPI 4.0.2-like library profile.
func OpenMPI() *Library {
	return &Library{
		Name:    "Open MPI",
		Version: "4.0.2",
		collectives: map[string]*CollectiveSet{
			Bcast:     ompiBcast(),
			Allreduce: ompiAllreduce(),
			Alltoall:  ompiAlltoall(),
			Reduce:    ompiReduce(),
			Allgather: ompiAllgather(),
			Gather:    ompiGather(),
			Scatter:   ompiScatter(),
		},
	}
}

// ompiBcast mirrors Open MPI 4.0.2's nine broadcast algorithms:
// 1 basic_linear, 2 chain, 3 pipeline, 4 split_binary_tree, 5 binary_tree,
// 6 binomial, 7 knomial, 8 scatter_allgather (buggy in 4.0.2 per the paper,
// hence excluded from tuning), 9 scatter_allgather_ring.
func ompiBcast() *CollectiveSet {
	s := &CollectiveSet{Coll: Bcast, NumAlgs: 9}
	add := func(algID int, name string, g coll.Generator, prm coll.Params, excluded bool) {
		s.Configs = append(s.Configs, Config{
			ID: len(s.Configs) + 1, AlgID: algID, Name: name, Params: prm, Gen: g, Excluded: excluded,
		})
	}
	add(1, "basic_linear", coll.BcastLinear, coll.Params{}, false)
	for _, seg := range ompiSegs {
		for _, ch := range []int{2, 4, 8, 16} {
			add(2, "chain", coll.BcastChain, coll.Params{Seg: seg, Fanout: ch}, false)
		}
	}
	for _, seg := range ompiSegs {
		add(3, "pipeline", coll.BcastPipeline, coll.Params{Seg: seg}, false)
	}
	for _, seg := range ompiSegs {
		add(4, "split_binary_tree", coll.BcastSplitBinary, coll.Params{Seg: seg}, false)
	}
	for _, seg := range ompiSegs {
		add(5, "binary_tree", coll.BcastBinary, coll.Params{Seg: seg}, false)
	}
	add(6, "binomial", coll.BcastBinomial, coll.Params{}, false)
	for _, seg := range ompiSegs {
		add(6, "binomial", coll.BcastBinomial, coll.Params{Seg: seg}, false)
	}
	for _, radix := range []int{3, 4, 8} {
		add(7, "knomial", coll.BcastKnomial, coll.Params{Fanout: radix}, false)
	}
	add(8, "scatter_allgather", coll.BcastScatterAllgather, coll.Params{}, true)
	add(9, "scatter_allgather_ring", coll.BcastScatterRingAllgather, coll.Params{}, false)

	// Fixed decision rules in the spirit of coll_tuned_decision_fixed.c:
	// machine-independent thresholds on communicator and message size.
	// They pick sane algorithm families but with parameters frozen long
	// ago on a different machine, so a per-machine tuner retains a clear
	// margin — the situation the paper quantifies.
	s.decide = func(_ machine.Machine, topo netmodel.Topology, m int64) int {
		p := topo.P()
		switch {
		case p < 4:
			if m < 32768 {
				return s.findConfig(1, coll.Params{})
			}
			return s.findConfig(3, coll.Params{Seg: 64 << 10})
		case m < 2048:
			return s.findConfig(6, coll.Params{})
		case m < 16384:
			return s.findConfig(6, coll.Params{Seg: 1 << 10})
		case m < 65536:
			return s.findConfig(4, coll.Params{Seg: 4 << 10})
		case m < 524288:
			return s.findConfig(5, coll.Params{Seg: 16 << 10})
		case p >= 256:
			return s.findConfig(6, coll.Params{Seg: 64 << 10})
		default:
			return s.findConfig(2, coll.Params{Seg: 64 << 10, Fanout: 8})
		}
	}
	return s
}

// ompiAllreduce mirrors Open MPI's allreduce portfolio: 1 basic_linear,
// 2 nonoverlapping (reduce+bcast), 3 recursive_doubling, 4 ring,
// 5 segmented_ring, 6 rabenseifner, 7 allgather_reduce.
func ompiAllreduce() *CollectiveSet {
	s := &CollectiveSet{Coll: Allreduce, NumAlgs: 7}
	add := func(algID int, name string, g coll.Generator, prm coll.Params) {
		s.Configs = append(s.Configs, Config{
			ID: len(s.Configs) + 1, AlgID: algID, Name: name, Params: prm, Gen: g,
		})
	}
	add(1, "basic_linear", coll.AllreduceLinear, coll.Params{})
	add(2, "nonoverlapping", coll.AllreduceNonoverlapping, coll.Params{})
	add(3, "recursive_doubling", coll.AllreduceRecursiveDoubling, coll.Params{})
	add(4, "ring", coll.AllreduceRing, coll.Params{})
	for _, seg := range ompiSegs {
		add(5, "segmented_ring", coll.AllreduceSegmentedRing, coll.Params{Seg: seg})
	}
	add(6, "rabenseifner", coll.AllreduceRabenseifner, coll.Params{})
	add(7, "allgather_reduce", coll.AllreduceAllgatherReduce, coll.Params{})

	s.decide = func(_ machine.Machine, topo netmodel.Topology, m int64) int {
		p := topo.P()
		switch {
		case p < 4:
			if m < 65536 {
				return s.findConfig(3, coll.Params{})
			}
			return s.findConfig(4, coll.Params{})
		case m < 32768:
			return s.findConfig(3, coll.Params{})
		case m < 524288:
			return s.findConfig(4, coll.Params{})
		default:
			return s.findConfig(5, coll.Params{Seg: 128 << 10})
		}
	}
	return s
}

// ompiReduce: 1 basic_linear, 2 binomial, 3 knomial, 4 pipeline (segmented
// binomial).
func ompiReduce() *CollectiveSet {
	s := &CollectiveSet{Coll: Reduce, NumAlgs: 4}
	add := func(algID int, name string, g coll.Generator, prm coll.Params) {
		s.Configs = append(s.Configs, Config{
			ID: len(s.Configs) + 1, AlgID: algID, Name: name, Params: prm, Gen: g,
		})
	}
	add(1, "basic_linear", coll.ReduceLinear, coll.Params{})
	add(2, "binomial", coll.ReduceBinomial, coll.Params{})
	for _, radix := range []int{3, 4, 8} {
		add(3, "knomial", coll.ReduceKnomial, coll.Params{Fanout: radix})
	}
	for _, seg := range ompiSegs {
		add(4, "pipeline", coll.ReducePipelined, coll.Params{Seg: seg})
	}
	s.decide = func(_ machine.Machine, topo netmodel.Topology, m int64) int {
		switch {
		case topo.P() < 4 && m < 65536:
			return s.findConfig(1, coll.Params{})
		case m < 16384:
			return s.findConfig(2, coll.Params{})
		default:
			return s.findConfig(4, coll.Params{Seg: 64 << 10})
		}
	}
	return s
}

// ompiAllgather: 1 basic_linear, 2 bruck, 3 recursive_doubling, 4 ring,
// 5 neighbor exchange.
func ompiAllgather() *CollectiveSet {
	s := &CollectiveSet{Coll: Allgather, NumAlgs: 5}
	add := func(algID int, name string, g coll.Generator, prm coll.Params) {
		s.Configs = append(s.Configs, Config{
			ID: len(s.Configs) + 1, AlgID: algID, Name: name, Params: prm, Gen: g,
		})
	}
	add(1, "basic_linear", coll.AllgatherLinear, coll.Params{})
	add(2, "bruck", coll.AllgatherBruck, coll.Params{})
	add(3, "recursive_doubling", coll.AllgatherRecursiveDoubling, coll.Params{})
	add(4, "ring", coll.AllgatherRing, coll.Params{})
	add(5, "neighbor", coll.AllgatherNeighborExchange, coll.Params{})
	s.decide = func(_ machine.Machine, topo netmodel.Topology, m int64) int {
		p := topo.P()
		switch {
		case m < 1024 && p >= 12:
			return s.findConfig(2, coll.Params{})
		case m < 65536:
			return s.findConfig(3, coll.Params{})
		default:
			return s.findConfig(4, coll.Params{})
		}
	}
	return s
}

// ompiGather: 1 basic_linear, 2 binomial.
func ompiGather() *CollectiveSet {
	s := &CollectiveSet{Coll: Gather, NumAlgs: 2}
	s.Configs = []Config{
		{ID: 1, AlgID: 1, Name: "basic_linear", Gen: coll.GatherLinear},
		{ID: 2, AlgID: 2, Name: "binomial", Gen: coll.GatherBinomial},
	}
	s.decide = func(_ machine.Machine, topo netmodel.Topology, m int64) int {
		if topo.P() < 8 || m >= 65536 {
			return 1
		}
		return 2
	}
	return s
}

// ompiScatter: 1 basic_linear, 2 binomial.
func ompiScatter() *CollectiveSet {
	s := &CollectiveSet{Coll: Scatter, NumAlgs: 2}
	s.Configs = []Config{
		{ID: 1, AlgID: 1, Name: "basic_linear", Gen: coll.ScatterLinear},
		{ID: 2, AlgID: 2, Name: "binomial", Gen: coll.ScatterBinomial},
	}
	s.decide = func(_ machine.Machine, topo netmodel.Topology, m int64) int {
		if topo.P() < 8 || m >= 65536 {
			return 1
		}
		return 2
	}
	return s
}

// ompiAlltoall: 1 basic_linear, 2 pairwise, 3 bruck, 4 linear_sync
// (windowed). Not used by the paper's Open MPI datasets but provided for
// completeness (the tooling accepts any library/collective combination).
func ompiAlltoall() *CollectiveSet {
	s := &CollectiveSet{Coll: Alltoall, NumAlgs: 4}
	add := func(algID int, name string, g coll.Generator, prm coll.Params) {
		s.Configs = append(s.Configs, Config{
			ID: len(s.Configs) + 1, AlgID: algID, Name: name, Params: prm, Gen: g,
		})
	}
	add(1, "basic_linear", coll.AlltoallLinear, coll.Params{})
	add(2, "pairwise", coll.AlltoallPairwise, coll.Params{})
	add(3, "bruck", coll.AlltoallBruck, coll.Params{})
	for _, w := range []int{4, 8, 16, 32} {
		add(4, "linear_sync", coll.AlltoallSpread, coll.Params{Fanout: w})
	}

	s.decide = func(_ machine.Machine, topo netmodel.Topology, m int64) int {
		p := topo.P()
		switch {
		case m < 256 && p >= 12:
			return s.findConfig(3, coll.Params{})
		case m < 8192:
			return s.findConfig(1, coll.Params{})
		default:
			return s.findConfig(2, coll.Params{})
		}
	}
	return s
}
