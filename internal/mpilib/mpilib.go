// Package mpilib models the tunable collective frameworks of two MPI
// libraries: an Open MPI-like profile ("Open MPI 4.0.2") and an Intel
// MPI-like profile ("Intel MPI 2019").
//
// A library exposes, per collective operation, a set of algorithm
// configurations u(j,l): algorithm id j combined with one allocation l of
// its parameters (segment size, chain count, radix, window). This mirrors
// how the paper merges the algorithm selection and the algorithm
// configuration problem. Configuration id 0 is reserved for the library's
// hard-coded default decision logic, exactly as in Open MPI.
//
// The two default logics reproduce the paper's experimental contrast:
//
//   - The Open MPI profile uses fixed, machine-independent threshold rules
//     (à la coll_tuned_decision_fixed.c), which were tuned on some machine
//     long ago — so they leave significant performance on the table.
//   - The Intel profile decides by consulting a tuning table computed on a
//     "reference system" almost identical to the target machine (the
//     simulated stand-in for mpitune factory tables), which makes its
//     defaults near-optimal, as the paper observes.
package mpilib

import (
	"fmt"
	"sort"
	"sync"

	"mpicollpred/internal/coll"
	"mpicollpred/internal/machine"
	"mpicollpred/internal/netmodel"
	"mpicollpred/internal/sim"
)

// Collective operation names. The paper's datasets cover the first three
// (the most frequently used blocking collectives per Chunduri et al.);
// Reduce, Allgather, Gather and Scatter complete the library portfolios,
// since the selection framework is generic over collectives.
const (
	Bcast     = "bcast"
	Allreduce = "allreduce"
	Alltoall  = "alltoall"
	Reduce    = "reduce"
	Allgather = "allgather"
	Gather    = "gather"
	Scatter   = "scatter"
)

// DefaultID is the configuration id of the library's built-in decision
// logic ("algorithm 0" in Open MPI terms).
const DefaultID = 0

// Config is one algorithm configuration u(j,l).
type Config struct {
	ID     int // unique within the collective's set; >= 1
	AlgID  int // the library's algorithm number j
	Name   string
	Params coll.Params
	Gen    coll.Generator
	// Excluded marks configurations that are benchmarked but must not be
	// selected (the paper found Open MPI 4.0.2's broadcast algorithm 8
	// buggy and dropped it from the search space).
	Excluded bool
}

// Label renders "name seg=.. fanout=.." for tables and figures.
func (c Config) Label() string { return c.Name + c.Params.String() }

// CollectiveSet is a library's algorithm portfolio for one collective.
type CollectiveSet struct {
	Coll    string
	Configs []Config // ids 1..len; index i holds ID i+1
	NumAlgs int      // number of distinct algorithm ids

	decide func(mach machine.Machine, topo netmodel.Topology, m int64) int
	mu     sync.Mutex
	memo   map[string]int
}

// Config returns the configuration with the given id (>= 1).
func (s *CollectiveSet) Config(id int) (Config, error) {
	if id < 1 || id > len(s.Configs) {
		return Config{}, fmt.Errorf("mpilib: %s has no configuration %d", s.Coll, id)
	}
	return s.Configs[id-1], nil
}

// Selectable returns the configurations eligible for tuning (non-excluded).
func (s *CollectiveSet) Selectable() []Config {
	out := make([]Config, 0, len(s.Configs))
	for _, c := range s.Configs {
		if !c.Excluded {
			out = append(out, c)
		}
	}
	return out
}

// Decide runs the library's default decision logic for an instance and
// returns the chosen configuration id. Results are memoized (the Intel
// profile's decision involves consulting its tuning table, which is
// expensive to build).
func (s *CollectiveSet) Decide(mach machine.Machine, topo netmodel.Topology, m int64) int {
	key := fmt.Sprintf("%s/%d/%d/%d", mach.Name, topo.Nodes, topo.PPN, m)
	s.mu.Lock()
	if s.memo == nil {
		s.memo = make(map[string]int)
	}
	if id, ok := s.memo[key]; ok {
		s.mu.Unlock()
		return id
	}
	s.mu.Unlock()
	id := s.decide(mach, topo, m)
	s.mu.Lock()
	s.memo[key] = id
	s.mu.Unlock()
	return id
}

// Library is a simulated MPI library profile.
type Library struct {
	Name        string
	Version     string
	collectives map[string]*CollectiveSet
}

// Collective returns the algorithm set for the named collective.
func (l *Library) Collective(coll string) (*CollectiveSet, error) {
	s, ok := l.collectives[coll]
	if !ok {
		return nil, fmt.Errorf("mpilib: %s does not provide %q", l.Name, coll)
	}
	return s, nil
}

// Collectives lists the provided collective names, sorted.
func (l *Library) Collectives() []string {
	out := make([]string, 0, len(l.collectives))
	for name := range l.collectives {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// findConfig locates a configuration by algorithm id and parameters; panics
// if the decision logic references a configuration missing from the grid —
// a programming error caught by the package tests.
func (s *CollectiveSet) findConfig(algID int, prm coll.Params) int {
	for _, c := range s.Configs {
		if c.AlgID == algID && c.Params == prm {
			return c.ID
		}
	}
	//mpicollvet:ignore panicguard decision tables are exhaustively validated by the package tests; a miss is a programmer error, not a runtime condition
	panic(fmt.Sprintf("mpilib: %s decision references missing config alg=%d%s", s.Coll, algID, prm.String()))
}

// BuildProgram emits the schedule of configuration c for an instance.
func BuildProgram(c Config, topo netmodel.Topology, m int64, verify bool) *sim.Program {
	b := sim.NewBuilder(topo.P(), verify)
	c.Gen(b, topo, m, c.Params)
	return b.Build()
}

// BuildProgramInto is BuildProgram reusing the backing arrays of scratch (a
// Program returned by an earlier call, no longer in use); it avoids per-cell
// op-slice allocations in measurement sweeps. A nil scratch behaves exactly
// like BuildProgram. The returned Program aliases scratch's storage.
func BuildProgramInto(scratch *sim.Program, c Config, topo netmodel.Topology, m int64, verify bool) *sim.Program {
	b := sim.RecycleBuilder(scratch, topo.P(), verify)
	c.Gen(b, topo, m, c.Params)
	return b.Build()
}

// SimulateOnce runs configuration c once on the given network parameters and
// returns the makespan. It is the primitive used both by the benchmark
// harness and by the Intel-style tuning-table construction.
func SimulateOnce(eng *sim.Engine, c Config, prm netmodel.Params, topo netmodel.Topology, m int64, seed uint64, noisy bool) (float64, error) {
	prog := BuildProgram(c, topo, m, false)
	model := netmodel.New(prm, topo, seed, noisy)
	res, err := eng.Run(prog, model, nil, nil)
	if err != nil {
		return 0, fmt.Errorf("%s (alg %d): %w", c.Label(), c.AlgID, err)
	}
	return res.Time, nil
}
