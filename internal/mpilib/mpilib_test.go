package mpilib

import (
	"testing"

	"mpicollpred/internal/coll"
	"mpicollpred/internal/machine"
	"mpicollpred/internal/netmodel"
	"mpicollpred/internal/sim"
)

func TestPortfolioShapes(t *testing.T) {
	// The portfolio sizes mirror the paper's Table II "#algorithms".
	want := map[string]map[string]int{
		"Open MPI":  {Bcast: 9, Allreduce: 7},
		"Intel MPI": {Bcast: 12, Allreduce: 16, Alltoall: 5},
	}
	for libName, colls := range want {
		lib, err := ByName(libName)
		if err != nil {
			t.Fatal(err)
		}
		for collName, numAlgs := range colls {
			s, err := lib.Collective(collName)
			if err != nil {
				t.Fatal(err)
			}
			if s.NumAlgs != numAlgs {
				t.Errorf("%s %s: NumAlgs = %d, want %d", libName, collName, s.NumAlgs, numAlgs)
			}
			// Distinct algorithm ids in configs must match NumAlgs.
			ids := map[int]bool{}
			for _, c := range s.Configs {
				ids[c.AlgID] = true
				if c.Gen == nil {
					t.Errorf("%s %s config %d: nil generator", libName, collName, c.ID)
				}
			}
			if len(ids) != numAlgs {
				t.Errorf("%s %s: %d distinct alg ids, want %d", libName, collName, len(ids), numAlgs)
			}
		}
	}
}

func TestAllSevenCollectivesProvided(t *testing.T) {
	for _, lib := range Libraries() {
		if got := len(lib.Collectives()); got != 7 {
			t.Errorf("%s provides %d collectives (%v), want 7", lib.Name, got, lib.Collectives())
		}
		for _, collName := range []string{Reduce, Allgather, Gather, Scatter} {
			s, err := lib.Collective(collName)
			if err != nil {
				t.Fatalf("%s: %v", lib.Name, err)
			}
			mach := machine.Jupiter()
			topo := netmodel.Topology{Nodes: 4, PPN: 4}
			for _, m := range []int64{8, 8192, 1 << 20} {
				id := s.Decide(mach, topo, m)
				if _, err := s.Config(id); err != nil {
					t.Errorf("%s %s decide(%d) -> %v", lib.Name, collName, m, err)
				}
			}
		}
	}
}

func TestConfigIDsAreDense(t *testing.T) {
	for _, lib := range Libraries() {
		for _, collName := range lib.Collectives() {
			s, _ := lib.Collective(collName)
			for i, c := range s.Configs {
				if c.ID != i+1 {
					t.Fatalf("%s %s: config at index %d has id %d", lib.Name, collName, i, c.ID)
				}
			}
			if _, err := s.Config(0); err == nil {
				t.Error("Config(0) must fail (0 is the default strategy)")
			}
			if _, err := s.Config(len(s.Configs) + 1); err == nil {
				t.Error("out-of-range config lookup must fail")
			}
		}
	}
}

func TestOpenMPIBcastExcludesAlg8(t *testing.T) {
	s, _ := OpenMPI().Collective(Bcast)
	foundExcluded := false
	for _, c := range s.Configs {
		if c.AlgID == 8 {
			if !c.Excluded {
				t.Error("alg 8 (scatter_allgather) must be excluded, per the paper")
			}
			foundExcluded = true
		}
	}
	if !foundExcluded {
		t.Error("alg 8 missing from the portfolio")
	}
	for _, c := range s.Selectable() {
		if c.AlgID == 8 {
			t.Error("Selectable must not return excluded configs")
		}
	}
}

func TestOpenMPIDecisionsResolve(t *testing.T) {
	mach := machine.Hydra()
	lib := OpenMPI()
	for _, collName := range []string{Bcast, Allreduce, Alltoall} {
		s, _ := lib.Collective(collName)
		for _, topo := range []netmodel.Topology{{Nodes: 2, PPN: 1}, {Nodes: 4, PPN: 4}, {Nodes: 16, PPN: 32}} {
			for _, m := range []int64{1, 256, 4096, 65536, 1 << 20, 4 << 20} {
				if collName == Alltoall && m > 65536 {
					continue
				}
				id := s.Decide(mach, topo, m)
				if _, err := s.Config(id); err != nil {
					t.Fatalf("%s decide(%v, %d) -> invalid id %d: %v", collName, topo, m, id, err)
				}
			}
		}
	}
}

func TestIntelDecisionNearOptimal(t *testing.T) {
	// The Intel-style tuned default must pick a configuration whose true
	// (noise-free, real-machine) runtime is within a modest factor of the
	// best configuration — the property the paper observed.
	mach := machine.Hydra()
	s, _ := IntelMPI().Collective(Allreduce)
	eng := sim.NewEngine()
	for _, tc := range []struct {
		topo netmodel.Topology
		m    int64
	}{
		{netmodel.Topology{Nodes: 4, PPN: 4}, 1024},
		{netmodel.Topology{Nodes: 8, PPN: 8}, 65536},
		{netmodel.Topology{Nodes: 4, PPN: 8}, 1 << 20},
	} {
		id := s.Decide(mach, tc.topo, tc.m)
		cfg, err := s.Config(id)
		if err != nil {
			t.Fatal(err)
		}
		tDefault, err := SimulateOnce(eng, cfg, mach.Net, tc.topo, tc.m, 1, false)
		if err != nil {
			t.Fatal(err)
		}
		best := 0.0
		for _, c := range s.Selectable() {
			tt, err := SimulateOnce(eng, c, mach.Net, tc.topo, tc.m, 1, false)
			if err != nil {
				t.Fatal(err)
			}
			if best == 0 || tt < best {
				best = tt
			}
		}
		if tDefault > 1.5*best {
			t.Errorf("topo=%v m=%d: Intel default %.3gs vs best %.3gs (ratio %.2f)",
				tc.topo, tc.m, tDefault, best, tDefault/best)
		}
	}
}

func TestDecideMemoized(t *testing.T) {
	mach := machine.Jupiter()
	s, _ := IntelMPI().Collective(Alltoall)
	topo := netmodel.Topology{Nodes: 3, PPN: 4}
	a := s.Decide(mach, topo, 512)
	b := s.Decide(mach, topo, 512)
	if a != b {
		t.Errorf("memoized decide returned %d then %d", a, b)
	}
}

func TestSimulateOncePositiveAndDeterministic(t *testing.T) {
	mach := machine.SuperMUCNG()
	s, _ := OpenMPI().Collective(Bcast)
	eng := sim.NewEngine()
	topo := netmodel.Topology{Nodes: 3, PPN: 4}
	for _, c := range s.Configs {
		t1, err := SimulateOnce(eng, c, mach.Net, topo, 4096, 99, true)
		if err != nil {
			t.Fatalf("%s: %v", c.Label(), err)
		}
		t2, err := SimulateOnce(eng, c, mach.Net, topo, 4096, 99, true)
		if err != nil {
			t.Fatal(err)
		}
		if t1 <= 0 || t1 != t2 {
			t.Errorf("%s: times %v, %v", c.Label(), t1, t2)
		}
	}
}

func TestFindConfigPanicsOnMissing(t *testing.T) {
	s, _ := OpenMPI().Collective(Bcast)
	defer func() {
		if recover() == nil {
			t.Error("expected panic for missing config reference")
		}
	}()
	s.findConfig(99, coll.Params{})
}

func TestByNameErrors(t *testing.T) {
	if _, err := ByName("MVAPICH"); err == nil {
		t.Error("expected error for unknown library")
	}
	if _, err := OpenMPI().Collective("scan"); err == nil {
		t.Error("expected error for unsupported collective")
	}
}

func TestLabels(t *testing.T) {
	s, _ := OpenMPI().Collective(Bcast)
	c, _ := s.Config(2) // first chain config
	if c.Label() != "chain seg=1024 fanout=2" {
		t.Errorf("Label = %q", c.Label())
	}
}
