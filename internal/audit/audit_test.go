package audit

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// testClock is a deterministic microsecond-stepping clock.
type testClock struct {
	mu sync.Mutex
	t  time.Time
}

func newTestClock() *testClock {
	return &testClock{t: time.Unix(1700000000, 0).UTC()}
}

func (c *testClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(10 * time.Microsecond)
	return c.t
}

// pred boxes a prediction for Record.PredictedSeconds.
func pred(v float64) *float64 { return &v }

// mkRecord builds a valid record with overridable instance fields.
func mkRecord(id string, nodes, ppn int, msize int64, p float64) Record {
	return Record{
		RequestID: id, Endpoint: "select",
		Model: "d1-gam", Coll: "bcast", Lib: "Open MPI", Machine: "Hydra", Dataset: "d1",
		Generation: 1, Nodes: nodes, PPN: ppn, Msize: msize,
		ConfigID: 2, AlgID: 1, Label: "binomial seg=8192",
		PredictedSeconds: pred(p), LatencyUs: 42,
	}
}

// mkFallback builds a valid fallback record.
func mkFallback(id string, msize int64, reason string) Record {
	r := mkRecord(id, 4, 8, msize, 0)
	r.PredictedSeconds = nil
	r.Fallback = true
	r.FallbackReason = reason
	r.ConfigID = 0
	r.Label = "library default"
	return r
}

func TestLoggerStampsWithInjectedClock(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "audit.jsonl")
	clk := newTestClock()
	lg, err := NewLogger(path, LoggerOptions{Clock: clk.now})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := lg.Append(mkRecord(fmt.Sprintf("r%d", i), 4, 8, 1024, 1e-4)); err != nil {
			t.Fatal(err)
		}
	}
	if err := lg.Close(); err != nil {
		t.Fatal(err)
	}
	recs, err := ReadLog(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("got %d records, want 3", len(recs))
	}
	base := time.Unix(1700000000, 0).UTC().Add(10 * time.Microsecond).UnixMicro()
	for i, r := range recs {
		want := base + int64(i*10)
		if r.TimeUnixUs != want {
			t.Errorf("record %d: ts %d, want %d", i, r.TimeUnixUs, want)
		}
		if r.V != SchemaVersion {
			t.Errorf("record %d: schema version %d", i, r.V)
		}
	}
}

func TestLoggerPreservesExplicitTimestamp(t *testing.T) {
	path := filepath.Join(t.TempDir(), "audit.jsonl")
	lg, err := NewLogger(path, LoggerOptions{Clock: newTestClock().now})
	if err != nil {
		t.Fatal(err)
	}
	r := mkRecord("r0", 4, 8, 1024, 1e-4)
	r.TimeUnixUs = 12345
	if err := lg.Append(r); err != nil {
		t.Fatal(err)
	}
	if err := lg.Close(); err != nil {
		t.Fatal(err)
	}
	recs, err := ReadLog(path)
	if err != nil {
		t.Fatal(err)
	}
	if recs[0].TimeUnixUs != 12345 {
		t.Fatalf("timestamp overwritten: %d", recs[0].TimeUnixUs)
	}
}

func TestLoggerRotation(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "audit.jsonl")
	// Each line is a few hundred bytes; cap at 1 KiB so rotation triggers
	// quickly.
	lg, err := NewLogger(path, LoggerOptions{MaxBytes: 1 << 10, Keep: 2, Clock: newTestClock().now})
	if err != nil {
		t.Fatal(err)
	}
	const total = 40
	for i := 0; i < total; i++ {
		if err := lg.Append(mkRecord(fmt.Sprintf("r%03d", i), 4, 8, int64(1024*(i+1)), 1e-4)); err != nil {
			t.Fatal(err)
		}
	}
	st := lg.Stats()
	if err := lg.Close(); err != nil {
		t.Fatal(err)
	}
	if st.Lines != total {
		t.Fatalf("stats lines %d, want %d", st.Lines, total)
	}
	if st.Rotations == 0 {
		t.Fatal("expected at least one rotation")
	}
	if st.Errors != 0 {
		t.Fatalf("unexpected errors: %d", st.Errors)
	}
	// Every retained generation must hold only whole, valid lines, and no
	// more than Keep rotations may exist.
	if _, err := os.Stat(fmt.Sprintf("%s.%d", path, 3)); !os.IsNotExist(err) {
		t.Fatalf("rotation beyond Keep exists: %v", err)
	}
	kept := 0
	for _, p := range []string{path, path + ".1", path + ".2"} {
		if _, err := os.Stat(p); err != nil {
			continue
		}
		recs, err := ReadLog(p)
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		kept += len(recs)
	}
	if kept == 0 || kept > total {
		t.Fatalf("kept %d records across generations, want in (0, %d]", kept, total)
	}
}

func TestLoggerConcurrentAppendsAreAtomic(t *testing.T) {
	path := filepath.Join(t.TempDir(), "audit.jsonl")
	lg, err := NewLogger(path, LoggerOptions{Clock: newTestClock().now})
	if err != nil {
		t.Fatal(err)
	}
	const workers, per = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				r := mkRecord(fmt.Sprintf("w%d-%d", w, i), 4, 8, 1024, 1e-4)
				if err := lg.Append(r); err != nil {
					t.Errorf("append: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if err := lg.Close(); err != nil {
		t.Fatal(err)
	}
	recs, err := ReadLog(path)
	if err != nil {
		t.Fatalf("torn or invalid line: %v", err)
	}
	if len(recs) != workers*per {
		t.Fatalf("got %d records, want %d", len(recs), workers*per)
	}
	ids := map[string]bool{}
	for _, r := range recs {
		ids[r.RequestID] = true
	}
	if len(ids) != workers*per {
		t.Fatalf("got %d unique request ids, want %d", len(ids), workers*per)
	}
}

func TestScanRejectsUnknownFields(t *testing.T) {
	line := `{"v":1,"ts_us":1,"request_id":"r","endpoint":"select","model":"m","coll":"bcast","lib":"Open MPI","machine":"Hydra","dataset":"d1","generation":1,"nodes":2,"ppn":2,"msize":8,"config_id":0,"alg_id":0,"label":"x","predicted_seconds":1e-5,"cached":false,"latency_us":1,"bogus":true}`
	err := Scan(strings.NewReader(line), func(Record) error { return nil })
	if err == nil || !strings.Contains(err.Error(), "line 1") {
		t.Fatalf("want line-1 unknown-field error, got %v", err)
	}
}

func TestScanRejectsInvalidRecords(t *testing.T) {
	cases := map[string]Record{
		"wrong version":     func() Record { r := mkRecord("r", 2, 2, 8, 1e-5); r.V = 99; return r }(),
		"no request id":     func() Record { r := mkRecord("", 2, 2, 8, 1e-5); return r }(),
		"bad instance":      func() Record { r := mkRecord("r", 0, 2, 8, 1e-5); return r }(),
		"missing predicted": func() Record { r := mkRecord("r", 2, 2, 8, 1e-5); r.PredictedSeconds = nil; return r }(),
		"fallback no reason": func() Record {
			r := mkFallback("r", 8, "extrapolation")
			r.FallbackReason = ""
			return r
		}(),
	}
	for name, rec := range cases {
		if rec.V == 0 {
			rec.V = SchemaVersion
		}
		if rec.TimeUnixUs == 0 {
			rec.TimeUnixUs = 1
		}
		b, err := json.Marshal(rec)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := Scan(bytes.NewReader(b), func(Record) error { return nil }); err == nil {
			t.Errorf("%s: scan accepted invalid record", name)
		}
	}
}

func TestScanSkipsBlankLines(t *testing.T) {
	r := mkRecord("r", 2, 2, 8, 1e-5)
	r.V = SchemaVersion
	r.TimeUnixUs = 1
	b, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	line := string(b)
	n := 0
	input := "\n" + line + "\n\n" + line + "\n"
	if err := Scan(strings.NewReader(input), func(Record) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("got %d records, want 2", n)
	}
}

func TestSummaryRenderIsOrderIndependentAndStable(t *testing.T) {
	recs := []Record{
		mkRecord("a", 4, 8, 1024, 1.0e-4),
		mkRecord("b", 8, 8, 4096, 2.0e-4),
		mkFallback("c", 1<<40, "extrapolation"),
		func() Record { r := mkRecord("d", 4, 8, 1024, 1.0e-4); r.Cached = true; return r }(),
		func() Record { r := mkRecord("e", 4, 8, 2048, 1.5e-4); r.Model = "d2-rf"; return r }(),
	}
	for i := range recs {
		recs[i].V = SchemaVersion
		recs[i].TimeUnixUs = int64(i + 1)
	}
	got := Summarize(recs).Render()

	rev := make([]Record, len(recs))
	for i, r := range recs {
		rev[len(recs)-1-i] = r
	}
	if again := Summarize(rev).Render(); again != got {
		t.Fatalf("summary depends on record order:\n%s\n--- vs ---\n%s", got, again)
	}
	for _, want := range []string{"d1-gam", "d2-rf", "Fallback breakdown: d1-gam", "extrapolation", "records: 5"} {
		if !strings.Contains(got, want) {
			t.Errorf("summary missing %q:\n%s", want, got)
		}
	}
	if Summarize(recs).Render() != got {
		t.Fatal("summary render not byte-stable")
	}
}

func TestDriftDetectsFallbackAndShift(t *testing.T) {
	var recs []Record
	// d1-gam: healthy first half, then predictions 4x larger — a shift breach.
	for i := 0; i < 40; i++ {
		p := 1.0e-4
		if i >= 20 {
			p = 4.0e-4
		}
		recs = append(recs, mkRecord(fmt.Sprintf("a%d", i), 4, 8, 1024, p))
	}
	// d2-rf: all fallbacks — fallback breach.
	for i := 0; i < 40; i++ {
		r := mkFallback(fmt.Sprintf("b%d", i), 1<<40, "extrapolation")
		r.Model = "d2-rf"
		recs = append(recs, r)
	}
	for i := range recs {
		recs[i].V = SchemaVersion
		recs[i].TimeUnixUs = int64(i + 1)
	}
	rep := Drift(recs)
	if len(rep.Models) != 2 {
		t.Fatalf("got %d models, want 2", len(rep.Models))
	}
	gam, rf := rep.Models[0], rep.Models[1]
	if gam.Model != "d1-gam" || rf.Model != "d2-rf" {
		t.Fatalf("model order: %s, %s", gam.Model, rf.Model)
	}
	if gam.ShiftLevel.String() != "breach" {
		t.Errorf("d1-gam shift level %s (shift %.2f), want breach", gam.ShiftLevel, gam.Shift)
	}
	if gam.FallbackLevel.String() != "ok" {
		t.Errorf("d1-gam fallback level %s, want ok", gam.FallbackLevel)
	}
	if rf.FallbackLevel.String() != "breach" || rf.Level().String() != "breach" {
		t.Errorf("d2-rf levels: fallback %s overall %s, want breach", rf.FallbackLevel, rf.Level())
	}
	if got, again := rep.Render(), Drift(recs).Render(); got != again {
		t.Fatal("drift render not byte-stable")
	}
}
