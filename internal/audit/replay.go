package audit

import (
	"fmt"
	"math"
	"sort"

	"mpicollpred/internal/bench"
	"mpicollpred/internal/machine"
	"mpicollpred/internal/mpilib"
	"mpicollpred/internal/sim"
	"mpicollpred/internal/tablefmt"
)

// ReplayOptions configures a replay run.
type ReplayOptions struct {
	// MaxInstances caps the unique decisions measured (default 64;
	// stride-sampled deterministically when the log holds more).
	MaxInstances int
	// Reps is the simulated repetitions per measurement (default 2).
	Reps int
}

// ReplayRow is one unique served decision re-measured in the simulator.
type ReplayRow struct {
	Model     string
	Nodes     int
	PPN       int
	Msize     int64
	Label     string
	Predicted float64
	Observed  float64
	RelErr    float64 // (predicted - observed) / observed
	Count     int     // log records that collapsed into this row
}

// ReplayModelStats aggregates one model's replay error.
type ReplayModelStats struct {
	Model           string
	Rows            int
	MeanAbsRelErr   float64
	MedianAbsRelErr float64
	WithinFactor2   float64 // fraction with observed/2 <= predicted <= 2*observed
}

// ReplayReport is the observed-vs-predicted comparison — the direct input
// to telemetry-driven retraining (ROADMAP item 2).
type ReplayReport struct {
	Rows     []ReplayRow
	Models   []ReplayModelStats
	Skipped  int // fallback decisions (no prediction to compare)
	Unique   int // unique decisions before the MaxInstances cap
	Measured int
}

// replaySeedSalt keys replay measurements apart from every other consumer
// of the simulator's seed space; it is the audit-replay domain salt from
// the simulator's seed-domain registry (the numeric value predates the
// registry and is pinned there, so existing replay reports stay
// byte-identical).
const replaySeedSalt = sim.DomainAuditReplay

// replayKey identifies one unique served decision.
type replayKey struct {
	model         string
	mach, lib     string
	coll          string
	nodes, ppn    int
	msize         int64
	configID      int
	predictedBits uint64
}

// Replay re-measures every unique served decision through the simulated
// machine the model was trained for and compares the observation against
// the served prediction. The measurement seed depends only on the decision
// (never on log order or time), so the same log always replays to the same
// report — byte for byte.
func Replay(recs []Record, opts ReplayOptions) (*ReplayReport, error) {
	if opts.MaxInstances <= 0 {
		opts.MaxInstances = 64
	}
	if opts.Reps <= 0 {
		opts.Reps = 2
	}

	type uniq struct {
		key   replayKey
		label string
		count int
	}
	seen := map[replayKey]*uniq{}
	rep := &ReplayReport{}
	for _, r := range recs {
		if r.PredictedSeconds == nil {
			rep.Skipped++
			continue
		}
		k := replayKey{model: r.Model, mach: r.Machine, lib: r.Lib, coll: r.Coll,
			nodes: r.Nodes, ppn: r.PPN, msize: r.Msize, configID: r.ConfigID,
			predictedBits: math.Float64bits(*r.PredictedSeconds)}
		if u := seen[k]; u != nil {
			u.count++
			continue
		}
		seen[k] = &uniq{key: k, label: r.Label, count: 1}
	}
	uniques := make([]*uniq, 0, len(seen))
	for _, u := range seen {
		uniques = append(uniques, u)
	}
	sort.Slice(uniques, func(i, j int) bool {
		a, b := uniques[i].key, uniques[j].key
		if a.model != b.model {
			return a.model < b.model
		}
		if a.nodes != b.nodes {
			return a.nodes < b.nodes
		}
		if a.ppn != b.ppn {
			return a.ppn < b.ppn
		}
		if a.msize != b.msize {
			return a.msize < b.msize
		}
		if a.configID != b.configID {
			return a.configID < b.configID
		}
		return a.predictedBits < b.predictedBits
	})
	rep.Unique = len(uniques)
	if len(uniques) > opts.MaxInstances {
		stride := len(uniques) / opts.MaxInstances
		var sampled []*uniq
		for i := 0; i < len(uniques) && len(sampled) < opts.MaxInstances; i += stride {
			sampled = append(sampled, uniques[i])
		}
		uniques = sampled
	}

	// Resolve each (machine, lib, coll) world once.
	type world struct {
		mach   machine.Machine
		set    *mpilib.CollectiveSet
		runner *bench.Runner
	}
	worlds := map[[3]string]*world{}
	resolve := func(k replayKey) (*world, error) {
		wk := [3]string{k.mach, k.lib, k.coll}
		if w := worlds[wk]; w != nil {
			return w, nil
		}
		mach, err := machine.ByName(k.mach)
		if err != nil {
			return nil, fmt.Errorf("audit: replay machine: %w", err)
		}
		lib, err := mpilib.ByName(k.lib)
		if err != nil {
			return nil, fmt.Errorf("audit: replay library: %w", err)
		}
		set, err := lib.Collective(k.coll)
		if err != nil {
			return nil, fmt.Errorf("audit: replay collective: %w", err)
		}
		o := bench.DefaultOptions(mach.Name)
		o.MaxReps = opts.Reps
		w := &world{mach: mach, set: set, runner: bench.NewRunner(o)}
		worlds[wk] = w
		return w, nil
	}

	for _, u := range uniques {
		k := u.key
		w, err := resolve(k)
		if err != nil {
			return nil, err
		}
		cfg, err := w.set.Config(k.configID)
		if err != nil {
			return nil, fmt.Errorf("audit: replay config %d for %s: %w", k.configID, k.model, err)
		}
		topo, err := w.mach.Topo(k.nodes, k.ppn)
		if err != nil {
			return nil, fmt.Errorf("audit: replay topology %dx%d: %w", k.nodes, k.ppn, err)
		}
		seed := sim.Seed(replaySeedSalt, uint64(k.configID), uint64(k.nodes), uint64(k.ppn), uint64(k.msize))
		meas, err := w.runner.MeasureCapped(cfg, w.mach.Net, topo, k.msize, seed, opts.Reps)
		if err != nil {
			return nil, fmt.Errorf("audit: replaying %s %dx%d m=%d: %w", k.model, k.nodes, k.ppn, k.msize, err)
		}
		observed := meas.Median()
		predicted := math.Float64frombits(k.predictedBits)
		rep.Rows = append(rep.Rows, ReplayRow{
			Model: k.model, Nodes: k.nodes, PPN: k.ppn, Msize: k.msize, Label: u.label,
			Predicted: predicted, Observed: observed,
			RelErr: (predicted - observed) / observed,
			Count:  u.count,
		})
	}
	rep.Measured = len(rep.Rows)

	// Per-model aggregates over the measured rows.
	byModel := map[string][]ReplayRow{}
	for _, row := range rep.Rows {
		byModel[row.Model] = append(byModel[row.Model], row)
	}
	names := make([]string, 0, len(byModel))
	for name := range byModel {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		rows := byModel[name]
		var absErrs []float64
		within := 0
		for _, row := range rows {
			absErrs = append(absErrs, math.Abs(row.RelErr))
			if row.Predicted >= row.Observed/2 && row.Predicted <= row.Observed*2 {
				within++
			}
		}
		mean := 0.0
		for _, e := range absErrs {
			mean += e
		}
		mean /= float64(len(absErrs))
		rep.Models = append(rep.Models, ReplayModelStats{
			Model: name, Rows: len(rows),
			MeanAbsRelErr:   mean,
			MedianAbsRelErr: quantile(absErrs, 0.5),
			WithinFactor2:   float64(within) / float64(len(rows)),
		})
	}
	return rep, nil
}

// Render formats the replay report as byte-stable text.
func (r *ReplayReport) Render() string {
	t := &tablefmt.Table{
		Title: "Replay: observed (simulated) vs predicted runtimes of served decisions",
		Headers: []string{"model", "nodes", "ppn", "msize", "configuration",
			"predicted s", "observed s", "rel err", "hits"},
	}
	for _, row := range r.Rows {
		t.AddRow(row.Model, tablefmt.I(row.Nodes), tablefmt.I(row.PPN), tablefmt.I64(row.Msize),
			row.Label, tablefmt.G(row.Predicted), tablefmt.G(row.Observed),
			tablefmt.F(row.RelErr, 3), tablefmt.I(row.Count))
	}
	agg := &tablefmt.Table{
		Title:   "Replay error per model",
		Headers: []string{"model", "rows", "mean |rel err|", "median |rel err|", "within 2x"},
	}
	for _, m := range r.Models {
		agg.AddRow(m.Model, tablefmt.I(m.Rows), tablefmt.F(m.MeanAbsRelErr, 3),
			tablefmt.F(m.MedianAbsRelErr, 3), ratio(int(m.WithinFactor2*float64(m.Rows)+0.5), m.Rows))
	}
	return t.String() + "\n" + agg.String() +
		fmt.Sprintf("\nunique decisions: %d, measured: %d, fallback decisions skipped: %d\n",
			r.Unique, r.Measured, r.Skipped)
}
