// Package audit is the selection audit log of the serving stack: an
// append-only JSONL stream recording every served tuning decision — the
// instance, the chosen configuration, the predicted runtime, cache and
// fallback state, and latency. The log is the raw material for the
// observe-then-adapt loop (ROADMAP item 2): mpicollaudit summarizes it,
// detects drift in it, and replays it through the simulator to compare
// what the models promised against what the machine would have delivered.
//
// The package is on mpicollvet's deterministic-package list for the
// wallclock analyzer: its single real-clock read is the explicitly audited
// timestamp seam below, and everything else — including the Logger under
// test — runs on an injected clock.
package audit

import (
	"fmt"
	"time"
)

// SchemaVersion identifies the record layout; bump on breaking changes so
// mpicollaudit can reject logs it does not understand.
const SchemaVersion = 1

// Record is one served decision. Field names are the stable on-disk JSONL
// schema (CI asserts every line of a live server's log parses into this).
type Record struct {
	// V is the schema version (SchemaVersion).
	V int `json:"v"`
	// TimeUnixUs is the decision timestamp in microseconds since the epoch.
	TimeUnixUs int64 `json:"ts_us"`
	// RequestID traces the decision back to the HTTP request (and through
	// loadgen, to the generating worker).
	RequestID string `json:"request_id"`
	// Endpoint is the serving endpoint ("select" or "batch").
	Endpoint string `json:"endpoint"`
	// Model is the registry name of the serving model (e.g. "d1-gam").
	Model string `json:"model"`
	// Coll/Lib/Machine/Dataset identify what the model was trained for —
	// enough for a replay to rebuild the simulated machine.
	Coll    string `json:"coll"`
	Lib     string `json:"lib"`
	Machine string `json:"machine"`
	Dataset string `json:"dataset"`
	// Generation is the registry generation that answered.
	Generation uint64 `json:"generation"`
	// The instance.
	Nodes int   `json:"nodes"`
	PPN   int   `json:"ppn"`
	Msize int64 `json:"msize"`
	// The decision.
	ConfigID int    `json:"config_id"`
	AlgID    int    `json:"alg_id"`
	Label    string `json:"label"`
	// PredictedSeconds is nil when the guardrails fell back (their
	// prediction is NaN by design).
	PredictedSeconds *float64 `json:"predicted_seconds,omitempty"`
	Cached           bool     `json:"cached"`
	Fallback         bool     `json:"fallback,omitempty"`
	FallbackReason   string   `json:"fallback_reason,omitempty"`
	// LatencyUs is the server-side decision latency in microseconds.
	LatencyUs int64 `json:"latency_us"`
}

// Validate checks the schema invariants every well-formed record satisfies;
// the reader applies it line by line so a corrupt log fails loudly with a
// line number instead of skewing a report.
func (r Record) Validate() error {
	switch {
	case r.V != SchemaVersion:
		return fmt.Errorf("schema version %d, want %d", r.V, SchemaVersion)
	case r.TimeUnixUs <= 0:
		return fmt.Errorf("non-positive timestamp %d", r.TimeUnixUs)
	case r.RequestID == "":
		return fmt.Errorf("empty request_id")
	case r.Endpoint == "":
		return fmt.Errorf("empty endpoint")
	case r.Model == "" || r.Coll == "" || r.Lib == "" || r.Machine == "":
		return fmt.Errorf("incomplete model identity %q/%q/%q/%q", r.Model, r.Coll, r.Lib, r.Machine)
	case r.Nodes < 1 || r.PPN < 1 || r.Msize < 0:
		return fmt.Errorf("invalid instance nodes=%d ppn=%d msize=%d", r.Nodes, r.PPN, r.Msize)
	case r.ConfigID < 0:
		return fmt.Errorf("negative config_id %d", r.ConfigID)
	case !r.Fallback && r.PredictedSeconds == nil:
		return fmt.Errorf("non-fallback record without predicted_seconds")
	case r.Fallback && r.FallbackReason == "":
		return fmt.Errorf("fallback record without fallback_reason")
	case r.LatencyUs < 0:
		return fmt.Errorf("negative latency %d", r.LatencyUs)
	}
	return nil
}

// realClock is the audit package's one wall-clock read: record timestamps
// are run metadata, never simulated state, and tests pin the Logger's clock
// instead of calling this.
func realClock() time.Time {
	return time.Now() //mpicollvet:ignore wallclock audit timestamps are real-time run metadata; the Logger clock is injectable and tests pin it
}
