package audit

import (
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"time"
)

// LoggerOptions configures a Logger.
type LoggerOptions struct {
	// MaxBytes rotates the log when appending a record would push the
	// current file past this size (default 64 MiB; <= 0 keeps the default).
	MaxBytes int64
	// Keep is how many rotated generations to retain as path.1 .. path.N
	// (default 2).
	Keep int
	// Clock injects the timestamp source (default: the real clock).
	Clock func() time.Time
}

// DefaultMaxBytes is the rotation threshold when LoggerOptions.MaxBytes is
// unset.
const DefaultMaxBytes = 64 << 20

// LoggerStats counts a Logger's lifetime activity.
type LoggerStats struct {
	Lines     uint64 `json:"lines"`
	Bytes     uint64 `json:"bytes"`
	Rotations uint64 `json:"rotations"`
	Errors    uint64 `json:"errors"`
}

// Logger appends Records to a JSONL file with size-based rotation. Every
// record is written with a single Write call (marshalled line + newline)
// under one mutex, so concurrent appenders can interleave lines but never
// tear one — the hammer test in the serve package holds this under -race.
type Logger struct {
	mu    sync.Mutex
	f     *os.File
	path  string
	size  int64
	max   int64
	keep  int
	clock func() time.Time
	stats LoggerStats
}

// NewLogger opens (creating or appending) the audit log at path.
func NewLogger(path string, opts LoggerOptions) (*Logger, error) {
	if opts.MaxBytes <= 0 {
		opts.MaxBytes = DefaultMaxBytes
	}
	if opts.Keep <= 0 {
		opts.Keep = 2
	}
	if opts.Clock == nil {
		opts.Clock = realClock
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("audit: opening log: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		_ = f.Close()
		return nil, fmt.Errorf("audit: stat log: %w", err)
	}
	return &Logger{f: f, path: path, size: st.Size(), max: opts.MaxBytes,
		keep: opts.Keep, clock: opts.Clock}, nil
}

// Path returns the active log file path.
func (l *Logger) Path() string { return l.path }

// Append stamps (when the record has no timestamp) and writes one record as
// a single JSONL line, rotating first if the line would overflow MaxBytes.
func (l *Logger) Append(rec Record) error {
	rec.V = SchemaVersion
	l.mu.Lock()
	defer l.mu.Unlock()
	if rec.TimeUnixUs == 0 {
		rec.TimeUnixUs = l.clock().UnixMicro()
	}
	line, err := json.Marshal(rec)
	if err != nil {
		l.stats.Errors++
		return fmt.Errorf("audit: encoding record: %w", err)
	}
	line = append(line, '\n')
	if l.size > 0 && l.size+int64(len(line)) > l.max {
		//mpicollvet:ignore lockscope the mutex IS the write-path serialization; rotation must be atomic with the append deciding it
		if err := l.rotateLocked(); err != nil {
			l.stats.Errors++
			return err
		}
	}
	n, err := l.f.Write(line) //mpicollvet:ignore lockscope single-writer invariant: one record = one uninterleaved line requires writing under the lock
	l.size += int64(n)
	l.stats.Bytes += uint64(n)
	if err != nil {
		l.stats.Errors++
		return fmt.Errorf("audit: appending record: %w", err)
	}
	l.stats.Lines++
	return nil
}

// rotateLocked shifts path.{k} → path.{k+1} (dropping the oldest), moves the
// active file to path.1, and reopens a fresh file.
func (l *Logger) rotateLocked() error {
	if err := l.f.Close(); err != nil {
		return fmt.Errorf("audit: closing for rotation: %w", err)
	}
	if err := os.Remove(fmt.Sprintf("%s.%d", l.path, l.keep)); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("audit: dropping oldest rotation: %w", err)
	}
	for k := l.keep - 1; k >= 1; k-- {
		from := fmt.Sprintf("%s.%d", l.path, k)
		if _, err := os.Stat(from); err != nil {
			continue
		}
		if err := os.Rename(from, fmt.Sprintf("%s.%d", l.path, k+1)); err != nil {
			return fmt.Errorf("audit: shifting rotation %d: %w", k, err)
		}
	}
	if err := os.Rename(l.path, l.path+".1"); err != nil {
		return fmt.Errorf("audit: rotating active log: %w", err)
	}
	f, err := os.OpenFile(l.path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("audit: reopening after rotation: %w", err)
	}
	l.f = f
	l.size = 0
	l.stats.Rotations++
	return nil
}

// Stats returns lifetime counters.
func (l *Logger) Stats() LoggerStats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.stats
}

// Sync flushes the log to stable storage.
func (l *Logger) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.f.Sync() //mpicollvet:ignore lockscope Sync must exclude rotation swapping l.f out from under it
}

// Close flushes and closes the log.
func (l *Logger) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.f.Close() //mpicollvet:ignore lockscope Close must exclude concurrent appends to the file it is closing
}
