package audit

import (
	"strings"
	"testing"
)

// replayFixture builds a small log: two unique decisions served repeatedly,
// plus one fallback that replay must skip.
func replayFixture() []Record {
	var recs []Record
	add := func(r Record) {
		r.V = SchemaVersion
		r.TimeUnixUs = int64(len(recs) + 1)
		recs = append(recs, r)
	}
	for i := 0; i < 3; i++ {
		add(mkRecord("a", 4, 8, 1024, 1.0e-4))
	}
	add(mkRecord("b", 8, 8, 4096, 2.0e-4))
	add(mkFallback("c", 1<<40, "extrapolation"))
	return recs
}

func TestReplayIsDeterministicAndDedupes(t *testing.T) {
	recs := replayFixture()
	rep, err := Replay(recs, ReplayOptions{Reps: 2})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Unique != 2 || rep.Measured != 2 {
		t.Fatalf("unique=%d measured=%d, want 2/2", rep.Unique, rep.Measured)
	}
	if rep.Skipped != 1 {
		t.Fatalf("skipped=%d, want 1 (the fallback)", rep.Skipped)
	}
	if rep.Rows[0].Count != 3 || rep.Rows[1].Count != 1 {
		t.Fatalf("dedupe counts %d/%d, want 3/1", rep.Rows[0].Count, rep.Rows[1].Count)
	}
	for _, row := range rep.Rows {
		if !(row.Observed > 0) {
			t.Fatalf("row %+v: non-positive observed runtime", row)
		}
	}
	if len(rep.Models) != 1 || rep.Models[0].Model != "d1-gam" || rep.Models[0].Rows != 2 {
		t.Fatalf("model aggregates: %+v", rep.Models)
	}

	// Same log, reversed order → byte-identical report.
	rev := make([]Record, len(recs))
	for i, r := range recs {
		rev[len(recs)-1-i] = r
	}
	again, err := Replay(rev, ReplayOptions{Reps: 2})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Render() != again.Render() {
		t.Fatalf("replay depends on record order:\n%s\n--- vs ---\n%s", rep.Render(), again.Render())
	}
	for _, want := range []string{"d1-gam", "binomial", "Replay error per model", "fallback decisions skipped: 1"} {
		if !strings.Contains(rep.Render(), want) {
			t.Errorf("render missing %q:\n%s", want, rep.Render())
		}
	}
}

func TestReplayCapsInstances(t *testing.T) {
	var recs []Record
	for i := 0; i < 10; i++ {
		r := mkRecord("r", 4, 8, int64(1024*(i+1)), 1.0e-4)
		r.V = SchemaVersion
		r.TimeUnixUs = int64(i + 1)
		recs = append(recs, r)
	}
	rep, err := Replay(recs, ReplayOptions{MaxInstances: 4, Reps: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Unique != 10 {
		t.Fatalf("unique=%d, want 10", rep.Unique)
	}
	if rep.Measured != 4 {
		t.Fatalf("measured=%d, want 4", rep.Measured)
	}
}

func TestReplayRejectsUnknownWorld(t *testing.T) {
	r := mkRecord("r", 4, 8, 1024, 1.0e-4)
	r.V = SchemaVersion
	r.TimeUnixUs = 1
	r.Machine = "NoSuchMachine"
	if _, err := Replay([]Record{r}, ReplayOptions{Reps: 1}); err == nil {
		t.Fatal("want error for unknown machine")
	}
}
