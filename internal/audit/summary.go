package audit

import (
	"fmt"
	"math"
	"sort"

	"mpicollpred/internal/tablefmt"
)

// ModelSummary aggregates one model's served decisions.
type ModelSummary struct {
	Model      string
	Requests   int
	Cached     int
	Fallbacks  int
	ByReason   map[string]int
	ByLabel    map[string]int
	LatencyUs  []float64
	Predicted  []float64
	Generation uint64 // highest generation seen
}

// Summary aggregates a whole audit log.
type Summary struct {
	Records int
	Models  map[string]*ModelSummary
}

// Summarize folds records into per-model aggregates. Order-independent: two
// logs holding the same multiset of records summarize identically.
func Summarize(recs []Record) *Summary {
	s := &Summary{Models: map[string]*ModelSummary{}}
	for _, r := range recs {
		s.Records++
		m := s.Models[r.Model]
		if m == nil {
			m = &ModelSummary{Model: r.Model, ByReason: map[string]int{}, ByLabel: map[string]int{}}
			s.Models[r.Model] = m
		}
		m.Requests++
		if r.Cached {
			m.Cached++
		}
		if r.Fallback {
			m.Fallbacks++
			m.ByReason[r.FallbackReason]++
		}
		m.ByLabel[r.Label]++
		m.LatencyUs = append(m.LatencyUs, float64(r.LatencyUs))
		if r.PredictedSeconds != nil {
			m.Predicted = append(m.Predicted, *r.PredictedSeconds)
		}
		if r.Generation > m.Generation {
			m.Generation = r.Generation
		}
	}
	return s
}

// modelNames returns the summarized model names, sorted.
func (s *Summary) modelNames() []string {
	names := make([]string, 0, len(s.Models))
	for name := range s.Models {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// quantile answers the q-quantile of (an unsorted copy of) vs, NaN when
// empty.
func quantile(vs []float64, q float64) float64 {
	if len(vs) == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), vs...)
	sort.Float64s(s)
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	rank := q * float64(len(s)-1)
	lo := int(math.Floor(rank))
	frac := rank - float64(lo)
	if lo+1 >= len(s) {
		return s[lo]
	}
	return s[lo] + frac*(s[lo+1]-s[lo])
}

// ratio renders a/b as a percentage, "-" when b is zero.
func ratio(a, b int) string {
	if b == 0 {
		return "-"
	}
	return fmt.Sprintf("%.1f%%", 100*float64(a)/float64(b))
}

// Render formats the summary as byte-stable text: models sorted by name,
// distributions sorted by count descending then label.
func (s *Summary) Render() string {
	t := &tablefmt.Table{
		Title: "Audit summary: served selections per model",
		Headers: []string{"model", "gen", "requests", "cached", "hit%", "fallbacks", "fb%",
			"lat p50 us", "lat p99 us", "pred p50 s"},
	}
	for _, name := range s.modelNames() {
		m := s.Models[name]
		t.AddRow(m.Model, fmt.Sprintf("%d", m.Generation),
			tablefmt.I(m.Requests), tablefmt.I(m.Cached), ratio(m.Cached, m.Requests),
			tablefmt.I(m.Fallbacks), ratio(m.Fallbacks, m.Requests),
			tablefmt.F(quantile(m.LatencyUs, 0.5), 0), tablefmt.F(quantile(m.LatencyUs, 0.99), 0),
			tablefmt.G(quantile(m.Predicted, 0.5)))
	}
	out := fmt.Sprintf("records: %d\n\n%s", s.Records, t.String())

	for _, name := range s.modelNames() {
		m := s.Models[name]
		dist := &tablefmt.Table{
			Title:   fmt.Sprintf("Selection distribution: %s", m.Model),
			Headers: []string{"configuration", "count", "share"},
		}
		for _, kv := range sortedCounts(m.ByLabel) {
			dist.AddRow(kv.k, tablefmt.I(kv.v), ratio(kv.v, m.Requests))
		}
		out += "\n" + dist.String()
		if m.Fallbacks > 0 {
			fb := &tablefmt.Table{
				Title:   fmt.Sprintf("Fallback breakdown: %s", m.Model),
				Headers: []string{"reason", "count", "share"},
			}
			for _, kv := range sortedCounts(m.ByReason) {
				fb.AddRow(kv.k, tablefmt.I(kv.v), ratio(kv.v, m.Requests))
			}
			out += "\n" + fb.String()
		}
	}
	return out
}

// kcount is one (key, count) pair of a distribution.
type kcount struct {
	k string
	v int
}

// sortedCounts orders a count map by descending count, then key — the
// deterministic rendering order for every distribution in a report.
func sortedCounts(m map[string]int) []kcount {
	out := make([]kcount, 0, len(m))
	for k, v := range m {
		out = append(out, kcount{k, v})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].v != out[j].v {
			return out[i].v > out[j].v
		}
		return out[i].k < out[j].k
	})
	return out
}
