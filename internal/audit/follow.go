// Streaming audit reader: Follow tails a live audit log the way the strict
// batch reader (Scan) reads a finished one — every line must parse into a
// valid Record — but keeps going as the serving process appends, surviving
// size-based rotation (logger.go renames the active file to path.1 and
// reopens a fresh one). It is the observation inlet of the online-retraining
// loop and of `mpicollaudit -follow`.

package audit

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"time"
)

// FollowOptions configures a Follow run.
type FollowOptions struct {
	// Poll is called whenever the log has no new complete line, before the
	// next read attempt. The default sleeps DefaultFollowPoll of real time;
	// tests and deterministic drives inject their own (e.g. one that feeds
	// more records, or one that cancels the context when a script runs dry).
	Poll func()
	// WaitForFile keeps polling when the log file does not exist yet
	// instead of failing — a follower may legitimately start before the
	// server's first append creates the log.
	WaitForFile bool
}

// DefaultFollowPoll is the real-time pause between read attempts when no
// Poll hook is injected.
const DefaultFollowPoll = 100 * time.Millisecond

// realPoll is the follow reader's one real-time pause: tail polling is I/O
// pacing against a file another process appends to, never simulated state,
// and tests inject FollowOptions.Poll instead of calling this.
func realPoll() {
	time.Sleep(DefaultFollowPoll) //mpicollvet:ignore wallclock follow-tail pacing against a live file is real-time I/O; the poll hook is injectable and tests pin it
}

// Follow reads the audit log at path from the beginning and then tails it,
// calling fn for every record, until ctx is cancelled (which returns nil —
// stopping a tail is a normal exit, not a failure). Every line is held to
// the same strict schema as Scan; a malformed line aborts the follow with
// its line number.
//
// Rotation handling: when the file shrinks or is replaced (the Logger
// renames the active log aside and reopens), Follow finishes nothing — the
// rename happens under the Logger's write lock between complete lines, so
// reopening the new active file at offset zero loses no records that were
// appended after the rotation. Records already read from the rotated-away
// file are never re-delivered.
func Follow(ctx context.Context, path string, opts FollowOptions, fn func(Record) error) error {
	if opts.Poll == nil {
		opts.Poll = realPoll
	}

	f, err := openFollow(ctx, path, opts)
	if err != nil || f == nil {
		return err
	}
	defer func() { _ = f.Close() }()

	var (
		buf    []byte // partial line carried across read attempts
		offset int64  // bytes consumed from the current file
		lineNo int    // 1-based line number in the current file
	)
	chunk := make([]byte, 64<<10)
	for {
		if err := ctx.Err(); err != nil {
			return nil
		}
		n, rerr := f.Read(chunk)
		if n > 0 {
			offset += int64(n)
			buf = append(buf, chunk[:n]...)
			for {
				nl := bytes.IndexByte(buf, '\n')
				if nl < 0 {
					break
				}
				line := bytes.TrimSpace(buf[:nl])
				buf = buf[nl+1:]
				lineNo++
				if len(line) == 0 {
					continue
				}
				if len(line) > maxLineBytes {
					return fmt.Errorf("audit: follow %s line %d: line exceeds %d bytes", path, lineNo, maxLineBytes)
				}
				var rec Record
				dec := json.NewDecoder(bytes.NewReader(line))
				dec.DisallowUnknownFields()
				if err := dec.Decode(&rec); err != nil {
					return fmt.Errorf("audit: follow %s line %d: %w", path, lineNo, err)
				}
				if err := rec.Validate(); err != nil {
					return fmt.Errorf("audit: follow %s line %d: %w", path, lineNo, err)
				}
				if err := fn(rec); err != nil {
					return fmt.Errorf("audit: follow %s line %d: %w", path, lineNo, err)
				}
			}
			if len(buf) > maxLineBytes {
				return fmt.Errorf("audit: follow %s line %d: unterminated line exceeds %d bytes", path, lineNo+1, maxLineBytes)
			}
			continue
		}
		if rerr != nil && !errors.Is(rerr, io.EOF) {
			return fmt.Errorf("audit: follow %s: %w", path, rerr)
		}
		// At EOF: a rotation replaced the file when the path now names a
		// different or shorter file than the one we hold open.
		rotated, err := followRotated(f, path, offset)
		if err != nil {
			return err
		}
		if rotated {
			// Mid-rotation the path may briefly not exist (rename-aside before
			// the fresh file is created); wait for it like a late-starting tail.
			nf, err := openFollow(ctx, path, FollowOptions{Poll: opts.Poll, WaitForFile: true})
			if err != nil {
				return fmt.Errorf("audit: follow reopening after rotation: %w", err)
			}
			if nf == nil {
				return nil
			}
			_ = f.Close()
			f, offset, lineNo, buf = nf, 0, 0, nil
			continue
		}
		opts.Poll()
	}
}

// openFollow opens the log, optionally waiting for it to appear. A nil file
// with nil error means the context was cancelled while waiting.
func openFollow(ctx context.Context, path string, opts FollowOptions) (*os.File, error) {
	for {
		f, err := os.Open(path)
		if err == nil {
			return f, nil
		}
		if !opts.WaitForFile || !os.IsNotExist(err) {
			return nil, fmt.Errorf("audit: follow: %w", err)
		}
		if ctx.Err() != nil {
			return nil, nil
		}
		opts.Poll()
	}
}

// followRotated reports whether the open file is no longer the active log:
// the path is gone (mid-rotation), names a file of a different identity, or
// shrank below what was already consumed (truncation).
func followRotated(f *os.File, path string, offset int64) (bool, error) {
	cur, err := os.Stat(path)
	if err != nil {
		if os.IsNotExist(err) {
			return true, nil
		}
		return false, fmt.Errorf("audit: follow stat: %w", err)
	}
	held, err := f.Stat()
	if err != nil {
		return false, fmt.Errorf("audit: follow stat open file: %w", err)
	}
	if !os.SameFile(cur, held) {
		return true, nil
	}
	return cur.Size() < offset, nil
}
