package audit

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// followRecord builds a minimal valid record with a distinguishing sequence
// number in the request id.
func followRecord(seq int) Record {
	pred := 0.001 * float64(seq+1)
	return Record{
		V: SchemaVersion, TimeUnixUs: int64(1000 + seq),
		RequestID: fmt.Sprintf("f-%d", seq), Endpoint: "select",
		Model: "d1-gam", Coll: "bcast", Lib: "Open MPI", Machine: "Hydra",
		Dataset: "d1", Generation: 1,
		Nodes: 2, PPN: 1, Msize: 64,
		ConfigID: 1, AlgID: 1, Label: "binary-tree",
		PredictedSeconds: &pred,
	}
}

// TestFollowStreamsAppends drives Follow with an injected poll hook that
// appends more records between read attempts, and checks every record is
// delivered exactly once, in order.
func TestFollowStreamsAppends(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "audit.jsonl")
	clock := func() time.Time { return time.UnixMicro(1) }
	lg, err := NewLogger(path, LoggerOptions{Clock: clock})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = lg.Close() }()

	const total = 20
	written := 0
	appendBatch := func(n int) {
		for i := 0; i < n && written < total; i++ {
			if err := lg.Append(followRecord(written)); err != nil {
				t.Errorf("append %d: %v", written, err)
			}
			written++
		}
	}
	appendBatch(5)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var got []string
	err = Follow(ctx, path, FollowOptions{
		Poll: func() {
			if written < total {
				appendBatch(5)
				return
			}
			cancel()
		},
	}, func(r Record) error {
		got = append(got, r.RequestID)
		return nil
	})
	if err != nil {
		t.Fatalf("follow: %v", err)
	}
	if len(got) != total {
		t.Fatalf("followed %d records, want %d: %v", len(got), total, got)
	}
	for i, id := range got {
		if want := fmt.Sprintf("f-%d", i); id != want {
			t.Errorf("record %d: got %s, want %s", i, id, want)
		}
	}
}

// TestFollowSurvivesRotation rotates the log (tiny MaxBytes) while a
// follower tails it and checks no record is lost or duplicated.
func TestFollowSurvivesRotation(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "audit.jsonl")
	clock := func() time.Time { return time.UnixMicro(1) }
	// ~3 records per generation: every few appends rotate the file.
	lg, err := NewLogger(path, LoggerOptions{MaxBytes: 800, Keep: 2, Clock: clock})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = lg.Close() }()

	const total = 12
	written := 0
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var got []string
	err = Follow(ctx, path, FollowOptions{
		Poll: func() {
			if written < total {
				if err := lg.Append(followRecord(written)); err != nil {
					t.Errorf("append %d: %v", written, err)
				}
				written++
				return
			}
			cancel()
		},
	}, func(r Record) error {
		got = append(got, r.RequestID)
		return nil
	})
	if err != nil {
		t.Fatalf("follow: %v", err)
	}
	if lg.Stats().Rotations == 0 {
		t.Fatalf("test never rotated; lower MaxBytes")
	}
	// Records delivered must be a suffix-free ordered subsequence starting
	// at whatever generation the follower was on when rotation happened; a
	// rotation between the follower's reads must lose nothing, so with the
	// follower keeping pace every record arrives exactly once.
	if len(got) != total {
		t.Fatalf("followed %d records across rotations, want %d: %v", len(got), total, got)
	}
	for i, id := range got {
		if want := fmt.Sprintf("f-%d", i); id != want {
			t.Errorf("record %d: got %s, want %s", i, id, want)
		}
	}
}

// TestFollowWaitsForFile starts the follower before the log exists.
func TestFollowWaitsForFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "audit.jsonl")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	polls := 0
	var got int
	err := Follow(ctx, path, FollowOptions{
		WaitForFile: true,
		Poll: func() {
			polls++
			if polls == 3 {
				clock := func() time.Time { return time.UnixMicro(1) }
				lg, err := NewLogger(path, LoggerOptions{Clock: clock})
				if err != nil {
					t.Errorf("creating log: %v", err)
					cancel()
					return
				}
				_ = lg.Append(followRecord(0))
				_ = lg.Close()
				return
			}
			if polls > 3 {
				cancel()
			}
		},
	}, func(r Record) error {
		got++
		return nil
	})
	if err != nil {
		t.Fatalf("follow: %v", err)
	}
	if got != 1 {
		t.Fatalf("followed %d records, want 1", got)
	}
}

// TestFollowRejectsMalformedLine keeps the strict-schema contract in tail
// mode: garbage aborts with a line number instead of being skipped.
func TestFollowRejectsMalformedLine(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "audit.jsonl")
	if err := os.WriteFile(path, []byte("{\"not\":\"a record\"}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	err := Follow(ctx, path, FollowOptions{Poll: cancel}, func(Record) error { return nil })
	if err == nil {
		t.Fatalf("malformed line not rejected")
	}
}
