package audit

import (
	"fmt"
	"math"
	"sort"

	"mpicollpred/internal/obs"
	"mpicollpred/internal/tablefmt"
)

// Drift thresholds: the fallback-rate and envelope-violation EWMAs use the
// serving defaults; the prediction-shift monitor compares the median served
// prediction of the log's first and second half and flags multiplicative
// shifts.
const (
	DriftFallbackWarn   = 0.10
	DriftFallbackBreach = 0.30
	DriftShiftWarn      = 1.5
	DriftShiftBreach    = 3.0
)

// ModelDrift is one model's drift verdict.
type ModelDrift struct {
	Model         string
	Requests      int
	FallbackRate  float64
	FallbackLevel obs.MonitorLevel
	EnvelopeRate  float64
	EnvelopeLevel obs.MonitorLevel
	// EarlyP50/LateP50 are the median served predictions of the two log
	// halves; Shift is late/early (NaN when either half has none).
	EarlyP50   float64
	LateP50    float64
	Shift      float64
	ShiftLevel obs.MonitorLevel
}

// Level is the model's overall verdict: the worst of its monitors.
func (d ModelDrift) Level() obs.MonitorLevel {
	worst := d.FallbackLevel
	if d.EnvelopeLevel > worst {
		worst = d.EnvelopeLevel
	}
	if d.ShiftLevel > worst {
		worst = d.ShiftLevel
	}
	return worst
}

// DriftReport holds per-model drift verdicts in sorted model order.
type DriftReport struct {
	Models []ModelDrift
}

// Drift replays the log's records (in log order) through the same EWMA
// monitors the live server runs, and splits each model's served predictions
// into halves to detect distribution shift. Deterministic for a given log.
func Drift(recs []Record) *DriftReport {
	type state struct {
		fallback *obs.RateMonitor
		envelope *obs.RateMonitor
		preds    []float64
		requests int
	}
	byModel := map[string]*state{}
	for _, r := range recs {
		st := byModel[r.Model]
		if st == nil {
			st = &state{
				fallback: obs.NewRateMonitor(0.05, DriftFallbackWarn, DriftFallbackBreach),
				envelope: obs.NewRateMonitor(0.05, DriftFallbackWarn, DriftFallbackBreach),
			}
			byModel[r.Model] = st
		}
		st.requests++
		st.fallback.Observe(r.Fallback)
		st.envelope.Observe(r.Fallback && r.FallbackReason == "extrapolation")
		if r.PredictedSeconds != nil {
			st.preds = append(st.preds, *r.PredictedSeconds)
		}
	}

	rep := &DriftReport{}
	names := make([]string, 0, len(byModel))
	for name := range byModel {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		st := byModel[name]
		d := ModelDrift{
			Model:         name,
			Requests:      st.requests,
			FallbackRate:  st.fallback.Rate(),
			FallbackLevel: st.fallback.Level(),
			EnvelopeRate:  st.envelope.Rate(),
			EnvelopeLevel: st.envelope.Level(),
			EarlyP50:      math.NaN(),
			LateP50:       math.NaN(),
			Shift:         math.NaN(),
		}
		half := len(st.preds) / 2
		if half > 0 {
			d.EarlyP50 = quantile(st.preds[:half], 0.5)
			d.LateP50 = quantile(st.preds[half:], 0.5)
			d.Shift = d.LateP50 / d.EarlyP50
			shift := d.Shift
			if shift < 1 && shift > 0 {
				shift = 1 / shift
			}
			switch {
			case math.IsNaN(shift) || shift >= DriftShiftBreach:
				d.ShiftLevel = obs.LevelBreach
			case shift >= DriftShiftWarn:
				d.ShiftLevel = obs.LevelWarn
			}
		}
		rep.Models = append(rep.Models, d)
	}
	return rep
}

// Render formats the drift report as byte-stable text.
func (r *DriftReport) Render() string {
	t := &tablefmt.Table{
		Title: "Drift report: audit log replayed through the serving monitors",
		Headers: []string{"model", "requests", "fb rate", "fb level", "env rate", "env level",
			"p50 early", "p50 late", "shift", "shift level", "verdict"},
	}
	for _, d := range r.Models {
		t.AddRow(d.Model, tablefmt.I(d.Requests),
			tablefmt.F(d.FallbackRate, 3), d.FallbackLevel.String(),
			tablefmt.F(d.EnvelopeRate, 3), d.EnvelopeLevel.String(),
			tablefmt.G(d.EarlyP50), tablefmt.G(d.LateP50),
			tablefmt.F(d.Shift, 2), d.ShiftLevel.String(), d.Level().String())
	}
	return t.String() + fmt.Sprintf("\nfallback thresholds: warn %.2f breach %.2f (EWMA alpha 0.05); "+
		"shift thresholds: warn %.1fx breach %.1fx (either direction)\n",
		DriftFallbackWarn, DriftFallbackBreach, DriftShiftWarn, DriftShiftBreach)
}
