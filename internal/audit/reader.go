package audit

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// maxLineBytes bounds one audit line; a legitimate record is a few hundred
// bytes, so a megabyte means the file is not an audit log.
const maxLineBytes = 1 << 20

// Scan reads a JSONL audit stream strictly: every line must parse into a
// Record with no unknown fields and pass Validate. fn is called per record;
// any error carries the 1-based line number.
func Scan(r io.Reader, fn func(Record) error) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), maxLineBytes)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var rec Record
		dec := json.NewDecoder(bytes.NewReader(line))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&rec); err != nil {
			return fmt.Errorf("audit: line %d: %w", lineNo, err)
		}
		if err := rec.Validate(); err != nil {
			return fmt.Errorf("audit: line %d: %w", lineNo, err)
		}
		if err := fn(rec); err != nil {
			return fmt.Errorf("audit: line %d: %w", lineNo, err)
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("audit: line %d: %w", lineNo+1, err)
	}
	return nil
}

// ReadLog loads every record of the audit log at path.
func ReadLog(path string) ([]Record, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("audit: opening log: %w", err)
	}
	defer func() { _ = f.Close() }()
	var recs []Record
	if err := Scan(f, func(r Record) error { recs = append(recs, r); return nil }); err != nil {
		return nil, fmt.Errorf("reading %s: %w", path, err)
	}
	return recs, nil
}
