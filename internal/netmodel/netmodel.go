// Package netmodel provides the network/CPU cost model that drives the
// discrete-event simulator. It is a LogGP-flavoured model with separate
// intra-node and inter-node parameters, per-node NIC injection/ejection
// serialization (which makes running time depend on processes-per-node, not
// just on the total process count), an eager/rendezvous protocol switch, and
// deterministic multiplicative noise.
package netmodel

import (
	"mpicollpred/internal/fault"
	"mpicollpred/internal/sim"
)

// Params collects all model constants for one machine. Times are in seconds,
// per-byte gaps in seconds/byte.
type Params struct {
	// Inter-node path.
	LInter float64 // wire+switch latency per message
	GInter float64 // per-byte cost of a single stream (1/stream bandwidth)
	GNic   float64 // per-byte NIC serialization (1/node injection bandwidth)

	// Intra-node path (shared memory).
	LIntra float64 // latency of an on-node message
	GIntra float64 // per-byte cost of a single on-node stream
	GMem   float64 // per-byte node memory-bus serialization

	// CPU costs.
	OSend float64 // per-message sender overhead
	ORecv float64 // per-message receiver overhead
	OByte float64 // per-byte sender copy cost (eager protocol buffering)
	Gamma float64 // per-byte reduction/compute cost

	// Protocol.
	Eager       uint32  // messages strictly below this size are eager
	RendezvousL float64 // extra handshake latency (RTS/CTS round trip)

	// Noise: per-message multiplicative lognormal factor exp(Sigma*N(0,1)).
	Sigma float64
}

// Perturb returns a copy of p with every latency/bandwidth parameter scaled
// by the given factors (used to derive the "reference system" on which the
// simulated Intel-style decision table was tuned).
func (p Params) Perturb(latFactor, bwFactor float64) Params {
	q := p
	q.LInter *= latFactor
	q.LIntra *= latFactor
	q.RendezvousL *= latFactor
	q.GInter *= bwFactor
	q.GNic *= bwFactor
	q.GIntra *= bwFactor
	q.GMem *= bwFactor
	return q
}

// Topology describes the process layout: nodes × processes-per-node. The
// default is SLURM's block distribution (ranks 0..ppn-1 on node 0, etc.);
// Cyclic selects round-robin placement (rank r on node r mod nodes), the
// other common SLURM distribution. Placement changes which messages stay
// on-node, and therefore which collective algorithm wins — one of the
// factors the paper lists as shaping the selection problem.
type Topology struct {
	Nodes  int
	PPN    int
	Cyclic bool
}

// P returns the total number of processes.
func (t Topology) P() int { return t.Nodes * t.PPN }

// NodeOf returns the node hosting the given rank.
func (t Topology) NodeOf(rank int32) int32 {
	if t.Cyclic {
		return rank % int32(t.Nodes)
	}
	return rank / int32(t.PPN)
}

// SameNode reports whether two ranks share a node.
func (t Topology) SameNode(a, b int32) bool { return t.NodeOf(a) == t.NodeOf(b) }

// Stats is the per-run accounting block of a Model: transfer counts and the
// queueing delay messages spent waiting for a busy NIC or memory bus — the
// contention component of a schedule's running time, invisible in the
// makespan alone.
type Stats struct {
	Messages      int   // transfers through the model
	IntraNode     int   // transfers that stayed on-node
	InterNode     int   // transfers that crossed the fabric
	Bytes         int64 // total payload bytes transferred
	QueueDelay    float64
	MaxQueueDelay float64
}

// Model implements sim.CostModel. A Model is stateful per run: per-node NIC
// and memory-bus availability accumulate as messages are simulated. Create a
// fresh Model (or call Reset) for every independent run.
type Model struct {
	prm  Params
	topo Topology
	rng  *sim.RNG // nil for a noise-free run

	egress  []float64 // per node: NIC injection available-from time
	ingress []float64 // per node: NIC ejection available-from time
	mem     []float64 // per node: memory-bus available-from time

	// Instrumentation, both off by default.
	stats  *Stats
	tracer sim.ResourceTracer

	// Fault injection, off by default: a nil injector costs one nil check
	// per transfer and leaves timings bit-identical to a fault-free model.
	faults *fault.Injector
}

// New returns a run-ready Model. seed keys the deterministic noise; noisy
// false yields the expected-cost (noise-free) model used e.g. by the
// simulated vendor decision logic.
func New(prm Params, topo Topology, seed uint64, noisy bool) *Model {
	m := &Model{prm: prm, topo: topo}
	if noisy {
		m.rng = sim.NewRNG(seed)
	}
	m.egress = make([]float64, topo.Nodes)
	m.ingress = make([]float64, topo.Nodes)
	m.mem = make([]float64, topo.Nodes)
	return m
}

// Reset clears resource state and reseeds the noise stream, making the Model
// ready for another independent run on the same topology. Collected stats
// are zeroed but collection stays enabled.
func (m *Model) Reset(seed uint64) {
	for i := range m.egress {
		m.egress[i] = 0
		m.ingress[i] = 0
		m.mem[i] = 0
	}
	if m.rng != nil {
		m.rng = sim.NewRNG(seed)
	}
	if m.stats != nil {
		*m.stats = Stats{}
	}
}

// CollectStats enables (or disables) per-run transfer accounting.
func (m *Model) CollectStats(on bool) {
	if on {
		m.stats = &Stats{}
	} else {
		m.stats = nil
	}
}

// Stats returns the accounting since the last Reset (zero when collection
// is disabled).
func (m *Model) Stats() Stats {
	if m.stats == nil {
		return Stats{}
	}
	return *m.stats
}

// SetTracer installs a resource-occupancy tracer (nil disables). The tracer
// receives one span per NIC/memory-bus busy period.
func (m *Model) SetTracer(t sim.ResourceTracer) { m.tracer = t }

// SetFaults installs a fault injector (nil disables, the default). Straggler
// faults multiply the cost of every message entering or leaving the target
// node; degraded-NIC faults multiply the NIC serialization cost (flapping
// with their configured period); noise bursts raise the per-message noise
// sigma inside their simulated-time window. The injector survives Reset —
// faults describe the machine, not one run.
func (m *Model) SetFaults(inj *fault.Injector) { m.faults = inj }

// Params returns the model constants.
func (m *Model) Params() Params { return m.prm }

// Topo returns the process topology.
func (m *Model) Topo() Topology { return m.topo }

// noiseAt draws the multiplicative noise factor for a transfer starting at
// simulated time t. Noise-burst faults raise the sigma inside their window;
// with no injector installed this is exactly the base-sigma draw, consuming
// the same RNG stream as a fault-free model.
func (m *Model) noiseAt(t float64) float64 {
	if m.rng == nil {
		return 1
	}
	sigma := m.prm.Sigma
	if m.faults != nil {
		sigma += m.faults.SigmaBoost(t)
	}
	return m.rng.LogNormal(sigma)
}

// Eager implements sim.CostModel.
func (m *Model) Eager(bytes uint32) bool { return bytes < m.prm.Eager }

// transfer computes the network portion of a message: given the time the
// data is ready to enter the fabric, it returns (last byte left the source,
// last byte arrived at the destination), accounting for per-node resource
// serialization.
func (m *Model) transfer(src, dst int32, bytes uint32, ready float64) (egressDone, arrival float64) {
	b := float64(bytes)
	if m.topo.SameNode(src, dst) {
		node := m.topo.NodeOf(src)
		start := maxf(ready, m.mem[node])
		busy := b * m.prm.GMem
		lat := m.prm.LIntra + b*m.prm.GIntra
		if m.faults != nil {
			nf := m.faults.NodeFactor(node)
			busy *= nf
			lat *= nf
		}
		f := m.noiseAt(start)
		m.mem[node] = start + busy
		egressDone = start + busy
		arrival = start + lat*f
		if arrival < egressDone {
			arrival = egressDone
		}
		if m.stats != nil {
			m.noteTransfer(bytes, start-ready, true)
		}
		if m.tracer != nil && busy > 0 {
			m.tracer.ResourceSpan("mem", node, start, start+busy)
		}
		return egressDone, arrival
	}
	sn, dn := m.topo.NodeOf(src), m.topo.NodeOf(dst)
	start := maxf(ready, maxf(m.egress[sn], m.ingress[dn]))
	busy := b * m.prm.GNic
	lat := m.prm.LInter + b*m.prm.GInter
	if m.faults != nil {
		nf := m.faults.NodeFactor(sn) * m.faults.NodeFactor(dn)
		busy *= nf * m.faults.NICFactor(sn, start) * m.faults.NICFactor(dn, start)
		lat *= nf
	}
	f := m.noiseAt(start)
	m.egress[sn] = start + busy
	m.ingress[dn] = start + busy
	egressDone = start + busy
	arrival = start + lat*f
	if arrival < egressDone {
		arrival = egressDone
	}
	if m.stats != nil {
		m.noteTransfer(bytes, start-ready, false)
	}
	if m.tracer != nil && busy > 0 {
		m.tracer.ResourceSpan("nic", sn, start, start+busy)
	}
	return egressDone, arrival
}

// noteTransfer records one transfer in the stats block. wait is the time the
// message queued for a busy NIC or memory bus before its bytes could move.
func (m *Model) noteTransfer(bytes uint32, wait float64, intra bool) {
	s := m.stats
	s.Messages++
	s.Bytes += int64(bytes)
	if intra {
		s.IntraNode++
	} else {
		s.InterNode++
	}
	if wait > 0 {
		s.QueueDelay += wait
		if wait > s.MaxQueueDelay {
			s.MaxQueueDelay = wait
		}
	}
}

// SendEager implements sim.CostModel. The sender copies the message into
// protocol buffers (OSend + per-byte copy) and proceeds; the network delivers
// it independently.
func (m *Model) SendEager(src, dst int32, bytes uint32, t float64) (senderDone, arrival float64) {
	ready := t + m.prm.OSend + float64(bytes)*m.prm.OByte
	_, arrival = m.transfer(src, dst, bytes, ready)
	return ready, arrival
}

// SendRendezvous implements sim.CostModel. The transfer starts after both
// sides have posted plus a handshake; the sender is busy until its last byte
// has left.
func (m *Model) SendRendezvous(src, dst int32, bytes uint32, ts, tr float64) (senderDone, arrival float64) {
	ready := maxf(ts+m.prm.OSend, tr) + m.prm.RendezvousL
	egressDone, arr := m.transfer(src, dst, bytes, ready)
	return egressDone, arr
}

// RecvOverhead implements sim.CostModel.
func (m *Model) RecvOverhead(bytes uint32) float64 { return m.prm.ORecv }

// PostOverhead implements sim.CostModel: the cost of posting a non-blocking
// send is the per-message sender overhead.
func (m *Model) PostOverhead(bytes uint32) float64 { return m.prm.OSend }

// Compute implements sim.CostModel.
func (m *Model) Compute(bytes uint32) float64 { return float64(bytes) * m.prm.Gamma }

var _ sim.CostModel = (*Model)(nil)

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
