package netmodel

import (
	"math"
	"testing"

	"mpicollpred/internal/sim"
)

func testParams() Params {
	return Params{
		LInter: 1.5e-6, GInter: 1.0 / 10e9, GNic: 1.0 / 12e9,
		LIntra: 0.4e-6, GIntra: 1.0 / 8e9, GMem: 1.0 / 30e9,
		OSend: 0.3e-6, ORecv: 0.35e-6, OByte: 0.05e-9, Gamma: 1.0 / 6e9,
		Eager: 16384, RendezvousL: 3e-6, Sigma: 0.05,
	}
}

func TestIntraFasterThanInter(t *testing.T) {
	topo := Topology{Nodes: 2, PPN: 2} // ranks 0,1 on node 0; 2,3 on node 1
	m := New(testParams(), topo, 1, false)
	_, arrIntra := m.SendEager(0, 1, 1024, 0)
	m.Reset(1)
	_, arrInter := m.SendEager(0, 2, 1024, 0)
	if arrIntra >= arrInter {
		t.Errorf("intra-node arrival %v should beat inter-node %v", arrIntra, arrInter)
	}
}

func TestNicSerializationScalesWithSenders(t *testing.T) {
	// ppn concurrent off-node messages from one node must serialize on the
	// NIC: the last arrival grows with the number of senders.
	prm := testParams()
	last := 0.0
	for _, k := range []int{1, 4, 8} {
		topo := Topology{Nodes: 9, PPN: 8}
		m := New(prm, topo, 1, false)
		worst := 0.0
		for i := 0; i < k; i++ {
			// rank i on node 0 sends to rank on node i+1
			_, arr := m.SendEager(int32(i), int32((i+1)*8), 8192, 0)
			if arr > worst {
				worst = arr
			}
		}
		if worst <= last {
			t.Errorf("k=%d: worst arrival %v did not grow beyond %v", k, worst, last)
		}
		last = worst
	}
}

func TestEagerThreshold(t *testing.T) {
	m := New(testParams(), Topology{Nodes: 2, PPN: 1}, 1, false)
	if !m.Eager(16383) {
		t.Error("message below threshold must be eager")
	}
	if m.Eager(16384) {
		t.Error("message at threshold must be rendezvous")
	}
}

func TestRendezvousWaitsForReceiver(t *testing.T) {
	m := New(testParams(), Topology{Nodes: 2, PPN: 1}, 1, false)
	_, arrEarly := m.SendRendezvous(0, 1, 1<<20, 0, 0)
	m.Reset(1)
	_, arrLate := m.SendRendezvous(0, 1, 1<<20, 0, 5e-3)
	if arrLate <= arrEarly {
		t.Errorf("late receiver should delay arrival: %v vs %v", arrLate, arrEarly)
	}
	if arrLate < 5e-3 {
		t.Errorf("arrival %v cannot precede receiver post at 5ms", arrLate)
	}
}

func TestNoiseDeterministicPerSeed(t *testing.T) {
	prm := testParams()
	topo := Topology{Nodes: 2, PPN: 1}
	a1 := New(prm, topo, 42, true)
	a2 := New(prm, topo, 42, true)
	b := New(prm, topo, 43, true)
	_, x1 := a1.SendEager(0, 1, 4096, 0)
	_, x2 := a2.SendEager(0, 1, 4096, 0)
	_, y := b.SendEager(0, 1, 4096, 0)
	if x1 != x2 {
		t.Error("same seed must give identical times")
	}
	if x1 == y {
		t.Error("different seeds should differ")
	}
}

func TestNoiseFreeIsExact(t *testing.T) {
	prm := testParams()
	topo := Topology{Nodes: 2, PPN: 1}
	m := New(prm, topo, 1, false)
	_, arr := m.SendEager(0, 1, 10000, 0)
	ready := prm.OSend + 10000*prm.OByte
	want := ready + prm.LInter + 10000*prm.GInter
	if math.Abs(arr-want) > 1e-15 {
		t.Errorf("noise-free arrival = %v, want %v", arr, want)
	}
}

func TestResetClearsResources(t *testing.T) {
	prm := testParams()
	topo := Topology{Nodes: 2, PPN: 2}
	m := New(prm, topo, 1, false)
	_, a1 := m.SendEager(0, 2, 1<<13, 0)
	_, a2 := m.SendEager(1, 3, 1<<13, 0) // NIC now busy: later
	if a2 <= a1 {
		t.Fatal("expected NIC serialization on second send")
	}
	m.Reset(1)
	_, a3 := m.SendEager(0, 2, 1<<13, 0)
	if a3 != a1 {
		t.Errorf("after Reset, first send should repeat exactly: %v vs %v", a3, a1)
	}
}

func TestPerturbScalesParams(t *testing.T) {
	p := testParams()
	q := p.Perturb(0.9, 1.1)
	if q.LInter >= p.LInter || q.GInter <= p.GInter {
		t.Error("Perturb factors not applied")
	}
	if q.OSend != p.OSend || q.Eager != p.Eager {
		t.Error("Perturb must not touch CPU/protocol params")
	}
}

func TestTopologyLayout(t *testing.T) {
	topo := Topology{Nodes: 3, PPN: 4}
	if topo.P() != 12 {
		t.Fatalf("P = %d", topo.P())
	}
	if topo.NodeOf(0) != 0 || topo.NodeOf(3) != 0 || topo.NodeOf(4) != 1 || topo.NodeOf(11) != 2 {
		t.Error("block placement broken")
	}
	if !topo.SameNode(4, 7) || topo.SameNode(3, 4) {
		t.Error("SameNode broken")
	}
}

func TestCyclicPlacement(t *testing.T) {
	topo := Topology{Nodes: 3, PPN: 4, Cyclic: true}
	// Round-robin: ranks 0,3,6,9 on node 0; 1,4,7,10 on node 1; etc.
	if topo.NodeOf(0) != 0 || topo.NodeOf(3) != 0 || topo.NodeOf(4) != 1 || topo.NodeOf(11) != 2 {
		t.Error("cyclic placement broken")
	}
	if topo.SameNode(0, 1) || !topo.SameNode(2, 5) {
		t.Error("cyclic SameNode broken")
	}
	// Consecutive ranks are now inter-node: a message 0->1 pays network
	// cost, unlike block placement.
	cy := New(testParams(), topo, 1, false)
	bl := New(testParams(), Topology{Nodes: 3, PPN: 4}, 1, false)
	_, arrCyclic := cy.SendEager(0, 1, 1024, 0)
	_, arrBlock := bl.SendEager(0, 1, 1024, 0)
	if arrCyclic <= arrBlock {
		t.Errorf("rank 0->1 should be slower under cyclic placement: %v vs %v", arrCyclic, arrBlock)
	}
}

func TestModelDrivesEngine(t *testing.T) {
	// End-to-end smoke: run a small broadcast-like schedule through the
	// engine with this model; times must be positive, finite and
	// reproducible.
	topo := Topology{Nodes: 2, PPN: 2}
	run := func() float64 {
		b := sim.NewBuilder(4, false)
		for r := 1; r < 4; r++ {
			b.Send(0, r, 4096)
			b.Recv(r, 0, 4096)
		}
		m := New(testParams(), topo, 99, true)
		res, err := sim.NewEngine().Run(b.Build(), m, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		return res.Time
	}
	t1, t2 := run(), run()
	if t1 <= 0 || math.IsInf(t1, 0) || math.IsNaN(t1) {
		t.Fatalf("bad time %v", t1)
	}
	if t1 != t2 {
		t.Errorf("simulation not reproducible: %v vs %v", t1, t2)
	}
}
