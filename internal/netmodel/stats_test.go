package netmodel

import (
	"math"
	"testing"
)

type nicSpan struct {
	resource   string
	node       int32
	start, end float64
}

type recordingResourceTracer struct{ spans []nicSpan }

func (r *recordingResourceTracer) ResourceSpan(resource string, node int32, start, end float64) {
	r.spans = append(r.spans, nicSpan{resource, node, start, end})
}

func TestStatsAccountQueueDelay(t *testing.T) {
	// Four simultaneous off-node sends from node 0 serialize on its NIC:
	// three of them must book queueing delay.
	topo := Topology{Nodes: 5, PPN: 4}
	m := New(testParams(), topo, 1, false)
	m.CollectStats(true)
	for i := 0; i < 4; i++ {
		m.SendEager(int32(i), int32((i+1)*4), 8192, 0)
	}
	s := m.Stats()
	if s.Messages != 4 || s.InterNode != 4 || s.IntraNode != 0 {
		t.Errorf("message accounting wrong: %+v", s)
	}
	if s.Bytes != 4*8192 {
		t.Errorf("bytes = %d", s.Bytes)
	}
	if s.QueueDelay <= 0 {
		t.Errorf("concurrent senders must queue: %+v", s)
	}
	// Serialization of 8192 B at GNic: message k waits ~k*busy (minus its
	// own later ready time; here all ready at the same adjusted time).
	busy := 8192 * testParams().GNic
	if s.MaxQueueDelay < busy/2 || s.MaxQueueDelay > 4*busy {
		t.Errorf("max queue delay %v implausible for busy=%v", s.MaxQueueDelay, busy)
	}

	// Reset zeroes the accounting but keeps collection on.
	m.Reset(1)
	if got := m.Stats(); got != (Stats{}) {
		t.Errorf("stats must clear on Reset: %+v", got)
	}
	m.SendEager(0, 4, 64, 0)
	if got := m.Stats(); got.Messages != 1 {
		t.Errorf("collection must stay enabled after Reset: %+v", got)
	}
}

func TestStatsDisabledIsZero(t *testing.T) {
	m := New(testParams(), Topology{Nodes: 2, PPN: 1}, 1, false)
	m.SendEager(0, 1, 1024, 0)
	if got := m.Stats(); got != (Stats{}) {
		t.Errorf("stats off must read zero: %+v", got)
	}
}

func TestResourceTracerSpans(t *testing.T) {
	topo := Topology{Nodes: 2, PPN: 2}
	m := New(testParams(), topo, 1, false)
	tr := &recordingResourceTracer{}
	m.SetTracer(tr)
	m.SendEager(0, 2, 4096, 0) // inter-node: nic span on node 0
	m.SendEager(0, 1, 4096, 0) // intra-node: mem span on node 0
	if len(tr.spans) != 2 {
		t.Fatalf("want 2 spans, got %+v", tr.spans)
	}
	if tr.spans[0].resource != "nic" || tr.spans[0].node != 0 {
		t.Errorf("first span should be nic@0: %+v", tr.spans[0])
	}
	if tr.spans[1].resource != "mem" || tr.spans[1].node != 0 {
		t.Errorf("second span should be mem@0: %+v", tr.spans[1])
	}
	for _, sp := range tr.spans {
		if sp.end <= sp.start || math.IsNaN(sp.end) {
			t.Errorf("degenerate span %+v", sp)
		}
	}
}

func TestInstrumentationDoesNotChangeTiming(t *testing.T) {
	topo := Topology{Nodes: 3, PPN: 2}
	run := func(instrument bool) float64 {
		m := New(testParams(), topo, 7, true)
		if instrument {
			m.CollectStats(true)
			m.SetTracer(&recordingResourceTracer{})
		}
		worst := 0.0
		for i := 0; i < 6; i++ {
			_, arr := m.SendEager(int32(i), int32((i+2)%6), 2048, 0)
			if arr > worst {
				worst = arr
			}
		}
		return worst
	}
	if a, b := run(false), run(true); a != b {
		t.Errorf("instrumentation changed timing: %v vs %v", a, b)
	}
}
