package netmodel

import (
	"testing"

	"mpicollpred/internal/fault"
)

// TestFaultSeamZeroImpactWhenNil proves the nil-by-default seam: a model
// with SetFaults(nil) produces transfer times bit-identical to one that
// never heard of faults, noisy or not.
func TestFaultSeamZeroImpactWhenNil(t *testing.T) {
	topo := Topology{Nodes: 2, PPN: 2}
	for _, noisy := range []bool{false, true} {
		a := New(testParams(), topo, 7, noisy)
		b := New(testParams(), topo, 7, noisy)
		b.SetFaults(nil)
		for i := 0; i < 50; i++ {
			sa, aa := a.SendEager(0, 2, 4096, float64(i)*1e-6)
			sb, ab := b.SendEager(0, 2, 4096, float64(i)*1e-6)
			if sa != sb || aa != ab {
				t.Fatalf("noisy=%v transfer %d: (%v,%v) vs (%v,%v)", noisy, i, sa, aa, sb, ab)
			}
		}
	}
}

func TestStragglerSlowsTouchingTransfersOnly(t *testing.T) {
	topo := Topology{Nodes: 3, PPN: 1}
	plan, err := fault.Parse("straggler:node=1,factor=4")
	if err != nil {
		t.Fatal(err)
	}
	clean := New(testParams(), topo, 1, false)
	faulty := New(testParams(), topo, 1, false)
	faulty.SetFaults(plan.Injector(topo.Nodes))

	// Transfer touching the straggler node is slower.
	_, cleanArr := clean.SendEager(0, 1, 1<<20, 0)
	_, faultyArr := faulty.SendEager(0, 1, 1<<20, 0)
	if faultyArr <= cleanArr {
		t.Errorf("straggler-bound transfer: faulty %v <= clean %v", faultyArr, cleanArr)
	}

	// Transfer between healthy nodes is untouched.
	clean.Reset(1)
	faulty.Reset(1)
	cs, ca := clean.SendEager(0, 2, 1<<20, 0)
	fs, fa := faulty.SendEager(0, 2, 1<<20, 0)
	if cs != fs || ca != fa {
		t.Errorf("healthy transfer perturbed: (%v,%v) vs (%v,%v)", cs, ca, fs, fa)
	}
}

func TestDegradedNICSlowsSerializationUnderContention(t *testing.T) {
	topo := Topology{Nodes: 3, PPN: 2}
	plan, err := fault.Parse("nic:node=0,factor=16")
	if err != nil {
		t.Fatal(err)
	}
	clean := New(testParams(), topo, 1, false)
	faulty := New(testParams(), topo, 1, false)
	faulty.SetFaults(plan.Injector(topo.Nodes))

	// Two large messages leave node 0 back to back: the second queues on
	// the NIC, so a degraded NIC compounds.
	clean.SendEager(0, 2, 1<<20, 0)
	_, cleanArr := clean.SendEager(1, 4, 1<<20, 0)
	faulty.SendEager(0, 2, 1<<20, 0)
	_, faultyArr := faulty.SendEager(1, 4, 1<<20, 0)
	if faultyArr <= cleanArr*2 {
		t.Errorf("degraded NIC under contention: faulty %v, clean %v", faultyArr, cleanArr)
	}
}

func TestFaultsSurviveReset(t *testing.T) {
	topo := Topology{Nodes: 2, PPN: 1}
	plan, err := fault.Parse("straggler:node=0,factor=8")
	if err != nil {
		t.Fatal(err)
	}
	m := New(testParams(), topo, 1, false)
	m.SetFaults(plan.Injector(topo.Nodes))
	_, before := m.SendEager(0, 1, 1<<16, 0)
	m.Reset(2)
	_, after := m.SendEager(0, 1, 1<<16, 0)
	if before != after {
		t.Errorf("fault injection lost across Reset: %v vs %v", before, after)
	}
}
