package core

import (
	"bytes"
	"testing"

	"mpicollpred/internal/dataset"
)

// refitPerturb returns a deep copy of ds with config id's measured times
// scaled by factor — the shape of data the online loop feeds back after a
// machine shift.
func refitPerturb(ds *dataset.Dataset, id int, factor float64) *dataset.Dataset {
	out := &dataset.Dataset{Spec: ds.Spec, Consumed: ds.Consumed}
	out.Samples = append([]dataset.Sample(nil), ds.Samples...)
	for i := range out.Samples {
		if out.Samples[i].ConfigID == id {
			out.Samples[i].Time *= factor
		}
	}
	return out
}

func TestRefitReplacesOnlyListedConfigs(t *testing.T) {
	ds, set := testDataset(t)
	trainNodes := []int{2, 4, 6}
	base, err := Train(ds, set, "gam", trainNodes)
	if err != nil {
		t.Fatal(err)
	}
	target := set.Selectable()[0].ID
	ds2 := refitPerturb(ds, target, 5)

	cand, err := Refit(base, ds2, set, []int{target}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// The refit configuration's model must reflect the new data; every
	// other model must predict exactly as base does.
	changed := false
	for _, n := range []int{3, 5} {
		for _, m := range []int64{16, 16384, 1048576} {
			f := Features(n, 4, m)
			for _, cfg := range set.Selectable() {
				b := base.safePredict(cfg.ID, f)
				c := cand.safePredict(cfg.ID, f)
				if cfg.ID == target {
					if b != c {
						changed = true
					}
					continue
				}
				if b != c {
					t.Fatalf("config %d prediction changed by refit of %d: %v -> %v",
						cfg.ID, target, b, c)
				}
			}
		}
	}
	if !changed {
		t.Fatalf("refit of config %d with 5x times left its predictions untouched", target)
	}
	// The union envelope's response range must cover the 5x-scaled data.
	if cand.Envelope().RespMax < base.Envelope().RespMax {
		t.Fatalf("union envelope shrank: %v -> %v", base.Envelope().RespMax, cand.Envelope().RespMax)
	}
}

func TestRefitDeterministicAcrossPoolSizes(t *testing.T) {
	ds, set := testDataset(t)
	trainNodes := []int{2, 4, 6}
	base, err := Train(ds, set, "gam", trainNodes)
	if err != nil {
		t.Fatal(err)
	}
	ids := []int{set.Selectable()[0].ID, set.Selectable()[1].ID, set.Selectable()[2].ID}
	ds2 := refitPerturb(ds, ids[0], 3)
	fp := FingerprintFor(ds2, "gam", trainNodes)

	var snaps [][]byte
	for _, workers := range []int{1, 4} {
		pool := NewFitPool(workers)
		cand, err := Refit(base, ds2, set, ids, pool)
		pool.Close()
		if err != nil {
			t.Fatalf("%d workers: %v", workers, err)
		}
		b, err := cand.Snapshot(fp)
		if err != nil {
			t.Fatalf("%d workers: snapshot: %v", workers, err)
		}
		snaps = append(snaps, b)
	}
	if !bytes.Equal(snaps[0], snaps[1]) {
		t.Fatalf("refit snapshots differ between 1 and 4 fit workers (%d vs %d bytes)",
			len(snaps[0]), len(snaps[1]))
	}
}

func TestRefitLeavesBaseUntouched(t *testing.T) {
	ds, set := testDataset(t)
	trainNodes := []int{2, 4, 6}
	base, err := Train(ds, set, "gam", trainNodes)
	if err != nil {
		t.Fatal(err)
	}
	fp := FingerprintFor(ds, "gam", trainNodes)
	before, err := base.Snapshot(fp)
	if err != nil {
		t.Fatal(err)
	}
	target := set.Selectable()[0].ID
	if _, err := Refit(base, refitPerturb(ds, target, 5), set, []int{target}, nil); err != nil {
		t.Fatal(err)
	}
	after, err := base.Snapshot(fp)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, after) {
		t.Fatalf("refit mutated the base selector")
	}
}

func TestRefitRejectsUnknownConfig(t *testing.T) {
	ds, set := testDataset(t)
	base, err := Train(ds, set, "gam", []int{2, 4, 6})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Refit(base, ds, set, []int{99999}, nil); err == nil {
		t.Fatalf("refit accepted a configuration outside the portfolio")
	}
	if _, err := Refit(base, ds, set, nil, nil); err == nil {
		t.Fatalf("refit accepted an empty configuration list")
	}
}
