package core

import (
	"testing"

	"mpicollpred/internal/bench"
	"mpicollpred/internal/dataset"
)

// The paper notes the approach is offline: predictions "in the order of
// seconds" suffice for SLURM integration, while online use would need
// microseconds. These benchmarks measure where our selector actually lands
// per learner.
func benchSelect(b *testing.B, learner string) {
	spec, err := dataset.SpecByName("d2", dataset.ScaleSmoke)
	if err != nil {
		b.Fatal(err)
	}
	spec.Nodes = []int{2, 3, 4, 5}
	spec.PPNs = []int{1, 4}
	spec.Msizes = []int64{16, 4096, 65536, 1048576}
	ds, err := dataset.Generate(spec, bench.Options{MaxReps: 2, SyncJitter: 1e-7}, nil)
	if err != nil {
		b.Fatal(err)
	}
	_, set, err := spec.Resolve()
	if err != nil {
		b.Fatal(err)
	}
	sel, err := Train(ds, set, learner, []int{2, 4})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := sel.Select(5, 4, 65536)
		if p.ConfigID < 1 {
			b.Fatal("bad selection")
		}
	}
}

func BenchmarkSelectLatencyKNN(b *testing.B)     { benchSelect(b, "knn") }
func BenchmarkSelectLatencyGAM(b *testing.B)     { benchSelect(b, "gam") }
func BenchmarkSelectLatencyXGBoost(b *testing.B) { benchSelect(b, "xgboost") }
