package core

import (
	"testing"

	"mpicollpred/internal/machine"
)

func TestRatioSelectorTrainsAndSelects(t *testing.T) {
	ds, set := testDataset(t)
	mach, err := machine.ByName(ds.Spec.Machine)
	if err != nil {
		t.Fatal(err)
	}
	sel, err := TrainRatio(ds, mach, set, "xgboost", []int{2, 4, 6})
	if err != nil {
		t.Fatal(err)
	}
	if sel.Name() == "" {
		t.Error("empty name")
	}
	for _, m := range []int64{16, 16384, 1048576} {
		p := sel.Select(5, 4, m)
		if p.ConfigID < 1 || p.ConfigID > len(set.Configs) {
			t.Fatalf("invalid selection %+v", p)
		}
	}
}

func TestClassifierSelectorTrainsAndSelects(t *testing.T) {
	ds, set := testDataset(t)
	sel, err := TrainClassifier(ds, set, []int{2, 4, 6}, 5)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, n := range []int{3, 5} {
		for _, ppn := range []int{1, 4} {
			for _, m := range []int64{16, 1024, 16384, 262144, 1048576} {
				p := sel.Select(n, ppn, m)
				if p.ConfigID < 1 {
					t.Fatalf("invalid selection %+v", p)
				}
				seen[p.ConfigID] = true
			}
		}
	}
	// The known bias of direct classification: few distinct labels.
	if len(seen) > 8 {
		t.Logf("classifier used %d distinct configs (unusually many)", len(seen))
	}
}

func TestClassifierErrorsWithoutData(t *testing.T) {
	ds, set := testDataset(t)
	if _, err := TrainClassifier(ds, set, []int{99}, 5); err == nil {
		t.Error("expected error for absent training nodes")
	}
}

func TestStrategiesComparableOnTestSet(t *testing.T) {
	// The paper's argmin-of-runtimes must not lose (in mean measured
	// runtime vs best) to the two rejected strategies on held-out nodes.
	ds, set := testDataset(t)
	mach, err := machine.ByName(ds.Spec.Machine)
	if err != nil {
		t.Fatal(err)
	}
	train := []int{2, 4, 6}
	paper, err := Train(ds, set, "xgboost", train)
	if err != nil {
		t.Fatal(err)
	}
	ratio, err := TrainRatio(ds, mach, set, "xgboost", train)
	if err != nil {
		t.Fatal(err)
	}
	clf, err := TrainClassifier(ds, set, train, 5)
	if err != nil {
		t.Fatal(err)
	}

	score := func(s Strategy) float64 {
		sum, n := 0.0, 0
		for _, nd := range []int{3, 5} {
			for _, ppn := range []int{1, 4} {
				for _, m := range []int64{16, 1024, 16384, 262144, 1048576} {
					p := s.Select(nd, ppn, m)
					tt, ok := ds.Lookup(p.ConfigID, nd, ppn, m)
					if !ok {
						t.Fatalf("%s selected unmeasured config %d", s.Name(), p.ConfigID)
					}
					_, best, _ := ds.Best(set, nd, ppn, m)
					sum += tt / best
					n++
				}
			}
		}
		return sum / float64(n)
	}
	sp, sr, sc := score(paper), score(ratio), score(clf)
	t.Logf("mean selected/best: paper=%.3f ratio=%.3f classifier=%.3f", sp, sr, sc)
	if sp > sr*1.10 && sp > sc*1.10 {
		t.Errorf("paper strategy (%.3f) lost clearly to both rejected strategies (%.3f, %.3f)", sp, sr, sc)
	}
}
