package core

import (
	"fmt"
	"sort"
	"strings"
)

// TuningFile renders the selector's decisions for one allocation
// (nodes × ppn) over a set of message sizes as a rules file in the style of
// Open MPI's coll_tuned dynamic rules: message-size thresholds mapped to
// algorithm ids and parameters. This is the artifact the paper's workflow
// produces right before an application starts ("once we know how many
// compute nodes and processes per node have been requested, we query the
// model for a set of message sizes and create a configuration file").
func (s *Selector) TuningFile(nodes, ppn int, msizes []int64) string {
	sorted := append([]int64(nil), msizes...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })

	var b strings.Builder
	fmt.Fprintf(&b, "# mpicollpred tuning rules\n")
	fmt.Fprintf(&b, "# collective: %s   learner: %s\n", s.Coll, s.Learner)
	fmt.Fprintf(&b, "# allocation: %d nodes x %d ppn (%d processes)\n", nodes, ppn, nodes*ppn)
	fmt.Fprintf(&b, "collective %s\n", s.Coll)
	fmt.Fprintf(&b, "comm-size %d\n", nodes*ppn)
	for _, m := range sorted {
		pred := s.Select(nodes, ppn, m)
		note := fmt.Sprintf("predicted %.3gs", pred.Predicted)
		if pred.Fallback {
			// The guardrails rejected the models' answer (no finite
			// prediction exists); the rule is the library default.
			note = "library default, guardrail " + pred.FallbackReason
		}
		fmt.Fprintf(&b, "msg-size %d alg %d config %d  # %s, %s\n",
			m, pred.AlgID, pred.ConfigID, pred.Label, note)
	}
	return b.String()
}
