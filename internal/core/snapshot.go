// Selector snapshots: a trained Selector — per-configuration learner state,
// training envelopes, quarantine records, and an identity fingerprint — is
// persisted through internal/snapshot's versioned binary codec. A loaded
// selector predicts bit-identically to the in-memory one, so training
// happens once (mpicolltune -save) and serving processes (mpicollserve)
// load the result.

package core

import (
	"fmt"
	"os"
	"sort"

	"mpicollpred/internal/dataset"
	"mpicollpred/internal/machine"
	"mpicollpred/internal/ml"
	"mpicollpred/internal/mpilib"
	"mpicollpred/internal/obs"
	"mpicollpred/internal/snapshot"
)

// Fingerprint identifies what a snapshot was trained on: the dataset (by
// name and content hash), the learner, and the train split. It travels with
// the snapshot so a serving process can report — and a loader can verify —
// exactly which training run produced the model.
type Fingerprint struct {
	Dataset     string
	DatasetHash uint64
	Lib         string
	Version     string
	Machine     string
	Learner     string
	TrainNodes  []int
}

// String renders the fingerprint for logs and /healthz.
func (fp Fingerprint) String() string {
	return fmt.Sprintf("%s/%s (%s %s on %s, nodes %v, data %016x)",
		fp.Dataset, fp.Learner, fp.Lib, fp.Version, fp.Machine, fp.TrainNodes, fp.DatasetHash)
}

// FingerprintFor builds the fingerprint of a selector trained on ds with
// the given split.
func FingerprintFor(ds *dataset.Dataset, learner string, trainNodes []int) Fingerprint {
	return Fingerprint{
		Dataset:     ds.Spec.Name,
		DatasetHash: ds.Hash(),
		Lib:         ds.Spec.Lib,
		Version:     ds.Spec.Version,
		Machine:     ds.Spec.Machine,
		Learner:     learner,
		TrainNodes:  append([]int(nil), trainNodes...),
	}
}

// Snapshot encodes the selector and its fingerprint into the framed binary
// snapshot format. The encoding is deterministic: maps are written in
// sorted key order and floats as raw bits, so the same selector always
// produces the same bytes.
func (s *Selector) Snapshot(fp Fingerprint) ([]byte, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()

	var w snapshot.Writer
	// Fingerprint section.
	w.String(fp.Dataset)
	w.U64(fp.DatasetHash)
	w.String(fp.Lib)
	w.String(fp.Version)
	w.String(fp.Machine)
	w.String(fp.Learner)
	w.Ints(fp.TrainNodes)

	// Selector metadata. The fit wall-clock slot is pinned to zero: wall
	// time is run metadata, not model state — it differs between any two
	// training runs (and between serial and parallel fitting), and encoding
	// it would break the guarantee that retraining the same data yields
	// byte-identical snapshot files.
	w.String(s.Coll)
	w.String(s.Learner)
	w.Ints(s.TrainNodes)
	w.F64(0)
	w.F64(s.PlausibilitySlack)

	// Portfolio identity: the selectable configuration ids and labels, so a
	// loader can detect drift against the code-defined portfolio.
	w.U32(uint32(len(s.configs)))
	for _, cfg := range s.configs {
		w.Int(cfg.ID)
		w.String(cfg.Label())
	}

	// Per-configuration models, sorted by id.
	ids := make([]int, 0, len(s.models))
	for id := range s.models {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	w.U32(uint32(len(ids)))
	for _, id := range ids {
		w.Int(id)
		if err := snapshot.EncodeLearner(&w, s.models[id]); err != nil {
			return nil, fmt.Errorf("core: snapshot config %d: %w", id, err)
		}
	}

	// Envelopes, sorted by id, then the union envelope.
	eids := make([]int, 0, len(s.envelopes))
	for id := range s.envelopes {
		eids = append(eids, id)
	}
	sort.Ints(eids)
	w.U32(uint32(len(eids)))
	for _, id := range eids {
		w.Int(id)
		encodeEnvelope(&w, s.envelopes[id])
	}
	encodeEnvelope(&w, s.envelope)

	// Quarantine records, sorted by id.
	qids := make([]int, 0, len(s.quarantined))
	for id := range s.quarantined {
		qids = append(qids, id)
	}
	sort.Ints(qids)
	w.U32(uint32(len(qids)))
	for _, id := range qids {
		w.Int(id)
		w.String(s.quarantined[id])
	}

	return snapshot.Frame(w.Bytes()), nil
}

func encodeEnvelope(w *snapshot.Writer, e Envelope) {
	w.F64s(e.FeatMin)
	w.F64s(e.FeatMax)
	w.F64(e.RespMin)
	w.F64(e.RespMax)
}

func decodeEnvelope(r *snapshot.Reader) Envelope {
	return Envelope{FeatMin: r.F64s(), FeatMax: r.F64s(), RespMin: r.F64(), RespMax: r.F64()}
}

// DecodeSnapshot rebuilds a selector from snapshot bytes. The library and
// collective are re-resolved from the fingerprint, the portfolio is checked
// against the persisted configuration ids and labels (a drifted portfolio is
// an error, not a silent mis-selection), and the guardrail fallback is
// re-armed with the library's default decision logic.
func DecodeSnapshot(data []byte) (*Selector, Fingerprint, error) {
	payload, err := snapshot.Unframe(data)
	if err != nil {
		return nil, Fingerprint{}, err
	}
	r := snapshot.NewReader(payload)

	var fp Fingerprint
	fp.Dataset = r.String()
	fp.DatasetHash = r.U64()
	fp.Lib = r.String()
	fp.Version = r.String()
	fp.Machine = r.String()
	fp.Learner = r.String()
	fp.TrainNodes = r.Ints()

	sel := &Selector{
		Coll:              r.String(),
		Learner:           r.String(),
		TrainNodes:        r.Ints(),
		FitWall:           r.F64(),
		PlausibilitySlack: r.F64(),
		models:            map[int]ml.Regressor{},
		envelopes:         map[int]Envelope{},
	}
	if err := r.Err(); err != nil {
		return nil, fp, fmt.Errorf("core: snapshot header: %w", err)
	}

	// Re-resolve the portfolio and verify it matches what was trained.
	mach, err := machine.ByName(fp.Machine)
	if err != nil {
		return nil, fp, fmt.Errorf("core: snapshot machine: %w", err)
	}
	lib, err := mpilib.ByName(fp.Lib)
	if err != nil {
		return nil, fp, fmt.Errorf("core: snapshot library: %w", err)
	}
	set, err := lib.Collective(sel.Coll)
	if err != nil {
		return nil, fp, fmt.Errorf("core: snapshot collective: %w", err)
	}
	sel.configs = set.Selectable()

	nCfg := int(r.U32())
	if r.Err() == nil && nCfg != len(sel.configs) {
		return nil, fp, fmt.Errorf("core: snapshot has %d selectable configurations, this build's %s/%s portfolio has %d",
			nCfg, fp.Lib, sel.Coll, len(sel.configs))
	}
	for i := 0; i < nCfg && r.Err() == nil; i++ {
		id, label := r.Int(), r.String()
		if r.Err() != nil {
			break
		}
		if id != sel.configs[i].ID || label != sel.configs[i].Label() {
			return nil, fp, fmt.Errorf("core: snapshot portfolio drift at position %d: snapshot has %d (%s), build has %d (%s)",
				i, id, label, sel.configs[i].ID, sel.configs[i].Label())
		}
	}

	nModels := int(r.U32())
	for i := 0; i < nModels && r.Err() == nil; i++ {
		id := r.Int()
		m, err := snapshot.DecodeLearner(r)
		if err != nil {
			return nil, fp, fmt.Errorf("core: snapshot model %d: %w", id, err)
		}
		sel.models[id] = m
	}

	nEnv := int(r.U32())
	for i := 0; i < nEnv && r.Err() == nil; i++ {
		id := r.Int()
		sel.envelopes[id] = decodeEnvelope(r)
	}
	sel.envelope = decodeEnvelope(r)

	nQuar := int(r.U32())
	for i := 0; i < nQuar && r.Err() == nil; i++ {
		id := r.Int()
		reason := r.String()
		if sel.quarantined == nil {
			sel.quarantined = map[int]string{}
		}
		sel.quarantined[id] = reason
	}
	if err := r.Err(); err != nil {
		return nil, fp, fmt.Errorf("core: snapshot body: %w", err)
	}

	sel.selectHist = obs.Default.Histogram("core_select_seconds", obs.Labels{"learner": sel.Learner})
	sel.SetFallback(mach, set)
	return sel, fp, nil
}

// SaveSnapshot writes the selector to path atomically (tmp + rename), in
// the same crash-safe style as the dataset cache.
func (s *Selector) SaveSnapshot(path string, fp Fingerprint) error {
	data, err := s.Snapshot(fp)
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// LoadSnapshot reads a selector snapshot from disk.
func LoadSnapshot(path string) (*Selector, Fingerprint, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, Fingerprint{}, err
	}
	sel, fp, err := DecodeSnapshot(data)
	if err != nil {
		return nil, fp, fmt.Errorf("core: loading snapshot %s: %w", path, err)
	}
	return sel, fp, nil
}
