// The fit worker pool: Train's per-configuration model fits are
// embarrassingly parallel (one independent regression per configuration),
// so they run on a bounded pool of long-lived workers. One pool is shared
// by every concurrent Train call — the tuning matrix (learner × collective)
// of mpicolltune trains many selectors at once without oversubscribing the
// machine — and the pool reports its size and per-worker busy time into the
// observability registry.
//
// Parallel fitting is bit-identical to serial fitting: workers only compute
// (model, envelope, wall time) for their configuration, and Train commits
// all results in configuration order on a single goroutine, so map
// contents, envelope merges, FitWall accumulation order, and quarantine
// records are independent of worker count and scheduling.

package core

import (
	"runtime"
	"strconv"
	"sync"
	"time"

	"mpicollpred/internal/obs"
)

// FitPool is a bounded pool of model-fitting workers. It is safe for
// concurrent Train calls to share one pool; submitted work must never
// itself submit to the same pool (Train does not).
type FitPool struct {
	workers int
	jobs    chan func()
	wg      sync.WaitGroup
	once    sync.Once
}

// NewFitPool starts a pool with the given number of workers; workers <= 0
// means GOMAXPROCS. The pool reports `core_fit_workers` and accumulates
// `core_fit_worker_busy_seconds{worker=...}` so utilization per worker is
// visible in a metrics snapshot.
func NewFitPool(workers int) *FitPool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := &FitPool{workers: workers, jobs: make(chan func())}
	obs.Default.Gauge("core_fit_workers", nil).Set(float64(workers))
	for i := 0; i < workers; i++ {
		p.wg.Add(1)
		busy := obs.Default.Gauge("core_fit_worker_busy_seconds",
			obs.Labels{"worker": strconv.Itoa(i)})
		go func() {
			defer p.wg.Done()
			for f := range p.jobs {
				t0 := time.Now()
				f()
				busy.Add(time.Since(t0).Seconds())
			}
		}()
	}
	return p
}

// Workers returns the pool size.
func (p *FitPool) Workers() int { return p.workers }

// submit blocks until a worker accepts the job.
func (p *FitPool) submit(f func()) { p.jobs <- f }

// Close stops the workers after the queue drains. A closed pool must not
// receive further Train calls.
func (p *FitPool) Close() {
	p.once.Do(func() {
		close(p.jobs)
		p.wg.Wait()
	})
}

var (
	defaultPoolMu sync.Mutex
	defaultPool   *FitPool
)

// DefaultFitPool returns the package-level pool Train uses when no explicit
// pool is given, creating it with GOMAXPROCS workers on first use.
func DefaultFitPool() *FitPool {
	defaultPoolMu.Lock()
	defer defaultPoolMu.Unlock()
	if defaultPool == nil {
		//mpicollvet:ignore lockscope first-use init: blocking other callers until the pool exists is the point
		defaultPool = NewFitPool(0)
	}
	return defaultPool
}

// SetFitWorkers replaces the default pool with one of the given size
// (<= 0 means GOMAXPROCS; 1 fits serially). It is meant for CLI startup
// (the -fitworkers flag) and must not race with in-flight Train calls.
func SetFitWorkers(n int) {
	defaultPoolMu.Lock()
	defer defaultPoolMu.Unlock()
	if defaultPool != nil {
		//mpicollvet:ignore lockscope startup-only swap; draining the old pool under the lock keeps DefaultFitPool callers off the dying pool
		defaultPool.Close()
	}
	//mpicollvet:ignore lockscope startup-only swap, see Close above
	defaultPool = NewFitPool(n)
}
