// Guardrails keep a trained Selector safe to deploy: every per-configuration
// model carries the envelope of its training data, and Select refuses to
// trust predictions outside it — out-of-envelope (extrapolating) queries and
// implausible predicted times fall back to the library's default decision
// logic, which is exactly what an untuned MPI run would have used. A model
// whose learner panics is quarantined and simply never selected, so one
// broken regressor cannot take down a tuned installation.

package core

import (
	"fmt"
	"math"

	"mpicollpred/internal/machine"
	"mpicollpred/internal/ml"
	"mpicollpred/internal/mpilib"
	"mpicollpred/internal/obs"
)

// Envelope is the axis-aligned bounding box of a model's training features
// plus the range of its training responses. It answers two questions at
// selection time: is this query an interpolation (trustworthy) or an
// extrapolation, and is this predicted time even plausible given what the
// model was trained on?
type Envelope struct {
	FeatMin, FeatMax []float64
	RespMin, RespMax float64
}

func newEnvelope(x [][]float64, y []float64) Envelope {
	e := Envelope{
		FeatMin: append([]float64(nil), x[0]...),
		FeatMax: append([]float64(nil), x[0]...),
		RespMin: y[0], RespMax: y[0],
	}
	for _, row := range x[1:] {
		for j, v := range row {
			if v < e.FeatMin[j] {
				e.FeatMin[j] = v
			}
			if v > e.FeatMax[j] {
				e.FeatMax[j] = v
			}
		}
	}
	for _, v := range y[1:] {
		if v < e.RespMin {
			e.RespMin = v
		}
		if v > e.RespMax {
			e.RespMax = v
		}
	}
	return e
}

// merge widens the envelope to cover o.
func (e *Envelope) merge(o Envelope) {
	if e.FeatMin == nil {
		*e = Envelope{
			FeatMin: append([]float64(nil), o.FeatMin...),
			FeatMax: append([]float64(nil), o.FeatMax...),
			RespMin: o.RespMin, RespMax: o.RespMax,
		}
		return
	}
	for j := range e.FeatMin {
		if o.FeatMin[j] < e.FeatMin[j] {
			e.FeatMin[j] = o.FeatMin[j]
		}
		if o.FeatMax[j] > e.FeatMax[j] {
			e.FeatMax[j] = o.FeatMax[j]
		}
	}
	if o.RespMin < e.RespMin {
		e.RespMin = o.RespMin
	}
	if o.RespMax > e.RespMax {
		e.RespMax = o.RespMax
	}
}

// Contains reports whether f lies inside the feature box (bounds inclusive,
// so every training instance is inside its own envelope).
func (e Envelope) Contains(f []float64) bool {
	if len(f) != len(e.FeatMin) {
		return false
	}
	for j, v := range f {
		if v < e.FeatMin[j] || v > e.FeatMax[j] || math.IsNaN(v) {
			return false
		}
	}
	return true
}

// Plausible reports whether a predicted time is within the training-response
// range widened by slack on each side. slack is a multiplicative factor:
// with the default of 100, a model predicting a time 100x beyond anything it
// ever saw is declared broken rather than believed.
func (e Envelope) Plausible(t, slack float64) bool {
	if slack <= 1 {
		slack = DefaultPlausibilitySlack
	}
	return t >= e.RespMin/slack && t <= e.RespMax*slack
}

// DefaultPlausibilitySlack is the multiplicative widening applied to a
// model's training-response range before a prediction is declared
// implausible. Generous on purpose: legitimate extrapolation in time (larger
// messages run longer) must pass; only runaway model output should trip it.
const DefaultPlausibilitySlack = 100

// SetFallback arms the selector's guardrails with the library's default
// decision logic. Once set, Select falls back to set.Decide — the exact
// behavior of an untuned MPI installation — whenever a query extrapolates
// beyond every model's training envelope, the winning prediction is
// implausible, or no healthy model produced a finite prediction. Without a
// fallback the guardrails stay disarmed and Select behaves exactly as
// before.
func (s *Selector) SetFallback(mach machine.Machine, set *mpilib.CollectiveSet) {
	s.fbMach = mach
	s.fbSet = set
}

// guarded reports whether a fallback decision logic is installed.
func (s *Selector) guarded() bool { return s.fbSet != nil }

// Fallbacks returns how many Select calls were answered by the library's
// default decision logic instead of the models.
func (s *Selector) Fallbacks() int { return int(s.fallbacks.Load()) }

// Quarantined returns the configuration ids whose model was removed after a
// learner panic, with the recorded reason.
func (s *Selector) Quarantined() map[int]string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make(map[int]string, len(s.quarantined))
	for id, reason := range s.quarantined {
		out[id] = reason
	}
	return out
}

// Envelope returns the union training envelope across all models.
func (s *Selector) Envelope() Envelope { return s.envelope }

// quarantine removes a model from selection permanently and books the event.
// Safe to call from concurrent Select paths.
func (s *Selector) quarantine(id int, stage, reason string) {
	s.mu.Lock()
	delete(s.models, id)
	if s.quarantined == nil {
		s.quarantined = map[int]string{}
	}
	s.quarantined[id] = stage + ": " + reason
	s.mu.Unlock()
	obs.Default.Counter("core_model_quarantined_total",
		obs.Labels{"learner": s.Learner, "stage": stage}).Inc()
}

// safeFit runs Fit with panic recovery; a panic is converted into an error
// so Train can quarantine the configuration instead of crashing.
func safeFit(m ml.Regressor, x [][]float64, y []float64) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("%w: %v", errLearnerPanic, r)
		}
	}()
	return m.Fit(x, y)
}

// errLearnerPanic marks a Fit failure that came from a panic rather than a
// returned error.
var errLearnerPanic = fmt.Errorf("core: learner panicked")

// safePredict queries one model with panic recovery. A missing (quarantined)
// model yields NaN; a panicking model is quarantined on the spot and also
// yields NaN, which every selection path already skips. The model pointer is
// read under RLock but Predict runs unlocked — learners are immutable after
// Fit, and quarantine (re)takes the write lock itself.
func (s *Selector) safePredict(id int, f []float64) (t float64) {
	s.mu.RLock()
	m, ok := s.models[id]
	s.mu.RUnlock()
	if !ok {
		return math.NaN()
	}
	defer func() {
		if r := recover(); r != nil {
			t = math.NaN()
			s.quarantine(id, "predict", fmt.Sprint(r))
		}
	}()
	return m.Predict(f)
}

// fallback answers a Select call with the library's default decision logic.
func (s *Selector) fallback(nodes, ppn int, msize int64, reason string) Prediction {
	s.fallbacks.Add(1)
	obs.Default.Counter("core_select_fallback_total",
		obs.Labels{"learner": s.Learner, "reason": reason}).Inc()
	p := Prediction{ConfigID: mpilib.DefaultID, Label: "library-default",
		Predicted: math.NaN(), Fallback: true, FallbackReason: reason}
	topo, err := s.fbMach.Topo(nodes, ppn)
	if err != nil {
		return p
	}
	id := s.fbSet.Decide(s.fbMach, topo, msize)
	if cfg, err := s.fbSet.Config(id); err == nil {
		p.ConfigID, p.AlgID, p.Label = cfg.ID, cfg.AlgID, cfg.Label()
	}
	return p
}
