// Incremental refitting: the online-retraining loop re-measures the grid
// cells a drifted model serves and needs only those configurations refit —
// retraining the whole selector would redo work on models whose data did
// not change and would lose their bit-exact identity. Refit clones a
// trained selector, refits exactly the listed configurations from the
// (updated) dataset, and reassembles the guardrail state, with the same
// worker-count-independence guarantee as TrainPool: the candidate's
// snapshot bytes depend only on the inputs, never on pool size or
// scheduling.

package core

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"mpicollpred/internal/dataset"
	"mpicollpred/internal/ml"
	"mpicollpred/internal/mpilib"
	"mpicollpred/internal/obs"
)

// Refit returns a new selector that predicts like base except for the
// listed configurations, whose models are refit from ds over base's
// training node counts. Untouched models are shared with base (regressors
// are immutable after Fit), so a refit of k configurations costs k fits
// regardless of portfolio size. A configuration that was quarantined in
// base and refits cleanly here rejoins selection; one whose learner panics
// again is quarantined in the candidate. base itself is never mutated.
//
// Determinism: fits fan out on pool but are committed in ascending
// configuration-id order on this goroutine, and the union envelope is
// rebuilt by a min/max merge over the portfolio in selectable order —
// the candidate is bit-identical across pool sizes.
func Refit(base *Selector, ds *dataset.Dataset, set *mpilib.CollectiveSet, configIDs []int, pool *FitPool) (*Selector, error) {
	if base == nil {
		return nil, fmt.Errorf("core: refit: nil base selector")
	}
	if len(configIDs) == 0 {
		return nil, fmt.Errorf("core: refit: no configurations listed")
	}
	if _, err := ml.New(base.Learner); err != nil {
		return nil, err
	}

	// Dedupe and order the refit set; every id must be in the selectable
	// portfolio (excluded or unknown ids have no model to refit).
	selectable := map[int]bool{}
	for _, cfg := range set.Selectable() {
		selectable[cfg.ID] = true
	}
	inSet := map[int]bool{}
	for _, id := range configIDs {
		if !selectable[id] {
			return nil, fmt.Errorf("core: refit: configuration %d is not selectable", id)
		}
		inSet[id] = true
	}
	ids := make([]int, 0, len(inSet))
	for id := range inSet {
		ids = append(ids, id)
	}
	sort.Ints(ids)

	inTrain := map[int]bool{}
	for _, n := range base.TrainNodes {
		inTrain[n] = true
	}
	xs := map[int][][]float64{}
	ys := map[int][]float64{}
	for _, s := range ds.Samples {
		if !inSet[s.ConfigID] || !inTrain[s.Nodes] {
			continue
		}
		xs[s.ConfigID] = append(xs[s.ConfigID], Features(s.Nodes, s.PPN, s.Msize))
		ys[s.ConfigID] = append(ys[s.ConfigID], s.Time)
	}
	for _, id := range ids {
		if len(xs[id]) == 0 {
			return nil, fmt.Errorf("core: refit: configuration %d has no training samples on nodes %v",
				id, base.TrainNodes)
		}
	}

	cand := &Selector{
		Coll:              base.Coll,
		Learner:           base.Learner,
		TrainNodes:        append([]int(nil), base.TrainNodes...),
		PlausibilitySlack: base.PlausibilitySlack,
		configs:           set.Selectable(),
		models:            make(map[int]ml.Regressor),
		envelopes:         make(map[int]Envelope),
		selectHist:        base.selectHist,
		fbMach:            base.fbMach,
		fbSet:             base.fbSet,
	}

	// Carry over every model and envelope that is not being refit, and
	// every quarantine record except the ones the refit may clear.
	base.mu.RLock()
	for id, m := range base.models {
		if !inSet[id] {
			cand.models[id] = m
		}
	}
	for id, reason := range base.quarantined {
		if !inSet[id] {
			if cand.quarantined == nil {
				cand.quarantined = map[int]string{}
			}
			cand.quarantined[id] = reason
		}
	}
	base.mu.RUnlock()
	for id, env := range base.envelopes {
		if !inSet[id] {
			cand.envelopes[id] = env
		}
	}

	if pool == nil {
		pool = DefaultFitPool()
	}
	fitHist := obs.Default.Histogram("core_fit_seconds", obs.Labels{"learner": base.Learner})

	results := make([]fitResult, len(ids))
	var wg sync.WaitGroup
	for i, id := range ids {
		i, x, y := i, xs[id], ys[id]
		wg.Add(1)
		pool.submit(func() {
			defer wg.Done()
			m, err := ml.New(base.Learner)
			if err != nil {
				results[i].err = err
				return
			}
			f0 := time.Now()
			if err := safeFit(m, x, y); err != nil {
				results[i].err = err
				return
			}
			results[i] = fitResult{m: m, env: newEnvelope(x, y), wall: time.Since(f0).Seconds()}
		})
	}
	wg.Wait()

	for i, id := range ids {
		res := results[i]
		if res.err != nil {
			if errors.Is(res.err, errLearnerPanic) {
				cand.quarantine(id, "refit", res.err.Error())
				continue
			}
			return nil, fmt.Errorf("core: refitting %s for config %d: %w", base.Learner, id, res.err)
		}
		cand.FitWall += res.wall
		fitHist.Observe(res.wall)
		cand.models[id] = res.m
		cand.envelopes[id] = res.env
		obs.Default.Counter("core_refit_total", obs.Labels{"learner": base.Learner}).Inc()
	}

	// The union envelope cannot be widened incrementally — a refit model's
	// envelope may have shrunk — so rebuild it from the per-configuration
	// envelopes. Min/max merging is order-independent; iterating in
	// selectable order just keeps the loop deterministic by construction.
	cand.envelope = Envelope{}
	for _, cfg := range cand.configs {
		if env, ok := cand.envelopes[cfg.ID]; ok {
			cand.envelope.merge(env)
		}
	}
	return cand, nil
}

// RefitAll is Refit over every selectable configuration — a full retrain
// that preserves base's guardrail arming and slack settings.
func RefitAll(base *Selector, ds *dataset.Dataset, set *mpilib.CollectiveSet, pool *FitPool) (*Selector, error) {
	ids := make([]int, 0, len(set.Selectable()))
	for _, cfg := range set.Selectable() {
		ids = append(ids, cfg.ID)
	}
	return Refit(base, ds, set, ids, pool)
}
