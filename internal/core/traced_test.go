package core

import (
	"testing"

	"mpicollpred/internal/dataset"
	"mpicollpred/internal/obs"
)

// recordingTracer captures stage names in call order.
type recordingTracer struct{ stages []string }

func (r *recordingTracer) StartSpan(name string) func() {
	r.stages = append(r.stages, name)
	return func() {}
}

func tracedSelector(t *testing.T) (*Selector, *dataset.Dataset) {
	t.Helper()
	ds, set := testDataset(t)
	sel, err := Train(ds, set, "linear", []int{2, 4, 6})
	if err != nil {
		t.Fatal(err)
	}
	sel.SetFallback(testMachine(t), set)
	return sel, ds
}

func TestSelectTracedStagesAndEquivalence(t *testing.T) {
	sel, _ := tracedSelector(t)

	// In-envelope query: guardrails then argmin, and the traced answer must
	// equal the untraced one exactly.
	tr := &recordingTracer{}
	want := sel.Select(4, 4, 1024)
	got := sel.SelectTraced(4, 4, 1024, tr)
	if got != want {
		t.Errorf("traced selection %+v != untraced %+v", got, want)
	}
	if len(tr.stages) != 2 || tr.stages[0] != "guardrails" || tr.stages[1] != "argmin" {
		t.Errorf("in-envelope stages = %v, want [guardrails argmin]", tr.stages)
	}

	// Out-of-envelope query: guardrails then fallback, never argmin.
	tr = &recordingTracer{}
	p := sel.SelectTraced(4, 4, 1<<40, tr)
	if !p.Fallback || p.FallbackReason != "extrapolation" {
		t.Fatalf("expected extrapolation fallback, got %+v", p)
	}
	if len(tr.stages) != 2 || tr.stages[0] != "guardrails" || tr.stages[1] != "fallback" {
		t.Errorf("extrapolation stages = %v, want [guardrails fallback]", tr.stages)
	}
}

func TestSelectTracedUnguardedSkipsGuardrailStage(t *testing.T) {
	ds, set := testDataset(t)
	sel, err := Train(ds, set, "linear", []int{2, 4, 6})
	if err != nil {
		t.Fatal(err)
	}
	tr := &recordingTracer{}
	_ = sel.SelectTraced(4, 4, 1024, tr)
	if len(tr.stages) != 1 || tr.stages[0] != "argmin" {
		t.Errorf("unguarded stages = %v, want [argmin]", tr.stages)
	}
}

// TestSelectTracedWithObsSpan wires the real obs span type through the
// Tracer seam — the exact serve-path composition.
func TestSelectTracedWithObsSpan(t *testing.T) {
	sel, _ := tracedSelector(t)
	ring := obs.NewSpanRing(4)
	root := ring.StartRequest("req-1", "select")
	_ = sel.SelectTraced(4, 4, 1024, root)
	root.End()
	traces := ring.Snapshot()
	if len(traces) != 1 {
		t.Fatalf("got %d traces", len(traces))
	}
	names := map[string]bool{}
	for _, sp := range traces[0].Spans {
		names[sp.Name] = true
	}
	if !names["guardrails"] || !names["argmin"] {
		t.Errorf("span names = %v, want guardrails+argmin children", names)
	}
}
