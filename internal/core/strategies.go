package core

import (
	"fmt"
	"math"

	"mpicollpred/internal/dataset"
	"mpicollpred/internal/floats"
	"mpicollpred/internal/machine"
	"mpicollpred/internal/ml"
	"mpicollpred/internal/mpilib"
)

// Strategy is a trained algorithm-selection policy: given an instance, pick
// a configuration. The paper's contribution (Selector) is one Strategy; this
// file implements the two alternatives the paper discusses and rejects in
// §III-A, so their weaknesses can be demonstrated rather than assumed:
//
//   - RatioSelector: the authors' earlier approach ([9], PMBS 2018) — regress
//     the *relative improvement* of each algorithm over the default strategy
//     and pick the largest predicted ratio. Its flaw: "algorithm 0" is not an
//     algorithm but a strategy, so the regression target behaves irregularly
//     across the feature space, and ratios live in (0, inf) which biases
//     split-based learners.
//   - ClassifierSelector: label every training instance with its best
//     configuration and predict the label directly. Its flaw: a few
//     configurations win almost everywhere, so the label distribution is
//     extremely skewed and rarely-best configurations are never predicted.
type Strategy interface {
	Name() string
	Select(nodes, ppn int, msize int64) Prediction
}

// Name implements Strategy for the paper's per-configuration selector.
func (s *Selector) Name() string { return "argmin-runtime (" + s.Learner + ")" }

var _ Strategy = (*Selector)(nil)

// RatioSelector predicts T(default)/T(config) per configuration and selects
// the configuration with the largest predicted ratio.
type RatioSelector struct {
	Learner string
	configs []mpilib.Config
	models  map[int]ml.Regressor
}

// TrainRatio fits the prior-work ratio models. The default strategy's
// measured time at each training instance is obtained through the library's
// decision logic, exactly as [9] did.
func TrainRatio(ds *dataset.Dataset, mach machine.Machine, set *mpilib.CollectiveSet,
	learner string, trainNodes []int) (*RatioSelector, error) {

	inTrain := map[int]bool{}
	for _, n := range trainNodes {
		inTrain[n] = true
	}
	// Default times per training instance.
	defT := map[dataset.Instance]float64{}
	for _, in := range ds.Instances() {
		if !inTrain[in.Nodes] {
			continue
		}
		topo, err := mach.Topo(in.Nodes, in.PPN)
		if err != nil {
			return nil, err
		}
		id := set.Decide(mach, topo, in.Msize)
		t, ok := ds.Lookup(id, in.Nodes, in.PPN, in.Msize)
		if !ok {
			return nil, fmt.Errorf("core: default config %d unmeasured for %+v", id, in)
		}
		defT[in] = t
	}

	sel := &RatioSelector{Learner: learner, configs: set.Selectable(), models: map[int]ml.Regressor{}}
	xs := map[int][][]float64{}
	ys := map[int][]float64{}
	for _, s := range ds.Samples {
		if !inTrain[s.Nodes] {
			continue
		}
		d, ok := defT[dataset.Instance{Nodes: s.Nodes, PPN: s.PPN, Msize: s.Msize}]
		if !ok {
			continue
		}
		xs[s.ConfigID] = append(xs[s.ConfigID], Features(s.Nodes, s.PPN, s.Msize))
		ys[s.ConfigID] = append(ys[s.ConfigID], d/s.Time)
	}
	for _, cfg := range sel.configs {
		m, err := ml.New(learner)
		if err != nil {
			return nil, err
		}
		if len(xs[cfg.ID]) == 0 {
			return nil, fmt.Errorf("core: no ratio training data for config %d", cfg.ID)
		}
		if err := m.Fit(xs[cfg.ID], ys[cfg.ID]); err != nil {
			return nil, fmt.Errorf("core: ratio model for %s: %w", cfg.Label(), err)
		}
		sel.models[cfg.ID] = m
	}
	return sel, nil
}

// Name implements Strategy.
func (s *RatioSelector) Name() string { return "ratio-to-default (" + s.Learner + ")" }

// Select implements Strategy: argmax of the predicted improvement ratio.
func (s *RatioSelector) Select(nodes, ppn int, msize int64) Prediction {
	f := Features(nodes, ppn, msize)
	var best Prediction
	bestRatio := math.Inf(-1)
	for _, cfg := range s.configs {
		r := s.models[cfg.ID].Predict(f)
		if math.IsNaN(r) {
			continue
		}
		if r > bestRatio {
			bestRatio = r
			best = Prediction{ConfigID: cfg.ID, AlgID: cfg.AlgID, Label: cfg.Label(), Predicted: r}
		}
	}
	return best
}

var _ Strategy = (*RatioSelector)(nil)

// ClassifierSelector predicts the best configuration id directly with a
// nearest-neighbour vote over labeled training instances.
type ClassifierSelector struct {
	K       int
	mean    []float64
	scale   []float64
	x       [][]float64
	label   []int
	configs map[int]mpilib.Config
}

// TrainClassifier labels each training instance with its empirically best
// configuration and memorizes the labeled set.
func TrainClassifier(ds *dataset.Dataset, set *mpilib.CollectiveSet, trainNodes []int, k int) (*ClassifierSelector, error) {
	if k < 1 {
		k = 5
	}
	inTrain := map[int]bool{}
	for _, n := range trainNodes {
		inTrain[n] = true
	}
	sel := &ClassifierSelector{K: k, configs: map[int]mpilib.Config{}}
	for _, cfg := range set.Selectable() {
		sel.configs[cfg.ID] = cfg
	}
	for _, in := range ds.Instances() {
		if !inTrain[in.Nodes] {
			continue
		}
		id, _, ok := ds.Best(set, in.Nodes, in.PPN, in.Msize)
		if !ok {
			return nil, fmt.Errorf("core: no best for %+v", in)
		}
		sel.x = append(sel.x, Features(in.Nodes, in.PPN, in.Msize))
		sel.label = append(sel.label, id)
	}
	if len(sel.x) == 0 {
		return nil, fmt.Errorf("core: no training instances on nodes %v", trainNodes)
	}
	d := len(sel.x[0])
	sel.mean = make([]float64, d)
	sel.scale = make([]float64, d)
	for _, row := range sel.x {
		for j, v := range row {
			sel.mean[j] += v
		}
	}
	n := float64(len(sel.x))
	for j := range sel.mean {
		sel.mean[j] /= n
	}
	for _, row := range sel.x {
		for j, v := range row {
			dv := v - sel.mean[j]
			sel.scale[j] += dv * dv
		}
	}
	for j := range sel.scale {
		sel.scale[j] = math.Sqrt(sel.scale[j] / n)
		if floats.Zero(sel.scale[j]) {
			sel.scale[j] = 1
		}
	}
	for _, row := range sel.x {
		for j := range row {
			row[j] = (row[j] - sel.mean[j]) / sel.scale[j]
		}
	}
	return sel, nil
}

// Name implements Strategy.
func (s *ClassifierSelector) Name() string { return fmt.Sprintf("direct-classification (%d-NN)", s.K) }

// Select implements Strategy: majority label among the K nearest instances.
func (s *ClassifierSelector) Select(nodes, ppn int, msize int64) Prediction {
	f := Features(nodes, ppn, msize)
	for j := range f {
		f[j] = (f[j] - s.mean[j]) / s.scale[j]
	}
	type cand struct {
		d  float64
		id int
	}
	k := s.K
	if k > len(s.x) {
		k = len(s.x)
	}
	best := make([]cand, 0, k)
	for i, row := range s.x {
		d := 0.0
		for j := range f {
			dv := f[j] - row[j]
			d += dv * dv
		}
		if len(best) < k {
			best = append(best, cand{d, s.label[i]})
			continue
		}
		worst, wi := -1.0, -1
		for bi, c := range best {
			if c.d > worst {
				worst, wi = c.d, bi
			}
		}
		if d < worst {
			best[wi] = cand{d, s.label[i]}
		}
	}
	votes := map[int]int{}
	for _, c := range best {
		votes[c.id]++
	}
	bestID, bestVotes := 0, -1
	for id, v := range votes {
		if v > bestVotes || (v == bestVotes && id < bestID) {
			bestID, bestVotes = id, v
		}
	}
	cfg := s.configs[bestID]
	return Prediction{ConfigID: bestID, AlgID: cfg.AlgID, Label: cfg.Label()}
}

var _ Strategy = (*ClassifierSelector)(nil)
