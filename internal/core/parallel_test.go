package core

import (
	"bytes"
	"math"
	"sync"
	"testing"

	"mpicollpred/internal/ml"
)

// TestTrainParallelBitIdentical is the acceptance test of the parallel
// fitting path: for every registered learner, a selector trained on a
// 4-worker pool must snapshot to exactly the bytes of one trained on a
// 1-worker (serial) pool and of one trained on the default pool — model
// state, envelopes, and quarantine records are independent of worker count
// and scheduling.
func TestTrainParallelBitIdentical(t *testing.T) {
	ds, set := testDataset(t)
	trainNodes := []int{2, 4, 6}
	serial := NewFitPool(1)
	defer serial.Close()
	par := NewFitPool(4)
	defer par.Close()

	for _, learner := range []string{"knn", "gam", "xgboost", "rf", "linear"} {
		a, err := TrainPool(ds, set, learner, trainNodes, serial)
		if err != nil {
			t.Fatalf("%s: serial: %v", learner, err)
		}
		b, err := TrainPool(ds, set, learner, trainNodes, par)
		if err != nil {
			t.Fatalf("%s: parallel: %v", learner, err)
		}
		c, err := Train(ds, set, learner, trainNodes)
		if err != nil {
			t.Fatalf("%s: default pool: %v", learner, err)
		}
		if b.FitWall <= 0 {
			t.Errorf("%s: parallel FitWall = %v, accounting lost", learner, b.FitWall)
		}
		fp := FingerprintFor(ds, learner, trainNodes)
		sa, err := a.Snapshot(fp)
		if err != nil {
			t.Fatal(err)
		}
		sb, err := b.Snapshot(fp)
		if err != nil {
			t.Fatal(err)
		}
		sc, err := c.Snapshot(fp)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(sa, sb) {
			t.Errorf("%s: 4-worker snapshot differs from serial snapshot", learner)
		}
		if !bytes.Equal(sa, sc) {
			t.Errorf("%s: default-pool snapshot differs from serial snapshot", learner)
		}
	}
}

// TestTrainParallelQuarantineDeterministic drives the quarantine-on-panic
// path through the worker pool: a learner whose Fit always panics must
// leave the same quarantine records — and the same snapshot bytes — no
// matter how many workers fitted it.
func TestTrainParallelQuarantineDeterministic(t *testing.T) {
	ml.Register("panic-fit-par", func() ml.Regressor { return &panicLearner{fitPanics: true} })
	ds, set := testDataset(t)
	trainNodes := []int{2, 4, 6}
	serial := NewFitPool(1)
	defer serial.Close()
	par := NewFitPool(4)
	defer par.Close()

	a, err := TrainPool(ds, set, "panic-fit-par", trainNodes, serial)
	if err != nil {
		t.Fatalf("serial: %v", err)
	}
	b, err := TrainPool(ds, set, "panic-fit-par", trainNodes, par)
	if err != nil {
		t.Fatalf("parallel: %v", err)
	}
	if len(b.Quarantined()) != len(set.Selectable()) {
		t.Fatalf("parallel run quarantined %d of %d configs", len(b.Quarantined()), len(set.Selectable()))
	}
	qa, qb := a.Quarantined(), b.Quarantined()
	for id, reason := range qa {
		if qb[id] != reason {
			t.Errorf("config %d: quarantine reason %q (parallel) vs %q (serial)", id, qb[id], reason)
		}
	}
	fp := FingerprintFor(ds, "panic-fit-par", trainNodes)
	sa, err := a.Snapshot(fp)
	if err != nil {
		t.Fatal(err)
	}
	sb, err := b.Snapshot(fp)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sa, sb) {
		t.Error("quarantine-heavy snapshots differ between serial and parallel training")
	}
}

// TestTrainMatrixSharedPool trains a learner matrix concurrently on one
// shared pool — the mpicolltune deployment shape — and checks every
// selector against its serially trained twin. Meaningful under -race: the
// pool's workers, the per-Train result slices, and the obs accounting all
// run concurrently here.
func TestTrainMatrixSharedPool(t *testing.T) {
	ds, set := testDataset(t)
	trainNodes := []int{2, 4, 6}
	learners := []string{"knn", "gam", "xgboost", "rf", "linear"}

	serial := NewFitPool(1)
	defer serial.Close()
	want := make(map[string][]byte, len(learners))
	for _, learner := range learners {
		sel, err := TrainPool(ds, set, learner, trainNodes, serial)
		if err != nil {
			t.Fatalf("%s: %v", learner, err)
		}
		snap, err := sel.Snapshot(FingerprintFor(ds, learner, trainNodes))
		if err != nil {
			t.Fatal(err)
		}
		want[learner] = snap
	}

	pool := NewFitPool(4)
	defer pool.Close()
	got := make(map[string][]byte, len(learners))
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, learner := range learners {
		wg.Add(1)
		go func(learner string) {
			defer wg.Done()
			sel, err := TrainPool(ds, set, learner, trainNodes, pool)
			if err != nil {
				t.Errorf("%s: %v", learner, err)
				return
			}
			snap, err := sel.Snapshot(FingerprintFor(ds, learner, trainNodes))
			if err != nil {
				t.Errorf("%s: %v", learner, err)
				return
			}
			mu.Lock()
			got[learner] = snap
			mu.Unlock()
		}(learner)
	}
	wg.Wait()
	for _, learner := range learners {
		if !bytes.Equal(got[learner], want[learner]) {
			t.Errorf("%s: matrix-trained snapshot differs from serial snapshot", learner)
		}
	}
}

// nanAt predicts NaN for every query — a live (non-quarantined) model gone
// numerically wrong, the case the PredictAll sort must survive.
type nanAt struct{}

func (nanAt) Fit(x [][]float64, y []float64) error { return nil }
func (nanAt) Predict(x []float64) float64          { return math.NaN() }

// constPred predicts a fixed time.
type constPred struct{ v float64 }

func (c constPred) Fit(x [][]float64, y []float64) error { return nil }
func (c constPred) Predict(x []float64) float64          { return c.v }

// TestPredictAllDeterministicWithTiesAndNaN is the regression test for the
// argmin-ordering bug: tied predictions and NaN-predicting live models used
// to make the response order depend on sort.Slice's pivot choices (a `<`
// comparator over NaN is not a strict weak order). Now NaN maps to +Inf
// before sorting and ties break on ConfigID, so the ranking is a function
// of the predictions alone.
func TestPredictAllDeterministicWithTiesAndNaN(t *testing.T) {
	ds, set := testDataset(t)
	sel, err := Train(ds, set, "knn", []int{2, 4, 6})
	if err != nil {
		t.Fatal(err)
	}
	cfgs := sel.Configs()
	if len(cfgs) < 4 {
		t.Fatalf("test needs >= 4 configs, have %d", len(cfgs))
	}
	// Rig the models: one NaN predictor, everything else tied, except the
	// last config which wins outright; one config is quarantined on top.
	sel.mu.Lock()
	for i, cfg := range cfgs {
		switch i {
		case 0:
			sel.models[cfg.ID] = nanAt{}
		case len(cfgs) - 1:
			sel.models[cfg.ID] = constPred{v: 1e-6}
		default:
			sel.models[cfg.ID] = constPred{v: 2e-3}
		}
	}
	sel.mu.Unlock()
	quarantined := cfgs[1].ID
	sel.quarantine(quarantined, "predict", "induced for the ordering test")

	want := sel.PredictAll(3, 4, 1024)
	for run := 0; run < 10; run++ {
		got := sel.PredictAll(3, 4, 1024)
		for i := range want {
			if got[i].ConfigID != want[i].ConfigID {
				t.Fatalf("run %d: position %d is config %d, was %d — ordering is unstable",
					run, i, got[i].ConfigID, want[i].ConfigID)
			}
		}
	}
	// No NaN may survive into the ranking, and the winner is the cheap model.
	for _, p := range want {
		if math.IsNaN(p.Predicted) {
			t.Fatalf("NaN leaked into the ranking: %+v", p)
		}
	}
	if want[0].ConfigID != cfgs[len(cfgs)-1].ID {
		t.Fatalf("winner is %d, want %d", want[0].ConfigID, cfgs[len(cfgs)-1].ID)
	}
	// The tied block sorts by ConfigID; the NaN model and the quarantined
	// config land at the end with +Inf.
	tied := want[1 : len(want)-2]
	for i := 1; i < len(tied); i++ {
		if tied[i].ConfigID < tied[i-1].ConfigID {
			t.Fatalf("tied predictions out of ConfigID order: %d before %d", tied[i-1].ConfigID, tied[i].ConfigID)
		}
	}
	last2 := want[len(want)-2:]
	for _, p := range last2 {
		if !math.IsInf(p.Predicted, 1) {
			t.Fatalf("expected +Inf tail, got %+v", p)
		}
		if p.ConfigID != cfgs[0].ID && p.ConfigID != quarantined {
			t.Fatalf("unexpected config %d in the +Inf tail", p.ConfigID)
		}
	}
}

// TestSelectFeaturesNoModelExplicit covers both halves of the no-model
// contract: the raw argmin returns a marked fallback (never a zero value),
// and a guarded selector turns that marker into the library's concrete
// default decision.
func TestSelectFeaturesNoModelExplicit(t *testing.T) {
	ds, set := testDataset(t)
	mach := testMachine(t)
	sel, err := Train(ds, set, "knn", []int{2, 4, 6})
	if err != nil {
		t.Fatal(err)
	}
	for _, cfg := range sel.Configs() {
		sel.quarantine(cfg.ID, "predict", "induced for the no-model test")
	}

	raw := sel.SelectFeatures(Features(3, 4, 1024))
	if !raw.Fallback || raw.FallbackReason != "no_model" {
		t.Fatalf("raw argmin with no models = %+v, want explicit no_model fallback", raw)
	}
	if !math.IsNaN(raw.Predicted) {
		t.Fatalf("no-model Predicted = %v, want NaN", raw.Predicted)
	}
	if raw.Label != "library-default" {
		t.Fatalf("no-model label = %q", raw.Label)
	}

	// Guarded: Select recognizes the marker and asks the library's default
	// decision logic for a concrete configuration.
	sel.SetFallback(mach, set)
	guarded := sel.Select(3, 4, 1024)
	if !guarded.Fallback || guarded.FallbackReason != "no_model" {
		t.Fatalf("guarded no-model selection = %+v", guarded)
	}
	topo, err := mach.Topo(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if want := set.Decide(mach, topo, 1024); guarded.ConfigID != want {
		t.Fatalf("guarded fallback chose %d, library default chooses %d", guarded.ConfigID, want)
	}
}
