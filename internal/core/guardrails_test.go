package core

import (
	"math"
	"testing"

	"mpicollpred/internal/machine"
	"mpicollpred/internal/ml"
)

func testMachine(t *testing.T) machine.Machine {
	t.Helper()
	mach, err := machine.ByName("Hydra")
	if err != nil {
		t.Fatal(err)
	}
	return mach
}

// panicLearner is a regressor whose methods blow up, standing in for a
// broken third-party model implementation.
type panicLearner struct {
	fitPanics, predictPanics bool
}

func (p *panicLearner) Fit(x [][]float64, y []float64) error {
	if p.fitPanics {
		panic("panicLearner: fit exploded")
	}
	return nil
}

func (p *panicLearner) Predict(x []float64) float64 {
	if p.predictPanics {
		panic("panicLearner: predict exploded")
	}
	return 1e-3
}

func TestGuardedInEnvelopeSelectionsUnchanged(t *testing.T) {
	ds, set := testDataset(t)
	mach := testMachine(t)
	plain, err := Train(ds, set, "gam", []int{2, 4, 6})
	if err != nil {
		t.Fatal(err)
	}
	guarded, err := Train(ds, set, "gam", []int{2, 4, 6})
	if err != nil {
		t.Fatal(err)
	}
	guarded.SetFallback(mach, set)

	// Every grid instance — training and held-out alike — is inside the
	// training envelope, so the guarded selector must answer bit-identically.
	for _, n := range []int{2, 3, 4, 5, 6} {
		for _, ppn := range []int{1, 4} {
			for _, m := range []int64{16, 1024, 16384, 262144, 1048576} {
				a := plain.Select(n, ppn, m)
				b := guarded.Select(n, ppn, m)
				if a != b {
					t.Fatalf("guarded selection diverged at n=%d ppn=%d m=%d: %+v vs %+v", n, ppn, m, a, b)
				}
			}
		}
	}
	if guarded.Fallbacks() != 0 {
		t.Errorf("in-envelope queries triggered %d fallbacks", guarded.Fallbacks())
	}
}

func TestGuardedExtrapolationFallsBackToLibraryDefault(t *testing.T) {
	ds, set := testDataset(t)
	mach := testMachine(t)
	sel, err := Train(ds, set, "gam", []int{2, 4, 6})
	if err != nil {
		t.Fatal(err)
	}
	sel.SetFallback(mach, set)

	// Node count, ppn, and message size each far beyond the training grid.
	queries := []struct {
		n, ppn int
		m      int64
	}{
		{36, 4, 16384},    // nodes beyond [2, 6]
		{4, 32, 16384},    // ppn beyond [1, 4]
		{4, 4, 1 << 28},   // msize beyond 1 MiB
		{36, 32, 1 << 28}, // everything at once
	}
	for _, q := range queries {
		pred := sel.Select(q.n, q.ppn, q.m)
		if !pred.Fallback || pred.FallbackReason != "extrapolation" {
			t.Errorf("n=%d ppn=%d m=%d: want extrapolation fallback, got %+v", q.n, q.ppn, q.m, pred)
		}
		// The fallback answer is the library default's concrete choice.
		topo, err := mach.Topo(q.n, q.ppn)
		if err != nil {
			t.Fatal(err)
		}
		if want := set.Decide(mach, topo, q.m); pred.ConfigID != want {
			t.Errorf("fallback chose %d, library default chooses %d", pred.ConfigID, want)
		}
	}
	if sel.Fallbacks() != len(queries) {
		t.Errorf("fallback counter = %d, want %d", sel.Fallbacks(), len(queries))
	}
}

func TestGuardrailsDisarmedWithoutFallback(t *testing.T) {
	ds, set := testDataset(t)
	sel, err := Train(ds, set, "gam", []int{2, 4, 6})
	if err != nil {
		t.Fatal(err)
	}
	// Without SetFallback, even a wild extrapolation is answered by the
	// models — today's behavior, unchanged.
	pred := sel.Select(36, 32, 1<<28)
	if pred.Fallback {
		t.Errorf("unguarded selector fell back: %+v", pred)
	}
	if pred.ConfigID < 1 {
		t.Errorf("unguarded selector returned no config: %+v", pred)
	}
}

func TestPanickingFitQuarantinesConfigs(t *testing.T) {
	ml.Register("panic-fit", func() ml.Regressor { return &panicLearner{fitPanics: true} })
	ds, set := testDataset(t)
	mach := testMachine(t)
	sel, err := Train(ds, set, "panic-fit", []int{2, 4, 6})
	if err != nil {
		t.Fatalf("Train must survive panicking learners: %v", err)
	}
	if len(sel.Quarantined()) != len(set.Selectable()) {
		t.Errorf("quarantined %d configs, want all %d", len(sel.Quarantined()), len(set.Selectable()))
	}
	// With every model quarantined, a guarded selector serves the library
	// default...
	sel.SetFallback(mach, set)
	pred := sel.Select(4, 4, 16384)
	if !pred.Fallback {
		t.Errorf("want fallback with zero healthy models, got %+v", pred)
	}
	if pred.ConfigID < 1 {
		t.Errorf("fallback returned no concrete config: %+v", pred)
	}
	// ...and an unguarded one says so explicitly: Fallback with reason
	// "no_model" and a NaN prediction, never a mute zero value a caller
	// would read as "library default, predicted 0s".
	sel.fbSet = nil
	got := sel.Select(4, 4, 16384)
	if !got.Fallback || got.FallbackReason != "no_model" {
		t.Errorf("unguarded selection with no models lacks the fallback marker: %+v", got)
	}
	if !math.IsNaN(got.Predicted) {
		t.Errorf("unguarded no-model prediction = %v, want NaN", got.Predicted)
	}
}

func TestPanickingPredictQuarantinesAndNeverSelects(t *testing.T) {
	ml.Register("panic-predict", func() ml.Regressor { return &panicLearner{predictPanics: true} })
	ds, set := testDataset(t)
	sel, err := Train(ds, set, "panic-predict", []int{2, 4, 6})
	if err != nil {
		t.Fatal(err)
	}
	pred := sel.Select(3, 4, 16384)
	if pred.ConfigID != 0 || !pred.Fallback || pred.FallbackReason != "no_model" {
		t.Errorf("all models panic on Predict, want an explicit no_model fallback, got %+v", pred)
	}
	if len(sel.Quarantined()) != len(set.Selectable()) {
		t.Errorf("quarantined %d configs, want all %d", len(sel.Quarantined()), len(set.Selectable()))
	}
	// Quarantine is permanent: the second query must not re-touch the
	// broken models (safePredict returns NaN without calling them).
	if got := sel.Select(3, 4, 16384); got.ConfigID != 0 {
		t.Errorf("quarantined model selected on retry: %+v", got)
	}
	// PredictAll pushes quarantined configs to the end with +Inf.
	preds := sel.PredictAll(3, 4, 16384)
	if len(preds) != len(set.Selectable()) {
		t.Fatalf("PredictAll dropped configs: %d", len(preds))
	}
	for _, p := range preds {
		if !math.IsInf(p.Predicted, 1) {
			t.Errorf("quarantined config %d predicts %v, want +Inf", p.ConfigID, p.Predicted)
		}
	}
}

// boundedLearner predicts a constant absurd time, exercising the
// plausibility guardrail.
type boundedLearner struct{ pred float64 }

func (b *boundedLearner) Fit(x [][]float64, y []float64) error { return nil }
func (b *boundedLearner) Predict(x []float64) float64          { return b.pred }

func TestImplausiblePredictionFallsBack(t *testing.T) {
	ml.Register("tiny-pred", func() ml.Regressor { return &boundedLearner{pred: 1e-30} })
	ds, set := testDataset(t)
	mach := testMachine(t)
	sel, err := Train(ds, set, "tiny-pred", []int{2, 4, 6})
	if err != nil {
		t.Fatal(err)
	}
	sel.SetFallback(mach, set)
	// 1e-30 s is far below any training response / slack: implausible.
	pred := sel.Select(3, 4, 16384)
	if !pred.Fallback || pred.FallbackReason != "implausible" {
		t.Errorf("want implausible fallback, got %+v", pred)
	}
}

func TestEnvelopeContainsAndPlausible(t *testing.T) {
	e := newEnvelope([][]float64{{1, 10}, {3, 20}, {2, 15}}, []float64{1e-4, 2e-3, 5e-4})
	if !e.Contains([]float64{2, 12}) || !e.Contains([]float64{1, 10}) || !e.Contains([]float64{3, 20}) {
		t.Error("interior/boundary points must be contained")
	}
	for _, f := range [][]float64{{0.5, 12}, {2, 25}, {2}, {math.NaN(), 12}} {
		if e.Contains(f) {
			t.Errorf("point %v should be outside", f)
		}
	}
	if !e.Plausible(1e-4, 100) || !e.Plausible(0.1, 100) {
		t.Error("in-range and moderately extrapolated times are plausible")
	}
	if e.Plausible(1e-9, 100) || e.Plausible(1e3, 100) {
		t.Error("runaway predictions must be implausible")
	}
}
