package core

import (
	"sync"
	"testing"
)

// TestConcurrentSelect hammers one trained selector from many goroutines —
// Select, PredictAll, and the guardrail accessors — and is meaningful under
// -race (the CI test job runs with it): the serving layer queries a shared
// Selector from concurrent HTTP handlers.
func TestConcurrentSelect(t *testing.T) {
	ds, set := testDataset(t)
	mach, _, err := ds.Spec.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	sel, err := Train(ds, set, "knn", []int{2, 4, 6})
	if err != nil {
		t.Fatal(err)
	}
	sel.SetFallback(mach, set)

	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				nodes := 2 + (w+i)%4
				msize := int64(16 << (i % 12))
				p := sel.Select(nodes, 4, msize)
				if !p.Fallback && p.ConfigID < 1 {
					t.Errorf("invalid config %d", p.ConfigID)
					return
				}
				if i%10 == 0 {
					preds := sel.PredictAll(nodes, 4, msize)
					if len(preds) != len(sel.Configs()) {
						t.Errorf("PredictAll returned %d predictions", len(preds))
						return
					}
					_ = sel.Fallbacks()
					_ = sel.Quarantined()
				}
			}
		}(w)
	}
	wg.Wait()
}

// panicEveryOther panics on every second Predict call, driving the
// predict-time quarantine path from concurrent callers.
type panicEveryOther struct {
	mu sync.Mutex
	n  int
}

func (p *panicEveryOther) Fit(x [][]float64, y []float64) error { return nil }
func (p *panicEveryOther) Predict(x []float64) float64 {
	p.mu.Lock()
	p.n++
	n := p.n
	p.mu.Unlock()
	if n%2 == 0 {
		panic("deliberate test panic") //mpicollvet:ignore panicguard test fake exercising the recovered quarantine path
	}
	return 1e-5
}

// TestConcurrentQuarantine replaces one model with a panicking fake and
// queries concurrently: exactly the racy combination the mutex exists for —
// some goroutines read the model map while a panicked one deletes from it.
func TestConcurrentQuarantine(t *testing.T) {
	ds, set := testDataset(t)
	sel, err := Train(ds, set, "knn", []int{2, 4, 6})
	if err != nil {
		t.Fatal(err)
	}
	victim := sel.Configs()[0].ID
	sel.mu.Lock()
	sel.models[victim] = &panicEveryOther{}
	sel.mu.Unlock()

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				sel.Select(3, 4, 1024)
				sel.Quarantined()
			}
		}()
	}
	wg.Wait()

	if reason, ok := sel.Quarantined()[victim]; !ok {
		t.Fatal("panicking model was never quarantined")
	} else if reason == "" {
		t.Fatal("quarantine reason empty")
	}
	// The quarantined model must be out of the selection pool for good.
	p := sel.Select(3, 4, 1024)
	if p.ConfigID == victim {
		t.Fatalf("quarantined config %d still selected", victim)
	}
}
