// Package core implements the paper's contribution: the algorithm selection
// strategy for MPI collectives based on per-configuration regression models
// (Fig. 3 of the paper).
//
// For every algorithm configuration u(j,l) of a collective, a regression
// model is fitted that predicts the configuration's running time from the
// instance features (message size, number of nodes, processes per node).
// For an unseen instance, every model is queried and the configuration with
// the smallest predicted running time is selected. Merging the parameter
// allocation into the configuration id solves the algorithm selection and
// the algorithm configuration problem at once.
package core

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"mpicollpred/internal/dataset"
	"mpicollpred/internal/machine"
	"mpicollpred/internal/ml"
	"mpicollpred/internal/mpilib"
	"mpicollpred/internal/obs"
)

// Features maps an instance to the model's feature vector. Message size
// enters log-scaled (it spans six orders of magnitude); the total process
// count is added as a derived feature, which helps the additive learners
// capture tree-depth effects without interactions.
func Features(nodes, ppn int, msize int64) []float64 {
	p := float64(nodes * ppn)
	return []float64{
		math.Log2(float64(msize) + 1),
		float64(nodes),
		float64(ppn),
		math.Log2(p),
	}
}

// Prediction is one model's estimate for an instance.
type Prediction struct {
	ConfigID  int
	AlgID     int
	Label     string
	Predicted float64 // seconds; NaN when the guardrails fell back
	// Fallback reports that the guardrails rejected the models' answer and
	// this prediction came from the library's default decision logic.
	Fallback bool
	// FallbackReason is "extrapolation", "implausible" or "no_model" when
	// Fallback is set.
	FallbackReason string
}

// Selector is a trained algorithm selection model for one collective on one
// machine/library pair.
//
// Once trained (and optionally armed via SetFallback), a Selector is safe
// for concurrent callers: Select, SelectFeatures, PredictAll and the
// guardrail accessors may race freely. The only post-training mutation is
// quarantining a model whose learner panics at prediction time, which is
// serialized behind mu.
type Selector struct {
	Coll    string
	Learner string
	// TrainNodes records which node counts supplied training data.
	TrainNodes []int
	// FitWall is the total wall-clock time spent fitting the
	// per-configuration regression models, in seconds.
	FitWall float64
	// PlausibilitySlack overrides DefaultPlausibilitySlack when > 1.
	PlausibilitySlack float64

	configs    []mpilib.Config
	selectHist *obs.Histogram

	// mu guards models and quarantined — the only state a concurrent
	// Select can mutate (predict-time quarantine of a panicking model).
	mu          sync.RWMutex
	models      map[int]ml.Regressor
	quarantined map[int]string

	// Guardrail state (see guardrails.go); immutable after Train/SetFallback.
	envelopes map[int]Envelope
	envelope  Envelope
	fallbacks atomic.Int64
	fbMach    machine.Machine
	fbSet     *mpilib.CollectiveSet
}

// Train fits one regression model per selectable configuration using the
// samples of ds whose node count is in trainNodes (the paper's split: train
// on commonly used node counts, predict the rest). learner is one of
// ml.Names() ("knn", "gam", "xgboost", ...).
func Train(ds *dataset.Dataset, set *mpilib.CollectiveSet, learner string, trainNodes []int) (*Selector, error) {
	if len(trainNodes) == 0 {
		return nil, fmt.Errorf("core: no training node counts given")
	}
	inTrain := map[int]bool{}
	for _, n := range trainNodes {
		inTrain[n] = true
	}
	sel := &Selector{
		Coll:       ds.Spec.Coll,
		Learner:    learner,
		TrainNodes: append([]int(nil), trainNodes...),
		models:     make(map[int]ml.Regressor),
		envelopes:  make(map[int]Envelope),
		configs:    set.Selectable(),
	}

	// Group training samples by configuration.
	xs := map[int][][]float64{}
	ys := map[int][]float64{}
	for _, s := range ds.Samples {
		if !inTrain[s.Nodes] {
			continue
		}
		xs[s.ConfigID] = append(xs[s.ConfigID], Features(s.Nodes, s.PPN, s.Msize))
		ys[s.ConfigID] = append(ys[s.ConfigID], s.Time)
	}

	fitHist := obs.Default.Histogram("core_fit_seconds", obs.Labels{"learner": learner})
	sel.selectHist = obs.Default.Histogram("core_select_seconds", obs.Labels{"learner": learner})
	for _, cfg := range sel.configs {
		x, y := xs[cfg.ID], ys[cfg.ID]
		if len(x) == 0 {
			return nil, fmt.Errorf("core: configuration %d (%s) has no training samples on nodes %v",
				cfg.ID, cfg.Label(), trainNodes)
		}
		m, err := ml.New(learner)
		if err != nil {
			return nil, err
		}
		t0 := time.Now()
		if err := safeFit(m, x, y); err != nil {
			if errors.Is(err, errLearnerPanic) {
				// One broken learner instance must not take down the whole
				// tuning run: the configuration is quarantined (never
				// selected) and training continues.
				sel.quarantine(cfg.ID, "fit", err.Error())
				continue
			}
			return nil, fmt.Errorf("core: fitting %s for config %d (%s): %w", learner, cfg.ID, cfg.Label(), err)
		}
		wall := time.Since(t0).Seconds()
		sel.FitWall += wall
		fitHist.Observe(wall)
		sel.models[cfg.ID] = m
		env := newEnvelope(x, y)
		sel.envelopes[cfg.ID] = env
		sel.envelope.merge(env)
	}
	return sel, nil
}

// PredictAll returns every configuration's predicted running time for an
// instance, sorted ascending by prediction.
func (s *Selector) PredictAll(nodes, ppn int, msize int64) []Prediction {
	return s.PredictAllFeatures(Features(nodes, ppn, msize))
}

// PredictAllFeatures is PredictAll on an explicit feature vector.
// Quarantined configurations predict +Inf so they sort last and never win.
func (s *Selector) PredictAllFeatures(f []float64) []Prediction {
	out := make([]Prediction, 0, len(s.configs))
	for _, cfg := range s.configs {
		t := s.safePredict(cfg.ID, f)
		if !s.hasModel(cfg.ID) {
			t = math.Inf(1)
		}
		out = append(out, Prediction{
			ConfigID:  cfg.ID,
			AlgID:     cfg.AlgID,
			Label:     cfg.Label(),
			Predicted: t,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Predicted < out[j].Predicted })
	return out
}

// Select returns the configuration with the smallest predicted running time
// for the instance — the ArgMin box of the paper's Fig. 3. When a fallback
// is installed (SetFallback), the guardrails vet the answer first: a query
// outside every model's training envelope, an implausible winning
// prediction, or a selector with no healthy models left is answered by the
// library's default decision logic instead. In-envelope queries with
// plausible predictions are untouched — they return exactly what an
// unguarded selector would.
func (s *Selector) Select(nodes, ppn int, msize int64) Prediction {
	f := Features(nodes, ppn, msize)
	if !s.guarded() {
		return s.SelectFeatures(f)
	}
	if !s.envelope.Contains(f) {
		return s.fallback(nodes, ppn, msize, "extrapolation")
	}
	best := s.SelectFeatures(f)
	if best.ConfigID == 0 {
		return s.fallback(nodes, ppn, msize, "no_model")
	}
	if env, ok := s.envelopes[best.ConfigID]; ok && !env.Plausible(best.Predicted, s.PlausibilitySlack) {
		return s.fallback(nodes, ppn, msize, "implausible")
	}
	return best
}

// SelectFeatures is Select on an explicit feature vector (used by the
// permutation-importance analysis, which tampers with single features). It
// is the raw argmin — guardrails do not apply here, only panic safety:
// quarantined or panicking models are skipped.
func (s *Selector) SelectFeatures(f []float64) Prediction {
	if s.selectHist != nil {
		t0 := time.Now()
		defer func() { s.selectHist.Observe(time.Since(t0).Seconds()) }()
	}
	var best Prediction
	first := true
	for _, cfg := range s.configs {
		t := s.safePredict(cfg.ID, f)
		if math.IsNaN(t) {
			continue
		}
		if first || t < best.Predicted {
			best = Prediction{ConfigID: cfg.ID, AlgID: cfg.AlgID, Label: cfg.Label(), Predicted: t}
			first = false
		}
	}
	return best
}

// Configs returns the selectable configurations the selector ranges over.
func (s *Selector) Configs() []mpilib.Config { return s.configs }
