// Package core implements the paper's contribution: the algorithm selection
// strategy for MPI collectives based on per-configuration regression models
// (Fig. 3 of the paper).
//
// For every algorithm configuration u(j,l) of a collective, a regression
// model is fitted that predicts the configuration's running time from the
// instance features (message size, number of nodes, processes per node).
// For an unseen instance, every model is queried and the configuration with
// the smallest predicted running time is selected. Merging the parameter
// allocation into the configuration id solves the algorithm selection and
// the algorithm configuration problem at once.
package core

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"mpicollpred/internal/dataset"
	"mpicollpred/internal/floats"
	"mpicollpred/internal/machine"
	"mpicollpred/internal/ml"
	"mpicollpred/internal/mpilib"
	"mpicollpred/internal/obs"
)

// Features maps an instance to the model's feature vector. Message size
// enters log-scaled (it spans six orders of magnitude); the total process
// count is added as a derived feature, which helps the additive learners
// capture tree-depth effects without interactions.
func Features(nodes, ppn int, msize int64) []float64 {
	p := float64(nodes * ppn)
	return []float64{
		math.Log2(float64(msize) + 1),
		float64(nodes),
		float64(ppn),
		math.Log2(p),
	}
}

// Prediction is one model's estimate for an instance.
type Prediction struct {
	ConfigID  int
	AlgID     int
	Label     string
	Predicted float64 // seconds; NaN when the guardrails fell back
	// Fallback reports that the guardrails rejected the models' answer and
	// this prediction came from the library's default decision logic.
	Fallback bool
	// FallbackReason is "extrapolation", "implausible" or "no_model" when
	// Fallback is set.
	FallbackReason string
}

// Selector is a trained algorithm selection model for one collective on one
// machine/library pair.
//
// Once trained (and optionally armed via SetFallback), a Selector is safe
// for concurrent callers: Select, SelectFeatures, PredictAll and the
// guardrail accessors may race freely. The only post-training mutation is
// quarantining a model whose learner panics at prediction time, which is
// serialized behind mu.
type Selector struct {
	Coll    string
	Learner string
	// TrainNodes records which node counts supplied training data.
	TrainNodes []int
	// FitWall is the total wall-clock time spent fitting the
	// per-configuration regression models, in seconds.
	FitWall float64
	// PlausibilitySlack overrides DefaultPlausibilitySlack when > 1.
	PlausibilitySlack float64

	configs    []mpilib.Config
	selectHist *obs.Histogram

	// mu guards models and quarantined — the only state a concurrent
	// Select can mutate (predict-time quarantine of a panicking model).
	mu          sync.RWMutex
	models      map[int]ml.Regressor
	quarantined map[int]string

	// Guardrail state (see guardrails.go); immutable after Train/SetFallback.
	envelopes map[int]Envelope
	envelope  Envelope
	fallbacks atomic.Int64
	fbMach    machine.Machine
	fbSet     *mpilib.CollectiveSet
}

// Train fits one regression model per selectable configuration using the
// samples of ds whose node count is in trainNodes (the paper's split: train
// on commonly used node counts, predict the rest). learner is one of
// ml.Names() ("knn", "gam", "xgboost", ...). Fitting runs on the package's
// default worker pool (GOMAXPROCS workers; see SetFitWorkers) and is
// bit-identical to a serial run.
func Train(ds *dataset.Dataset, set *mpilib.CollectiveSet, learner string, trainNodes []int) (*Selector, error) {
	return TrainPool(ds, set, learner, trainNodes, nil)
}

// fitResult is one configuration's outcome, produced by a pool worker and
// committed by the Train goroutine.
type fitResult struct {
	m    ml.Regressor
	env  Envelope
	wall float64
	err  error
}

// TrainPool is Train on an explicit worker pool (nil means the default
// pool). A pool of size 1 reproduces the serial fitting path; any size
// yields the same selector bit for bit, because workers only compute
// independent per-configuration results and this goroutine commits them in
// configuration order: model-map and envelope contents, the envelope merge
// order, FitWall's floating-point accumulation order, and quarantine
// records never depend on scheduling.
func TrainPool(ds *dataset.Dataset, set *mpilib.CollectiveSet, learner string, trainNodes []int, pool *FitPool) (*Selector, error) {
	if len(trainNodes) == 0 {
		return nil, fmt.Errorf("core: no training node counts given")
	}
	if _, err := ml.New(learner); err != nil {
		return nil, err
	}
	inTrain := map[int]bool{}
	for _, n := range trainNodes {
		inTrain[n] = true
	}
	sel := &Selector{
		Coll:       ds.Spec.Coll,
		Learner:    learner,
		TrainNodes: append([]int(nil), trainNodes...),
		models:     make(map[int]ml.Regressor),
		envelopes:  make(map[int]Envelope),
		configs:    set.Selectable(),
	}

	// Group training samples by configuration.
	xs := map[int][][]float64{}
	ys := map[int][]float64{}
	for _, s := range ds.Samples {
		if !inTrain[s.Nodes] {
			continue
		}
		xs[s.ConfigID] = append(xs[s.ConfigID], Features(s.Nodes, s.PPN, s.Msize))
		ys[s.ConfigID] = append(ys[s.ConfigID], s.Time)
	}
	// Pre-flight in configuration order, so the "no training samples" error
	// names the same configuration a serial sweep would have stopped at.
	for _, cfg := range sel.configs {
		if len(xs[cfg.ID]) == 0 {
			return nil, fmt.Errorf("core: configuration %d (%s) has no training samples on nodes %v",
				cfg.ID, cfg.Label(), trainNodes)
		}
	}

	fitHist := obs.Default.Histogram("core_fit_seconds", obs.Labels{"learner": learner})
	sel.selectHist = obs.Default.Histogram("core_select_seconds", obs.Labels{"learner": learner})
	if pool == nil {
		pool = DefaultFitPool()
	}

	// Fan the per-configuration fits across the pool. Each worker writes
	// only its own slot of results; wg.Wait orders those writes before the
	// commit loop below.
	results := make([]fitResult, len(sel.configs))
	t0 := time.Now()
	var wg sync.WaitGroup
	for i, cfg := range sel.configs {
		i, x, y := i, xs[cfg.ID], ys[cfg.ID]
		wg.Add(1)
		pool.submit(func() {
			defer wg.Done()
			m, err := ml.New(learner)
			if err != nil {
				results[i].err = err
				return
			}
			f0 := time.Now()
			if err := safeFit(m, x, y); err != nil {
				results[i].err = err
				return
			}
			results[i] = fitResult{m: m, env: newEnvelope(x, y), wall: time.Since(f0).Seconds()}
		})
	}
	wg.Wait()
	obs.Default.Histogram("core_fit_parallel_seconds", obs.Labels{"learner": learner}).
		Observe(time.Since(t0).Seconds())

	// Deterministic assembly: commit in configuration order, single-threaded.
	for i, cfg := range sel.configs {
		res := results[i]
		if res.err != nil {
			if errors.Is(res.err, errLearnerPanic) {
				// One broken learner instance must not take down the whole
				// tuning run: the configuration is quarantined (never
				// selected) and training continues.
				sel.quarantine(cfg.ID, "fit", res.err.Error())
				continue
			}
			return nil, fmt.Errorf("core: fitting %s for config %d (%s): %w", learner, cfg.ID, cfg.Label(), res.err)
		}
		sel.FitWall += res.wall
		fitHist.Observe(res.wall)
		sel.models[cfg.ID] = res.m
		sel.envelopes[cfg.ID] = res.env
		sel.envelope.merge(res.env)
	}
	return sel, nil
}

// PredictAll returns every configuration's predicted running time for an
// instance, sorted ascending by prediction.
func (s *Selector) PredictAll(nodes, ppn int, msize int64) []Prediction {
	return s.PredictAllFeatures(Features(nodes, ppn, msize))
}

// PredictAllFeatures is PredictAll on an explicit feature vector.
// Quarantined configurations — and live models predicting NaN — report
// +Inf so they sort last and never win. Mapping NaN to +Inf before sorting
// matters for more than cosmetics: a bare `<` comparator over NaNs is not
// a strict weak order, so sort results (and therefore response order
// across runs and serve generations) would be anybody's guess. The sort is
// stable with a ConfigID tie-break, making the ranking fully deterministic
// even when several configurations predict exactly the same time.
func (s *Selector) PredictAllFeatures(f []float64) []Prediction {
	out := make([]Prediction, 0, len(s.configs))
	for _, cfg := range s.configs {
		t := s.safePredict(cfg.ID, f)
		if math.IsNaN(t) {
			t = math.Inf(1)
		}
		out = append(out, Prediction{
			ConfigID:  cfg.ID,
			AlgID:     cfg.AlgID,
			Label:     cfg.Label(),
			Predicted: t,
		})
	}
	sort.SliceStable(out, func(i, j int) bool {
		if !floats.Exact(out[i].Predicted, out[j].Predicted) {
			return out[i].Predicted < out[j].Predicted
		}
		return out[i].ConfigID < out[j].ConfigID
	})
	return out
}

// Tracer receives stage boundaries from a traced Select: StartSpan opens a
// named child span and returns the closure that ends it. The serving layer
// passes an obs request span here; a nil Tracer (the default everywhere
// else) keeps Select on the untraced zero-overhead path.
type Tracer interface {
	StartSpan(name string) func()
}

// stage opens a named span on tr, tolerating a nil tracer. The shared no-op
// keeps the untraced path allocation-free.
func stage(tr Tracer, name string) func() {
	if tr == nil {
		return noopStageEnd
	}
	return tr.StartSpan(name)
}

var noopStageEnd = func() {}

// Select returns the configuration with the smallest predicted running time
// for the instance — the ArgMin box of the paper's Fig. 3. When a fallback
// is installed (SetFallback), the guardrails vet the answer first: a query
// outside every model's training envelope, an implausible winning
// prediction, or a selector with no healthy models left is answered by the
// library's default decision logic instead. In-envelope queries with
// plausible predictions are untouched — they return exactly what an
// unguarded selector would.
func (s *Selector) Select(nodes, ppn int, msize int64) Prediction {
	return s.SelectTraced(nodes, ppn, msize, nil)
}

// SelectTraced is Select with per-stage spans reported to tr: "guardrails"
// covers the envelope check, "argmin" the model sweep, "fallback" the
// library-default decision. tr == nil is the plain Select.
func (s *Selector) SelectTraced(nodes, ppn int, msize int64, tr Tracer) Prediction {
	f := Features(nodes, ppn, msize)
	if !s.guarded() {
		return s.argminStage(f, tr)
	}
	endGuard := stage(tr, "guardrails")
	contained := s.envelope.Contains(f)
	endGuard()
	if !contained {
		return s.fallbackStage(nodes, ppn, msize, "extrapolation", tr)
	}
	best := s.argminStage(f, tr)
	if best.Fallback {
		return s.fallbackStage(nodes, ppn, msize, "no_model", tr)
	}
	if env, ok := s.envelopes[best.ConfigID]; ok && !env.Plausible(best.Predicted, s.PlausibilitySlack) {
		return s.fallbackStage(nodes, ppn, msize, "implausible", tr)
	}
	return best
}

// argminStage runs the model sweep under an "argmin" span.
func (s *Selector) argminStage(f []float64, tr Tracer) Prediction {
	end := stage(tr, "argmin")
	p := s.SelectFeatures(f)
	end()
	return p
}

// fallbackStage runs the library-default decision under a "fallback" span.
func (s *Selector) fallbackStage(nodes, ppn int, msize int64, reason string, tr Tracer) Prediction {
	end := stage(tr, "fallback")
	p := s.fallback(nodes, ppn, msize, reason)
	end()
	return p
}

// SelectFeatures is Select on an explicit feature vector (used by the
// permutation-importance analysis, which tampers with single features). It
// is the raw argmin — guardrails do not apply here, only panic safety:
// quarantined or panicking models are skipped.
//
// When no healthy model produced a finite prediction (every configuration
// quarantined, or every live model answered NaN), the result is an explicit
// fallback: ConfigID mpilib.DefaultID with Fallback set, FallbackReason
// "no_model" and a NaN predicted time. Returning the zero Prediction here
// would be indistinguishable from "the library default, predicted to take
// 0 seconds" — a silent lie to any unguarded caller.
func (s *Selector) SelectFeatures(f []float64) Prediction {
	if s.selectHist != nil {
		t0 := time.Now()
		defer func() { s.selectHist.Observe(time.Since(t0).Seconds()) }()
	}
	var best Prediction
	first := true
	for _, cfg := range s.configs {
		t := s.safePredict(cfg.ID, f)
		if math.IsNaN(t) {
			continue
		}
		if first || t < best.Predicted {
			best = Prediction{ConfigID: cfg.ID, AlgID: cfg.AlgID, Label: cfg.Label(), Predicted: t}
			first = false
		}
	}
	if first {
		return Prediction{ConfigID: mpilib.DefaultID, Label: "library-default",
			Predicted: math.NaN(), Fallback: true, FallbackReason: "no_model"}
	}
	return best
}

// Configs returns the selectable configurations the selector ranges over.
func (s *Selector) Configs() []mpilib.Config { return s.configs }
