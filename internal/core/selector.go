// Package core implements the paper's contribution: the algorithm selection
// strategy for MPI collectives based on per-configuration regression models
// (Fig. 3 of the paper).
//
// For every algorithm configuration u(j,l) of a collective, a regression
// model is fitted that predicts the configuration's running time from the
// instance features (message size, number of nodes, processes per node).
// For an unseen instance, every model is queried and the configuration with
// the smallest predicted running time is selected. Merging the parameter
// allocation into the configuration id solves the algorithm selection and
// the algorithm configuration problem at once.
package core

import (
	"fmt"
	"math"
	"sort"
	"time"

	"mpicollpred/internal/dataset"
	"mpicollpred/internal/ml"
	"mpicollpred/internal/mpilib"
	"mpicollpred/internal/obs"
)

// Features maps an instance to the model's feature vector. Message size
// enters log-scaled (it spans six orders of magnitude); the total process
// count is added as a derived feature, which helps the additive learners
// capture tree-depth effects without interactions.
func Features(nodes, ppn int, msize int64) []float64 {
	p := float64(nodes * ppn)
	return []float64{
		math.Log2(float64(msize) + 1),
		float64(nodes),
		float64(ppn),
		math.Log2(p),
	}
}

// Prediction is one model's estimate for an instance.
type Prediction struct {
	ConfigID  int
	AlgID     int
	Label     string
	Predicted float64 // seconds
}

// Selector is a trained algorithm selection model for one collective on one
// machine/library pair.
type Selector struct {
	Coll    string
	Learner string
	// TrainNodes records which node counts supplied training data.
	TrainNodes []int
	// FitWall is the total wall-clock time spent fitting the
	// per-configuration regression models, in seconds.
	FitWall float64

	configs    []mpilib.Config
	models     map[int]ml.Regressor
	selectHist *obs.Histogram
}

// Train fits one regression model per selectable configuration using the
// samples of ds whose node count is in trainNodes (the paper's split: train
// on commonly used node counts, predict the rest). learner is one of
// ml.Names() ("knn", "gam", "xgboost", ...).
func Train(ds *dataset.Dataset, set *mpilib.CollectiveSet, learner string, trainNodes []int) (*Selector, error) {
	if len(trainNodes) == 0 {
		return nil, fmt.Errorf("core: no training node counts given")
	}
	inTrain := map[int]bool{}
	for _, n := range trainNodes {
		inTrain[n] = true
	}
	sel := &Selector{
		Coll:       ds.Spec.Coll,
		Learner:    learner,
		TrainNodes: append([]int(nil), trainNodes...),
		models:     make(map[int]ml.Regressor),
		configs:    set.Selectable(),
	}

	// Group training samples by configuration.
	xs := map[int][][]float64{}
	ys := map[int][]float64{}
	for _, s := range ds.Samples {
		if !inTrain[s.Nodes] {
			continue
		}
		xs[s.ConfigID] = append(xs[s.ConfigID], Features(s.Nodes, s.PPN, s.Msize))
		ys[s.ConfigID] = append(ys[s.ConfigID], s.Time)
	}

	fitHist := obs.Default.Histogram("core_fit_seconds", obs.Labels{"learner": learner})
	sel.selectHist = obs.Default.Histogram("core_select_seconds", obs.Labels{"learner": learner})
	for _, cfg := range sel.configs {
		x, y := xs[cfg.ID], ys[cfg.ID]
		if len(x) == 0 {
			return nil, fmt.Errorf("core: configuration %d (%s) has no training samples on nodes %v",
				cfg.ID, cfg.Label(), trainNodes)
		}
		m, err := ml.New(learner)
		if err != nil {
			return nil, err
		}
		t0 := time.Now()
		if err := m.Fit(x, y); err != nil {
			return nil, fmt.Errorf("core: fitting %s for config %d (%s): %w", learner, cfg.ID, cfg.Label(), err)
		}
		wall := time.Since(t0).Seconds()
		sel.FitWall += wall
		fitHist.Observe(wall)
		sel.models[cfg.ID] = m
	}
	return sel, nil
}

// PredictAll returns every configuration's predicted running time for an
// instance, sorted ascending by prediction.
func (s *Selector) PredictAll(nodes, ppn int, msize int64) []Prediction {
	return s.PredictAllFeatures(Features(nodes, ppn, msize))
}

// PredictAllFeatures is PredictAll on an explicit feature vector.
func (s *Selector) PredictAllFeatures(f []float64) []Prediction {
	out := make([]Prediction, 0, len(s.configs))
	for _, cfg := range s.configs {
		out = append(out, Prediction{
			ConfigID:  cfg.ID,
			AlgID:     cfg.AlgID,
			Label:     cfg.Label(),
			Predicted: s.models[cfg.ID].Predict(f),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Predicted < out[j].Predicted })
	return out
}

// Select returns the configuration with the smallest predicted running time
// for the instance — the ArgMin box of the paper's Fig. 3.
func (s *Selector) Select(nodes, ppn int, msize int64) Prediction {
	return s.SelectFeatures(Features(nodes, ppn, msize))
}

// SelectFeatures is Select on an explicit feature vector (used by the
// permutation-importance analysis, which tampers with single features).
func (s *Selector) SelectFeatures(f []float64) Prediction {
	if s.selectHist != nil {
		t0 := time.Now()
		defer func() { s.selectHist.Observe(time.Since(t0).Seconds()) }()
	}
	var best Prediction
	first := true
	for _, cfg := range s.configs {
		t := s.models[cfg.ID].Predict(f)
		if math.IsNaN(t) {
			continue
		}
		if first || t < best.Predicted {
			best = Prediction{ConfigID: cfg.ID, AlgID: cfg.AlgID, Label: cfg.Label(), Predicted: t}
			first = false
		}
	}
	return best
}

// Configs returns the selectable configurations the selector ranges over.
func (s *Selector) Configs() []mpilib.Config { return s.configs }
