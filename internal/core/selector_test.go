package core

import (
	"math"
	"strings"
	"testing"

	"mpicollpred/internal/bench"
	"mpicollpred/internal/dataset"
	"mpicollpred/internal/mpilib"
)

// testDataset generates a small but non-trivial d2-style dataset (Open MPI
// allreduce on Hydra) shared across the package tests.
func testDataset(t *testing.T) (*dataset.Dataset, *mpilib.CollectiveSet) {
	t.Helper()
	spec, err := dataset.SpecByName("d2", dataset.ScaleSmoke)
	if err != nil {
		t.Fatal(err)
	}
	spec.Nodes = []int{2, 3, 4, 5, 6}
	spec.PPNs = []int{1, 4}
	spec.Msizes = []int64{16, 1024, 16384, 262144, 1048576}
	ds, err := dataset.Generate(spec, bench.Options{MaxReps: 3, SyncJitter: 1e-7}, nil)
	if err != nil {
		t.Fatal(err)
	}
	_, set, err := spec.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	return ds, set
}

func TestFeatures(t *testing.T) {
	f := Features(4, 8, 1023)
	if len(f) != 4 {
		t.Fatalf("feature vector length %d", len(f))
	}
	if f[1] != 4 || f[2] != 8 {
		t.Errorf("raw features wrong: %v", f)
	}
	if f[3] != 5 { // log2(32)
		t.Errorf("log2(p) = %v", f[3])
	}
	if f[0] != math.Log2(1024) {
		t.Errorf("log msize = %v", f[0])
	}
}

func TestTrainAndSelect(t *testing.T) {
	ds, set := testDataset(t)
	for _, learner := range []string{"knn", "gam", "xgboost"} {
		sel, err := Train(ds, set, learner, []int{2, 4, 6})
		if err != nil {
			t.Fatalf("%s: %v", learner, err)
		}
		// Selection on held-out node counts must return valid configs and
		// positive predictions.
		for _, n := range []int{3, 5} {
			for _, m := range []int64{16, 16384, 1048576} {
				pred := sel.Select(n, 4, m)
				if pred.ConfigID < 1 || pred.ConfigID > len(set.Configs) {
					t.Fatalf("%s: invalid config %d", learner, pred.ConfigID)
				}
				if !(pred.Predicted > 0) {
					t.Fatalf("%s: non-positive prediction %v", learner, pred.Predicted)
				}
			}
		}
	}
}

func TestSelectionBeatsWorstAndApproachesBest(t *testing.T) {
	// The headline property: on held-out instances, the measured time of
	// the selected configuration should be far closer to the best than to
	// the worst configuration.
	ds, set := testDataset(t)
	sel, err := Train(ds, set, "gam", []int{2, 4, 6})
	if err != nil {
		t.Fatal(err)
	}
	var ratioSum float64
	var count int
	for _, n := range []int{3, 5} {
		for _, ppn := range []int{1, 4} {
			for _, m := range []int64{16, 1024, 16384, 262144, 1048576} {
				pred := sel.Select(n, ppn, m)
				predT, ok := ds.Lookup(pred.ConfigID, n, ppn, m)
				if !ok {
					t.Fatalf("no measurement for selected config %d", pred.ConfigID)
				}
				_, bestT, ok := ds.Best(set, n, ppn, m)
				if !ok {
					t.Fatal("no best")
				}
				ratioSum += predT / bestT
				count++
			}
		}
	}
	avg := ratioSum / float64(count)
	if avg > 1.6 {
		t.Errorf("selected configs average %.2fx the best; selection is not learning", avg)
	}
}

func TestPredictAllSortedAndComplete(t *testing.T) {
	ds, set := testDataset(t)
	sel, err := Train(ds, set, "knn", []int{2, 4, 6})
	if err != nil {
		t.Fatal(err)
	}
	preds := sel.PredictAll(3, 4, 16384)
	if len(preds) != len(set.Selectable()) {
		t.Fatalf("got %d predictions, want %d", len(preds), len(set.Selectable()))
	}
	for i := 1; i < len(preds); i++ {
		if preds[i].Predicted < preds[i-1].Predicted {
			t.Fatal("PredictAll not sorted")
		}
	}
	if preds[0].ConfigID != sel.Select(3, 4, 16384).ConfigID {
		t.Error("Select disagrees with PredictAll[0]")
	}
}

func TestTrainErrorsOnMissingNodes(t *testing.T) {
	ds, set := testDataset(t)
	if _, err := Train(ds, set, "knn", []int{99}); err == nil {
		t.Error("expected error for training nodes absent from the dataset")
	}
	if _, err := Train(ds, set, "knn", nil); err == nil {
		t.Error("expected error for empty training nodes")
	}
	if _, err := Train(ds, set, "nope", []int{2}); err == nil {
		t.Error("expected error for unknown learner")
	}
}

func TestTuningFile(t *testing.T) {
	ds, set := testDataset(t)
	sel, err := Train(ds, set, "xgboost", []int{2, 4, 6})
	if err != nil {
		t.Fatal(err)
	}
	tf := sel.TuningFile(5, 4, []int64{1048576, 16, 16384})
	if !strings.Contains(tf, "collective allreduce") {
		t.Errorf("missing collective header:\n%s", tf)
	}
	if !strings.Contains(tf, "comm-size 20") {
		t.Errorf("missing comm size:\n%s", tf)
	}
	// Rules must be emitted in ascending message-size order.
	i16 := strings.Index(tf, "msg-size 16 ")
	i16k := strings.Index(tf, "msg-size 16384 ")
	i1m := strings.Index(tf, "msg-size 1048576 ")
	if !(i16 >= 0 && i16 < i16k && i16k < i1m) {
		t.Errorf("rules out of order:\n%s", tf)
	}
}
