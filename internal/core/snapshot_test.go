package core

import (
	"os"
	"path/filepath"
	"testing"

	"mpicollpred/internal/floats"
	"mpicollpred/internal/snapshot"
)

// TestSnapshotRoundTripAllLearners is the acceptance test of the
// persistence layer: for every registered learner, a save → load round trip
// must reproduce the in-memory selector's predictions bit-identically on the
// full grid — training cells, held-out node counts, and held-out message
// sizes alike.
func TestSnapshotRoundTripAllLearners(t *testing.T) {
	ds, set := testDataset(t)
	mach, _, err := ds.Spec.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	trainNodes := []int{2, 4, 6}
	// The five real learners, spelled out rather than ml.Names(): other
	// tests in this package register panicking fakes in the shared registry.
	for _, learner := range []string{"knn", "gam", "xgboost", "rf", "linear"} {
		sel, err := Train(ds, set, learner, trainNodes)
		if err != nil {
			t.Fatalf("%s: %v", learner, err)
		}
		// Arm the in-memory selector like a loaded one: LoadSnapshot always
		// re-arms the guardrail fallback, so the comparison must too.
		sel.SetFallback(mach, set)

		fp := FingerprintFor(ds, learner, trainNodes)
		path := filepath.Join(t.TempDir(), learner+".snap")
		if err := sel.SaveSnapshot(path, fp); err != nil {
			t.Fatalf("%s: save: %v", learner, err)
		}
		got, gotFP, err := LoadSnapshot(path)
		if err != nil {
			t.Fatalf("%s: load: %v", learner, err)
		}
		if gotFP.String() != fp.String() {
			t.Errorf("%s: fingerprint %s, want %s", learner, gotFP, fp)
		}
		if got.Coll != sel.Coll || got.Learner != sel.Learner {
			t.Errorf("%s: identity %s/%s, want %s/%s", learner, got.Coll, got.Learner, sel.Coll, sel.Learner)
		}

		// The full grid plus extrapolating points beyond it.
		nodes := append(append([]int(nil), ds.Spec.Nodes...), 9, 40)
		msizes := append(append([]int64(nil), ds.Spec.Msizes...), 3, 1<<23)
		for _, n := range nodes {
			for _, ppn := range ds.Spec.PPNs {
				for _, m := range msizes {
					want := sel.PredictAll(n, ppn, m)
					have := got.PredictAll(n, ppn, m)
					if len(want) != len(have) {
						t.Fatalf("%s: %d/%d/%d: %d vs %d predictions", learner, n, ppn, m, len(want), len(have))
					}
					for i := range want {
						if want[i].ConfigID != have[i].ConfigID ||
							!floats.Exact(want[i].Predicted, have[i].Predicted) {
							t.Fatalf("%s: %d/%d/%d: prediction %d = (%d, %v), want (%d, %v)",
								learner, n, ppn, m, i,
								have[i].ConfigID, have[i].Predicted,
								want[i].ConfigID, want[i].Predicted)
						}
					}
					w, h := sel.Select(n, ppn, m), got.Select(n, ppn, m)
					if w.ConfigID != h.ConfigID || w.Fallback != h.Fallback ||
						w.FallbackReason != h.FallbackReason ||
						!(floats.Exact(w.Predicted, h.Predicted) ||
							(w.Predicted != w.Predicted && h.Predicted != h.Predicted)) {
						t.Fatalf("%s: %d/%d/%d: Select = %+v, want %+v", learner, n, ppn, m, h, w)
					}
				}
			}
		}
	}
}

func TestSnapshotDeterministicBytes(t *testing.T) {
	ds, set := testDataset(t)
	sel, err := Train(ds, set, "knn", []int{2, 4, 6})
	if err != nil {
		t.Fatal(err)
	}
	fp := FingerprintFor(ds, "knn", []int{2, 4, 6})
	a, err := sel.Snapshot(fp)
	if err != nil {
		t.Fatal(err)
	}
	b, err := sel.Snapshot(fp)
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatal("two snapshots of the same selector differ")
	}
}

func TestSnapshotRejectsDamage(t *testing.T) {
	ds, set := testDataset(t)
	sel, err := Train(ds, set, "linear", []int{2, 4, 6})
	if err != nil {
		t.Fatal(err)
	}
	data, err := sel.Snapshot(FingerprintFor(ds, "linear", []int{2, 4, 6}))
	if err != nil {
		t.Fatal(err)
	}

	if _, _, err := DecodeSnapshot(data[:len(data)/2]); err == nil {
		t.Error("truncated snapshot accepted")
	}
	flipped := append([]byte(nil), data...)
	flipped[len(flipped)-3] ^= 0x01
	if _, _, err := DecodeSnapshot(flipped); err == nil {
		t.Error("corrupted snapshot accepted")
	}
	versioned := append([]byte(nil), data...)
	versioned[len(snapshot.Magic)] = 0xFE
	if _, _, err := DecodeSnapshot(versioned); err == nil {
		t.Error("version-mismatched snapshot accepted")
	}
	if _, _, err := DecodeSnapshot([]byte("not a snapshot at all")); err == nil {
		t.Error("garbage accepted")
	}

	dir := t.TempDir()
	path := filepath.Join(dir, "broken.snap")
	if err := os.WriteFile(path, flipped, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := LoadSnapshot(path); err == nil {
		t.Error("LoadSnapshot accepted a corrupt file")
	}
	if _, _, err := LoadSnapshot(filepath.Join(dir, "missing.snap")); err == nil {
		t.Error("LoadSnapshot accepted a missing file")
	}
}

func TestSnapshotPersistsQuarantine(t *testing.T) {
	ds, set := testDataset(t)
	sel, err := Train(ds, set, "knn", []int{2, 4, 6})
	if err != nil {
		t.Fatal(err)
	}
	victim := sel.Configs()[1].ID
	sel.quarantine(victim, "predict", "induced for the snapshot test")

	data, err := sel.Snapshot(FingerprintFor(ds, "knn", []int{2, 4, 6}))
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := DecodeSnapshot(data)
	if err != nil {
		t.Fatal(err)
	}
	if reason, ok := got.Quarantined()[victim]; !ok || reason == "" {
		t.Fatalf("quarantine record lost: %v", got.Quarantined())
	}
	if got.Select(3, 4, 1024).ConfigID == victim {
		t.Fatal("restored selector picked the quarantined configuration")
	}
}
