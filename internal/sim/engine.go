package sim

import (
	"fmt"
	"math"
	"sort"
)

// CostModel supplies the timing semantics of the simulated network and CPUs.
// Implementations may be stateful per run (e.g. per-node NIC availability);
// the Engine calls the Send methods in nondecreasing simulated-time order of
// the posting events.
type CostModel interface {
	// Eager reports whether a message of the given size uses the eager
	// protocol (sender does not wait for the receiver).
	Eager(bytes uint32) bool
	// SendEager models an eager message posted at time t. It returns the
	// time at which the sender may proceed and the time at which the full
	// message has arrived at the receiver.
	SendEager(src, dst int32, bytes uint32, t float64) (senderDone, arrival float64)
	// SendRendezvous models a rendezvous message whose sender posted at ts
	// and whose receiver posted the matching receive at tr. It returns the
	// sender-resume time and the data arrival time at the receiver.
	SendRendezvous(src, dst int32, bytes uint32, ts, tr float64) (senderDone, arrival float64)
	// RecvOverhead is the receiver CPU cost charged after arrival.
	RecvOverhead(bytes uint32) float64
	// PostOverhead is the sender CPU cost of posting a non-blocking send.
	PostOverhead(bytes uint32) float64
	// Compute is the local computation cost for an OpCompute of bytes.
	Compute(bytes uint32) float64
}

// Observer receives data-flow callbacks during execution; used by Tracker to
// verify schedule semantics. A nil Observer disables the callbacks.
type Observer interface {
	// OnSend is called when rank src executes a send carrying pay.
	OnSend(src int32, pay []PayUnit) error
	// OnDeliver is called when the message carrying pay is matched at dst.
	OnDeliver(dst int32, pay []PayUnit) error
}

// Result summarizes one simulated execution.
type Result struct {
	// Finish holds each rank's completion time.
	Finish []float64
	// Time is the makespan: max(Finish) - min(start).
	Time float64
	// Events is the number of executed operations.
	Events int
	// Stats carries the per-run instrumentation block; nil unless enabled
	// via Engine.CollectStats.
	Stats *Stats
}

type rankStatus uint8

const (
	statusReady rankStatus = iota
	statusBlockedRecv
	statusBlockedSend
	statusDone
)

type msgRec struct {
	ts       float64 // post time (rendezvous) or arrival time (eager)
	bytes    uint32
	payStart int32
	payLen   int16
	eager    bool
	nb       bool // rendezvous posted by a non-blocking send: no sender to wake
}

type pairState struct {
	inflight []msgRec
	head     int // index of first unconsumed inflight record
	// Parked receiver (at most one per pair, since receives block).
	waiting   bool
	recvPost  float64
	recvBytes uint32
}

// Engine executes Programs. It is reusable across runs (per-run state is
// reset by Run) but not safe for concurrent use.
type Engine struct {
	clock  []float64
	pc     []int
	status []rankStatus
	heap   timeHeap
	pairs  map[uint64]*pairState
	// Direct-mapped caches of the last send/recv pair per rank: collective
	// schedules talk to the same peer many times in a row, making the map
	// lookup the hot path otherwise.
	sendPeer []int32
	sendPair []*pairState
	recvPeer []int32
	recvPair []*pairState

	prog  *Program
	model CostModel
	obs   Observer
	done  int

	// Instrumentation, both off by default: per-run counters (reset by Run,
	// surfaced as Result.Stats) and the timeline tracer.
	collectStats bool
	stats        Stats
	tracer       Tracer
}

// NewEngine returns an empty Engine.
func NewEngine() *Engine { return &Engine{} }

// CollectStats enables (or disables) per-run statistics collection for
// subsequent Run calls. When enabled, Run attaches a Stats block to Result.
func (e *Engine) CollectStats(on bool) { e.collectStats = on }

// SetTracer installs a timeline tracer for subsequent Run calls (nil
// disables tracing).
func (e *Engine) SetTracer(t Tracer) { e.tracer = t }

func pairKey(src, dst int32) uint64 { return uint64(uint32(src))<<32 | uint64(uint32(dst)) }

func (e *Engine) sendPairOf(src, dst int32) *pairState {
	if e.sendPeer[src] == dst {
		return e.sendPair[src]
	}
	ps := e.pairOf(src, dst)
	e.sendPeer[src] = dst
	e.sendPair[src] = ps
	return ps
}

func (e *Engine) recvPairOf(src, dst int32) *pairState {
	if e.recvPeer[dst] == src {
		return e.recvPair[dst]
	}
	ps := e.pairOf(src, dst)
	e.recvPeer[dst] = src
	e.recvPair[dst] = ps
	return ps
}

func (e *Engine) pairOf(src, dst int32) *pairState {
	k := pairKey(src, dst)
	if ps, ok := e.pairs[k]; ok {
		return ps
	}
	ps := &pairState{}
	e.pairs[k] = ps
	return ps
}

// Run executes prog against model. start gives per-rank start times (nil
// means all ranks start at time zero). obs may be nil.
func (e *Engine) Run(prog *Program, model CostModel, start []float64, obs Observer) (Result, error) {
	p := prog.NumRanks()
	if cap(e.clock) < p {
		e.clock = make([]float64, p)
		e.pc = make([]int, p)
		e.status = make([]rankStatus, p)
		e.sendPeer = make([]int32, p)
		e.sendPair = make([]*pairState, p)
		e.recvPeer = make([]int32, p)
		e.recvPair = make([]*pairState, p)
	}
	e.clock = e.clock[:p]
	e.pc = e.pc[:p]
	e.status = e.status[:p]
	e.sendPeer = e.sendPeer[:p]
	e.sendPair = e.sendPair[:p]
	e.recvPeer = e.recvPeer[:p]
	e.recvPair = e.recvPair[:p]
	for i := 0; i < p; i++ {
		e.sendPeer[i] = -1
		e.recvPeer[i] = -1
	}
	e.heap = e.heap[:0]
	// The pair map is pooled across runs: collective sweeps execute many
	// programs back to back on one engine, and reallocating the map plus its
	// inflight message records every run dominated the per-cell GC churn.
	// Each retained pairState is reset to its logical zero (empty inflight
	// queue, no parked receiver) so no message or receiver state can leak
	// into the next run; the inflight backing arrays keep their capacity.
	if e.pairs == nil {
		e.pairs = make(map[uint64]*pairState, 64)
	} else {
		for _, ps := range e.pairs {
			ps.inflight = ps.inflight[:0]
			ps.head = 0
			ps.waiting = false
			ps.recvPost = 0
			ps.recvBytes = 0
		}
	}
	e.prog = prog
	e.model = model
	e.obs = obs
	e.done = 0
	if e.collectStats {
		e.stats = Stats{}
	}

	minStart := 0.0
	for r := 0; r < p; r++ {
		t := 0.0
		if start != nil {
			t = start[r]
		}
		if r == 0 || t < minStart {
			minStart = t
		}
		e.clock[r] = t
		e.pc[r] = 0
		if len(prog.Ranks[r]) == 0 {
			e.status[r] = statusDone
			e.done++
		} else {
			e.status[r] = statusReady
			e.heap.push(t, int32(r))
		}
	}

	events := 0
	for len(e.heap) > 0 {
		_, r32 := e.heap.pop()
		r := int(r32)
		if e.status[r] != statusReady {
			continue // stale entry
		}
		// Run this rank until it blocks, finishes, or is no longer the
		// earliest ready rank.
		for {
			if e.pc[r] >= len(e.prog.Ranks[r]) {
				e.status[r] = statusDone
				e.done++
				break
			}
			advanced, err := e.step(r)
			if err != nil {
				return Result{}, err
			}
			events++
			if e.collectStats && len(e.heap) > e.stats.PeakHeapDepth {
				e.stats.PeakHeapDepth = len(e.heap)
			}
			if !advanced {
				break // blocked; woken later
			}
			if len(e.heap) > 0 && timeBits(e.clock[r]) > e.heap[0].tb {
				e.heap.push(e.clock[r], r32)
				break
			}
		}
	}

	if e.done != p {
		return Result{}, e.deadlockError(prog)
	}

	res := Result{Finish: append([]float64(nil), e.clock...), Events: events}
	if e.collectStats {
		s := e.stats
		res.Stats = &s
	}
	maxT := 0.0
	for _, t := range e.clock {
		if t > maxT {
			maxT = t
		}
	}
	res.Time = maxT - minStart
	return res, nil
}

// step executes the next op of rank r. It returns false when the rank
// blocked (without advancing pc).
func (e *Engine) step(r int) (bool, error) {
	op := &e.prog.Ranks[r][e.pc[r]]
	t0 := e.clock[r]
	switch op.Kind {
	case OpCompute:
		e.clock[r] += e.model.Compute(op.Bytes)
		e.pc[r]++
		if e.collectStats {
			e.stats.Computes++
		}
		if e.tracer != nil {
			e.tracer.OpSpan(int32(r), OpCompute, -1, op.Bytes, t0, e.clock[r], false)
		}
		return true, nil

	case OpSend, OpSendNB:
		if e.obs != nil && op.PayLen > 0 {
			if err := e.obs.OnSend(int32(r), e.prog.Pay[op.PayStart:op.PayStart+int32(op.PayLen)]); err != nil {
				return false, fmt.Errorf("rank %d op %d: %w", r, e.pc[r], err)
			}
		}
		ps := e.sendPairOf(int32(r), op.Peer)
		receiverParked := ps.waiting && ps.head >= len(ps.inflight)
		if e.model.Eager(op.Bytes) {
			sdone, arr := e.model.SendEager(int32(r), op.Peer, op.Bytes, e.clock[r])
			if receiverParked {
				if ps.recvBytes != op.Bytes {
					return false, matchErr(r, int(op.Peer), op.Bytes, ps.recvBytes)
				}
				ps.waiting = false
				if err := e.wakeReceiver(int32(r), op.Peer, maxf(ps.recvPost, arr), ps.recvPost, op, false); err != nil {
					return false, err
				}
			} else {
				ps.inflight = append(ps.inflight, msgRec{ts: arr, bytes: op.Bytes,
					payStart: op.PayStart, payLen: op.PayLen, eager: true})
			}
			e.clock[r] = sdone
			e.pc[r]++
			if e.collectStats {
				e.stats.Sends++
				e.stats.EagerSends++
			}
			if e.tracer != nil {
				e.tracer.OpSpan(int32(r), op.Kind, op.Peer, op.Bytes, t0, e.clock[r], false)
			}
			return true, nil
		}
		nb := op.Kind == OpSendNB
		if receiverParked {
			sdone, arr := e.model.SendRendezvous(int32(r), op.Peer, op.Bytes, e.clock[r], ps.recvPost)
			if ps.recvBytes != op.Bytes {
				return false, matchErr(r, int(op.Peer), op.Bytes, ps.recvBytes)
			}
			ps.waiting = false
			if err := e.wakeReceiver(int32(r), op.Peer, arr, ps.recvPost, op, true); err != nil {
				return false, err
			}
			if nb {
				e.clock[r] += e.model.PostOverhead(op.Bytes)
			} else {
				e.clock[r] = sdone
			}
			e.pc[r]++
			if e.collectStats {
				e.stats.Sends++
				e.stats.RendezvousSends++
			}
			if e.tracer != nil {
				e.tracer.OpSpan(int32(r), op.Kind, op.Peer, op.Bytes, t0, e.clock[r], true)
			}
			return true, nil
		}
		// Record the pending rendezvous. A blocking sender parks until the
		// receiver posts; a non-blocking sender proceeds.
		ps.inflight = append(ps.inflight, msgRec{ts: e.clock[r], bytes: op.Bytes,
			payStart: op.PayStart, payLen: op.PayLen, eager: false, nb: nb})
		if nb {
			e.clock[r] += e.model.PostOverhead(op.Bytes)
			e.pc[r]++
			if e.collectStats {
				e.stats.Sends++
				e.stats.RendezvousSends++
			}
			if e.tracer != nil {
				e.tracer.OpSpan(int32(r), op.Kind, op.Peer, op.Bytes, t0, e.clock[r], true)
			}
			return true, nil
		}
		e.status[r] = statusBlockedSend
		if e.collectStats {
			e.stats.BlockedSends++
		}
		return false, nil

	default: // OpRecv
		ps := e.recvPairOf(op.Peer, int32(r))
		if ps.head >= len(ps.inflight) {
			ps.waiting = true
			ps.recvPost = e.clock[r]
			ps.recvBytes = op.Bytes
			e.status[r] = statusBlockedRecv
			if e.collectStats {
				e.stats.BlockedRecvs++
			}
			return false, nil
		}
		rec := &ps.inflight[ps.head]
		ps.head++
		if rec.bytes != op.Bytes {
			return false, matchErr(int(op.Peer), r, rec.bytes, op.Bytes)
		}
		var arrival float64
		if rec.eager {
			arrival = maxf(e.clock[r], rec.ts)
		} else {
			sdone, arr := e.model.SendRendezvous(op.Peer, int32(r), rec.bytes, rec.ts, e.clock[r])
			arrival = arr
			if !rec.nb {
				// Wake the parked blocking sender.
				s := op.Peer
				e.clock[s] = sdone
				e.pc[s]++
				e.status[s] = statusReady
				e.heap.push(sdone, s)
				if e.collectStats {
					e.stats.Sends++
					e.stats.RendezvousSends++
				}
				if e.tracer != nil {
					e.tracer.OpSpan(s, OpSend, int32(r), rec.bytes, rec.ts, sdone, true)
				}
			}
		}
		e.clock[r] = arrival + e.model.RecvOverhead(op.Bytes)
		if e.obs != nil && rec.payLen > 0 {
			if err := e.obs.OnDeliver(int32(r), e.prog.Pay[rec.payStart:rec.payStart+int32(rec.payLen)]); err != nil {
				return false, fmt.Errorf("deliver to rank %d: %w", r, err)
			}
		}
		if ps.head == len(ps.inflight) {
			ps.inflight = ps.inflight[:0]
			ps.head = 0
		}
		e.pc[r]++
		if e.collectStats {
			e.stats.Recvs++
			e.stats.MessagesMatched++
		}
		if e.tracer != nil {
			e.tracer.OpSpan(int32(r), OpRecv, op.Peer, op.Bytes, t0, e.clock[r], !rec.eager)
		}
		return true, nil
	}
}

// wakeReceiver finishes the receive parked at rank dst: the receiver's clock
// advances to arrival + overhead and it becomes runnable again. src is the
// sending rank, recvPost the time the receive was posted (the start of its
// timeline span), rendezvous the protocol of the matching send.
func (e *Engine) wakeReceiver(src, dst int32, arrival, recvPost float64, op *Op, rendezvous bool) error {
	e.clock[dst] = arrival + e.model.RecvOverhead(op.Bytes)
	e.pc[dst]++
	e.status[dst] = statusReady
	e.heap.push(e.clock[dst], dst)
	if e.collectStats {
		e.stats.Recvs++
		e.stats.MessagesMatched++
	}
	if e.tracer != nil {
		e.tracer.OpSpan(dst, OpRecv, src, op.Bytes, recvPost, e.clock[dst], rendezvous)
	}
	if e.obs != nil && op.PayLen > 0 {
		if err := e.obs.OnDeliver(dst, e.prog.Pay[op.PayStart:op.PayStart+int32(op.PayLen)]); err != nil {
			return fmt.Errorf("deliver to rank %d: %w", dst, err)
		}
	}
	return nil
}

func (e *Engine) deadlockError(prog *Program) error {
	var blocked []string
	for r := range e.status {
		if e.status[r] == statusDone {
			continue
		}
		op := prog.Ranks[r][e.pc[r]]
		kind := "recv from"
		if op.Kind == OpSend {
			kind = "send(rvz) to"
		}
		blocked = append(blocked, fmt.Sprintf("rank %d pc %d: %s %d (%d B)", r, e.pc[r], kind, op.Peer, op.Bytes))
		if len(blocked) >= 8 {
			blocked = append(blocked, "...")
			break
		}
	}
	sort.Strings(blocked)
	return fmt.Errorf("sim: deadlock; blocked ranks: %v", blocked)
}

func matchErr(src, dst int, sent, recv uint32) error {
	return fmt.Errorf("sim: message size mismatch %d->%d: sent %d B, receive posted %d B", src, dst, sent, recv)
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// timeHeap is a 4-ary min-heap of (time, rank) entries — shallower and more
// cache-friendly than a binary heap, which matters because the scheduler is
// the hottest code in large simulations. Ties are broken by rank id for
// determinism.
type timeHeap []heapEntry

type heapEntry struct {
	tb uint64 // timeBits(time): an order-preserving encoding, see below
	r  int32
}

// timeBits maps a float64 time to a uint64 whose unsigned ordering matches
// the float ordering for every non-NaN value, including negatives: the sign
// bit is flipped for non-negative values and all bits are flipped for
// negative ones. Raw math.Float64bits ordering is only valid for t >= 0,
// and fault plans apply clock-outlier adjustments to rank start times — a
// negative start must not silently reorder the event heap. NaN has no place
// in a simulated clock at all and is rejected outright.
func timeBits(t float64) uint64 {
	if math.IsNaN(t) {
		//mpicollvet:ignore panicguard scheduler invariant: a NaN event time means a cost model returned garbage; continuing would order events arbitrarily
		panic("sim: NaN event time pushed to scheduler heap")
	}
	b := math.Float64bits(t)
	if b&(1<<63) != 0 {
		return ^b
	}
	return b | 1<<63
}

// timeFromBits inverts timeBits.
func timeFromBits(b uint64) float64 {
	if b&(1<<63) != 0 {
		return math.Float64frombits(b &^ (1 << 63))
	}
	return math.Float64frombits(^b)
}

const heapArity = 4

func (h *timeHeap) push(t float64, r int32) {
	*h = append(*h, heapEntry{timeBits(t), r})
	hh := *h
	i := len(hh) - 1
	e := hh[i]
	for i > 0 {
		parent := (i - 1) / heapArity
		if less(e, hh[parent]) {
			hh[i] = hh[parent]
			i = parent
		} else {
			break
		}
	}
	hh[i] = e
}

func (h *timeHeap) pop() (float64, int32) {
	hh := *h
	top := hh[0]
	n := len(hh) - 1
	e := hh[n]
	*h = hh[:n]
	hh = hh[:n]
	i := 0
	for {
		first := heapArity*i + 1
		if first >= n {
			break
		}
		last := first + heapArity
		if last > n {
			last = n
		}
		smallest := first
		for c := first + 1; c < last; c++ {
			if less(hh[c], hh[smallest]) {
				smallest = c
			}
		}
		if !less(hh[smallest], e) {
			break
		}
		hh[i] = hh[smallest]
		i = smallest
	}
	if n > 0 {
		hh[i] = e
	}
	return timeFromBits(top.tb), top.r
}

func less(a, b heapEntry) bool {
	if a.tb != b.tb {
		return a.tb < b.tb
	}
	return a.r < b.r
}
