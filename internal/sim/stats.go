package sim

// Stats is the per-run instrumentation block attached to Result when stats
// collection is enabled via Engine.CollectStats. All counters are totals
// over one Run.
type Stats struct {
	// Sends, Recvs and Computes partition the executed operations by kind
	// (a blocked op that resumes later is counted once).
	Sends    int
	Recvs    int
	Computes int
	// EagerSends and RendezvousSends partition Sends by protocol.
	EagerSends      int
	RendezvousSends int
	// MessagesMatched counts completed (send, recv) matches; at the end of
	// a run it equals the number of delivered messages.
	MessagesMatched int
	// BlockedSends and BlockedRecvs count operations that had to park
	// waiting for their partner (a measure of schedule slack).
	BlockedSends int
	BlockedRecvs int
	// PeakHeapDepth is the maximum number of runnable-rank entries in the
	// scheduler heap, sampled once per executed operation.
	PeakHeapDepth int
}

// Tracer receives per-rank timeline spans during execution; used by the
// Chrome trace exporter. Spans are reported in completion order, with
// simulated-seconds endpoints. A nil Tracer disables the callbacks.
type Tracer interface {
	// OpSpan reports that rank occupied [start, end] executing an op of the
	// given kind. peer is the partner rank (-1 for compute); rendezvous
	// reports the protocol of a send.
	OpSpan(rank int32, kind OpKind, peer int32, bytes uint32, start, end float64, rendezvous bool)
}

// ResourceTracer receives per-node resource occupancy spans (NIC injection,
// memory bus) from the cost model; used by the Chrome trace exporter to
// render NIC-queueing alongside the rank timelines.
type ResourceTracer interface {
	// ResourceSpan reports that the named resource ("nic", "mem") of node
	// was busy over [start, end].
	ResourceSpan(resource string, node int32, start, end float64)
}

// String names the op kind for traces and error messages.
func (k OpKind) String() string {
	switch k {
	case OpSend:
		return "send"
	case OpSendNB:
		return "isend"
	case OpRecv:
		return "recv"
	case OpCompute:
		return "compute"
	}
	return "op?"
}
