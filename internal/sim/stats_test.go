package sim

import "testing"

// spanRec captures Tracer callbacks for assertions.
type spanRec struct {
	rank, peer int32
	kind       OpKind
	start, end float64
	rendezvous bool
}

type recordingTracer struct{ spans []spanRec }

func (r *recordingTracer) OpSpan(rank int32, kind OpKind, peer int32, bytes uint32, start, end float64, rendezvous bool) {
	r.spans = append(r.spans, spanRec{rank: rank, peer: peer, kind: kind, start: start, end: end, rendezvous: rendezvous})
}

func TestStatsDisabledByDefault(t *testing.T) {
	b := NewBuilder(2, false)
	b.Send(0, 1, 10)
	b.Recv(1, 0, 10)
	res, err := NewEngine().Run(b.Build(), newTestModel(), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats != nil {
		t.Errorf("Stats must be nil unless enabled, got %+v", res.Stats)
	}
}

func TestStatsCountsMixedProtocols(t *testing.T) {
	// 2 eager sends (10 B), 1 rendezvous send (2 MiB above the 1 MiB
	// threshold), 1 compute; every message is received.
	b := NewBuilder(2, false)
	b.Send(0, 1, 10)
	b.Recv(1, 0, 10)
	b.Compute(1, 100)
	b.Send(1, 0, 10)
	b.Recv(0, 1, 10)
	b.Send(0, 1, 2<<20)
	b.Recv(1, 0, 2<<20)
	eng := NewEngine()
	eng.CollectStats(true)
	res, err := eng.Run(b.Build(), newTestModel(), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	s := res.Stats
	if s == nil {
		t.Fatal("stats enabled but Result.Stats is nil")
	}
	if s.Sends != 3 || s.Recvs != 3 || s.Computes != 1 {
		t.Errorf("op counts wrong: %+v", s)
	}
	if s.EagerSends != 2 || s.RendezvousSends != 1 {
		t.Errorf("protocol split wrong: %+v", s)
	}
	if s.MessagesMatched != 3 {
		t.Errorf("matched = %d, want 3", s.MessagesMatched)
	}
	if s.BlockedSends+s.BlockedRecvs == 0 {
		t.Errorf("expected some blocking in a ping-pong: %+v", s)
	}
	if s.PeakHeapDepth < 1 {
		t.Errorf("peak heap depth = %d", s.PeakHeapDepth)
	}
	// Stats must reset between runs, not accumulate.
	res2, err := eng.Run(b.Build(), newTestModel(), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if *res2.Stats != *s {
		t.Errorf("second run stats differ: %+v vs %+v", res2.Stats, s)
	}
}

func TestTracerSpansCoverAllOps(t *testing.T) {
	// One eager exchange, one parked-receiver eager send, one rendezvous
	// with a parked sender: all three delivery paths must emit spans.
	b := NewBuilder(2, false)
	b.Recv(1, 0, 64)    // parks: eager send wakes it
	b.Send(0, 1, 64)    //
	b.Send(1, 0, 2<<20) // rendezvous: parks until 0 posts the recv
	b.Compute(0, 1000)  //
	b.Recv(0, 1, 2<<20) // wakes the parked sender
	tr := &recordingTracer{}
	eng := NewEngine()
	eng.SetTracer(tr)
	res, err := eng.Run(b.Build(), newTestModel(), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	var sends, recvs, computes int
	for _, sp := range tr.spans {
		if sp.end < sp.start {
			t.Errorf("span ends before it starts: %+v", sp)
		}
		switch sp.kind {
		case OpSend, OpSendNB:
			sends++
		case OpRecv:
			recvs++
		case OpCompute:
			computes++
		}
	}
	if sends != 2 || recvs != 2 || computes != 1 {
		t.Errorf("span counts: %d sends, %d recvs, %d computes (spans %+v)", sends, recvs, computes, tr.spans)
	}
	// The rendezvous sender's span must be held open until the receiver
	// posted, i.e. end past the receiver's compute.
	for _, sp := range tr.spans {
		if sp.kind == OpSend && sp.rendezvous && sp.end < 0.1 {
			t.Errorf("rendezvous send span too short: %+v", sp)
		}
	}
	if res.Stats != nil {
		t.Error("tracer alone must not enable stats")
	}
	// Tracing must not change timing.
	res2, err := NewEngine().Run(b.Build(), newTestModel(), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Time != res2.Time {
		t.Errorf("tracing changed the makespan: %v vs %v", res.Time, res2.Time)
	}
}

func TestStatsMatchRingDeliveries(t *testing.T) {
	p, steps := 16, 8
	prog := buildRing(p, steps)
	eng := NewEngine()
	eng.CollectStats(true)
	res, err := eng.Run(prog, newTestModel(), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	s := res.Stats
	wantMsgs := p * steps
	if s.MessagesMatched != wantMsgs || s.Sends != wantMsgs || s.Recvs != wantMsgs {
		t.Errorf("ring accounting: %+v, want %d messages", s, wantMsgs)
	}
	if s.PeakHeapDepth > p {
		t.Errorf("peak heap depth %d exceeds rank count %d", s.PeakHeapDepth, p)
	}
}
