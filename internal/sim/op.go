// Package sim implements a deterministic discrete-event simulator for
// message-passing programs.
//
// A collective algorithm is expressed as a Program: one sequential list of
// operations (send, receive, compute) per rank. The Engine executes all rank
// programs against a CostModel, respecting MPI-style non-overtaking message
// matching per (source, destination) pair, and returns the simulated
// completion time of every rank.
//
// Programs are built through a Builder, which can optionally record payload
// metadata (which logical data blocks, contributed by which ranks, a message
// carries). The Tracker replays that metadata during execution to verify the
// semantic correctness of a schedule: a rank may only send data it already
// holds, and the final holdings must match the collective's postcondition.
package sim

import "fmt"

// OpKind discriminates the operation types a rank program may contain.
type OpKind uint8

const (
	// OpSend transmits Bytes to rank Peer. The sender resumes after its
	// local overhead (eager protocol) or after the receiver has matched
	// the message (rendezvous protocol).
	OpSend OpKind = iota
	// OpRecv blocks until the next unmatched message from rank Peer has
	// arrived, then completes after the receive overhead.
	OpRecv
	// OpCompute advances the rank's local clock by the model's computation
	// cost for Bytes bytes (used for reduction arithmetic and copies).
	OpCompute
	// OpSendNB is a non-blocking send (MPI_Isend / the send half of
	// MPI_Sendrecv): the sender proceeds after its local overhead even for
	// rendezvous-size messages; the data transfer itself still waits for
	// the matching receive. Exchange-style algorithms (recursive doubling,
	// rings, pairwise) use it to stay deadlock-free, as real MPI
	// implementations do.
	OpSendNB
)

// Op is a single operation in a rank program. It is kept small (16 bytes)
// because large segmented collectives generate millions of operations.
type Op struct {
	Peer     int32 // destination (send) or source (recv); unused for compute
	Bytes    uint32
	PayStart int32 // index into Program.Pay; -1 when no payload recorded
	PayLen   int16
	Kind     OpKind
	_        uint8
}

// PayUnit describes one logical data block carried by a message: the block
// identifier and the set of contributing ranks (as a bitmask, which limits
// verification to p <= 64 ranks; timing simulation has no such limit).
type PayUnit struct {
	Block int32
	Mask  uint64
}

// Program is a complete schedule: one op list per rank plus the shared
// payload table referenced by the ops.
type Program struct {
	Ranks [][]Op
	Pay   []PayUnit
}

// NumRanks returns the number of rank programs.
func (p *Program) NumRanks() int { return len(p.Ranks) }

// NumOps returns the total number of operations across all ranks.
func (p *Program) NumOps() int {
	n := 0
	for _, ops := range p.Ranks {
		n += len(ops)
	}
	return n
}

// Builder incrementally constructs a Program. Generators call Send, Recv and
// Compute with explicit rank arguments; ops are appended to the given rank's
// sequential program. When Verify is false, payload arguments are dropped,
// keeping the hot path allocation-light.
type Builder struct {
	prog   Program
	verify bool
}

// NewBuilder returns a Builder for p ranks. If verify is true, payload
// metadata passed to Send is recorded for later replay by a Tracker.
func NewBuilder(p int, verify bool) *Builder {
	b := &Builder{verify: verify}
	b.prog.Ranks = make([][]Op, p)
	return b
}

// RecycleBuilder returns a Builder for p ranks that reuses the backing
// arrays of a previously built Program, so sweeps that build one schedule
// after another do not reallocate per-rank op lists each time. The recycled
// Program must no longer be in use: the new schedule overwrites it in place.
// A nil prog is equivalent to NewBuilder.
func RecycleBuilder(prog *Program, p int, verify bool) *Builder {
	if prog == nil {
		return NewBuilder(p, verify)
	}
	b := &Builder{verify: verify}
	ranks := prog.Ranks
	if cap(ranks) < p {
		grown := make([][]Op, p)
		copy(grown, ranks)
		ranks = grown
	}
	ranks = ranks[:p]
	for r := range ranks {
		ranks[r] = ranks[r][:0]
	}
	b.prog.Ranks = ranks
	b.prog.Pay = prog.Pay[:0]
	return b
}

// P returns the number of ranks of the program under construction.
func (b *Builder) P() int { return len(b.prog.Ranks) }

// Reserve pre-allocates capacity for n additional ops on every rank,
// avoiding append-growth copies when generators know their schedule sizes.
func (b *Builder) Reserve(n int) {
	for r, ops := range b.prog.Ranks {
		if cap(ops)-len(ops) < n {
			grown := make([]Op, len(ops), len(ops)+n)
			copy(grown, ops)
			b.prog.Ranks[r] = grown
		}
	}
}

// Verify reports whether payload metadata is being recorded.
func (b *Builder) Verify() bool { return b.verify }

// Send appends a send of bytes from rank to dst, optionally annotated with
// the payload units the message carries (recorded only in verify mode).
func (b *Builder) Send(rank, dst int, bytes int64, pay ...PayUnit) {
	op := Op{Kind: OpSend, Peer: int32(dst), Bytes: clampBytes(bytes), PayStart: -1}
	if b.verify && len(pay) > 0 {
		op.PayStart = int32(len(b.prog.Pay))
		op.PayLen = int16(len(pay))
		b.prog.Pay = append(b.prog.Pay, pay...)
	}
	b.prog.Ranks[rank] = append(b.prog.Ranks[rank], op)
}

// SendNB appends a non-blocking send of bytes from rank to dst.
func (b *Builder) SendNB(rank, dst int, bytes int64, pay ...PayUnit) {
	op := Op{Kind: OpSendNB, Peer: int32(dst), Bytes: clampBytes(bytes), PayStart: -1}
	if b.verify && len(pay) > 0 {
		op.PayStart = int32(len(b.prog.Pay))
		op.PayLen = int16(len(pay))
		b.prog.Pay = append(b.prog.Pay, pay...)
	}
	b.prog.Ranks[rank] = append(b.prog.Ranks[rank], op)
}

// Recv appends a blocking receive of bytes on rank from src.
func (b *Builder) Recv(rank, src int, bytes int64) {
	b.prog.Ranks[rank] = append(b.prog.Ranks[rank],
		Op{Kind: OpRecv, Peer: int32(src), Bytes: clampBytes(bytes), PayStart: -1})
}

// SendRecv appends a non-blocking send to dst followed by a blocking receive
// from src on rank — the deadlock-free exchange primitive (MPI_Sendrecv)
// used by recursive-doubling, ring and pairwise algorithms.
func (b *Builder) SendRecv(rank, dst int, sendBytes int64, src int, recvBytes int64, pay ...PayUnit) {
	b.SendNB(rank, dst, sendBytes, pay...)
	b.Recv(rank, src, recvBytes)
}

// Compute appends a local computation over bytes on rank. Computations
// larger than the per-op byte range (e.g. reducing p gathered vectors) are
// split into multiple ops.
func (b *Builder) Compute(rank int, bytes int64) {
	const maxOpBytes = 1 << 31
	for bytes > maxOpBytes {
		b.prog.Ranks[rank] = append(b.prog.Ranks[rank],
			Op{Kind: OpCompute, Bytes: maxOpBytes, PayStart: -1})
		bytes -= maxOpBytes
	}
	if bytes <= 0 {
		return
	}
	b.prog.Ranks[rank] = append(b.prog.Ranks[rank],
		Op{Kind: OpCompute, Bytes: clampBytes(bytes), PayStart: -1})
}

// Build finalizes and returns the Program. The Builder must not be reused.
func (b *Builder) Build() *Program { return &b.prog }

func clampBytes(bytes int64) uint32 {
	if bytes < 0 {
		//mpicollvet:ignore panicguard schedule-builder invariant: collective schedules compute byte counts from validated specs, so a negative count is a programmer error
		panic(fmt.Sprintf("sim: negative byte count %d", bytes))
	}
	if bytes > 0xFFFFFFFF {
		//mpicollvet:ignore panicguard schedule-builder invariant: message sizes are capped far below 4 GiB by the dataset grids
		panic(fmt.Sprintf("sim: byte count %d exceeds uint32 range", bytes))
	}
	return uint32(bytes)
}
