package sim

import (
	"fmt"
	"testing"
)

// Engine throughput benchmarks: the simulator's events/second determine how
// large a Table II grid is practical, so regressions here matter as much as
// correctness.

func buildRing(p, steps int) *Program {
	b := NewBuilder(p, false)
	for s := 0; s < steps; s++ {
		for r := 0; r < p; r++ {
			b.SendRecv(r, (r+1)%p, 1024, (r-1+p)%p, 1024)
		}
	}
	return b.Build()
}

func buildTree(p, segs int) *Program {
	b := NewBuilder(p, false)
	for s := 0; s < segs; s++ {
		for r := 0; r < p; r++ {
			if r > 0 {
				parent := r
				// clear lowest set bit -> binomial parent
				parent = r & (r - 1)
				b.Recv(r, parent, 4096)
			}
			for mask := 1; mask < p; mask <<= 1 {
				if r&(mask-1) == 0 && r&mask == 0 && r+mask < p {
					b.Send(r, r+mask, 4096)
				}
			}
		}
	}
	return b.Build()
}

func benchProgram(b *testing.B, prog *Program, stats bool) {
	b.Helper()
	model := newTestModel()
	eng := NewEngine()
	eng.CollectStats(stats)
	b.ResetTimer()
	totalEvents := 0
	for i := 0; i < b.N; i++ {
		res, err := eng.Run(prog, model, nil, nil)
		if err != nil {
			b.Fatal(err)
		}
		totalEvents += res.Events
	}
	b.ReportMetric(float64(totalEvents)/b.Elapsed().Seconds(), "events/s")
}

func BenchmarkEngineRing(b *testing.B) {
	for _, p := range []int{64, 512} {
		b.Run(fmt.Sprintf("p=%d", p), func(b *testing.B) {
			benchProgram(b, buildRing(p, 2*(p-1)), false)
		})
	}
}

// BenchmarkEngineRingStats is the metrics-enabled twin of BenchmarkEngineRing;
// the observability acceptance bar is < 5% events/s regression against it.
func BenchmarkEngineRingStats(b *testing.B) {
	for _, p := range []int{64, 512} {
		b.Run(fmt.Sprintf("p=%d", p), func(b *testing.B) {
			benchProgram(b, buildRing(p, 2*(p-1)), true)
		})
	}
}

func BenchmarkEngineBinomialPipelined(b *testing.B) {
	for _, p := range []int{64, 512} {
		b.Run(fmt.Sprintf("p=%d", p), func(b *testing.B) {
			benchProgram(b, buildTree(p, 64), false)
		})
	}
}

func BenchmarkEngineBinomialPipelinedStats(b *testing.B) {
	for _, p := range []int{64, 512} {
		b.Run(fmt.Sprintf("p=%d", p), func(b *testing.B) {
			benchProgram(b, buildTree(p, 64), true)
		})
	}
}

func BenchmarkBuilderAppend(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bd := NewBuilder(64, false)
		bd.Reserve(128)
		for s := 0; s < 64; s++ {
			for r := 0; r < 63; r++ {
				bd.Send(r, r+1, 1024)
				bd.Recv(r+1, r, 1024)
			}
		}
		if bd.Build().NumOps() == 0 {
			b.Fatal("empty program")
		}
	}
}
