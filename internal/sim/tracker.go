package sim

import "fmt"

// Tracker verifies the data-flow semantics of a schedule during execution.
// Each rank holds, per logical block, a bitmask of the ranks whose
// contribution is (transitively) included in its copy of the block. A rank
// may only send block data whose contribution mask it already holds; on
// delivery the receiver's mask is extended.
//
// Verification is limited to p <= 64 ranks (masks are uint64); the timing
// engine itself has no such limit.
type Tracker struct {
	holds []map[int32]uint64
}

// NewTracker returns a Tracker for p ranks with empty holdings.
func NewTracker(p int) *Tracker {
	t := &Tracker{holds: make([]map[int32]uint64, p)}
	for i := range t.holds {
		t.holds[i] = make(map[int32]uint64)
	}
	return t
}

// Init grants rank the given contribution mask for block (initial holdings).
func (t *Tracker) Init(rank int, block int32, mask uint64) {
	t.holds[rank][block] |= mask
}

// OnSend implements Observer: verifies the sender holds everything it sends.
func (t *Tracker) OnSend(src int32, pay []PayUnit) error {
	h := t.holds[src]
	for _, u := range pay {
		if h[u.Block]&u.Mask != u.Mask {
			return fmt.Errorf("tracker: rank %d sends block %d mask %#x but holds only %#x",
				src, u.Block, u.Mask, h[u.Block])
		}
	}
	return nil
}

// OnDeliver implements Observer: merges the delivered masks into the
// receiver's holdings.
func (t *Tracker) OnDeliver(dst int32, pay []PayUnit) error {
	h := t.holds[dst]
	for _, u := range pay {
		h[u.Block] |= u.Mask
	}
	return nil
}

// Holds reports whether rank holds at least mask for block.
func (t *Tracker) Holds(rank int, block int32, mask uint64) bool {
	return t.holds[rank][block]&mask == mask
}

// Mask returns the contribution mask rank holds for block.
func (t *Tracker) Mask(rank int, block int32) uint64 { return t.holds[rank][block] }

// FullMask is the mask containing all p contributions.
func FullMask(p int) uint64 {
	if p >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << p) - 1
}

var _ Observer = (*Tracker)(nil)
