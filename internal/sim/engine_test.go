package sim

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

// testModel is a minimal deterministic cost model: latency L per message,
// per-byte cost G, constant overheads, eager below eagerAt bytes.
type testModel struct {
	L, G, O float64
	eagerAt uint32
	gamma   float64
}

func (m *testModel) Eager(bytes uint32) bool { return bytes < m.eagerAt }

func (m *testModel) SendEager(src, dst int32, bytes uint32, t float64) (float64, float64) {
	return t + m.O, t + m.O + m.L + float64(bytes)*m.G
}

func (m *testModel) SendRendezvous(src, dst int32, bytes uint32, ts, tr float64) (float64, float64) {
	start := math.Max(ts, tr) + m.L // handshake
	end := start + m.O + m.L + float64(bytes)*m.G
	return end, end
}

func (m *testModel) RecvOverhead(bytes uint32) float64 { return m.O }
func (m *testModel) PostOverhead(bytes uint32) float64 { return m.O }
func (m *testModel) Compute(bytes uint32) float64      { return float64(bytes) * m.gamma }

func newTestModel() *testModel {
	return &testModel{L: 1.0, G: 0.001, O: 0.1, eagerAt: 1 << 20, gamma: 0.0001}
}

func TestPingPongTiming(t *testing.T) {
	b := NewBuilder(2, false)
	b.Send(0, 1, 1000)
	b.Recv(1, 0, 1000)
	b.Send(1, 0, 1000)
	b.Recv(0, 1, 1000)
	m := newTestModel()
	res, err := NewEngine().Run(b.Build(), m, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	// rank1 receives at 0.1(sender o)+1+1 = 2.1, + o = 2.2; sends back,
	// arrival at 2.2+0.1+1+1 = 4.3, rank0 completes at 4.4.
	want := 4.4
	if math.Abs(res.Time-want) > 1e-9 {
		t.Errorf("ping-pong time = %v, want %v", res.Time, want)
	}
	if res.Events != 4 {
		t.Errorf("events = %d, want 4", res.Events)
	}
}

func TestEagerSenderDoesNotBlock(t *testing.T) {
	// Rank 0 fires two eager sends back to back; its own finish time must
	// only reflect local overheads, not network latency.
	b := NewBuilder(3, false)
	b.Send(0, 1, 10)
	b.Send(0, 2, 10)
	b.Recv(1, 0, 10)
	b.Recv(2, 0, 10)
	m := newTestModel()
	res, err := NewEngine().Run(b.Build(), m, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := res.Finish[0], 0.2; math.Abs(got-want) > 1e-9 {
		t.Errorf("sender finish = %v, want %v", got, want)
	}
	if res.Finish[2] <= res.Finish[0] {
		t.Errorf("receiver should finish after sender: %v vs %v", res.Finish[2], res.Finish[0])
	}
}

func TestRendezvousBlocksSender(t *testing.T) {
	// Large message: sender must wait for receiver, which is busy computing.
	b := NewBuilder(2, false)
	b.Send(0, 1, 2<<20)
	b.Compute(1, 100000) // 10s of compute before posting the recv
	b.Recv(1, 0, 2<<20)
	m := newTestModel()
	res, err := NewEngine().Run(b.Build(), m, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Finish[0] < 10 {
		t.Errorf("rendezvous sender finished at %v, expected to be held past t=10", res.Finish[0])
	}
}

func TestRendezvousReceiverFirst(t *testing.T) {
	// Receiver posts first; sender arrives later. Must not deadlock and the
	// transfer starts at the sender's post time.
	b := NewBuilder(2, false)
	b.Compute(0, 100000)
	b.Send(0, 1, 2<<20)
	b.Recv(1, 0, 2<<20)
	m := newTestModel()
	res, err := NewEngine().Run(b.Build(), m, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Finish[1] < 10 {
		t.Errorf("receiver finished at %v, expected after sender post at t=10", res.Finish[1])
	}
}

func TestFIFOMatchingOrder(t *testing.T) {
	// Two messages of different sizes on the same pair must match in order;
	// a swap would be a size mismatch error.
	b := NewBuilder(2, false)
	b.Send(0, 1, 100)
	b.Send(0, 1, 200)
	b.Recv(1, 0, 100)
	b.Recv(1, 0, 200)
	if _, err := NewEngine().Run(b.Build(), newTestModel(), nil, nil); err != nil {
		t.Fatalf("in-order matching failed: %v", err)
	}

	b = NewBuilder(2, false)
	b.Send(0, 1, 100)
	b.Send(0, 1, 200)
	b.Recv(1, 0, 200) // wrong order
	b.Recv(1, 0, 100)
	if _, err := NewEngine().Run(b.Build(), newTestModel(), nil, nil); err == nil {
		t.Fatal("expected size mismatch error for out-of-order receive")
	}
}

func TestSendRecvExchangeNoDeadlock(t *testing.T) {
	// Symmetric large-message exchange would deadlock with blocking sends;
	// SendRecv (non-blocking send half) must complete.
	b := NewBuilder(2, false)
	b.SendRecv(0, 1, 2<<20, 1, 2<<20)
	b.SendRecv(1, 0, 2<<20, 0, 2<<20)
	res, err := NewEngine().Run(b.Build(), newTestModel(), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Time <= 0 {
		t.Errorf("bad exchange time %v", res.Time)
	}

	// The same exchange with blocking sends must deadlock.
	b = NewBuilder(2, false)
	b.Send(0, 1, 2<<20)
	b.Recv(0, 1, 2<<20)
	b.Send(1, 0, 2<<20)
	b.Recv(1, 0, 2<<20)
	if _, err := NewEngine().Run(b.Build(), newTestModel(), nil, nil); err == nil {
		t.Fatal("expected deadlock with blocking symmetric sends")
	}
}

func TestSendNBRendezvousStillWaitsForReceiver(t *testing.T) {
	// Non-blocking rendezvous: sender proceeds, but the data cannot arrive
	// before the receiver posts its receive.
	b := NewBuilder(2, false)
	b.SendNB(0, 1, 2<<20)
	b.Compute(0, 1) // sender does other work
	b.Compute(1, 100000)
	b.Recv(1, 0, 2<<20)
	res, err := NewEngine().Run(b.Build(), newTestModel(), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Finish[0] > 1 {
		t.Errorf("NB sender should finish quickly, got %v", res.Finish[0])
	}
	if res.Finish[1] < 10 {
		t.Errorf("receiver cannot complete before posting at t=10, got %v", res.Finish[1])
	}
}

func TestDeadlockDetection(t *testing.T) {
	b := NewBuilder(2, false)
	b.Recv(0, 1, 10)
	b.Recv(1, 0, 10)
	_, err := NewEngine().Run(b.Build(), newTestModel(), nil, nil)
	if err == nil || !strings.Contains(err.Error(), "deadlock") {
		t.Fatalf("expected deadlock error, got %v", err)
	}
}

func TestMissingMessageIsDeadlock(t *testing.T) {
	b := NewBuilder(2, false)
	b.Recv(1, 0, 10) // nobody sends
	_, err := NewEngine().Run(b.Build(), newTestModel(), nil, nil)
	if err == nil {
		t.Fatal("expected deadlock for unmatched receive")
	}
}

func TestStartTimesShiftCompletion(t *testing.T) {
	b := NewBuilder(2, false)
	b.Send(0, 1, 10)
	b.Recv(1, 0, 10)
	m := newTestModel()
	r1, err := NewEngine().Run(b.Build(), m, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	b = NewBuilder(2, false)
	b.Send(0, 1, 10)
	b.Recv(1, 0, 10)
	r2, err := NewEngine().Run(b.Build(), m, []float64{5, 0}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Finish[1] <= r1.Finish[1] {
		t.Errorf("delayed sender should delay receiver: %v vs %v", r2.Finish[1], r1.Finish[1])
	}
}

func TestComputeAdvancesClock(t *testing.T) {
	b := NewBuilder(1, false)
	b.Compute(0, 5000)
	res, err := NewEngine().Run(b.Build(), newTestModel(), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Time-0.5) > 1e-9 {
		t.Errorf("compute time = %v, want 0.5", res.Time)
	}
}

func TestZeroComputeSkipped(t *testing.T) {
	b := NewBuilder(1, false)
	b.Compute(0, 0)
	if n := b.Build().NumOps(); n != 0 {
		t.Errorf("zero-byte compute should be elided, got %d ops", n)
	}
}

func TestTrackerRejectsUnheldSend(t *testing.T) {
	b := NewBuilder(2, true)
	b.Send(0, 1, 10, PayUnit{Block: 0, Mask: 1})
	b.Recv(1, 0, 10)
	tr := NewTracker(2) // rank 0 holds nothing
	_, err := NewEngine().Run(b.Build(), newTestModel(), nil, tr)
	if err == nil {
		t.Fatal("expected tracker violation")
	}
}

func TestTrackerDeliversMasks(t *testing.T) {
	b := NewBuilder(3, true)
	b.Send(0, 1, 10, PayUnit{Block: 7, Mask: 1})
	b.Recv(1, 0, 10)
	b.Send(1, 2, 10, PayUnit{Block: 7, Mask: 1})
	b.Recv(2, 1, 10)
	tr := NewTracker(3)
	tr.Init(0, 7, 1)
	if _, err := NewEngine().Run(b.Build(), newTestModel(), nil, tr); err != nil {
		t.Fatal(err)
	}
	if !tr.Holds(2, 7, 1) {
		t.Error("rank 2 should hold block 7 after relay")
	}
	if tr.Holds(2, 8, 1) {
		t.Error("rank 2 should not hold block 8")
	}
}

func TestEngineReuse(t *testing.T) {
	e := NewEngine()
	m := newTestModel()
	var first float64
	for i := 0; i < 3; i++ {
		b := NewBuilder(4, false)
		for r := 1; r < 4; r++ {
			b.Send(0, r, 100)
			b.Recv(r, 0, 100)
		}
		res, err := e.Run(b.Build(), m, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = res.Time
		} else if math.Abs(res.Time-first) > 1e-12 {
			t.Errorf("run %d time %v differs from first %v (engine state leak)", i, res.Time, first)
		}
	}
}

func TestRelayChainTimingScalesWithHops(t *testing.T) {
	m := newTestModel()
	times := make([]float64, 0, 3)
	for _, p := range []int{2, 4, 8} {
		b := NewBuilder(p, false)
		for r := 0; r < p-1; r++ {
			b.Send(r, r+1, 1000)
			b.Recv(r+1, r, 1000)
		}
		res, err := NewEngine().Run(b.Build(), m, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		times = append(times, res.Time)
	}
	if !(times[0] < times[1] && times[1] < times[2]) {
		t.Errorf("chain time must grow with hops: %v", times)
	}
	// Each hop adds the same cost: linear growth.
	d1, d2 := times[1]-times[0], times[2]-times[1]
	if math.Abs(d2-2*d1) > 1e-6 {
		t.Errorf("expected linear hop growth, deltas %v %v", d1, d2)
	}
}

func TestHeapPropertyQuick(t *testing.T) {
	// The heap key is an order-preserving bit encoding (timeBits), so the
	// property must hold for negative times too — fault plans apply
	// clock-outlier adjustments to start times, and a negative time must
	// order before every non-negative one.
	f := func(ts []float64) bool {
		var h timeHeap
		for i, v := range ts {
			if math.IsNaN(v) {
				v = 0
			}
			h.push(v, int32(i))
		}
		prev := math.Inf(-1)
		for len(h) > 0 {
			v, _ := h.pop()
			if v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestHeapOrdersNegativeTimes(t *testing.T) {
	// Regression: raw math.Float64bits ordering inverts for negative values
	// (sign-magnitude bits), so a heap keyed on it silently popped negative
	// times LAST. timeBits must keep the true ascending order.
	var h timeHeap
	in := []float64{0.5, -1.5, 0, -0.25, 2, -3, math.Inf(1), math.Inf(-1)}
	for i, v := range in {
		h.push(v, int32(i))
	}
	want := []float64{math.Inf(-1), -3, -1.5, -0.25, 0, 0.5, 2, math.Inf(1)}
	for i, w := range want {
		got, _ := h.pop()
		if got != w {
			t.Fatalf("pop %d = %v, want %v (negative times reordered)", i, got, w)
		}
	}
}

func TestHeapRoundTripsTimeBits(t *testing.T) {
	f := func(v float64) bool {
		if math.IsNaN(v) {
			v = 0
		}
		return timeFromBits(timeBits(v)) == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestHeapRejectsNaNTime(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("pushing a NaN time must panic, not silently mis-order the heap")
		}
	}()
	var h timeHeap
	h.push(math.NaN(), 0)
}

// postOrderModel wraps testModel and records the posting time of every
// eager send, to verify the Engine honors the CostModel contract ("Send
// methods are called in nondecreasing simulated-time order of the posting
// events") — the property the raw-Float64bits heap silently broke for
// negative times.
type postOrderModel struct {
	*testModel
	posts []float64
}

func (m *postOrderModel) SendEager(src, dst int32, bytes uint32, t float64) (float64, float64) {
	m.posts = append(m.posts, t)
	return m.testModel.SendEager(src, dst, bytes, t)
}

func TestNegativeStartTimesKeepSendOrder(t *testing.T) {
	// Three independent eager senders starting at 0, -1 and -2 (clock
	// outliers can shift rank starts below zero). Stateful cost models
	// (per-node NIC availability) depend on being called in true time
	// order; under the old heap encoding the pop order was exactly
	// inverted for negative times.
	b := NewBuilder(6, false)
	for r := 0; r < 3; r++ {
		b.Send(r, r+3, 100)
		b.Recv(r+3, r, 100)
	}
	m := &postOrderModel{testModel: newTestModel()}
	res, err := NewEngine().Run(b.Build(), m, []float64{0, -1, -2, 0, 0, 0}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.posts) != 3 {
		t.Fatalf("recorded %d sends, want 3", len(m.posts))
	}
	for i := 1; i < len(m.posts); i++ {
		if m.posts[i] < m.posts[i-1] {
			t.Fatalf("sends posted out of time order: %v", m.posts)
		}
	}
	// The makespan is measured from the earliest (negative) start.
	wantTime := res.Finish[3] - (-2.0) // slowest receiver minus min start
	for _, f := range res.Finish {
		if f > res.Finish[3]+1e-12 {
			wantTime = f - (-2.0)
		}
	}
	if math.Abs(res.Time-wantTime) > 1e-9 {
		t.Errorf("makespan %v not measured from the earliest start (want %v)", res.Time, wantTime)
	}
}

func TestSeedDeterminismAndSpread(t *testing.T) {
	a := Seed(1, 2, 3)
	if a != Seed(1, 2, 3) {
		t.Error("Seed not deterministic")
	}
	if Seed(1, 2, 3) == Seed(1, 2, 4) || Seed(1, 2, 3) == Seed(3, 2, 1) {
		t.Error("Seed collisions on trivially different keys")
	}
}

func TestRNGLogNormalMedianNearOne(t *testing.T) {
	r := NewRNG(42)
	n := 20000
	below := 0
	for i := 0; i < n; i++ {
		if r.LogNormal(0.1) < 1 {
			below++
		}
	}
	frac := float64(below) / float64(n)
	if frac < 0.45 || frac > 0.55 {
		t.Errorf("lognormal median off: frac below 1 = %v", frac)
	}
	if r.LogNormal(0) != 1 {
		t.Error("sigma=0 must return exactly 1")
	}
}

func TestRNGNormMoments(t *testing.T) {
	r := NewRNG(7)
	n := 50000
	var sum, sum2 float64
	for i := 0; i < n; i++ {
		x := r.Norm()
		sum += x
		sum2 += x * x
	}
	mean := sum / float64(n)
	variance := sum2/float64(n) - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean = %v", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Errorf("normal variance = %v", variance)
	}
}

func TestComputeSplitsHugeByteCounts(t *testing.T) {
	b := NewBuilder(1, false)
	b.Compute(0, 5<<30) // 5 GiB: beyond the uint32 op range
	prog := b.Build()
	if prog.NumOps() < 2 {
		t.Fatalf("huge compute not split: %d ops", prog.NumOps())
	}
	var total int64
	for _, op := range prog.Ranks[0] {
		if op.Kind != OpCompute {
			t.Fatal("unexpected op kind")
		}
		total += int64(op.Bytes)
	}
	if total != 5<<30 {
		t.Fatalf("split computes sum to %d, want %d", total, int64(5)<<30)
	}
}
