package sim

import "math"

// RNG is a small, fast, deterministic pseudo-random generator (splitmix64).
// Every simulated run owns one RNG seeded from the run's identity, so all
// noise is bit-reproducible.
type RNG struct {
	state uint64
	// cached spare normal deviate (Box-Muller produces two at a time)
	spare    float64
	hasSpare bool
}

// NewRNG returns an RNG seeded with seed.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// StubRNG returns a fresh RNG seeded with a fixed constant. It exists as
// the mechanical target of `mpicollvet -fix` for global math/rand call
// sites: the rewrite keeps the program compiling and makes the draw
// deterministic, but every StubRNG call starts the same stream. Treat any
// call as a TODO — derive a real seed with DomainSeed (picking or adding a
// domain salt below) and replace the stub with a long-lived NewRNG
// instance, as every in-tree consumer now does.
func StubRNG() *RNG { return NewRNG(Seed(0x57AB)) }

// Seed-domain salts. Every subsystem that measures in the simulator derives
// its seeds under its own salt, so no two consumers can ever walk the same
// noise stream even when their content keys (config id, instance) collide:
// dataset generation keys by the dataset-name hash, audit replay by
// DomainAuditReplay, and the online-retraining observer by DomainRetrain.
// New consumers must claim a new salt here rather than reusing one.
const (
	// DomainAuditReplay keys mpicollaudit's observed-vs-predicted replay.
	DomainAuditReplay uint64 = 0xAD170
	// DomainRetrain keys the retraining loop's replay measurements; distinct
	// from DomainAuditReplay so an offline replay report and a live retrain
	// pass over the same log draw independent noise.
	DomainRetrain uint64 = 0x8E74A1
)

// DomainSeed derives a seed from a domain salt and content parts. The salt
// is mixed both first and last, so a caller whose leading content part
// happens to equal another domain's salt still lands in its own stream.
func DomainSeed(domain uint64, parts ...uint64) uint64 {
	all := make([]uint64, 0, len(parts)+2)
	all = append(all, domain)
	all = append(all, parts...)
	all = append(all, domain)
	return Seed(all...)
}

// Uint64 returns the next pseudo-random 64-bit value.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Float64 returns a uniform deviate in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform integer in [0, n). n must be positive.
func (r *RNG) Intn(n int) int {
	return int(r.Uint64() % uint64(n))
}

// Norm returns a standard normal deviate (Box-Muller).
func (r *RNG) Norm() float64 {
	if r.hasSpare {
		r.hasSpare = false
		return r.spare
	}
	var u, v, s float64
	for {
		u = 2*r.Float64() - 1
		v = 2*r.Float64() - 1
		s = u*u + v*v
		if s > 0 && s < 1 {
			break
		}
	}
	f := math.Sqrt(-2 * math.Log(s) / s)
	r.spare = v * f
	r.hasSpare = true
	return u * f
}

// LogNormal returns a multiplicative noise factor with median 1 and
// standard deviation ~sigma, approximating exp(sigma*N(0,1)) for the small
// sigmas used as network noise. It is called once per simulated message, so
// it uses a cheap Irwin-Hall(3) normal approximation instead of Box-Muller
// and a first-order exponential (floored to stay positive).
func (r *RNG) LogNormal(sigma float64) float64 {
	if sigma <= 0 {
		return 1
	}
	z := (r.Float64() + r.Float64() + r.Float64() - 1.5) * 2 // ~N(0,1)
	f := 1 + sigma*z
	if f < 0.3 {
		f = 0.3
	}
	return f
}

// Seed derives a well-mixed 64-bit seed from a list of integer components
// (e.g. a run key: dataset id, algorithm id, node count, ppn, message size,
// repetition). It is the canonical way to key deterministic noise.
func Seed(parts ...uint64) uint64 {
	h := uint64(0x51_7C_C1_B7_27_22_0A_95)
	for _, p := range parts {
		h ^= p
		h *= 0x100000001B3
		h ^= h >> 29
		h *= 0x9E3779B97F4A7C15
		h ^= h >> 32
	}
	return h
}
