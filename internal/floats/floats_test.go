package floats

import (
	"math"
	"testing"
)

func TestEq(t *testing.T) {
	cases := []struct {
		a, b float64
		want bool
	}{
		{1, 1, true},
		{1, 1 + 1e-12, true},                  // within relative tolerance
		{1, 1 + 1e-6, false},                  // outside
		{1e12, 1e12 * (1 + 1e-12), true},      // relative, not absolute
		{0, 1e-12, true},                      // absolute near zero
		{0, 1e-6, false},                      //
		{math.Inf(1), math.Inf(1), true},      // equal infinities
		{math.Inf(1), math.Inf(-1), false},    //
		{math.NaN(), math.NaN(), false},       // NaN equals nothing
		{math.Inf(1), math.MaxFloat64, false}, // far apart however large
	}
	for _, c := range cases {
		if got := Eq(c.a, c.b); got != c.want {
			t.Errorf("Eq(%g, %g) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestZero(t *testing.T) {
	if !Zero(0) || !Zero(1e-13) || !Zero(-1e-13) {
		t.Error("Zero must accept exact and negligible zeros")
	}
	if Zero(1e-9) || Zero(1) || Zero(math.NaN()) {
		t.Error("Zero must reject real magnitudes and NaN")
	}
}

func TestExact(t *testing.T) {
	if !Exact(1, 1) || Exact(1, 1.0000001) {
		t.Error("Exact must be plain value equality")
	}
	if Exact(math.NaN(), math.NaN()) {
		t.Error("Exact(NaN, NaN) must be false")
	}
	if !Exact(math.Inf(1), math.Inf(1)) {
		t.Error("equal infinities are exactly equal")
	}
}
