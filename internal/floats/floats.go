// Package floats holds the repository's blessed floating-point comparison
// helpers. The floateq analyzer (DESIGN §8) forbids raw == / != between
// floats in production code; every comparison goes through one of these
// helpers so the tolerance — or the deliberate absence of one — is explicit
// and greppable.
package floats

import "math"

const (
	// Eps is the default relative tolerance of Eq: values agreeing to ~9
	// significant digits are equal. Benchmark times and model predictions
	// carry far more noise than this, so Eq never confuses distinct
	// measurements.
	Eps = 1e-9

	// ZeroEps is the magnitude below which Zero treats a value as zero.
	// Feature scales, gains, and rates in this codebase are O(1) or
	// larger; anything at 1e-12 is accumulated rounding, not signal.
	ZeroEps = 1e-12
)

// Eq reports whether a and b are equal within the default relative
// tolerance Eps.
func Eq(a, b float64) bool { return EqTol(a, b, Eps) }

// EqTol reports whether a and b agree within relative tolerance tol
// (absolute near zero). Identical values — including equal infinities —
// always compare equal; NaN never does.
func EqTol(a, b, tol float64) bool {
	if Exact(a, b) {
		return true
	}
	if math.IsInf(a, 0) || math.IsInf(b, 0) {
		return false // a non-identical infinity is infinitely far away
	}
	scale := math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
	return math.Abs(a-b) <= tol*scale
}

// Zero reports whether x is exactly or negligibly zero (|x| <= ZeroEps).
// Use it for degenerate-scale guards (constant features, vanished
// variances) where dividing by a denormal is as wrong as dividing by zero.
func Zero(x float64) bool { return math.Abs(x) <= ZeroEps }

// Exact reports whether a and b are bit-for-bit the same real value. Only
// use it where exactness is the point: sentinel values that were assigned
// and never computed (a fault factor of exactly 1, a ridge of exactly 0),
// or duplicate detection among copied values (equal sort keys, repeated
// spline knots). For anything that went through arithmetic, use Eq/EqTol.
func Exact(a, b float64) bool {
	return a == b //mpicollvet:ignore floateq this helper is the audited home of the one exact float comparison
}
