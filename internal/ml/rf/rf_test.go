package rf

import (
	"math"
	"testing"

	"mpicollpred/internal/sim"
)

func surface(n int, seed uint64) ([][]float64, []float64) {
	rng := sim.NewRNG(seed)
	var x [][]float64
	var y []float64
	for i := 0; i < n; i++ {
		a := rng.Float64() * 20
		b := rng.Float64() * 30
		x = append(x, []float64{a, b})
		y = append(y, 1e-6*(1+a+b/3)*rng.LogNormal(0.05))
	}
	return x, y
}

func TestForestLearnsInSample(t *testing.T) {
	x, y := surface(300, 1)
	r := New()
	if err := r.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	sumRel := 0.0
	for i := range x {
		sumRel += math.Abs(r.Predict(x[i])-y[i]) / y[i]
	}
	if rel := sumRel / float64(len(x)); rel > 0.10 {
		t.Errorf("in-sample relative error %.3f", rel)
	}
}

func TestForestDeterministicWithSeed(t *testing.T) {
	x, y := surface(100, 2)
	a, b := New(), New()
	if err := a.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if err := b.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	probe := []float64{10, 10}
	if a.Predict(probe) != b.Predict(probe) {
		t.Error("same seed must give identical forests")
	}
	c := NewWith(Options{NumTrees: 100, MaxDepth: 20, MinLeaf: 2, Seed: 99})
	if err := c.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if c.Predict(probe) == a.Predict(probe) {
		t.Error("different seeds should differ")
	}
}

func TestSingleTreeForest(t *testing.T) {
	x, y := surface(50, 3)
	r := NewWith(Options{NumTrees: 1, MaxDepth: 3, MinLeaf: 1, Seed: 1})
	if err := r.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if p := r.Predict([]float64{5, 5}); !(p > 0) {
		t.Errorf("bad prediction %v", p)
	}
}

func TestRejectsBadTargets(t *testing.T) {
	if err := New().Fit([][]float64{{1}}, []float64{-2}); err == nil {
		t.Error("negative target must fail (log transform)")
	}
	if !math.IsNaN(New().Predict([]float64{1})) {
		t.Error("unfitted forest should return NaN")
	}
}
